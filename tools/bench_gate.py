#!/usr/bin/env python3
"""Perf-trajectory regression gate for BENCH_8.json.

Compares a freshly generated bench document (--candidate) against the
committed baseline (--baseline, BENCH_8.json at the repo root) and
fails if any section's metrics drift past its tolerance.

The simulator is deterministic, so most drift is a real behavior
change: op counts and latency quantiles move only when scheduling or
protocol logic changes, goodput only when the data path changes.  The
two resource metrics — modeled engine CPU per op and minor-GC words
per op — also move with compiler/runtime versions, so they get loose
tolerances; everything else is tight.

Intentional changes update the baseline: regenerate with

    dune exec bench/main.exe -- \
        chaos,chaos_upgrade,overload,partition,tenants,churn,hostile \
        --bench-out BENCH_8.json

and commit the diff alongside the change that caused it.

Exit status: 0 clean, 1 regression, 2 usage/shape error.
Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

# metric -> allowed relative drift (fraction of the baseline value).
TOLERANCES = {
    "ops": 0.01,
    "goodput_gbps": 0.05,
    "p50_ns": 0.10,
    "p99_ns": 0.10,
    "cpu_ns_per_op": 0.50,
    "gc_minor_words_per_op": 0.50,
}

# section -> metric -> absolute ceiling on the candidate value,
# independent of baseline drift.  The churn section measures its
# steady-state window in-workload over a >=100k-connection mesh; these
# ceilings pin the datapath-scaling contract itself (no O(conns)
# rescans on the hot path, near-zero steady-state allocation), so a
# "regenerate the baseline" PR cannot quietly ratchet them away.  The
# GC ceiling is ~10% of what the tenants section measured before flat
# arenas and timing wheels landed (365k words/op).
ABS_CEILINGS = {
    "churn": {
        "gc_minor_words_per_op": 36_500.0,
        "cpu_ns_per_op": 5_000.0,
    },
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    if doc.get("bench") != "BENCH_8" or "sections" not in doc:
        sys.exit(f"bench_gate: {path} is not a BENCH_8 document")
    return {s["section"]: s for s in doc["sections"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    missing = sorted(set(base) - set(cand))
    if missing:
        failures.append(f"sections missing from candidate: {', '.join(missing)}")
    extra = sorted(set(cand) - set(base))
    if extra:
        # New sections are fine to add, but the baseline must learn them
        # in the same change — otherwise they are never gated.
        failures.append(f"sections missing from baseline: {', '.join(extra)}")

    rows = []
    for sec in sorted(set(base) & set(cand)):
        for metric, tol in TOLERANCES.items():
            b = base[sec].get(metric)
            c = cand[sec].get(metric)
            if b is None or c is None:
                failures.append(f"{sec}.{metric}: missing field")
                continue
            if b == 0:
                # No baseline signal (e.g. a section with no goodput
                # notion): only flag something appearing from nothing.
                ok = c == 0
                drift = float("inf") if not ok else 0.0
            else:
                drift = abs(c - b) / abs(b)
                ok = drift <= tol
            rows.append((sec, metric, b, c, drift, tol, ok))
            if not ok:
                failures.append(
                    f"{sec}.{metric}: baseline {b}, candidate {c} "
                    f"(drift {drift:.1%} > allowed {tol:.0%})"
                )

    for sec, ceilings in ABS_CEILINGS.items():
        if sec not in cand:
            continue
        for metric, ceiling in ceilings.items():
            c = cand[sec].get(metric)
            if c is None:
                failures.append(f"{sec}.{metric}: missing field (ceiling check)")
                continue
            ok = c <= ceiling
            print(f"{sec}.{metric}: {c} <= ceiling {ceiling}: {'yes' if ok else 'NO'}")
            if not ok:
                failures.append(
                    f"{sec}.{metric}: candidate {c} exceeds absolute ceiling {ceiling}"
                )

    w = max((len(f"{s}.{m}") for s, m, *_ in rows), default=10)
    print(f"{'metric':<{w}}  {'baseline':>14}  {'candidate':>14}  {'drift':>8}  ok")
    for sec, metric, b, c, drift, _tol, ok in rows:
        d = "-" if drift == 0 else f"{drift:.1%}"
        print(f"{sec + '.' + metric:<{w}}  {b:>14}  {c:>14}  {d:>8}  {'yes' if ok else 'NO'}")

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: {len(rows)} checks clean")


if __name__ == "__main__":
    main()
