(* Tests for the availability machinery: watchdog health checking,
   transactional upgrades with rollback, engine-restart flow resync,
   recover_engine edge cases, fault-plan validation, and the
   chaos-upgrade acceptance scenario. *)

module T = Sim.Time
module WD = Control.Watchdog
module CU = Workloads.Chaos_upgrade

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let mk ?(cores = 4) () =
  let loop = Sim.Loop.create () in
  let m =
    Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default ~name:"m" ~cores
  in
  (loop, m)

let idle_engine ~name () =
  Engine.create ~name ~run:(fun () -> Engine.No_work) ~queue_delay:(fun _ -> 0) ()

let mk_group m name = Engine.create_group ~machine:m ~name
    ~mode:(Engine.Dedicating { cores = 1 })

(* -- Watchdog ------------------------------------------------------------ *)

let test_watchdog_detects_wedge () =
  (* A wedged engine (spinning, not servicing its mailbox) misses
     heartbeats; the watchdog must detect it, restart it, and the engine
     must come back healthy and unwedged. *)
  let loop, m = mk () in
  let g = mk_group m "g" in
  let e = idle_engine ~name:"e0" () in
  Engine.add g e;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  let wd = WD.create ~control:ctl () in
  WD.watch_group wd g;
  WD.start wd;
  ignore (Sim.Loop.at loop (T.ms 1) (fun () -> Engine.set_wedged e true));
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_bool "healthy again" true (WD.state wd e = Some WD.Healthy);
  check_int "one restart" 1 (WD.restarts_of wd e);
  check_bool "unwedged" true (not (Engine.is_wedged e));
  check_bool "attached" true (Engine.is_attached e);
  let c name = List.assoc name (WD.counters wd) in
  check_int "one detection" 1 (c "wd_detections");
  check_int "one restart counted" 1 (c "wd_restarts");
  check_int "no quarantine" 0 (c "wd_quarantines");
  check_bool "heartbeats flowed" true (c "wd_heartbeats" > 10);
  let h = WD.detection_latency wd in
  check_int "one detection latency sample" 1 (Stats.Histogram.count h);
  (* Detection is bounded by ~period * (miss_threshold + 1). *)
  check_bool "detection latency bounded" true
    (Stats.Histogram.max_value h <= T.us 500)

let test_watchdog_crash_detection () =
  (* A crashed (detached) engine also misses heartbeats; the watchdog
     restarts it into its home group. *)
  let loop, m = mk () in
  let g = mk_group m "g" in
  let e = idle_engine ~name:"e0" () in
  Engine.add g e;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  let wd = WD.create ~control:ctl () in
  WD.watch_group wd g;
  WD.start wd;
  ignore (Sim.Loop.at loop (T.ms 1) (fun () -> Engine.remove g e));
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_bool "reattached" true (Engine.is_attached e);
  check_bool "in home group" true (List.memq e (Engine.engines g));
  check_int "one restart" 1 (WD.restarts_of wd e)

let test_watchdog_quarantine () =
  (* An engine that re-wedges immediately after every restart exhausts
     the restart budget and must be quarantined (removed, not
     flapping forever). *)
  let loop, m = mk () in
  let g = mk_group m "g" in
  let e = idle_engine ~name:"e0" () in
  Engine.add g e;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  let wd = WD.create ~control:ctl ~max_restart_attempts:2 () in
  WD.watch_group wd g;
  WD.start wd;
  ignore
    (Sim.Loop.at loop (T.ms 1) (fun () ->
         ignore
           (Sim.Loop.every loop (T.us 10) (fun () ->
                if Engine.is_attached e then Engine.set_wedged e true))));
  Sim.Loop.run ~until:(T.ms 20) loop;
  check_bool "quarantined" true (WD.state wd e = Some WD.Quarantined);
  check_bool "detached" true (not (Engine.is_attached e));
  let c name = List.assoc name (WD.counters wd) in
  check_int "one quarantine" 1 (c "wd_quarantines");
  check_int "restart budget spent" 2 (c "wd_restarts")

let test_watchdog_create_validation () =
  let loop, m = mk () in
  ignore loop;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  Alcotest.check_raises "bad period"
    (Invalid_argument "Watchdog.create: period") (fun () ->
      ignore (WD.create ~control:ctl ~period:0 ()));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Watchdog.create: miss_threshold") (fun () ->
      ignore (WD.create ~control:ctl ~miss_threshold:0 ()))

(* -- Transactional upgrade ----------------------------------------------- *)

let costs = Sim.Costs.default

let test_upgrade_clean_commit () =
  (* Happy path: every engine commits on the first attempt, and the
     report carries the measured (not just scheduled) brownout. *)
  let loop, m = mk () in
  let og = mk_group m "old" and ng = mk_group m "new" in
  let e1 = idle_engine ~name:"e1" () and e2 = idle_engine ~name:"e2" () in
  Engine.add og e1;
  Engine.add og e2;
  let got = ref [] in
  Upgrade.upgrade ~loop ~costs ~old_group:og ~new_group:ng
    ~extra_state_bytes:(fun _ -> 2_000_000)
    ~on_done:(fun rs -> got := rs)
    ();
  Sim.Loop.run ~until:(T.ms 100) loop;
  check_int "two reports" 2 (List.length !got);
  List.iter
    (fun (r : Upgrade.report) ->
      check_bool "committed" true (r.Upgrade.outcome = Upgrade.Committed);
      check_int "one attempt" 1 r.Upgrade.attempts;
      check_int "no rollbacks" 0 r.Upgrade.rollbacks;
      check_int "measured brownout" r.Upgrade.brownout_scheduled
        r.Upgrade.brownout;
      check_int "measured blackout matches model"
        (Upgrade.blackout_of ~costs ~state_bytes:r.Upgrade.state_bytes)
        r.Upgrade.blackout)
    !got;
  check_int "old group empty" 0 (List.length (Engine.engines og));
  check_int "new group full" 2 (List.length (Engine.engines ng))

let test_upgrade_rollback_on_fault_mid_blackout () =
  (* A fault lands on the detached instance mid-blackout: the
     transaction must roll back to the old instance and commit on a
     later attempt. *)
  let loop, m = mk () in
  let og = mk_group m "old" and ng = mk_group m "new" in
  let e = idle_engine ~name:"e" () in
  Engine.add og e;
  (* 2 MB extra state: brownout 1 ms, blackout 10 ms => [1, 11) ms. *)
  ignore (Sim.Loop.at loop (T.ms 5) (fun () -> Engine.mark_failed e));
  let transitions = ref [] in
  let got = ref [] in
  Upgrade.upgrade ~loop ~costs ~old_group:og ~new_group:ng
    ~extra_state_bytes:(fun _ -> 2_000_000)
    ~config:{ Upgrade.default_config with Upgrade.retry_backoff = T.ms 1 }
    ~on_transition:(fun ~engine:_ ph -> transitions := ph :: !transitions)
    ~on_done:(fun rs -> got := rs)
    ();
  Sim.Loop.run ~until:(T.ms 100) loop;
  let r = List.hd !got in
  check_bool "committed eventually" true (r.Upgrade.outcome = Upgrade.Committed);
  check_int "two attempts" 2 r.Upgrade.attempts;
  check_int "one rollback" 1 r.Upgrade.rollbacks;
  check_bool "rollback reason recorded" true
    (List.exists
       (function Upgrade.Rollback "fault-during-blackout" -> true | _ -> false)
       !transitions);
  check_bool "retry recorded" true
    (List.exists (function Upgrade.Retry 2 -> true | _ -> false) !transitions);
  check_bool "fail flag cleared" true (not (Engine.is_failed e));
  check_bool "ended in new group" true (List.memq e (Engine.engines ng));
  check_int "old group empty" 0 (List.length (Engine.engines og))

let test_upgrade_slo_give_up () =
  (* A blackout SLO below the 8 ms filter-update floor can never be met:
     every attempt aborts at the deadline and the engine must end up
     back in the old group, intact. *)
  let loop, m = mk () in
  let og = mk_group m "old" and ng = mk_group m "new" in
  let e = idle_engine ~name:"e" () in
  Engine.add og e;
  let got = ref [] in
  Upgrade.upgrade ~loop ~costs ~old_group:og ~new_group:ng
    ~config:
      {
        Upgrade.default_config with
        Upgrade.blackout_slo = Some (T.ms 4);
        max_attempts = 2;
        retry_backoff = T.ms 1;
      }
    ~on_done:(fun rs -> got := rs)
    ();
  Sim.Loop.run ~until:(T.ms 100) loop;
  let r = List.hd !got in
  check_bool "gave up" true
    (r.Upgrade.outcome = Upgrade.Gave_up "blackout-slo-exceeded");
  check_int "budget exhausted" 2 r.Upgrade.attempts;
  check_int "rolled back each attempt" 2 r.Upgrade.rollbacks;
  check_bool "still on old release" true (List.memq e (Engine.engines og));
  check_int "new group empty" 0 (List.length (Engine.engines ng));
  check_bool "attached and serving" true (Engine.is_attached e)

(* -- recover_engine edge cases ------------------------------------------- *)

let test_recover_double_noop () =
  (* Two racing recoveries of the same crash: the second must observe
     the engine already attached and do nothing. *)
  let loop, m = mk () in
  let g = mk_group m "g" in
  let e = idle_engine ~name:"e" () in
  Engine.add g e;
  Engine.remove g e;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  let n = ref 0 in
  Control.recover_engine ctl ~group:g e ~after:(T.ms 1)
    ~on_recovered:(fun () -> incr n);
  Control.recover_engine ctl ~group:g e ~after:(T.ms 2)
    ~on_recovered:(fun () -> incr n);
  Sim.Loop.run ~until:(T.ms 10) loop;
  check_int "recovered exactly once" 1 !n;
  check_bool "attached" true (Engine.is_attached e);
  check_int "in group once" 1
    (List.length (List.filter (fun x -> x == e) (Engine.engines g)))

let test_recover_races_upgrade () =
  (* A crash recovery reattaches the old instance while an upgrade
     transaction holds the engine in blackout: the commit must detect
     the concurrent recovery, roll back, and succeed on the retry. *)
  let loop, m = mk () in
  let og = mk_group m "old" and ng = mk_group m "new" in
  let e = idle_engine ~name:"e" () in
  Engine.add og e;
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  let recovered = ref 0 in
  (* Fires at 3.025 ms: mid-blackout of the first attempt ([1, 11) ms). *)
  Control.recover_engine ctl ~group:og e ~after:(T.ms 3)
    ~on_recovered:(fun () -> incr recovered);
  let transitions = ref [] in
  let got = ref [] in
  Upgrade.upgrade ~loop ~costs ~old_group:og ~new_group:ng
    ~extra_state_bytes:(fun _ -> 2_000_000)
    ~config:{ Upgrade.default_config with Upgrade.retry_backoff = T.ms 1 }
    ~on_transition:(fun ~engine:_ ph -> transitions := ph :: !transitions)
    ~on_done:(fun rs -> got := rs)
    ();
  Sim.Loop.run ~until:(T.ms 100) loop;
  check_int "recovery fired once" 1 !recovered;
  let r = List.hd !got in
  check_bool "committed eventually" true (r.Upgrade.outcome = Upgrade.Committed);
  check_int "one rollback" 1 r.Upgrade.rollbacks;
  check_bool "concurrent recovery detected" true
    (List.exists
       (function Upgrade.Rollback "concurrent-recovery" -> true | _ -> false)
       !transitions);
  check_bool "ended in new group" true (List.memq e (Engine.engines ng));
  check_int "old group empty" 0 (List.length (Engine.engines og))

let test_recover_mailbox_survives () =
  (* Work posted to a crashed engine's mailbox must execute once the
     engine is reloaded: queues survive the restart (§4.3). *)
  let loop, m = mk () in
  let g = mk_group m "g" in
  let e = idle_engine ~name:"e" () in
  Engine.add g e;
  Engine.remove g e;
  let hit = ref false in
  check_bool "posted while detached" true
    (Squeue.Mailbox.post (Engine.mailbox e) (fun () -> hit := true));
  let ctl = Control.create ~loop ~machine:m ~name:"ctl" in
  Control.recover_engine ctl ~group:g e ~after:(T.ms 1)
    ~on_recovered:(fun () -> ());
  Sim.Loop.run ~until:(T.ms 10) loop;
  check_bool "pending work ran after restart" true !hit

(* -- Flow resync --------------------------------------------------------- *)

let test_flow_resync () =
  let loop = Sim.Loop.create () in
  let k =
    { Pony.Wire.src_host = 0; src_engine = 0; dst_host = 1; dst_engine = 0 }
  in
  let a = Pony.Flow.create ~loop ~key:k ~max_rate_gbps:100.0 () in
  let b =
    Pony.Flow.create ~loop ~key:(Pony.Wire.reverse k) ~max_rate_gbps:100.0 ()
  in
  let ck =
    {
      Pony.Wire.initiator_host = 0;
      initiator_client = 0;
      target_host = 1;
      target_client = 0;
      session = 0;
    }
  in
  let gen = Memory.Packet.Id_gen.create () in
  for i = 1 to 3 do
    Pony.Flow.enqueue a
      (Pony.Wire.Credit_grant { conn = ck; bytes = i })
      ~payload_bytes:0
  done;
  let now = ref 0 in
  for _ = 1 to 3 do
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some _ -> () (* all lost: the engine restarted under them *)
    | None -> Alcotest.fail "emit"
  done;
  check_int "three in flight" 3 (Pony.Flow.in_flight a);
  (* Epoch bump: requeue the whole flight immediately, no RTO wait. *)
  check_int "flight requeued" 3 (Pony.Flow.resync a ~now:!now);
  check_int "idempotent while pending" 0 (Pony.Flow.resync a ~now:!now);
  check_bool "ready to transmit immediately" true
    (Pony.Flow.ready_to_emit a ~now:(!now + 1));
  for _ = 1 to 3 do
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some p -> ignore (Pony.Flow.on_receive b ~now:!now p)
    | None -> Alcotest.fail "re-emit"
  done;
  check_int "delivered exactly once each" 3 (Pony.Flow.delivered b);
  check_int "counted as retransmits" 3 (Pony.Flow.retransmits a)

(* -- Fault plan validation ----------------------------------------------- *)

let test_plan_validate () =
  Fault.Plan.validate
    (Fault.Plan.Link_blackout
       { a = 0; b = 1; start = 0; duration = T.ms 1 });
  Fault.Plan.validate
    (Fault.Plan.Engine_wedge { host = 0; engine = 0; start = 0 });
  let bad msg ev =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        Fault.Plan.validate ev)
  in
  bad "Fault.Plan: blackout window"
    (Fault.Plan.Link_blackout { a = 0; b = 1; start = -1; duration = T.ms 1 });
  bad "Fault.Plan: blackout window"
    (Fault.Plan.Link_blackout { a = 0; b = 1; start = 0; duration = 0 });
  bad "Fault.Plan: blackout hosts"
    (Fault.Plan.Link_blackout { a = 2; b = 2; start = 0; duration = 1 });
  bad "Fault.Plan: loss_pct"
    (Fault.Plan.Burst_loss
       { port = 0; start = 0; duration = 1; loss_pct = 120.0 });
  bad "Fault.Plan: straggler slowdown"
    (Fault.Plan.Straggler { host = 0; start = 0; duration = 1; slowdown = 0.5 });
  bad "Fault.Plan: wedge target"
    (Fault.Plan.Engine_wedge { host = 0; engine = -1; start = 0 });
  bad "Fault.Plan: wedge start"
    (Fault.Plan.Engine_wedge { host = 0; engine = 0; start = -1 });
  (* make runs the same validation. *)
  Alcotest.check_raises "make validates" (Invalid_argument "Fault.Plan: wedge start")
    (fun () ->
      ignore
        (Fault.Plan.make
           [ Fault.Plan.Engine_wedge { host = 0; engine = 0; start = -1 } ]))

(* -- Chaos upgrade acceptance -------------------------------------------- *)

let test_chaos_upgrade_acceptance () =
  (* The headline scenario: a fleet upgrade under an engine crash
     mid-blackout, a link blackout over the brownout, and a post-commit
     wedge — zero lost ops, at least one rollback-and-retry, a bounded
     blackout tail, and full determinism across same-seed runs. *)
  let cfg = CU.default_config in
  let r = CU.run cfg in
  check_int "no lost ops" 0 r.CU.lost_ops;
  check_bool "all ops completed" true (r.CU.ops_completed = r.CU.ops_expected);
  check_int "both hosts committed" 2 r.CU.committed;
  check_int "no give-ups" 0 r.CU.give_ups;
  check_bool "at least one rollback" true (r.CU.rollbacks >= 1);
  check_bool "rollback-and-retry logged" true
    (List.exists
       (fun (e : Fault.Log.entry) ->
         contains_sub e.Fault.Log.detail "rollback:fault-during-blackout")
       (Fault.Log.entries r.CU.transition_log));
  check_int "crash landed mid-blackout" 1
    (Fault.Log.count_kind r.CU.fault_log "engine-crash-inflight");
  check_bool "watchdog repaired the wedge" true (r.CU.watchdog_restarts >= 1);
  check_bool "flows resynced after restarts" true (r.CU.flow_resyncs >= 1);
  (* Blackout tail bounded by the state-size model (12 ms) plus slack
     for the engine's own accumulated state. *)
  check_bool "blackout tail bounded" true (r.CU.max_blackout <= T.ms 14);
  check_bool "every engine in exactly one group" true r.CU.groups_consistent;
  let r2 = CU.run cfg in
  check_bool "deterministic across same-seed runs" true
    (String.equal (CU.fingerprint r) (CU.fingerprint r2))

let () =
  Alcotest.run "availability"
    [
      ( "watchdog",
        [
          Alcotest.test_case "detects and restarts a wedged engine" `Quick
            test_watchdog_detects_wedge;
          Alcotest.test_case "detects a crashed engine" `Quick
            test_watchdog_crash_detection;
          Alcotest.test_case "quarantines after repeated failures" `Quick
            test_watchdog_quarantine;
          Alcotest.test_case "rejects bad parameters" `Quick
            test_watchdog_create_validation;
        ] );
      ( "upgrade",
        [
          Alcotest.test_case "clean transactional commit" `Quick
            test_upgrade_clean_commit;
          Alcotest.test_case "rollback on fault mid-blackout" `Quick
            test_upgrade_rollback_on_fault_mid_blackout;
          Alcotest.test_case "gives up under an unmeetable SLO" `Quick
            test_upgrade_slo_give_up;
        ] );
      ( "recover",
        [
          Alcotest.test_case "double recovery is a no-op" `Quick
            test_recover_double_noop;
          Alcotest.test_case "recovery racing an upgrade" `Quick
            test_recover_races_upgrade;
          Alcotest.test_case "mailbox work survives restart" `Quick
            test_recover_mailbox_survives;
        ] );
      ( "resync",
        [ Alcotest.test_case "flow resync after epoch bump" `Quick
            test_flow_resync ] );
      ( "plan",
        [ Alcotest.test_case "validate rejects nonsense" `Quick
            test_plan_validate ] );
      ( "chaos-upgrade",
        [
          Alcotest.test_case "availability under upgrade" `Slow
            test_chaos_upgrade_acceptance;
        ] );
    ]
