(* Tests for histograms, summaries, and series. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_hist_empty () =
  let h = Stats.Histogram.create () in
  check_int "count" 0 (Stats.Histogram.count h);
  check_int "quantile" 0 (Stats.Histogram.quantile h 0.5);
  check_int "min" 0 (Stats.Histogram.min_value h)

let test_hist_exact_small () =
  (* Values below 2^(sub_bits+1) are recorded exactly. *)
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check_int "p50" 3 (Stats.Histogram.percentile h 50.);
  check_int "min" 1 (Stats.Histogram.min_value h);
  check_int "max" 5 (Stats.Histogram.max_value h);
  check_int "sum" 15 (Stats.Histogram.sum h)

let test_hist_relative_error () =
  let h = Stats.Histogram.create () in
  let v = 1_234_567 in
  Stats.Histogram.record h v;
  let q = Stats.Histogram.quantile h 1.0 in
  (* max_value is exact *)
  check_int "max exact" v (Stats.Histogram.max_value h);
  let err = abs (q - v) in
  check_bool "within 2% relative error" true
    (float_of_int err /. float_of_int v < 0.02)

(* Bucketing round trip: the bucket midpoint must land back in the same
   bucket, and sit within the bucket's relative-error bound of the
   original value.  Power-of-two boundaries are where the log-linear
   grid changes resolution, so probe 2^k - 1, 2^k, 2^k + 1. *)
let test_hist_index_value_round_trip () =
  List.iter
    (fun sub_bits ->
      let h = Stats.Histogram.create ~sub_bits () in
      let bound = 2.0 ** float_of_int (-sub_bits) in
      for k = 0 to 61 do
        List.iter
          (fun v ->
            if v >= 0 then begin
              let idx = Stats.Histogram.index_of h v in
              let mid = Stats.Histogram.value_of h idx in
              Alcotest.(check int)
                (Printf.sprintf "sub_bits=%d v=%d same bucket" sub_bits v)
                idx
                (Stats.Histogram.index_of h mid);
              let err = abs (mid - v) in
              check_bool
                (Printf.sprintf "sub_bits=%d v=%d midpoint error" sub_bits v)
                true
                (v = 0 || float_of_int err /. float_of_int v <= bound)
            end)
          [ (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1 ]
      done)
    [ 1; 5; 10 ]

let hist_prop_round_trip =
  QCheck.Test.make ~name:"value_of is a right inverse of index_of" ~count:500
    QCheck.(int_bound max_int)
    (fun v ->
      let h = Stats.Histogram.create () in
      let idx = Stats.Histogram.index_of h v in
      Stats.Histogram.index_of h (Stats.Histogram.value_of h idx) = idx)

let test_hist_quantiles_order () =
  let h = Stats.Histogram.create () in
  for i = 1 to 10_000 do
    Stats.Histogram.record h i
  done;
  let p50 = Stats.Histogram.percentile h 50. in
  let p90 = Stats.Histogram.percentile h 90. in
  let p99 = Stats.Histogram.percentile h 99. in
  check_bool "p50 near 5000" true (abs (p50 - 5000) < 200);
  check_bool "p90 near 9000" true (abs (p90 - 9000) < 300);
  check_bool "p99 near 9900" true (abs (p99 - 9900) < 300);
  check_bool "ordered" true (p50 <= p90 && p90 <= p99)

(* Interpolated quantiles: exact in the width-1 region, clamped to the
   observed range, and within the bucket's relative error against a
   sorted-array reference elsewhere. *)
let check_float_near msg ~tol expected actual =
  check_bool
    (Printf.sprintf "%s: |%g - %g| <= %g" msg actual expected tol)
    true
    (Float.abs (actual -. expected) <= tol)

let test_hist_quantile_interp_small () =
  let h = Stats.Histogram.create () in
  check_bool "empty is 0" true (Stats.Histogram.quantile_interp h 0.5 = 0.0);
  List.iter (Stats.Histogram.record h) [ 10; 20; 30; 40 ];
  (* Small values are exact buckets, so interpolation reproduces the
     textbook midpoint-linear quantile up to half a bucket width. *)
  check_float_near "p0 is min" ~tol:0.5 10.0
    (Stats.Histogram.quantile_interp h 0.0);
  check_float_near "p100 is max" ~tol:0.5 40.0
    (Stats.Histogram.quantile_interp h 1.0);
  check_float_near "p50 between the middle pair" ~tol:5.0 25.0
    (Stats.Histogram.quantile_interp h 0.5);
  (* Out-of-range q clamps rather than raising. *)
  check_float_near "q>1 clamps" ~tol:0.5 40.0
    (Stats.Histogram.quantile_interp h 2.0);
  check_float_near "q<0 clamps" ~tol:0.5 10.0
    (Stats.Histogram.quantile_interp h (-1.0))

let test_hist_quantile_interp_vs_sorted_reference () =
  let h = Stats.Histogram.create () in
  (* Deterministic skewed values spanning several power-of-two ranges. *)
  let values =
    List.init 5000 (fun i -> 100 + (i * i mod 9973) + (i * 37 mod 1000))
  in
  List.iter (Stats.Histogram.record h) values;
  let sorted = List.sort compare values |> Array.of_list in
  let reference q =
    (* Same definition the histogram interpolates: rank q*(n-1) in the
       sorted sample, linear between neighbors. *)
    let rank = q *. float_of_int (Array.length sorted - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (Array.length sorted - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    ((1.0 -. frac) *. float_of_int sorted.(lo))
    +. (frac *. float_of_int sorted.(hi))
  in
  List.iter
    (fun q ->
      let expect = reference q in
      let got = Stats.Histogram.quantile_interp h q in
      (* Bucket relative error (~2^-(sub_bits) = 3.2%) plus a bucket. *)
      check_float_near
        (Printf.sprintf "q=%g" q)
        ~tol:((expect *. 0.04) +. 2.0)
        expect got)
    [ 0.01; 0.1; 0.25; 0.5; 0.9; 0.99; 0.999 ]

let hist_prop_quantile_interp_monotone =
  QCheck.Test.make ~name:"quantile_interp is monotone and in range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (int_bound 1_000_000))
              (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (vs, (q1, q2)) ->
      QCheck.assume (vs <> []);
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) vs;
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      let a = Stats.Histogram.quantile_interp h lo in
      let b = Stats.Histogram.quantile_interp h hi in
      a <= b
      && a >= float_of_int (Stats.Histogram.min_value h)
      && b <= float_of_int (Stats.Histogram.max_value h))

let test_hist_merge () =
  let a = Stats.Histogram.create () in
  let b = Stats.Histogram.create () in
  for i = 1 to 100 do
    Stats.Histogram.record a i
  done;
  for i = 101 to 200 do
    Stats.Histogram.record b i
  done;
  Stats.Histogram.merge_into ~src:b ~dst:a;
  check_int "count" 200 (Stats.Histogram.count a);
  check_int "max" 200 (Stats.Histogram.max_value a);
  check_int "min" 1 (Stats.Histogram.min_value a)

let test_hist_negative_clamped () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h (-5);
  check_int "clamped to zero" 0 (Stats.Histogram.max_value h);
  check_int "counted" 1 (Stats.Histogram.count h)

let test_hist_record_n () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record_n h 10 ~n:5;
  check_int "count" 5 (Stats.Histogram.count h);
  check_int "sum" 50 (Stats.Histogram.sum h)

let test_hist_cdf () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.record h i
  done;
  let cdf = Stats.Histogram.cdf h ~points:10 () in
  check_int "ten points" 10 (List.length cdf);
  let fractions = List.map snd cdf in
  check_bool "monotone fractions" true
    (List.sort compare fractions = fractions)

let hist_prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (int_bound 1_000_000)) (float_bound_inclusive 1.0))
    (fun (values, q) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) values;
      let v = Stats.Histogram.quantile h q in
      v >= Stats.Histogram.min_value h && v <= Stats.Histogram.max_value h)

let hist_prop_mean_matches =
  QCheck.Test.make ~name:"histogram mean equals arithmetic mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 100_000))
    (fun values ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) values;
      let expect =
        float_of_int (List.fold_left ( + ) 0 values)
        /. float_of_int (List.length values)
      in
      Float.abs (Stats.Histogram.mean h -. expect) < 1e-6)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "std" (sqrt (32.0 /. 7.0)) (Stats.Summary.std s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max_value s);
  check_int "count" 8 (Stats.Summary.count s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "std 0" 0.0 (Stats.Summary.std s)

let test_hist_merge_sub_bits_mismatch () =
  let a = Stats.Histogram.create ~sub_bits:5 () in
  let b = Stats.Histogram.create ~sub_bits:6 () in
  Stats.Histogram.record a 10;
  Stats.Histogram.record b 10;
  Alcotest.check_raises "mismatched precision rejected"
    (Invalid_argument "Histogram.merge_into: sub_bits mismatch (src 6, dst 5)")
    (fun () -> Stats.Histogram.merge_into ~src:b ~dst:a);
  (* The failed merge must not have touched the destination. *)
  check_int "dst unchanged" 1 (Stats.Histogram.count a)

let test_series () =
  let s = Stats.Series.create ~name:"iops" () in
  for i = 1 to 100 do
    Stats.Series.add s (Sim.Time.ms i) (float_of_int (i * 10))
  done;
  check_int "length" 100 (Stats.Series.length s);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Stats.Series.max_value s);
  Alcotest.(check (float 1e-9)) "last" 1000.0 (Stats.Series.last_value s);
  Alcotest.(check string) "name" "iops" (Stats.Series.name s)

(* -- Registry ---------------------------------------------------------- *)

(* The registry is process-global: each test starts from an empty table
   ([clear]) so registrations from other tests (or instrumented library
   code exercised above) cannot leak in. *)
let with_empty_registry f =
  Stats.Registry.clear ();
  Fun.protect f ~finally:Stats.Registry.clear

let test_registry_create_or_get () =
  with_empty_registry (fun () ->
      let a = Stats.Registry.counter ~labels:[ ("x", "1") ] "ops" in
      let b = Stats.Registry.counter ~labels:[ ("x", "1") ] "ops" in
      Stats.Counter.incr a;
      check_int "same underlying counter" 1 (Stats.Counter.value b);
      let other = Stats.Registry.counter ~labels:[ ("x", "2") ] "ops" in
      check_int "distinct labels, distinct counter" 0 (Stats.Counter.value other))

let test_registry_label_order_canonical () =
  with_empty_registry (fun () ->
      let a =
        Stats.Registry.counter ~labels:[ ("b", "2"); ("a", "1") ] "ops"
      in
      let b =
        Stats.Registry.counter ~labels:[ ("a", "1"); ("b", "2") ] "ops"
      in
      Stats.Counter.incr a;
      check_int "label order irrelevant" 1 (Stats.Counter.value b))

let test_registry_kind_mismatch () =
  with_empty_registry (fun () ->
      ignore (Stats.Registry.counter "m");
      Alcotest.check_raises "kind collision"
        (Invalid_argument "Registry.histogram: m is already a counter")
        (fun () -> ignore (Stats.Registry.histogram "m")))

let test_registry_snapshot_sorted () =
  with_empty_registry (fun () ->
      ignore (Stats.Registry.counter "zeta");
      ignore (Stats.Registry.gauge "alpha");
      ignore (Stats.Registry.counter ~labels:[ ("k", "b") ] "mid");
      ignore (Stats.Registry.counter ~labels:[ ("k", "a") ] "mid");
      let names =
        List.map (fun m -> m.Stats.Registry.m_name) (Stats.Registry.snapshot ())
      in
      Alcotest.(check (list string))
        "sorted by name then labels"
        [ "alpha"; "mid"; "mid"; "zeta" ] names;
      match Stats.Registry.snapshot () with
      | [ _; m1; m2; _ ] ->
          Alcotest.(check (list (pair string string)))
            "label order breaks ties" [ ("k", "a") ] m1.Stats.Registry.m_labels;
          Alcotest.(check (list (pair string string)))
            "second" [ ("k", "b") ] m2.Stats.Registry.m_labels
      | _ -> Alcotest.fail "expected four metrics")

let test_registry_reset_all () =
  with_empty_registry (fun () ->
      let c = Stats.Registry.counter "ops" in
      let g = Stats.Registry.gauge "level" in
      let h = Stats.Registry.histogram "lat" in
      let s = Stats.Registry.series "depth" in
      Stats.Counter.incr c ~by:5;
      Stats.Gauge.set g 2.5;
      Stats.Histogram.record h 100;
      Stats.Series.add s 10 1.0;
      Stats.Registry.reset_all ();
      check_int "counter zeroed" 0 (Stats.Counter.value c);
      Alcotest.(check (float 1e-9)) "gauge zeroed" 0.0 (Stats.Gauge.value g);
      check_int "histogram emptied" 0 (Stats.Histogram.count h);
      check_int "series emptied" 0 (Stats.Series.length s);
      (* Registrations survive: same instance comes back. *)
      Stats.Counter.incr c;
      check_int "registration intact" 1
        (Stats.Counter.value (Stats.Registry.counter "ops")))

let test_registry_gauge_push_pull () =
  with_empty_registry (fun () ->
      let g = Stats.Registry.gauge "pushed" in
      Stats.Gauge.set g 3.0;
      Stats.Gauge.add g 1.5;
      Alcotest.(check (float 1e-9)) "push mode" 4.5 (Stats.Gauge.value g);
      let src = ref 7.0 in
      let p = Stats.Registry.gauge_fn "pulled" (fun () -> !src) in
      Alcotest.(check (float 1e-9)) "pull mode" 7.0 (Stats.Gauge.value p);
      src := 9.0;
      Alcotest.(check (float 1e-9)) "sampler re-read" 9.0 (Stats.Gauge.value p);
      (* Re-registering re-installs the sampler: last wins. *)
      let p2 = Stats.Registry.gauge_fn "pulled" (fun () -> 1.0) in
      Alcotest.(check (float 1e-9)) "last sampler wins" 1.0 (Stats.Gauge.value p2))

let test_registry_json () =
  with_empty_registry (fun () ->
      let c = Stats.Registry.counter ~labels:[ ("host", "0") ] "ops" in
      Stats.Counter.incr c ~by:3;
      let h = Stats.Registry.histogram "lat" in
      Stats.Histogram.record h 1000;
      let s = Stats.Registry.series "depth" in
      Stats.Series.add s 5 2.0;
      ignore (Stats.Registry.gauge "level");
      let json = Stats.Registry.to_json () in
      let contains sub =
        let n = String.length sub and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "envelope" true (contains "{\"metrics\":[");
      check_bool "counter value" true
        (contains "\"name\":\"ops\",\"labels\":{\"host\":\"0\"},\"type\":\"counter\",\"value\":3");
      check_bool "histogram stats" true (contains "\"p99\":");
      check_bool "series points" true (contains "\"points\":[[5,2]"))

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "exact small values" `Quick test_hist_exact_small;
          Alcotest.test_case "relative error" `Quick test_hist_relative_error;
          Alcotest.test_case "index/value round trip" `Quick
            test_hist_index_value_round_trip;
          QCheck_alcotest.to_alcotest hist_prop_round_trip;
          Alcotest.test_case "quantile order" `Quick test_hist_quantiles_order;
          Alcotest.test_case "interpolated quantiles (small)" `Quick
            test_hist_quantile_interp_small;
          Alcotest.test_case "interpolated quantiles vs sorted reference"
            `Quick test_hist_quantile_interp_vs_sorted_reference;
          QCheck_alcotest.to_alcotest hist_prop_quantile_interp_monotone;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "merge sub_bits mismatch" `Quick
            test_hist_merge_sub_bits_mismatch;
          Alcotest.test_case "negative clamp" `Quick test_hist_negative_clamped;
          Alcotest.test_case "record_n" `Quick test_hist_record_n;
          Alcotest.test_case "cdf" `Quick test_hist_cdf;
          QCheck_alcotest.to_alcotest hist_prop_quantile_bounds;
          QCheck_alcotest.to_alcotest hist_prop_mean_matches;
        ] );
      ( "summary",
        [
          Alcotest.test_case "welford" `Quick test_summary;
          Alcotest.test_case "empty" `Quick test_summary_empty;
        ] );
      ("series", [ Alcotest.test_case "basic" `Quick test_series ]);
      ( "registry",
        [
          Alcotest.test_case "create or get" `Quick test_registry_create_or_get;
          Alcotest.test_case "label canonicalization" `Quick
            test_registry_label_order_canonical;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "snapshot sorted" `Quick
            test_registry_snapshot_sorted;
          Alcotest.test_case "reset_all" `Quick test_registry_reset_all;
          Alcotest.test_case "gauge push/pull" `Quick
            test_registry_gauge_push_pull;
          Alcotest.test_case "json" `Quick test_registry_json;
        ] );
    ]
