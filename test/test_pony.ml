(* Tests for Pony Express: congestion control, reliable flows, and
   end-to-end messaging / one-sided operations. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Timely ------------------------------------------------------------- *)

let test_timely_increase_on_low_rtt () =
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  let r0 = Pony.Timely.rate_gbps cc in
  for _ = 1 to 50 do
    Pony.Timely.on_rtt_sample cc (T.us 8)
  done;
  check_bool "rate grew" true (Pony.Timely.rate_gbps cc > r0);
  check_bool "clamped at max" true (Pony.Timely.rate_gbps cc <= 100.0)

let test_timely_decrease_on_high_rtt () =
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  for _ = 1 to 20 do
    Pony.Timely.on_rtt_sample cc (T.us 8)
  done;
  let high = Pony.Timely.rate_gbps cc in
  for _ = 1 to 20 do
    Pony.Timely.on_rtt_sample cc (T.us 500)
  done;
  check_bool "rate fell" true (Pony.Timely.rate_gbps cc < high /. 2.0);
  check_bool "above min" true (Pony.Timely.rate_gbps cc >= 0.05)

let test_timely_gradient_response () =
  (* Rising RTT within [t_low, t_high] should reduce rate. *)
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  for i = 1 to 30 do
    Pony.Timely.on_rtt_sample cc (T.us (30 + (3 * i)))
  done;
  let falling = Pony.Timely.rate_gbps cc in
  (* Falling RTT should then recover the rate. *)
  for i = 1 to 30 do
    Pony.Timely.on_rtt_sample cc (T.us (max 21 (120 - (3 * i))))
  done;
  check_bool "gradient recovery" true (Pony.Timely.rate_gbps cc > falling)

let test_timely_loss () =
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  let r0 = Pony.Timely.rate_gbps cc in
  Pony.Timely.on_loss cc;
  Alcotest.(check (float 0.001)) "halved" (r0 /. 2.0) (Pony.Timely.rate_gbps cc)

let test_timely_min_rtt_tracking () =
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  Pony.Timely.on_rtt_sample cc (T.us 50);
  Pony.Timely.on_rtt_sample cc (T.us 9);
  Pony.Timely.on_rtt_sample cc (T.us 30);
  check_int "min rtt" (T.us 9) (Pony.Timely.min_rtt cc);
  check_int "samples" 3 (Pony.Timely.samples cc)

(* -- Wire --------------------------------------------------------------- *)

let test_wire_negotiate () =
  Alcotest.(check (option int)) "common" (Some 6) (Pony.Wire.negotiate [ 5; 6 ] [ 6; 7 ]);
  Alcotest.(check (option int)) "highest" (Some 7)
    (Pony.Wire.negotiate [ 5; 6; 7 ] [ 5; 6; 7 ]);
  Alcotest.(check (option int)) "none" None (Pony.Wire.negotiate [ 1 ] [ 2 ])

let test_wire_reverse () =
  let k = { Pony.Wire.src_host = 1; src_engine = 2; dst_host = 3; dst_engine = 4 } in
  let r = Pony.Wire.reverse k in
  check_int "src" 3 r.Pony.Wire.src_host;
  check_int "dst" 1 r.Pony.Wire.dst_host;
  check_bool "involution" true (Pony.Wire.reverse r = k)

(* -- Flow (driven manually, no engines) --------------------------------- *)

let mk_flow_pair () =
  let loop = Sim.Loop.create () in
  let k = { Pony.Wire.src_host = 0; src_engine = 0; dst_host = 1; dst_engine = 0 } in
  let a = Pony.Flow.create ~loop ~key:k ~max_rate_gbps:100.0 () in
  let b = Pony.Flow.create ~loop ~key:(Pony.Wire.reverse k) ~max_rate_gbps:100.0 () in
  (loop, a, b)

let test_flow_delivers_items () =
  let loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  for _ = 1 to 5 do
    Pony.Flow.enqueue a Pony.Wire.Bare_ack ~payload_bytes:100
  done;
  (* Bare_ack is not delivered; use a credit grant as a visible item. *)
  let ck =
    { Pony.Wire.initiator_host = 0; initiator_client = 0; target_host = 1; target_client = 0; session = 0 }
  in
  for i = 1 to 5 do
    Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = i }) ~payload_bytes:0
  done;
  let delivered = ref [] in
  let now = ref 0 in
  (* Pump: emit from a, receive at b. *)
  let rec pump guard =
    if guard > 0 then begin
      now := !now + 1_000;
      match Pony.Flow.emit a ~now:!now ~gen with
      | Some pkt -> (
          match Pony.Flow.on_receive b ~now:!now pkt with
          | Some (Pony.Wire.Credit_grant { bytes; _ }) ->
              delivered := bytes :: !delivered;
              pump (guard - 1)
          | _ -> pump (guard - 1))
      | None -> pump (guard - 1)
    end
  in
  pump 100;
  ignore loop;
  Alcotest.(check (list int)) "in order, exactly once" [ 1; 2; 3; 4; 5 ]
    (List.rev !delivered)

let test_flow_dedup_on_retransmit () =
  let _loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  let ck =
    { Pony.Wire.initiator_host = 0; initiator_client = 0; target_host = 1; target_client = 0; session = 0 }
  in
  Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = 42 }) ~payload_bytes:0;
  let pkt =
    match Pony.Flow.emit a ~now:1000 ~gen with Some p -> p | None -> Alcotest.fail "emit"
  in
  (* Deliver the same packet twice: only the first yields the item. *)
  let first = Pony.Flow.on_receive b ~now:2000 pkt in
  let second = Pony.Flow.on_receive b ~now:3000 pkt in
  check_bool "first delivered" true (Option.is_some first);
  check_bool "duplicate suppressed" true (Option.is_none second);
  check_int "delivered count" 1 (Pony.Flow.delivered b)

let test_flow_retransmit_on_timeout () =
  let _loop, a, _b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  let ck =
    { Pony.Wire.initiator_host = 0; initiator_client = 0; target_host = 1; target_client = 0; session = 0 }
  in
  Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = 1 }) ~payload_bytes:0;
  ignore (Pony.Flow.emit a ~now:1000 ~gen);
  check_int "in flight" 1 (Pony.Flow.in_flight a);
  (* No ack arrives; the timeout must requeue it. *)
  let requeued = Pony.Flow.check_timeout a ~now:(T.ms 1) in
  check_int "requeued" 1 requeued;
  check_bool "ready to re-emit" true (Pony.Flow.ready_to_emit a ~now:(T.ms 1));
  let again = Pony.Flow.emit a ~now:(T.ms 1) ~gen in
  check_bool "retransmitted" true (Option.is_some again);
  check_int "retx counted" 1 (Pony.Flow.retransmits a)

let test_flow_ack_clears_flight () =
  let _loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  let ck =
    { Pony.Wire.initiator_host = 0; initiator_client = 0; target_host = 1; target_client = 0; session = 0 }
  in
  Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = 1 }) ~payload_bytes:0;
  let pkt = Option.get (Pony.Flow.emit a ~now:1000 ~gen) in
  ignore (Pony.Flow.on_receive b ~now:2000 pkt);
  check_bool "b owes ack" true (Pony.Flow.ack_owed b);
  let ack = Option.get (Pony.Flow.make_ack b ~now:2500 ~gen) in
  ignore (Pony.Flow.on_receive a ~now:3000 ack);
  check_int "flight cleared" 0 (Pony.Flow.in_flight a);
  check_int "acked" 1 (Pony.Flow.acked_packets a);
  (* RTT sample fed congestion control. *)
  check_int "cc saw a sample" 1 (Pony.Timely.samples (Pony.Flow.cc a))

let test_flow_pacing_spaces_packets () =
  let _loop, a, _b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  let ck =
    { Pony.Wire.initiator_host = 0; initiator_client = 0; target_host = 1; target_client = 0; session = 0 }
  in
  (* Two 5000-byte items at 100 Gbps (Timely starts at half = 100 of 200
     cap... rate is max_rate/2 = 50 Gbps): second release gated. *)
  Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = 1 }) ~payload_bytes:4000;
  Pony.Flow.enqueue a (Pony.Wire.Credit_grant { conn = ck; bytes = 2 }) ~payload_bytes:4000;
  check_bool "first ready" true (Pony.Flow.ready_to_emit a ~now:0);
  ignore (Pony.Flow.emit a ~now:0 ~gen);
  check_bool "second paced" false (Pony.Flow.ready_to_emit a ~now:10);
  (match Pony.Flow.next_deadline a with
  | Some d -> check_bool "release in future" true (d > 10)
  | None -> Alcotest.fail "expected pacing deadline");
  check_bool "ready after release" true (Pony.Flow.ready_to_emit a ~now:(T.us 10))

(* -- End-to-end Pony ----------------------------------------------------- *)

type host = {
  m : Cpu.Sched.machine;
  pony : Pony.Express.t;
  ctl : Control.t;
}

let mk_cluster ?(hosts = 2) ?(cores = 10) ?(mtu = 5000) ?(engines = 1)
    ?(use_copy_engine = false) ?(mode = fun _ -> Engine.Dedicating { cores = 2 }) () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts in
  let dir = Pony.Express.Directory.create () in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores
    in
    let nic =
      Nic.create ~loop ~machine:m ~fabric:fab ~addr
        { Nic.default_config with Nic.mtu }
    in
    let ctl = Control.create ~loop ~machine:m ~name:(Printf.sprintf "snap%d" addr) in
    let group = Engine.create_group ~machine:m ~name:"pony" ~mode:(mode addr) in
    let pony =
      Pony.Express.create ~directory:dir ~control:ctl ~machine:m ~nic ~group ~engines
        ~use_copy_engine ()
    in
    { m; pony; ctl }
  in
  (loop, List.init hosts mk)

let spawn ?(spin = false) h name body =
  ignore
    (Cpu.Thread.spawn h.m ~name ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 })
       ~idle:(if spin then Cpu.Sched.Spin else Cpu.Sched.Block)
       body)

let test_pony_two_sided_message () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let got = ref None in
  let send_comp = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      let m = Pony.Express.await_message ctx c in
      got := Some m.Pony.Express.msg_bytes);
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      (* Give the server time to come up. *)
      Cpu.Thread.sleep ctx (T.us 200);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.send_message ctx conn ~bytes:1_000_000 ());
      let comp = Pony.Express.await_completion ctx c in
      send_comp := Some comp);
  Sim.Loop.run ~until:(T.ms 50) loop;
  (match !got with
  | Some bytes -> check_int "message size" 1_000_000 bytes
  | None -> Alcotest.fail "message not delivered");
  match !send_comp with
  | Some comp -> check_bool "send completed ok" true (comp.Pony.Express.status = Pony.Wire.Ok)
  | None -> Alcotest.fail "send completion missing"

let test_pony_ping_pong_latency () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let rtts = ref [] in
  spawn ~spin:true b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      for _ = 1 to 30 do
        let m = Pony.Express.await_message ctx c in
        ignore (Pony.Express.send_message ctx m.Pony.Express.msg_conn ~bytes:64 ())
      done);
  spawn ~spin:true a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      for _ = 1 to 30 do
        let t0 = Cpu.Thread.now ctx in
        ignore (Pony.Express.send_message ctx conn ~bytes:64 ());
        let _m = Pony.Express.await_message ctx c in
        rtts := (Cpu.Thread.now ctx - t0) :: !rtts
      done);
  Sim.Loop.run ~until:(T.ms 100) loop;
  check_int "30 rtts" 30 (List.length !rtts);
  let avg = List.fold_left ( + ) 0 !rtts / List.length !rtts in
  (* Figure 6(a): spinning client two-sided should be order-10us. *)
  check_bool (Printf.sprintf "rtt plausible (%dns)" avg) true
    (avg > T.us 4 && avg < T.us 25)

let test_pony_one_sided_read_correct () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let region = Memory.Region.create ~id:7 ~size:65536 ~owner:"server" () in
  Memory.Region.write_int64 region 4096 0xDEADBEEFL;
  let result = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c region;
      (* One-sided: the server thread does nothing else. *)
      Cpu.Thread.sleep ctx (T.ms 40));
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.one_sided_read ctx conn ~region:7 ~off:4096 ~len:4096);
      result := Some (Pony.Express.await_completion ctx c));
  Sim.Loop.run ~until:(T.ms 50) loop;
  match !result with
  | Some comp ->
      check_bool "status ok" true (comp.Pony.Express.status = Pony.Wire.Ok);
      check_int "bytes" 4096 comp.Pony.Express.bytes;
      Alcotest.(check (option int64)) "value read remotely" (Some 0xDEADBEEFL)
        comp.Pony.Express.value;
      check_int "server engine served it" 1 (Pony.Express.one_sided_served b.pony)
  | None -> Alcotest.fail "no completion"

let test_pony_one_sided_errors () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let region = Memory.Region.create ~id:1 ~size:1024 ~owner:"server" () in
  let comps = ref [] in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c region;
      Cpu.Thread.sleep ctx (T.ms 40));
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.one_sided_read ctx conn ~region:99 ~off:0 ~len:8);
      comps := Pony.Express.await_completion ctx c :: !comps;
      ignore (Pony.Express.one_sided_read ctx conn ~region:1 ~off:1000 ~len:100);
      comps := Pony.Express.await_completion ctx c :: !comps);
  Sim.Loop.run ~until:(T.ms 50) loop;
  match List.rev !comps with
  | [ c1; c2 ] ->
      check_bool "bad region" true (c1.Pony.Express.status = Pony.Wire.Bad_region);
      check_bool "bad range" true (c2.Pony.Express.status = Pony.Wire.Bad_range)
  | _ -> Alcotest.fail "expected two completions"

let test_pony_indirect_read () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let table = Memory.Region.create ~id:1 ~size:4096 ~owner:"server" () in
  let data = Memory.Region.create ~id:2 ~size:65536 ~owner:"server" () in
  (* table[3] points at offset 512 where the value lives. *)
  Memory.Region.write_int64 table (8 * 3) 512L;
  Memory.Region.write_int64 data 512 0xCAFEL;
  let result = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c table;
      Pony.Express.register_region ctx c data;
      Cpu.Thread.sleep ctx (T.ms 40));
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore
        (Pony.Express.indirect_read ctx conn ~table_region:1 ~data_region:2
           ~indices:[ 3; 3; 3; 3; 3; 3; 3; 3 ] ~len:128);
      result := Some (Pony.Express.await_completion ctx c));
  Sim.Loop.run ~until:(T.ms 50) loop;
  match !result with
  | Some comp ->
      check_bool "ok" true (comp.Pony.Express.status = Pony.Wire.Ok);
      check_int "batched bytes (8 x 128)" 1024 comp.Pony.Express.bytes;
      Alcotest.(check (option int64)) "value" (Some 0xCAFEL) comp.Pony.Express.value
  | None -> Alcotest.fail "no completion"

let test_pony_scan_read () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let region = Memory.Region.create ~id:5 ~size:8192 ~owner:"server" () in
  (* Entry 10: needle 777 -> pointer 2048; value there is 31337. *)
  Memory.Region.write_int64 region (16 * 10) 777L;
  Memory.Region.write_int64 region ((16 * 10) + 8) 2048L;
  Memory.Region.write_int64 region 2048 31337L;
  let results = ref [] in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c region;
      Cpu.Thread.sleep ctx (T.ms 40));
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.scan_read ctx conn ~region:5 ~scan_limit:1024 ~needle:777L ~len:64);
      results := Pony.Express.await_completion ctx c :: !results;
      ignore (Pony.Express.scan_read ctx conn ~region:5 ~scan_limit:1024 ~needle:999L ~len:64);
      results := Pony.Express.await_completion ctx c :: !results);
  Sim.Loop.run ~until:(T.ms 50) loop;
  match List.rev !results with
  | [ hit; miss ] ->
      check_bool "hit" true (hit.Pony.Express.status = Pony.Wire.Ok);
      Alcotest.(check (option int64)) "value at pointer" (Some 31337L) hit.Pony.Express.value;
      check_bool "miss" true (miss.Pony.Express.status = Pony.Wire.No_match)
  | _ -> Alcotest.fail "expected two completions"

let test_pony_streaming_throughput () =
  (* Dedicated spinning engines, 5000B MTU: expect tens of Gbps
     (Table 1 ballpark). *)
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let total = 256 * 1024 * 1024 in
  let received = ref 0 in
  let finish = ref 0 in
  spawn ~spin:true b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      while !received < total do
        let m = Pony.Express.await_message ctx c in
        received := !received + m.Pony.Express.msg_bytes
      done;
      finish := Cpu.Thread.now ctx);
  spawn ~spin:true a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      let sent = ref 0 and inflight = ref 0 in
      while !sent < total do
        ignore (Pony.Express.send_message ctx conn ~bytes:65536 ());
        sent := !sent + 65536;
        incr inflight;
        (* Bound outstanding sends by reaping completions. *)
        if !inflight > 8 then begin
          ignore (Pony.Express.await_completion ctx c);
          decr inflight
        end
      done);
  Sim.Loop.run ~until:(T.ms 200) loop;
  check_int "all delivered" total !received;
  let gbps = float_of_int total *. 8.0 /. float_of_int !finish in
  check_bool (Printf.sprintf "throughput plausible (%.1f Gbps)" gbps) true
    (gbps > 25.0 && gbps < 95.0)

let test_pony_flow_stats_and_credit () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let got = ref 0 in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      (* 3 MB in 1 MB messages exceeds the 1 MB initial credit, forcing
         the credit machinery to cycle. *)
      for _ = 1 to 3 do
        let m = Pony.Express.await_message ctx c in
        got := !got + m.Pony.Express.msg_bytes
      done);
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 500);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      for _ = 1 to 3 do
        ignore (Pony.Express.send_message ctx conn ~bytes:1_000_000 ())
      done;
      for _ = 1 to 3 do
        ignore (Pony.Express.await_completion ctx c)
      done);
  Sim.Loop.run ~until:(T.ms 100) loop;
  check_int "3MB delivered despite 1MB credit" 3_000_000 !got;
  let stats = Pony.Express.flow_stats a.pony in
  check_bool "flow stats visible" true (List.length stats >= 1);
  let delivered = List.fold_left (fun acc (_, d, _) -> acc + d) 0 stats in
  check_bool "packets delivered on reverse flow" true (delivered > 0)

let () =
  Alcotest.run ~and_exit:false "pony"
    [
      ( "timely",
        [
          Alcotest.test_case "increase" `Quick test_timely_increase_on_low_rtt;
          Alcotest.test_case "decrease" `Quick test_timely_decrease_on_high_rtt;
          Alcotest.test_case "gradient" `Quick test_timely_gradient_response;
          Alcotest.test_case "loss" `Quick test_timely_loss;
          Alcotest.test_case "min rtt" `Quick test_timely_min_rtt_tracking;
        ] );
      ( "wire",
        [
          Alcotest.test_case "negotiate" `Quick test_wire_negotiate;
          Alcotest.test_case "reverse" `Quick test_wire_reverse;
        ] );
      ( "flow",
        [
          Alcotest.test_case "delivers in order" `Quick test_flow_delivers_items;
          Alcotest.test_case "dedup" `Quick test_flow_dedup_on_retransmit;
          Alcotest.test_case "timeout retransmit" `Quick test_flow_retransmit_on_timeout;
          Alcotest.test_case "ack clears flight" `Quick test_flow_ack_clears_flight;
          Alcotest.test_case "pacing" `Quick test_flow_pacing_spaces_packets;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "two-sided message" `Quick test_pony_two_sided_message;
          Alcotest.test_case "ping-pong latency" `Quick test_pony_ping_pong_latency;
          Alcotest.test_case "one-sided read" `Quick test_pony_one_sided_read_correct;
          Alcotest.test_case "one-sided errors" `Quick test_pony_one_sided_errors;
          Alcotest.test_case "indirect read" `Quick test_pony_indirect_read;
          Alcotest.test_case "scan read" `Quick test_pony_scan_read;
          Alcotest.test_case "credit flow control" `Quick test_pony_flow_stats_and_credit;
          Alcotest.test_case "streaming throughput" `Slow test_pony_streaming_throughput;
        ] );
    ]

(* -- Appended edge-case tests -------------------------------------------- *)

let test_mixed_release_version_negotiation () =
  (* A host on an old release and one on a new release must speak the
     least common denominator (§3.1). *)
  let loop = Sim.Loop.create ~seed:5 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = Pony.Express.Directory.create () in
  let mk addr versions =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 1 })
      ~wire_versions:versions ()
  in
  let a = mk 0 [ 5; 6 ] and b = mk 1 [ 6; 7 ] in
  let got = ref None in
  ignore
    (Snap.Host.spawn_app b ~name:"server" (fun ctx ->
         let c = Pony.Express.create_client ctx b.Snap.Host.pony ~name:"server" () in
         let m = Pony.Express.await_message ctx c in
         got := Some m.Pony.Express.msg_bytes));
  ignore
    (Snap.Host.spawn_app a ~name:"client" (fun ctx ->
         let c = Pony.Express.create_client ctx a.Snap.Host.pony ~name:"client" () in
         Cpu.Thread.sleep ctx (T.us 300);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         ignore (Pony.Express.send_message ctx conn ~bytes:100 ())));
  Sim.Loop.run ~until:(T.ms 20) loop;
  Alcotest.(check (option int)) "delivered across releases" (Some 100) !got;
  List.iter
    (fun (_, v) -> check_int "negotiated LCD version" 6 v)
    (Pony.Express.flow_versions a.Snap.Host.pony)

let test_one_sided_write () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let region = Memory.Region.create ~id:4 ~size:1024 ~owner:"server" () in
  let comp = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c region;
      Cpu.Thread.sleep ctx (T.ms 30));
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 300);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.one_sided_write ctx conn ~region:4 ~off:100 ~len:200);
      comp := Some (Pony.Express.await_completion ctx c));
  Sim.Loop.run ~until:(T.ms 40) loop;
  match !comp with
  | Some c -> check_bool "write ok" true (c.Pony.Express.status = Pony.Wire.Ok)
  | None -> Alcotest.fail "no completion"

let test_zero_byte_message () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let got = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      let m = Pony.Express.await_message ctx c in
      got := Some m.Pony.Express.msg_bytes);
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 300);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.send_message ctx conn ~bytes:0 ()));
  Sim.Loop.run ~until:(T.ms 20) loop;
  Alcotest.(check (option int)) "zero-byte message delivered" (Some 0) !got

let test_streams_interleave () =
  (* Messages on distinct streams of one connection all arrive, each
     reassembled independently. *)
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let sizes = ref [] in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      for _ = 1 to 3 do
        let m = Pony.Express.await_message ctx c in
        sizes := (m.Pony.Express.stream, m.Pony.Express.msg_bytes) :: !sizes
      done);
  spawn a "client" (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 300);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.send_message ctx conn ~stream:1 ~bytes:500_000 ());
      ignore (Pony.Express.send_message ctx conn ~stream:2 ~bytes:64 ());
      ignore (Pony.Express.send_message ctx conn ~stream:3 ~bytes:100_000 ()));
  Sim.Loop.run ~until:(T.ms 50) loop;
  let sorted = List.sort compare !sizes in
  Alcotest.(check (list (pair int int)))
    "all three streams delivered"
    [ (1, 500_000); (2, 64); (3, 100_000) ]
    sorted

let test_pony_recovers_from_fabric_loss () =
  (* A lossy fabric (tiny egress buffers) forces flow-level
     retransmission; a large message must still arrive intact. *)
  let loop = Sim.Loop.create ~seed:17 () in
  let fab =
    Fabric.create ~loop
      ~config:{ Fabric.default_config with Fabric.egress_buffer_bytes = 60_000 }
      ~hosts:2
  in
  let dir = Pony.Express.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 1 }) ()
  in
  let a = mk 0 and b = mk 1 in
  let got = ref None in
  ignore
    (Snap.Host.spawn_app b ~name:"server" (fun ctx ->
         let c = Pony.Express.create_client ctx b.Snap.Host.pony ~name:"server" () in
         let m = Pony.Express.await_message ctx c in
         got := Some m.Pony.Express.msg_bytes));
  ignore
    (Snap.Host.spawn_app a ~name:"client" (fun ctx ->
         let c = Pony.Express.create_client ctx a.Snap.Host.pony ~name:"client" () in
         Cpu.Thread.sleep ctx (T.us 300);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         ignore (Pony.Express.send_message ctx conn ~bytes:4_000_000 ())));
  Sim.Loop.run ~until:(T.sec 2) loop;
  Alcotest.(check (option int)) "message intact despite loss" (Some 4_000_000) !got

let test_completion_latency_fields () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let region = Memory.Region.create ~id:1 ~size:128 ~owner:"server" () in
  let comp = ref None in
  spawn b "server" (fun ctx ->
      let c = Pony.Express.create_client ctx b.pony ~name:"server" () in
      Pony.Express.register_region ctx c region;
      Cpu.Thread.sleep ctx (T.ms 30));
  spawn a "client" ~spin:true (fun ctx ->
      let c = Pony.Express.create_client ctx a.pony ~name:"client" () in
      Cpu.Thread.sleep ctx (T.us 300);
      let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
      ignore (Pony.Express.one_sided_read ctx conn ~region:1 ~off:0 ~len:64);
      comp := Some (Pony.Express.await_completion ctx c));
  Sim.Loop.run ~until:(T.ms 40) loop;
  match !comp with
  | Some c ->
      let lat = c.Pony.Express.completed_at - c.Pony.Express.issued_at in
      check_bool "issue/complete stamps ordered" true (lat > 0);
      check_bool "one-sided latency near Figure 6(a)" true
        (lat > T.us 4 && lat < T.us 30)
  | None -> Alcotest.fail "no completion"

(* Deadline arming and expiry now run through the per-engine timing
   wheel and the [deadline_due] queue: only conns whose waiting-head
   deadline actually fired are visited, and firing order is salted
   exactly like the event heap.  This scenario is the regression guard
   for that path — several conns exhaust their connection credit at
   once, park expiring and generous sends behind the blockage, and the
   per-op outcomes must come out exactly, in the same order, on every
   run (the suite runs under OCAMLRUNPARAM=R in CI, so any surviving
   Hashtbl-iteration dependence would show up as a diff between the two
   back-to-back runs below). *)

let run_deadline_storm () =
  let loop, hosts = mk_cluster () in
  let a = List.nth hosts 0 and b = List.nth hosts 1 in
  let drivers = 2 in
  let big = 1 lsl 20 in
  for i = 0 to drivers - 1 do
    spawn b
      (Printf.sprintf "sink%d" i)
      (fun ctx ->
        (* Distinct creation instants make client-id assignment (and so
           [~dst_client:i]) independent of same-instant thread order. *)
        Cpu.Thread.sleep ctx (T.us (10 * (i + 1)));
        let c =
          Pony.Express.create_client ctx b.pony ~name:(Printf.sprintf "sink%d" i) ()
        in
        for _ = 1 to 6 do
          ignore (Pony.Express.await_message ctx c)
        done)
  done;
  let outcomes = Array.make drivers [] in
  for i = 0 to drivers - 1 do
    spawn a
      (Printf.sprintf "drv%d" i)
      (fun ctx ->
        let c =
          Pony.Express.create_client ctx a.pony ~name:(Printf.sprintf "drv%d" i) ()
        in
        Cpu.Thread.sleep ctx (T.us (200 + (50 * i)));
        let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:i in
        (* Exactly exhaust the 4 MiB connection credit so everything
           posted after this parks on the credit-waiting queue. *)
        for _ = 1 to 4 do
          ignore (Pony.Express.send_message ctx conn ~bytes:big ())
        done;
        let now = Cpu.Thread.now ctx in
        (* Heads whose deadline passes long before any credit can
           return (a 1 MiB delivery takes real virtual time), then
           tails generous enough to ride out the blockage. *)
        for _ = 1 to 3 do
          ignore
            (Pony.Express.send_message ctx conn
               ~deadline:(T.add now (T.us 1)) ~bytes:64 ())
        done;
        for _ = 1 to 2 do
          ignore
            (Pony.Express.send_message ctx conn
               ~deadline:(T.add now (T.ms 300)) ~bytes:64 ())
        done;
        for _ = 1 to 9 do
          let comp = Pony.Express.await_completion ctx c in
          outcomes.(i) <-
            (comp.Pony.Express.comp_op, comp.Pony.Express.status) :: outcomes.(i)
        done)
  done;
  Sim.Loop.run ~until:(T.ms 400) loop;
  Array.map List.rev outcomes

let test_deadline_expiry_deterministic () =
  let first = run_deadline_storm () in
  Array.iteri
    (fun i os ->
      let label s = Printf.sprintf "driver %d: %s" i s in
      check_int (label "all ops completed") 9 (List.length os);
      let count st = List.length (List.filter (fun (_, s) -> s = st) os) in
      check_int (label "expired heads timed out") 3 (count Pony.Wire.Timed_out);
      check_int (label "credit-backed ops ok") 6 (count Pony.Wire.Ok))
    first;
  (* Same scenario, fresh cluster: outcome vectors (op id, status, in
     completion order) must be bit-identical. *)
  let second = run_deadline_storm () in
  check_bool "identical outcome order across runs" true (first = second)

(* A keepalive-configured host pair must still quiesce when idle: the
   watch on a proven-alive conn lapses instead of re-arming forever, so
   after the last exchange the event heap drains and virtual time stops
   far short of the horizon.  Guards the quiesce-aware arming that lets
   [Pool.assert_quiesced]-style workloads keep keepalives on. *)
let test_keepalive_idle_quiesce () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = Pony.Express.Directory.create () in
  let keepalive = { Pony.Express.ka_interval = T.us 100; ka_miss_budget = 2 } in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ~keepalive ()
  in
  let a = mk 0 and b = mk 1 in
  let sent = ref false in
  ignore
    (Snap.Host.spawn_app b ~name:"b" (fun ctx ->
         let c = Pony.Express.create_client ctx b.Snap.Host.pony ~name:"b" () in
         while true do
           ignore (Pony.Express.await_message ctx c)
         done));
  ignore
    (Snap.Host.spawn_app a ~name:"a" (fun ctx ->
         let c = Pony.Express.create_client ctx a.Snap.Host.pony ~name:"a" () in
         Cpu.Thread.sleep ctx (T.us 200);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         ignore (Pony.Express.send_message ctx conn ~bytes:64 ());
         let comp = Pony.Express.await_completion ctx c in
         sent := comp.Pony.Express.status = Pony.Wire.Ok));
  Sim.Loop.run ~until:(T.sec 1) loop;
  check_bool "exchange completed" true !sent;
  check_bool "conn still alive on both sides" true
    (Pony.Express.peer_deaths a.Snap.Host.pony = 0
    && Pony.Express.peer_deaths b.Snap.Host.pony = 0);
  (* [run ~until] advances the clock to the horizon regardless, so
     quiescence shows up as a drained event heap: an eternally
     re-arming watch would keep timer events pending forever. *)
  check_int "event heap drained — idle watches lapsed" 0
    (Sim.Loop.pending_events loop);
  (* The regression this guards (probe arrivals restarting the peer's
     watch) probed ~10/ms forever; a quiescent pair sends at most a
     couple of cycles around the exchange. *)
  check_bool "probing stopped on both sides" true
    (Pony.Express.keepalive_probes a.Snap.Host.pony <= 4
    && Pony.Express.keepalive_probes b.Snap.Host.pony <= 4)

let () =
  Alcotest.run "pony-extra"
    [
      ( "edge cases",
        [
          Alcotest.test_case "mixed-release versions" `Quick
            test_mixed_release_version_negotiation;
          Alcotest.test_case "one-sided write" `Quick test_one_sided_write;
          Alcotest.test_case "zero-byte message" `Quick test_zero_byte_message;
          Alcotest.test_case "streams interleave" `Quick test_streams_interleave;
          Alcotest.test_case "recovers from loss" `Quick
            test_pony_recovers_from_fabric_loss;
          Alcotest.test_case "completion stamps" `Quick
            test_completion_latency_fields;
        ] );
      ( "timers",
        [
          Alcotest.test_case "deadline expiry deterministic" `Quick
            test_deadline_expiry_deterministic;
          Alcotest.test_case "keepalive idle quiesce" `Quick
            test_keepalive_idle_quiesce;
        ] );
    ]
