(* Tests for the connection lifecycle: bounded-retry send, graceful
   close, keepalive dead-peer detection, host crash/restart with
   incarnation fencing, deadline-bounded awaits, and one-way (half-open)
   blackouts. *)

module T = Sim.Time
module PE = Pony.Express

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* [Cpu.Thread.sleep] parks until the next wake — the duration timer is
   one waker, but completion/message deliveries also wake the task — so
   tests that need to hold position until an absolute instant must
   re-sleep on early wakes. *)
let sleep_until ctx t =
  while Cpu.Thread.now ctx < t do
    Cpu.Thread.sleep ctx (T.sub t (Cpu.Thread.now ctx))
  done

let mk_cluster ?keepalive ?(hosts = 2) () =
  let loop = Sim.Loop.create ~seed:7 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts in
  let dir = PE.Directory.create () in
  let hs =
    List.init hosts (fun addr ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
          ~mode:(Engine.Dedicating { cores = 2 })
          ?keepalive ())
  in
  (loop, fab, hs)

(* -- Retry policy arithmetic --------------------------------------------- *)

let test_retry_schedule () =
  let p =
    {
      Overload.Retry.max_attempts = 4;
      base_delay = T.us 50;
      multiplier = 2.0;
      max_delay = T.us 120;
      op_timeout = None;
    }
  in
  check_int "attempt 1 has no delay" 0
    (Overload.Retry.delay_before p ~attempt:1);
  check_int "attempt 2 waits base" (T.us 50)
    (Overload.Retry.delay_before p ~attempt:2);
  check_int "attempt 3 doubles" (T.us 100)
    (Overload.Retry.delay_before p ~attempt:3);
  check_int "attempt 4 capped" (T.us 120)
    (Overload.Retry.delay_before p ~attempt:4);
  check_bool "within budget" false
    (Overload.Retry.attempts_exhausted p ~attempt:4);
  check_bool "exhausted past budget" true
    (Overload.Retry.attempts_exhausted p ~attempt:5);
  (* The Pony re-export is the same module (type equality matters for
     callers building policies against either path). *)
  check_int "re-export is the same arithmetic" (T.us 100)
    (PE.Retry.delay_before p ~attempt:3)

(* -- send_with_retry: exhaustion walks the backoff schedule -------------- *)

let test_retry_exhaustion_backoff () =
  (* A 1-byte admission quota rejects every 1000-byte send instantly, so
     the elapsed time of a failed send_with_retry is almost exactly the
     sum of the inter-attempt backoffs. *)
  let loop, _fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let policy =
    {
      PE.Retry.max_attempts = 3;
      base_delay = T.us 80;
      multiplier = 3.0;
      max_delay = T.ms 1;
      op_timeout = None;
    }
  in
  (* Backoffs: 80us before attempt 2, 240us before attempt 3. *)
  let expected = T.us 320 in
  let status = ref None in
  let elapsed = ref T.zero in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         ignore (PE.create_client ctx hb.Snap.Host.pony ~name:"b" ())));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c =
           PE.create_client ctx ha.Snap.Host.pony ~name:"a" ~max_bytes:1 ()
         in
         sleep_until ctx (T.us 200);
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         let t0 = Cpu.Thread.now ctx in
         (match PE.send_with_retry ctx cn ~policy ~bytes:1000 () with
         | Ok _ -> ()
         | Error comp -> status := Some comp.PE.status);
         elapsed := T.sub (Cpu.Thread.now ctx) t0));
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_bool "exhausted with the final Rejected" true
    (!status = Some Pony.Wire.Rejected);
  check_bool "slept through every backoff" true (!elapsed >= expected);
  check_bool "no extra attempts or waits" true (!elapsed < expected + T.us 200)

(* -- send_with_retry: foreign completions are discarded, not confused ---- *)

let test_retry_foreign_completions () =
  let loop, _fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let retry_op = ref None in
  let plain_op = ref None in
  let leftover = ref (Some Pony.Wire.Ok) in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         ignore (PE.create_client ctx hb.Snap.Host.pony ~name:"b" ())));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 200);
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         (* A plain send whose completion lands while the helper runs. *)
         plain_op := Some (PE.send_message ctx cn ~bytes:64 ());
         (match PE.send_with_retry ctx cn ~bytes:64 () with
         | Ok comp -> retry_op := Some comp.PE.comp_op
         | Error _ -> ());
         sleep_until ctx (T.add (Cpu.Thread.now ctx) (T.ms 1));
         leftover :=
           Option.map
             (fun (c : PE.completion) -> c.PE.status)
             (PE.poll_completion ctx c)));
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_bool "helper returned its own op" true
    (Option.is_some !retry_op && !retry_op <> !plain_op);
  check_bool "foreign completion consumed, not replayed" true
    (!leftover = None)

(* -- Graceful close and Peer_dead give-up -------------------------------- *)

let test_close_and_peer_dead () =
  let loop, _fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let b_state = ref None in
  let b_refused = ref None in
  let a_dead = ref false in
  let a_status = ref None in
  let a_elapsed = ref T.zero in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         let c = PE.create_client ctx hb.Snap.Host.pony ~name:"b" () in
         let m = PE.await_message ctx c in
         (* Close the server half as soon as the first message lands. *)
         PE.close ctx m.PE.msg_conn;
         sleep_until ctx (T.add (Cpu.Thread.now ctx) (T.us 300));
         b_state := Some (PE.conn_state m.PE.msg_conn);
         (* New sends on the closed half refuse without reaching the
            wire. *)
         ignore (PE.send_message ctx m.PE.msg_conn ~bytes:64 ());
         let comp = PE.await_completion ctx c in
         b_refused := Some comp.PE.status));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 200);
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         (match PE.send_with_retry ctx cn ~bytes:64 () with
         | Ok _ -> ()
         | Error _ -> ());
         (* The peer's reset kills our half. *)
         sleep_until ctx (T.add (Cpu.Thread.now ctx) (T.ms 1));
         a_dead := PE.conn_state cn = PE.Dead;
         (* Peer_dead is not retryable: a patient policy must give up
            immediately instead of burning its backoff schedule. *)
         let policy =
           {
             PE.Retry.max_attempts = 5;
             base_delay = T.us 500;
             multiplier = 2.0;
             max_delay = T.ms 2;
             op_timeout = None;
           }
         in
         let t0 = Cpu.Thread.now ctx in
         (match PE.send_with_retry ctx cn ~policy ~bytes:64 () with
         | Ok _ -> ()
         | Error comp -> a_status := Some comp.PE.status);
         a_elapsed := T.sub (Cpu.Thread.now ctx) t0));
  Sim.Loop.run ~until:(T.ms 10) loop;
  check_bool "server half drained to Closed" true (!b_state = Some PE.Closed);
  check_bool "send on closed conn refuses" true
    (!b_refused = Some Pony.Wire.Rejected);
  check_bool "reset killed the client half" true !a_dead;
  check_bool "Peer_dead reported" true (!a_status = Some Pony.Wire.Peer_dead);
  check_bool "gave up without retrying" true (!a_elapsed < T.us 500);
  check_bool "close counted" true
    (PE.conns_closed hb.Snap.Host.pony >= 1);
  check_bool "reset counted" true
    (PE.conn_resets_sent hb.Snap.Host.pony >= 1);
  check_bool "peer-dead ops counted" true
    (PE.peer_dead_ops ha.Snap.Host.pony >= 1)

(* -- Keepalive dead-peer detection --------------------------------------- *)

let test_keepalive_detection () =
  (* 100us probes, miss budget 2: a silent peer is declared dead after
     300us.  Crash the server at 1ms and measure the declaration. *)
  let keepalive = { PE.ka_interval = T.us 100; ka_miss_budget = 2 } in
  let loop, _fab, hosts = mk_cluster ~keepalive () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let crash_at = T.ms 1 in
  let dead_at = ref None in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         let c = PE.create_client ctx hb.Snap.Host.pony ~name:"b" () in
         ignore (PE.await_message ctx c)));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 200);
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         (match PE.send_with_retry ctx cn ~bytes:64 () with
         | Ok _ -> ()
         | Error _ -> ());
         (* Keepalive watches are quiesce-aware: a proven-alive idle
            conn stops probing.  Touch the conn shortly before the
            crash so the watch is active when the peer goes silent. *)
         sleep_until ctx (T.us 900);
         (match PE.send_with_retry ctx cn ~bytes:64 () with
         | Ok _ -> ()
         | Error _ -> ());
         while !dead_at = None && Cpu.Thread.now ctx < T.ms 4 do
           if PE.conn_state cn = PE.Dead then
             dead_at := Some (Cpu.Thread.now ctx)
           else Cpu.Thread.sleep ctx (T.us 20)
         done));
  ignore (Sim.Loop.at loop crash_at (fun () -> PE.crash_host hb.Snap.Host.pony));
  Sim.Loop.run ~until:(T.ms 5) loop;
  (match !dead_at with
  | None -> Alcotest.fail "silent peer never declared dead"
  | Some t ->
      let detect = T.sub t crash_at in
      (* ka_interval * (miss_budget + 1) of silence, plus probe-timer
         granularity and polling slack. *)
      check_bool "declared within the keepalive bound" true
        (detect <= T.us 600));
  check_bool "probes were sent" true (PE.keepalive_probes ha.Snap.Host.pony > 0);
  check_bool "death counted" true (PE.peer_deaths ha.Snap.Host.pony >= 1);
  check_bool "snapshot shows the dead conn" true
    (contains_sub (PE.debug_snapshot ha.Snap.Host.pony) "dead");
  check_bool "snapshot ages conns" true
    (contains_sub (PE.debug_snapshot ha.Snap.Host.pony) "heard=");
  check_bool "crashed host snapshot says down" true
    (contains_sub (PE.debug_snapshot hb.Snap.Host.pony) "down");
  check_bool "host reports not alive" false (PE.host_alive hb.Snap.Host.pony)

(* -- Host crash / restart: incarnation fencing and reconnect ------------- *)

let test_crash_restart_reconnect () =
  let loop, _fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let crash_at = T.ms 1 and restart_at = T.ms 2 in
  let old_client_alive = ref true in
  let registrations = ref 0 in
  let pre_crash_ok = ref false in
  let post_restart_ok = ref false in
  let reconnected = ref false in
  ignore
    (Snap.Host.spawn_app hb ~name:"srv" ~spin:true (fun ctx ->
         let first = ref None in
         let fresh () =
           incr registrations;
           let c = PE.create_client ctx hb.Snap.Host.pony ~name:"srv" () in
           if !first = None then first := Some c;
           c
         in
         let rec serve c =
           if Cpu.Thread.now ctx >= T.ms 19 then
             old_client_alive := PE.client_alive (Option.get !first)
           else if not (PE.client_alive c) then begin
             while not (PE.host_alive hb.Snap.Host.pony) do
               Cpu.Thread.sleep ctx (T.us 100)
             done;
             serve (fresh ())
           end
           else begin
             (match
                PE.await_message_until ctx c
                  ~deadline:(T.add (Cpu.Thread.now ctx) (T.us 200))
              with
             | Some m -> ignore (PE.send_message ctx m.PE.msg_conn ~bytes:64 ())
             | None -> ());
             serve c
           end
         in
         serve (fresh ())));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 300);
         let echo cn =
           match PE.send_with_retry ctx cn ~bytes:64 () with
           | Ok _ ->
               Option.is_some
                 (PE.await_message_until ctx c
                    ~deadline:(T.add (Cpu.Thread.now ctx) (T.us 500)))
           | Error _ -> false
         in
         let cn0 =
           Option.get (PE.connect_with_retry ctx c ~dst_host:1 ~dst_name:"srv" ())
         in
         pre_crash_ok := echo cn0;
         (* Ride through the outage: keep trying until an echo crosses
            the restarted server.  The first sends die on the stale conn
            (reset by the new incarnation), forcing a re-dial. *)
         let conn = ref cn0 in
         sleep_until ctx restart_at;
         while (not !post_restart_ok) && Cpu.Thread.now ctx < T.ms 18 do
           if PE.conn_state !conn <> PE.Established then begin
             match
               PE.connect_with_retry ctx c ~dst_host:1 ~dst_name:"srv"
                 ~policy:
                   {
                     PE.Retry.max_attempts = 100;
                     base_delay = T.us 100;
                     multiplier = 1.5;
                     max_delay = T.us 500;
                     op_timeout = None;
                   }
                 ()
             with
             | Some cn ->
                 reconnected := true;
                 conn := cn
             | None -> ()
           end
           else if echo !conn then post_restart_ok := true
           else Cpu.Thread.sleep ctx (T.us 100)
         done));
  ignore (Sim.Loop.at loop crash_at (fun () -> PE.crash_host hb.Snap.Host.pony));
  ignore
    (Sim.Loop.at loop restart_at (fun () -> PE.restart_host hb.Snap.Host.pony));
  Sim.Loop.run ~until:(T.ms 20) loop;
  check_bool "echo worked before the crash" true !pre_crash_ok;
  check_bool "echo worked after the restart" true !post_restart_ok;
  check_bool "client re-dialed" true !reconnected;
  check_int "server re-registered under the same name" 2 !registrations;
  check_int "restart bumped the incarnation" 1
    (PE.incarnation hb.Snap.Host.pony);
  check_bool "pre-crash client did not survive" false !old_client_alive;
  check_bool "peer restart detected" true
    (PE.peer_restarts_detected ha.Snap.Host.pony >= 1);
  check_bool "host back up" true (PE.host_alive hb.Snap.Host.pony)

(* -- Deadline-bounded awaits --------------------------------------------- *)

let test_await_until () =
  let loop, _fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  let idle_comp = ref (Some Pony.Wire.Ok) in
  let idle_msg = ref true in
  let woke_at = ref T.zero in
  let live_comp = ref None in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         ignore (PE.create_client ctx hb.Snap.Host.pony ~name:"b" ())));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 200);
         (* Nothing outstanding: both awaits expire at the deadline. *)
         let d1 = T.add (Cpu.Thread.now ctx) (T.us 300) in
         idle_comp :=
           Option.map
             (fun (x : PE.completion) -> x.PE.status)
             (PE.await_completion_until ctx c ~deadline:d1);
         let d2 = T.add (Cpu.Thread.now ctx) (T.us 300) in
         idle_msg := Option.is_some (PE.await_message_until ctx c ~deadline:d2);
         woke_at := Cpu.Thread.now ctx;
         check_bool "slept to the deadline, not past it" true
           (!woke_at >= d2 && !woke_at <= T.add d2 (T.us 50));
         (* With traffic the await returns early with the completion. *)
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         ignore (PE.send_message ctx cn ~bytes:64 ());
         live_comp :=
           Option.map
             (fun (x : PE.completion) -> x.PE.status)
             (PE.await_completion_until ctx c
                ~deadline:(T.add (Cpu.Thread.now ctx) (T.ms 2)))));
  Sim.Loop.run ~until:(T.ms 10) loop;
  check_bool "no completion out of thin air" true (!idle_comp = None);
  check_bool "no message out of thin air" false !idle_msg;
  check_bool "real completion beats the deadline" true
    (!live_comp = Some Pony.Wire.Ok)

(* -- One-way (half-open) blackout ---------------------------------------- *)

let test_oneway_blackout () =
  let loop, fab, hosts = mk_cluster () in
  let ha = List.hd hosts and hb = List.nth hosts 1 in
  (* Drop host 0 -> host 1 only, between 1ms and 3ms. *)
  let plan =
    Fault.Plan.make ~seed:3
      [
        Fault.Plan.Link_blackout_oneway
          { src = 0; dst = 1; start = T.ms 1; duration = T.ms 2 };
      ]
  in
  let inj = Fault.Injector.install ~loop ~plan ~fabric:fab ~hosts:[] in
  let pre_window_ok = ref false in
  let b_to_a = ref false in
  let second_arrival = ref None in
  ignore
    (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
         let c = PE.create_client ctx hb.Snap.Host.pony ~name:"b" () in
         sleep_until ctx (T.us 500);
         let cn = PE.connect_by_name ctx c ~dst_host:0 ~dst_name:"a" in
         (* The pre-window forward message crossed cleanly. *)
         ignore (PE.await_message ctx c);
         pre_window_ok := true;
         (* Into the window: reverse-direction traffic still flows. *)
         sleep_until ctx (T.us 1500);
         ignore (PE.send_message ctx cn ~bytes:64 ());
         (* The message a sends mid-window is held back until the window
            lifts and the flow retransmits it. *)
         ignore (PE.await_message ctx c);
         second_arrival := Some (Cpu.Thread.now ctx)));
  ignore
    (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
         sleep_until ctx (T.us 200);
         let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
         (* Both directions healthy before the window. *)
         ignore (PE.send_message ctx cn ~bytes:64 ());
         sleep_until ctx (T.us 1500);
         (* 1 -> 0 passes... *)
         b_to_a :=
           Option.is_some
             (PE.await_message_until ctx c
                ~deadline:(T.add (Cpu.Thread.now ctx) (T.us 400)));
         (* ...while 0 -> 1 is silently dropped until 3ms. *)
         ignore (PE.send_message ctx cn ~bytes:64 ())));
  Sim.Loop.run ~until:(T.ms 8) loop;
  check_bool "forward direction healthy before the window" true !pre_window_ok;
  check_bool "reverse direction crossed the half-open window" true !b_to_a;
  (match !second_arrival with
  | None -> Alcotest.fail "mid-window message never recovered"
  | Some t ->
      check_bool "held back until the window lifted" true (t >= T.ms 3));
  check_bool "forward packets were dropped" true
    (List.assoc "blackout_drops" (Fault.Injector.counters inj) > 0)

let () =
  Alcotest.run "lifecycle"
    [
      ( "retry",
        [
          Alcotest.test_case "backoff schedule arithmetic" `Quick
            test_retry_schedule;
          Alcotest.test_case "exhaustion walks the schedule" `Quick
            test_retry_exhaustion_backoff;
          Alcotest.test_case "foreign completions discarded" `Quick
            test_retry_foreign_completions;
        ] );
      ( "close",
        [
          Alcotest.test_case "graceful close and Peer_dead give-up" `Quick
            test_close_and_peer_dead;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "silent peer declared within bound" `Quick
            test_keepalive_detection;
        ] );
      ( "crash",
        [
          Alcotest.test_case "restart, incarnation fence, reconnect" `Quick
            test_crash_restart_reconnect;
        ] );
      ( "await",
        [ Alcotest.test_case "deadline-bounded awaits" `Quick test_await_until ]
      );
      ( "oneway",
        [
          Alcotest.test_case "half-open blackout asymmetry" `Quick
            test_oneway_blackout;
        ] );
    ]
