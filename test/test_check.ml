(* Tests for the correctness harness: the invariant registry, salted
   heap tie-breaks, and the schedule-perturbation sweep. *)

module I = Check.Invariant
module E = Check.Explore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test restores the globally-off default so checking never leaks
   into unrelated suites. *)
let with_checking f =
  I.set_enabled true;
  I.begin_run ();
  Fun.protect ~finally:(fun () ->
      I.begin_run ();
      I.set_enabled false)
    f

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_violation ~substring f =
  match f () with
  | exception I.Violation msg ->
      check_bool
        (Printf.sprintf "violation mentions %S (got %S)" substring msg)
        true
        (contains ~needle:substring msg)
  | _ -> Alcotest.fail "expected Invariant.Violation"

(* -- Registry ----------------------------------------------------------- *)

let test_register_disabled_noop () =
  I.set_enabled false;
  I.begin_run ();
  I.register ~name:"never" (fun () -> Some "should not register");
  check_int "no entries while disabled" 0 (I.registered ());
  I.check_now ();
  I.quiesce ();
  check_int "no evaluations while disabled" 0 (I.evaluations ())

let test_violation_raises_with_name () =
  with_checking (fun () ->
      I.register ~name:"always.fine" (fun () -> None);
      I.register ~name:"test.broken" (fun () -> Some "thing went sideways");
      expect_violation ~substring:"test.broken" I.check_now;
      expect_violation ~substring:"thing went sideways" I.check_now;
      check_bool "predicates were evaluated" true (I.evaluations () > 0))

let test_quiesce_only_skipped_by_cadence () =
  with_checking (fun () ->
      I.register ~kind:I.Quiesce_only ~name:"drain.only" (fun () ->
          Some "not drained");
      I.check_now ();
      expect_violation ~substring:"drain.only" I.quiesce)

let test_begin_run_clears () =
  with_checking (fun () ->
      I.register ~name:"stale" (fun () -> Some "from the previous run");
      check_int "registered" 1 (I.registered ());
      I.begin_run ();
      check_int "cleared" 0 (I.registered ());
      I.check_now ())

let test_sabotage_flags () =
  check_bool "unarmed by default" false (I.sabotage "test.flag");
  I.set_sabotage "test.flag" true;
  check_bool "armed" true (I.sabotage "test.flag");
  I.set_sabotage "test.flag" false;
  check_bool "disarmed" false (I.sabotage "test.flag")

(* -- Salted heap tie-breaks --------------------------------------------- *)

let drain h =
  let rec go acc =
    match Sim.Heap.pop h with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let heap_prop_salted_total_order =
  QCheck.Test.make ~name:"salted heap still pops in nondecreasing key order"
    ~count:300
    QCheck.(pair (list small_int) small_int)
    (fun (keys, salt) ->
      let h = Sim.Heap.create ~salt () in
      List.iter (fun k -> Sim.Heap.add h ~key:k k) keys;
      drain h = List.sort compare keys)

let test_heap_salt_perturbs_ties () =
  let order salt =
    let h = Sim.Heap.create ~salt () in
    List.iter (fun v -> Sim.Heap.add h ~key:1 v) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
    drain h
  in
  let fifo = order 0 in
  check_bool "salt 0 is FIFO" true (fifo = [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  let salted = List.map order [ 1; 2; 3; 4; 5; 6; 7 ] in
  List.iter
    (fun o ->
      check_bool "salted order is a permutation" true
        (List.sort compare o = fifo))
    salted;
  check_bool "some salt reorders the ties" true
    (List.exists (fun o -> o <> fifo) salted)

let test_heap_salt_reproducible () =
  let order salt =
    let h = Sim.Heap.create ~salt () in
    List.iter (fun v -> Sim.Heap.add h ~key:1 v) [ 10; 20; 30; 40; 50 ];
    drain h
  in
  Alcotest.(check (list int)) "same salt, same order" (order 7) (order 7)

(* -- Perturbation sweep machinery --------------------------------------- *)

let test_sweep_stable_fingerprints () =
  let o =
    E.sweep ~seeds:[ 1; 2; 3 ] ~salts:[ 0; 1 ] ~repeats:2
      ~run:(fun ~seed ~salt:_ -> Printf.sprintf "fp-of-%d" seed)
      ()
  in
  check_bool "ok" true (E.ok o);
  check_int "total runs" 12 o.E.total_runs;
  List.iter
    (fun (_, fps) -> check_int "one fingerprint per seed" 1 (List.length fps))
    o.E.per_seed

let test_sweep_detects_salt_divergence () =
  let o =
    E.sweep ~seeds:[ 1 ] ~salts:[ 0; 1 ] ~repeats:1
      ~run:(fun ~seed ~salt -> Printf.sprintf "%d.%d" seed salt)
      ()
  in
  check_bool "not ok" false (E.ok o);
  check_bool "divergence reported at seed level" true
    (List.exists (fun f -> f.E.f_salt = -1) o.E.failures)

let test_sweep_captures_violations () =
  let o =
    E.sweep ~seeds:[ 1; 2 ] ~salts:[ 0 ] ~repeats:1
      ~run:(fun ~seed ~salt:_ ->
        if seed = 2 then raise (I.Violation "injected for the test");
        "stable")
      ()
  in
  check_bool "not ok" false (E.ok o);
  check_bool "violation recorded, not raised" true
    (List.exists
       (fun f -> f.E.f_seed = 2 && f.E.f_salt <> -1)
       o.E.failures)

(* -- End to end: a real workload under the checker ---------------------- *)

let mini_chaos ~seed ~salt =
  let r =
    Workloads.Chaos.run
      {
        Workloads.Chaos.default_config with
        ops_per_client = 40;
        seed;
        tie_salt = salt;
        run_cap = Sim.Time.ms 120;
      }
  in
  Workloads.Chaos.fingerprint r

let test_chaos_mini_sweep () =
  with_checking (fun () ->
      let o =
        E.sweep ~seeds:[ 1; 2 ] ~salts:[ 0; 1 ] ~repeats:1 ~run:mini_chaos ()
      in
      if not (E.ok o) then Alcotest.fail (E.summary o);
      check_bool "invariants actually ran" true (I.evaluations () > 0))

let test_sabotage_is_caught () =
  with_checking (fun () ->
      I.set_sabotage "skip_credit_release" true;
      Fun.protect ~finally:(fun () ->
          I.set_sabotage "skip_credit_release" false)
        (fun () ->
          expect_violation ~substring:"not quiesced" (fun () ->
              ignore (mini_chaos ~seed:1 ~salt:0))))

let () =
  Alcotest.run "check"
    [
      ( "registry",
        [
          Alcotest.test_case "disabled register is a no-op" `Quick
            test_register_disabled_noop;
          Alcotest.test_case "violation carries name and detail" `Quick
            test_violation_raises_with_name;
          Alcotest.test_case "quiesce-only skipped by cadence" `Quick
            test_quiesce_only_skipped_by_cadence;
          Alcotest.test_case "begin_run clears scope" `Quick
            test_begin_run_clears;
          Alcotest.test_case "sabotage flags" `Quick test_sabotage_flags;
        ] );
      ( "heap-salt",
        [
          QCheck_alcotest.to_alcotest heap_prop_salted_total_order;
          Alcotest.test_case "salt perturbs ties" `Quick
            test_heap_salt_perturbs_ties;
          Alcotest.test_case "salt reproducible" `Quick
            test_heap_salt_reproducible;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "stable fingerprints pass" `Quick
            test_sweep_stable_fingerprints;
          Alcotest.test_case "salt divergence detected" `Quick
            test_sweep_detects_salt_divergence;
          Alcotest.test_case "violations captured" `Quick
            test_sweep_captures_violations;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "mini chaos sweep" `Slow test_chaos_mini_sweep;
          Alcotest.test_case "sabotage caught" `Slow test_sabotage_is_caught;
        ] );
    ]
