(* Tests for the overload-protection stack: admission control, the
   pressure state machine, retry arithmetic, crash-safe pool
   reclamation, advertised-window back-pressure at the flow layer, and
   the end-to-end overload acceptance workload. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Admission control ---------------------------------------------------- *)

let mk_admission ?(pool_bytes = 1 lsl 20) ?max_ops ?max_bytes
    ?rate_ops_per_sec ?burst_ops () =
  let pool = Memory.Pool.create ~name:"adm-test" ~capacity_bytes:pool_bytes in
  let adm =
    Overload.Admission.create ~pool ~owner:"client" ?max_ops ?max_bytes
      ?rate_ops_per_sec ?burst_ops ()
  in
  (pool, adm)

let admit adm ~now ~bytes = Overload.Admission.admit adm ~now ~bytes

let test_admission_op_quota () =
  let _pool, adm = mk_admission ~max_ops:2 () in
  let charge v =
    match v with
    | Overload.Admission.Admitted c -> c
    | Rejected r ->
        Alcotest.failf "unexpected rejection: %s"
          (Overload.Admission.reject_reason_to_string r)
  in
  let c1 = charge (admit adm ~now:0 ~bytes:100) in
  let _c2 = charge (admit adm ~now:0 ~bytes:100) in
  (match admit adm ~now:0 ~bytes:100 with
  | Rejected Over_op_quota -> ()
  | _ -> Alcotest.fail "third op must exceed the op quota");
  check_int "two outstanding" 2 (Overload.Admission.outstanding_ops adm);
  check_int "rejection counted" 1
    (Overload.Admission.rejected_by adm Overload.Admission.Over_op_quota);
  (* Releasing one frees the slot. *)
  Overload.Admission.release adm c1;
  (match admit adm ~now:0 ~bytes:100 with
  | Admitted _ -> ()
  | Rejected _ -> Alcotest.fail "slot freed by release");
  check_int "admissions counted" 3 (Overload.Admission.admitted adm)

let test_admission_byte_quota_charges_pool () =
  let pool, adm = mk_admission ~max_bytes:1000 () in
  (match admit adm ~now:0 ~bytes:800 with
  | Admitted (Some c) ->
      check_int "pool charged" 800 (Memory.Pool.in_use pool);
      (match admit adm ~now:0 ~bytes:300 with
      | Rejected Over_byte_quota -> ()
      | _ -> Alcotest.fail "byte quota must refuse the second op");
      Overload.Admission.release adm (Some c);
      check_int "pool refunded" 0 (Memory.Pool.in_use pool)
  | _ -> Alcotest.fail "first op must be admitted with a charge");
  (* Zero-byte ops are admitted without a pool charge. *)
  match admit adm ~now:0 ~bytes:0 with
  | Admitted None -> ()
  | _ -> Alcotest.fail "zero-byte op carries no charge"

let test_admission_pool_exhausted () =
  (* A tiny pool refuses before the byte quota does — and answers with
     a verdict, never an exception. *)
  let _pool, adm = mk_admission ~pool_bytes:500 ~max_bytes:10_000 () in
  match admit adm ~now:0 ~bytes:800 with
  | Rejected Pool_exhausted -> ()
  | _ -> Alcotest.fail "exhausted pool must reject, not raise"

let test_admission_rate_limit () =
  let _pool, adm = mk_admission ~rate_ops_per_sec:1000.0 ~burst_ops:2 () in
  let ok now = match admit adm ~now ~bytes:0 with
    | Overload.Admission.Admitted c -> Overload.Admission.release adm c; true
    | Rejected _ -> false
  in
  check_bool "burst 1" true (ok 0);
  check_bool "burst 2" true (ok 0);
  check_bool "bucket empty" false (ok 0);
  check_int "rate rejection counted" 1
    (Overload.Admission.rejected_by adm Overload.Admission.Rate_limited);
  (* 1000 ops/s is one token per millisecond. *)
  check_bool "token refilled" true (ok (T.ms 1));
  check_bool "only one token refilled" false (ok (T.ms 1))

(* -- Pressure state machine ----------------------------------------------- *)

let test_pressure_hysteresis () =
  let loop = Sim.Loop.create () in
  let p = Overload.Pressure.create ~loop ~name:"test-eng" () in
  let module P = Overload.Pressure in
  Alcotest.(check bool) "starts Nominal" true (P.level p = P.Nominal);
  check_bool "below enter stays Nominal" true
    (P.update p ~occupancy:0.45 = P.Nominal);
  check_bool "0.6 enters Pressured" true
    (P.update p ~occupancy:0.60 = P.Pressured);
  check_bool "0.4 holds Pressured (hysteresis)" true
    (P.update p ~occupancy:0.40 = P.Pressured);
  check_bool "0.85 enters Saturated" true
    (P.update p ~occupancy:0.85 = P.Saturated);
  check_bool "0.7 holds Saturated (hysteresis)" true
    (P.update p ~occupancy:0.70 = P.Saturated);
  check_bool "0.55 drops to Pressured" true
    (P.update p ~occupancy:0.55 = P.Pressured);
  check_bool "0.3 drops to Nominal" true
    (P.update p ~occupancy:0.30 = P.Nominal);
  check_int "four transitions" 4 (P.transitions p)

(* -- Retry arithmetic ----------------------------------------------------- *)

let test_retry_backoff () =
  let module R = Overload.Retry in
  let p =
    { R.max_attempts = 4; base_delay = T.us 50; multiplier = 2.0;
      max_delay = T.us 150; op_timeout = None }
  in
  check_int "attempt 1 has no delay" 0 (R.delay_before p ~attempt:1);
  check_int "attempt 2 waits base" (T.us 50) (R.delay_before p ~attempt:2);
  check_int "attempt 3 doubles" (T.us 100) (R.delay_before p ~attempt:3);
  check_int "attempt 4 capped" (T.us 150) (R.delay_before p ~attempt:4);
  check_bool "4 attempts allowed" false (R.attempts_exhausted p ~attempt:4);
  check_bool "5th exhausted" true (R.attempts_exhausted p ~attempt:5)

(* The exponential is computed in float space: at large attempt counts
   [base * multiplier^(attempt-2)] overflows any integer representation,
   and the old int-space clamp wrapped negative before comparing against
   the cap.  Every attempt number must yield a delay in [0, max_delay]. *)
let test_retry_backoff_overflow () =
  let module R = Overload.Retry in
  let p =
    { R.max_attempts = max_int; base_delay = T.us 50; multiplier = 2.0;
      max_delay = T.ms 5; op_timeout = None }
  in
  List.iter
    (fun attempt ->
      let d = R.delay_before p ~attempt in
      check_bool (Printf.sprintf "attempt %d non-negative" attempt) true (d >= 0);
      check_int (Printf.sprintf "attempt %d capped" attempt) (T.ms 5) d)
    [ 60; 200; 10_000; max_int ];
  (* Monotone up to the cap: each retry waits at least as long as the
     previous one. *)
  let prev = ref 0 in
  for attempt = 1 to 100 do
    let d = R.delay_before p ~attempt in
    check_bool (Printf.sprintf "attempt %d monotone" attempt) true (d >= !prev);
    prev := d
  done;
  (* A sub-unity multiplier decays toward zero without going negative. *)
  let decay = { p with R.multiplier = 0.5 } in
  List.iter
    (fun attempt ->
      let d = R.delay_before decay ~attempt in
      check_bool (Printf.sprintf "decay attempt %d in range" attempt) true
        (d >= 0 && d <= T.us 50))
    [ 2; 10; 1000; max_int ]

(* -- Crash-safe pool reclamation ------------------------------------------ *)

let test_pool_release_owner () =
  let p = Memory.Pool.create ~name:"reclaim" ~capacity_bytes:1000 in
  let a = Memory.Pool.alloc p ~owner:"eng0" ~bytes:300 in
  let b = Memory.Pool.alloc p ~owner:"eng0" ~bytes:200 in
  let c = Memory.Pool.alloc p ~owner:"eng1" ~bytes:100 in
  check_int "bulk reclaim returns eng0's bytes" 500
    (Memory.Pool.release_owner p ~owner:"eng0");
  check_int "eng1 untouched" 100 (Memory.Pool.in_use p);
  check_int "reclaim telemetry" 500 (Memory.Pool.released_bytes p);
  (* Stale frees from the dead owner's generation are no-ops... *)
  Memory.Pool.free a;
  Memory.Pool.free b;
  check_int "stale frees do not double-return" 100 (Memory.Pool.in_use p);
  (* ...but a fresh post-reclaim allocation frees normally. *)
  let a' = Memory.Pool.alloc p ~owner:"eng0" ~bytes:50 in
  Memory.Pool.free a';
  check_int "new generation frees count" 100 (Memory.Pool.in_use p);
  check_bool "quiesce still blocked by eng1" true
    (try Memory.Pool.assert_quiesced p; false with Failure msg ->
      (* The failure names the leaking owner. *)
      let rec has i =
        i + 4 <= String.length msg
        && (String.sub msg i 4 = "eng1" || has (i + 1))
      in
      has 0);
  Memory.Pool.free c;
  Memory.Pool.assert_quiesced p

(* -- Advertised-window back-pressure at the flow layer -------------------- *)

let mk_flow_pair () =
  let loop = Sim.Loop.create () in
  let k = { Pony.Wire.src_host = 0; src_engine = 0; dst_host = 1; dst_engine = 0 } in
  let a = Pony.Flow.create ~loop ~key:k ~max_rate_gbps:100.0 () in
  let b = Pony.Flow.create ~loop ~key:(Pony.Wire.reverse k) ~max_rate_gbps:100.0 () in
  (a, b)

let ck =
  {
    Pony.Wire.initiator_host = 0;
    initiator_client = 0;
    target_host = 1;
    target_client = 0;
    session = 0;
  }

let grant i = Pony.Wire.Credit_grant { conn = ck; bytes = i }

let test_window_caps_flight () =
  (* Once the peer advertises a 2-packet window, the sender keeps at
     most 2 in flight no matter how much is queued. *)
  let a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  Pony.Flow.set_window_provider b (fun () -> 2);
  for i = 1 to 6 do
    Pony.Flow.enqueue a (grant i) ~payload_bytes:0
  done;
  let now = ref 0 in
  let emit () =
    now := !now + 1_000;
    Pony.Flow.emit a ~now:!now ~gen
  in
  let deliver_and_ack p =
    ignore (Pony.Flow.on_receive b ~now:!now p);
    match Pony.Flow.make_ack b ~now:!now ~gen with
    | Some ack ->
        now := !now + 1_000;
        ignore (Pony.Flow.on_receive a ~now:!now ack)
    | None -> Alcotest.fail "expected ack"
  in
  (* First exchange teaches the sender the shrunken window. *)
  (match emit () with
  | Some p -> deliver_and_ack p
  | None -> Alcotest.fail "first emit");
  check_int "peer window learned" 2 (Pony.Flow.peer_window a);
  (* Now the sender may put exactly two more in flight, no third. *)
  let p2 = emit () and p3 = emit () in
  check_bool "two allowed" true (Option.is_some p2 && Option.is_some p3);
  check_int "flight at the advertised cap" 2 (Pony.Flow.in_flight a);
  check_bool "third blocked by the window" true (emit () = None);
  (* Acking one opens one slot. *)
  deliver_and_ack (Option.get p2);
  check_bool "slot reopened" true (Option.is_some (emit ()))

let test_zero_window_probe_reopens () =
  (* Quench the flow with a zero window, then let the probe reopen it:
     no data -> no acks -> no window update would otherwise livelock. *)
  let a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  let wnd = ref 0 in
  Pony.Flow.set_window_provider b (fun () -> !wnd);
  for i = 1 to 3 do
    Pony.Flow.enqueue a (grant i) ~payload_bytes:0
  done;
  let now = ref 1_000 in
  (* First packet goes out against the default full window; its ack
     carries wnd=0 and quenches the sender. *)
  (match Pony.Flow.emit a ~now:!now ~gen with
  | Some p ->
      ignore (Pony.Flow.on_receive b ~now:!now p);
      (match Pony.Flow.make_ack b ~now:!now ~gen with
      | Some ack -> ignore (Pony.Flow.on_receive a ~now:(!now + 1_000) ack)
      | None -> Alcotest.fail "expected ack")
  | None -> Alcotest.fail "first emit");
  now := !now + 2_000;
  check_int "zero window learned" 0 (Pony.Flow.peer_window a);
  check_bool "quenched: nothing emitted" true
    (Pony.Flow.emit a ~now:!now ~gen = None);
  check_int "data still waiting" 2 (Pony.Flow.pending a);
  (* The flow still asks for service at the probe time — an idle
     quenched flow must not fall off the timer wheel. *)
  check_bool "probe deadline armed" true
    (Pony.Flow.next_deadline a <> None);
  (* After the probe interval one probe goes out, even at window 0. *)
  now := !now + T.us 300;
  (match Pony.Flow.emit a ~now:!now ~gen with
  | Some p ->
      check_int "probe counted" 1 (Pony.Flow.zero_window_probes a);
      (* The receiver drained meanwhile: the probe's ack reopens. *)
      wnd := 8;
      ignore (Pony.Flow.on_receive b ~now:!now p);
      (match Pony.Flow.make_ack b ~now:!now ~gen with
      | Some ack -> ignore (Pony.Flow.on_receive a ~now:(!now + 1_000) ack)
      | None -> Alcotest.fail "expected probe ack")
  | None -> Alcotest.fail "probe must be allowed through a zero window");
  check_int "window reopened" 8 (Pony.Flow.peer_window a);
  now := !now + 2_000;
  check_bool "flow resumed" true (Option.is_some (Pony.Flow.emit a ~now:!now ~gen));
  check_int "exactly one probe" 1 (Pony.Flow.zero_window_probes a)

let test_rto_retransmit_bypasses_zero_window () =
  (* Packets lost while the peer's window collapses to zero: the RTO's
     go-back-N retransmissions are exempt from the window check (their
     flight slots are already accounted), so recovery cannot livelock
     behind the closed window. *)
  let a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  Pony.Flow.set_window_provider b (fun () -> 0);
  for i = 1 to 3 do
    Pony.Flow.enqueue a (grant i) ~payload_bytes:0
  done;
  let now = ref 0 in
  let p1 =
    now := !now + 1_000;
    Option.get (Pony.Flow.emit a ~now:!now ~gen)
  in
  let _p2 =
    now := !now + 1_000;
    Option.get (Pony.Flow.emit a ~now:!now ~gen)
  in
  let _p3 =
    now := !now + 1_000;
    Option.get (Pony.Flow.emit a ~now:!now ~gen)
  in
  (* Only p1 arrives; its ack closes the window with 2 still lost. *)
  ignore (Pony.Flow.on_receive b ~now:!now p1);
  (match Pony.Flow.make_ack b ~now:!now ~gen with
  | Some ack -> ignore (Pony.Flow.on_receive a ~now:(!now + 1_000) ack)
  | None -> Alcotest.fail "expected ack");
  check_int "window closed" 0 (Pony.Flow.peer_window a);
  check_int "two lost in flight" 2 (Pony.Flow.in_flight a);
  (* RTO fires; the requeued packets transmit straight through. *)
  check_int "go-back-n requeued" 2 (Pony.Flow.check_timeout a ~now:(T.ms 5));
  now := T.ms 5;
  for _ = 1 to 2 do
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some p -> ignore (Pony.Flow.on_receive b ~now:!now p)
    | None -> Alcotest.fail "retransmission must bypass the zero window"
  done;
  check_int "all delivered despite zero window" 3 (Pony.Flow.delivered b);
  check_int "retransmits counted" 2 (Pony.Flow.retransmits a)

(* -- End-to-end: overload acceptance workload ----------------------------- *)

module O = Workloads.Overload

let test_overload_saturation_regime () =
  (* Default config: aggressors at 4x capacity with tight quotas and a
     deliberately small op pool.  Every protection layer must engage and
     the victim must keep its goodput. *)
  let r = O.run O.default_config in
  check_int "no Exhausted escaped into apps" 0 r.O.exhausted_escapes;
  check_int "no op-pool bytes leaked" 0 r.O.pool_leak_bytes;
  check_int "every offered op accounted" r.O.offered
    (r.O.agg_ok + r.O.agg_rejected + r.O.agg_timed_out);
  check_bool "admission rejected" true (r.O.quota_rejected > 0);
  check_bool "saturated engines shed at dequeue" true (r.O.ops_shed > 0);
  check_bool "pressure levels changed" true (r.O.pressure_transitions > 0);
  check_bool "zero-window probes sent" true (r.O.zero_window_probes > 0);
  (* The victim (isolated path, exclusive engine) is unharmed. *)
  check_int "victim completed everything" O.default_config.O.victim_ops
    r.O.victim_ok;
  check_int "victim never gave up" 0 r.O.victim_failed;
  let u = O.run { O.default_config with O.aggressors = 0 } in
  check_bool "victim goodput within 80% of uncontended" true
    (r.O.victim_goodput_gbps >= 0.8 *. u.O.victim_goodput_gbps);
  let p99 = Stats.Histogram.percentile r.O.victim_latencies 99.0 in
  let u99 = Stats.Histogram.percentile u.O.victim_latencies 99.0 in
  check_bool "victim p99 within 2x of uncontended" true
    (p99 <= 2 * max 1 u99)

let busy_regime_config =
  (* Generous quotas and pool with a slow consumer: messages reach the
     wire and pile into the destination's bounded incoming queue, so
     the Busy-NACK and deadline-expiry paths carry the overload. *)
  { O.default_config with
    O.aggressors = 2;
    aggressor_quota_ops = 4096;
    aggressor_quota_bytes = 32 lsl 20;
    aggressor_pool_bytes = 256 lsl 20;
    aggressor_bytes = 2048;
    server_service_time = T.us 50;
    aggressor_deadline = T.ms 5;
  }

let test_overload_busy_regime () =
  let r = O.run busy_regime_config in
  check_bool "receiver NACKed a full queue" true (r.O.busy_nacks > 0);
  check_int "every NACK surfaced as a Busy completion" r.O.busy_nacks
    r.O.agg_busy;
  check_bool "deadlines expired credit-starved ops" true (r.O.ops_expired > 0);
  check_int "every expiry surfaced as Timed_out" r.O.ops_expired
    r.O.agg_timed_out;
  check_int "no op-pool bytes leaked" 0 r.O.pool_leak_bytes;
  check_int "no Exhausted escaped" 0 r.O.exhausted_escapes;
  check_int "every offered op accounted" r.O.offered
    (r.O.agg_ok + r.O.agg_rejected + r.O.agg_timed_out);
  check_int "victim completed everything" busy_regime_config.O.victim_ops
    r.O.victim_ok

let test_overload_deterministic () =
  (* Same seed, byte-identical fingerprint; different seed, (almost
     surely) different one.  Shortened run: determinism does not need
     the full 30 ms of load. *)
  let cfg =
    { O.default_config with
      O.stop_at = T.ms 10; run_cap = T.ms 40; victim_ops = 100 }
  in
  let r1 = O.run cfg in
  let r2 = O.run cfg in
  Alcotest.(check string)
    "same seed, same fingerprint" (O.fingerprint r1) (O.fingerprint r2);
  let r3 = O.run { cfg with O.load_factor = 2.0 *. cfg.O.load_factor } in
  check_bool "config change perturbs the fingerprint" true
    (O.fingerprint r3 <> O.fingerprint r1)

let () =
  Alcotest.run "overload"
    [
      ( "admission",
        [
          Alcotest.test_case "op quota" `Quick test_admission_op_quota;
          Alcotest.test_case "byte quota charges the pool" `Quick
            test_admission_byte_quota_charges_pool;
          Alcotest.test_case "pool exhaustion rejects" `Quick
            test_admission_pool_exhausted;
          Alcotest.test_case "token-bucket rate limit" `Quick
            test_admission_rate_limit;
        ] );
      ( "pressure",
        [ Alcotest.test_case "hysteresis" `Quick test_pressure_hysteresis ] );
      ( "retry",
        [
          Alcotest.test_case "backoff arithmetic" `Quick test_retry_backoff;
          Alcotest.test_case "backoff overflow clamp" `Quick
            test_retry_backoff_overflow;
        ] );
      ( "pool",
        [
          Alcotest.test_case "release_owner reclaim + stale frees" `Quick
            test_pool_release_owner;
        ] );
      ( "window",
        [
          Alcotest.test_case "advertised window caps flight" `Quick
            test_window_caps_flight;
          Alcotest.test_case "zero-window probe reopens" `Quick
            test_zero_window_probe_reopens;
          Alcotest.test_case "rto bypasses zero window" `Quick
            test_rto_retransmit_bypasses_zero_window;
        ] );
      ( "workload",
        [
          Alcotest.test_case "saturation regime" `Slow
            test_overload_saturation_regime;
          Alcotest.test_case "busy-nack regime" `Slow test_overload_busy_regime;
          Alcotest.test_case "deterministic fingerprint" `Slow
            test_overload_deterministic;
        ] );
    ]
