(* Tests for packets, pools, and shared memory regions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_packet_make () =
  let gen = Memory.Packet.Id_gen.create () in
  let p =
    Memory.Packet.make
      ~id:(Memory.Packet.Id_gen.next gen)
      ~src:1 ~dst:2 ~wire_bytes:1500 ~payload_bytes:1400 Memory.Packet.Empty ()
  in
  check_int "id" 0 p.Memory.Packet.id;
  check_int "wire" 1500 p.Memory.Packet.wire_bytes;
  check_int "ids increment" 1 (Memory.Packet.Id_gen.next gen)

let test_packet_invalid () =
  Alcotest.check_raises "zero bytes rejected"
    (Invalid_argument "Packet.make: wire_bytes") (fun () ->
      ignore
        (Memory.Packet.make ~id:0 ~src:0 ~dst:1 ~wire_bytes:0
           Memory.Packet.Empty ()))

let test_pool_accounting () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:10_000 in
  let a = Memory.Pool.alloc p ~owner:"app1" ~bytes:4_000 in
  let b = Memory.Pool.alloc p ~owner:"app2" ~bytes:3_000 in
  check_int "in use" 7_000 (Memory.Pool.in_use p);
  check_int "app1" 4_000 (Memory.Pool.owner_usage p "app1");
  check_int "app2" 3_000 (Memory.Pool.owner_usage p "app2");
  Memory.Pool.free a;
  check_int "after free" 3_000 (Memory.Pool.in_use p);
  check_int "app1 after free" 0 (Memory.Pool.owner_usage p "app1");
  Memory.Pool.free b;
  check_int "empty" 0 (Memory.Pool.in_use p);
  check_int "watermark" 7_000 (Memory.Pool.high_watermark p)

let test_pool_exhaustion () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:1_000 in
  let _keep = Memory.Pool.alloc p ~owner:"a" ~bytes:900 in
  check_bool "try_alloc fails" true
    (Memory.Pool.try_alloc p ~owner:"a" ~bytes:200 = None);
  Alcotest.check_raises "alloc raises" (Memory.Pool.Exhausted "pkt") (fun () ->
      ignore (Memory.Pool.alloc p ~owner:"a" ~bytes:200))

let test_pool_double_free () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:1_000 in
  let a = Memory.Pool.alloc p ~owner:"a" ~bytes:100 in
  Memory.Pool.free a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Pool.free: double free") (fun () -> Memory.Pool.free a)

let pool_prop_balance =
  QCheck.Test.make ~name:"pool usage returns to zero after freeing all"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 100))
    (fun sizes ->
      let p = Memory.Pool.create ~name:"p" ~capacity_bytes:1_000_000 in
      let allocs =
        List.map (fun b -> Memory.Pool.alloc p ~owner:"x" ~bytes:b) sizes
      in
      List.iter Memory.Pool.free allocs;
      Memory.Pool.in_use p = 0 && Memory.Pool.owner_usage p "x" = 0)

let test_region_backed_rw () =
  let r = Memory.Region.create ~id:1 ~size:4096 ~owner:"app" () in
  check_bool "backed" true (Memory.Region.is_backed r);
  Memory.Region.write r ~off:100 (Bytes.of_string "hello");
  Alcotest.(check string)
    "read back" "hello"
    (Bytes.to_string (Memory.Region.read r ~off:100 ~len:5));
  Memory.Region.write_int64 r 200 0x1122334455667788L;
  Alcotest.(check int64)
    "int64 roundtrip" 0x1122334455667788L
    (Memory.Region.read_int64 r 200)

let test_region_unbacked () =
  let r = Memory.Region.create ~backed:false ~id:2 ~size:1_000_000 ~owner:"app" () in
  check_bool "unbacked" false (Memory.Region.is_backed r);
  (* Synthetic contents are deterministic. *)
  let a = Memory.Region.read r ~off:500 ~len:16 in
  let b = Memory.Region.read r ~off:500 ~len:16 in
  check_bool "deterministic" true (Bytes.equal a b);
  (* Writes are ignored without error. *)
  Memory.Region.write r ~off:500 (Bytes.of_string "xy")

let test_region_bounds () =
  let r = Memory.Region.create ~id:3 ~size:128 ~owner:"app" () in
  Alcotest.check_raises "oob read" (Invalid_argument "Region: out of range access")
    (fun () -> ignore (Memory.Region.read r ~off:120 ~len:16));
  Alcotest.check_raises "oob write" (Invalid_argument "Region: out of range access")
    (fun () -> Memory.Region.write r ~off:(-1) (Bytes.of_string "x"))

let test_region_nic_registration () =
  let r = Memory.Region.create ~id:4 ~size:64 ~owner:"app" () in
  check_bool "initially unregistered" false (Memory.Region.nic_registered r);
  Memory.Region.register_for_nic r;
  Memory.Region.register_for_nic r;
  check_bool "registered" true (Memory.Region.nic_registered r)

(* -- Arena ------------------------------------------------------------- *)

let test_arena_alloc_get_free () =
  let a = Memory.Arena.create ~initial:2 () in
  let h1 = Memory.Arena.alloc a "one" in
  let h2 = Memory.Arena.alloc a "two" in
  let h3 = Memory.Arena.alloc a "three" in
  check_int "live" 3 (Memory.Arena.live a);
  Alcotest.(check (option string)) "get" (Some "two") (Memory.Arena.get a h2);
  check_bool "free" true (Memory.Arena.free a h2);
  check_int "live after free" 2 (Memory.Arena.live a);
  Alcotest.(check (option string)) "stale get" None (Memory.Arena.get a h2);
  Alcotest.(check (list string))
    "iteration is index order" [ "one"; "three" ]
    (List.rev (Memory.Arena.fold a (fun acc _ v -> v :: acc) []));
  ignore h1;
  ignore h3

let test_arena_stale_handle_is_noop () =
  (* Mirrors Pool.release_owner: a handle minted under an older
     generation must miss even after the slot is reused. *)
  let a = Memory.Arena.create () in
  let h = Memory.Arena.alloc a 1 in
  check_bool "first free" true (Memory.Arena.free a h);
  check_bool "double free is checked no-op" false (Memory.Arena.free a h);
  let h' = Memory.Arena.alloc a 2 in
  check_bool "slot reused" true (not (Memory.Arena.is_live a h));
  Alcotest.(check (option int)) "old handle misses new occupant" None
    (Memory.Arena.get a h);
  check_bool "stale free does not evict new occupant" false
    (Memory.Arena.free a h);
  Alcotest.(check (option int)) "new handle still live" (Some 2)
    (Memory.Arena.get a h')

let test_arena_clear () =
  let a = Memory.Arena.create () in
  let hs = List.init 5 (fun i -> Memory.Arena.alloc a i) in
  Memory.Arena.clear a;
  check_int "empty" 0 (Memory.Arena.live a);
  List.iter
    (fun h -> check_bool "all handles stale" false (Memory.Arena.is_live a h))
    hs;
  let h = Memory.Arena.alloc a 9 in
  Alcotest.(check (option int)) "usable after clear" (Some 9)
    (Memory.Arena.get a h)

let arena_prop_generations =
  QCheck.Test.make ~name:"arena handles never alias across reuse" ~count:200
    QCheck.(list (int_bound 9))
    (fun ops ->
      let a = Memory.Arena.create ~initial:2 () in
      let live = Hashtbl.create 16 in
      let freed = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          if op < 6 then begin
            let v = !next in
            incr next;
            Hashtbl.replace live (Memory.Arena.alloc a v) v;
            true
          end
          else
            match Hashtbl.fold (fun h v acc -> (h, v) :: acc) live [] with
            | [] -> true
            | (h, v) :: _ ->
                Hashtbl.remove live h;
                let ok =
                  Memory.Arena.get a h = Some v && Memory.Arena.free a h
                in
                freed := h :: !freed;
                ok
                && List.for_all
                     (fun h -> Memory.Arena.get a h = None)
                     !freed)
        ops
      && Memory.Arena.live a = Hashtbl.length live)

let () =
  Alcotest.run "memory"
    [
      ( "packet",
        [
          Alcotest.test_case "make" `Quick test_packet_make;
          Alcotest.test_case "invalid" `Quick test_packet_invalid;
        ] );
      ( "pool",
        [
          Alcotest.test_case "accounting" `Quick test_pool_accounting;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "double free" `Quick test_pool_double_free;
          QCheck_alcotest.to_alcotest pool_prop_balance;
        ] );
      ( "arena",
        [
          Alcotest.test_case "alloc/get/free" `Quick test_arena_alloc_get_free;
          Alcotest.test_case "stale handle no-op" `Quick
            test_arena_stale_handle_is_noop;
          Alcotest.test_case "clear" `Quick test_arena_clear;
          QCheck_alcotest.to_alcotest arena_prop_generations;
        ] );
      ( "region",
        [
          Alcotest.test_case "backed rw" `Quick test_region_backed_rw;
          Alcotest.test_case "unbacked" `Quick test_region_unbacked;
          Alcotest.test_case "bounds" `Quick test_region_bounds;
          Alcotest.test_case "nic registration" `Quick test_region_nic_registration;
        ] );
    ]
