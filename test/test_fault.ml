(* Tests for the fault-injection subsystem: Pony flow recovery under
   forced loss/corruption, trace capture, fabric fault hooks and port
   counters, and end-to-end chaos determinism. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let mk_flow_pair () =
  let loop = Sim.Loop.create () in
  let k = { Pony.Wire.src_host = 0; src_engine = 0; dst_host = 1; dst_engine = 0 } in
  let a = Pony.Flow.create ~loop ~key:k ~max_rate_gbps:100.0 () in
  let b = Pony.Flow.create ~loop ~key:(Pony.Wire.reverse k) ~max_rate_gbps:100.0 () in
  (loop, a, b)

let ck =
  {
    Pony.Wire.initiator_host = 0;
    initiator_client = 0;
    target_host = 1;
    target_client = 0;
    session = 0;
  }

let grant i = Pony.Wire.Credit_grant { conn = ck; bytes = i }

(* -- Flow recovery ------------------------------------------------------- *)

let test_fast_retransmit () =
  (* Drop the first packet; later arrivals generate duplicate bare acks
     which must trigger a fast retransmit without waiting for the RTO.
     Also asserts the retransmit event lands in the trace capture. *)
  Sim.Trace.set_level (Some Sim.Trace.Info);
  Sim.Trace.enable_component "pony.flow";
  Sim.Trace.set_capture (Some 64);
  let _loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  for i = 1 to 4 do
    Pony.Flow.enqueue a (grant i) ~payload_bytes:0
  done;
  let now = ref 0 in
  let emit () =
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some p -> p
    | None -> Alcotest.fail "emit"
  in
  let p1 = emit () in
  ignore p1 (* lost on the wire *);
  for _ = 2 to 4 do
    let p = emit () in
    ignore (Pony.Flow.on_receive b ~now:!now p);
    (* Each out-of-order arrival owes a duplicate cumulative ack. *)
    match Pony.Flow.make_ack b ~now:!now ~gen with
    | Some ack ->
        now := !now + 1_000;
        ignore (Pony.Flow.on_receive a ~now:!now ack)
    | None -> Alcotest.fail "expected dup ack"
  done;
  check_int "fast retransmit scheduled" 1 (Pony.Flow.retransmits a);
  (* The retransmitted head converges the receiver. *)
  let p1' = emit () in
  ignore (Pony.Flow.on_receive b ~now:!now p1');
  check_int "all items delivered" 4 (Pony.Flow.delivered b);
  (* Final cumulative ack clears the sender's flight. *)
  (match Pony.Flow.make_ack b ~now:!now ~gen with
  | Some ack -> ignore (Pony.Flow.on_receive a ~now:(!now + 1_000) ack)
  | None -> Alcotest.fail "expected final ack");
  check_int "flight cleared" 0 (Pony.Flow.in_flight a);
  let lines = Sim.Trace.captured () in
  check_bool "fast-retransmit traced" true
    (List.exists (fun l -> contains_sub l "fast-retransmit") lines);
  Sim.Trace.set_capture None;
  Sim.Trace.clear_components ();
  Sim.Trace.set_level None

let test_rto_go_back_n () =
  (* No acks at all: the timeout must requeue a whole window and the
     re-emitted packets must converge the receiver exactly once each. *)
  let _loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  for i = 1 to 5 do
    Pony.Flow.enqueue a (grant i) ~payload_bytes:0
  done;
  let now = ref 0 in
  for _ = 1 to 5 do
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some _ -> () (* all lost *)
    | None -> Alcotest.fail "emit"
  done;
  check_int "five in flight" 5 (Pony.Flow.in_flight a);
  let requeued = Pony.Flow.check_timeout a ~now:(T.ms 1) in
  check_int "go-back-N requeued the window" 5 requeued;
  (* Second timeout while retransmissions are pending must not double. *)
  check_int "no duplicate timeout" 0 (Pony.Flow.check_timeout a ~now:(T.ms 2));
  now := T.ms 2;
  for _ = 1 to 5 do
    now := !now + 1_000;
    match Pony.Flow.emit a ~now:!now ~gen with
    | Some p -> ignore (Pony.Flow.on_receive b ~now:!now p)
    | None -> Alcotest.fail "re-emit"
  done;
  check_int "delivered exactly once each" 5 (Pony.Flow.delivered b);
  check_int "retx counted" 5 (Pony.Flow.retransmits a)

let test_receive_dedup () =
  (* Out-of-order arrival plus retransmitted duplicates: the receiver
     delivers each item exactly once. *)
  let _loop, a, b = mk_flow_pair () in
  let gen = Memory.Packet.Id_gen.create () in
  Pony.Flow.enqueue a (grant 1) ~payload_bytes:0;
  Pony.Flow.enqueue a (grant 2) ~payload_bytes:0;
  let p1 = Option.get (Pony.Flow.emit a ~now:1_000 ~gen) in
  let p2 = Option.get (Pony.Flow.emit a ~now:2_000 ~gen) in
  (* p2 first (out of order), then duplicated; then p1, then p1 again. *)
  check_bool "ooo delivered" true (Option.is_some (Pony.Flow.on_receive b ~now:3_000 p2));
  check_bool "ooo duplicate dropped" true
    (Option.is_none (Pony.Flow.on_receive b ~now:4_000 p2));
  check_bool "head delivered" true (Option.is_some (Pony.Flow.on_receive b ~now:5_000 p1));
  check_bool "head duplicate dropped" true
    (Option.is_none (Pony.Flow.on_receive b ~now:6_000 p1));
  check_int "two deliveries" 2 (Pony.Flow.delivered b)

(* -- Trace capture ------------------------------------------------------- *)

let test_trace_capture () =
  let loop = Sim.Loop.create () in
  Sim.Trace.set_level (Some Sim.Trace.Info);
  Sim.Trace.set_capture (Some 3);
  for i = 1 to 5 do
    Sim.Trace.emit loop Sim.Trace.Info ~component:"test" "line %d" i
  done;
  let lines = Sim.Trace.captured () in
  check_int "ring keeps the most recent" 3 (List.length lines);
  List.iteri
    (fun i l ->
      check_bool "oldest was evicted" true
        (contains_sub l (Printf.sprintf "line %d" (i + 3))))
    lines;
  (* Below-threshold lines are not captured. *)
  Sim.Trace.clear_capture ();
  Sim.Trace.emit loop Sim.Trace.Debug ~component:"test" "hidden";
  check_int "debug filtered out" 0 (List.length (Sim.Trace.captured ()));
  Sim.Trace.set_capture None;
  check_int "capture off" 0 (List.length (Sim.Trace.captured ()));
  Sim.Trace.set_level None

(* -- Fabric hooks and port counters -------------------------------------- *)

let mk_fabric ?(config = Fabric.default_config) () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config ~hosts:2 in
  (loop, fab)

let mk_pkt ~gen ~dst ~bytes =
  Memory.Packet.make
    ~id:(Memory.Packet.Id_gen.next gen)
    ~src:(1 - dst) ~dst ~wire_bytes:bytes Memory.Packet.Empty ()

let test_fabric_fault_hook () =
  let loop, fab = mk_fabric () in
  let gen = Memory.Packet.Id_gen.create () in
  let got = ref 0 in
  Fabric.attach fab ~addr:1 ~rx:(fun _ -> incr got);
  Fabric.set_fault_hook fab (fun pkt ->
      if pkt.Memory.Packet.id mod 2 = 0 then Fabric.Fault_drop
      else Fabric.Fault_pass);
  for _ = 1 to 10 do
    Fabric.send fab (mk_pkt ~gen ~dst:1 ~bytes:1000)
  done;
  Sim.Loop.run loop;
  check_int "half dropped by hook" 5 (Fabric.fault_dropped fab);
  check_int "half delivered" 5 !got;
  check_int "port counted the injected drops" 5 (Fabric.port_drops fab ~addr:1);
  check_bool "queue high-water mark recorded" true
    (Fabric.port_max_queue_bytes fab ~addr:1 >= 1000);
  Fabric.clear_fault_hook fab;
  Fabric.send fab (mk_pkt ~gen ~dst:1 ~bytes:1000);
  Sim.Loop.run loop;
  check_int "hook cleared" 6 !got

let test_fabric_corrupt_hook () =
  let loop, fab = mk_fabric () in
  let gen = Memory.Packet.Id_gen.create () in
  let corrupted = ref 0 and clean = ref 0 in
  Fabric.attach fab ~addr:1 ~rx:(fun pkt ->
      if pkt.Memory.Packet.corrupted then incr corrupted else incr clean);
  Fabric.set_fault_hook fab (fun pkt ->
      if pkt.Memory.Packet.id = 0 then Fabric.Fault_corrupt else Fabric.Fault_pass);
  for _ = 1 to 3 do
    Fabric.send fab (mk_pkt ~gen ~dst:1 ~bytes:1000)
  done;
  Sim.Loop.run loop;
  check_int "one poisoned delivery" 1 !corrupted;
  check_int "rest clean" 2 !clean;
  check_int "counted" 1 (Fabric.fault_corrupted fab)

let test_fabric_overflow_port_counter () =
  (* Drop-tail overflow also lands in the per-port counter. *)
  let config = { Fabric.default_config with Fabric.egress_buffer_bytes = 2500 } in
  let loop, fab = mk_fabric ~config () in
  let gen = Memory.Packet.Id_gen.create () in
  let got = ref 0 in
  Fabric.attach fab ~addr:1 ~rx:(fun _ -> incr got);
  for _ = 1 to 10 do
    Fabric.send fab (mk_pkt ~gen ~dst:1 ~bytes:1000)
  done;
  Sim.Loop.run loop;
  check_bool "overflow dropped some" true (Fabric.port_drops fab ~addr:1 > 0);
  check_int "conservation" 10 (!got + Fabric.port_drops fab ~addr:1);
  check_bool "high-water below cap" true
    (Fabric.port_max_queue_bytes fab ~addr:1 <= 2500)

(* -- Straggler hook ------------------------------------------------------ *)

let test_cost_scale () =
  let loop = Sim.Loop.create () in
  let m =
    Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default ~name:"m" ~cores:2
  in
  Alcotest.(check (float 0.0001)) "default scale" 1.0 (Cpu.Sched.cost_scale m);
  let ran_for = ref 0 in
  Cpu.Sched.set_cost_scale m 3.0;
  ignore
    (Cpu.Thread.spawn m ~name:"w" ~account:"test"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) ~idle:Cpu.Sched.Block (fun ctx ->
         let t0 = Cpu.Thread.now ctx in
         Cpu.Thread.compute ctx 1_000;
         ran_for := Cpu.Thread.now ctx - t0));
  Sim.Loop.run loop;
  check_bool "cost inflated 3x" true (!ran_for >= 3_000);
  Cpu.Sched.set_cost_scale m 1.0;
  check_bool "rejects speedups" true
    (try
       Cpu.Sched.set_cost_scale m 0.5;
       false
     with Invalid_argument _ -> true)

(* -- End-to-end: corruption recovered by retransmission ------------------ *)

let test_corruption_recovery () =
  let plan =
    Fault.Plan.make ~seed:5
      [
        Fault.Plan.Corrupt
          {
            port = 1;
            start = T.ms 1;
            duration = T.ms 8;
            corrupt_pct = 20.0;
          };
      ]
  in
  let cfg =
    {
      Workloads.Chaos.default_config with
      Workloads.Chaos.ops_per_client = 200;
      clients = 1;
      plan;
    }
  in
  let r = Workloads.Chaos.run cfg in
  check_int "no operation lost" 0 r.Workloads.Chaos.lost_ops;
  check_bool "corruption was injected" true
    (List.assoc "corruptions" r.Workloads.Chaos.fault_counters > 0);
  check_bool "poisoned packets caught end-to-end" true
    (r.Workloads.Chaos.corrupt_dropped > 0);
  check_bool "recovered by retransmission" true
    (r.Workloads.Chaos.retransmits > 0)

(* -- Acceptance: chaos plan completes and is deterministic --------------- *)

let hist_fingerprint h =
  ( Stats.Histogram.count h,
    Stats.Histogram.sum h,
    Stats.Histogram.percentile h 50.0,
    Stats.Histogram.percentile h 99.0,
    Stats.Histogram.percentile h 99.9,
    Stats.Histogram.max_value h )

let test_chaos_deterministic () =
  let r1 = Workloads.Chaos.run Workloads.Chaos.default_config in
  let r2 = Workloads.Chaos.run Workloads.Chaos.default_config in
  check_int "all ops completed" 0 r1.Workloads.Chaos.lost_ops;
  check_int "every op accounted" r1.Workloads.Chaos.ops_expected
    r1.Workloads.Chaos.ops_completed;
  (* The default plan really exercises the acceptance scenario. *)
  let c k = List.assoc k r1.Workloads.Chaos.fault_counters in
  check_bool "bursty loss fired" true (c "loss_drops" > 0);
  check_bool "blackout fired" true (c "blackout_drops" > 0);
  check_int "engine crashed" 1 (c "engine_crashes");
  check_int "engine restarted" 1 (c "engine_restarts");
  (* Determinism: identical fault logs and latency histograms. *)
  check_bool "identical fault logs" true
    (Fault.Log.equal r1.Workloads.Chaos.fault_log r2.Workloads.Chaos.fault_log);
  check_bool "fault log non-trivial" true
    (Fault.Log.length r1.Workloads.Chaos.fault_log > 0);
  Alcotest.(check (list (pair string int)))
    "identical counters" r1.Workloads.Chaos.fault_counters
    r2.Workloads.Chaos.fault_counters;
  check_bool "identical latency histograms" true
    (hist_fingerprint r1.Workloads.Chaos.latencies
    = hist_fingerprint r2.Workloads.Chaos.latencies);
  check_int "identical completion times" r1.Workloads.Chaos.completion_time
    r2.Workloads.Chaos.completion_time

let test_plan_validate_byzantine () =
  let byz ?(host = 0) ?(tenant = "x0") ?(start = T.ms 1) ?(duration = T.ms 2)
      ?(behaviors = [ Fault.Plan.Bad_desc_range ]) () =
    Fault.Plan.Guest_byzantine { host; tenant; start; duration; behaviors }
  in
  let rejects name ev msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Fault.Plan.make [ ev ]))
  in
  rejects "negative host" (byz ~host:(-1) ()) "Fault.Plan: byzantine host";
  rejects "empty tenant" (byz ~tenant:"" ()) "Fault.Plan: byzantine tenant";
  rejects "negative start"
    (byz ~start:(-1) ())
    "Fault.Plan: byzantine window";
  rejects "zero duration" (byz ~duration:0 ()) "Fault.Plan: byzantine window";
  rejects "no behaviors" (byz ~behaviors:[] ())
    "Fault.Plan: byzantine behaviors";
  rejects "kick storm needs a rate"
    (byz ~behaviors:[ Fault.Plan.Kick_storm { hz = 0.0 } ] ())
    "Fault.Plan: kick_storm hz";
  (* A well-formed event with every behavior passes, and each behavior
     renders to a distinct name (the injector logs them). *)
  let all =
    [
      Fault.Plan.Bad_desc_range;
      Fault.Plan.Desc_id_alias;
      Fault.Plan.Avail_rollback;
      Fault.Plan.Avail_runahead;
      Fault.Plan.Reap_withhold;
      Fault.Plan.Kick_storm { hz = 1e5 };
    ]
  in
  let plan = Fault.Plan.make [ byz ~behaviors:all () ] in
  check_int "event accepted" 1 (List.length (Fault.Plan.events plan));
  let names = List.map Fault.Plan.byzantine_to_string all in
  check_int "behavior names distinct" (List.length all)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "fault"
    [
      ( "flow-recovery",
        [
          Alcotest.test_case "fast retransmit on dup acks" `Quick
            test_fast_retransmit;
          Alcotest.test_case "rto go-back-n" `Quick test_rto_go_back_n;
          Alcotest.test_case "receive-side dedup" `Quick test_receive_dedup;
        ] );
      ( "trace",
        [ Alcotest.test_case "capture ring" `Quick test_trace_capture ] );
      ( "fabric",
        [
          Alcotest.test_case "fault hook drop" `Quick test_fabric_fault_hook;
          Alcotest.test_case "fault hook corrupt" `Quick test_fabric_corrupt_hook;
          Alcotest.test_case "overflow port counters" `Quick
            test_fabric_overflow_port_counter;
        ] );
      ( "cpu",
        [ Alcotest.test_case "straggler cost scale" `Quick test_cost_scale ] );
      ( "plan",
        [
          Alcotest.test_case "byzantine event validation" `Quick
            test_plan_validate_byzantine;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "corruption recovery" `Quick
            test_corruption_recovery;
          Alcotest.test_case "deterministic acceptance run" `Slow
            test_chaos_deterministic;
        ] );
    ]
