(* Tests for SPSC rings, mailboxes, and notifiers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_spsc_fifo () =
  let q = Squeue.Spsc.create ~capacity:4 () in
  check_bool "push 1" true (Squeue.Spsc.push q ~now:0 1);
  check_bool "push 2" true (Squeue.Spsc.push q ~now:0 2);
  check_bool "push 3" true (Squeue.Spsc.push q ~now:0 3);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Squeue.Spsc.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Squeue.Spsc.pop q);
  check_bool "push 4" true (Squeue.Spsc.push q ~now:0 4);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Squeue.Spsc.pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Squeue.Spsc.pop q);
  Alcotest.(check (option int)) "empty" None (Squeue.Spsc.pop q)

let test_spsc_full_drop () =
  let q = Squeue.Spsc.create ~capacity:2 () in
  check_bool "a" true (Squeue.Spsc.push q ~now:0 'a');
  check_bool "b" true (Squeue.Spsc.push q ~now:0 'b');
  check_bool "c rejected" false (Squeue.Spsc.push q ~now:0 'c');
  check_int "dropped" 1 (Squeue.Spsc.dropped q);
  check_int "pushed" 2 (Squeue.Spsc.pushed q);
  check_bool "full" true (Squeue.Spsc.is_full q)

let test_spsc_oldest_age () =
  let q = Squeue.Spsc.create ~capacity:8 () in
  check_int "empty age" 0 (Squeue.Spsc.oldest_age q ~now:100);
  ignore (Squeue.Spsc.push q ~now:10 "x");
  ignore (Squeue.Spsc.push q ~now:50 "y");
  check_int "age of head" 90 (Squeue.Spsc.oldest_age q ~now:100);
  ignore (Squeue.Spsc.pop q);
  check_int "age of next" 50 (Squeue.Spsc.oldest_age q ~now:100)

let test_spsc_drain () =
  let q = Squeue.Spsc.create ~capacity:16 () in
  for i = 1 to 10 do
    ignore (Squeue.Spsc.push q ~now:0 i)
  done;
  let sum = ref 0 in
  let n = Squeue.Spsc.drain q (fun v -> sum := !sum + v) in
  check_int "drained" 10 n;
  check_int "sum" 55 !sum;
  check_bool "empty after" true (Squeue.Spsc.is_empty q)

let test_spsc_wraparound () =
  (* Cycle a small ring many times so head/tail indices cross the
     capacity boundary repeatedly; FIFO order and occupancy must hold
     through every wrap. *)
  let cap = 4 in
  let q = Squeue.Spsc.create ~capacity:cap () in
  let next = ref 0 and expect = ref 0 in
  for _cycle = 1 to 5 * cap do
    for _ = 1 to cap do
      check_bool "push" true (Squeue.Spsc.push q ~now:0 !next);
      incr next
    done;
    check_bool "full after fill" true (Squeue.Spsc.is_full q);
    check_int "length at capacity" cap (Squeue.Spsc.length q);
    for _ = 1 to cap do
      Alcotest.(check (option int)) "pop in order" (Some !expect)
        (Squeue.Spsc.pop q);
      incr expect
    done;
    check_bool "empty after drain" true (Squeue.Spsc.is_empty q)
  done;
  check_int "no drops across wraps" 0 (Squeue.Spsc.dropped q)

let test_spsc_full_ring_wrap () =
  (* Hold the ring at capacity while sliding the window forward: every
     freed slot is immediately reused, which exercises the slot-reuse
     path right at the wrap point. *)
  let cap = 3 in
  let q = Squeue.Spsc.create ~capacity:cap () in
  for i = 0 to cap - 1 do
    check_bool "fill" true (Squeue.Spsc.push q ~now:0 i)
  done;
  for i = cap to cap + 20 do
    check_bool "push at capacity rejected" false (Squeue.Spsc.push q ~now:0 i);
    Alcotest.(check (option int)) "window head" (Some (i - cap))
      (Squeue.Spsc.pop q);
    check_bool "reuse freed slot" true (Squeue.Spsc.push q ~now:0 i);
    check_bool "full again" true (Squeue.Spsc.is_full q)
  done;
  for i = 21 to 21 + cap - 1 do
    Alcotest.(check (option int)) "tail order" (Some i) (Squeue.Spsc.pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Squeue.Spsc.pop q);
  check_int "one drop per rejected push" 21 (Squeue.Spsc.dropped q)

let spsc_prop_occupancy =
  QCheck.Test.make
    ~name:"spsc occupancy gauge agrees with push/pop accounting" ~count:200
    QCheck.(list (int_bound 1))
    (fun ops ->
      let q = Squeue.Spsc.create ~capacity:3 () in
      let pops = ref 0 in
      let ok = ref true in
      let check_gauges () =
        let occ = Squeue.Spsc.pushed q - !pops in
        if Squeue.Spsc.length q <> occ then ok := false;
        if Squeue.Spsc.is_empty q <> (occ = 0) then ok := false;
        if Squeue.Spsc.is_full q <> (occ = 3) then ok := false
      in
      List.iter
        (fun op ->
          (if op = 0 then ignore (Squeue.Spsc.push q ~now:0 op)
           else match Squeue.Spsc.pop q with
             | Some _ -> incr pops
             | None -> ());
          check_gauges ())
        ops;
      !ok)

let spsc_prop_fifo =
  QCheck.Test.make ~name:"spsc preserves FIFO order under interleaving"
    ~count:200
    QCheck.(list (int_bound 1))
    (fun ops ->
      (* op 0 = push next int, op 1 = pop *)
      let q = Squeue.Spsc.create ~capacity:1024 () in
      let next = ref 0 in
      let expect = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op = 0 then begin
            if Squeue.Spsc.push q ~now:0 !next then incr next
          end
          else
            match Squeue.Spsc.pop q with
            | Some v ->
                if v <> !expect then ok := false;
                incr expect
            | None -> ())
        ops;
      !ok)

let test_mailbox () =
  let mb = Squeue.Mailbox.create () in
  let ran = ref 0 in
  check_bool "post" true (Squeue.Mailbox.post mb (fun () -> ran := 1));
  check_bool "second post fails" false (Squeue.Mailbox.post mb (fun () -> ran := 2));
  check_bool "occupied" true (Squeue.Mailbox.is_occupied mb);
  check_bool "service runs" true (Squeue.Mailbox.service mb);
  check_int "first work ran" 1 !ran;
  check_bool "service idle" false (Squeue.Mailbox.service mb);
  check_bool "post again" true (Squeue.Mailbox.post mb (fun () -> ran := 3));
  check_bool "service again" true (Squeue.Mailbox.service mb);
  check_int "second work ran" 3 !ran;
  check_int "posted" 2 (Squeue.Mailbox.posted mb);
  check_int "serviced" 2 (Squeue.Mailbox.serviced mb)

let test_mailbox_cycles () =
  (* The depth-one mailbox reuses its single slot forever: many
     post/service cycles must neither wedge nor let a second post slip
     in while occupied, and the counters must agree at every step. *)
  let mb = Squeue.Mailbox.create () in
  let ran = ref 0 in
  for i = 1 to 100 do
    check_bool "post into empty slot" true
      (Squeue.Mailbox.post mb (fun () -> ran := i));
    check_bool "occupied rejects" false
      (Squeue.Mailbox.post mb (fun () -> ran := -1));
    check_bool "service" true (Squeue.Mailbox.service mb);
    check_int "ran posted work" i !ran;
    check_int "posted count" i (Squeue.Mailbox.posted mb);
    check_int "serviced count" i (Squeue.Mailbox.serviced mb);
    check_bool "slot free again" false (Squeue.Mailbox.is_occupied mb)
  done

let test_notifier_armed () =
  let n = Squeue.Notifier.create () in
  let fired = ref 0 in
  Squeue.Notifier.arm n (fun () -> incr fired);
  Squeue.Notifier.signal n;
  check_int "fired once" 1 !fired;
  (* Disarmed after firing; signal latches. *)
  Squeue.Notifier.signal n;
  check_int "not fired again" 1 !fired;
  Squeue.Notifier.arm n (fun () -> incr fired);
  check_int "latched signal fires on arm" 2 !fired

let test_notifier_coalesce () =
  let n = Squeue.Notifier.create () in
  Squeue.Notifier.signal n;
  Squeue.Notifier.signal n;
  Squeue.Notifier.signal n;
  let fired = ref 0 in
  Squeue.Notifier.arm n (fun () -> incr fired);
  check_int "coalesced to one" 1 !fired;
  check_int "signals counted" 3 (Squeue.Notifier.signals n)

let () =
  Alcotest.run "squeue"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo" `Quick test_spsc_fifo;
          Alcotest.test_case "full drop" `Quick test_spsc_full_drop;
          Alcotest.test_case "oldest age" `Quick test_spsc_oldest_age;
          Alcotest.test_case "drain" `Quick test_spsc_drain;
          Alcotest.test_case "wrap-around" `Quick test_spsc_wraparound;
          Alcotest.test_case "full ring at wrap" `Quick test_spsc_full_ring_wrap;
          QCheck_alcotest.to_alcotest spsc_prop_occupancy;
          QCheck_alcotest.to_alcotest spsc_prop_fifo;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "depth one" `Quick test_mailbox;
          Alcotest.test_case "repeated cycles" `Quick test_mailbox_cycles;
        ] );
      ( "notifier",
        [
          Alcotest.test_case "armed" `Quick test_notifier_armed;
          Alcotest.test_case "coalesce" `Quick test_notifier_coalesce;
        ] );
    ]
