(* Tests for the guest subsystem: virtio-style rings, tenant
   accounting, and the mux backend end-to-end. *)

module T = Sim.Time
module Ring = Guest.Ring
module Tenant = Guest.Tenant
module PE = Pony.Express

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_region ?(size = 4096) () =
  Memory.Region.create ~backed:true ~id:9000 ~size ~owner:"test" ()

let mk_ring ?(slots = 4) ?region () =
  let region =
    match region with Some r -> r | None -> mk_region ()
  in
  Ring.create ~name:"test-ring" ~region ~slots ()

(* {1 Ring} *)

let test_ring_fifo () =
  let r = mk_ring () in
  check_bool "post 0" true (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_bool "post 1" true (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_int "backlog" 2 (Ring.backlog r);
  (match Ring.take r with
  | Some d -> check_int "take oldest" 0 d.Ring.d_id
  | None -> Alcotest.fail "expected descriptor");
  check_int "in flight" 1 (Ring.in_flight r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  check_int "completion ready" 1 (Ring.completions_ready r);
  (match Ring.pop_used r with
  | Some u ->
      check_int "used id" 0 u.Ring.u_id;
      check_bool "complete status" true (u.Ring.u_status = Ring.Complete)
  | None -> Alcotest.fail "expected used entry");
  check_int "occupancy after reap" 1 (Ring.occupancy r);
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_out_of_order_completion () =
  let r = mk_ring () in
  for i = 0 to 2 do
    ignore (Ring.post r ~now:T.zero ~id:i ~off:(i * 64) ~len:64)
  done;
  for _ = 0 to 2 do
    ignore (Ring.take r)
  done;
  (* Used entries carry descriptor ids, so the backend may publish in
     any order; the guest reaps in publication order. *)
  Ring.complete r ~id:2 ~len:64 ~status:Ring.Complete;
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Failed;
  Ring.complete r ~id:1 ~len:64 ~status:Ring.Complete;
  let ids =
    List.init 3 (fun _ ->
        match Ring.pop_used r with
        | Some u -> u.Ring.u_id
        | None -> Alcotest.fail "missing used entry")
  in
  Alcotest.(check (list int)) "publication order" [ 2; 0; 1 ] ids;
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_fullness_until_reaped () =
  (* Virtio fullness is [avail - reaped <= capacity]: completion alone
     does not free a slot, the guest must reap the used entry. *)
  let r = mk_ring ~slots:2 () in
  check_bool "post a" true (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_bool "post b" true (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_bool "full" true (Ring.is_full r);
  check_bool "post bounces" false (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  check_int "bounce counted" 1 (Ring.post_failures r);
  ignore (Ring.take r);
  ignore (Ring.take r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  Ring.complete r ~id:1 ~len:64 ~status:Ring.Complete;
  check_bool "still full before reap" false
    (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  ignore (Ring.pop_used r);
  check_bool "slot freed by reap" true
    (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_wrap_indices () =
  (* Drive the free-running indices several times around a tiny ring;
     they must grow monotonically and stay ordered the whole way. *)
  let r = mk_ring ~slots:2 () in
  let monitor = Ring.monitor r in
  for i = 0 to 19 do
    check_bool "post" true
      (Ring.post r ~now:T.zero ~id:i ~off:(i mod 2 * 64) ~len:64);
    ignore (Ring.take r);
    Ring.complete r ~id:i ~len:64 ~status:Ring.Complete;
    ignore (Ring.pop_used r);
    Alcotest.(check (option string)) "monitor happy" None (monitor ())
  done;
  check_int "avail wrapped far past capacity" 20 (Ring.avail_idx r);
  check_int "reaped caught up" 20 (Ring.reaped_idx r);
  check_int "occupancy" 0 (Ring.occupancy r)

let test_ring_bad_post_counted () =
  (* A buggy (non-hostile) guest driver posting outside its region is a
     counted, non-fatal rejection: the descriptor never reaches the
     ring.  Exceptions are reserved for host-side API misuse. *)
  let r = mk_ring ~slots:4 () in
  check_bool "past region end refused" false
    (Ring.post r ~now:T.zero ~id:0 ~off:4000 ~len:200);
  check_bool "negative length refused" false
    (Ring.post r ~now:T.zero ~id:1 ~off:0 ~len:(-8));
  check_bool "negative offset refused" false
    (Ring.post r ~now:T.zero ~id:2 ~off:(-64) ~len:64);
  check_int "rejections counted" 3 (Ring.post_bad_range r);
  check_int "nothing reached the ring" 0 (Ring.backlog r);
  check_int "fullness bounces counted separately" 0 (Ring.post_failures r);
  check_bool "ring still usable" true
    (Ring.post r ~now:T.zero ~id:3 ~off:0 ~len:64);
  Alcotest.(check (option string)) "healthy" None (Ring.check r);
  (* Host-side misuse is still a programming error, not guest input. *)
  ignore (Ring.take r);
  Ring.complete r ~id:3 ~len:64 ~status:Ring.Complete;
  Alcotest.check_raises "completion without take raises"
    (Invalid_argument
       "Guest.Ring.complete(test-ring): more completions than takes")
    (fun () -> Ring.complete r ~id:0 ~len:0 ~status:Ring.Complete)

(* {1 Host-side trust boundary} *)

let test_take_checked_bad_range () =
  let r = mk_ring ~slots:4 () in
  Ring.post_raw r ~now:T.zero ~id:7 ~off:4000 ~len:200;
  (match Ring.take_checked r with
  | Ring.Take_bad (Ring.Bad_range, d) ->
      (* The host still learns the id so it can complete [Failed] and
         keep tx/used accounting balanced. *)
      check_int "descriptor id surfaced" 7 d.Ring.d_id;
      Ring.complete r ~id:d.Ring.d_id ~len:0 ~status:Ring.Failed
  | _ -> Alcotest.fail "expected Take_bad Bad_range");
  check_int "fault counted" 1 (Ring.take_faults r Ring.Bad_range);
  (match Ring.pop_used r with
  | Some u -> check_bool "failed completion" true (u.Ring.u_status = Ring.Failed)
  | None -> Alcotest.fail "expected used entry");
  Alcotest.(check (option string)) "host indices sane" None (Ring.check_host r)

let test_take_checked_rollback () =
  let r = mk_ring ~slots:4 () in
  for i = 0 to 2 do
    Ring.post_raw r ~now:T.zero ~id:i ~off:(i * 64) ~len:64
  done;
  (match Ring.take_checked r with
  | Ring.Take_ok d -> Ring.complete r ~id:d.Ring.d_id ~len:64 ~status:Ring.Complete
  | _ -> Alcotest.fail "expected Take_ok");
  (* The guest's avail index regresses below what the host observed. *)
  Ring.set_avail_raw r 1;
  (match Ring.take_checked r with
  | Ring.Take_stop Ring.Rollback -> ()
  | _ -> Alcotest.fail "expected Take_stop Rollback");
  check_int "one verdict covers the regression" 1
    (Ring.take_faults r Ring.Rollback);
  (* The shadow resyncs, but never below [taken]: the host really
     consumed that entry and its record of it must survive. *)
  Alcotest.(check (option string)) "host indices sane" None (Ring.check_host r);
  (match Ring.take_checked r with
  | Ring.Take_empty -> ()
  | _ -> Alcotest.fail "expected Take_empty after resync");
  check_int "no second rollback verdict" 1 (Ring.take_faults r Ring.Rollback);
  (* When the guest's index grows again the drain resumes where the
     host left off. *)
  Ring.set_avail_raw r 3;
  (match Ring.take_checked r with
  | Ring.Take_ok d -> check_int "drain resumes" 1 d.Ring.d_id
  | _ -> Alcotest.fail "expected Take_ok after recovery")

let test_take_checked_runahead_and_overcommit () =
  (* avail jumps far past capacity over slots no descriptor was ever
     written to: each unwritten slot drains as a counted drop until the
     overcommit guard refuses to take further. *)
  let r = mk_ring ~slots:4 () in
  Ring.set_avail_raw r 9;
  let drops = ref 0 and stopped = ref false in
  for _ = 1 to 6 do
    match Ring.take_checked r with
    | Ring.Take_drop Ring.Empty_slot -> incr drops
    | Ring.Take_stop Ring.Overcommit -> stopped := true
    | _ -> Alcotest.fail "expected drop or overcommit stop"
  done;
  check_int "one drop per slot up to capacity" 4 !drops;
  check_bool "then the host refuses to take" true !stopped;
  check_int "drops counted" 4 (Ring.take_faults r Ring.Empty_slot);
  check_bool "overcommit counted" true (Ring.take_faults r Ring.Overcommit > 0);
  Alcotest.(check (option string)) "host indices sane" None (Ring.check_host r)

let test_take_checked_reap_withhold () =
  (* Well-formed descriptors, used entries never reaped: after [cap]
     takes the ring is overcommitted and the host stops consuming, so a
     hostile guest cannot force used entries onto uncollected slots. *)
  let r = mk_ring ~slots:4 () in
  for i = 0 to 5 do
    Ring.post_raw r ~now:T.zero ~id:i ~off:0 ~len:64
  done;
  for _ = 0 to 3 do
    match Ring.take_checked r with
    | Ring.Take_ok d -> Ring.complete r ~id:d.Ring.d_id ~len:64 ~status:Ring.Complete
    | _ -> Alcotest.fail "expected Take_ok"
  done;
  (match Ring.take_checked r with
  | Ring.Take_stop Ring.Overcommit -> ()
  | _ -> Alcotest.fail "expected Take_stop Overcommit");
  check_int "in flight bounded by capacity" 4 (Ring.used_idx r);
  (* Reaping unblocks the ring. *)
  ignore (Ring.pop_used r);
  (match Ring.take_checked r with
  | Ring.Take_ok _ -> ()
  | _ -> Alcotest.fail "expected Take_ok after reap");
  Alcotest.(check (option string)) "host indices sane" None (Ring.check_host r)

let test_ring_raw_wrap_around () =
  (* The raw surface drives the free-running indices several times
     around a tiny ring; the host-safety monitor must stay quiet. *)
  let r = mk_ring ~slots:2 () in
  let monitor = Ring.monitor r in
  for i = 0 to 19 do
    Ring.post_raw r ~now:T.zero ~id:i ~off:(i mod 2 * 64) ~len:64;
    (match Ring.take_checked r with
    | Ring.Take_ok d ->
        check_int "ids survive the wrap" i d.Ring.d_id;
        Ring.complete r ~id:d.Ring.d_id ~len:64 ~status:Ring.Complete
    | _ -> Alcotest.fail "expected Take_ok");
    ignore (Ring.pop_used r);
    Alcotest.(check (option string)) "monitor happy" None (monitor ())
  done;
  check_int "taken wrapped far past capacity" 20 (Ring.taken_idx r);
  check_int "no faults on a clean raw driver" 0
    (List.fold_left
       (fun acc f -> acc + Ring.take_faults r f)
       0
       [ Ring.Bad_range; Ring.Empty_slot; Ring.Rollback; Ring.Overcommit ])

(* Fuzz the trust boundary: an arbitrary byte-driven guest throws
   random checked posts, raw posts, index writes, and reaps at the
   ring while the host drains with [take_checked].  Whatever the guest
   does, the host side must never raise, host-owned indices must stay
   sane, and completions must balance takes. *)
let ring_prop_hostile_guest =
  QCheck.Test.make ~name:"take_checked never raises, host indices stay sane"
    ~count:300
    QCheck.(list (pair (int_bound 5) (pair small_int small_signed_int)))
    (fun cmds ->
      let r = mk_ring ~slots:4 () in
      let completes = ref 0 in
      let host_drain () =
        match Ring.take_checked r with
        | Ring.Take_ok d ->
            Ring.complete r ~id:d.Ring.d_id ~len:d.Ring.d_len
              ~status:Ring.Complete;
            incr completes
        | Ring.Take_bad (_, d) ->
            Ring.complete r ~id:d.Ring.d_id ~len:0 ~status:Ring.Failed;
            incr completes
        | Ring.Take_empty | Ring.Take_drop _ | Ring.Take_stop _ -> ()
      in
      List.iter
        (fun (op, (a, b)) ->
          (match op with
          | 0 -> ignore (Ring.post r ~now:T.zero ~id:a ~off:b ~len:(a * 16))
          | 1 -> Ring.post_raw r ~now:T.zero ~id:a ~off:b ~len:(b * 3)
          | 2 -> Ring.set_avail_raw r (Ring.avail_idx r + b)
          | 3 -> ignore (Ring.pop_used r)
          | 4 -> Ring.kick_raw r
          | _ -> host_drain ());
          (* The host services the ring between guest actions. *)
          host_drain ();
          match Ring.check_host r with
          | None -> ()
          | Some msg -> QCheck.Test.fail_reportf "host invariant: %s" msg)
        cmds;
      (* Every take that yielded a descriptor was completed; used can
         never run ahead of taken no matter what the guest wrote. *)
      Ring.used_idx r = !completes && Ring.used_idx r <= Ring.taken_idx r)

let test_ring_notifiers () =
  let r = mk_ring () in
  let kicked = ref 0 and irqed = ref 0 in
  Ring.arm_kick r (fun () -> incr kicked);
  ignore (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_int "kick fired" 1 !kicked;
  (* Edge-triggered: disarmed after firing, further posts coalesce. *)
  ignore (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_int "kick coalesced" 1 !kicked;
  Ring.arm_irq r (fun () -> incr irqed);
  ignore (Ring.take r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  check_int "irq fired" 1 !irqed;
  check_int "kicks counted" 2 (Ring.kicks r);
  check_int "irqs counted" 1 (Ring.irqs r)

(* {1 Tenant} *)

let test_tenant_layout_and_counters () =
  let pool = Memory.Pool.create ~name:"t-pool" ~capacity_bytes:(1 lsl 20) in
  let tn =
    Tenant.create ~pool ~host_addr:0 ~name:"t0" ~id:0 ~ring_slots:4
      ~buf_bytes:128 ()
  in
  check_int "tx buf 0" 0 (Tenant.tx_buf_off tn 0);
  check_int "tx buf wraps" 128 (Tenant.tx_buf_off tn 5);
  check_int "rx bufs in second half" (4 * 128) (Tenant.rx_buf_off tn 0);
  check_int "region covers both halves" (2 * 4 * 128)
    (Memory.Region.size tn.Tenant.region);
  Tenant.note_tx tn Ring.Complete;
  Tenant.note_tx tn Ring.Rejected;
  Tenant.note_tx tn Ring.Timed_out;
  Tenant.note_tx tn Ring.Cancelled;
  Tenant.note_rx tn 100;
  Tenant.note_rx_drop tn;
  Tenant.note_reclaimed tn 777;
  check_int "tx completed" 1 (Tenant.tx_completed tn);
  check_int "tx rejected" 1 (Tenant.tx_rejected tn);
  check_int "tx failed" 1 (Tenant.tx_failed tn);
  check_int "tx cancelled" 1 (Tenant.tx_cancelled tn);
  check_int "rx delivered" 1 (Tenant.rx_delivered tn);
  check_int "rx drops" 1 (Tenant.rx_drops tn);
  check_int "reclaimed" 777 (Tenant.reclaimed_bytes tn)

let test_tenant_owner_reclaim () =
  (* The detach path in one unit: admission charges land in the pool
     under the tenant's owner, and a generation-tagged bulk reclaim
     returns every charged byte while stale releases become no-ops. *)
  let pool = Memory.Pool.create ~name:"r-pool" ~capacity_bytes:(1 lsl 20) in
  let tn =
    Tenant.create ~pool ~host_addr:0 ~name:"t1" ~id:1 ~ring_slots:4
      ~buf_bytes:128 ()
  in
  let charges =
    List.init 3 (fun _ ->
        match Overload.Admission.admit tn.Tenant.adm ~now:T.zero ~bytes:256 with
        | Overload.Admission.Admitted a -> a
        | Overload.Admission.Rejected _ -> Alcotest.fail "unexpected reject")
  in
  check_int "charged to owner" (3 * 256) (Tenant.pool_usage tn);
  let reclaimed = Memory.Pool.release_owner pool ~owner:tn.Tenant.owner in
  check_int "bulk reclaim returns every byte" (3 * 256) reclaimed;
  check_int "owner emptied" 0 (Tenant.pool_usage tn);
  (* Straggler releases after the generation bump must be no-ops. *)
  List.iter (fun a -> Overload.Admission.release tn.Tenant.adm a) charges;
  check_int "stale releases are no-ops" 0 (Tenant.pool_usage tn);
  Memory.Pool.assert_quiesced pool

(* {1 Mux end-to-end} *)

let test_mux_echo_and_detach () =
  let loop = Sim.Loop.create ~seed:7 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore (Snap.Host.enable_guests h_guest);
  ignore
    (Snap.Host.spawn_app h_srv ~name:"echo" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"echo" () in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:m.PE.msg_bytes ())
         done));
  let echoes = ref 0 in
  let statuses = ref [] in
  let done_tenant = ref None in
  ignore
    (Snap.Host.spawn_app h_guest ~name:"guest" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 100);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"g0" ~dst_host:1
             ~dst_name:"echo" ~ring_slots:8 ~buf_bytes:512 ()
         in
         for s = 0 to Ring.capacity tn.Tenant.rx - 1 do
           ignore
             (Ring.post tn.Tenant.rx ~now:(Cpu.Thread.now ctx) ~id:s
                ~off:(Tenant.rx_buf_off tn s) ~len:512)
         done;
         for i = 0 to 2 do
           ignore
             (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i
                ~off:(Tenant.tx_buf_off tn i) ~len:256)
         done;
         (* Sleep-poll both used rings until all three echoes landed. *)
         let deadline = T.add (Cpu.Thread.now ctx) (T.ms 20) in
         while
           (!echoes < 3 || List.length !statuses < 3)
           && Cpu.Thread.now ctx < deadline
         do
           (match Ring.pop_used tn.Tenant.tx with
           | Some u -> statuses := u.Ring.u_status :: !statuses
           | None -> ());
           (match Ring.pop_used tn.Tenant.rx with
           | Some _ -> incr echoes
           | None -> ());
           Cpu.Thread.sleep ctx (T.us 2)
         done;
         Snap.Host.detach_tenant h_guest tn;
         done_tenant := Some tn));
  Sim.Loop.run ~until:(T.ms 40) loop;
  (match !done_tenant with
  | None -> Alcotest.fail "guest app never finished"
  | Some tn ->
      check_int "all sends completed" 3 (Tenant.tx_completed tn);
      check_bool "every status Complete" true
        (List.for_all (fun s -> s = Ring.Complete) !statuses);
      check_int "all echoes delivered" 3 (Tenant.rx_delivered tn);
      check_int "no rx drops" 0 (Tenant.rx_drops tn);
      check_bool "detached at quiesce" true (Tenant.state tn = Tenant.Detached);
      check_int "no charges left behind" 0 (Tenant.pool_usage tn));
  (match Snap.Host.guest_mux h_guest with
  | Some mux ->
      check_int "no in-flight ops" 0 (Guest.Mux.inflight_ops mux);
      check_int "tenant gone from mux" 0 (Guest.Mux.attached mux)
  | None -> Alcotest.fail "mux missing");
  Memory.Pool.assert_quiesced (PE.op_pool h_guest.Snap.Host.pony)

let test_mux_force_detach () =
  let loop = Sim.Loop.create ~seed:8 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore (Snap.Host.enable_guests h_guest);
  ignore
    (Snap.Host.spawn_app h_srv ~name:"sink" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"sink" () in
         while true do
           let _m = PE.await_message ctx c in
           Cpu.Thread.compute ctx (T.us 1)
         done));
  let done_tenant = ref None in
  ignore
    (Snap.Host.spawn_app h_guest ~name:"guest" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 100);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"g1" ~dst_host:1
             ~dst_name:"sink" ~ring_slots:8 ~buf_bytes:512 ()
         in
         for i = 0 to 5 do
           ignore
             (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i
                ~off:(Tenant.tx_buf_off tn i) ~len:256)
         done;
         (* Yank the tenant with descriptors still queued or in flight:
            the forced path must abandon them and bulk-reclaim. *)
         Cpu.Thread.sleep ctx (T.us 20);
         Snap.Host.detach_tenant ~force:true h_guest tn;
         done_tenant := Some tn));
  Sim.Loop.run ~until:(T.ms 40) loop;
  (match !done_tenant with
  | None -> Alcotest.fail "guest app never finished"
  | Some tn ->
      check_bool "detached" true (Tenant.state tn = Tenant.Detached);
      check_int "no charges left behind" 0 (Tenant.pool_usage tn));
  (match Snap.Host.guest_mux h_guest with
  | Some mux -> check_int "no in-flight ops" 0 (Guest.Mux.inflight_ops mux)
  | None -> Alcotest.fail "mux missing");
  Memory.Pool.assert_quiesced (PE.op_pool h_guest.Snap.Host.pony)

let test_mux_quarantine_hostile_tenant () =
  (* A hostile tenant hammers its tx ring through the raw surface while
     a well-behaved neighbour echoes traffic.  The mux must score the
     violations, quarantine and force-detach the attacker, and leave
     the neighbour untouched. *)
  let loop = Sim.Loop.create ~seed:11 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore
    (Snap.Host.enable_guests ~suspect_after:2 ~quarantine_after:5 h_guest);
  ignore
    (Snap.Host.spawn_app h_srv ~name:"echo" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"echo" () in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:m.PE.msg_bytes ())
         done));
  let evil = ref None and good = ref None in
  ignore
    (Snap.Host.spawn_app h_guest ~name:"evil" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 100);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"evil" ~dst_host:1
             ~dst_name:"echo" ~ring_slots:8 ~buf_bytes:512 ()
         in
         evil := Some tn;
         (* Garbage descriptors until well past the quarantine
            threshold; keep posting after detach — frozen host indices
            are the containment property, not guest silence. *)
         let sz = Memory.Region.size tn.Tenant.region in
         for i = 0 to 19 do
           Ring.post_raw tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i ~off:sz
             ~len:64;
           Cpu.Thread.sleep ctx (T.us 50)
         done));
  ignore
    (Snap.Host.spawn_app h_guest ~name:"good" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 120);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"good" ~dst_host:1
             ~dst_name:"echo" ~ring_slots:8 ~buf_bytes:512 ()
         in
         for s = 0 to Ring.capacity tn.Tenant.rx - 1 do
           ignore
             (Ring.post tn.Tenant.rx ~now:(Cpu.Thread.now ctx) ~id:s
                ~off:(Tenant.rx_buf_off tn s) ~len:512)
         done;
         for i = 0 to 2 do
           ignore
             (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i
                ~off:(Tenant.tx_buf_off tn i) ~len:256)
         done;
         let deadline = T.add (Cpu.Thread.now ctx) (T.ms 20) in
         while
           Tenant.tx_completed tn < 3 && Cpu.Thread.now ctx < deadline
         do
           (match Ring.pop_used tn.Tenant.tx with Some _ | None -> ());
           ignore (Ring.pop_used tn.Tenant.rx);
           Cpu.Thread.sleep ctx (T.us 5)
         done;
         Snap.Host.detach_tenant h_guest tn;
         good := Some tn));
  Sim.Loop.run ~until:(T.ms 40) loop;
  (match !evil with
  | None -> Alcotest.fail "hostile app never attached"
  | Some tn ->
      check_bool "attacker quarantined" true
        (Tenant.health tn = Tenant.Quarantined);
      check_bool "attacker force-detached" true
        (Tenant.state tn = Tenant.Detached);
      check_bool "violations scored" true
        (Tenant.violations_by tn Tenant.Bad_range >= 5);
      check_int "no charges left behind" 0 (Tenant.pool_usage tn));
  (match !good with
  | None -> Alcotest.fail "good app never finished"
  | Some tn ->
      check_bool "neighbour stayed healthy" true
        (Tenant.health tn = Tenant.Healthy);
      check_int "neighbour unaffected" 3 (Tenant.tx_completed tn);
      check_int "neighbour scored no violations" 0 (Tenant.violations tn));
  (match Snap.Host.guest_mux h_guest with
  | Some mux ->
      check_int "one quarantine" 1 (Guest.Mux.quarantines mux);
      check_bool "suspect escalation preceded it" true
        (Guest.Mux.suspects mux >= 1);
      check_int "no in-flight ops" 0 (Guest.Mux.inflight_ops mux);
      check_int "all tenants gone from mux" 0 (Guest.Mux.attached mux)
  | None -> Alcotest.fail "mux missing");
  Memory.Pool.assert_quiesced (PE.op_pool h_guest.Snap.Host.pony)

let () =
  Alcotest.run "guest"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "out-of-order completion" `Quick
            test_ring_out_of_order_completion;
          Alcotest.test_case "full until reaped" `Quick
            test_ring_fullness_until_reaped;
          Alcotest.test_case "wrap indices" `Quick test_ring_wrap_indices;
          Alcotest.test_case "bad post counted" `Quick
            test_ring_bad_post_counted;
          Alcotest.test_case "notifiers" `Quick test_ring_notifiers;
        ] );
      ( "trust-boundary",
        [
          Alcotest.test_case "bad range completes Failed" `Quick
            test_take_checked_bad_range;
          Alcotest.test_case "avail rollback stops the drain" `Quick
            test_take_checked_rollback;
          Alcotest.test_case "runahead drops then overcommit" `Quick
            test_take_checked_runahead_and_overcommit;
          Alcotest.test_case "reap withholding bounded" `Quick
            test_take_checked_reap_withhold;
          Alcotest.test_case "raw wrap-around" `Quick test_ring_raw_wrap_around;
          QCheck_alcotest.to_alcotest ring_prop_hostile_guest;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "layout and counters" `Quick
            test_tenant_layout_and_counters;
          Alcotest.test_case "owner reclaim" `Quick test_tenant_owner_reclaim;
        ] );
      ( "mux",
        [
          Alcotest.test_case "echo end-to-end" `Quick test_mux_echo_and_detach;
          Alcotest.test_case "force detach" `Quick test_mux_force_detach;
          Alcotest.test_case "hostile tenant quarantined" `Quick
            test_mux_quarantine_hostile_tenant;
        ] );
    ]
