(* Tests for the guest subsystem: virtio-style rings, tenant
   accounting, and the mux backend end-to-end. *)

module T = Sim.Time
module Ring = Guest.Ring
module Tenant = Guest.Tenant
module PE = Pony.Express

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_region ?(size = 4096) () =
  Memory.Region.create ~backed:true ~id:9000 ~size ~owner:"test" ()

let mk_ring ?(slots = 4) ?region () =
  let region =
    match region with Some r -> r | None -> mk_region ()
  in
  Ring.create ~name:"test-ring" ~region ~slots ()

(* {1 Ring} *)

let test_ring_fifo () =
  let r = mk_ring () in
  check_bool "post 0" true (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_bool "post 1" true (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_int "backlog" 2 (Ring.backlog r);
  (match Ring.take r with
  | Some d -> check_int "take oldest" 0 d.Ring.d_id
  | None -> Alcotest.fail "expected descriptor");
  check_int "in flight" 1 (Ring.in_flight r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  check_int "completion ready" 1 (Ring.completions_ready r);
  (match Ring.pop_used r with
  | Some u ->
      check_int "used id" 0 u.Ring.u_id;
      check_bool "complete status" true (u.Ring.u_status = Ring.Complete)
  | None -> Alcotest.fail "expected used entry");
  check_int "occupancy after reap" 1 (Ring.occupancy r);
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_out_of_order_completion () =
  let r = mk_ring () in
  for i = 0 to 2 do
    ignore (Ring.post r ~now:T.zero ~id:i ~off:(i * 64) ~len:64)
  done;
  for _ = 0 to 2 do
    ignore (Ring.take r)
  done;
  (* Used entries carry descriptor ids, so the backend may publish in
     any order; the guest reaps in publication order. *)
  Ring.complete r ~id:2 ~len:64 ~status:Ring.Complete;
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Failed;
  Ring.complete r ~id:1 ~len:64 ~status:Ring.Complete;
  let ids =
    List.init 3 (fun _ ->
        match Ring.pop_used r with
        | Some u -> u.Ring.u_id
        | None -> Alcotest.fail "missing used entry")
  in
  Alcotest.(check (list int)) "publication order" [ 2; 0; 1 ] ids;
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_fullness_until_reaped () =
  (* Virtio fullness is [avail - reaped <= capacity]: completion alone
     does not free a slot, the guest must reap the used entry. *)
  let r = mk_ring ~slots:2 () in
  check_bool "post a" true (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_bool "post b" true (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_bool "full" true (Ring.is_full r);
  check_bool "post bounces" false (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  check_int "bounce counted" 1 (Ring.post_failures r);
  ignore (Ring.take r);
  ignore (Ring.take r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  Ring.complete r ~id:1 ~len:64 ~status:Ring.Complete;
  check_bool "still full before reap" false
    (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  ignore (Ring.pop_used r);
  check_bool "slot freed by reap" true
    (Ring.post r ~now:T.zero ~id:2 ~off:0 ~len:64);
  Alcotest.(check (option string)) "healthy" None (Ring.check r)

let test_ring_wrap_indices () =
  (* Drive the free-running indices several times around a tiny ring;
     they must grow monotonically and stay ordered the whole way. *)
  let r = mk_ring ~slots:2 () in
  let monitor = Ring.monitor r in
  for i = 0 to 19 do
    check_bool "post" true
      (Ring.post r ~now:T.zero ~id:i ~off:(i mod 2 * 64) ~len:64);
    ignore (Ring.take r);
    Ring.complete r ~id:i ~len:64 ~status:Ring.Complete;
    ignore (Ring.pop_used r);
    Alcotest.(check (option string)) "monitor happy" None (monitor ())
  done;
  check_int "avail wrapped far past capacity" 20 (Ring.avail_idx r);
  check_int "reaped caught up" 20 (Ring.reaped_idx r);
  check_int "occupancy" 0 (Ring.occupancy r)

let test_ring_bounds_raise () =
  let r = mk_ring ~slots:4 () in
  Alcotest.check_raises "buffer past region end"
    (Invalid_argument
       "Guest.Ring.post(test-ring): [4000,4200) outside region of 4096 B")
    (fun () -> ignore (Ring.post r ~now:T.zero ~id:0 ~off:4000 ~len:200));
  Alcotest.check_raises "completion without take"
    (Invalid_argument
       "Guest.Ring.complete(test-ring): more completions than takes")
    (fun () -> Ring.complete r ~id:0 ~len:0 ~status:Ring.Complete)

let test_ring_notifiers () =
  let r = mk_ring () in
  let kicked = ref 0 and irqed = ref 0 in
  Ring.arm_kick r (fun () -> incr kicked);
  ignore (Ring.post r ~now:T.zero ~id:0 ~off:0 ~len:64);
  check_int "kick fired" 1 !kicked;
  (* Edge-triggered: disarmed after firing, further posts coalesce. *)
  ignore (Ring.post r ~now:T.zero ~id:1 ~off:64 ~len:64);
  check_int "kick coalesced" 1 !kicked;
  Ring.arm_irq r (fun () -> incr irqed);
  ignore (Ring.take r);
  Ring.complete r ~id:0 ~len:64 ~status:Ring.Complete;
  check_int "irq fired" 1 !irqed;
  check_int "kicks counted" 2 (Ring.kicks r);
  check_int "irqs counted" 1 (Ring.irqs r)

(* {1 Tenant} *)

let test_tenant_layout_and_counters () =
  let pool = Memory.Pool.create ~name:"t-pool" ~capacity_bytes:(1 lsl 20) in
  let tn =
    Tenant.create ~pool ~host_addr:0 ~name:"t0" ~id:0 ~ring_slots:4
      ~buf_bytes:128 ()
  in
  check_int "tx buf 0" 0 (Tenant.tx_buf_off tn 0);
  check_int "tx buf wraps" 128 (Tenant.tx_buf_off tn 5);
  check_int "rx bufs in second half" (4 * 128) (Tenant.rx_buf_off tn 0);
  check_int "region covers both halves" (2 * 4 * 128)
    (Memory.Region.size tn.Tenant.region);
  Tenant.note_tx tn Ring.Complete;
  Tenant.note_tx tn Ring.Rejected;
  Tenant.note_tx tn Ring.Timed_out;
  Tenant.note_tx tn Ring.Cancelled;
  Tenant.note_rx tn 100;
  Tenant.note_rx_drop tn;
  Tenant.note_reclaimed tn 777;
  check_int "tx completed" 1 (Tenant.tx_completed tn);
  check_int "tx rejected" 1 (Tenant.tx_rejected tn);
  check_int "tx failed" 1 (Tenant.tx_failed tn);
  check_int "tx cancelled" 1 (Tenant.tx_cancelled tn);
  check_int "rx delivered" 1 (Tenant.rx_delivered tn);
  check_int "rx drops" 1 (Tenant.rx_drops tn);
  check_int "reclaimed" 777 (Tenant.reclaimed_bytes tn)

let test_tenant_owner_reclaim () =
  (* The detach path in one unit: admission charges land in the pool
     under the tenant's owner, and a generation-tagged bulk reclaim
     returns every charged byte while stale releases become no-ops. *)
  let pool = Memory.Pool.create ~name:"r-pool" ~capacity_bytes:(1 lsl 20) in
  let tn =
    Tenant.create ~pool ~host_addr:0 ~name:"t1" ~id:1 ~ring_slots:4
      ~buf_bytes:128 ()
  in
  let charges =
    List.init 3 (fun _ ->
        match Overload.Admission.admit tn.Tenant.adm ~now:T.zero ~bytes:256 with
        | Overload.Admission.Admitted a -> a
        | Overload.Admission.Rejected _ -> Alcotest.fail "unexpected reject")
  in
  check_int "charged to owner" (3 * 256) (Tenant.pool_usage tn);
  let reclaimed = Memory.Pool.release_owner pool ~owner:tn.Tenant.owner in
  check_int "bulk reclaim returns every byte" (3 * 256) reclaimed;
  check_int "owner emptied" 0 (Tenant.pool_usage tn);
  (* Straggler releases after the generation bump must be no-ops. *)
  List.iter (fun a -> Overload.Admission.release tn.Tenant.adm a) charges;
  check_int "stale releases are no-ops" 0 (Tenant.pool_usage tn);
  Memory.Pool.assert_quiesced pool

(* {1 Mux end-to-end} *)

let test_mux_echo_and_detach () =
  let loop = Sim.Loop.create ~seed:7 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore (Snap.Host.enable_guests h_guest);
  ignore
    (Snap.Host.spawn_app h_srv ~name:"echo" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"echo" () in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:m.PE.msg_bytes ())
         done));
  let echoes = ref 0 in
  let statuses = ref [] in
  let done_tenant = ref None in
  ignore
    (Snap.Host.spawn_app h_guest ~name:"guest" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 100);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"g0" ~dst_host:1
             ~dst_name:"echo" ~ring_slots:8 ~buf_bytes:512 ()
         in
         for s = 0 to Ring.capacity tn.Tenant.rx - 1 do
           ignore
             (Ring.post tn.Tenant.rx ~now:(Cpu.Thread.now ctx) ~id:s
                ~off:(Tenant.rx_buf_off tn s) ~len:512)
         done;
         for i = 0 to 2 do
           ignore
             (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i
                ~off:(Tenant.tx_buf_off tn i) ~len:256)
         done;
         (* Sleep-poll both used rings until all three echoes landed. *)
         let deadline = T.add (Cpu.Thread.now ctx) (T.ms 20) in
         while
           (!echoes < 3 || List.length !statuses < 3)
           && Cpu.Thread.now ctx < deadline
         do
           (match Ring.pop_used tn.Tenant.tx with
           | Some u -> statuses := u.Ring.u_status :: !statuses
           | None -> ());
           (match Ring.pop_used tn.Tenant.rx with
           | Some _ -> incr echoes
           | None -> ());
           Cpu.Thread.sleep ctx (T.us 2)
         done;
         Snap.Host.detach_tenant h_guest tn;
         done_tenant := Some tn));
  Sim.Loop.run ~until:(T.ms 40) loop;
  (match !done_tenant with
  | None -> Alcotest.fail "guest app never finished"
  | Some tn ->
      check_int "all sends completed" 3 (Tenant.tx_completed tn);
      check_bool "every status Complete" true
        (List.for_all (fun s -> s = Ring.Complete) !statuses);
      check_int "all echoes delivered" 3 (Tenant.rx_delivered tn);
      check_int "no rx drops" 0 (Tenant.rx_drops tn);
      check_bool "detached at quiesce" true (Tenant.state tn = Tenant.Detached);
      check_int "no charges left behind" 0 (Tenant.pool_usage tn));
  (match Snap.Host.guest_mux h_guest with
  | Some mux ->
      check_int "no in-flight ops" 0 (Guest.Mux.inflight_ops mux);
      check_int "tenant gone from mux" 0 (Guest.Mux.attached mux)
  | None -> Alcotest.fail "mux missing");
  Memory.Pool.assert_quiesced (PE.op_pool h_guest.Snap.Host.pony)

let test_mux_force_detach () =
  let loop = Sim.Loop.create ~seed:8 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore (Snap.Host.enable_guests h_guest);
  ignore
    (Snap.Host.spawn_app h_srv ~name:"sink" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"sink" () in
         while true do
           let _m = PE.await_message ctx c in
           Cpu.Thread.compute ctx (T.us 1)
         done));
  let done_tenant = ref None in
  ignore
    (Snap.Host.spawn_app h_guest ~name:"guest" (fun ctx ->
         Cpu.Thread.sleep ctx (T.us 100);
         let tn =
           Snap.Host.attach_tenant ctx h_guest ~name:"g1" ~dst_host:1
             ~dst_name:"sink" ~ring_slots:8 ~buf_bytes:512 ()
         in
         for i = 0 to 5 do
           ignore
             (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:i
                ~off:(Tenant.tx_buf_off tn i) ~len:256)
         done;
         (* Yank the tenant with descriptors still queued or in flight:
            the forced path must abandon them and bulk-reclaim. *)
         Cpu.Thread.sleep ctx (T.us 20);
         Snap.Host.detach_tenant ~force:true h_guest tn;
         done_tenant := Some tn));
  Sim.Loop.run ~until:(T.ms 40) loop;
  (match !done_tenant with
  | None -> Alcotest.fail "guest app never finished"
  | Some tn ->
      check_bool "detached" true (Tenant.state tn = Tenant.Detached);
      check_int "no charges left behind" 0 (Tenant.pool_usage tn));
  (match Snap.Host.guest_mux h_guest with
  | Some mux -> check_int "no in-flight ops" 0 (Guest.Mux.inflight_ops mux)
  | None -> Alcotest.fail "mux missing");
  Memory.Pool.assert_quiesced (PE.op_pool h_guest.Snap.Host.pony)

let () =
  Alcotest.run "guest"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "out-of-order completion" `Quick
            test_ring_out_of_order_completion;
          Alcotest.test_case "full until reaped" `Quick
            test_ring_fullness_until_reaped;
          Alcotest.test_case "wrap indices" `Quick test_ring_wrap_indices;
          Alcotest.test_case "bounds raise" `Quick test_ring_bounds_raise;
          Alcotest.test_case "notifiers" `Quick test_ring_notifiers;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "layout and counters" `Quick
            test_tenant_layout_and_counters;
          Alcotest.test_case "owner reclaim" `Quick test_tenant_owner_reclaim;
        ] );
      ( "mux",
        [
          Alcotest.test_case "echo end-to-end" `Quick test_mux_echo_and_detach;
          Alcotest.test_case "force detach" `Quick test_mux_force_detach;
        ] );
    ]
