(* Tests for the discrete-event core: heap, rng, loop, time. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Heap -------------------------------------------------------------- *)

let test_heap_order () =
  let h = Sim.Heap.create () in
  List.iter (fun k -> Sim.Heap.add h ~key:k k) [ 5; 3; 9; 1; 7; 3; 0 ];
  let out = ref [] in
  let rec drain () =
    match Sim.Heap.pop h with
    | Some v ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  Sim.Heap.add h ~key:1 "a";
  Sim.Heap.add h ~key:1 "b";
  Sim.Heap.add h ~key:1 "c";
  Alcotest.(check (option string)) "first" (Some "a") (Sim.Heap.pop h);
  Alcotest.(check (option string)) "second" (Some "b") (Sim.Heap.pop h);
  Alcotest.(check (option string)) "third" (Some "c") (Sim.Heap.pop h)

let test_heap_min_key () =
  let h = Sim.Heap.create () in
  Alcotest.(check (option int)) "empty" None (Sim.Heap.min_key h);
  Sim.Heap.add h ~key:42 ();
  Sim.Heap.add h ~key:7 ();
  Alcotest.(check (option int)) "min" (Some 7) (Sim.Heap.min_key h)

let heap_prop_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing key order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iter (fun k -> Sim.Heap.add h ~key:k k) keys;
      let rec drain acc =
        match Sim.Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

(* -- Rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:7 in
  let c = Sim.Rng.split a in
  let x = Sim.Rng.int a 1_000_000 and y = Sim.Rng.int c 1_000_000 in
  check_bool "streams diverge" true (x <> y)

let test_rng_bounds () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_exponential_mean () =
  let r = Sim.Rng.create ~seed:11 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.exponential r ~mean:50.0
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 50" true (mean > 47.0 && mean < 53.0)

let test_rng_float_bounds () =
  let r = Sim.Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

(* -- Loop -------------------------------------------------------------- *)

let test_loop_ordering () =
  let loop = Sim.Loop.create () in
  let order = ref [] in
  ignore (Sim.Loop.at loop (Sim.Time.us 30) (fun () -> order := 3 :: !order));
  ignore (Sim.Loop.at loop (Sim.Time.us 10) (fun () -> order := 1 :: !order));
  ignore (Sim.Loop.at loop (Sim.Time.us 20) (fun () -> order := 2 :: !order));
  Sim.Loop.run loop;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  check_int "clock at last event" (Sim.Time.us 30) (Sim.Loop.now loop)

let test_loop_same_time_fifo () =
  let loop = Sim.Loop.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Loop.at loop (Sim.Time.us 10) (fun () -> order := i :: !order))
  done;
  Sim.Loop.run loop;
  Alcotest.(check (list int)) "fifo among ties" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_loop_cancel () =
  let loop = Sim.Loop.create () in
  let fired = ref false in
  let h = Sim.Loop.after loop (Sim.Time.us 5) (fun () -> fired := true) in
  Sim.Loop.cancel h;
  Sim.Loop.run loop;
  check_bool "cancelled event did not fire" false !fired

let test_loop_until () =
  let loop = Sim.Loop.create () in
  let count = ref 0 in
  ignore (Sim.Loop.at loop (Sim.Time.us 10) (fun () -> incr count));
  ignore (Sim.Loop.at loop (Sim.Time.us 90) (fun () -> incr count));
  Sim.Loop.run ~until:(Sim.Time.us 50) loop;
  check_int "only first fired" 1 !count;
  check_int "clock at until" (Sim.Time.us 50) (Sim.Loop.now loop);
  Sim.Loop.run loop;
  check_int "second fires later" 2 !count

let test_loop_every () =
  let loop = Sim.Loop.create () in
  let count = ref 0 in
  let h = Sim.Loop.every loop (Sim.Time.us 10) (fun () -> incr count) in
  Sim.Loop.run ~until:(Sim.Time.us 55) loop;
  check_int "five periods" 5 !count;
  Sim.Loop.cancel h;
  Sim.Loop.run ~until:(Sim.Time.us 200) loop;
  check_int "stopped after cancel" 5 !count

let test_loop_nested_schedule () =
  let loop = Sim.Loop.create () in
  let hits = ref [] in
  ignore
    (Sim.Loop.at loop (Sim.Time.us 10) (fun () ->
         hits := Sim.Loop.now loop :: !hits;
         ignore
           (Sim.Loop.after loop (Sim.Time.us 5) (fun () ->
                hits := Sim.Loop.now loop :: !hits))));
  Sim.Loop.run loop;
  Alcotest.(check (list int))
    "nested event at +5us"
    [ Sim.Time.us 10; Sim.Time.us 15 ]
    (List.rev !hits)

let test_loop_past_event_runs_now () =
  let loop = Sim.Loop.create () in
  let at = ref (-1) in
  ignore
    (Sim.Loop.at loop (Sim.Time.us 10) (fun () ->
         ignore (Sim.Loop.at loop (Sim.Time.us 3) (fun () -> at := Sim.Loop.now loop))));
  Sim.Loop.run loop;
  check_int "clamped to now" (Sim.Time.us 10) !at

(* -- Trace ------------------------------------------------------------- *)

(* Every trace test restores the global filter/capture state so the rest
   of the suite (and bench runs in the same process) see the default
   everything-off configuration. *)
let with_trace_reset f =
  Fun.protect f ~finally:(fun () ->
      Sim.Trace.set_level None;
      Sim.Trace.clear_components ();
      Sim.Trace.set_capture None)

let test_trace_filtered_is_lazy () =
  with_trace_reset (fun () ->
      let loop = Sim.Loop.create () in
      let ran = ref 0 in
      let probe fmt_ppf =
        incr ran;
        Format.pp_print_string fmt_ppf "probe"
      in
      (* Level filter off (default): the %t printer must not run. *)
      Sim.Trace.set_level None;
      Sim.Trace.emit loop Sim.Trace.Error ~component:"lazy" "x=%t" probe;
      check_int "printer skipped when level off" 0 !ran;
      (* Level passes but the component is filtered out. *)
      Sim.Trace.set_level (Some Sim.Trace.Debug);
      Sim.Trace.enable_component "other";
      Sim.Trace.emit loop Sim.Trace.Error ~component:"lazy" "x=%t" probe;
      check_int "printer skipped when component off" 0 !ran;
      (* Control: once the filters pass, the printer does run. *)
      Sim.Trace.enable_component "lazy";
      Sim.Trace.set_capture (Some 8);
      Sim.Trace.emit loop Sim.Trace.Error ~component:"lazy" "x=%t" probe;
      check_int "printer ran when enabled" 1 !ran)

let test_trace_capture_wraparound () =
  with_trace_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Trace.set_level (Some Sim.Trace.Info);
      Sim.Trace.set_capture (Some 3);
      for i = 1 to 5 do
        Sim.Trace.emit loop Sim.Trace.Info ~component:"ring" "line %d" i
      done;
      let got = Sim.Trace.captured () in
      check_int "ring keeps the newest 3" 3 (List.length got);
      let has n =
        List.exists
          (fun l ->
            String.length l >= String.length n
            && String.sub l (String.length l - String.length n) (String.length n)
               = n)
          got
      in
      check_bool "line 1 evicted" false (has "line 1");
      check_bool "line 2 evicted" false (has "line 2");
      check_bool "line 3 kept" true (has "line 3");
      check_bool "line 5 kept" true (has "line 5"))

let test_trace_capture_component_filter () =
  with_trace_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Trace.set_level (Some Sim.Trace.Info);
      Sim.Trace.enable_component "keep";
      Sim.Trace.set_capture (Some 8);
      Sim.Trace.emit loop Sim.Trace.Info ~component:"keep" "wanted";
      Sim.Trace.emit loop Sim.Trace.Info ~component:"drop" "unwanted";
      let got = Sim.Trace.captured () in
      check_int "only the enabled component" 1 (List.length got);
      check_bool "right line" true
        (match got with [ l ] -> String.length l > 0 && l.[String.length l - 1] = 'd' | _ -> false))

let test_trace_capture_on_off () =
  with_trace_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Trace.set_level (Some Sim.Trace.Info);
      Alcotest.(check (list string)) "off: nothing captured" []
        (Sim.Trace.captured ());
      Sim.Trace.set_capture (Some 4);
      Sim.Trace.emit loop Sim.Trace.Info ~component:"c" "one";
      check_int "on: captured" 1 (List.length (Sim.Trace.captured ()));
      Sim.Trace.clear_capture ();
      Alcotest.(check (list string)) "clear keeps capture active" []
        (Sim.Trace.captured ());
      Sim.Trace.emit loop Sim.Trace.Info ~component:"c" "two";
      check_int "still capturing after clear" 1
        (List.length (Sim.Trace.captured ()));
      Sim.Trace.set_capture None;
      Alcotest.(check (list string)) "off again: ring dropped" []
        (Sim.Trace.captured ()))

(* -- Span -------------------------------------------------------------- *)

let with_span_reset f =
  Fun.protect f ~finally:(fun () -> Sim.Span.set_capture None)

let test_span_disabled_noop () =
  with_span_reset (fun () ->
      let loop = Sim.Loop.create () in
      check_bool "off by default" false (Sim.Span.enabled ());
      Sim.Span.emit loop "ignored";
      check_int "nothing recorded" 0 (List.length (Sim.Span.events ()));
      check_int "nothing dropped" 0 (Sim.Span.dropped ()))

let test_span_ring_wraparound () =
  with_span_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Span.set_capture (Some 3);
      check_bool "enabled" true (Sim.Span.enabled ());
      for i = 1 to 5 do
        ignore
          (Sim.Loop.at loop (Sim.Time.us i) (fun () ->
               Sim.Span.emit loop (Printf.sprintf "ev%d" i)))
      done;
      Sim.Loop.run loop;
      let evs = Sim.Span.events () in
      check_int "ring keeps newest 3" 3 (List.length evs);
      check_int "two evicted" 2 (Sim.Span.dropped ());
      Alcotest.(check (list string))
        "oldest first" [ "ev3"; "ev4"; "ev5" ]
        (List.map (fun e -> e.Sim.Span.ev_name) evs);
      check_int "virtual timestamps" (Sim.Time.us 3)
        (match evs with e :: _ -> e.Sim.Span.ev_ts | [] -> -1))

let test_span_ring_sustained_overflow () =
  (* Emit far past capacity from a single hot loop: the ring must keep
     exactly the newest [cap] events in order and count every eviction,
     with no resizing or aliasing under sustained pressure. *)
  with_span_reset (fun () ->
      let loop = Sim.Loop.create () in
      let cap = 16 and total = 1000 in
      Sim.Span.set_capture (Some cap);
      ignore
        (Sim.Loop.at loop (Sim.Time.us 1) (fun () ->
             for i = 1 to total do
               Sim.Span.emit loop (Printf.sprintf "ev%d" i)
             done));
      Sim.Loop.run loop;
      let evs = Sim.Span.events () in
      check_int "ring holds exactly cap" cap (List.length evs);
      check_int "everything else dropped" (total - cap) (Sim.Span.dropped ());
      Alcotest.(check (list string))
        "newest cap events, oldest first"
        (List.init cap (fun i -> Printf.sprintf "ev%d" (total - cap + 1 + i)))
        (List.map (fun e -> e.Sim.Span.ev_name) evs))

let test_span_chrome_export () =
  with_span_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Span.set_capture (Some 16);
      ignore
        (Sim.Loop.at loop (Sim.Time.us 10) (fun () ->
             Sim.Span.emit loop ~cat:"test" ~track:"lane" "instant";
             Sim.Span.emit loop ~cat:"test" ~track:"lane"
               ~start:(Sim.Time.us 4) ~dur:(Sim.Time.us 6)
               ~args:[ ("k", "v") ] "span"));
      Sim.Loop.run loop;
      let json = Sim.Span.to_chrome_json () in
      let contains sub =
        let n = String.length sub and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "track metadata" true (contains "thread_name");
      check_bool "complete event" true (contains "\"ph\":\"X\"");
      check_bool "instant event" true (contains "\"ph\":\"i\"");
      check_bool "args survive" true (contains "\"k\":\"v\"");
      check_bool "duration in us" true (contains "\"dur\":6.000"))

let test_span_on_off_transitions () =
  with_span_reset (fun () ->
      let loop = Sim.Loop.create () in
      Sim.Span.set_capture (Some 4);
      Sim.Span.emit loop "kept";
      Sim.Span.set_capture None;
      check_bool "disabled" false (Sim.Span.enabled ());
      check_int "ring dropped with capture" 0 (List.length (Sim.Span.events ()));
      Sim.Span.emit loop "lost";
      Sim.Span.set_capture (Some 4);
      check_int "fresh ring on re-enable" 0 (List.length (Sim.Span.events ()));
      Sim.Span.emit loop "again";
      Sim.Span.clear ();
      check_bool "clear keeps capture active" true (Sim.Span.enabled ());
      check_int "cleared" 0 (List.length (Sim.Span.events ())))

(* -- Wheel ------------------------------------------------------------- *)

let test_wheel_fires_in_order () =
  let loop = Sim.Loop.create () in
  let wheel = Sim.Wheel.create ~loop () in
  let out = ref [] in
  List.iter
    (fun d ->
      ignore
        (Sim.Wheel.arm wheel ~at:d (fun () ->
             out := (d, Sim.Loop.now loop) :: !out)))
    [ 900; 5; 70_000; 5; 1_000_000; 300; 70_000 ];
  Sim.Loop.run loop;
  let fired = List.rev !out in
  Alcotest.(check (list int))
    "due order"
    [ 5; 5; 300; 900; 70_000; 70_000; 1_000_000 ]
    (List.map fst fired);
  List.iter
    (fun (d, at) -> check_int "fires at exact due time" d at)
    fired;
  check_int "all fired" 0 (Sim.Wheel.live_timers wheel)

let test_wheel_cancel () =
  let loop = Sim.Loop.create () in
  let wheel = Sim.Wheel.create ~loop () in
  let fired = ref 0 in
  let a = Sim.Wheel.arm wheel ~at:100 (fun () -> incr fired) in
  let _b = Sim.Wheel.arm wheel ~at:200 (fun () -> incr fired) in
  Sim.Wheel.cancel a;
  Sim.Wheel.cancel a;
  check_int "live count after cancel" 1 (Sim.Wheel.live_timers wheel);
  Sim.Loop.run loop;
  check_int "only the live timer fired" 1 !fired

let test_wheel_idle_quiesces () =
  let loop = Sim.Loop.create () in
  let wheel = Sim.Wheel.create ~loop () in
  Alcotest.(check (option int)) "no wake when empty" None
    (Sim.Wheel.next_wake wheel);
  let a = Sim.Wheel.arm wheel ~at:5_000 (fun () -> ()) in
  check_bool "wake pending while armed" true
    (Sim.Wheel.next_wake wheel <> None);
  Sim.Wheel.cancel a;
  (* The lazily-cancelled timer costs at most one spurious wake, then
     the wheel schedules nothing more: the loop drains. *)
  Sim.Loop.run loop;
  Alcotest.(check (option int)) "quiescent after drain" None
    (Sim.Wheel.next_wake wheel);
  check_int "no live timers" 0 (Sim.Wheel.live_timers wheel)

let test_wheel_rearm_from_callback () =
  let loop = Sim.Loop.create () in
  let wheel = Sim.Wheel.create ~loop () in
  let times = ref [] in
  let rec tick n =
    times := Sim.Loop.now loop :: !times;
    if n > 0 then
      ignore
        (Sim.Wheel.arm wheel
           ~at:(Sim.Loop.now loop + 250)
           (fun () -> tick (n - 1)))
  in
  ignore (Sim.Wheel.arm wheel ~at:100 (fun () -> tick 3));
  Sim.Loop.run loop;
  Alcotest.(check (list int))
    "chained re-arms" [ 100; 350; 600; 850 ] (List.rev !times)

let test_wheel_cascade_far_future () =
  let loop = Sim.Loop.create () in
  let wheel = Sim.Wheel.create ~loop () in
  (* Spans several wheel levels: 1ns, ~4us, ~1ms, ~0.3s. *)
  let due = [ 1; 4_096; 1_048_577; 300_000_000 ] in
  let out = ref [] in
  List.iter
    (fun d ->
      ignore
        (Sim.Wheel.arm wheel ~at:d (fun () ->
             out := Sim.Loop.now loop :: !out)))
    (List.rev due);
  Sim.Loop.run loop;
  Alcotest.(check (list int)) "cascades land on time" due (List.rev !out)

(* For the same salt, same-instant wheel timers must fire in exactly the
   order the reference heap pops same-key entries. *)
let wheel_prop_matches_heap =
  QCheck.Test.make ~name:"wheel matches salted heap order and times" ~count:100
    QCheck.(pair small_int (list (pair (int_bound 5_000) unit)))
    (fun (salt, pts) ->
      let dues = List.map (fun (d, ()) -> d + 1) pts in
      let heap = Sim.Heap.create ~salt () in
      List.iteri (fun i d -> Sim.Heap.add heap ~key:d (d, i)) dues;
      let expect =
        let rec drain acc =
          match Sim.Heap.pop heap with
          | Some v -> drain (v :: acc)
          | None -> List.rev acc
        in
        drain []
      in
      let loop = Sim.Loop.create ~tie_salt:salt () in
      let wheel = Sim.Wheel.create ~loop () in
      let got = ref [] in
      List.iteri
        (fun i d ->
          ignore
            (Sim.Wheel.arm wheel ~at:d (fun () ->
                 if Sim.Loop.now loop <> d then
                   failwith "wheel fired at wrong time";
                 got := (d, i) :: !got)))
        dues;
      Sim.Loop.run loop;
      List.rev !got = expect)

(* -- Time -------------------------------------------------------------- *)

let test_time_units () =
  check_int "us" 1_000 (Sim.Time.us 1);
  check_int "ms" 1_000_000 (Sim.Time.ms 1);
  check_int "sec" 1_000_000_000 (Sim.Time.sec 1);
  check_int "of_float_us" 1_500 (Sim.Time.of_float_us 1.5);
  Alcotest.(check (float 1e-9)) "to_float_us" 2.5 (Sim.Time.to_float_us 2_500);
  check_int "scale" 500 (Sim.Time.scale 1_000 0.5)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "min key" `Quick test_heap_min_key;
          QCheck_alcotest.to_alcotest heap_prop_sorted;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        ] );
      ( "loop",
        [
          Alcotest.test_case "ordering" `Quick test_loop_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_loop_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_loop_cancel;
          Alcotest.test_case "run until" `Quick test_loop_until;
          Alcotest.test_case "every" `Quick test_loop_every;
          Alcotest.test_case "nested" `Quick test_loop_nested_schedule;
          Alcotest.test_case "past event" `Quick test_loop_past_event_runs_now;
        ] );
      ( "trace",
        [
          Alcotest.test_case "filtered emit is lazy" `Quick
            test_trace_filtered_is_lazy;
          Alcotest.test_case "capture wraparound" `Quick
            test_trace_capture_wraparound;
          Alcotest.test_case "capture component filter" `Quick
            test_trace_capture_component_filter;
          Alcotest.test_case "capture on/off" `Quick test_trace_capture_on_off;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "ring wraparound" `Quick test_span_ring_wraparound;
          Alcotest.test_case "ring sustained overflow" `Quick
            test_span_ring_sustained_overflow;
          Alcotest.test_case "chrome export" `Quick test_span_chrome_export;
          Alcotest.test_case "on/off transitions" `Quick
            test_span_on_off_transitions;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "fires in order" `Quick test_wheel_fires_in_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "idle quiesces" `Quick test_wheel_idle_quiesces;
          Alcotest.test_case "re-arm from callback" `Quick
            test_wheel_rearm_from_callback;
          Alcotest.test_case "cascades far future" `Quick
            test_wheel_cascade_far_future;
          QCheck_alcotest.to_alcotest wheel_prop_matches_heap;
        ] );
      ("time", [ Alcotest.test_case "units" `Quick test_time_units ]);
    ]
