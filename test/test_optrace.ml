(* Tests for cross-host op latency attribution (Sim.Optrace): stage
   charging and the conservation property, bounded drop-oldest storage
   for both in-flight and completed records, deterministic slow-op
   export, Chrome flow events linking tx and rx sides, and the Express
   debug snapshot's per-conn stage counters / oldest-op age. *)

module T = Sim.Time
module OT = Sim.Optrace
module PE = Pony.Express

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let with_ot f =
  Fun.protect f ~finally:(fun () ->
      OT.set_capture None;
      OT.set_stage_sink None;
      Sim.Span.set_capture None)

let key ?(op = 1) () =
  {
    OT.k_origin = 0;
    k_origin_client = 0;
    k_peer = 1;
    k_session = 7;
    k_origin_init = true;
    k_op = op;
  }

(* -- Capture off: everything is a no-op ---------------------------------- *)

let test_disabled_noop () =
  with_ot (fun () ->
      let loop = Sim.Loop.create () in
      check_bool "off by default" false (OT.enabled ());
      OT.start loop (key ()) ~kind:"send" ~bytes:64;
      OT.stamp loop (key ()) OT.First_tx;
      OT.finish loop (key ()) ~host:0 ~status:"ok";
      check_int "nothing in flight" 0 (OT.in_flight ());
      check_int "nothing completed" 0 (List.length (OT.completed ()));
      check_bool "no violation" true (OT.conservation_error () = None))

(* -- Stage charging telescopes to end-to-end latency --------------------- *)

let test_stage_charging_telescopes () =
  with_ot (fun () ->
      OT.set_capture (Some 16);
      let loop = Sim.Loop.create () in
      let k = key () in
      let sink_total = ref 0 in
      OT.set_stage_sink (Some (fun _si d -> sink_total := !sink_total + d));
      ignore
        (Sim.Loop.at loop 0 (fun () -> OT.start loop k ~kind:"send" ~bytes:64));
      ignore (Sim.Loop.at loop (T.us 2) (fun () -> OT.stamp loop k OT.Dequeued));
      (* Stamps are idempotent per stage: a later re-stamp must neither
         re-charge nor advance the cursor. *)
      ignore (Sim.Loop.at loop (T.us 3) (fun () -> OT.stamp loop k OT.Dequeued));
      ignore (Sim.Loop.at loop (T.us 5) (fun () -> OT.stamp loop k OT.First_tx));
      ignore
        (Sim.Loop.at loop (T.us 9) (fun () ->
             OT.finish loop k ~host:1 ~status:"ok"));
      Sim.Loop.run loop;
      check_int "nothing left in flight" 0 (OT.in_flight ());
      match OT.completed () with
      | [ r ] ->
          check_int "dequeued charged 2us" (T.us 2)
            r.OT.durs.(OT.stage_index OT.Dequeued);
          (* The ignored re-stamp's interval rolls into the next stage. *)
          check_int "first_tx charged 3us" (T.us 3)
            r.OT.durs.(OT.stage_index OT.First_tx);
          check_int "completion charged 4us" (T.us 4)
            r.OT.durs.(OT.stage_index OT.Completed);
          check_int "durations telescope to end-to-end"
            (r.OT.r_end - r.OT.r_start)
            (Array.fold_left ( + ) 0 r.OT.durs);
          check_int "stage sink saw every charge" (r.OT.r_end - r.OT.r_start)
            !sink_total;
          check_str "status recorded" "ok" r.OT.r_status;
          check_bool "conserved" true (OT.conservation_error () = None)
      | l -> Alcotest.failf "expected 1 completed record, got %d" (List.length l))

(* -- An uncharged stamp is exactly what conservation catches ------------- *)

let test_uncharged_stamp_breaks_conservation () =
  with_ot (fun () ->
      OT.set_capture (Some 16);
      let loop = Sim.Loop.create () in
      let k = key () in
      ignore
        (Sim.Loop.at loop 0 (fun () -> OT.start loop k ~kind:"send" ~bytes:64));
      ignore
        (Sim.Loop.at loop (T.us 2) (fun () ->
             OT.stamp loop ~charge:false k OT.Dequeued));
      ignore
        (Sim.Loop.at loop (T.us 4) (fun () ->
             OT.finish loop k ~host:0 ~status:"ok"));
      Sim.Loop.run loop;
      (match OT.conservation_error () with
      | Some msg ->
          check_bool "violation names the op" true (contains_sub msg "#1")
      | None -> Alcotest.fail "uncharged stamp went unnoticed");
      OT.clear ();
      check_bool "clear resets the sticky violation" true
        (OT.conservation_error () = None))

(* -- Bounded storage: drop-oldest on both sides -------------------------- *)

let test_completed_ring_drop_oldest () =
  with_ot (fun () ->
      OT.set_capture (Some 2);
      let loop = Sim.Loop.create () in
      for op = 1 to 5 do
        ignore
          (Sim.Loop.at loop (T.us op) (fun () ->
               let k = key ~op () in
               OT.start loop k ~kind:"send" ~bytes:8;
               OT.finish loop k ~host:0 ~status:"ok"))
      done;
      Sim.Loop.run loop;
      let ops = List.map (fun r -> r.OT.r_key.OT.k_op) (OT.completed ()) in
      Alcotest.(check (list int)) "ring keeps the newest two" [ 4; 5 ] ops;
      check_int "three dropped" 3 (OT.dropped ()))

let test_in_flight_evicts_oldest () =
  with_ot (fun () ->
      OT.set_capture (Some 2);
      let loop = Sim.Loop.create () in
      for op = 1 to 5 do
        ignore
          (Sim.Loop.at loop (T.us op) (fun () ->
               OT.start loop (key ~op ()) ~kind:"send" ~bytes:8))
      done;
      Sim.Loop.run loop;
      check_int "capped in flight" 2 (OT.in_flight ());
      check_int "three evicted" 3 (OT.dropped ());
      let ops = ref [] in
      OT.iter_in_flight (fun r -> ops := r.OT.r_key.OT.k_op :: !ops);
      Alcotest.(check (list int))
        "newest survive, start order" [ 4; 5 ] (List.rev !ops))

(* -- Slow-op export: sorted, shaped, byte-stable ------------------------- *)

let test_slow_ops_json_shape () =
  with_ot (fun () ->
      OT.set_capture (Some 16);
      let loop = Sim.Loop.create () in
      List.iter
        (fun (op, dur_us) ->
          ignore
            (Sim.Loop.at loop (T.us (op * 100)) (fun () ->
                 let k = key ~op () in
                 OT.start loop k ~kind:"send" ~bytes:64;
                 ignore
                   (Sim.Loop.at loop
                      (T.us ((op * 100) + dur_us))
                      (fun () -> OT.finish loop k ~host:1 ~status:"ok")))))
        [ (1, 5); (2, 50); (3, 20) ];
      Sim.Loop.run loop;
      let json = OT.slow_ops_json ~k:2 () in
      check_bool "header counts" true (contains_sub json "\"completed\":3");
      check_bool "slowest op first" true
        (contains_sub json "#2\",");
      check_bool "k limits the list" false (contains_sub json "#1\",");
      check_bool "stage timeline present" true
        (contains_sub json "{\"stage\":\"submitted\"");
      check_bool "latency recorded" true
        (contains_sub json (Printf.sprintf "\"latency_ns\":%d" (T.us 50))))

let test_slow_ops_deterministic_across_runs () =
  with_ot (fun () ->
      OT.set_capture (Some 4096);
      let module C = Workloads.Chaos in
      let run () =
        OT.clear ();
        ignore (C.run { C.default_config with C.ops_per_client = 30 });
        OT.slow_ops_json ~k:16 ()
      in
      let a = run () in
      let b = run () in
      check_str "same-seed export is byte-identical" a b;
      check_bool "export is non-trivial" true (contains_sub a "\"stages\"");
      check_bool "runs conserved attribution" true
        (OT.conservation_error () = None))

(* -- Chrome flow events: tx and rx sides linked by one arrow ------------- *)

let test_flow_events_in_trace () =
  with_ot (fun () ->
      OT.set_capture (Some 16);
      Sim.Span.set_capture (Some 64);
      let loop = Sim.Loop.create () in
      let k = key () in
      ignore
        (Sim.Loop.at loop 0 (fun () -> OT.start loop k ~kind:"send" ~bytes:64));
      ignore (Sim.Loop.at loop (T.us 1) (fun () -> OT.stamp loop k OT.First_tx));
      ignore
        (Sim.Loop.at loop (T.us 8) (fun () ->
             OT.finish loop k ~host:1 ~status:"ok"));
      Sim.Loop.run loop;
      let json = Sim.Span.to_chrome_json () in
      check_bool "flow start on origin track" true
        (contains_sub json "\"ph\":\"s\"");
      check_bool "flow finish with enclosing binding" true
        (contains_sub json "\"ph\":\"f\",\"bp\":\"e\"");
      check_bool "origin op track" true (contains_sub json "host0 ops");
      check_bool "destination op track" true (contains_sub json "host1 ops");
      check_bool "sides share the op name" true
        (contains_sub json "0.0->1 s7i #1"))

(* -- Express integration: per-conn stage counters and oldest-op age ------ *)

let mk_cluster ?keepalive () =
  let loop = Sim.Loop.create ~seed:7 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let hs =
    List.init 2 (fun addr ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
          ~mode:(Engine.Dedicating { cores = 2 })
          ?keepalive ())
  in
  (loop, hs)

let sleep_until ctx t =
  while Cpu.Thread.now ctx < t do
    Cpu.Thread.sleep ctx (T.sub t (Cpu.Thread.now ctx))
  done

let test_snapshot_stage_counters () =
  with_ot (fun () ->
      OT.set_capture (Some 1024);
      let keepalive = { PE.ka_interval = T.us 100; ka_miss_budget = 3 } in
      let loop, hosts = mk_cluster ~keepalive () in
      let ha = List.hd hosts and hb = List.nth hosts 1 in
      ignore
        (Snap.Host.spawn_app hb ~name:"b" ~spin:true (fun ctx ->
             let c = PE.create_client ctx hb.Snap.Host.pony ~name:"b" () in
             ignore (PE.await_message ctx c)));
      let mid_snap = ref "" in
      ignore
        (Snap.Host.spawn_app ha ~name:"a" ~spin:true (fun ctx ->
             let c = PE.create_client ctx ha.Snap.Host.pony ~name:"a" () in
             sleep_until ctx (T.us 200);
             let cn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"b" in
             (* One op that completes cleanly... *)
             ignore (PE.send_message ctx cn ~bytes:256 ());
             ignore (PE.await_completion ctx c);
             (* ...and one stranded by a peer crash, so an in-flight
                record exists when the mid-run snapshot is taken. *)
             sleep_until ctx (T.us 1100);
             ignore (PE.send_message ctx cn ~bytes:256 ());
             sleep_until ctx (T.ms 3)));
      ignore
        (Sim.Loop.at loop (T.ms 1) (fun () -> PE.crash_host hb.Snap.Host.pony));
      ignore
        (Sim.Loop.at loop (T.us 1200) (fun () ->
             mid_snap := PE.debug_snapshot ha.Snap.Host.pony));
      Sim.Loop.run ~until:(T.ms 4) loop;
      check_bool "snapshot shows stage counters" true
        (contains_sub !mid_snap "stg=");
      (* Two submits, first one delivered+completed on the peer; the
         counter vector starts submitted/admitted/dequeued. *)
      check_bool "both submits counted" true (contains_sub !mid_snap "stg=2/2/2");
      check_bool "stranded op ages" true (contains_sub !mid_snap "oldest=");
      (* The final snapshot has no in-flight op left on the conn (the
         keepalive declared the peer dead and failed it), so the age
         field disappears again. *)
      let final = PE.debug_snapshot ha.Snap.Host.pony in
      check_bool "resolved ops stop aging" false (contains_sub final "oldest="))

let () =
  Alcotest.run "optrace"
    [
      ( "core",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "stage charging telescopes" `Quick
            test_stage_charging_telescopes;
          Alcotest.test_case "uncharged stamp breaks conservation" `Quick
            test_uncharged_stamp_breaks_conservation;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "completed ring drop-oldest" `Quick
            test_completed_ring_drop_oldest;
          Alcotest.test_case "in-flight evicts oldest" `Quick
            test_in_flight_evicts_oldest;
        ] );
      ( "export",
        [
          Alcotest.test_case "slow-op json shape" `Quick
            test_slow_ops_json_shape;
          Alcotest.test_case "slow-op json deterministic" `Quick
            test_slow_ops_deterministic_across_runs;
          Alcotest.test_case "chrome flow events" `Quick
            test_flow_events_in_trace;
        ] );
      ( "express",
        [
          Alcotest.test_case "snapshot stage counters + oldest age" `Quick
            test_snapshot_stage_counters;
        ] );
    ]
