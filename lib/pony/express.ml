module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet
module Sched = Cpu.Sched

let cmd_queue_slots = 4096
let comp_queue_slots = 4096
let initial_credit_bytes = 4 lsl 20
let rx_batch = 16
let cmd_batch = 16
let oob_setup_latency = Time.us 30

type completion = {
  comp_op : int;
  status : Wire.status;
  bytes : int;
  value : int64 option;
  issued_at : Time.t;
  completed_at : Time.t;
}

(* Connection lifecycle (§4.3 availability): [Established] carries
   traffic; [Draining] is a close in progress (credit-waiting ops still
   drain, new sends are refused); [Dead] means the peer is gone
   (keepalive miss budget, Conn_reset, peer restart or host crash) and
   every stranded op has been failed [Peer_dead]; [Closed] is a
   completed local close.  Dead/Closed conns stay in the table as
   tombstones so late packets answer with a reset instead of
   resurrecting state. *)
type conn_state = Established | Draining | Dead | Closed

let conn_state_to_string = function
  | Established -> "established"
  | Draining -> "draining"
  | Dead -> "dead"
  | Closed -> "closed"

(* Opt-in dead-peer detection: probe a conn silent for [ka_interval];
   declare the peer dead after [ka_interval * (ka_miss_budget + 1)] of
   silence.  Arming is quiesce-aware: a conn only keeps a wheel timer
   while it has a reason to watch the peer — recent traffic, parked or
   outstanding ops, or unacked flow state — so an idle host with
   keepalives configured still drains to zero pending events and
   [Pool.assert_quiesced] workloads need not turn them off.  Detection
   stays bounded: any stranded op holds interest, so probing continues
   until the death budget declares the peer dead. *)
type keepalive = { ka_interval : Time.t; ka_miss_budget : int }

type command =
  | C_send of {
      cmd_conn : conn;
      op_id : int;
      stream : int;
      bytes : int;
      issued : Time.t;
      deadline : Time.t option;
    }
  | C_one_sided of {
      cmd_conn : conn;
      op_id : int;
      op : Wire.one_sided;
      issued : Time.t;
      deadline : Time.t option;
    }
  | C_close of { cmd_conn : conn }

and incoming = {
  msg_conn : conn;
  msg_op : int;
  stream : int;
  msg_bytes : int;
}

and client = {
  cid : int;
  cname : string;
  c_host : t;
  c_eng : eng;
  cmd_q : command Squeue.Spsc.t;
  comp_q : completion Squeue.Spsc.t;
  msg_q : incoming Squeue.Spsc.t;
  regions : (int, Memory.Region.t) Hashtbl.t;
  (* One-sided op id -> (issue time, conn key): the conn attribution is
     what lets a dead peer's stranded ops be found and failed. *)
  outstanding : (int, Time.t * Wire.conn_key) Hashtbl.t;
  c_owner : string;  (* admission / pool accounting name *)
  mutable c_dead : bool;  (* the owning host crashed while we existed *)
  adm : Overload.Admission.t;
  charges : (int, Memory.Pool.alloc option) Hashtbl.t;
      (* op id -> admission charge, held until the completion fires *)
  c_shed : Stats.Counter.t;
  shed_base : int;
  c_expired : Stats.Counter.t;
  expired_base : int;
  mutable app_task : Sched.task option;
  mutable on_delivery : (unit -> unit) option;
      (* Engine-side consumers (the guest mux) register a hook instead
         of an app task; called on every completion/message push. *)
  mutable next_op : int;
  mutable n_comps : int;
  mutable n_msgs : int;
  mutable rx_bytes : int;
}

and conn = {
  ckey : Wire.conn_key;
  we_are_initiator : bool;
  local : client;
  remote_host : Packet.addr;
  remote_client : int;
  c_flow : Flow.t;
  mutable credit : int;
  waiting : command Queue.t;
  mutable state : conn_state;
  mutable last_heard : Time.t;  (* any item for this conn counts as life *)
  mutable ka_sent_at : Time.t;  (* last keepalive probe we enqueued *)
  (* Intrusive bookkeeping that keeps the datapath off full-table
     scans: live one-sided ops and reassembly entries attributed to
     this conn (so teardown only walks the client/engine tables when
     there is something to find), and per-conn wheel timers for the
     waiting-head deadline and the keepalive probe cycle. *)
  mutable n_outstanding : int;
  mutable n_assembly : int;
  mutable dl_timer : Sim.Wheel.timer option;
  mutable dl_at : Time.t;
  mutable dl_queued : bool;
  mutable ka_timer : Sim.Wheel.timer option;
  mutable ka_queued : bool;
  mutable ka_base : Time.t;  (* watch epoch: silence measured from here *)
  (* Latency-attribution stage transitions observed on this conn (both
     the submit side of local ops and the receive side of remote ones),
     indexed by [Sim.Optrace.stage_index].  Only advanced while Optrace
     capture is on. *)
  stage_counts : int array;
}

and asm = {
  mutable got : int;
  total : int;
  mutable first_value : int64 option;
  mutable asm_status : Wire.status;
  mutable asm_charge : Memory.Pool.alloc option;
      (* Op memory reserved for the reassembly, charged to the owning
         engine.  Best-effort: [None] when the pool could not cover it
         (accounting degrades before correctness does). *)
}

and eng = {
  eid : int;
  e_host : t;
  core : Engine.t;
  rxq : int;
  mutable eclients : client list;
  flows : (Wire.flow_key, Flow.t) Hashtbl.t;
  mutable flow_list : Flow.t list;
  (* Flows as a flat array for the per-pass datapath folds; rebuilt only
     when the flow set changes (rare), never per pass. *)
  mutable flow_arr : Flow.t array;
  (* Conn storage is a generation-tagged flat arena; the hashtables map
     wire keys to arena handles for lookup only.  No datapath walks
     them — sorted iteration survives solely in cold paths (snapshots,
     peer teardown, checker invariants). *)
  conn_arena : conn Memory.Arena.t;
  conns : (Wire.conn_key * bool, Memory.Arena.handle) Hashtbl.t;
  (* O(1) supersede on connect: endpoints (init host, init client,
     target host, target client) -> the conn currently installed for
     them, matching [Wire.conn_same_endpoints]'s directional compare. *)
  by_endpoints : (Packet.addr * int * Packet.addr * int, Memory.Arena.handle) Hashtbl.t;
  (* Reassembly of messages and one-sided responses, keyed by
     (conn, from_initiator, op id). *)
  assembly : (Wire.conn_key * bool * int, asm) Hashtbl.t;
  (* Per-engine timing wheel: per-conn deadline and keepalive timers
     arm/cancel O(1) here instead of rescanning the conn table.  Fired
     timers enqueue their conn on a due queue and poke the engine; the
     engine pass drains the queues. *)
  wheel : Sim.Wheel.t;
  deadline_due : conn Queue.t;
  ka_due : conn Queue.t;
  mutable timer : Loop.handle option;
  mutable served_one_sided : int;
  mutable tx_rr : int;
  mutable last_epoch : int;  (* engine restart detection (§4.3) *)
  pressure : Overload.Pressure.t;
}

and t = {
  dir : dir;
  ctl : Control.t;
  mach : Sched.machine;
  nic : Nic.t;
  group : Engine.group;
  lp : Loop.t;
  cost : Sim.Costs.t;
  use_ce : bool;
  ce : Nic.Copy_engine.ce option;
  versions : int list;  (* wire versions this release can speak (§3.1) *)
  mutable engs : eng list;  (* ascending eid *)
  mutable next_cid : int;
  (* Conn-session allocator: every connect stamps a fresh session into
     the conn key, so a re-dial between the same client pair can never
     alias items still in flight from a dead predecessor.  Unique
     within this host; [initiator_host] in the key makes it global. *)
  mutable next_session : int;
  (* Clients live in a flat arena (ascending-index iteration is cid
     order, so folds are deterministic without sorting); the table maps
     cid -> handle for lookup. *)
  clients_arena : client Memory.Arena.t;
  clients_tbl : (int, Memory.Arena.handle) Hashtbl.t;
  gen : Packet.Id_gen.t;
  mutable rr_assign : int;
  (* Registry counters are cumulative across host instances sharing an
     address (bench sections re-create hosts); the [_base] snapshot
     taken at creation keeps the per-instance accessors exact. *)
  c_corrupt : Stats.Counter.t;
  corrupt_base : int;
  c_resync : Stats.Counter.t;
  resync_base : int;
  (* Overload protection (§3.3): one op-memory pool per host; admission
     charges, receive-side reassembly and packet ingest all draw from
     it, so saturation surfaces as [Rejected]/drops instead of
     unbounded growth. *)
  op_pool : Memory.Pool.t;
  c_busy : Stats.Counter.t;
  busy_base : int;
  c_pool_drop : Stats.Counter.t;
  pool_drop_base : int;
  (* Connection lifecycle / peer failure (§4.3). *)
  mutable incarnation : int;  (* bumped on every restart after a crash *)
  mutable alive : bool;
  ka : keepalive option;
  (* Latest incarnation seen per peer host: packets with an older stamp
     are pre-crash stragglers and are dropped; a newer stamp proves the
     peer restarted, so everything we hold about it is torn down. *)
  peer_incs : (Packet.addr, int) Hashtbl.t;
  c_conn_est : Stats.Counter.t;
  conn_est_base : int;
  c_conn_closed : Stats.Counter.t;
  conn_closed_base : int;
  c_conn_reset : Stats.Counter.t;  (* resets sent *)
  conn_reset_base : int;
  c_peer_death : Stats.Counter.t;  (* conns declared dead *)
  peer_death_base : int;
  c_peer_dead_op : Stats.Counter.t;  (* ops failed Peer_dead *)
  peer_dead_op_base : int;
  c_stale_drop : Stats.Counter.t;  (* stale-incarnation packets dropped *)
  stale_drop_base : int;
  c_peer_restart : Stats.Counter.t;  (* peer restarts detected *)
  peer_restart_base : int;
  c_ka_probe : Stats.Counter.t;  (* keepalive probes enqueued *)
  ka_probe_base : int;
}

and dir = { hosts : (Packet.addr, t) Hashtbl.t }

module Retry = Overload.Retry

module Directory = struct
  type nonrec dir = dir

  let create () = { hosts = Hashtbl.create 16 }
end

type Control.message += Pony_setup of string | Pony_ready

let machine t = t.mach
let addr t = Nic.addr t.nic
let num_engines t = List.length t.engs
let engine_handle t i = (List.nth t.engs i).core
let client_id c = c.cid
let client_name c = c.cname
let client_engine c = c.c_eng.core
let conn_peer c = (c.remote_host, c.remote_client)
let completions_delivered c = c.n_comps
let messages_delivered c = c.n_msgs
let bytes_received c = c.rx_bytes

let flow_versions t =
  List.concat_map
    (fun e -> List.map (fun f -> (Flow.key f, Flow.version f)) e.flow_list)
    t.engs

let corrupt_dropped t = Stats.Counter.value t.c_corrupt - t.corrupt_base
let flow_resyncs t = Stats.Counter.value t.c_resync - t.resync_base
let busy_nacks t = Stats.Counter.value t.c_busy - t.busy_base
let rx_pool_drops t = Stats.Counter.value t.c_pool_drop - t.pool_drop_base
let op_pool t = t.op_pool
let incarnation t = t.incarnation
let host_alive t = t.alive
let conn_state c = c.state
let conn_last_heard c = c.last_heard
let client_alive c = (not c.c_dead) && c.c_host.alive
let conns_established t = Stats.Counter.value t.c_conn_est - t.conn_est_base
let conns_closed t = Stats.Counter.value t.c_conn_closed - t.conn_closed_base
let conn_resets_sent t = Stats.Counter.value t.c_conn_reset - t.conn_reset_base
let peer_deaths t = Stats.Counter.value t.c_peer_death - t.peer_death_base
let peer_dead_ops t = Stats.Counter.value t.c_peer_dead_op - t.peer_dead_op_base
let stale_drops t = Stats.Counter.value t.c_stale_drop - t.stale_drop_base

let peer_restarts_detected t =
  Stats.Counter.value t.c_peer_restart - t.peer_restart_base

let keepalive_probes t = Stats.Counter.value t.c_ka_probe - t.ka_probe_base

let conn_is_dead c =
  match c.state with Dead | Closed -> true | Established | Draining -> false

(* Hashtbl iteration order depends on the process hash seed
   (OCAMLRUNPARAM=R); every datapath or accounting scan over a table
   goes through a sorted key list so runs are bit-identical under
   randomized hashing.  [Hashtbl.fold] alone is only safe for fully
   commutative reductions — and even those are sorted here so the
   perturbation sweep can hold one rule: no raw table iteration in the
   datapath. *)
let sorted_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Arena index order is cid order (allocation order, slots never reused
   until a crash clears the arena), so this fold is deterministic under
   randomized hashing without any sort. *)
let fold_clients t f init =
  Memory.Arena.fold t.clients_arena (fun acc _ c -> f acc c) init

let find_client t cid =
  match Hashtbl.find_opt t.clients_tbl cid with
  | None -> None
  | Some h -> Memory.Arena.get t.clients_arena h
let client_ops_shed c = Stats.Counter.value c.c_shed - c.shed_base
let client_ops_expired c = Stats.Counter.value c.c_expired - c.expired_base
let client_admission c = c.adm
let ops_shed t = fold_clients t (fun acc c -> acc + client_ops_shed c) 0
let ops_expired t = fold_clients t (fun acc c -> acc + client_ops_expired c) 0

let quota_rejected t =
  fold_clients t (fun acc c -> acc + Overload.Admission.rejected c.adm) 0

let pressure_level t i = Overload.Pressure.level (List.nth t.engs i).pressure

let pressure_transitions t =
  List.fold_left
    (fun acc e -> acc + Overload.Pressure.transitions e.pressure)
    0 t.engs

let zero_window_probes t =
  List.fold_left
    (fun acc e ->
      List.fold_left (fun a f -> a + Flow.zero_window_probes f) acc e.flow_list)
    0 t.engs

let flow_stats t =
  List.concat_map
    (fun e ->
      List.map (fun f -> (Flow.key f, Flow.delivered f, Flow.retransmits f)) e.flow_list)
    t.engs

(* -- Latency attribution (Sim.Optrace) ----------------------------------- *)

(* Key of an op submitted by [conn]'s local client. *)
let ot_key conn op_id =
  {
    Sim.Optrace.k_origin = addr conn.local.c_host;
    k_origin_client = conn.local.cid;
    k_peer = conn.remote_host;
    k_session = conn.ckey.Wire.session;
    k_origin_init = conn.we_are_initiator;
    k_op = op_id;
  }

(* Key of an op that originated at [conn]'s remote side (receive path). *)
let ot_rkey conn op_id =
  {
    Sim.Optrace.k_origin = conn.remote_host;
    k_origin_client = conn.remote_client;
    k_peer = addr conn.local.c_host;
    k_session = conn.ckey.Wire.session;
    k_origin_init = not conn.we_are_initiator;
    k_op = op_id;
  }

let ot_count conn stage =
  let i = Sim.Optrace.stage_index stage in
  conn.stage_counts.(i) <- conn.stage_counts.(i) + 1

let ot_start conn op_id ~kind ~bytes =
  if Sim.Optrace.enabled () then begin
    ot_count conn Sim.Optrace.Submitted;
    Sim.Optrace.start conn.local.c_host.lp (ot_key conn op_id) ~kind ~bytes
  end

let ot_stamp conn key stage =
  if Sim.Optrace.enabled () then begin
    ot_count conn stage;
    Sim.Optrace.stamp conn.local.c_host.lp key stage
  end

let ot_dequeued conn op_id =
  if Sim.Optrace.enabled () then begin
    ot_count conn Sim.Optrace.Dequeued;
    (* Sabotage point: with "skip_op_attribution" armed the dequeue
       charge is dropped while the cursor still advances, so completed
       ops under-account and the conservation invariant must fire
       (never armed outside the sweep's non-vacuity run). *)
    Sim.Optrace.stamp conn.local.c_host.lp
      ~charge:(not (Check.Invariant.sabotage "skip_op_attribution"))
      (ot_key conn op_id) Sim.Optrace.Dequeued
  end

let ot_finish conn key ~status =
  if Sim.Optrace.enabled () then begin
    ot_count conn Sim.Optrace.Completed;
    Sim.Optrace.finish conn.local.c_host.lp key
      ~host:(addr conn.local.c_host)
      ~status:(Wire.status_to_string status)
  end

(* Age of the oldest attribution record still open on [conn]'s submit
   side, for [debug_snapshot]. *)
let ot_oldest_age conn ~now =
  let best = ref None in
  if Sim.Optrace.enabled () then
    Sim.Optrace.iter_in_flight (fun r ->
        let k = r.Sim.Optrace.r_key in
        if
          k.Sim.Optrace.k_origin = addr conn.local.c_host
          && k.Sim.Optrace.k_origin_client = conn.local.cid
          && k.Sim.Optrace.k_session = conn.ckey.Wire.session
          && k.Sim.Optrace.k_origin_init = conn.we_are_initiator
        then
          match !best with
          | None -> best := Some r.Sim.Optrace.r_start
          | Some b ->
              if r.Sim.Optrace.r_start < b then
                best := Some r.Sim.Optrace.r_start);
  Option.map (fun s -> Time.sub now s) !best

let debug_snapshot t =
  let now = Loop.now t.lp in
  Printf.sprintf "inc=%d%s " t.incarnation (if t.alive then "" else " down")
  ^ String.concat " "
      (List.map
         (fun e ->
           Printf.sprintf "eng%d[ring=%d asm=%d %s%s]" e.eid
             (Squeue.Spsc.length (Nic.rx_ring t.nic ~queue:e.rxq))
             (Hashtbl.length e.assembly)
             (String.concat ","
                (List.map
                   (fun f ->
                     Printf.sprintf "fl(pend=%d,fly=%d,rate=%.0f)" (Flow.pending f)
                       (Flow.in_flight f)
                       (Timely.rate_gbps (Flow.cc f)))
                   e.flow_list))
             (String.concat ""
                (List.map
                   (fun ((ckey, we_init), c) ->
                     Printf.sprintf " cn(%d.%d->%d.%d%s %s heard=%dns stg=%s%s)"
                       ckey.Wire.initiator_host ckey.Wire.initiator_client
                       ckey.Wire.target_host ckey.Wire.target_client
                       (if we_init then "/i" else "/t")
                       (conn_state_to_string c.state)
                       (Time.sub now c.last_heard)
                       (String.concat "/"
                          (Array.to_list (Array.map string_of_int c.stage_counts)))
                       (match ot_oldest_age c ~now with
                       | Some age -> Printf.sprintf " oldest=%dns" age
                       | None -> ""))
                   (Memory.Arena.fold e.conn_arena
                      (fun acc _ c -> ((c.ckey, c.we_are_initiator), c) :: acc)
                      []
                   |> List.sort (fun (a, _) (b, _) -> compare a b)))))
         t.engs)
  ^
  match t.ce with
  | Some ce ->
      Printf.sprintf " ce[fly=%d done=%d]" (Nic.Copy_engine.in_flight ce)
        (Nic.Copy_engine.completed ce)
  | None -> ""

let one_sided_served t =
  List.fold_left (fun acc e -> acc + e.served_one_sided) 0 t.engs

(* Maximum upper-layer payload bytes per packet. *)
let max_chunk t = Nic.mtu t.nic - Wire.header_bytes - 24

(* -- Flow mapper -------------------------------------------------------- *)

(* Flows never need to exceed the host link rate; Timely starts at
   half and probes up. *)
let flow_max_rate t = Nic.link_gbps t.nic

(* Receiver back-pressure (§3.3): the window this engine advertises on
   every outgoing packet.  Nominal pressure leaves the full flight cap
   (no behavioural change from the pre-overload transport); Pressured
   shrinks it toward what the rx ring can absorb; Saturated quenches
   senders entirely — the zero-window probe reopens them. *)
let advertised_window eng =
  match Overload.Pressure.level eng.pressure with
  | Overload.Pressure.Nominal -> Flow.max_flight
  | Overload.Pressure.Pressured ->
      let ring = Nic.rx_ring eng.e_host.nic ~queue:eng.rxq in
      let free = Squeue.Spsc.capacity ring - Squeue.Spsc.length ring in
      max 1 (min (Flow.max_flight / 8) (free / 4))
  | Overload.Pressure.Saturated -> 0

let get_flow eng key =
  match Hashtbl.find_opt eng.flows key with
  | Some f -> f
  | None ->
      (* Wire-version negotiation with the peer release: pick the least
         common denominator of the two hosts' supported sets (§3.1). *)
      let local = eng.e_host.versions in
      let remote =
        match Hashtbl.find_opt eng.e_host.dir.hosts key.Wire.dst_host with
        | Some peer -> peer.versions
        | None -> Wire.supported_versions
      in
      let version =
        match Wire.negotiate local remote with
        | Some v -> v
        | None -> failwith "Pony: no common wire protocol version"
      in
      let f =
        Flow.create ~loop:eng.e_host.lp ~key ~max_rate_gbps:(flow_max_rate eng.e_host)
          ~version ~incarnation:eng.e_host.incarnation ()
      in
      Hashtbl.add eng.flows key f;
      eng.flow_list <- eng.flow_list @ [ f ];
      eng.flow_arr <- Array.of_list eng.flow_list;
      Flow.set_window_provider f (fun () -> advertised_window eng);
      f

(* -- Completion / message delivery to the application ------------------- *)

let notify_app engine_cost client =
  (match client.app_task with
  | Some task -> Sched.kick task
  | None -> ());
  (match client.on_delivery with Some f -> f () | None -> ());
  engine_cost := !engine_cost + client.c_host.cost.Sim.Costs.thread_notify

(* An op's admission charge is held until its (first) completion is
   delivered; any completion path — Ok, Rejected, Timed_out — funnels
   through here, so the release is unconditional on status. *)
let release_charge client op_id =
  match Hashtbl.find_opt client.charges op_id with
  | Some charge ->
      Hashtbl.remove client.charges op_id;
      (* Sabotage point: with "skip_credit_release" armed the admission
         charge is deliberately leaked so the sweep can prove the
         pool-drained invariant actually fires (never armed outside the
         checker's own non-vacuity test). *)
      if not (Check.Invariant.sabotage "skip_credit_release") then
        Overload.Admission.release client.adm charge
  | None -> ()

let push_completion eng cost client comp =
  ignore eng;
  release_charge client comp.comp_op;
  if Squeue.Spsc.push client.comp_q ~now:(Loop.now client.c_host.lp) comp then begin
    client.n_comps <- client.n_comps + 1;
    notify_app cost client
  end

let push_incoming eng cost client inc =
  ignore eng;
  if Squeue.Spsc.push client.msg_q ~now:(Loop.now client.c_host.lp) inc then begin
    client.n_msgs <- client.n_msgs + 1;
    client.rx_bytes <- client.rx_bytes + inc.msg_bytes;
    notify_app cost client;
    true
  end
  else false

(* -- Transmit-side segmentation ----------------------------------------- *)

(* Application payloads are segmented on 4096-byte page boundaries: a
   page travels in one packet when the MTU accommodates it (the 5000 B
   MTU was chosen "to comfortably fit a 4096 B application payload with
   additional headers", §5.1) and is split otherwise — which is exactly
   why Table 1's default-MTU row moves half the throughput. *)
let page_bytes = 4096

let segment_message t conn ~op_id ~stream ~bytes =
  let chunk = max_chunk t in
  let rec go offset =
    if offset < bytes then begin
      let to_page = page_bytes - (offset mod page_bytes) in
      let len = min (min chunk to_page) (bytes - offset) in
      Flow.enqueue conn.c_flow
        (Wire.Msg_chunk
           { conn = conn.ckey; op_id; stream; offset; len; total = bytes })
        ~payload_bytes:len;
      go (offset + len)
    end
  in
  if bytes = 0 then
    Flow.enqueue conn.c_flow
      (Wire.Msg_chunk { conn = conn.ckey; op_id; stream; offset = 0; len = 0; total = 0 })
      ~payload_bytes:0
  else go 0

let segment_response t flow ~ckey ~op_id ~status ~total ~value =
  let chunk = max_chunk t in
  if total = 0 then
    Flow.enqueue flow
      (Wire.One_sided_resp
         { conn = ckey; op_id; status; chunk_offset = 0; chunk_len = 0; total = 0; value })
      ~payload_bytes:0
  else begin
    let rec go offset =
      if offset < total then begin
        let to_page = page_bytes - (offset mod page_bytes) in
        let len = min (min chunk to_page) (total - offset) in
        Flow.enqueue flow
          (Wire.One_sided_resp
             {
               conn = ckey;
               op_id;
               status;
               chunk_offset = offset;
               chunk_len = len;
               total;
               value = (if offset = 0 then value else None);
             })
          ~payload_bytes:len;
        go (offset + len)
      end
    in
    go 0
  end

(* -- One-sided execution (§3.2) ----------------------------------------- *)

let region_of client rid = Hashtbl.find_opt client.regions rid

let exec_one_sided eng cost client (op : Wire.one_sided) =
  let costs = eng.e_host.cost in
  cost := !cost + costs.Sim.Costs.pony_one_sided_exec;
  let read_value region off =
    if Memory.Region.is_backed region && off + 8 <= Memory.Region.size region
    then Some (Memory.Region.read_int64 region off)
    else None
  in
  match op with
  | Wire.Read { region; off; len } -> (
      match region_of client region with
      | None -> (Wire.Bad_region, 0, None)
      | Some r ->
          if off < 0 || len < 0 || off + len > Memory.Region.size r then
            (Wire.Bad_range, 0, None)
          else (Wire.Ok, len, read_value r off))
  | Wire.Write { region; off; len } -> (
      match region_of client region with
      | None -> (Wire.Bad_region, 0, None)
      | Some r ->
          if off < 0 || len < 0 || off + len > Memory.Region.size r then
            (Wire.Bad_range, 0, None)
          else (Wire.Ok, 0, None))
  | Wire.Indirect_read { table_region; data_region; indices; len } -> (
      match (region_of client table_region, region_of client data_region) with
      | None, _ | _, None -> (Wire.Bad_region, 0, None)
      | Some table, Some data ->
          let n = List.length indices in
          cost := !cost + (n * costs.Sim.Costs.pony_indirection_lookup);
          let ok = ref true in
          let first = ref None in
          List.iteri
            (fun i idx ->
              if 8 * (idx + 1) > Memory.Region.size table then ok := false
              else begin
                let target =
                  Int64.to_int (Memory.Region.read_int64 table (8 * idx))
                in
                if target < 0 || target + len > Memory.Region.size data then
                  ok := false
                else if i = 0 then first := read_value data target
              end)
            indices;
          if !ok then (Wire.Ok, n * len, !first) else (Wire.Bad_range, 0, None))
  | Wire.Scan_read { region; scan_limit; needle; len } -> (
      match region_of client region with
      | None -> (Wire.Bad_region, 0, None)
      | Some r ->
          let limit = min scan_limit (Memory.Region.size r) in
          (* Entries are 16 bytes: (needle, pointer). *)
          let entries = limit / 16 in
          cost :=
            !cost + (max 1 (entries / 4) * costs.Sim.Costs.pony_indirection_lookup);
          if not (Memory.Region.is_backed r) then
            (* Synthetic regions: treat as a hit at a derived offset. *)
            (Wire.Ok, len, None)
          else begin
            let found = ref None in
            (try
               for i = 0 to entries - 1 do
                 if Memory.Region.read_int64 r (16 * i) = needle then begin
                   found := Some (Int64.to_int (Memory.Region.read_int64 r ((16 * i) + 8)));
                   raise Exit
                 end
               done
             with Exit -> ());
            match !found with
            | None -> (Wire.No_match, 0, None)
            | Some ptr ->
                if ptr < 0 || ptr + len > Memory.Region.size r then
                  (Wire.Bad_range, 0, None)
                else (Wire.Ok, len, read_value r ptr)
          end)

(* -- Receive-side upper layer ------------------------------------------- *)

let find_conn eng ckey ~we_init =
  match Hashtbl.find_opt eng.conns (ckey, we_init) with
  | None -> None
  | Some h -> Memory.Arena.get eng.conn_arena h

let endpoints_key (ckey : Wire.conn_key) =
  ( ckey.Wire.initiator_host,
    ckey.Wire.initiator_client,
    ckey.Wire.target_host,
    ckey.Wire.target_client )

(* Install a conn into the arena and lookup tables. *)
let add_conn eng conn =
  let h = Memory.Arena.alloc eng.conn_arena conn in
  Hashtbl.replace eng.conns (conn.ckey, conn.we_are_initiator) h;
  Hashtbl.replace eng.by_endpoints (endpoints_key conn.ckey) h

(* Cancel a conn's wheel timers; every terminal transition funnels
   through here so dead conns never wake the wheel again. *)
let cancel_conn_timers conn =
  (match conn.dl_timer with
  | Some w ->
      Sim.Wheel.cancel w;
      conn.dl_timer <- None
  | None -> ());
  match conn.ka_timer with
  | Some w ->
      Sim.Wheel.cancel w;
      conn.ka_timer <- None
  | None -> ()

let rx_copy_cost eng cost bytes =
  let costs = eng.e_host.cost in
  match eng.e_host.ce with
  | Some _ when eng.e_host.use_ce ->
      cost := !cost + costs.Sim.Costs.copy_engine_per_packet
  | Some _ | None ->
      cost :=
        !cost
        + Time.ns
            (int_of_float
               (Float.round (costs.Sim.Costs.snap_copy_per_byte_ns *. float_of_int bytes)))

let grant_credit eng flow ckey bytes =
  ignore eng;
  Flow.enqueue flow (Wire.Credit_grant { conn = ckey; bytes }) ~payload_bytes:0

let deliver_message eng cost ~conn ~op_id ~stream ~total ~reverse_flow =
  if
    push_incoming eng cost conn.local
      { msg_conn = conn; msg_op = op_id; stream; msg_bytes = total }
  then begin
    (* The message reached the destination application: this is the
       end-to-end completion point of a two-sided op (the sender's [Ok]
       completion at segmentation only covered transport take-over). *)
    ot_stamp conn (ot_rkey conn op_id) Sim.Optrace.Delivered;
    ot_finish conn (ot_rkey conn op_id) ~status:Wire.Ok;
    (* Receiver-driven replenishment once the message is handed to the
       application (§3.3). *)
    grant_credit eng reverse_flow conn.ckey total
  end
  else begin
    (* The destination client's incoming queue is full: shed at
       delivery and NACK so the sender's credit comes back and the op
       completes [Busy] instead of silently losing both. *)
    Stats.Counter.incr eng.e_host.c_busy;
    Flow.enqueue reverse_flow
      (Wire.Busy_nack { conn = conn.ckey; op_id; bytes = total })
      ~payload_bytes:0
  end

(* Reassembly state is charged to the owning engine in the op pool so
   receive-side memory is attributed (§2.5); best-effort — [None] when
   the pool cannot cover it. *)
let charge_assembly eng ~total =
  if total = 0 then None
  else
    Memory.Pool.try_alloc eng.e_host.op_pool ~owner:(Engine.name eng.core)
      ~bytes:total

let free_assembly a =
  match a.asm_charge with
  | Some c ->
      a.asm_charge <- None;
      if c.Memory.Pool.live then Memory.Pool.free c
  | None -> ()

(* -- Connection death and orphan-state reclamation ----------------------- *)

let item_for_conn ckey = function
  | Wire.Msg_chunk { conn; _ }
  | Wire.One_sided_req { conn; _ }
  | Wire.One_sided_resp { conn; _ }
  | Wire.Credit_grant { conn; _ }
  | Wire.Busy_nack { conn; _ }
  | Wire.Conn_reset { conn }
  | Wire.Keepalive { conn }
  | Wire.Keepalive_ack { conn } -> conn = ckey
  | Wire.Bare_ack -> false

let item_ckey = function
  | Wire.Msg_chunk { conn; _ }
  | Wire.One_sided_req { conn; _ }
  | Wire.One_sided_resp { conn; _ }
  | Wire.Credit_grant { conn; _ }
  | Wire.Busy_nack { conn; _ }
  | Wire.Conn_reset { conn }
  | Wire.Keepalive { conn }
  | Wire.Keepalive_ack { conn } -> Some conn
  | Wire.Bare_ack -> None

let peer_dead_completion client ~op_id ~bytes ~issued ~now =
  Stats.Counter.incr client.c_host.c_peer_dead_op;
  {
    comp_op = op_id;
    status = Wire.Peer_dead;
    bytes;
    value = None;
    issued_at = issued;
    completed_at = now;
  }

let conn_label conn =
  Printf.sprintf "%d.%d->%d.%d%s" conn.ckey.Wire.initiator_host
    conn.ckey.Wire.initiator_client conn.ckey.Wire.target_host
    conn.ckey.Wire.target_client
    (if conn.we_are_initiator then ".init" else ".tgt")

(* Every path that declares a connection dead funnels here: fail every
   stranded op with [Peer_dead] (releasing its admission charge through
   the completion path) and reclaim all transport state attributable to
   the peer — the credit-waiting queue, unsent flow items, outstanding
   one-sided ops, and receive-side reassembly (whose op-pool charge
   returns).  The per-host peer_reclaim invariant checks exactly this
   postcondition on every Dead/Closed conn; the "skip_peer_reclaim"
   sabotage switch skips the reclamation so the sweep can prove the
   invariant is not vacuous. *)
let kill_conn cost conn ~reason =
  if not (conn_is_dead conn) then begin
    let t = conn.local.c_host in
    let now = Loop.now t.lp in
    let eng = conn.local.c_eng in
    conn.state <- Dead;
    cancel_conn_timers conn;
    Stats.Counter.incr t.c_peer_death;
    Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony" "conn %s dead: %s"
      (conn_label conn) reason;
    if not (Check.Invariant.sabotage "skip_peer_reclaim") then begin
      (* Credit-starved ops parked on the conn. *)
      Queue.iter
        (fun cmd ->
          match cmd with
          | C_send { op_id; bytes; issued; _ } ->
              ot_finish conn (ot_key conn op_id) ~status:Wire.Peer_dead;
              push_completion eng cost conn.local
                (peer_dead_completion conn.local ~op_id ~bytes ~issued ~now)
          | C_one_sided { op_id; issued; _ } ->
              ot_finish conn (ot_key conn op_id) ~status:Wire.Peer_dead;
              push_completion eng cost conn.local
                (peer_dead_completion conn.local ~op_id ~bytes:0 ~issued ~now)
          | C_close _ -> ())
        conn.waiting;
      Queue.clear conn.waiting;
      (* Segments and control items not yet on the wire would address a
         dead peer; flight entries stay (removing them would punch holes
         in the go-back-N sequence space). *)
      ignore (Flow.purge_queue conn.c_flow ~drop:(item_for_conn conn.ckey));
      (* One-sided ops stranded without a response.  The per-conn count
         lets the common case — a dying conn with nothing outstanding —
         skip the table walk entirely. *)
      if conn.n_outstanding > 0 then
        List.iter
          (fun (op_id, (issued, ck)) ->
            if ck = conn.ckey then begin
              Hashtbl.remove conn.local.outstanding op_id;
              conn.n_outstanding <- conn.n_outstanding - 1;
              ot_finish conn (ot_key conn op_id) ~status:Wire.Peer_dead;
              push_completion eng cost conn.local
                (peer_dead_completion conn.local ~op_id ~bytes:0 ~issued ~now)
            end)
          (sorted_tbl conn.local.outstanding);
      (* Partially reassembled messages from the dead peer. *)
      if conn.n_assembly > 0 then begin
        List.iter
          (fun (((ck, _, _) as akey), a) ->
            if ck = conn.ckey then begin
              Hashtbl.remove eng.assembly akey;
              free_assembly a
            end)
          (sorted_tbl eng.assembly);
        conn.n_assembly <- 0
      end
    end;
    (* Attribution: ops on this conn still being traced — transmitted
       but undelivered sends included — can never complete normally.
       Close their records (both directions of the session) so the
       in-flight table and oldest-age reporting do not carry them
       forever. *)
    if Sim.Optrace.enabled () then begin
      let stale = ref [] in
      Sim.Optrace.iter_in_flight (fun r ->
          let k = r.Sim.Optrace.r_key in
          if
            k.Sim.Optrace.k_session = conn.ckey.Wire.session
            && ((k.Sim.Optrace.k_origin = addr t
                && k.Sim.Optrace.k_origin_client = conn.local.cid
                && k.Sim.Optrace.k_peer = conn.remote_host
                && k.Sim.Optrace.k_origin_init = conn.we_are_initiator)
               || (k.Sim.Optrace.k_origin = conn.remote_host
                  && k.Sim.Optrace.k_origin_client = conn.remote_client
                  && k.Sim.Optrace.k_peer = addr t
                  && k.Sim.Optrace.k_origin_init = not conn.we_are_initiator))
          then stale := k :: !stale);
      List.iter (fun k -> ot_finish conn k ~status:Wire.Peer_dead) !stale
    end
  end

(* Complete a local close: tell the peer (so its half dies promptly
   rather than by keepalive), abandon inbound reassembly, tombstone. *)
let finalize_close conn =
  match conn.state with
  | Draining ->
      let t = conn.local.c_host in
      let eng = conn.local.c_eng in
      conn.state <- Closed;
      cancel_conn_timers conn;
      Stats.Counter.incr t.c_conn_closed;
      Stats.Counter.incr t.c_conn_reset;
      Flow.enqueue conn.c_flow (Wire.Conn_reset { conn = conn.ckey })
        ~payload_bytes:0;
      if conn.n_assembly > 0 then begin
        List.iter
          (fun (((ck, _, _) as akey), a) ->
            if ck = conn.ckey then begin
              Hashtbl.remove eng.assembly akey;
              free_assembly a
            end)
          (sorted_tbl eng.assembly);
        conn.n_assembly <- 0
      end
  | Established | Dead | Closed -> ()

let reset_back eng ckey ~reverse_flow =
  Stats.Counter.incr eng.e_host.c_conn_reset;
  Flow.enqueue reverse_flow (Wire.Conn_reset { conn = ckey }) ~payload_bytes:0

(* Tear down everything this host holds about [peer]: conns die (their
   ops fail [Peer_dead]) and flows are dropped wholesale — their
   sequence state belongs to a peer instance that no longer exists. *)
let forget_peer cost t ~peer ~reason =
  List.iter
    (fun eng ->
      (* Arena index order = conn creation order: deterministic without
         a sort even under randomized hashing. *)
      Memory.Arena.iter eng.conn_arena (fun _ conn ->
          if conn.remote_host = peer then kill_conn cost conn ~reason);
      let doomed, kept =
        List.partition
          (fun f -> (Flow.key f).Wire.dst_host = peer)
          eng.flow_list
      in
      List.iter (fun f -> Hashtbl.remove eng.flows (Flow.key f)) doomed;
      eng.flow_list <- kept;
      eng.flow_arr <- Array.of_list kept)
    t.engs

(* Record the incarnation [peer] is speaking.  [`Stale] means the packet
   predates the peer's latest restart and must be dropped; a stamp newer
   than the recorded one proves the peer restarted, so everything held
   about it is torn down before the packet is processed. *)
let note_peer_inc cost t ~peer ~inc =
  match Hashtbl.find_opt t.peer_incs peer with
  | None ->
      Hashtbl.replace t.peer_incs peer inc;
      `Current
  | Some known when inc = known -> `Current
  | Some known when inc < known -> `Stale
  | Some _ ->
      Hashtbl.replace t.peer_incs peer inc;
      Stats.Counter.incr t.c_peer_restart;
      Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony"
        "host %d: peer %d restarted (incarnation %d)" (addr t) peer inc;
      forget_peer cost t ~peer ~reason:"peer restarted";
      `Current

(* The reclamation postcondition [kill_conn]/[finalize_close] enforce:
   a Dead/Closed conn holds no parked ops, no outstanding one-sided
   ops, and no reassembly buffers. *)
let check_peer_reclaim t =
  List.fold_left
    (fun acc eng ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc (_, conn) ->
              match acc with
              | Some _ -> acc
              | None ->
                  if not (conn_is_dead conn) then None
                  else if not (Queue.is_empty conn.waiting) then
                    Some
                      (Printf.sprintf "conn %s: %d ops parked on a dead conn"
                         (conn_label conn)
                         (Queue.length conn.waiting))
                  else if
                    Hashtbl.fold
                      (fun _ (_, ck) found -> found || ck = conn.ckey)
                      conn.local.outstanding false
                  then
                    Some
                      (Printf.sprintf
                         "conn %s: outstanding one-sided ops on a dead conn"
                         (conn_label conn))
                  else if
                    Hashtbl.fold
                      (fun (ck, _, _) _ found -> found || ck = conn.ckey)
                      eng.assembly false
                  then
                    Some
                      (Printf.sprintf "conn %s: reassembly state on a dead conn"
                         (conn_label conn))
                  else None)
            None
            (Memory.Arena.fold eng.conn_arena
               (fun acc _ c -> (((c.ckey, c.we_are_initiator), c) : _ * conn) :: acc)
               []
            |> List.sort (fun (a, _) (b, _) -> compare a b)))
    None t.engs

let maybe_finalize_close conn =
  if conn.state = Draining && Queue.is_empty conn.waiting then
    finalize_close conn

(* -- Per-conn wheel timers ----------------------------------------------- *)

(* Timer callbacks run in loop context, between engine passes: they only
   flag the conn onto the engine's due queue and poke the engine, so all
   real work — and all its determinism-sensitive ordering — stays inside
   the engine pass. *)

(* Keep the deadline timer in sync with the head of the credit-waiting
   queue.  Called after any mutation of [conn.waiting]; O(1). *)
let rearm_deadline eng conn =
  let head =
    if conn_is_dead conn then None
    else
      match Queue.peek_opt conn.waiting with
      | Some (C_send { deadline = Some d; _ }) -> Some d
      | Some _ | None -> None
  in
  match (head, conn.dl_timer) with
  | None, None -> ()
  | None, Some w ->
      Sim.Wheel.cancel w;
      conn.dl_timer <- None
  | Some d, Some w when conn.dl_at = d && Sim.Wheel.is_armed w -> ()
  | Some d, prev ->
      (match prev with Some w -> Sim.Wheel.cancel w | None -> ());
      conn.dl_at <- d;
      conn.dl_timer <-
        Some
          (Sim.Wheel.arm eng.wheel
             ~at:(Time.add d 1) (* expiry is strict: fire once now > d *)
             (fun () ->
               conn.dl_timer <- None;
               if (not conn.dl_queued) && not (conn_is_dead conn) then begin
                 conn.dl_queued <- true;
                 Queue.add conn eng.deadline_due;
                 Engine.notify eng.core
               end))

(* Does this conn still have a reason to watch its peer?  Quiesce-aware
   keepalive arms only while the answer is yes; an idle healthy conn
   runs one probe cycle after its last traffic and then goes silent. *)
let conn_has_interest conn =
  (not (Queue.is_empty conn.waiting))
  || conn.n_outstanding > 0
  || Flow.in_flight conn.c_flow > 0
  || Flow.pending conn.c_flow > 0

(* Continue an existing watch epoch: arm the next probe-cycle wheel
   timer without touching [ka_base] (silence keeps accruing, so the
   death budget still runs out on a dead peer). *)
let rearm_ka eng conn ~at =
  conn.ka_timer <-
    Some
      (Sim.Wheel.arm eng.wheel ~at (fun () ->
           conn.ka_timer <- None;
           if (not conn.ka_queued) && not (conn_is_dead conn) then begin
             conn.ka_queued <- true;
             Queue.add conn eng.ka_due;
             Engine.notify eng.core
           end))

(* Start (or resume) the keepalive watch if the host configured one and
   the conn has none running.  [ka_base] records when this watch epoch
   began so a resumed watch never counts silence accrued while we
   deliberately weren't watching. *)
let ensure_ka eng conn ~now =
  match eng.e_host.ka with
  | None -> ()
  | Some { ka_interval; _ } ->
      if conn.ka_timer = None && not (conn_is_dead conn) then begin
        conn.ka_base <- now;
        rearm_ka eng conn ~at:(Time.add now ka_interval)
      end

let drain_waiting eng cost conn =
  let t = eng.e_host in
  let continue = ref true in
  while !continue do
    let now = Loop.now t.lp in
    match Queue.peek_opt conn.waiting with
    | Some (C_send { op_id; bytes; issued; deadline = Some d; _ }) when now > d ->
        (* Expired while credit-starved: shed before any segmentation
           work, without consuming credit. *)
        ignore (Queue.pop conn.waiting);
        Stats.Counter.incr conn.local.c_expired;
        ot_finish conn (ot_key conn op_id) ~status:Wire.Timed_out;
        push_completion eng cost conn.local
          {
            comp_op = op_id;
            status = Wire.Timed_out;
            bytes;
            value = None;
            issued_at = issued;
            completed_at = now;
          }
    | Some (C_send { op_id; stream; bytes; issued; _ })
      when bytes <= conn.credit ->
        ignore (Queue.pop conn.waiting);
        conn.credit <- conn.credit - bytes;
        cost := !cost + t.cost.Sim.Costs.pony_per_op;
        ot_stamp conn (ot_key conn op_id) Sim.Optrace.Credit;
        segment_message t conn ~op_id ~stream ~bytes;
        push_completion eng cost conn.local
          {
            comp_op = op_id;
            status = Wire.Ok;
            bytes;
            value = None;
            issued_at = issued;
            completed_at = Loop.now t.lp;
          }
    | Some _ | None -> continue := false
  done;
  maybe_finalize_close conn;
  rearm_deadline eng conn

(* Drop deadline-expired ops parked at the head of the credit-waiting
   queue.  [drain_waiting] does the same when credit arrives; this path
   covers the case where no credit ever does — the conn's wheel timer
   fired and flagged it onto [eng.deadline_due], so only conns with an
   actually-expired head are visited (never the whole table).  Wheel
   firing order is salted exactly like the loop heap, and the due queue
   preserves it, so expiry completions keep a deterministic order under
   randomized hashing. *)
let process_deadline_due eng cost ~now =
  let expired = ref 0 in
  while not (Queue.is_empty eng.deadline_due) do
    let conn = Queue.pop eng.deadline_due in
    conn.dl_queued <- false;
    if not (conn_is_dead conn) then begin
      let continue = ref true in
      while !continue do
        match Queue.peek_opt conn.waiting with
        | Some (C_send { op_id; bytes; issued; deadline = Some d; _ }) when now > d ->
            ignore (Queue.pop conn.waiting);
            incr expired;
            Stats.Counter.incr conn.local.c_expired;
            ot_finish conn (ot_key conn op_id) ~status:Wire.Timed_out;
            push_completion eng cost conn.local
              {
                comp_op = op_id;
                status = Wire.Timed_out;
                bytes;
                value = None;
                issued_at = issued;
                completed_at = now;
              }
        | Some _ | None -> continue := false
      done;
      maybe_finalize_close conn;
      rearm_deadline eng conn
    end
  done;
  !expired

let handle_item eng cost ~from_host (item : Wire.item) ~reverse_flow =
  let t = eng.e_host in
  let now = Loop.now t.lp in
  (* The item's conn, live halves only: traffic for an unknown or
     Dead/Closed conn answers with a reset — except a reset itself,
     which is never echoed, so two tombstones cannot ping-pong. *)
  let live_conn ckey =
    let we_init = not (ckey.Wire.initiator_host = from_host) in
    match find_conn eng ckey ~we_init with
    | Some c when not (conn_is_dead c) -> Some c
    | Some _ | None -> None
  in
  (* Any item carried on a live conn counts as life for dead-peer
     detection. *)
  (match item_ckey item with
  | Some ckey -> (
      match live_conn ckey with
      | Some c -> (
          c.last_heard <- now;
          (* Traffic (re)starts the quiesce-aware keepalive watch —
             except the probe cycle itself.  A probe or its answer is
             proof of life, not interest: feeding it back into
             [ensure_ka] would let the watches on two idle hosts
             restart each other forever (probe restarts the peer's
             watch, whose probe restarts ours), and the pair never
             quiesces. *)
          match item with
          | Wire.Keepalive _ | Wire.Keepalive_ack _ -> ()
          | _ -> ensure_ka eng c ~now)
      | None -> ())
  | None -> ());
  match item with
  | Wire.Bare_ack -> ()
  | Wire.Conn_reset { conn = ckey } -> (
      match live_conn ckey with
      | Some conn -> kill_conn cost conn ~reason:"reset by peer"
      | None -> ())
  | Wire.Keepalive { conn = ckey } -> (
      match live_conn ckey with
      | Some _ ->
          Flow.enqueue reverse_flow (Wire.Keepalive_ack { conn = ckey })
            ~payload_bytes:0
      | None -> reset_back eng ckey ~reverse_flow)
  | Wire.Keepalive_ack { conn = ckey } -> (
      (* The probe answer itself already refreshed [last_heard]. *)
      match live_conn ckey with
      | Some _ -> ()
      | None -> reset_back eng ckey ~reverse_flow)
  | Wire.Msg_chunk { conn = ckey; op_id; stream; offset = _; len; total } -> (
      match live_conn ckey with
      | None -> reset_back eng ckey ~reverse_flow
      | Some conn ->
          let from_initiator = ckey.Wire.initiator_host = from_host in
          rx_copy_cost eng cost len;
          let akey = (ckey, from_initiator, op_id) in
          let a =
            match Hashtbl.find_opt eng.assembly akey with
            | Some a -> a
            | None ->
                let a =
                  {
                    got = 0;
                    total;
                    first_value = None;
                    asm_status = Wire.Ok;
                    asm_charge = charge_assembly eng ~total;
                  }
                in
                Hashtbl.add eng.assembly akey a;
                ot_stamp conn (ot_rkey conn op_id) Sim.Optrace.Rx_first;
                a
          in
          a.got <- a.got + len;
          if a.got >= a.total then begin
            Hashtbl.remove eng.assembly akey;
            free_assembly a;
            ot_stamp conn (ot_rkey conn op_id) Sim.Optrace.Rx_done;
            let deliver () =
              let cost' = ref 0 in
              deliver_message eng cost' ~conn ~op_id ~stream ~total ~reverse_flow;
              Sched.softirq_charge t.mach 0;
              ignore cost'
            in
            if t.use_ce then begin
              match t.ce with
              | Some ce ->
                  (* The copy engine moves the payload asynchronously;
                     delivery happens when it lands. *)
                  Nic.Copy_engine.submit ce ~bytes:total ~on_complete:(fun () ->
                      deliver ();
                      Engine.notify eng.core)
              | None -> deliver_message eng cost ~conn ~op_id ~stream ~total ~reverse_flow
            end
            else deliver_message eng cost ~conn ~op_id ~stream ~total ~reverse_flow
          end)
  | Wire.One_sided_req { conn = ckey; op_id; op } -> (
      match live_conn ckey with
      | None -> reset_back eng ckey ~reverse_flow
      | Some conn ->
          eng.served_one_sided <- eng.served_one_sided + 1;
          (* The conn's local half serves against its own client's
             regions, whichever side initiated. *)
          let status, total, value = exec_one_sided eng cost conn.local op in
          segment_response t reverse_flow ~ckey ~op_id ~status ~total ~value)
  | Wire.One_sided_resp { conn = ckey; op_id; status; chunk_offset; chunk_len; total; value }
    -> (
      match live_conn ckey with
      | None -> reset_back eng ckey ~reverse_flow
      | Some conn ->
          let from_initiator = ckey.Wire.initiator_host = from_host in
          rx_copy_cost eng cost chunk_len;
          let akey = (ckey, from_initiator, op_id) in
          let a =
            match Hashtbl.find_opt eng.assembly akey with
            | Some a -> a
            | None ->
                let a =
                  {
                    got = 0;
                    total;
                    first_value = None;
                    asm_status = status;
                    asm_charge = charge_assembly eng ~total;
                  }
                in
                Hashtbl.add eng.assembly akey a;
                (* A one-sided response reassembles at the op's origin. *)
                ot_stamp conn (ot_key conn op_id) Sim.Optrace.Rx_first;
                a
          in
          a.got <- a.got + chunk_len;
          if chunk_offset = 0 then begin
            a.first_value <- value;
            a.asm_status <- status
          end;
          if a.got >= a.total then begin
            Hashtbl.remove eng.assembly akey;
            free_assembly a;
            let issued =
              match Hashtbl.find_opt conn.local.outstanding op_id with
              | Some (ts, _) ->
                  Hashtbl.remove conn.local.outstanding op_id;
                  conn.n_outstanding <- conn.n_outstanding - 1;
                  ts
              | None -> now
            in
            ot_stamp conn (ot_key conn op_id) Sim.Optrace.Rx_done;
            ot_finish conn (ot_key conn op_id) ~status:a.asm_status;
            push_completion eng cost conn.local
              {
                comp_op = op_id;
                status = a.asm_status;
                bytes = a.total;
                value = a.first_value;
                issued_at = issued;
                completed_at = now;
              }
          end)
  | Wire.Credit_grant { conn = ckey; bytes } -> (
      match live_conn ckey with
      | Some conn ->
          conn.credit <- conn.credit + bytes;
          drain_waiting eng cost conn
      | None -> reset_back eng ckey ~reverse_flow)
  | Wire.Busy_nack { conn = ckey; op_id; bytes } -> (
      match live_conn ckey with
      | Some conn ->
          (* The receiver shed this op at delivery: reclaim the
             connection credit the send consumed and surface a [Busy]
             completion (a second completion for the op — the first,
             [Ok], only covered transport take-over). *)
          conn.credit <- conn.credit + bytes;
          ot_finish conn (ot_key conn op_id) ~status:Wire.Busy;
          push_completion eng cost conn.local
            {
              comp_op = op_id;
              status = Wire.Busy;
              bytes;
              value = None;
              issued_at = now;
              completed_at = now;
            };
          drain_waiting eng cost conn
      | None -> reset_back eng ckey ~reverse_flow)

(* -- Command handling ---------------------------------------------------- *)

let cmd_expired cmd ~now =
  match cmd with
  | C_send { deadline = Some d; _ } | C_one_sided { deadline = Some d; _ } ->
      now > d
  | C_send _ | C_one_sided _ | C_close _ -> false

let complete_unstarted eng cost cmd ~status ~now =
  let conn, op_id, bytes, issued =
    match cmd with
    | C_send { cmd_conn; op_id; bytes; issued; _ } -> (cmd_conn, op_id, bytes, issued)
    | C_one_sided { cmd_conn; op_id; issued; _ } -> (cmd_conn, op_id, 0, issued)
    | C_close _ -> invalid_arg "Pony: complete_unstarted on a close"
  in
  ot_finish conn (ot_key conn op_id) ~status;
  push_completion eng cost conn.local
    {
      comp_op = op_id;
      status;
      bytes;
      value = None;
      issued_at = issued;
      completed_at = now;
    }

(* Load shedding (§3.3): under Saturated pressure, drop ops from
   clients holding a disproportionate share of their quota — at
   dequeue, before any segmentation or transmission work is invested
   in them (cheapest-first). *)
let shed_at_dequeue eng cmd =
  match Overload.Pressure.level eng.pressure with
  | Overload.Pressure.Nominal | Overload.Pressure.Pressured -> false
  | Overload.Pressure.Saturated ->
      let client =
        match cmd with
        | C_send { cmd_conn; _ }
        | C_one_sided { cmd_conn; _ }
        | C_close { cmd_conn; _ } -> cmd_conn.local
      in
      Overload.Admission.outstanding_ops client.adm * 4
      > Overload.Admission.op_quota client.adm

let handle_command eng cost cmd =
  let t = eng.e_host in
  let costs = t.cost in
  cost := !cost + costs.Sim.Costs.pony_per_op;
  let now = Loop.now t.lp in
  match cmd with
  | C_close { cmd_conn = conn } -> (
      (* The close is ordered behind the conn's earlier sends in the
         command queue; anything still credit-waiting drains first. *)
      match conn.state with
      | Established | Draining ->
          conn.state <- Draining;
          maybe_finalize_close conn
      | Dead | Closed -> ())
  | (C_send { cmd_conn = conn; _ } | C_one_sided { cmd_conn = conn; _ })
    when conn_is_dead conn ->
      (* The conn died between posting and dequeue. *)
      let status =
        match conn.state with
        | Dead ->
            Stats.Counter.incr t.c_peer_dead_op;
            Wire.Peer_dead
        | Established | Draining | Closed -> Wire.Rejected
      in
      complete_unstarted eng cost cmd ~status ~now
  | C_send _ | C_one_sided _ -> (
      if cmd_expired cmd ~now then begin
        (match cmd with
        | C_send { cmd_conn; _ } | C_one_sided { cmd_conn; _ } ->
            Stats.Counter.incr cmd_conn.local.c_expired
        | C_close _ -> ());
        complete_unstarted eng cost cmd ~status:Wire.Timed_out ~now
      end
      else if shed_at_dequeue eng cmd then begin
        (match cmd with
        | C_send { cmd_conn; _ } | C_one_sided { cmd_conn; _ } ->
            Stats.Counter.incr cmd_conn.local.c_shed
        | C_close _ -> ());
        complete_unstarted eng cost cmd ~status:Wire.Rejected ~now
      end
      else
        match cmd with
        | C_send { cmd_conn = conn; op_id; stream; bytes; issued; _ } ->
            ot_dequeued conn op_id;
            ensure_ka eng conn ~now;
            if bytes <= conn.credit then begin
              conn.credit <- conn.credit - bytes;
              ot_stamp conn (ot_key conn op_id) Sim.Optrace.Credit;
              segment_message t conn ~op_id ~stream ~bytes;
              push_completion eng cost conn.local
                {
                  comp_op = op_id;
                  status = Wire.Ok;
                  bytes;
                  value = None;
                  issued_at = issued;
                  completed_at = Loop.now t.lp;
                }
            end
            else begin
              Queue.add cmd conn.waiting;
              rearm_deadline eng conn
            end
        | C_one_sided { cmd_conn = conn; op_id; op; issued; _ } ->
            ot_dequeued conn op_id;
            ensure_ka eng conn ~now;
            Hashtbl.replace conn.local.outstanding op_id (issued, conn.ckey);
            conn.n_outstanding <- conn.n_outstanding + 1;
            Flow.enqueue conn.c_flow
              (Wire.One_sided_req { conn = conn.ckey; op_id; op })
              ~payload_bytes:0
        | C_close _ -> ())

(* -- The engine loop ----------------------------------------------------- *)

(* Re-arm the engine's pacing/retransmit wake-up.  Only flow deadlines
   are folded here — per-conn send deadlines and keepalives live on the
   engine's timing wheel and wake the engine themselves, so this is
   O(flows), not O(conns). *)
let arm_timer eng =
  let t = eng.e_host in
  (match eng.timer with
  | Some h ->
      Loop.cancel h;
      eng.timer <- None
  | None -> ());
  let deadline = ref None in
  Array.iter
    (fun f ->
      match Flow.next_deadline f with
      | None -> ()
      | Some d -> (
          match !deadline with
          | None -> deadline := Some d
          | Some a -> if d < a then deadline := Some d))
    eng.flow_arr;
  match !deadline with
  | Some d when d > Loop.now t.lp ->
      eng.timer <- Some (Loop.at t.lp d (fun () -> Engine.notify eng.core))
  | Some _ | None -> ()

let engine_run eng () =
  let t = eng.e_host in
  let costs = t.cost in
  let now = Loop.now t.lp in
  let cost = ref 0 in
  let pkts = ref 0 in
  let worked = ref false in
  (* 0. Restart detection: an epoch bump means this engine was reloaded
     (crash recovery or upgrade rollback/commit).  Resynchronize every
     flow so in-flight operations retransmit immediately instead of
     waiting out a backed-off RTO. *)
  let ep = Engine.epoch eng.core in
  if ep <> eng.last_epoch then begin
    eng.last_epoch <- ep;
    (* The crashed instance's op-pool charges must not strand: bulk-
       reclaim everything under this engine's name (late frees from
       pre-crash allocations become generation-checked no-ops), then
       re-charge the reassemblies that survived in the engine's queues
       under the new epoch. *)
    let ename = Engine.name eng.core in
    let reclaimed = Memory.Pool.release_owner t.op_pool ~owner:ename in
    (* Sorted: under pool pressure only a prefix of the reassemblies
       re-charges successfully, so which ones get charges must not
       depend on hash-iteration order. *)
    List.iter
      (fun (_, a) ->
        a.asm_charge <-
          (if a.total = 0 then None
           else Memory.Pool.try_alloc t.op_pool ~owner:ename ~bytes:a.total))
      (sorted_tbl eng.assembly);
    if reclaimed > 0 then
      Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony"
        "engine %s epoch %d: reclaimed %d op-pool bytes from dead instance"
        ename ep reclaimed;
    let requeued =
      List.fold_left (fun acc f -> acc + Flow.resync f ~now) 0 eng.flow_list
    in
    if requeued > 0 then begin
      Stats.Counter.incr t.c_resync;
      worked := true;
      Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony"
        "engine %s epoch %d: resynced flows, %d packets requeued"
        (Engine.name eng.core) ep requeued
    end
  end;
  (* Fold queue and pool occupancy into the engine's pressure level;
     everything downstream (admission windows, shedding) gates on it. *)
  let occupancy =
    let frac q =
      float_of_int (Squeue.Spsc.length q)
      /. float_of_int (Squeue.Spsc.capacity q)
    in
    let ring_frac = Nic.rx_occupancy t.nic ~queue:eng.rxq in
    let cmd_frac =
      List.fold_left
        (fun acc c -> Float.max acc (frac c.cmd_q))
        0.0 eng.eclients
    in
    let pool_frac =
      float_of_int (Memory.Pool.in_use t.op_pool)
      /. float_of_int (Memory.Pool.capacity t.op_pool)
    in
    Float.max ring_frac (Float.max cmd_frac pool_frac)
  in
  ignore (Overload.Pressure.update eng.pressure ~occupancy);
  (* 1. Receive a bounded batch from this engine's NIC ring. *)
  let ring = Nic.rx_ring t.nic ~queue:eng.rxq in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < rx_batch do
    match Squeue.Spsc.pop ring with
    | Some pkt -> (
        incr n;
        incr pkts;
        worked := true;
        (* Bare acks and control items skip payload-path processing. *)
        cost :=
          !cost
          + (if pkt.Packet.payload_bytes > 0 then
               costs.Sim.Costs.pony_rx_per_packet
             else Time.scale costs.Sim.Costs.pony_rx_per_packet 0.35);
        if pkt.Packet.corrupted then begin
          (* End-to-end integrity check (§3.1): the payload failed
             verification, so the packet is discarded before transport
             processing.  No ack advances; the sender retransmits. *)
          Stats.Counter.incr t.c_corrupt;
          Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony"
            "corrupt packet dropped pkt#%d from %d" pkt.Packet.id
            pkt.Packet.src
        end
        else
        match pkt.Packet.payload with
        | Wire.Pony { flow = k; inc; _ } -> (
            (* Incarnation gate (§4.3): a stamp older than the sender's
               recorded incarnation is a pre-crash straggler — processing
               it could resurrect dead flow state, so it is dropped
               before any transport work.  A newer stamp proves the peer
               restarted and tears down what we held about it first. *)
            match note_peer_inc cost t ~peer:pkt.Packet.src ~inc with
            | `Stale -> Stats.Counter.incr t.c_stale_drop
            | `Current -> (
                (* Packet ingest holds a transient op-pool charge for the
                   payload while it is processed; when the pool cannot
                   cover even that, shed the packet before any transport
                   work ([try_alloc], never the raising [alloc]).  No ack
                   advances, so the sender retransmits once pressure
                   clears. *)
                let pb = pkt.Packet.payload_bytes in
                let ingest =
                  if pb = 0 then Some None
                  else
                    match
                      Memory.Pool.try_alloc t.op_pool
                        ~owner:(Engine.name eng.core) ~bytes:pb
                    with
                    | Some a -> Some (Some a)
                    | None -> None
                in
                match ingest with
                | None -> Stats.Counter.incr t.c_pool_drop
                | Some charge -> (
                    (let f = get_flow eng (Wire.reverse k) in
                     match Flow.on_receive f ~now pkt with
                     | Some item ->
                         handle_item eng cost ~from_host:pkt.Packet.src item
                           ~reverse_flow:f
                     | None -> ());
                    match charge with
                    | Some a -> if a.Memory.Pool.live then Memory.Pool.free a
                    | None -> ())))
        | _ -> ())
    | None -> continue := false
  done;
  if Squeue.Spsc.is_empty ring then Nic.rearm_rx_interrupt t.nic ~queue:eng.rxq;
  (* 2. Application command queues. *)
  List.iter
    (fun client ->
      let c = ref 0 in
      let go = ref true in
      while !go && !c < cmd_batch do
        match Squeue.Spsc.pop client.cmd_q with
        | Some cmd ->
            incr c;
            worked := true;
            handle_command eng cost cmd
        | None -> go := false
      done)
    eng.eclients;
  if process_deadline_due eng cost ~now > 0 then worked := true;
  (* 2b. Dead-peer detection (opt-in keepalives, §4.3): conns surface
     on [eng.ka_due] when their wheel timer fires — only watched conns
     are visited, never the whole table.  Probe a conn silent for the
     interval; declare the peer dead once the silence exceeds the full
     miss budget, so detection stays bounded by
     ka_interval * (ka_miss_budget + 1) plus one engine wake-up.  The
     watch re-arms only while the conn still has interest (see
     [conn_has_interest]): an unanswered probe keeps flow state in
     flight and therefore keeps the watch alive until the death budget
     runs out, while an acked probe on an idle conn lets the watch — and
     with it the host — quiesce. *)
  (match t.ka with
  | None -> ()
  | Some ka ->
      let death_after = ka.ka_interval * (ka.ka_miss_budget + 1) in
      while not (Queue.is_empty eng.ka_due) do
        let conn = Queue.pop eng.ka_due in
        conn.ka_queued <- false;
        match conn.state with
        | Dead | Closed -> ()
        | Established | Draining ->
            (* Silence counts from the later of the last packet heard
               and the start of this watch epoch: a watch resumed after
               a quiet spell must not inherit that spell as misses. *)
            let anchor = Time.max conn.last_heard conn.ka_base in
            let silence = Time.sub now anchor in
            if silence >= death_after then begin
              worked := true;
              kill_conn cost conn
                ~reason:
                  (Printf.sprintf "keepalive: %d probes unanswered"
                     ka.ka_miss_budget)
            end
            else begin
              let probed_this_epoch = conn.ka_sent_at >= conn.ka_base in
              if
                silence >= ka.ka_interval
                && Time.sub now conn.ka_sent_at >= ka.ka_interval
              then begin
                conn.ka_sent_at <- now;
                Stats.Counter.incr t.c_ka_probe;
                worked := true;
                Flow.enqueue conn.c_flow (Wire.Keepalive { conn = conn.ckey })
                  ~payload_bytes:0
              end;
              (* Sustain the watch while the conn has interest or an
                 unanswered probe cycle is in progress (silence at the
                 interval).  A fire that lands before the silence
                 reaches the interval — traffic refreshed [last_heard]
                 mid-epoch — re-arms for when it will, so every epoch
                 completes at least one probe cycle.  Only a
                 proven-alive idle conn (this epoch's probe answered,
                 nothing stranded) lets the watch stop. *)
              if conn.ka_timer = None then
                if conn_has_interest conn || silence >= ka.ka_interval then
                  rearm_ka eng conn ~at:(Time.add now ka.ka_interval)
                else if not probed_this_epoch then
                  rearm_ka eng conn ~at:(Time.add anchor ka.ka_interval)
            end
      done);
  (* 3. Retransmission timeouts. *)
  Array.iter
    (fun f -> if Flow.check_timeout f ~now > 0 then worked := true)
    eng.flow_arr;
  (* 4. Just-in-time transmission against NIC descriptor slots (§3.1).
     [flow_arr] is maintained at flow add/remove, so the hot path does
     no per-pass list-to-array conversion. *)
  let flows = eng.flow_arr in
  let nf = Array.length flows in
  if nf > 0 then begin
    let idle_rounds = ref 0 in
    while Nic.tx_slots_free t.nic > 0 && !idle_rounds < nf do
      let f = flows.(eng.tx_rr mod nf) in
      eng.tx_rr <- eng.tx_rr + 1;
      if Flow.ready_to_emit f ~now then begin
        match Flow.emit f ~now ~gen:t.gen with
        | Some pkt ->
            if Nic.try_transmit t.nic pkt then begin
              incr pkts;
              worked := true;
              cost := !cost + costs.Sim.Costs.pony_tx_per_packet;
              idle_rounds := 0
            end
        | None -> incr idle_rounds
      end
      else incr idle_rounds
    done;
    (* Bare acks for flows that owe one and sent nothing. *)
    Array.iter
      (fun f ->
        if Flow.ack_owed f && Nic.tx_slots_free t.nic > 0 then begin
          match Flow.make_ack f ~now ~gen:t.gen with
          | Some pkt ->
              if Nic.try_transmit t.nic pkt then begin
                worked := true;
                cost := !cost + Time.scale costs.Sim.Costs.pony_tx_per_packet 0.4
              end
          | None -> ()
        end)
      flows
  end;
  (* 5. Re-arm the pacing/retransmit timer. *)
  arm_timer eng;
  if not !worked then Engine.No_work
  else begin
    (* Batching discount on per-packet work (§3.1: "opportunistically
       exploits batching for efficiency"). *)
    let discount =
      Float.min costs.Sim.Costs.batch_max_saving
        (costs.Sim.Costs.batch_amortization *. float_of_int (max 0 (!pkts - 1)))
    in
    Engine.Worked (Time.scale !cost (1.0 -. discount))
  end

(* -- Module / engine construction ---------------------------------------- *)

let engine_queue_delay eng now =
  let ring_age =
    Squeue.Spsc.oldest_age (Nic.rx_ring eng.e_host.nic ~queue:eng.rxq) ~now
  in
  let cmd_age =
    List.fold_left
      (fun acc c -> Time.max acc (Squeue.Spsc.oldest_age c.cmd_q ~now))
      ring_age eng.eclients
  in
  (* Transmit backlog counts too: a flow with queued segments it cannot
     drain is just as CPU-bottlenecked as a full receive ring. *)
  List.fold_left
    (fun acc f -> Time.max acc (Flow.queue_age f ~now))
    cmd_age eng.flow_list

let new_engine t =
  let eid = List.length t.engs in
  let nq = (Nic.config t.nic).Nic.num_rx_queues in
  if eid >= nq then failwith "Pony: more engines than NIC rx queues";
  (* Tie the knot between the engine record and its run closure. *)
  let eng_ref = ref None in
  let with_eng f default = match !eng_ref with Some e -> f e | None -> default in
  let ename = Printf.sprintf "pony%d@%d" eid (Nic.addr t.nic) in
  let core =
    Engine.create ~name:ename
      ~run:(fun () -> with_eng (fun e -> engine_run e ()) Engine.No_work)
      ~queue_delay:(fun now -> with_eng (fun e -> engine_queue_delay e now) 0)
      ~state_bytes:(fun () ->
        with_eng
          (fun e ->
            (2048 * List.length e.flow_list) + (512 * List.length e.eclients))
          0)
      ()
  in
  let eng =
    {
      eid;
      e_host = t;
      core;
      rxq = eid;
      eclients = [];
      flows = Hashtbl.create 16;
      flow_list = [];
      flow_arr = [||];
      conn_arena = Memory.Arena.create ~initial:64 ();
      conns = Hashtbl.create 32;
      by_endpoints = Hashtbl.create 32;
      assembly = Hashtbl.create 32;
      wheel = Sim.Wheel.create ~loop:t.lp ();
      deadline_due = Queue.create ();
      ka_due = Queue.create ();
      timer = None;
      served_one_sided = 0;
      tx_rr = 0;
      last_epoch = 0;
      pressure = Overload.Pressure.create ~loop:t.lp ~name:ename ();
    }
  in
  eng_ref := Some eng;
  t.engs <- t.engs @ [ eng ];
  Engine.add t.group eng.core;
  eng.last_epoch <- Engine.epoch eng.core;
  (* Engine state-machine legality: epochs only move forward, a
     wedged/migrating instance must not make batch progress, and the
     depth-1 control mailbox never runs a deficit. *)
  let seen_epoch = ref (Engine.epoch core) in
  let frozen_steps = ref None in
  Check.Invariant.register ~name:(ename ^ ".legal") (fun () ->
      let ep = Engine.epoch core in
      if ep < !seen_epoch then
        Some (Printf.sprintf "epoch moved backwards: %d -> %d" !seen_epoch ep)
      else begin
        seen_epoch := ep;
        let mb = Engine.mailbox core in
        let posted = Squeue.Mailbox.posted mb
        and serviced = Squeue.Mailbox.serviced mb in
        if serviced > posted then
          Some
            (Printf.sprintf "mailbox serviced %d exceeds posted %d" serviced
               posted)
        else if Engine.is_wedged core || Engine.is_migrating core then begin
          let steps = Engine.steps core in
          match !frozen_steps with
          | Some (fep, fsteps) when fep = ep && steps > fsteps ->
              Some
                (Printf.sprintf
                   "%s engine made progress: %d batches since freeze"
                   (if Engine.is_wedged core then "wedged" else "migrating")
                   (steps - fsteps))
          | Some (fep, _) when fep = ep -> None
          | _ ->
              frozen_steps := Some (ep, steps);
              None
        end
        else begin
          frozen_steps := None;
          None
        end
      end);
  (* Receive notification policy depends on the group's scheduling mode
     (§2.4): interrupts for spreading, polling kicks otherwise. *)
  (match Engine.group_mode t.group with
  | Engine.Spreading _ | Engine.Spreading_class _ ->
      Nic.set_rx_notify t.nic ~queue:eng.rxq
        (Nic.Interrupt (fun () -> Engine.notify eng.core))
  | Engine.Dedicating _ | Engine.Compacting _ ->
      Nic.set_rx_notify t.nic ~queue:eng.rxq
        (Nic.Soft (fun () -> Engine.notify eng.core)));
  eng

let create ~directory ~control ~machine ~nic ~group ?(engines = 1)
    ?(use_copy_engine = false) ?(wire_versions = Wire.supported_versions)
    ?(op_pool_bytes = 1 lsl 30) ?keepalive () =
  if engines <= 0 then invalid_arg "Pony.create: engines";
  if op_pool_bytes <= 0 then invalid_arg "Pony.create: op_pool_bytes";
  (match keepalive with
  | Some { ka_interval; ka_miss_budget } ->
      if ka_interval <= 0 || ka_miss_budget < 0 then
        invalid_arg "Pony.create: keepalive"
  | None -> ());
  let lp = Sched.loop machine in
  let labels = [ ("host", string_of_int (Nic.addr nic)) ] in
  let c_corrupt = Stats.Registry.counter ~labels "pony_corrupt_dropped" in
  let c_resync = Stats.Registry.counter ~labels "pony_flow_resyncs" in
  let c_busy = Stats.Registry.counter ~labels "overload_busy_nacks" in
  let c_pool_drop = Stats.Registry.counter ~labels "overload_rx_pool_drops" in
  let c_conn_est = Stats.Registry.counter ~labels "conn_established" in
  let c_conn_closed = Stats.Registry.counter ~labels "conn_closed" in
  let c_conn_reset = Stats.Registry.counter ~labels "conn_resets" in
  let c_peer_death = Stats.Registry.counter ~labels "peer_conn_deaths" in
  let c_peer_dead_op = Stats.Registry.counter ~labels "peer_dead_ops" in
  let c_stale_drop = Stats.Registry.counter ~labels "peer_stale_drops" in
  let c_peer_restart = Stats.Registry.counter ~labels "peer_restarts" in
  let c_ka_probe = Stats.Registry.counter ~labels "peer_keepalive_probes" in
  let op_pool =
    Memory.Pool.create
      ~name:(Printf.sprintf "pony_op_pool@%d" (Nic.addr nic))
      ~capacity_bytes:op_pool_bytes
  in
  ignore
    (Stats.Registry.gauge_fn ~labels "overload_op_pool_frac" (fun () ->
         float_of_int (Memory.Pool.in_use op_pool)
         /. float_of_int (Memory.Pool.capacity op_pool)));
  let t =
    {
      dir = directory;
      ctl = control;
      mach = machine;
      nic;
      group;
      lp;
      cost = Sched.costs machine;
      use_ce = use_copy_engine;
      ce = (if use_copy_engine then Some (Nic.Copy_engine.create ~loop:lp ()) else None);
      versions = wire_versions;
      engs = [];
      next_cid = 0;
      next_session = 0;
      clients_arena = Memory.Arena.create ~initial:32 ();
      clients_tbl = Hashtbl.create 32;
      gen = Packet.Id_gen.create ();
      rr_assign = 0;
      c_corrupt;
      corrupt_base = Stats.Counter.value c_corrupt;
      c_resync;
      resync_base = Stats.Counter.value c_resync;
      op_pool;
      c_busy;
      busy_base = Stats.Counter.value c_busy;
      c_pool_drop;
      pool_drop_base = Stats.Counter.value c_pool_drop;
      incarnation = 0;
      alive = true;
      ka = keepalive;
      peer_incs = Hashtbl.create 8;
      c_conn_est;
      conn_est_base = Stats.Counter.value c_conn_est;
      c_conn_closed;
      conn_closed_base = Stats.Counter.value c_conn_closed;
      c_conn_reset;
      conn_reset_base = Stats.Counter.value c_conn_reset;
      c_peer_death;
      peer_death_base = Stats.Counter.value c_peer_death;
      c_peer_dead_op;
      peer_dead_op_base = Stats.Counter.value c_peer_dead_op;
      c_stale_drop;
      stale_drop_base = Stats.Counter.value c_stale_drop;
      c_peer_restart;
      peer_restart_base = Stats.Counter.value c_peer_restart;
      c_ka_probe;
      ka_probe_base = Stats.Counter.value c_ka_probe;
    }
  in
  Hashtbl.replace directory.hosts (Nic.addr nic) t;
  (* Op-pool byte conservation: per-owner charges must sum to the live
     total at all times (Cadence), and every byte must be back by
     quiesce — an admission charge or reassembly alloc that never
     returns is a leak. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "pony.pool.%d.consistent" (Nic.addr nic))
    (fun () -> Memory.Pool.check_consistency op_pool);
  Check.Invariant.register ~kind:Check.Invariant.Quiesce_only
    ~name:(Printf.sprintf "pony.pool.%d.drained" (Nic.addr nic))
    (fun () -> Memory.Pool.check_quiesced op_pool);
  (* Orphan-state reclamation (§4.3): no residual transport state may
     be attributable to a dead peer.  The "skip_peer_reclaim" sabotage
     switch proves this check is not vacuous. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "pony.host.%d.peer_reclaim" (Nic.addr nic))
    (fun () -> check_peer_reclaim t);
  (* Attribution conservation: every completed op's per-stage durations
     must sum to its end-to-end latency (checked eagerly at finish; the
     predicate reads the sticky first failure).  "skip_op_attribution"
     proves this one is not vacuous. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "pony.optrace.%d.conserve" (Nic.addr nic))
    Sim.Optrace.conservation_error;
  (* [Sim] cannot depend on [Stats], so the per-stage duration
     histograms ("op_stage_" ^ name) are fed through this hook.
     Re-installed by every host creation: bench sections that clear the
     registry get fresh histograms bound on the next host. *)
  let stage_hists =
    Array.init Sim.Optrace.n_stages (fun i ->
        Stats.Registry.histogram
          ("op_stage_" ^ Sim.Optrace.stage_name (Sim.Optrace.stage_of_index i)))
  in
  Sim.Optrace.set_stage_sink
    (Some (fun si d -> Stats.Histogram.record stage_hists.(si) d));
  (* Steer Pony packets to the destination engine's ring. *)
  Nic.install_steering nic (fun pkt ->
      match pkt.Packet.payload with
      | Wire.Pony { flow; _ } -> flow.Wire.dst_engine
      | _ -> 0);
  Control.register_service control ~service:"pony" (fun msg ->
      match msg with Pony_setup _ -> Pony_ready | other -> other);
  for _ = 1 to engines do
    ignore (new_engine t)
  done;
  t

(* -- Host crash / restart (Fault.Plan.Host_crash) ------------------------ *)

let drain_ring ring =
  let rec go () =
    match Squeue.Spsc.pop ring with Some _ -> go () | None -> ()
  in
  go ()

(* The whole host dies: engines detach, every byte of transport and
   client state is destroyed, and op-pool charges are bulk-reclaimed by
   owner name — late frees from pre-crash allocations become
   generation-checked no-ops.  Parked app threads are kicked so they
   can observe [client_alive] = false and unwind. *)
let crash_host t =
  if t.alive then begin
    t.alive <- false;
    Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony" "host %d crashed"
      (addr t);
    List.iter
      (fun eng ->
        (match eng.timer with
        | Some h ->
            Loop.cancel h;
            eng.timer <- None
        | None -> ());
        if Engine.is_attached eng.core then Engine.remove t.group eng.core;
        (* Packets in the rx ring die with the host's memory. *)
        drain_ring (Nic.rx_ring t.nic ~queue:eng.rxq);
        List.iter
          (fun (akey, a) ->
            Hashtbl.remove eng.assembly akey;
            free_assembly a)
          (sorted_tbl eng.assembly);
        Hashtbl.reset eng.flows;
        eng.flow_list <- [];
        eng.flow_arr <- [||];
        (* Per-conn wheel timers die with their conns; stale fires on
           timers already past cancellation are checked no-ops. *)
        Memory.Arena.iter eng.conn_arena (fun _ conn ->
            cancel_conn_timers conn);
        Memory.Arena.clear eng.conn_arena;
        Hashtbl.reset eng.conns;
        Hashtbl.reset eng.by_endpoints;
        Queue.clear eng.deadline_due;
        Queue.clear eng.ka_due;
        eng.eclients <- [];
        ignore
          (Memory.Pool.release_owner t.op_pool ~owner:(Engine.name eng.core)))
      t.engs;
    fold_clients t
      (fun () c ->
        c.c_dead <- true;
        Hashtbl.reset c.charges;
        Hashtbl.reset c.outstanding;
        ignore (Memory.Pool.release_owner t.op_pool ~owner:c.c_owner);
        match c.app_task with Some task -> Sched.kick task | None -> ())
      ();
    Memory.Arena.clear t.clients_arena;
    Hashtbl.reset t.clients_tbl;
    (* Host memory is gone — including what it knew of peer
       incarnations. *)
    Hashtbl.reset t.peer_incs
  end

let restart_host t =
  if not t.alive then begin
    t.incarnation <- t.incarnation + 1;
    t.alive <- true;
    Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony"
      "host %d restarted (incarnation %d)" (addr t) t.incarnation;
    List.iter
      (fun eng ->
        (* Packets that arrived while the host was down were never
           received by anyone. *)
        drain_ring (Nic.rx_ring t.nic ~queue:eng.rxq);
        if not (Engine.is_attached eng.core) then Engine.add t.group eng.core;
        eng.last_epoch <- Engine.epoch eng.core;
        Engine.notify eng.core)
      t.engs
  end

(* -- Client library ------------------------------------------------------ *)

let create_client ctx t ~name ?(exclusive_engine = false) ?(max_ops = 65536)
    ?max_bytes ?rate_ops_per_sec ?burst_ops () =
  if not t.alive then
    failwith (Printf.sprintf "Pony.create_client: host %d is down" (addr t));
  Control.authenticate ctx t.ctl ~client:name;
  (match Control.call ctx t.ctl ~service:"pony" (Pony_setup name) with
  | Pony_ready -> ()
  | _ -> failwith "Pony: module setup failed");
  let eng =
    if exclusive_engine then new_engine t
    else begin
      let n = List.length t.engs in
      let e = List.nth t.engs (t.rr_assign mod n) in
      t.rr_assign <- t.rr_assign + 1;
      e
    end
  in
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  (* The admission owner doubles as the pool accounting name; qualify
     it with the host so cross-host clients sharing a name stay
     distinguishable in metrics and [Pool.owners]. *)
  let owner = Printf.sprintf "%s@%d" name (addr t) in
  let max_bytes =
    match max_bytes with
    | Some b -> b
    | None -> Memory.Pool.capacity t.op_pool
  in
  let adm =
    Overload.Admission.create ~pool:t.op_pool ~owner ~max_ops ~max_bytes
      ?rate_ops_per_sec ?burst_ops ()
  in
  let clabels = [ ("client", owner) ] in
  let c_shed = Stats.Registry.counter ~labels:clabels "overload_ops_shed" in
  let c_expired = Stats.Registry.counter ~labels:clabels "overload_ops_expired" in
  let client =
    {
      cid;
      cname = name;
      c_host = t;
      c_eng = eng;
      cmd_q = Squeue.Spsc.create ~name:(name ^ ".cmd") ~capacity:cmd_queue_slots ();
      comp_q = Squeue.Spsc.create ~name:(name ^ ".comp") ~capacity:comp_queue_slots ();
      msg_q = Squeue.Spsc.create ~name:(name ^ ".msg") ~capacity:comp_queue_slots ();
      regions = Hashtbl.create 8;
      outstanding = Hashtbl.create 64;
      c_owner = owner;
      c_dead = false;
      adm;
      charges = Hashtbl.create 64;
      c_shed;
      shed_base = Stats.Counter.value c_shed;
      c_expired;
      expired_base = Stats.Counter.value c_expired;
      app_task = None;
      on_delivery = None;
      next_op = 0;
      n_comps = 0;
      n_msgs = 0;
      rx_bytes = 0;
    }
  in
  eng.eclients <- eng.eclients @ [ client ];
  Hashtbl.replace t.clients_tbl cid (Memory.Arena.alloc t.clients_arena client);
  (* Admission accounting bounds and SPSC occupancy: outstanding counts
     stay within quota, every held charge is accounted, and the
     shared-memory queues never report more than their capacity. *)
  Check.Invariant.register ~name:(Printf.sprintf "pony.client.%s" owner)
    (fun () ->
      let ops = Overload.Admission.outstanding_ops adm in
      let bytes = Overload.Admission.outstanding_bytes adm in
      let q_bad (name, len, cap) =
        if len < 0 || len > cap then
          Some (Printf.sprintf "%s occupancy %d outside [0,%d]" name len cap)
        else None
      in
      if ops < 0 || ops > Overload.Admission.op_quota adm then
        Some
          (Printf.sprintf "outstanding ops %d outside [0,%d]" ops
             (Overload.Admission.op_quota adm))
      else if bytes < 0 || bytes > Overload.Admission.byte_quota adm then
        Some
          (Printf.sprintf "outstanding bytes %d outside [0,%d]" bytes
             (Overload.Admission.byte_quota adm))
      else if Hashtbl.length client.charges > ops then
        Some
          (Printf.sprintf "%d held charges exceed %d outstanding ops"
             (Hashtbl.length client.charges) ops)
      else
        List.fold_left
          (fun acc q -> match acc with Some _ -> acc | None -> q_bad q)
          None
          [
            ("cmd_q", Squeue.Spsc.length client.cmd_q,
             Squeue.Spsc.capacity client.cmd_q);
            ("comp_q", Squeue.Spsc.length client.comp_q,
             Squeue.Spsc.capacity client.comp_q);
            ("msg_q", Squeue.Spsc.length client.msg_q,
             Squeue.Spsc.capacity client.msg_q);
          ]);
  client

let register_region ctx client region =
  let t = client.c_host in
  (match Control.call ctx t.ctl ~service:"pony" (Pony_setup client.cname) with
  | Pony_ready -> ()
  | _ -> failwith "Pony: region registration failed");
  Control.register_region t.ctl ~client:client.cname region;
  Memory.Region.register_for_nic region;
  Hashtbl.replace client.regions (Memory.Region.id region) region

let connect ctx client ~dst_host ~dst_client =
  let t = client.c_host in
  (* Out-of-band connection setup and version negotiation (§3.1). *)
  Cpu.Thread.syscall ctx t.cost.Sim.Costs.syscall;
  Cpu.Thread.sleep ctx oob_setup_latency;
  if dst_host = addr t then invalid_arg "Pony.connect: loopback not supported";
  if client.c_dead || not t.alive then
    failwith (Printf.sprintf "Pony.connect: local host %d is down" (addr t));
  let remote_t =
    match Hashtbl.find_opt t.dir.hosts dst_host with
    | Some r -> r
    | None -> failwith "Pony.connect: unknown host"
  in
  if not remote_t.alive then
    failwith (Printf.sprintf "Pony.connect: host %d is down" dst_host);
  let remote_client =
    match find_client remote_t dst_client with
    | Some c -> c
    | None -> failwith "Pony.connect: unknown client"
  in
  (* Out-of-band setup reveals each side's current incarnation; a newer
     stamp than previously recorded tears stale state down before the
     new conn is installed. *)
  let setup_cost = ref 0 in
  ignore (note_peer_inc setup_cost t ~peer:dst_host ~inc:remote_t.incarnation);
  ignore (note_peer_inc setup_cost remote_t ~peer:(addr t) ~inc:t.incarnation);
  let session = t.next_session in
  t.next_session <- session + 1;
  let ckey =
    {
      Wire.initiator_host = addr t;
      initiator_client = client.cid;
      target_host = dst_host;
      target_client = dst_client;
      session;
    }
  in
  let local_eng = client.c_eng in
  let remote_eng = remote_client.c_eng in
  let tx_key =
    {
      Wire.src_host = addr t;
      src_engine = local_eng.eid;
      dst_host;
      dst_engine = remote_eng.eid;
    }
  in
  let local_flow = get_flow local_eng tx_key in
  let remote_flow = get_flow remote_eng (Wire.reverse tx_key) in
  (* A reconnect gets a fresh session, but any predecessor between the
     same client pair still live must die — and reclaim its state — so
     its charges cannot strand behind the new conn.  [by_endpoints]
     tracks the latest conn per endpoint pair, making this O(1) instead
     of a scan of every conn on the engine. *)
  let supersede eng =
    match Hashtbl.find_opt eng.by_endpoints (endpoints_key ckey) with
    | None -> ()
    | Some h -> (
        match Memory.Arena.get eng.conn_arena h with
        | Some old
          when (match old.state with
               | Established | Draining -> true
               | Dead | Closed -> false)
               && Wire.conn_same_endpoints old.ckey ckey ->
            kill_conn setup_cost old ~reason:"superseded by reconnect"
        | Some _ | None -> ())
  in
  supersede local_eng;
  supersede remote_eng;
  let local_conn =
    {
      ckey;
      we_are_initiator = true;
      local = client;
      remote_host = dst_host;
      remote_client = dst_client;
      c_flow = local_flow;
      credit = initial_credit_bytes;
      waiting = Queue.create ();
      state = Established;
      last_heard = Loop.now t.lp;
      ka_sent_at = Loop.now t.lp;
      n_outstanding = 0;
      n_assembly = 0;
      dl_timer = None;
      dl_at = 0;
      dl_queued = false;
      ka_timer = None;
      ka_queued = false;
      ka_base = Loop.now t.lp;
      stage_counts = Array.make Sim.Optrace.n_stages 0;
    }
  in
  let remote_conn =
    {
      ckey;
      we_are_initiator = false;
      local = remote_client;
      remote_host = addr t;
      remote_client = client.cid;
      c_flow = remote_flow;
      credit = initial_credit_bytes;
      waiting = Queue.create ();
      state = Established;
      last_heard = Loop.now t.lp;
      ka_sent_at = Loop.now t.lp;
      n_outstanding = 0;
      n_assembly = 0;
      dl_timer = None;
      dl_at = 0;
      dl_queued = false;
      ka_timer = None;
      ka_queued = false;
      ka_base = Loop.now t.lp;
      stage_counts = Array.make Sim.Optrace.n_stages 0;
    }
  in
  add_conn local_eng local_conn;
  add_conn remote_eng remote_conn;
  (* Start the dead-peer watch on both halves right away: a conn whose
     peer dies before any traffic must still be detected. *)
  ensure_ka local_eng local_conn ~now:(Loop.now t.lp);
  ensure_ka remote_eng remote_conn ~now:(Loop.now remote_t.lp);
  Stats.Counter.incr t.c_conn_est;
  Stats.Counter.incr remote_t.c_conn_est;
  (* Credit conservation: sends consume, grants and Busy-NACKs return.
     Credit going negative means an over-consume; exceeding the initial
     grant means a double-return (e.g. a Busy-NACK for an op whose
     credit a grant already refunded). *)
  if Check.Invariant.enabled () then begin
    let conn_label c =
      Printf.sprintf "pony.conn.%d.%d->%d.%d%s" ckey.Wire.initiator_host
        ckey.Wire.initiator_client ckey.Wire.target_host
        ckey.Wire.target_client
        (if c.we_are_initiator then ".init" else ".tgt")
    in
    List.iter
      (fun c ->
        Check.Invariant.register ~name:(conn_label c ^ ".credit") (fun () ->
            if c.credit < 0 then
              Some (Printf.sprintf "credit %d went negative" c.credit)
            else if c.credit > initial_credit_bytes then
              Some
                (Printf.sprintf "credit %d exceeds initial grant %d" c.credit
                   initial_credit_bytes)
            else None))
      [ local_conn; remote_conn ]
  end;
  local_conn

(* Client ids are assigned in creation order, and apps spawned at the
   same instant race for them — the perturbation sweep caught an
   overload-workload victim dialing client 0 and reaching the wrong
   server under a perturbed tie-break.  Resolving by name instead makes
   the destination independent of registration order. *)
let connect_by_name ctx client ~dst_host ~dst_name =
  let t = client.c_host in
  let remote_t =
    match Hashtbl.find_opt t.dir.hosts dst_host with
    | Some r -> r
    | None -> failwith "Pony.connect: unknown host"
  in
  let matches =
    fold_clients remote_t
      (fun acc c -> if c.cname = dst_name then c.cid :: acc else acc)
      []
  in
  match matches with
  | [ cid ] -> connect ctx client ~dst_host ~dst_client:cid
  | [] ->
      failwith
        (Printf.sprintf "Pony.connect: no client named %S on host %d" dst_name
           dst_host)
  | _ ->
      failwith
        (Printf.sprintf "Pony.connect: client name %S ambiguous on host %d"
           dst_name dst_host)

(* Reconnect helper: [connect_by_name] raises [Failure] while the peer
   host is down or its service has not re-registered; retry on the same
   backoff policy shape as [send_with_retry].  [None] when attempts run
   out.  With session incarnations underneath, a successful reconnect
   can never be confused with the pre-crash conn. *)
let connect_with_retry ctx client ~dst_host ~dst_name
    ?(policy = Overload.Retry.default_policy) () =
  if policy.Overload.Retry.max_attempts <= 0 then
    invalid_arg "Pony.connect_with_retry: max_attempts";
  let rec attempt n =
    if Overload.Retry.attempts_exhausted policy ~attempt:n then None
    else begin
      let backoff = Overload.Retry.delay_before policy ~attempt:n in
      if backoff > 0 then Cpu.Thread.sleep ctx backoff;
      match connect_by_name ctx client ~dst_host ~dst_name with
      | conn -> Some conn
      | exception Failure _ -> attempt (n + 1)
    end
  in
  attempt 1

(* Post a command into the shared-memory command queue (§3.1). *)
let post_command ctx conn cmd =
  let client = conn.local in
  let t = client.c_host in
  if client.app_task = None then client.app_task <- Some (Cpu.Thread.task ctx);
  Cpu.Thread.compute ctx t.cost.Sim.Costs.client_command_post;
  let rec push () =
    if not (Squeue.Spsc.push client.cmd_q ~now:(Loop.now t.lp) cmd) then begin
      Cpu.Thread.sleep ctx (Time.us 2);
      push ()
    end
  in
  push ();
  Engine.notify client.c_eng.core

let fresh_op client =
  let id = client.next_op in
  client.next_op <- id + 1;
  id

(* Refusal status for new work on a conn that can no longer carry it;
   [None] means go ahead.  Dead conns answer [Peer_dead] so callers can
   distinguish peer failure (reconnect) from flow-control rejection
   (back off and retry). *)
let conn_refusal conn =
  if conn.local.c_dead || not conn.local.c_host.alive then Some Wire.Rejected
  else
    match conn.state with
    | Established -> None
    | Dead -> Some Wire.Peer_dead
    | Draining | Closed -> Some Wire.Rejected

(* -- Engine-side (vhost backend) interface ------------------------------ *)
(* These run on engine cores (no thread ctx, no blocking): the guest mux
   drains tenant rings from an engine pass and feeds Pony directly. *)

let set_delivery_hook client f = client.on_delivery <- Some f

let conn_cmd_free conn =
  Squeue.Spsc.capacity conn.local.cmd_q - Squeue.Spsc.length conn.local.cmd_q

let engine_post_send conn ~now ?(stream = 0) ?deadline ~bytes () =
  let client = conn.local in
  let op_id = fresh_op client in
  ot_start conn op_id ~kind:"guest_send" ~bytes;
  match conn_refusal conn with
  | Some status ->
      (* Lifecycle refusal, completed inline (no thread ctx here). *)
      ot_finish conn (ot_key conn op_id) ~status;
      if status = Wire.Peer_dead then
        Stats.Counter.incr client.c_host.c_peer_dead_op;
      if
        Squeue.Spsc.push client.comp_q ~now
          {
            comp_op = op_id;
            status;
            bytes;
            value = None;
            issued_at = now;
            completed_at = now;
          }
      then begin
        client.n_comps <- client.n_comps + 1;
        match client.on_delivery with Some f -> f () | None -> ()
      end;
      op_id
  | None ->
      let cmd =
        C_send { cmd_conn = conn; op_id; stream; bytes; issued = now; deadline }
      in
      (* No admission here: the submitting backend owns accounting (the
         guest mux charges the tenant's quota before posting), and no entry
         lands in [charges], so the completion-side release is a no-op. *)
      if not (Squeue.Spsc.push client.cmd_q ~now cmd) then
        invalid_arg
          (Printf.sprintf
             "Pony.engine_post_send(%s): command queue full (check \
              conn_cmd_free first)"
             client.cname);
      Engine.notify client.c_eng.core;
      op_id

let engine_poll_completion client = Squeue.Spsc.pop client.comp_q
let engine_poll_message client = Squeue.Spsc.pop client.msg_q

(* Admission rejections and lifecycle refusals complete locally on the
   submitting thread — the op never reaches an engine, the app sees a
   completion, never an exception. *)
let complete_locally ctx client ~op_id ~bytes ~status =
  let now = Cpu.Thread.now ctx in
  if
    Squeue.Spsc.push client.comp_q ~now
      {
        comp_op = op_id;
        status;
        bytes;
        value = None;
        issued_at = now;
        completed_at = now;
      }
  then client.n_comps <- client.n_comps + 1

let reject_locally ctx client ~op_id ~bytes =
  complete_locally ctx client ~op_id ~bytes ~status:Wire.Rejected

let refuse_locally ctx conn ~op_id ~bytes ~status =
  if status = Wire.Peer_dead then
    Stats.Counter.incr conn.local.c_host.c_peer_dead_op;
  complete_locally ctx conn.local ~op_id ~bytes ~status

let send_message ctx conn ?(stream = 0) ?deadline ~bytes () =
  if bytes < 0 then invalid_arg "Pony.send_message";
  let client = conn.local in
  let op_id = fresh_op client in
  ot_start conn op_id ~kind:"send" ~bytes;
  (match conn_refusal conn with
  | Some status ->
      ot_finish conn (ot_key conn op_id) ~status;
      refuse_locally ctx conn ~op_id ~bytes ~status
  | None -> (
      match
        Overload.Admission.admit client.adm ~now:(Cpu.Thread.now ctx) ~bytes
      with
      | Overload.Admission.Rejected _ ->
          ot_finish conn (ot_key conn op_id) ~status:Wire.Rejected;
          reject_locally ctx client ~op_id ~bytes
      | Overload.Admission.Admitted charge ->
          Hashtbl.replace client.charges op_id charge;
          ot_stamp conn (ot_key conn op_id) Sim.Optrace.Admitted;
          post_command ctx conn
            (C_send
               {
                 cmd_conn = conn;
                 op_id;
                 stream;
                 bytes;
                 issued = Cpu.Thread.now ctx;
                 deadline;
               })));
  op_id

(* Payload bytes an op will move — what admission charges for it. *)
let one_sided_bytes = function
  | Wire.Read { len; _ } | Wire.Write { len; _ } | Wire.Scan_read { len; _ } ->
      len
  | Wire.Indirect_read { indices; len; _ } -> len * List.length indices

let one_sided ?deadline ctx conn op =
  let client = conn.local in
  let op_id = fresh_op client in
  let bytes = one_sided_bytes op in
  ot_start conn op_id ~kind:"one_sided" ~bytes;
  (match conn_refusal conn with
  | Some status ->
      ot_finish conn (ot_key conn op_id) ~status;
      refuse_locally ctx conn ~op_id ~bytes ~status
  | None -> (
      match
        Overload.Admission.admit client.adm ~now:(Cpu.Thread.now ctx) ~bytes
      with
      | Overload.Admission.Rejected _ ->
          ot_finish conn (ot_key conn op_id) ~status:Wire.Rejected;
          reject_locally ctx client ~op_id ~bytes
      | Overload.Admission.Admitted charge ->
          Hashtbl.replace client.charges op_id charge;
          ot_stamp conn (ot_key conn op_id) Sim.Optrace.Admitted;
          post_command ctx conn
            (C_one_sided
               { cmd_conn = conn; op_id; op; issued = Cpu.Thread.now ctx; deadline })));
  op_id

let one_sided_read ctx conn ~region ~off ~len =
  one_sided ctx conn (Wire.Read { region; off; len })

let one_sided_write ctx conn ~region ~off ~len =
  one_sided ctx conn (Wire.Write { region; off; len })

let indirect_read ctx conn ~table_region ~data_region ~indices ~len =
  one_sided ctx conn (Wire.Indirect_read { table_region; data_region; indices; len })

let scan_read ctx conn ~region ~scan_limit ~needle ~len =
  one_sided ctx conn (Wire.Scan_read { region; scan_limit; needle; len })

let poll_completion ctx client =
  let t = client.c_host in
  if client.app_task = None then client.app_task <- Some (Cpu.Thread.task ctx);
  Cpu.Thread.compute ctx t.cost.Sim.Costs.client_completion_poll;
  Squeue.Spsc.pop client.comp_q

let rec await_completion ctx client =
  match poll_completion ctx client with
  | Some c -> c
  | None ->
      Cpu.Thread.wait ctx;
      await_completion ctx client

let poll_message ctx client =
  let t = client.c_host in
  if client.app_task = None then client.app_task <- Some (Cpu.Thread.task ctx);
  Cpu.Thread.compute ctx t.cost.Sim.Costs.client_completion_poll;
  Squeue.Spsc.pop client.msg_q

let rec await_message ctx client =
  match poll_message ctx client with
  | Some m -> m
  | None ->
      Cpu.Thread.wait ctx;
      await_message ctx client

(* Deadline-bounded awaits: [None] on expiry.  The wake-up at the
   deadline is a one-shot loop timer (cancelled once the wait ends);
   nothing can be lost because the queue is re-polled after every
   wake. *)
let await_until poll ctx client ~deadline =
  let t = client.c_host in
  let rec go () =
    match poll ctx client with
    | Some v -> Some v
    | None ->
        if Cpu.Thread.now ctx >= deadline then None
        else begin
          let task = Cpu.Thread.task ctx in
          let h = Loop.at t.lp deadline (fun () -> Sched.kick task) in
          Cpu.Thread.wait ctx;
          Loop.cancel h;
          go ()
        end
  in
  go ()

let await_completion_until ctx client ~deadline =
  await_until poll_completion ctx client ~deadline

let await_message_until ctx client ~deadline =
  await_until poll_message ctx client ~deadline

(* Graceful close: the conn stops accepting new sends immediately;
   credit-waiting ops still drain, then the engine sends [Conn_reset]
   and tombstones the conn as [Closed]. *)
let close ctx conn =
  match conn.state with
  | Dead | Closed | Draining -> ()
  | Established ->
      conn.state <- Draining;
      post_command ctx conn (C_close { cmd_conn = conn })

(* Bounded-retry send: backoff on Rejected / Timed_out / Busy, a
   deadline per attempt from the policy.  The helper owns the
   completion queue while it runs (completions of other outstanding
   ops are discarded), so it suits closed-loop callers. *)
let send_with_retry ctx conn ?(stream = 0)
    ?(policy = Overload.Retry.default_policy) ~bytes () =
  if policy.Overload.Retry.max_attempts <= 0 then
    invalid_arg "Pony.send_with_retry: max_attempts";
  let client = conn.local in
  let rec attempt n last =
    if Overload.Retry.attempts_exhausted policy ~attempt:n then
      Error (Option.get last)
    else begin
      let backoff = Overload.Retry.delay_before policy ~attempt:n in
      if backoff > 0 then Cpu.Thread.sleep ctx backoff;
      let deadline =
        Option.map
          (fun budget -> Time.add (Cpu.Thread.now ctx) budget)
          policy.Overload.Retry.op_timeout
      in
      let op = send_message ctx conn ~stream ?deadline ~bytes () in
      let rec wait_for_op () =
        let c = await_completion ctx client in
        if c.comp_op = op then c else wait_for_op ()
      in
      let c = wait_for_op () in
      match c.status with
      | Wire.Ok -> Ok c
      | Wire.Rejected | Wire.Timed_out | Wire.Busy -> attempt (n + 1) (Some c)
      | _ -> Error c
    end
  in
  attempt 1 None
