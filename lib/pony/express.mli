(** Pony Express: Snap's reliable transport and communications stack
    (§3).

    One [Pony.t] per host owns that host's Pony engines, loaded into a
    caller-supplied engine group (so any of the three scheduling modes
    applies).  Applications attach as {e clients}: the control plane
    authenticates them and bootstraps shared-memory command/completion
    queues; operations are asynchronous commands, completions are polled
    or awaited.  Two-sided messaging and one-sided operations (read,
    write, indirect read, scan-and-read) are implemented over reliable
    {!Flow}s with Timely congestion control and a flow mapper that
    multiplexes application connections onto engine-pair flows.

    Connection setup uses the out-of-band channel the paper describes
    for version negotiation (§3.1); here it is modeled as a
    control-plane exchange with a fixed latency rather than simulated
    packets. *)

type t
type client
type conn

(** Connection lifecycle (§4.3): [Established] carries traffic;
    [Draining] is a close in progress (credit-waiting ops still drain,
    new sends refuse); [Dead] means the peer was declared gone
    (keepalive miss budget, [Conn_reset], peer restart or host crash)
    and every stranded op has completed [Peer_dead]; [Closed] is a
    completed local close.  Dead/Closed conns remain as tombstones so
    late packets answer with a reset instead of resurrecting state. *)
type conn_state = Established | Draining | Dead | Closed

val conn_state_to_string : conn_state -> string

(** Opt-in dead-peer detection: a conn silent for [ka_interval] is
    probed; the peer is declared dead after [ka_interval *
    (ka_miss_budget + 1)] of silence.  Off by default — a keepalive
    timer keeps an otherwise idle host from quiescing, so only
    workloads that expect peer failure arm it. *)
type keepalive = { ka_interval : Sim.Time.t; ka_miss_budget : int }

(** The bounded-retry backoff policy {!send_with_retry} and
    {!connect_with_retry} consume, re-exported so callers can build
    policies without a direct dependency on the overload library. *)
module Retry = Overload.Retry

(** Cluster-wide name service standing in for the out-of-band (TCP)
    setup channel. *)
module Directory : sig
  type dir

  val create : unit -> dir
end

val create :
  directory:Directory.dir ->
  control:Control.t ->
  machine:Cpu.Sched.machine ->
  nic:Nic.t ->
  group:Engine.group ->
  ?engines:int ->
  ?use_copy_engine:bool ->
  ?wire_versions:int list ->
  ?op_pool_bytes:int ->
  ?keepalive:keepalive ->
  unit ->
  t
(** Instantiate the Pony module on a host with [engines] (default 1)
    pre-loaded shared engines added to [group].  The module takes over
    NIC steering and receive notifications for its packets.
    [use_copy_engine] (default false) offloads receive-side payload
    copies to the I/OAT model (§3.4).  [wire_versions] is the set of
    wire-protocol versions this release speaks; flows to peers negotiate
    the least common denominator, modeling mixed-release fleets during
    the weekly rollout (§3.1).  [op_pool_bytes] (default 1 GiB) sizes
    the host's op-memory pool: admission charges, receive-side
    reassembly state and packet ingest all draw from it, so overload
    surfaces as [Rejected] completions and counted drops instead of
    unbounded memory growth (§2.5, §3.3).  [keepalive] (default off)
    arms per-connection dead-peer detection.  Requires
    [engines <= num NIC rx queues]. *)

(** {1 Host failure (crash / restart)} *)

val crash_host : t -> unit
(** Whole-host failure (the [Fault.Plan.Host_crash] hook): every engine
    detaches, all transport and client state — connections, flows,
    reassembly, in-flight ops, admission and pool charges — is
    destroyed, packets in the NIC rings are lost, and parked
    application threads are woken so they can observe
    [client_alive = false].  Idempotent while down. *)

val restart_host : t -> unit
(** Bring a crashed host back with a {e fresh incarnation number}:
    engines re-attach and packets stamped with the old incarnation are
    rejected by peers ([peer_stale_drops]) rather than resurrecting
    pre-crash flows.  Clients and connections do not survive — the
    application re-creates clients and reconnects. *)

val incarnation : t -> int
val host_alive : t -> bool

val machine : t -> Cpu.Sched.machine
val addr : t -> Memory.Packet.addr
val num_engines : t -> int
val engine_handle : t -> int -> Engine.t
(** The engine-framework handle of the i-th engine (for upgrades,
    steering, telemetry). *)

(** {1 Clients (the Pony Express client library API)} *)

val create_client :
  Cpu.Thread.ctx ->
  t ->
  name:string ->
  ?exclusive_engine:bool ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  client
(** Attach an application: authenticates with the control plane and
    sets up command/completion queues over shared memory.  With
    [exclusive_engine] (default false) a fresh engine is instantiated
    for this client and added to the group — stronger isolation at
    higher cost (§3.1); otherwise a pre-loaded shared engine is
    assigned round-robin.

    The remaining parameters configure this client's admission quotas
    (see {!Overload.Admission}): at most [max_ops] outstanding ops
    (default 65536), at most [max_bytes] outstanding payload bytes
    charged against the host op pool (default: the whole pool), and an
    optional token-bucket submission rate.  The permissive defaults
    keep well-behaved applications unthrottled; servers hosting
    untrusted clients set real quotas. *)

val client_id : client -> int
val client_name : client -> string
val client_engine : client -> Engine.t

val client_alive : client -> bool
(** False once the owning host has crashed: the client's queues and
    charges are gone, and every operation on it refuses with
    [Rejected].  A restart does not resurrect clients — re-create
    them. *)

val register_region :
  Cpu.Thread.ctx -> client -> Memory.Region.t -> unit
(** Share a memory region with Snap (and register it for zero-copy and
    for one-sided remote access), via the control plane. *)

val connect :
  Cpu.Thread.ctx -> client -> dst_host:Memory.Packet.addr -> dst_client:int -> conn
(** Open an application-level connection to a remote client.  The flow
    mapper attaches it to the engine-pair flow, creating the flow (and
    negotiating the wire version) if it is the first connection between
    the two engines. *)

val connect_by_name :
  Cpu.Thread.ctx -> client -> dst_host:Memory.Packet.addr -> dst_name:string -> conn
(** [connect], resolving the destination by client name.  Client ids are
    handed out in creation order, so two apps spawned at the same instant
    race for them and an id-addressed connect can reach the wrong client
    under a perturbed schedule (the determinism sweep caught exactly
    this).  Raises if the name is absent or ambiguous on [dst_host]. *)

val connect_with_retry :
  Cpu.Thread.ctx ->
  client ->
  dst_host:Memory.Packet.addr ->
  dst_name:string ->
  ?policy:Overload.Retry.policy ->
  unit ->
  conn option
(** Auto-reconnect: retries {!connect_by_name} with the policy's
    backoff schedule while the peer host is down or the named service
    has not yet re-registered.  [None] once attempts run out.  Because
    connections carry session incarnations, a conn obtained here can
    never be confused with a pre-crash one. *)

val conn_peer : conn -> Memory.Packet.addr * int
val conn_state : conn -> conn_state

val conn_last_heard : conn -> Sim.Time.t
(** Virtual time any item for this conn last arrived (keepalive
    freshness). *)

val close : Cpu.Thread.ctx -> conn -> unit
(** Graceful close: the conn refuses new sends immediately
    ([Draining]), already-queued ops still drain, then the peer is told
    ([Conn_reset]) and the conn tombstones as [Closed].  No-op on a
    conn already draining, dead or closed. *)

(** {1 Asynchronous operations} *)

val send_message :
  Cpu.Thread.ctx -> conn -> ?stream:int -> ?deadline:Sim.Time.t -> bytes:int -> unit -> int
(** Two-sided message (§3.3).  Returns the operation id; a completion
    arrives once the transport has taken responsibility.  Messages on
    different streams do not head-of-line block each other.

    Overload semantics: if admission control refuses the op, a
    [Rejected] completion is delivered immediately (the op never
    reaches an engine).  With [~deadline] (absolute virtual time), an
    op the engine has not started by then completes [Timed_out] and is
    shed at dequeue.  If the destination client's incoming queue is
    full, the receiver NACKs: the op's credit returns and a second,
    [Busy], completion follows the [Ok] one. *)

val one_sided_read :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val one_sided_write :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val indirect_read :
  Cpu.Thread.ctx ->
  conn ->
  table_region:int ->
  data_region:int ->
  indices:int list ->
  len:int ->
  int
(** The custom batched indirect read of §3.2: one network operation
    resolves up to eight indirections remotely. *)

val scan_read :
  Cpu.Thread.ctx ->
  conn ->
  region:int ->
  scan_limit:int ->
  needle:int64 ->
  len:int ->
  int

(** {1 Completions and incoming messages} *)

type completion = {
  comp_op : int;
  status : Wire.status;
  bytes : int;  (** Payload bytes moved (reads: bytes returned). *)
  value : int64 option;
      (** First 8 bytes of one-sided read results (for correctness
          checks against backed regions). *)
  issued_at : Sim.Time.t;
  completed_at : Sim.Time.t;
}

type incoming = {
  msg_conn : conn;  (** Local handle; usable to reply. *)
  msg_op : int;
  stream : int;
  msg_bytes : int;
}

val poll_completion : Cpu.Thread.ctx -> client -> completion option
val await_completion : Cpu.Thread.ctx -> client -> completion
(** Parks (or spin-polls, per the calling task's idle policy) until a
    completion arrives. *)

val poll_message : Cpu.Thread.ctx -> client -> incoming option
val await_message : Cpu.Thread.ctx -> client -> incoming

val await_completion_until :
  Cpu.Thread.ctx -> client -> deadline:Sim.Time.t -> completion option
(** {!await_completion} bounded by an absolute deadline: [None] if no
    completion arrived by then.  The caller's op may still complete
    later — poll again or keep a higher-level timeout. *)

val await_message_until :
  Cpu.Thread.ctx -> client -> deadline:Sim.Time.t -> incoming option
(** {!await_message} bounded by an absolute deadline. *)

(** {1 Engine-side (vhost backend) interface}

    For in-Snap consumers that drive a client from an engine pass (the
    guest mux) rather than from an application thread: no thread ctx,
    no blocking, no client-side admission — the backend owns accounting
    and must respect {!conn_cmd_free} before posting. *)

val set_delivery_hook : client -> (unit -> unit) -> unit
(** Invoked on every completion or message pushed to this client
    (typically [Engine.notify] on the backend's engine). *)

val conn_cmd_free : conn -> int
(** Free slots in the client's command queue. *)

val engine_post_send :
  conn -> now:Sim.Time.t -> ?stream:int -> ?deadline:Sim.Time.t -> bytes:int -> unit -> int
(** Post a two-sided send from engine context, bypassing client
    admission (the caller has already charged its own accounting).
    Returns the op id.  Raises [Invalid_argument] if the command queue
    is full. *)

val engine_poll_completion : client -> completion option
val engine_poll_message : client -> incoming option

val send_with_retry :
  Cpu.Thread.ctx ->
  conn ->
  ?stream:int ->
  ?policy:Overload.Retry.policy ->
  bytes:int ->
  unit ->
  (completion, completion) result
(** Closed-loop send with bounded retries: attempts up to
    [policy.max_attempts] sends, each carrying a deadline of
    [policy.op_timeout], backing off exponentially between attempts and
    retrying on [Rejected], [Timed_out] and [Busy].  [Ok c] on success;
    [Error last] with the final completion when attempts run out (or on
    a non-retryable status — notably [Peer_dead], which retrying on the
    same conn could never cure; reconnect instead).  The helper
    consumes this client's completion queue while it runs, so it is
    intended for callers with no other outstanding ops. *)

(** {1 Telemetry} *)

val completions_delivered : client -> int
val messages_delivered : client -> int
val bytes_received : client -> int
val flow_stats : t -> (Wire.flow_key * int * int) list
(** Per-flow (key, delivered, retransmits). *)

val corrupt_dropped : t -> int
(** Packets this host discarded because the end-to-end integrity check
    failed (injected corruption); each is recovered by retransmission. *)

val flow_resyncs : t -> int
(** Engine-restart resynchronizations performed: each counts one epoch
    bump after which at least one in-flight packet was requeued for
    immediate retransmission (§4.3 crash recovery / upgrade rollback). *)

val flow_versions : t -> (Wire.flow_key * int) list
(** The negotiated wire-protocol version of each flow. *)

val one_sided_served : t -> int
(** One-sided requests this host's engines executed. *)

(** {1 Overload telemetry} *)

val op_pool : t -> Memory.Pool.t
(** The host's op-memory pool; workloads call
    [Memory.Pool.assert_quiesced] on it after quiescing to prove no op
    bytes leaked. *)

val quota_rejected : t -> int
(** Ops refused by admission control across this host's clients. *)

val ops_shed : t -> int
(** Ops dropped at dequeue under Saturated pressure. *)

val ops_expired : t -> int
(** Ops whose deadline passed before the engine started them. *)

val busy_nacks : t -> int
(** Messages shed at delivery because the destination client's
    incoming queue was full (each one NACKed back to the sender). *)

val rx_pool_drops : t -> int
(** Received packets shed at ingest because the op pool could not
    cover their payload. *)

val zero_window_probes : t -> int
(** Window-reopen probes sent by this host's flows (see
    {!Flow.zero_window_probes}). *)

val pressure_level : t -> int -> Overload.Pressure.level
(** Current pressure level of the i-th engine. *)

val pressure_transitions : t -> int
(** Pressure level changes across this host's engines since creation. *)

val client_admission : client -> Overload.Admission.t
val client_ops_shed : client -> int
val client_ops_expired : client -> int

(** {1 Connection lifecycle telemetry (§4.3)} *)

val conns_established : t -> int
(** Connection halves installed on this host. *)

val conns_closed : t -> int
(** Graceful closes completed locally. *)

val conn_resets_sent : t -> int
(** [Conn_reset] items sent (close notifications plus answers to
    traffic for unknown or dead conns). *)

val peer_deaths : t -> int
(** Connection halves declared dead (keepalive miss budget, reset from
    the peer, peer restart, or superseded by a reconnect). *)

val peer_dead_ops : t -> int
(** Ops failed with [Peer_dead] — stranded at death or refused on a
    dead conn. *)

val stale_drops : t -> int
(** Packets dropped for carrying a pre-restart incarnation stamp. *)

val peer_restarts_detected : t -> int
(** Times a newer peer incarnation forced teardown of held state. *)

val keepalive_probes : t -> int
(** Keepalive probes enqueued by this host's engines. *)

val debug_snapshot : t -> string
(** One-line internal state dump (host incarnation and liveness, rings,
    assembly tables, flows, per-connection state/last-heard age, copy
    engine) for diagnostics. *)
