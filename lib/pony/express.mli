(** Pony Express: Snap's reliable transport and communications stack
    (§3).

    One [Pony.t] per host owns that host's Pony engines, loaded into a
    caller-supplied engine group (so any of the three scheduling modes
    applies).  Applications attach as {e clients}: the control plane
    authenticates them and bootstraps shared-memory command/completion
    queues; operations are asynchronous commands, completions are polled
    or awaited.  Two-sided messaging and one-sided operations (read,
    write, indirect read, scan-and-read) are implemented over reliable
    {!Flow}s with Timely congestion control and a flow mapper that
    multiplexes application connections onto engine-pair flows.

    Connection setup uses the out-of-band channel the paper describes
    for version negotiation (§3.1); here it is modeled as a
    control-plane exchange with a fixed latency rather than simulated
    packets. *)

type t
type client
type conn

(** Cluster-wide name service standing in for the out-of-band (TCP)
    setup channel. *)
module Directory : sig
  type dir

  val create : unit -> dir
end

val create :
  directory:Directory.dir ->
  control:Control.t ->
  machine:Cpu.Sched.machine ->
  nic:Nic.t ->
  group:Engine.group ->
  ?engines:int ->
  ?use_copy_engine:bool ->
  ?wire_versions:int list ->
  unit ->
  t
(** Instantiate the Pony module on a host with [engines] (default 1)
    pre-loaded shared engines added to [group].  The module takes over
    NIC steering and receive notifications for its packets.
    [use_copy_engine] (default false) offloads receive-side payload
    copies to the I/OAT model (§3.4).  [wire_versions] is the set of
    wire-protocol versions this release speaks; flows to peers negotiate
    the least common denominator, modeling mixed-release fleets during
    the weekly rollout (§3.1).  Requires
    [engines <= num NIC rx queues]. *)

val machine : t -> Cpu.Sched.machine
val addr : t -> Memory.Packet.addr
val num_engines : t -> int
val engine_handle : t -> int -> Engine.t
(** The engine-framework handle of the i-th engine (for upgrades,
    steering, telemetry). *)

(** {1 Clients (the Pony Express client library API)} *)

val create_client :
  Cpu.Thread.ctx ->
  t ->
  name:string ->
  ?exclusive_engine:bool ->
  unit ->
  client
(** Attach an application: authenticates with the control plane and
    sets up command/completion queues over shared memory.  With
    [exclusive_engine] (default false) a fresh engine is instantiated
    for this client and added to the group — stronger isolation at
    higher cost (§3.1); otherwise a pre-loaded shared engine is
    assigned round-robin. *)

val client_id : client -> int
val client_name : client -> string
val client_engine : client -> Engine.t

val register_region :
  Cpu.Thread.ctx -> client -> Memory.Region.t -> unit
(** Share a memory region with Snap (and register it for zero-copy and
    for one-sided remote access), via the control plane. *)

val connect :
  Cpu.Thread.ctx -> client -> dst_host:Memory.Packet.addr -> dst_client:int -> conn
(** Open an application-level connection to a remote client.  The flow
    mapper attaches it to the engine-pair flow, creating the flow (and
    negotiating the wire version) if it is the first connection between
    the two engines. *)

val conn_peer : conn -> Memory.Packet.addr * int

(** {1 Asynchronous operations} *)

val send_message :
  Cpu.Thread.ctx -> conn -> ?stream:int -> bytes:int -> unit -> int
(** Two-sided message (§3.3).  Returns the operation id; a completion
    arrives once the transport has taken responsibility.  Messages on
    different streams do not head-of-line block each other. *)

val one_sided_read :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val one_sided_write :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val indirect_read :
  Cpu.Thread.ctx ->
  conn ->
  table_region:int ->
  data_region:int ->
  indices:int list ->
  len:int ->
  int
(** The custom batched indirect read of §3.2: one network operation
    resolves up to eight indirections remotely. *)

val scan_read :
  Cpu.Thread.ctx ->
  conn ->
  region:int ->
  scan_limit:int ->
  needle:int64 ->
  len:int ->
  int

(** {1 Completions and incoming messages} *)

type completion = {
  comp_op : int;
  status : Wire.status;
  bytes : int;  (** Payload bytes moved (reads: bytes returned). *)
  value : int64 option;
      (** First 8 bytes of one-sided read results (for correctness
          checks against backed regions). *)
  issued_at : Sim.Time.t;
  completed_at : Sim.Time.t;
}

type incoming = {
  msg_conn : conn;  (** Local handle; usable to reply. *)
  msg_op : int;
  stream : int;
  msg_bytes : int;
}

val poll_completion : Cpu.Thread.ctx -> client -> completion option
val await_completion : Cpu.Thread.ctx -> client -> completion
(** Parks (or spin-polls, per the calling task's idle policy) until a
    completion arrives. *)

val poll_message : Cpu.Thread.ctx -> client -> incoming option
val await_message : Cpu.Thread.ctx -> client -> incoming

(** {1 Telemetry} *)

val completions_delivered : client -> int
val messages_delivered : client -> int
val bytes_received : client -> int
val flow_stats : t -> (Wire.flow_key * int * int) list
(** Per-flow (key, delivered, retransmits). *)

val corrupt_dropped : t -> int
(** Packets this host discarded because the end-to-end integrity check
    failed (injected corruption); each is recovered by retransmission. *)

val flow_resyncs : t -> int
(** Engine-restart resynchronizations performed: each counts one epoch
    bump after which at least one in-flight packet was requeued for
    immediate retransmission (§4.3 crash recovery / upgrade rollback). *)

val flow_versions : t -> (Wire.flow_key * int) list
(** The negotiated wire-protocol version of each flow. *)

val one_sided_served : t -> int
(** One-sided requests this host's engines executed. *)

val debug_snapshot : t -> string
(** One-line internal state dump (rings, assembly tables, flows, copy
    engine) for diagnostics. *)
