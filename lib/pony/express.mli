(** Pony Express: Snap's reliable transport and communications stack
    (§3).

    One [Pony.t] per host owns that host's Pony engines, loaded into a
    caller-supplied engine group (so any of the three scheduling modes
    applies).  Applications attach as {e clients}: the control plane
    authenticates them and bootstraps shared-memory command/completion
    queues; operations are asynchronous commands, completions are polled
    or awaited.  Two-sided messaging and one-sided operations (read,
    write, indirect read, scan-and-read) are implemented over reliable
    {!Flow}s with Timely congestion control and a flow mapper that
    multiplexes application connections onto engine-pair flows.

    Connection setup uses the out-of-band channel the paper describes
    for version negotiation (§3.1); here it is modeled as a
    control-plane exchange with a fixed latency rather than simulated
    packets. *)

type t
type client
type conn

(** Cluster-wide name service standing in for the out-of-band (TCP)
    setup channel. *)
module Directory : sig
  type dir

  val create : unit -> dir
end

val create :
  directory:Directory.dir ->
  control:Control.t ->
  machine:Cpu.Sched.machine ->
  nic:Nic.t ->
  group:Engine.group ->
  ?engines:int ->
  ?use_copy_engine:bool ->
  ?wire_versions:int list ->
  ?op_pool_bytes:int ->
  unit ->
  t
(** Instantiate the Pony module on a host with [engines] (default 1)
    pre-loaded shared engines added to [group].  The module takes over
    NIC steering and receive notifications for its packets.
    [use_copy_engine] (default false) offloads receive-side payload
    copies to the I/OAT model (§3.4).  [wire_versions] is the set of
    wire-protocol versions this release speaks; flows to peers negotiate
    the least common denominator, modeling mixed-release fleets during
    the weekly rollout (§3.1).  [op_pool_bytes] (default 1 GiB) sizes
    the host's op-memory pool: admission charges, receive-side
    reassembly state and packet ingest all draw from it, so overload
    surfaces as [Rejected] completions and counted drops instead of
    unbounded memory growth (§2.5, §3.3).  Requires
    [engines <= num NIC rx queues]. *)

val machine : t -> Cpu.Sched.machine
val addr : t -> Memory.Packet.addr
val num_engines : t -> int
val engine_handle : t -> int -> Engine.t
(** The engine-framework handle of the i-th engine (for upgrades,
    steering, telemetry). *)

(** {1 Clients (the Pony Express client library API)} *)

val create_client :
  Cpu.Thread.ctx ->
  t ->
  name:string ->
  ?exclusive_engine:bool ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  client
(** Attach an application: authenticates with the control plane and
    sets up command/completion queues over shared memory.  With
    [exclusive_engine] (default false) a fresh engine is instantiated
    for this client and added to the group — stronger isolation at
    higher cost (§3.1); otherwise a pre-loaded shared engine is
    assigned round-robin.

    The remaining parameters configure this client's admission quotas
    (see {!Overload.Admission}): at most [max_ops] outstanding ops
    (default 65536), at most [max_bytes] outstanding payload bytes
    charged against the host op pool (default: the whole pool), and an
    optional token-bucket submission rate.  The permissive defaults
    keep well-behaved applications unthrottled; servers hosting
    untrusted clients set real quotas. *)

val client_id : client -> int
val client_name : client -> string
val client_engine : client -> Engine.t

val register_region :
  Cpu.Thread.ctx -> client -> Memory.Region.t -> unit
(** Share a memory region with Snap (and register it for zero-copy and
    for one-sided remote access), via the control plane. *)

val connect :
  Cpu.Thread.ctx -> client -> dst_host:Memory.Packet.addr -> dst_client:int -> conn
(** Open an application-level connection to a remote client.  The flow
    mapper attaches it to the engine-pair flow, creating the flow (and
    negotiating the wire version) if it is the first connection between
    the two engines. *)

val connect_by_name :
  Cpu.Thread.ctx -> client -> dst_host:Memory.Packet.addr -> dst_name:string -> conn
(** [connect], resolving the destination by client name.  Client ids are
    handed out in creation order, so two apps spawned at the same instant
    race for them and an id-addressed connect can reach the wrong client
    under a perturbed schedule (the determinism sweep caught exactly
    this).  Raises if the name is absent or ambiguous on [dst_host]. *)

val conn_peer : conn -> Memory.Packet.addr * int

(** {1 Asynchronous operations} *)

val send_message :
  Cpu.Thread.ctx -> conn -> ?stream:int -> ?deadline:Sim.Time.t -> bytes:int -> unit -> int
(** Two-sided message (§3.3).  Returns the operation id; a completion
    arrives once the transport has taken responsibility.  Messages on
    different streams do not head-of-line block each other.

    Overload semantics: if admission control refuses the op, a
    [Rejected] completion is delivered immediately (the op never
    reaches an engine).  With [~deadline] (absolute virtual time), an
    op the engine has not started by then completes [Timed_out] and is
    shed at dequeue.  If the destination client's incoming queue is
    full, the receiver NACKs: the op's credit returns and a second,
    [Busy], completion follows the [Ok] one. *)

val one_sided_read :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val one_sided_write :
  Cpu.Thread.ctx -> conn -> region:int -> off:int -> len:int -> int

val indirect_read :
  Cpu.Thread.ctx ->
  conn ->
  table_region:int ->
  data_region:int ->
  indices:int list ->
  len:int ->
  int
(** The custom batched indirect read of §3.2: one network operation
    resolves up to eight indirections remotely. *)

val scan_read :
  Cpu.Thread.ctx ->
  conn ->
  region:int ->
  scan_limit:int ->
  needle:int64 ->
  len:int ->
  int

(** {1 Completions and incoming messages} *)

type completion = {
  comp_op : int;
  status : Wire.status;
  bytes : int;  (** Payload bytes moved (reads: bytes returned). *)
  value : int64 option;
      (** First 8 bytes of one-sided read results (for correctness
          checks against backed regions). *)
  issued_at : Sim.Time.t;
  completed_at : Sim.Time.t;
}

type incoming = {
  msg_conn : conn;  (** Local handle; usable to reply. *)
  msg_op : int;
  stream : int;
  msg_bytes : int;
}

val poll_completion : Cpu.Thread.ctx -> client -> completion option
val await_completion : Cpu.Thread.ctx -> client -> completion
(** Parks (or spin-polls, per the calling task's idle policy) until a
    completion arrives. *)

val poll_message : Cpu.Thread.ctx -> client -> incoming option
val await_message : Cpu.Thread.ctx -> client -> incoming

(** {1 Engine-side (vhost backend) interface}

    For in-Snap consumers that drive a client from an engine pass (the
    guest mux) rather than from an application thread: no thread ctx,
    no blocking, no client-side admission — the backend owns accounting
    and must respect {!conn_cmd_free} before posting. *)

val set_delivery_hook : client -> (unit -> unit) -> unit
(** Invoked on every completion or message pushed to this client
    (typically [Engine.notify] on the backend's engine). *)

val conn_cmd_free : conn -> int
(** Free slots in the client's command queue. *)

val engine_post_send :
  conn -> now:Sim.Time.t -> ?stream:int -> ?deadline:Sim.Time.t -> bytes:int -> unit -> int
(** Post a two-sided send from engine context, bypassing client
    admission (the caller has already charged its own accounting).
    Returns the op id.  Raises [Invalid_argument] if the command queue
    is full. *)

val engine_poll_completion : client -> completion option
val engine_poll_message : client -> incoming option

val send_with_retry :
  Cpu.Thread.ctx ->
  conn ->
  ?stream:int ->
  ?policy:Overload.Retry.policy ->
  bytes:int ->
  unit ->
  (completion, completion) result
(** Closed-loop send with bounded retries: attempts up to
    [policy.max_attempts] sends, each carrying a deadline of
    [policy.op_timeout], backing off exponentially between attempts and
    retrying on [Rejected], [Timed_out] and [Busy].  [Ok c] on success;
    [Error last] with the final completion when attempts run out (or on
    a non-retryable status).  The helper consumes this client's
    completion queue while it runs, so it is intended for callers with
    no other outstanding ops. *)

(** {1 Telemetry} *)

val completions_delivered : client -> int
val messages_delivered : client -> int
val bytes_received : client -> int
val flow_stats : t -> (Wire.flow_key * int * int) list
(** Per-flow (key, delivered, retransmits). *)

val corrupt_dropped : t -> int
(** Packets this host discarded because the end-to-end integrity check
    failed (injected corruption); each is recovered by retransmission. *)

val flow_resyncs : t -> int
(** Engine-restart resynchronizations performed: each counts one epoch
    bump after which at least one in-flight packet was requeued for
    immediate retransmission (§4.3 crash recovery / upgrade rollback). *)

val flow_versions : t -> (Wire.flow_key * int) list
(** The negotiated wire-protocol version of each flow. *)

val one_sided_served : t -> int
(** One-sided requests this host's engines executed. *)

(** {1 Overload telemetry} *)

val op_pool : t -> Memory.Pool.t
(** The host's op-memory pool; workloads call
    [Memory.Pool.assert_quiesced] on it after quiescing to prove no op
    bytes leaked. *)

val quota_rejected : t -> int
(** Ops refused by admission control across this host's clients. *)

val ops_shed : t -> int
(** Ops dropped at dequeue under Saturated pressure. *)

val ops_expired : t -> int
(** Ops whose deadline passed before the engine started them. *)

val busy_nacks : t -> int
(** Messages shed at delivery because the destination client's
    incoming queue was full (each one NACKed back to the sender). *)

val rx_pool_drops : t -> int
(** Received packets shed at ingest because the op pool could not
    cover their payload. *)

val zero_window_probes : t -> int
(** Window-reopen probes sent by this host's flows (see
    {!Flow.zero_window_probes}). *)

val pressure_level : t -> int -> Overload.Pressure.level
(** Current pressure level of the i-th engine. *)

val pressure_transitions : t -> int
(** Pressure level changes across this host's engines since creation. *)

val client_admission : client -> Overload.Admission.t
val client_ops_shed : client -> int
val client_ops_expired : client -> int

val debug_snapshot : t -> string
(** One-line internal state dump (rings, assembly tables, flows, copy
    engine) for diagnostics. *)
