module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

let max_flight = 128
let min_rto = Time.us 100
let gbn_window = 8
let dupack_threshold = 3

(* How long a quenched sender (advertised window zero, nothing in
   flight) waits before probing with one packet so the window can
   reopen.  Without the probe a zero window would livelock: no data
   means no acks, no acks means no window update. *)
let zero_window_probe_interval = Time.us 200

type flight_entry = {
  f_seq : int;
  f_item : Wire.item;
  f_payload : int;
  mutable sent_at : Time.t;
}

(* Flight ring capacity: a power of two ≥ [max_flight] so the index
   math is a mask.  The flight never exceeds [max_flight] (fresh sends
   are window-gated; retransmissions reuse their slots). *)
let flight_cap = 256
let flight_mask = flight_cap - 1

let dummy_fe = { f_seq = -1; f_item = Wire.Bare_ack; f_payload = 0; sent_at = 0 }

type t = {
  lp : Loop.t;
  fkey : Wire.flow_key;
  ver : int;
  (* Sender host incarnation stamped on every outgoing packet.  Fixed
     at creation: a host crash destroys its flows, so a flow never
     outlives the incarnation it was born under. *)
  f_inc : int;
  timely : Timely.t;
  (* Transmit. *)
  queue : (Wire.item * int * Time.t) Queue.t;  (* item, payload, enqueued *)
  retx : flight_entry Queue.t;
  mutable snd_nxt : int;
  (* Flight as a preallocated circular buffer of [flight_cap] slots:
     entries live at ring indices [fl_head, fl_head + flight_len) mod
     [flight_cap], in ascending (contiguous) seq order.  Appending a
     fresh send and dropping the acked prefix are O(1) and allocate
     nothing — the old list representation rebuilt the whole flight on
     every send ([flight @ [fe]]) and every cumulative ack
     ([List.filter]), which dominated per-packet allocation. *)
  fl_ring : flight_entry array;
  mutable fl_head : int;
  mutable flight_len : int;
  mutable next_release : Time.t;
  mutable dup_acks : int;
  mutable last_ack_seen : int;
  (* Receiver back-pressure: the peer's latest advertised window (in
     packets) caps new flight; [wnd_provider] supplies the window we
     advertise on every outgoing packet. *)
  mutable peer_wnd : int;
  mutable wnd_update_at : Time.t;
  mutable wnd_provider : unit -> int;
  mutable n_zw_probes : int;
  (* Receive. *)
  mutable rcv_cum : int;
  mutable rcv_ooo : int list;  (* sorted ascending, all >= rcv_cum *)
  mutable owe_ack : bool;
  mutable latest_rx_ts : Time.t;
  (* RTT / RTO. *)
  mutable srtt_ns : float;
  mutable rto : Time.t;
  (* Stats. *)
  mutable n_retx : int;
  mutable n_delivered : int;
  mutable n_acked : int;
  fl_label : string;  (* "srcHost.srcEng->dstHost.dstEng" *)
  h_rtt : Stats.Histogram.t;
  h_flight : Stats.Histogram.t;
}

let create ~loop ~key ~max_rate_gbps ?(version = Wire.current_version)
    ?(incarnation = 0) () =
  let fl_label =
    Printf.sprintf "%d.%d->%d.%d" key.Wire.src_host key.Wire.src_engine
      key.Wire.dst_host key.Wire.dst_engine
  in
  let labels = [ ("flow", fl_label) ] in
  let t =
  {
    lp = loop;
    fkey = key;
    ver = version;
    f_inc = incarnation;
    timely = Timely.create ~max_rate_gbps ();
    queue = Queue.create ();
    retx = Queue.create ();
    snd_nxt = 0;
    fl_ring = Array.make flight_cap dummy_fe;
    fl_head = 0;
    flight_len = 0;
    next_release = Time.zero;
    dup_acks = 0;
    last_ack_seen = 0;
    peer_wnd = max_flight;
    wnd_update_at = Time.zero;
    wnd_provider = (fun () -> max_flight);
    n_zw_probes = 0;
    rcv_cum = 0;
    rcv_ooo = [];
    owe_ack = false;
    latest_rx_ts = Time.zero;
    srtt_ns = 0.0;
    rto = min_rto;
    n_retx = 0;
    n_delivered = 0;
    n_acked = 0;
    fl_label;
    h_rtt = Stats.Registry.histogram ~labels "pony_flow_rtt_ns";
    h_flight = Stats.Registry.histogram ~labels "pony_flow_flight";
  }
  in
  Check.Invariant.register ~name:(Printf.sprintf "pony.flow.%s" fl_label)
    (fun () ->
      if t.flight_len < 0 || t.flight_len > max_flight then
        Some
          (Printf.sprintf "flight %d outside [0, %d]" t.flight_len max_flight)
      else begin
        (* Ring window must hold contiguous ascending seqs (go-back-N
           never punches holes) and no occupied slot may be the dummy. *)
        let bad = ref None in
        for i = 0 to t.flight_len - 1 do
          let fe = t.fl_ring.((t.fl_head + i) land flight_mask) in
          if !bad = None then
            if fe == dummy_fe then
              bad := Some (Printf.sprintf "flight slot %d empty" i)
            else begin
              let base = t.fl_ring.(t.fl_head land flight_mask).f_seq in
              if fe.f_seq <> base + i then
                bad :=
                  Some
                    (Printf.sprintf
                       "flight seqs not contiguous: slot %d holds %d, head %d"
                       i fe.f_seq base)
            end
        done;
        !bad
      end);
  t

let fl_nth t i = t.fl_ring.((t.fl_head + i) land flight_mask)
let fl_head_entry t = t.fl_ring.(t.fl_head land flight_mask)

(* Flow events share one track per flow so chrome://tracing shows each
   flow as its own lane. *)
let span t ~now ?(args = []) name =
  Sim.Span.emit t.lp ~cat:"pony" ~track:("flow " ^ t.fl_label) ~args ~start:now
    name

let key t = t.fkey
let version t = t.ver
let cc t = t.timely
let pending t = Queue.length t.queue + Queue.length t.retx
let in_flight t = t.flight_len

let effective_window t = min max_flight (max 0 t.peer_wnd)

(* A quenched idle flow (zero window, empty flight, data waiting) may
   send one probe packet after an idle interval; the probe's ack
   carries the peer's current window and reopens the flow. *)
let zw_probe_due t ~now =
  effective_window t = 0
  && t.flight_len = 0
  && (not (Queue.is_empty t.queue))
  && Time.sub now t.wnd_update_at >= zero_window_probe_interval

let ready_to_emit t ~now =
  (not (Queue.is_empty t.retx))
  || ((not (Queue.is_empty t.queue))
     && now >= t.next_release
     && (t.flight_len < effective_window t || zw_probe_due t ~now))

let enqueue t item ~payload_bytes =
  Queue.add (item, payload_bytes, Loop.now t.lp) t.queue

(* Age of the oldest queued (unsent) item: the transmit-side component
   of the engine's queueing-delay load signal (§2.4).  Only the
   CPU-bottlenecked portion counts: time spent waiting for the rate
   pacer (or the flight window) is congestion control at work, not CPU
   starvation, so the age is measured from the moment the pacer would
   have allowed the send. *)
let queue_age t ~now =
  match Queue.peek_opt t.queue with
  | Some (_, _, enq) ->
      if t.flight_len >= max_flight then 0
      else Time.max 0 (Time.sub now (Time.max enq t.next_release))
  | None -> 0

let item_wire item payload = Wire.header_bytes + Wire.item_wire_bytes item + payload

let build_packet t ~now ~gen ~seq ~item ~payload =
  let wire = item_wire item payload in
  Packet.make
    ~id:(Packet.Id_gen.next gen)
    ~src:t.fkey.Wire.src_host ~dst:t.fkey.Wire.dst_host
    ~flow_hash:(Hashtbl.hash t.fkey)
    ~qos:1 ~wire_bytes:wire ~payload_bytes:payload
    (Wire.Pony
       {
         flow = t.fkey;
         seq;
         ack = t.rcv_cum;
         wnd = max 0 (t.wnd_provider ());
         ts = now;
         ts_echo = t.latest_rx_ts;
         version = t.ver;
         inc = t.f_inc;
         item;
       })
    ()

let advance_pacer t ~now wire_bytes =
  let rate = Timely.rate_bytes_per_ns t.timely in
  let gap =
    int_of_float (Float.round (float_of_int wire_bytes /. Float.max 1e-6 rate))
  in
  t.next_release <- Time.add (Time.max now t.next_release) gap

(* Latency-attribution hooks: transmissions stamp the op's first-tx
   stage; retransmissions, RTO recoveries, and zero-window probes count
   as stalls against whatever op the packet carries. *)
let op_key t item = Wire.op_key_of_item ~src_host:t.fkey.Wire.src_host item

let op_stall t item which =
  if Sim.Optrace.enabled () then
    match op_key t item with
    | Some k -> Sim.Optrace.stall k which
    | None -> ()

let op_first_tx t item =
  if Sim.Optrace.enabled () then
    match op_key t item with
    | Some k -> Sim.Optrace.stamp t.lp k Sim.Optrace.First_tx
    | None -> ()

let rec emit t ~now ~gen =
  (* Retransmissions go first and bypass the window check (their slots
     are already accounted in the flight). *)
  match Queue.take_opt t.retx with
  | Some fe when fe.f_seq < t.last_ack_seen ->
      (* Acked while queued for retransmission: skip it. *)
      emit t ~now ~gen
  | Some fe ->
      fe.sent_at <- now;
      t.owe_ack <- false;
      let pkt = build_packet t ~now ~gen ~seq:fe.f_seq ~item:fe.f_item ~payload:fe.f_payload in
      advance_pacer t ~now pkt.Packet.wire_bytes;
      Stats.Histogram.record t.h_flight t.flight_len;
      if Sim.Span.enabled () then
        span t ~now ~args:[ ("seq", string_of_int fe.f_seq) ] "retx";
      op_stall t fe.f_item Sim.Optrace.Retx;
      Some pkt
  | None ->
      let probe = zw_probe_due t ~now in
      if
        Queue.is_empty t.queue
        || now < t.next_release
        || (t.flight_len >= effective_window t && not probe)
      then None
      else begin
        if probe then begin
          t.n_zw_probes <- t.n_zw_probes + 1;
          (* Restart the idle clock so at most one probe is in flight
             per interval even if the probe itself is lost. *)
          t.wnd_update_at <- now;
          if Sim.Span.enabled () then span t ~now "zw_probe"
        end;
        let item, payload, _enq = Queue.take t.queue in
        if probe then op_stall t item Sim.Optrace.Zero_window;
        op_first_tx t item;
        let seq = t.snd_nxt in
        t.snd_nxt <- seq + 1;
        let fe = { f_seq = seq; f_item = item; f_payload = payload; sent_at = now } in
        t.fl_ring.((t.fl_head + t.flight_len) land flight_mask) <- fe;
        t.flight_len <- t.flight_len + 1;
        t.owe_ack <- false;
        if Check.Invariant.enabled () && not probe then
          (* Window legality at send time: a fresh (non-retransmitted,
             non-probe) packet must fit under the peer's advertised
             window.  Retransmissions are exempt — their slots were
             charged when first sent. *)
          (if t.flight_len > effective_window t then
             raise
               (Check.Invariant.Violation
                  (Printf.sprintf
                     "flow %s: flight %d exceeds advertised window %d on fresh send"
                     t.fl_label t.flight_len (effective_window t))));
        let pkt = build_packet t ~now ~gen ~seq ~item ~payload in
        advance_pacer t ~now pkt.Packet.wire_bytes;
        Stats.Histogram.record t.h_flight t.flight_len;
        if Sim.Span.enabled () then
          span t ~now ~args:[ ("seq", string_of_int seq) ] "tx";
        Some pkt
      end

let ack_owed t = t.owe_ack

let make_ack t ~now ~gen =
  if not t.owe_ack then None
  else begin
    t.owe_ack <- false;
    if Sim.Span.enabled () then
      span t ~now ~args:[ ("ack", string_of_int t.rcv_cum) ] "ack";
    Some (build_packet t ~now ~gen ~seq:(-1) ~item:Wire.Bare_ack ~payload:0)
  end

let schedule_retransmit t n =
  (* Requeue up to [n] unacked head packets (bounded go-back-N). *)
  let count = min n t.flight_len in
  for i = 0 to count - 1 do
    t.n_retx <- t.n_retx + 1;
    Queue.add (fl_nth t i) t.retx
  done;
  count

let resync t ~now =
  (* Engine-restart resynchronization (§4.3): after a crash or upgrade
     rollback the peer may have missed anything we had in flight during
     the outage, and our RTO may have backed off far into the future.
     Requeue the whole flight for immediate retransmission and reset the
     timers so recovery does not wait out a stale RTO.  Receive-side
     sequencing state survives the restart (queues persist), so the
     peer's dedup absorbs any duplicates this creates. *)
  t.dup_acks <- 0;
  t.rto <- min_rto;
  t.next_release <- now;
  if Sim.Span.enabled () then
    span t ~now
      ~args:[ ("flight", string_of_int t.flight_len) ]
      "resync";
  if Queue.is_empty t.retx then schedule_retransmit t t.flight_len
  else 0

let sample_rtt t ~now ~ts_echo =
  if ts_echo > 0 then begin
    let rtt = Time.sub now ts_echo in
    if rtt > 0 then begin
      Stats.Histogram.record t.h_rtt rtt;
      Timely.on_rtt_sample t.timely rtt;
      t.srtt_ns <-
        (if t.srtt_ns = 0.0 then float_of_int rtt
         else (0.875 *. t.srtt_ns) +. (0.125 *. float_of_int rtt));
      t.rto <- Time.max min_rto (int_of_float (3.0 *. t.srtt_ns))
    end
  end

let process_ack t ~now ~ack ~ts_echo ~pure =
  sample_rtt t ~now ~ts_echo;
  if t.flight_len > 0 then begin
    if ack > t.last_ack_seen then begin
      t.last_ack_seen <- ack;
      t.dup_acks <- 0;
      (* The flight holds contiguous ascending seqs, so a cumulative
         ack always strips a prefix: pop head slots in place.  Slots
         are reset to the dummy so acked wire items are not retained. *)
      while
        t.flight_len > 0 && (fl_head_entry t).f_seq < ack
      do
        t.fl_ring.(t.fl_head land flight_mask) <- dummy_fe;
        t.fl_head <- (t.fl_head + 1) land flight_mask;
        t.flight_len <- t.flight_len - 1;
        t.n_acked <- t.n_acked + 1
      done
    end
    else if ack = t.last_ack_seen && pure then begin
      (* Only bare acks count as duplicates: every data packet
         piggybacks the (possibly stale) cumulative ack, which says
         nothing about loss. *)
      t.dup_acks <- t.dup_acks + 1;
      if t.dup_acks = dupack_threshold then begin
        Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony.flow"
          "fast-retransmit seq=%d" t.last_ack_seen;
        if Sim.Span.enabled () then
          span t ~now
            ~args:[ ("seq", string_of_int t.last_ack_seen) ]
            "fast_retx";
        ignore (schedule_retransmit t 1);
        Timely.on_loss t.timely;
        t.dup_acks <- 0
      end
    end
  end

(* Receiver-side sequencing: advance the cumulative counter over any
   now-contiguous out-of-order arrivals. *)
let absorb_ooo t =
  let rec go () =
    match t.rcv_ooo with
    | s :: rest when s = t.rcv_cum ->
        t.rcv_cum <- t.rcv_cum + 1;
        t.rcv_ooo <- rest;
        go ()
    | s :: rest when s < t.rcv_cum ->
        t.rcv_ooo <- rest;
        go ()
    | _ -> ()
  in
  go ()

let on_receive t ~now pkt =
  match pkt.Packet.payload with
  | Wire.Pony { flow = _; seq; ack; wnd; ts; ts_echo; version = _; inc = _; item }
    -> (
      t.peer_wnd <- wnd;
      t.wnd_update_at <- now;
      process_ack t ~now ~ack ~ts_echo ~pure:(item = Wire.Bare_ack);
      match item with
      | Wire.Bare_ack -> None
      | _ ->
          if seq < t.rcv_cum || List.mem seq t.rcv_ooo then begin
            (* Duplicate: re-ack so the sender advances. *)
            t.owe_ack <- true;
            None
          end
          else begin
            t.latest_rx_ts <- ts;
            if seq = t.rcv_cum then begin
              t.rcv_cum <- t.rcv_cum + 1;
              absorb_ooo t
            end
            else t.rcv_ooo <- List.sort compare (seq :: t.rcv_ooo);
            t.owe_ack <- true;
            t.n_delivered <- t.n_delivered + 1;
            Some item
          end)
  | _ -> None

let next_deadline t =
  let pace =
    if Queue.is_empty t.queue && Queue.is_empty t.retx then None
    else if effective_window t = 0 && t.flight_len = 0 && Queue.is_empty t.retx
    then
      (* Quenched: the next useful service time is the window probe,
         not the pacer release.  Without this the engine timer never
         fires and a zero window livelocks an otherwise idle flow. *)
      Some
        (Time.max t.next_release
           (Time.add t.wnd_update_at zero_window_probe_interval))
    else Some t.next_release
  in
  let rto =
    if t.flight_len = 0 then None
    else Some (Time.add (fl_head_entry t).sent_at t.rto)
  in
  match (pace, rto) with
  | None, None -> None
  | Some a, None -> Some a
  | None, Some b -> Some b
  | Some a, Some b -> Some (Time.min a b)

let check_timeout t ~now =
  if t.flight_len = 0 then 0
  else
    let fe = fl_head_entry t in
      if Time.sub now fe.sent_at >= t.rto && Queue.is_empty t.retx then begin
        let n = schedule_retransmit t gbn_window in
        Sim.Trace.emit t.lp Sim.Trace.Info ~component:"pony.flow"
          "rto go-back-n n=%d from seq=%d" n fe.f_seq;
        if Sim.Span.enabled () then
          span t ~now
            ~args:
              [ ("n", string_of_int n); ("seq", string_of_int fe.f_seq) ]
            "rto_gbn";
        op_stall t fe.f_item Sim.Optrace.Rto;
        Timely.on_loss t.timely;
        (* Back off the timer so a stalled peer is not hammered. *)
        t.rto <- Time.min (Time.ms 50) (2 * t.rto);
        n
      end
      else 0

let retransmits t = t.n_retx
let delivered t = t.n_delivered
let acked_packets t = t.n_acked
let srtt t = int_of_float t.srtt_ns

let set_window_provider t f = t.wnd_provider <- f
let peer_window t = t.peer_wnd
let zero_window_probes t = t.n_zw_probes
let incarnation t = t.f_inc

let purge_queue t ~drop =
  (* Remove not-yet-sent items the upper layer no longer wants (ops for
     a dead connection).  Flight and retransmission entries are left
     alone: removing them would punch holes in the go-back-N sequence
     space.  Returns the dropped items with their payload sizes so the
     caller can settle their ops. *)
  let kept = Queue.create () in
  let dropped = ref [] in
  Queue.iter
    (fun ((item, payload, _enq) as e) ->
      if drop item then dropped := (item, payload) :: !dropped
      else Queue.add e kept)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer kept t.queue;
  List.rev !dropped
