type flow_key = {
  src_host : Memory.Packet.addr;
  src_engine : int;
  dst_host : Memory.Packet.addr;
  dst_engine : int;
}

let reverse k =
  {
    src_host = k.dst_host;
    src_engine = k.dst_engine;
    dst_host = k.src_host;
    dst_engine = k.src_engine;
  }

type conn_key = {
  initiator_host : Memory.Packet.addr;
  initiator_client : int;
  target_host : Memory.Packet.addr;
  target_client : int;
  session : int;
}

let conn_reverse k =
  {
    initiator_host = k.initiator_host;
    initiator_client = k.initiator_client;
    target_host = k.target_host;
    target_client = k.target_client;
    session = k.session;
  }

let conn_same_endpoints a b =
  a.initiator_host = b.initiator_host
  && a.initiator_client = b.initiator_client
  && a.target_host = b.target_host
  && a.target_client = b.target_client

type one_sided =
  | Read of { region : int; off : int; len : int }
  | Write of { region : int; off : int; len : int }
  | Indirect_read of {
      table_region : int;
      data_region : int;
      indices : int list;
      len : int;
    }
  | Scan_read of {
      region : int;
      scan_limit : int;
      needle : int64;
      len : int;
    }

type status =
  | Ok
  | Bad_region
  | Bad_range
  | No_match
  | Not_permitted
  | Rejected
  | Timed_out
  | Busy
  | Peer_dead

let status_to_string = function
  | Ok -> "ok"
  | Bad_region -> "bad_region"
  | Bad_range -> "bad_range"
  | No_match -> "no_match"
  | Not_permitted -> "not_permitted"
  | Rejected -> "rejected"
  | Timed_out -> "timed_out"
  | Busy -> "busy"
  | Peer_dead -> "peer_dead"

type item =
  | Msg_chunk of {
      conn : conn_key;
      op_id : int;
      stream : int;
      offset : int;
      len : int;
      total : int;
    }
  | One_sided_req of { conn : conn_key; op_id : int; op : one_sided }
  | One_sided_resp of {
      conn : conn_key;
      op_id : int;
      status : status;
      chunk_offset : int;
      chunk_len : int;
      total : int;
      value : int64 option;
    }
  | Credit_grant of { conn : conn_key; bytes : int }
  | Busy_nack of { conn : conn_key; op_id : int; bytes : int }
  | Conn_reset of { conn : conn_key }
  | Keepalive of { conn : conn_key }
  | Keepalive_ack of { conn : conn_key }
  | Bare_ack

type Memory.Packet.payload +=
  | Pony of {
      flow : flow_key;
      seq : int;
      ack : int;
      wnd : int;
      ts : Sim.Time.t;
      ts_echo : Sim.Time.t;
      version : int;
      inc : int;
      item : item;
    }

(* Ethernet(14) + IP(20) + Pony flow header(24). *)
let header_bytes = 58
let current_version = 7
let supported_versions = [ 5; 6; 7 ]

let negotiate a b =
  let common = List.filter (fun v -> List.mem v b) a in
  match List.sort compare common with
  | [] -> None
  | l -> Some (List.nth l (List.length l - 1))

(* Attribution key of the op an item belongs to, from the point of view
   of a packet leaving [src_host].  Requests travel origin -> peer, so
   the sender is the op's origin; responses and NACKs travel back, so
   the origin is the destination.  Items without an op (credit, resets,
   keepalives, bare acks) have no key. *)
let op_key_of_item ~src_host item =
  let key conn op_id ~origin_is_src =
    let src_is_init = conn.initiator_host = src_host in
    let origin_is_init = if origin_is_src then src_is_init else not src_is_init in
    if origin_is_init then
      Some
        {
          Sim.Optrace.k_origin = conn.initiator_host;
          k_origin_client = conn.initiator_client;
          k_peer = conn.target_host;
          k_session = conn.session;
          k_origin_init = true;
          k_op = op_id;
        }
    else
      Some
        {
          Sim.Optrace.k_origin = conn.target_host;
          k_origin_client = conn.target_client;
          k_peer = conn.initiator_host;
          k_session = conn.session;
          k_origin_init = false;
          k_op = op_id;
        }
  in
  match item with
  | Msg_chunk { conn; op_id; _ } -> key conn op_id ~origin_is_src:true
  | One_sided_req { conn; op_id; _ } -> key conn op_id ~origin_is_src:true
  | One_sided_resp { conn; op_id; _ } -> key conn op_id ~origin_is_src:false
  | Busy_nack { conn; op_id; _ } -> key conn op_id ~origin_is_src:false
  | Credit_grant _ | Conn_reset _ | Keepalive _ | Keepalive_ack _ | Bare_ack ->
      None

let item_wire_bytes = function
  | Msg_chunk _ -> 24
  | One_sided_req { op; _ } -> (
      16
      +
      match op with
      | Read _ | Write _ -> 16
      | Indirect_read { indices; _ } -> 8 + (8 * List.length indices)
      | Scan_read _ -> 24)
  | One_sided_resp _ -> 24
  | Credit_grant _ -> 12
  | Busy_nack _ -> 12
  | Conn_reset _ -> 8
  | Keepalive _ -> 8
  | Keepalive_ack _ -> 8
  | Bare_ack -> 0
