(** Reliable flows: Pony Express's lower transport layer (§3.1).

    "The lower layer implements reliable flows between a pair of engines
    across the network ...  only responsible for reliably delivering
    individual packets, whereas the upper layer handles reordering,
    reassembly, and semantics associated with specific operations."

    A flow paces transmissions at the rate chosen by the {!Timely}
    controller, keeps a flight buffer for retransmission (duplicate-ack
    fast retransmit plus a retransmission timeout with bounded
    go-back-N), and on the receive side deduplicates and acknowledges
    packets, delivering upper-layer items immediately — even out of
    order. *)

type t

val max_flight : int
(** Per-flow flight cap in packets; also the largest window a receiver
    ever advertises. *)

val create :
  loop:Sim.Loop.t ->
  key:Wire.flow_key ->
  max_rate_gbps:float ->
  ?version:int ->
  ?incarnation:int ->
  unit ->
  t
(** [incarnation] (default 0) is the sending host's incarnation number,
    stamped on every outgoing packet.  It is fixed for the flow's
    lifetime: a host crash destroys its flows, so a flow never outlives
    the incarnation it was born under. *)

val key : t -> Wire.flow_key
val version : t -> int
val incarnation : t -> int
val cc : t -> Timely.t

(** {1 Transmit side} *)

val enqueue : t -> Wire.item -> payload_bytes:int -> unit
(** Queue an upper-layer item for transmission. *)

val pending : t -> int
(** Items queued but not yet on the wire. *)

val queue_age : t -> now:Sim.Time.t -> Sim.Time.t
(** Age of the oldest queued (unsent) item; the transmit-side component
    of the engine's queueing-delay load signal. *)

val purge_queue :
  t -> drop:(Wire.item -> bool) -> (Wire.item * int) list
(** Remove not-yet-sent items for which [drop] is true (ops bound for a
    dead connection) and return them with their payload sizes so the
    caller can settle their ops.  Flight and retransmission entries are
    untouched — removing them would punch holes in the go-back-N
    sequence space. *)

val in_flight : t -> int

val ready_to_emit : t -> now:Sim.Time.t -> bool
(** True when an item is queued, the window (both the local flight cap
    and the peer's advertised window) has room, and the pacer allows a
    transmission now.  A flow quenched by a zero advertised window
    becomes ready again once the window-reopen probe interval elapses. *)

val emit : t -> now:Sim.Time.t -> gen:Memory.Packet.Id_gen.t -> Memory.Packet.t option
(** Build the next packet (consuming one queued item), advancing the
    pacer and flight buffer.  [None] if {!ready_to_emit} is false. *)

val make_ack : t -> now:Sim.Time.t -> gen:Memory.Packet.Id_gen.t -> Memory.Packet.t option
(** Build a bare-ack packet if one is owed, else [None]. *)

val ack_owed : t -> bool

(** {1 Receive side} *)

val on_receive : t -> now:Sim.Time.t -> Memory.Packet.t -> Wire.item option
(** Process an incoming packet of this flow: handles the piggybacked
    ack (congestion control, flight trimming, fast retransmit) and
    returns the upper-layer item if it has not been seen before
    ([None] for duplicates and bare acks). *)

(** {1 Timers} *)

val next_deadline : t -> Sim.Time.t option
(** Earliest time this flow needs service again (pacing release or
    retransmission timeout); [None] when fully idle. *)

val check_timeout : t -> now:Sim.Time.t -> int
(** Fire the retransmission timeout if due: requeues up to a bounded
    window of lost packets for retransmission and applies the loss
    signal to congestion control.  Returns how many packets were
    requeued. *)

val resync : t -> now:Sim.Time.t -> int
(** Engine-restart resynchronization: requeue the entire flight for
    immediate retransmission and reset the RTO, pacer release and
    duplicate-ack state, so in-flight operations complete by
    retransmission instead of waiting out a backed-off timeout.  Called
    when the owning engine's restart epoch bumps.  Returns how many
    packets were requeued (0 if retransmissions were already pending). *)

(** {1 Telemetry} *)

val retransmits : t -> int
val delivered : t -> int
val acked_packets : t -> int
val srtt : t -> Sim.Time.t

(** {1 Receiver back-pressure (advertised window)} *)

val set_window_provider : t -> (unit -> int) -> unit
(** Install the function supplying the advertised receive window (in
    packets) stamped on every outgoing packet of this flow — derived by
    the owning engine from its rx-ring occupancy and op-pool pressure.
    Defaults to the full flight cap (no back-pressure). *)

val peer_window : t -> int
(** The peer's most recent advertised window.  New transmissions stop
    while [in_flight >= min max-flight (peer_window)]; retransmissions
    are exempt (their flight slots are already accounted). *)

val zero_window_probes : t -> int
(** Probe packets sent to reopen a zero advertised window after idle:
    without them, "no data -> no acks -> no window update" would
    livelock the flow. *)
