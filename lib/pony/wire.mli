(** Pony Express wire protocol (§3.1).

    The transport splits into two layers: a lower layer of reliable
    {e flows} between a pair of engines, and an upper layer of
    application-level operations multiplexed onto flows by a flow
    mapper.  This module defines the on-wire representation shared by
    both: flow addressing, packet items, and protocol versioning. *)

(** A flow connects one engine on one host to one engine on another. *)
type flow_key = {
  src_host : Memory.Packet.addr;
  src_engine : int;
  dst_host : Memory.Packet.addr;
  dst_engine : int;
}

val reverse : flow_key -> flow_key

(** An application-level connection between two clients, carried by a
    flow.  [session] is a per-instance id chosen at connect time (both
    halves share it via the out-of-band setup): a re-dial between the
    same client pair gets a fresh session, so items still in flight
    from a dead predecessor can never alias the successor — they miss
    the connection table and draw a reset instead. *)
type conn_key = {
  initiator_host : Memory.Packet.addr;
  initiator_client : int;
  target_host : Memory.Packet.addr;
  target_client : int;
  session : int;
}

val conn_reverse : conn_key -> conn_key

val conn_same_endpoints : conn_key -> conn_key -> bool
(** Same client pair, any session — the "is this a reconnect of that?"
    predicate. *)

(** One-sided operation request bodies (§3.2).  These execute entirely
    within the remote engine against client-registered regions. *)
type one_sided =
  | Read of { region : int; off : int; len : int }
  | Write of { region : int; off : int; len : int }
  | Indirect_read of {
      table_region : int;
      data_region : int;
      indices : int list;
      len : int;
    }
      (** Consults an application-filled indirection table (of 8-byte
          offsets) in [table_region]; fetches [len] bytes at each
          resolved offset.  Batching several indices in one request is
          the "batched indirect read" that Figure 8's analytics service
          uses. *)
  | Scan_read of {
      region : int;
      scan_limit : int;  (** Bytes of the region to scan. *)
      needle : int64;
      len : int;
    }  (** Scan-and-read: match an 8-byte needle in a small
          application-shared region, then fetch [len] bytes at the
          offset stored next to the match. *)

type status =
  | Ok
  | Bad_region
  | Bad_range
  | No_match
  | Not_permitted
  | Rejected
      (** Refused by admission control before reaching an engine: the
          client is over its op/byte quota, rate limit, or the op pool
          is exhausted.  Overload answers with a status, never an
          exception into the hot path. *)
  | Timed_out
      (** The op's deadline expired before the engine started it; shed
          at dequeue. *)
  | Busy
      (** NACKed by the destination: the target client's incoming
          queue was full.  The transport returned the op's flow-control
          credit; retry after backoff. *)
  | Peer_dead
      (** The connection's remote endpoint is gone: declared dead by
          the keepalive miss budget, torn down by a [Conn_reset], or
          lost to a host crash.  Every op stranded on such a
          connection completes with this status — no op ever hangs
          forever on a dead peer. *)

val status_to_string : status -> string

(** Payload items carried by flow packets. *)
type item =
  | Msg_chunk of {
      conn : conn_key;
      op_id : int;
      stream : int;
      offset : int;
      len : int;
      total : int;
    }  (** A piece of a two-sided message on a stream (§3.3). *)
  | One_sided_req of { conn : conn_key; op_id : int; op : one_sided }
  | One_sided_resp of {
      conn : conn_key;
      op_id : int;
      status : status;
      chunk_offset : int;
      chunk_len : int;
      total : int;
      value : int64 option;
          (** First 8 bytes of the read result, for correctness checks
              against backed regions. *)
    }
  | Credit_grant of { conn : conn_key; bytes : int }
      (** Receiver-driven flow control replenishment (§3.3). *)
  | Busy_nack of { conn : conn_key; op_id : int; bytes : int }
      (** Fast-path NACK: the destination client's incoming queue was
          full, so the message was shed at delivery.  Returns the op's
          [bytes] of connection credit and completes the op with
          {!Busy} at the initiator. *)
  | Conn_reset of { conn : conn_key }
      (** The sender no longer has (or wants) this connection: sent on
          explicit close and in reply to traffic for an unknown or dead
          connection.  The receiver transitions its half to [Dead] and
          fails stranded ops with {!Peer_dead}. *)
  | Keepalive of { conn : conn_key }
      (** Liveness probe sent on an idle connection; the peer answers
          with {!Keepalive_ack}.  Any traffic for the connection counts
          as life — probes only fill silence. *)
  | Keepalive_ack of { conn : conn_key }  (** Answer to {!Keepalive}. *)
  | Bare_ack  (** No upper-layer payload; acks/timestamps only. *)

type Memory.Packet.payload +=
  | Pony of {
      flow : flow_key;
      seq : int;  (** Packet sequence number within the flow. *)
      ack : int;  (** Cumulative ack of the reverse direction. *)
      wnd : int;
          (** Advertised receive window, in packets: how much new
              flight the receiving engine invites, derived from its
              rx-ring and op-pool occupancy.  Rides in a reserved field
              of the existing 24-byte flow header, so [header_bytes] is
              unchanged.  Senders cap their flight at the latest value;
              zero quenches the flow until reopened (or probed). *)
      ts : Sim.Time.t;  (** Sender timestamp (for Timely RTT). *)
      ts_echo : Sim.Time.t;  (** Echoed timestamp of the acked packet. *)
      version : int;  (** Wire protocol version (§3.1). *)
      inc : int;
          (** Sender host incarnation.  Bumped when the host restarts
              after a crash; receivers drop packets stamped with a
              stale incarnation (no resurrecting pre-crash flows) and
              treat a newer one as proof the peer restarted. *)
      item : item;
    }

val header_bytes : int
(** Ethernet + IP + Pony flow header. *)

val current_version : int

val supported_versions : int list
(** Versions this release can speak; the out-of-band negotiation picks
    the least common denominator (§3.1). *)

val negotiate : int list -> int list -> int option
(** Highest version present in both lists. *)

val item_wire_bytes : item -> int
(** Extra header bytes the item contributes beyond payload. *)

val op_key_of_item :
  src_host:Memory.Packet.addr -> item -> Sim.Optrace.key option
(** Latency-attribution key of the op the item belongs to, given the
    host the packet leaves from.  Requests ([Msg_chunk],
    [One_sided_req]) originate at the sender; responses
    ([One_sided_resp], [Busy_nack]) at the destination.  [None] for
    items with no op (credit, resets, keepalives, bare acks). *)
