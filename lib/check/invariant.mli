(** Registry of named runtime invariants, evaluated at a cadence and at
    quiesce.

    Snap's production story (SOSP '19 §6–7) leans on always-on
    self-checking to make weekly transparent upgrades safe; this module
    is the simulator's version of that discipline.  Each layer registers
    predicates over its own live state when it constructs (flow flight
    accounting, connection credit conservation, op-pool byte
    conservation, SPSC/mailbox occupancy bounds, engine state-machine
    legality, sim-time monotonicity, event-heap ordering); the checker
    replays them every [period] of virtual time and once more when the
    workload quiesces.

    Checking is globally off by default.  While off, {!register} is a
    no-op (no registry growth, no closures held) and the hot paths pay
    nothing.  Turn it on with {!set_enabled} — the [--check] flag on
    [bench/main.exe] — before constructing the system under test. *)

exception Violation of string
(** Raised by a failed predicate: names the invariant, the virtual
    time, the detail supplied by the predicate, and (when span capture
    is on) the most recent span events as context. *)

type kind =
  | Cadence  (** Evaluated periodically and at quiesce (the default). *)
  | Quiesce_only
      (** Only meaningful once the system has drained (e.g. "op pool
          empty"); evaluated by {!quiesce} alone. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val begin_run : unit -> unit
(** Start a fresh run scope: drop every registration and counter from
    the previous run (their closures reference dead objects).  Call
    before constructing the system under test. *)

val register : ?kind:kind -> name:string -> (unit -> string option) -> unit
(** [register ~name pred] adds a predicate; [pred () = Some detail]
    means violated.  No-op while checking is disabled. *)

val install : loop:Sim.Loop.t -> ?period:Sim.Time.t -> unit -> unit
(** Bind the checker to [loop]: registers the simulator's own
    invariants (time monotonicity, heap ordering) and schedules
    {!check_now} every [period] (default 50 us) of virtual time.
    No-op while checking is disabled. *)

val check_now : unit -> unit
(** Evaluate every [Cadence] invariant immediately; raises {!Violation}
    on the first failure. *)

val quiesce : unit -> unit
(** Evaluate {e every} invariant, including [Quiesce_only] ones.  Call
    after the run drains, before tearing the system down. *)

val registered : unit -> int
val evaluations : unit -> int
(** Total predicate evaluations this run — the proof the checker
    actually ran. *)

val checks : unit -> int
(** Number of checker sweeps (cadence ticks plus explicit calls). *)

(** {1 Sabotage switches}

    Deliberate-bug flags proving the checker is not vacuous: production
    code consults {!sabotage} at a fault point and skips some piece of
    bookkeeping while the named flag is armed, and the sweep asserts the
    checker catches the resulting violation.  Test-only. *)

val set_sabotage : string -> bool -> unit
val sabotage : string -> bool
