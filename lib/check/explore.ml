(* Schedule-perturbation sweep (SimBricks-style determinism proof).

   A workload is a function of a seed and an event-loop tie-break salt
   returning a fingerprint string.  The sweep runs the full cross
   product seeds x salts, [repeats] times each, optionally with
   randomized Hashtbl hashing, and asserts two properties:

   - every run completes with all registered invariants holding
     (violations and stray exceptions are collected, not rethrown);
   - the fingerprint is a function of the seed alone: repeated runs,
     perturbed tie-breaks and randomized hash order must all reproduce
     it bit-for-bit.  Any divergence is hidden iteration-order or
     tie-order dependence somewhere in the stack. *)

type failure = { f_seed : int; f_salt : int; f_repeat : int; f_what : string }

type outcome = {
  total_runs : int;
  seeds : int list;
  salts : int list;
  repeats : int;
  hash_randomized : bool;
  failures : failure list;
  per_seed : (int * string list) list;
      (* seed -> distinct fingerprints observed (singleton on success) *)
}

let default_salts = [ 0; 1; 7 ]

let sweep ?(salts = default_salts) ?(repeats = 2) ?(randomize_hash = false)
    ~seeds ~run () =
  if seeds = [] then invalid_arg "Explore.sweep: seeds";
  if salts = [] then invalid_arg "Explore.sweep: salts";
  if repeats < 1 then invalid_arg "Explore.sweep: repeats";
  (* Process-global and irreversible: every Hashtbl created from here
     on gets a fresh random seed, so two repeats of the same run see
     different iteration orders — exactly the perturbation we want. *)
  if randomize_hash then Hashtbl.randomize ();
  let failures = ref [] in
  let per_seed = ref [] in
  let total = ref 0 in
  List.iter
    (fun seed ->
      let prints = ref [] in
      List.iter
        (fun salt ->
          for repeat = 1 to repeats do
            incr total;
            match run ~seed ~salt with
            | fp -> if not (List.mem fp !prints) then prints := fp :: !prints
            | exception Invariant.Violation msg ->
                failures := { f_seed = seed; f_salt = salt; f_repeat = repeat;
                              f_what = msg } :: !failures
            | exception exn ->
                failures := { f_seed = seed; f_salt = salt; f_repeat = repeat;
                              f_what = Printexc.to_string exn } :: !failures
          done)
        salts;
      (match List.rev !prints with
      | [] | [ _ ] -> ()
      | fps ->
          failures :=
            { f_seed = seed; f_salt = -1; f_repeat = 0;
              f_what =
                Printf.sprintf
                  "fingerprint diverged: %d distinct values across %d runs"
                  (List.length fps)
                  (List.length salts * repeats) } :: !failures);
      per_seed := (seed, List.rev !prints) :: !per_seed)
    seeds;
  {
    total_runs = !total;
    seeds;
    salts;
    repeats;
    hash_randomized = randomize_hash;
    failures = List.rev !failures;
    per_seed = List.rev !per_seed;
  }

let ok o = o.failures = []

let summary o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d runs (%d seeds x %d salts x %d repeats%s): %s\n"
       o.total_runs (List.length o.seeds) (List.length o.salts) o.repeats
       (if o.hash_randomized then ", randomized hashing" else "")
       (if ok o then "all invariants held, fingerprints stable per seed"
        else Printf.sprintf "%d FAILURES" (List.length o.failures)));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (if f.f_salt < 0 then
           Printf.sprintf "  seed %d: %s\n" f.f_seed f.f_what
         else
           Printf.sprintf "  seed %d salt %d repeat %d: %s\n" f.f_seed
             f.f_salt f.f_repeat f.f_what))
    o.failures;
  Buffer.contents buf
