(* Always-on self-checking (tentpole of the correctness harness).

   Every layer registers named predicates over its own live state at
   construction time; the checker evaluates them at a configurable
   cadence on the simulation loop, and again (plus quiesce-only
   predicates) when a workload quiesces.  Registration is a no-op while
   checking is disabled, so production runs pay nothing — not even
   registry growth.

   A run is scoped with {!begin_run}: it clears every registration from
   the previous run so predicate closures never probe dead objects.
   Violations raise {!Violation} carrying the invariant name, the
   virtual time, a caller-supplied detail string, and — when span
   capture is on — the tail of the span trace as context. *)

exception Violation of string

type kind = Cadence | Quiesce_only

type entry = { inv_name : string; inv_kind : kind; pred : unit -> string option }

let enabled_flag = ref false
let entries : entry list ref = ref []
let n_evals = ref 0
let n_checks = ref 0
let cur_loop : Sim.Loop.t option ref = ref None

(* Deliberate-bug switches, used to prove the checker is not vacuous:
   production code consults [sabotage] at a fault point and skips some
   bookkeeping when the named flag is armed.  Test-only. *)
let sabotage_flags : (string, unit) Hashtbl.t = Hashtbl.create 4

let set_sabotage name armed =
  if armed then Hashtbl.replace sabotage_flags name ()
  else Hashtbl.remove sabotage_flags name

let sabotage name = Hashtbl.mem sabotage_flags name

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let begin_run () =
  entries := [];
  cur_loop := None;
  n_evals := 0;
  n_checks := 0

let register ?(kind = Cadence) ~name pred =
  if !enabled_flag then
    entries := { inv_name = name; inv_kind = kind; pred } :: !entries

let registered () = List.length !entries
let evaluations () = !n_evals
let checks () = !n_checks

(* Recent span events give the violation report a "what was the system
   doing" tail without any extra bookkeeping of our own. *)
let span_context () =
  match Sim.Span.events () with
  | [] -> ""
  | evs ->
      let tail =
        let n = List.length evs in
        if n <= 8 then evs
        else List.filteri (fun i _ -> i >= n - 8) evs
      in
      "\n  recent spans:"
      ^ String.concat ""
          (List.map
             (fun (e : Sim.Span.event) ->
               Printf.sprintf "\n    %d %s/%s %s" e.Sim.Span.ev_ts
                 e.Sim.Span.ev_cat e.Sim.Span.ev_track e.Sim.Span.ev_name)
             tail)

let violation ~name ~now detail =
  raise
    (Violation
       (Printf.sprintf "invariant %s violated at t=%d: %s%s" name now detail
          (span_context ())))

let eval_entry ~now e =
  incr n_evals;
  match e.pred () with
  | None -> ()
  | Some detail -> violation ~name:e.inv_name ~now detail

let now_of_loop () =
  match !cur_loop with Some lp -> Sim.Loop.now lp | None -> 0

let check_now () =
  if !enabled_flag then begin
    incr n_checks;
    let now = now_of_loop () in
    List.iter
      (fun e -> if e.inv_kind = Cadence then eval_entry ~now e)
      !entries
  end

let quiesce () =
  if !enabled_flag then begin
    incr n_checks;
    let now = now_of_loop () in
    List.iter (fun e -> eval_entry ~now e) !entries
  end

let default_period = Sim.Time.us 50

let install ~loop ?(period = default_period) () =
  if !enabled_flag then begin
    cur_loop := Some loop;
    (* The simulator's own invariants: virtual time never moves
       backwards, and the pending-event heap stays a heap. *)
    let last_now = ref (Sim.Loop.now loop) in
    register ~name:"sim.time_monotonic" (fun () ->
        let now = Sim.Loop.now loop in
        if now < !last_now then
          Some (Printf.sprintf "clock moved backwards: %d -> %d" !last_now now)
        else begin
          last_now := now;
          None
        end);
    register ~name:"sim.heap_order" (fun () -> Sim.Loop.validate_heap loop);
    ignore (Sim.Loop.every loop period check_now)
  end
