(** Schedule-perturbation sweep: prove determinism instead of assuming
    it.

    Runs a workload across the cross product of seeds, event-loop
    tie-break salts ({!Sim.Loop.create}'s [tie_salt]) and optionally
    randomized [Hashtbl] hashing, collecting invariant violations and
    fingerprint divergence.  A correct stack satisfies: fingerprints
    are a function of the seed alone — identical across repeats,
    perturbed same-timestamp event ordering, and hash-iteration order.
    Anything else is hidden nondeterminism. *)

type failure = {
  f_seed : int;
  f_salt : int;  (** -1 for seed-level fingerprint divergence. *)
  f_repeat : int;
  f_what : string;
}

type outcome = {
  total_runs : int;
  seeds : int list;
  salts : int list;
  repeats : int;
  hash_randomized : bool;
  failures : failure list;
  per_seed : (int * string list) list;
      (** Distinct fingerprints observed per seed (singleton on
          success). *)
}

val sweep :
  ?salts:int list ->
  ?repeats:int ->
  ?randomize_hash:bool ->
  seeds:int list ->
  run:(seed:int -> salt:int -> string) ->
  unit ->
  outcome
(** [sweep ~seeds ~run ()] executes [run ~seed ~salt] for every
    seed/salt pair, [repeats] (default 2) times each; [salts] defaults
    to [[0; 1; 7]].  [randomize_hash] (default false) calls
    [Hashtbl.randomize ()] first — process-global and irreversible, so
    every run from then on sees randomized iteration order.
    {!Invariant.Violation}s and other exceptions become {!failure}s
    rather than escaping. *)

val ok : outcome -> bool

val summary : outcome -> string
(** Human-readable report, one line per failure. *)
