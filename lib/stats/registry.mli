(** Process-wide registry of named, labeled metrics.

    Every instrument in the system — fault counters, engine latency
    histograms, per-core utilization gauges, poller series — registers
    here under a (name, labels) key so that one [snapshot] (or
    [to_json]) enumerates the whole telemetry surface.  Constructors are
    {e create-or-get}: the first call under a key makes the instrument,
    later calls return the same one.  Asking for an existing key with a
    different kind raises [Invalid_argument].

    Determinism: snapshots are sorted by (name, labels), floats render
    through one fixed formatter, and nothing here touches wall-clock
    time or randomness — same-seed runs serialize byte-identically. *)

type labels = (string * string) list
(** Label sets are canonically sorted on registration, so label order at
    the call site does not matter. *)

type kind =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Series of Series.t

type metric = { m_name : string; m_labels : labels; m_kind : kind }

val counter : ?labels:labels -> string -> Counter.t
val gauge : ?labels:labels -> string -> Gauge.t

val gauge_fn : ?labels:labels -> string -> (unit -> float) -> Gauge.t
(** Create-or-get a gauge and (re-)install [f] as its sampler.  The last
    registration wins: components re-created under the same identity
    simply call this again and the gauge tracks the live instance. *)

val histogram : ?labels:labels -> ?sub_bits:int -> string -> Histogram.t
(** [sub_bits] only applies when the call creates the histogram. *)

val series : ?labels:labels -> string -> Series.t
val find : ?labels:labels -> string -> metric option

val snapshot : unit -> metric list
(** All registered metrics, sorted by (name, labels). *)

val reset_all : unit -> unit
(** Zero every registered instrument (counters and gauges to 0, samplers
    dropped, histograms and series emptied).  Registrations remain.  Use
    in test setup so metric state cannot leak between cases. *)

val clear : unit -> unit
(** Drop every registration entirely. *)

val to_json : unit -> string
(** The snapshot as one JSON document:
    [{"metrics":[{"name":..,"labels":{..},"type":..,...},...]}].
    Counters carry [value]; gauges a float [value]; histograms
    [count]/[sum]/[min]/[max]/[mean]/[p50]/[p90]/[p99]/[p999]; series
    the full [[time_ns, value], ...] point list. *)
