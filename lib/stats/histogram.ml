type t = {
  sub_bits : int;
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let max_index sub_bits =
  (* Values up to 2^62 land below this index. *)
  ((63 - sub_bits) * (1 lsl sub_bits)) + (1 lsl (sub_bits + 1))

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 10 then invalid_arg "Histogram.create";
  {
    sub_bits;
    counts = Array.make (max_index sub_bits) 0;
    total = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let msb_position v =
  (* Position of the most significant set bit; v > 0. *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of t v =
  let sb = t.sub_bits in
  if v < 1 lsl (sb + 1) then v
  else
    let m = msb_position v in
    let shift = m - sb in
    (shift lsl sb) + (v lsr shift)

(* Inverse of [index_of]: midpoint of the bucket. *)
let value_of t idx =
  let sb = t.sub_bits in
  if idx < 1 lsl (sb + 1) then idx
  else
    let shift = (idx lsr sb) - 1 in
    let sub = idx land ((1 lsl sb) - 1) lor (1 lsl sb) in
    let low = sub lsl shift in
    low + (1 lsl (shift - 1))

let record_n t v ~n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(index_of t v) <- t.counts.(index_of t v) + n;
    t.total <- t.total + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1
let count t = t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let sum t = t.sum
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = int_of_float (Float.round (q *. float_of_int t.total)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 and result = ref t.max_v and found = ref false in
    let i = ref 0 in
    let n = Array.length t.counts in
    while (not !found) && !i < n do
      acc := !acc + t.counts.(!i);
      if !acc >= target then begin
        result := value_of t !i;
        found := true
      end;
      incr i
    done;
    (* Clamp into the observed range: bucket midpoints can stick out. *)
    Stdlib.min (Stdlib.max !result t.min_v) t.max_v
  end

let percentile t p = quantile t (p /. 100.)

(* Bucket bounds: [low, low + width).  Derived the same way as
   [value_of]'s midpoint. *)
let bucket_bounds t idx =
  let sb = t.sub_bits in
  if idx < 1 lsl (sb + 1) then (float_of_int idx, 1.0)
  else
    let shift = (idx lsr sb) - 1 in
    let sub = idx land ((1 lsl sb) - 1) lor (1 lsl sb) in
    (float_of_int (sub lsl shift), float_of_int (1 lsl shift))

let quantile_interp t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    (* Rank in [0, total - 1], continuous: linear interpolation within
       the bucket the rank lands in, like a sorted-array quantile with
       each bucket's mass spread evenly over its value range. *)
    let rank = q *. float_of_int (t.total - 1) in
    let acc = ref 0 and result = ref (float_of_int t.max_v) in
    let found = ref false in
    let i = ref 0 in
    let n = Array.length t.counts in
    while (not !found) && !i < n do
      let c = t.counts.(!i) in
      if c > 0 && rank < float_of_int (!acc + c) then begin
        let low, width = bucket_bounds t !i in
        let frac = (rank -. float_of_int !acc +. 0.5) /. float_of_int c in
        result := low +. (frac *. width);
        found := true
      end;
      acc := !acc + c;
      incr i
    done;
    Float.min (Float.max !result (float_of_int (min_value t))) (float_of_int t.max_v)
  end

let merge_into ~src ~dst =
  if src.sub_bits <> dst.sub_bits then
    invalid_arg
      (Printf.sprintf
         "Histogram.merge_into: sub_bits mismatch (src %d, dst %d)"
         src.sub_bits dst.sub_bits);
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum + src.sum;
  if src.total > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let cdf t ?(points = 100) () =
  if t.total = 0 then []
  else
    List.init points (fun i ->
        let q = float_of_int (i + 1) /. float_of_int points in
        (quantile t q, q))

let pp_summary fmt t =
  if t.total = 0 then Format.fprintf fmt "(empty)"
  else
    Format.fprintf fmt
      "n=%d mean=%a p50=%a p90=%a p99=%a p99.9=%a max=%a" t.total Sim.Time.pp
      (int_of_float (mean t))
      Sim.Time.pp (percentile t 50.) Sim.Time.pp (percentile t 90.) Sim.Time.pp
      (percentile t 99.) Sim.Time.pp (percentile t 99.9) Sim.Time.pp t.max_v
