(** Named monotonic counters.

    The simplest telemetry primitive: subsystems that want queryable
    event counts (fault injections, retransmissions) expose these instead
    of ad-hoc mutable ints, so reports can enumerate them uniformly. *)

type t

val create : name:string -> t
val incr : ?by:int -> t -> unit
val value : t -> int
val name : t -> string
val reset : t -> unit
val pp : Format.formatter -> t -> unit
