type t = {
  series_name : string;
  mutable times : Sim.Time.t array;
  mutable values : float array;
  mutable n : int;
}

let create ?(name = "") () =
  { series_name = name; times = Array.make 64 0; values = Array.make 64 0.0; n = 0 }

let name t = t.series_name

let add t time v =
  if t.n = Array.length t.times then begin
    let cap = 2 * t.n in
    let times = Array.make cap 0 and values = Array.make cap 0.0 in
    Array.blit t.times 0 times 0 t.n;
    Array.blit t.values 0 values 0 t.n;
    t.times <- times;
    t.values <- values
  end;
  t.times.(t.n) <- time;
  t.values.(t.n) <- v;
  t.n <- t.n + 1

let length t = t.n
let clear t = t.n <- 0

let to_list t =
  List.init t.n (fun i -> (t.times.(i), t.values.(i)))

let max_value t =
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    if t.values.(i) > !best then best := t.values.(i)
  done;
  !best

let last_value t = if t.n = 0 then 0.0 else t.values.(t.n - 1)

let iter t f =
  for i = 0 to t.n - 1 do
    f t.times.(i) t.values.(i)
  done

let pp_table fmt t =
  iter t (fun time v ->
      Format.fprintf fmt "%10.2f  %12.2f@." (Sim.Time.to_float_ms time) v)
