(** Named point-in-time values.

    A gauge reports the current value of something — a queue depth, a
    utilization fraction — rather than an accumulated count.  Gauges are
    either {e pushed} ({!set}/{!add} store a value) or {e pulled}: after
    {!set_sampler} the gauge reads its value through the sampler closure
    at query time, so registry snapshots always see fresh state without
    the owner having to publish on every change. *)

type t

val create : name:string -> t
val name : t -> string

val set : t -> float -> unit
(** Store a value (ignored while a sampler is installed). *)

val add : t -> float -> unit

val set_sampler : t -> (unit -> float) -> unit
(** Switch the gauge to pull mode: {!value} calls [f] from now on.
    Installing a new sampler replaces the previous one — re-created
    components (a fresh machine with the same name) simply re-register
    and the gauge follows the latest instance. *)

val clear_sampler : t -> unit

val value : t -> float
(** The sampler's result in pull mode, the stored value otherwise. *)

val reset : t -> unit
(** Zero the stored value and drop any sampler. *)

val pp : Format.formatter -> t -> unit
