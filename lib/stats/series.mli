(** Append-only time series of (virtual time, value) samples.

    Used for dashboard-style outputs such as the Figure 8 IOPS plot. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> Sim.Time.t -> float -> unit
val length : t -> int

val clear : t -> unit
(** Drop all samples (capacity is retained). *)


val to_list : t -> (Sim.Time.t * float) list
val max_value : t -> float
(** Largest sample; 0 when empty. *)

val last_value : t -> float

val iter : t -> (Sim.Time.t -> float -> unit) -> unit

val pp_table : Format.formatter -> t -> unit
(** Render as two columns: time (ms) and value. *)
