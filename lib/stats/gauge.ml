type t = {
  g_name : string;
  mutable v : float;
  mutable sampler : (unit -> float) option;
}

let create ~name = { g_name = name; v = 0.0; sampler = None }
let name t = t.g_name
let set t x = t.v <- x
let add t x = t.v <- t.v +. x

let set_sampler t f = t.sampler <- Some f
let clear_sampler t = t.sampler <- None

let value t = match t.sampler with Some f -> f () | None -> t.v

let reset t =
  t.v <- 0.0;
  t.sampler <- None

let pp fmt t = Format.fprintf fmt "%s=%g" t.g_name (value t)
