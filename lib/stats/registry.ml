(* Process-wide metric registry.

   One global table keyed by (metric name, canonically sorted labels).
   Constructors are create-or-get: asking twice for the same key returns
   the same instrument, so instrumentation sites never need to thread
   metric handles through module boundaries.  Everything here is
   deterministic — snapshots are sorted, floats render through one fixed
   formatter, and nothing reads wall-clock state. *)

type labels = (string * string) list

type kind =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Series of Series.t

type metric = { m_name : string; m_labels : labels; m_kind : kind }

let table : (string * labels, metric) Hashtbl.t = Hashtbl.create 128

let canon labels = List.sort compare labels

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

(* Create-or-get: return the existing kind under this key, or install the
   freshly made one.  Callers pattern-match the result and reject kind
   mismatches with a descriptive [Invalid_argument]. *)
let add_metric name labels kind =
  let key = (name, canon labels) in
  match Hashtbl.find_opt table key with
  | Some m -> m.m_kind
  | None ->
      Hashtbl.add table key { m_name = name; m_labels = snd key; m_kind = kind };
      kind

let counter ?(labels = []) name =
  match add_metric name labels (Counter (Counter.create ~name)) with
  | Counter c -> c
  | k ->
      invalid_arg
        (Printf.sprintf "Registry.counter: %s is already a %s" name
           (kind_label k))

let gauge ?(labels = []) name =
  match add_metric name labels (Gauge (Gauge.create ~name)) with
  | Gauge g -> g
  | k ->
      invalid_arg
        (Printf.sprintf "Registry.gauge: %s is already a %s" name
           (kind_label k))

let gauge_fn ?(labels = []) name f =
  let g = gauge ~labels name in
  (* Last registration wins: components re-created under the same name
     (a fresh machine per bench section) re-point the gauge at the live
     instance instead of sampling a stale closure. *)
  Gauge.set_sampler g f;
  g

let histogram ?(labels = []) ?sub_bits name =
  match add_metric name labels (Histogram (Histogram.create ?sub_bits ())) with
  | Histogram h -> h
  | k ->
      invalid_arg
        (Printf.sprintf "Registry.histogram: %s is already a %s" name
           (kind_label k))

let series ?(labels = []) name =
  match add_metric name labels (Series (Series.create ~name ())) with
  | Series s -> s
  | k ->
      invalid_arg
        (Printf.sprintf "Registry.series: %s is already a %s" name
           (kind_label k))

let find ?(labels = []) name =
  Hashtbl.find_opt table (name, canon labels)

let snapshot () =
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) table [] in
  List.sort
    (fun a b ->
      match compare a.m_name b.m_name with
      | 0 -> compare a.m_labels b.m_labels
      | c -> c)
    all

let reset_all () =
  Hashtbl.iter
    (fun _ m ->
      match m.m_kind with
      | Counter c -> Counter.reset c
      | Gauge g -> Gauge.reset g
      | Histogram h -> Histogram.clear h
      | Series s -> Series.clear s)
    table

let clear () = Hashtbl.reset table

(* -- JSON rendering ----------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_string buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

(* One fixed float format everywhere so same-seed runs are byte-identical. *)
let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let add_labels buf labels =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_string buf k;
      Buffer.add_char buf ':';
      add_string buf v)
    labels;
  Buffer.add_char buf '}'

let add_kind buf = function
  | Counter c -> Printf.bprintf buf "\"type\":\"counter\",\"value\":%d" (Counter.value c)
  | Gauge g ->
      Buffer.add_string buf "\"type\":\"gauge\",\"value\":";
      add_float buf (Gauge.value g)
  | Histogram h ->
      Printf.bprintf buf
        "\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":"
        (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
        (Histogram.max_value h);
      add_float buf (Histogram.mean h);
      Printf.bprintf buf ",\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d"
        (Histogram.percentile h 50.) (Histogram.percentile h 90.)
        (Histogram.percentile h 99.)
        (Histogram.percentile h 99.9)
  | Series s ->
      Printf.bprintf buf "\"type\":\"series\",\"length\":%d,\"points\":["
        (Series.length s);
      let first = ref true in
      Series.iter s (fun t v ->
          if !first then first := false else Buffer.add_char buf ',';
          Printf.bprintf buf "[%d," t;
          add_float buf v;
          Buffer.add_char buf ']');
      Buffer.add_char buf ']'

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      add_string buf m.m_name;
      Buffer.add_string buf ",\"labels\":";
      add_labels buf m.m_labels;
      Buffer.add_char buf ',';
      add_kind buf m.m_kind;
      Buffer.add_char buf '}')
    (snapshot ());
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
