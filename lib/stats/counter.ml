type t = { c_name : string; mutable n : int }

let create ~name = { c_name = name; n = 0 }
let incr ?(by = 1) t = t.n <- t.n + by
let value t = t.n
let name t = t.c_name
let reset t = t.n <- 0
let pp fmt t = Format.fprintf fmt "%s=%d" t.c_name t.n
