(** Log-linear histogram for latency-style measurements.

    HDR-histogram-like bucketing: values are grouped into power-of-two
    ranges, each subdivided linearly into [2^sub_bits] buckets, giving a
    bounded relative error (about 1.5% with the default 5 sub bits) over
    the full non-negative integer range.  Records are O(1); quantile
    queries walk the buckets. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [create ~sub_bits ()] makes an empty histogram.  [sub_bits] (default
    5) controls relative precision: error is about [2^-(sub_bits+1)]. *)

val index_of : t -> int -> int
(** Bucket index a value lands in; exposed so the bucketing's round-trip
    and error-bound properties are testable. *)

val value_of : t -> int -> int
(** Midpoint value of a bucket: a right inverse of [index_of] up to the
    bucket's relative error, i.e. [index_of t (value_of t i) = i]. *)

val record : t -> int -> unit
(** Record a non-negative value (negative values are clamped to 0). *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times. *)

val count : t -> int
val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
val mean : t -> float
val sum : t -> int

val quantile : t -> float -> int
(** [quantile t q] with [q] in [\[0, 1\]] is an approximation of the
    [q]-quantile of the recorded values.  0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] is [quantile t (p /. 100.)]. *)

val quantile_interp : t -> float -> float
(** [quantile_interp t q] is an interpolated [q]-quantile: the rank
    [q * (count - 1)] is located in its bucket and the result linearly
    interpolated across the bucket's value range (each bucket's mass
    spread evenly), then clamped into [[min_value, max_value]].  Exact
    for values below [2^(sub_bits+1)] (width-1 buckets); within the
    bucket's relative error elsewhere.  0 when empty.  The stage
    breakdown report's p50/p99/p99.9 come from here. *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src]'s records into [dst].

    @raise Invalid_argument if the histograms were created with
    different [sub_bits]: their bucket grids are incompatible, and a
    bucketwise add would silently misplace counts. *)

val clear : t -> unit

val cdf : t -> ?points:int -> unit -> (int * float) list
(** [cdf t ~points ()] samples the distribution as [(value, fraction <=
    value)] pairs at the given number of evenly spaced quantiles. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99/p99.9, max (values
    rendered as times in ns). *)
