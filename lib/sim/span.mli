(** Virtual-time span tracing.

    Structured companion to {!Trace}: subsystems record named events —
    engine batch executions, Pony flow transmissions, upgrade phases,
    fault injections — stamped with the virtual clock, grouped onto
    named tracks, and exportable as Chrome trace-event JSON (loadable in
    [chrome://tracing] or ui.perfetto.dev).

    Capture is global and off by default; when off, {!emit} is a single
    load-and-branch, so instrumented hot paths cost nothing measurable.
    Callers that build argument strings should guard the whole block
    with {!enabled}.  The ring is bounded and drops oldest-first;
    {!dropped} reports the overflow so exports are never silently
    truncated.  Events carry only simulation state, so same-seed runs
    produce byte-identical traces. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : Time.t;
  ev_dur : Time.t option;  (** [None] is an instant event *)
  ev_track : string;
  ev_args : (string * string) list;
  ev_flow : (int * bool) option;
      (** flow-event binding [(id, is_start)]; rendered as Chrome
          [ph:"s"] / [ph:"f"] so the two ends draw as one arrow *)
}

val set_capture : int option -> unit
(** [set_capture (Some n)] starts capturing into a fresh ring holding
    the most recent [n] events; [set_capture None] stops capturing and
    drops the ring.  @raise Invalid_argument on a non-positive size. *)

val enabled : unit -> bool
(** Cheap guard for instrumentation sites. *)

val emit :
  Loop.t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  ?start:Time.t ->
  ?dur:Time.t ->
  string ->
  unit
(** [emit loop name] records an event at [Loop.now loop] on [track]
    (default ["main"], rendered as a thread lane).  With [dur] it
    becomes a span of that length; [start] overrides the begin
    timestamp, for spans measured only once they finish.  No-op while
    capture is off. *)

val emit_flow :
  Loop.t -> ?cat:string -> ?track:string -> id:int -> first:bool -> string -> unit
(** [emit_flow loop ~id ~first name] records one end of a flow arrow:
    [first = true] opens it, [first = false] closes it (bound to the
    enclosing slice's end).  The two ends must share [name], [cat], and
    [id] for viewers to connect them.  No-op while capture is off. *)

val events : unit -> event list
(** Captured events, oldest first; empty while capture is off. *)

val clear : unit -> unit
(** Drop captured events and the drop count, keeping capture active. *)

val dropped : unit -> int
(** Events evicted from the ring since capture started (or {!clear}). *)

val to_chrome_json : unit -> string
(** The capture as one Chrome trace-event JSON document: a
    [thread_name] metadata record per track, then every event in
    capture order ([ph:"X"] spans or [ph:"i"] instants, timestamps in
    microseconds), plus the drop count under [otherData]. *)
