(** Mutable binary min-heap.

    Used by the event queue and by schedulers.  Elements are ordered by an
    integer key supplied at insertion; ties are broken by insertion order so
    that iteration is deterministic.

    A non-zero [salt] deterministically perturbs the tie-break among
    equal keys (a hash of the salt and insertion sequence instead of
    FIFO).  The perturbation sweep runs workloads under several salts to
    flush out code that silently depends on FIFO ordering of
    same-timestamp events; every salt still gives fully reproducible
    pops. *)

type 'a t

val create : ?salt:int -> unit -> 'a t

val salt : 'a t -> int
(** The tie-break salt this heap was created with (0 = FIFO ties). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val min_key : 'a t -> int option
(** Key of the minimum element, if any. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a

val clear : 'a t -> unit

val validate : 'a t -> string option
(** [None] when the internal array satisfies the heap property and the
    bookkeeping is coherent; otherwise a description of the violation.
    O(n); meant for the invariant checker, not hot paths. *)
