(* Per-op latency attribution.

   One record per Pony Express op, keyed by (origin host, origin
   client, peer, conn session, direction, op id) — enough to name an op
   uniquely across hosts and across reconnects.  Layers stamp stage
   transitions; each stamp charges the time since the previous stamp to
   the stage being entered and advances a cursor, so the charged
   durations of a completed op telescope to exactly [r_end - r_start].
   That equality is the conservation invariant: it is checked eagerly
   when an op finishes and the first failure is held for the checker.

   Shapes follow [Span]: capture globally off behind one bool, bounded
   storage, drop-oldest, no wall clock, no randomness. *)

type key = {
  k_origin : int;
  k_origin_client : int;
  k_peer : int;
  k_session : int;
  k_origin_init : bool;
  k_op : int;
}

type stage =
  | Submitted
  | Admitted
  | Dequeued
  | Credit
  | First_tx
  | Rx_first
  | Rx_done
  | Delivered
  | Completed

type stall = Retx | Rto | Zero_window

let n_stages = 9

let stage_index = function
  | Submitted -> 0
  | Admitted -> 1
  | Dequeued -> 2
  | Credit -> 3
  | First_tx -> 4
  | Rx_first -> 5
  | Rx_done -> 6
  | Delivered -> 7
  | Completed -> 8

let stage_of_index = function
  | 0 -> Submitted
  | 1 -> Admitted
  | 2 -> Dequeued
  | 3 -> Credit
  | 4 -> First_tx
  | 5 -> Rx_first
  | 6 -> Rx_done
  | 7 -> Delivered
  | 8 -> Completed
  | i -> invalid_arg (Printf.sprintf "Optrace.stage_of_index: %d" i)

let stage_name = function
  | Submitted -> "submitted"
  | Admitted -> "admitted"
  | Dequeued -> "dequeued"
  | Credit -> "credit"
  | First_tx -> "first_tx"
  | Rx_first -> "rx_first"
  | Rx_done -> "rx_done"
  | Delivered -> "delivered"
  | Completed -> "completed"

type record = {
  r_key : key;
  r_kind : string;
  r_bytes : int;
  r_start : Time.t;
  mutable r_end : Time.t;
  mutable r_status : string;
  durs : int array;
  stamps : Time.t array;
  mutable r_last : Time.t;
  mutable r_retx : int;
  mutable r_rto : int;
  mutable r_zw : int;
  r_seq : int;
}

type state = {
  inflight : (key, record) Hashtbl.t;
  (* Start order of in-flight keys (with their seq), so over-cap
     eviction finds the oldest without scanning the table. *)
  order : (key * int) Queue.t;
  ring : record Queue.t;
  cap : int;
  mutable n_dropped : int;
  mutable next_seq : int;
  mutable violation : string option;
}

let state : state option ref = ref None
let active = ref false
let sink : (int -> int -> unit) option ref = ref None

let enabled () = !active
let set_stage_sink f = sink := f

let set_capture = function
  | None ->
      active := false;
      state := None
  | Some cap ->
      if cap <= 0 then invalid_arg "Optrace.set_capture: capacity";
      active := true;
      state :=
        Some
          {
            inflight = Hashtbl.create (min cap 1024);
            order = Queue.create ();
            ring = Queue.create ();
            cap;
            n_dropped = 0;
            next_seq = 0;
            violation = None;
          }

let clear () =
  match !state with
  | None -> ()
  | Some s ->
      Hashtbl.reset s.inflight;
      Queue.clear s.order;
      Queue.clear s.ring;
      s.n_dropped <- 0;
      s.next_seq <- 0;
      s.violation <- None

let in_flight () =
  match !state with None -> 0 | Some s -> Hashtbl.length s.inflight

let completed () =
  match !state with None -> [] | Some s -> List.of_seq (Queue.to_seq s.ring)

let dropped () = match !state with None -> 0 | Some s -> s.n_dropped
let conservation_error () = match !state with None -> None | Some s -> s.violation

let pp_key buf k =
  Printf.bprintf buf "%d.%d->%d s%d%s #%d" k.k_origin k.k_origin_client
    k.k_peer k.k_session
    (if k.k_origin_init then "i" else "t")
    k.k_op

let key_string k =
  let buf = Buffer.create 32 in
  pp_key buf k;
  Buffer.contents buf

(* Evict the oldest in-flight record while the table is over capacity.
   Queue entries for records that already finished are skipped by
   comparing sequence numbers. *)
let evict_over_cap s =
  while Hashtbl.length s.inflight > s.cap && not (Queue.is_empty s.order) do
    let k, seq = Queue.take s.order in
    match Hashtbl.find_opt s.inflight k with
    | Some r when r.r_seq = seq ->
        Hashtbl.remove s.inflight k;
        s.n_dropped <- s.n_dropped + 1
    | _ -> ()
  done

let start loop key ~kind ~bytes =
  match !state with
  | None -> ()
  | Some s ->
      if not (Hashtbl.mem s.inflight key) then begin
        let now = Loop.now loop in
        let r =
          {
            r_key = key;
            r_kind = kind;
            r_bytes = bytes;
            r_start = now;
            r_end = -1;
            r_status = "";
            durs = Array.make n_stages 0;
            stamps = Array.make n_stages (-1);
            r_last = now;
            r_retx = 0;
            r_rto = 0;
            r_zw = 0;
            r_seq = s.next_seq;
          }
        in
        s.next_seq <- s.next_seq + 1;
        r.stamps.(stage_index Submitted) <- now;
        Hashtbl.replace s.inflight key r;
        Queue.add (key, r.r_seq) s.order;
        evict_over_cap s
      end

let charge_stage r si ~charge now =
  if r.stamps.(si) < 0 then begin
    r.stamps.(si) <- now;
    let d = now - r.r_last in
    r.r_last <- now;
    if charge then begin
      r.durs.(si) <- r.durs.(si) + d;
      match !sink with None -> () | Some f -> f si d
    end
  end

let stamp loop ?(charge = true) key stage =
  match !state with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.inflight key with
      | None -> ()
      | Some r ->
          let now = Loop.now loop in
          let si = stage_index stage in
          let fresh = r.stamps.(si) < 0 in
          charge_stage r si ~charge now;
          (* First transmission: open the cross-host flow arrow on the
             origin's op track.  The zero-length span anchors it. *)
          if fresh && stage = First_tx && Span.enabled () then begin
            let track = Printf.sprintf "host%d ops" key.k_origin in
            let name = key_string key in
            Span.emit loop ~cat:"op" ~track ~dur:0 name;
            Span.emit_flow loop ~cat:"op" ~track ~id:r.r_seq ~first:true name
          end)

let stall key which =
  match !state with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.inflight key with
      | None -> ()
      | Some r -> (
          match which with
          | Retx -> r.r_retx <- r.r_retx + 1
          | Rto -> r.r_rto <- r.r_rto + 1
          | Zero_window -> r.r_zw <- r.r_zw + 1))

let finish loop ?(charge = true) key ~host ~status =
  match !state with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.inflight key with
      | None -> ()
      | Some r ->
          let now = Loop.now loop in
          charge_stage r (stage_index Completed) ~charge now;
          r.r_end <- now;
          r.r_status <- status;
          Hashtbl.remove s.inflight key;
          Queue.add r s.ring;
          if Queue.length s.ring > s.cap then begin
            ignore (Queue.take s.ring);
            s.n_dropped <- s.n_dropped + 1
          end;
          (* Conservation: charged stage time must equal end-to-end
             latency.  Checked here, once per op, so the invariant
             predicate is a field read. *)
          (if s.violation = None then
             let total = Array.fold_left ( + ) 0 r.durs in
             if total <> r.r_end - r.r_start then
               s.violation <-
                 Some
                   (Printf.sprintf
                      "op %s: stage durations sum to %dns, end-to-end %dns"
                      (key_string r.r_key) total (r.r_end - r.r_start)));
          (* Close the flow arrow where the op finished. *)
          if r.stamps.(stage_index First_tx) >= 0 && Span.enabled () then begin
            let track = Printf.sprintf "host%d ops" host in
            let name = key_string key in
            Span.emit loop ~cat:"op" ~track ~dur:0 name;
            Span.emit_flow loop ~cat:"op" ~track ~id:r.r_seq ~first:false name
          end)

let iter_in_flight f =
  match !state with
  | None -> ()
  | Some s ->
      let all = Hashtbl.fold (fun _ r acc -> r :: acc) s.inflight [] in
      let all = List.sort (fun a b -> compare a.r_seq b.r_seq) all in
      List.iter f all

(* -- Slowest-op exemplar export ----------------------------------------- *)

let slow_ops_json ?(k = 32) () =
  let lat r = r.r_end - r.r_start in
  let slowest =
    List.sort
      (fun a b ->
        match compare (lat b) (lat a) with
        | 0 -> compare a.r_seq b.r_seq
        | c -> c)
      (completed ())
  in
  let slowest = List.filteri (fun i _ -> i < k) slowest in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"completed\":%d,\"dropped\":%d,\"in_flight\":%d,\"slow_ops\":["
    (List.length (completed ()))
    (dropped ()) (in_flight ());
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"op\":\"%s\",\"kind\":\"%s\",\"bytes\":%d,\"status\":\"%s\",\
         \"start_ns\":%d,\"end_ns\":%d,\"latency_ns\":%d,\"retx\":%d,\
         \"rto\":%d,\"zero_window\":%d,\"stages\":["
        (key_string r.r_key) r.r_kind r.r_bytes r.r_status r.r_start r.r_end
        (lat r) r.r_retx r.r_rto r.r_zw;
      let first = ref true in
      for si = 0 to n_stages - 1 do
        if r.stamps.(si) >= 0 then begin
          if !first then first := false else Buffer.add_char buf ',';
          Printf.bprintf buf "{\"stage\":\"%s\",\"at_ns\":%d,\"dur_ns\":%d}"
            (stage_name (stage_of_index si))
            r.stamps.(si) r.durs.(si)
        end
      done;
      Buffer.add_string buf "]}")
    slowest;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
