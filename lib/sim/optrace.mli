(** Per-op latency attribution records.

    Where {!Span} captures free-form events, Optrace follows a single
    Pony Express op through its whole cross-host lifecycle — submitted,
    admission-charged, command-queue dequeued, credit-granted, first
    transmission, receiver reassembly, delivery, completion — and
    charges the virtual time between consecutive stamps to the stage
    being entered.  Because every stamp advances one cursor, the stage
    durations of a completed op telescope to exactly its end-to-end
    latency; the conservation check below turns that into an enforceable
    invariant (and a skipped charge — the sabotage lever — breaks it).

    Capture is off by default and guarded by one mutable bool, like
    {!Span}.  In-flight records live in a bounded table (oldest evicted
    first); completed records land in a bounded drop-oldest ring.
    Everything is driven by the sim clock, so same-seed runs produce
    byte-identical capture. *)

type key = {
  k_origin : int;  (** host address of the submitting side *)
  k_origin_client : int;
  k_peer : int;  (** host address of the remote side *)
  k_session : int;  (** conn session — disambiguates reconnects *)
  k_origin_init : bool;
      (** the origin is the conn's initiator side; disambiguates the two
          directions of one conn, whose sessions coincide *)
  k_op : int;
}

type stage =
  | Submitted
  | Admitted
  | Dequeued
  | Credit
  | First_tx
  | Rx_first
  | Rx_done
  | Delivered
  | Completed

type stall = Retx | Rto | Zero_window

type record = {
  r_key : key;
  r_kind : string;
  r_bytes : int;
  r_start : Time.t;
  mutable r_end : Time.t;  (** [-1] while in flight *)
  mutable r_status : string;
  durs : int array;  (** per-stage charged ns, indexed by {!stage_index} *)
  stamps : Time.t array;  (** absolute stamp times; [-1] = never stamped *)
  mutable r_last : Time.t;  (** charge cursor: time of the last stamp *)
  mutable r_retx : int;
  mutable r_rto : int;
  mutable r_zw : int;
  r_seq : int;  (** global start order, for deterministic tie-breaks *)
}

val n_stages : int
val stage_index : stage -> int
val stage_name : stage -> string
val stage_of_index : int -> stage

val set_capture : int option -> unit
(** [set_capture (Some n)] starts capturing: at most [n] in-flight
    records and [n] completed records are retained (oldest dropped
    first).  [set_capture None] stops and drops everything.
    @raise Invalid_argument on a non-positive size. *)

val enabled : unit -> bool
(** Cheap guard for instrumentation sites. *)

val start : Loop.t -> key -> kind:string -> bytes:int -> unit
(** Open a record at [Loop.now]; stamps [Submitted].  No-op while
    capture is off or if the key is already in flight. *)

val stamp : Loop.t -> ?charge:bool -> key -> stage -> unit
(** Stamp a stage transition: charges [now - r_last] to [stage] and
    advances the cursor.  Idempotent — a second stamp of the same stage
    is ignored entirely.  [~charge:false] advances the cursor {e
    without} charging, deliberately losing time from the attribution
    (the sabotage lever for the conservation invariant).  No-op for
    unknown keys. *)

val stall : key -> stall -> unit
(** Count a stall (retransmission, RTO, zero-window probe) against an
    in-flight op.  Stalls are counters, not stages: the time they cover
    is still charged to whichever stage the op is traversing. *)

val finish : Loop.t -> ?charge:bool -> key -> host:int -> status:string -> unit
(** Close a record: stamps [Completed], sets the end time and status,
    and moves it to the completed ring.  [host] is where the op
    finished (delivery host for messages, origin for everything else)
    and anchors the receiving end of the {!Span} flow arrow.  No-op for
    unknown keys. *)

val in_flight : unit -> int
val completed : unit -> record list
(** Completed records still in the ring, oldest first. *)

val dropped : unit -> int
(** Completed records evicted from the ring, plus in-flight records
    evicted from the table, since capture started (or {!clear}). *)

val iter_in_flight : (record -> unit) -> unit
(** Iterate in-flight records in start order (deterministic). *)

val clear : unit -> unit
(** Drop all records and the drop count, keeping capture active. *)

val conservation_error : unit -> string option
(** The first completed op whose stage durations failed to sum to its
    end-to-end latency, if any.  Checked eagerly at {!finish}; the
    sticky error makes a cheap {!Check.Invariant} predicate. *)

val set_stage_sink : (int -> int -> unit) option -> unit
(** Install a callback receiving [(stage_index, duration_ns)] for every
    charged stamp.  [Sim] cannot depend on [Stats], so the histogram
    recording lives behind this hook; [Pony.Express] installs it. *)

val slow_ops_json : ?k:int -> unit -> string
(** The [k] (default 32) slowest completed ops as one JSON document:
    end-to-end latency, status, stall counts, and the full absolute
    stage timeline per op.  Deterministic: sorted by latency then
    start order. *)
