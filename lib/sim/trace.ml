type level = Error | Warn | Info | Debug

let threshold : level option ref = ref None
let components : (string, unit) Hashtbl.t = Hashtbl.create 8
let filter_components = ref false

let set_level l = threshold := l

let enable_component c =
  filter_components := true;
  Hashtbl.replace components c ()

let clear_components () =
  filter_components := false;
  Hashtbl.reset components

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let enabled lvl =
  match !threshold with None -> false | Some t -> severity lvl <= severity t

let component_enabled c = (not !filter_components) || Hashtbl.mem components c

let label = function
  | Error -> "ERROR"
  | Warn -> "WARN "
  | Info -> "INFO "
  | Debug -> "DEBUG"

(* In-memory capture: a bounded ring of recent lines, so tests can assert
   on emitted events instead of scraping stderr.  While active, lines
   that pass the filters go to the ring only. *)
type ring = { lines : string Queue.t; cap : int }

let capture_ring : ring option ref = ref None

let set_capture = function
  | None -> capture_ring := None
  | Some cap ->
      if cap <= 0 then invalid_arg "Trace.set_capture: capacity";
      capture_ring := Some { lines = Queue.create (); cap }

let capture_line r s =
  Queue.add s r.lines;
  if Queue.length r.lines > r.cap then ignore (Queue.take r.lines)

let captured () =
  match !capture_ring with
  | None -> []
  | Some r -> List.of_seq (Queue.to_seq r.lines)

let clear_capture () =
  match !capture_ring with None -> () | Some r -> Queue.clear r.lines

let emit loop lvl ~component fmt =
  if enabled lvl && component_enabled component then
    match !capture_ring with
    | Some r ->
        Format.kasprintf (capture_line r)
          ("[%a] %s %s: " ^^ fmt)
          Time.pp (Loop.now loop) (label lvl) component
    | None ->
        Format.eprintf
          ("[%a] %s %s: " ^^ fmt ^^ "@.")
          Time.pp (Loop.now loop) (label lvl) component
  else
    (* Rejected line: consume the arguments without interpreting the
       format at all.  Unlike [ifprintf], [ikfprintf] never walks the
       format string, so %a/%t printers are not even looked at and a hot
       path with tracing off pays only this branch. *)
    Format.ikfprintf ignore Format.err_formatter fmt
