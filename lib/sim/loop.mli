(** The discrete-event simulation driver.

    A [Loop.t] owns the virtual clock and the pending-event queue.  All
    simulated components schedule closures against it.  Events scheduled
    for the same instant fire in scheduling order (FIFO), which keeps runs
    deterministic. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int -> ?tie_salt:int -> unit -> t
(** [create ~seed ()] makes a fresh simulation at time zero.  [seed]
    (default 42) seeds the root RNG stream.  [tie_salt] (default 0)
    deterministically perturbs the ordering of same-timestamp events:
    0 keeps scheduling-order (FIFO) ties, any other value replays them
    in a salted but still fully reproducible order — the perturbation
    sweep's lever against hidden tie-order dependence. *)

val now : t -> Time.t
(** Current virtual time. *)

val tie_salt : t -> int
(** The tie-break salt this loop was created with. *)

val validate_heap : t -> string option
(** Heap-property sanity check over the pending-event queue ([None] =
    healthy).  O(pending); used by the invariant checker. *)

val rng : t -> Rng.t
(** The root RNG stream of this simulation.  Components should [Rng.split]
    their own stream from it at construction time. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t when_ f] schedules [f] to run at absolute time [when_].  If
    [when_] is in the past, [f] runs at the current instant, after all
    already-pending events for it. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** [after t d f] schedules [f] at [now t + d]. *)

val cancel : handle -> unit
(** Cancel a pending event.  Cancelling an event that has already fired is
    a no-op. *)

val is_pending : handle -> bool

val every : t -> ?start:Time.t -> Time.t -> (unit -> unit) -> handle
(** [every t ~start period f] runs [f] periodically, first at [start]
    (default [now + period]).  The returned handle cancels the whole
    periodic activity. *)

val run : ?until:Time.t -> t -> unit
(** Execute events in time order until the queue empties or the clock
    would pass [until].  When [until] is given, the clock is left at
    exactly [until]. *)

val step : t -> bool
(** Run the single next event.  Returns [false] if the queue is empty. *)

val pending_events : t -> int
