(* Virtual-time span tracing.

   Layered next to [Trace]: where Trace emits human-readable lines, Span
   records structured events — engine batches, flow transmissions,
   upgrade phases, fault injections — on the virtual clock, for export
   as Chrome trace-event JSON (chrome://tracing or ui.perfetto.dev).

   Capture is off by default and guarded by one mutable bool, so
   instrumented hot paths pay a single load+branch when disabled.  The
   ring is bounded and drops the oldest events first; [dropped] reports
   how many fell off, so exports can say so instead of silently
   truncating.  Everything here is driven by the sim clock — no
   wall-clock reads, no randomness — so same-seed runs capture
   byte-identical traces. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : Time.t;
  ev_dur : Time.t option;  (* [None] renders as an instant event *)
  ev_track : string;
  ev_args : (string * string) list;
  ev_flow : (int * bool) option;
      (* flow-event binding: (id, is_start); renders as ph "s"/"f" *)
}

type ring = {
  events : event Queue.t;
  cap : int;
  mutable n_dropped : int;
}

let ring : ring option ref = ref None
let active = ref false

let enabled () = !active

let set_capture = function
  | None ->
      active := false;
      ring := None
  | Some cap ->
      if cap <= 0 then invalid_arg "Span.set_capture: capacity";
      active := true;
      ring := Some { events = Queue.create (); cap; n_dropped = 0 }

let clear () =
  match !ring with
  | None -> ()
  | Some r ->
      Queue.clear r.events;
      r.n_dropped <- 0

let events () =
  match !ring with None -> [] | Some r -> List.of_seq (Queue.to_seq r.events)

let dropped () = match !ring with None -> 0 | Some r -> r.n_dropped

let push r ev =
  Queue.add ev r.events;
  if Queue.length r.events > r.cap then begin
    ignore (Queue.take r.events);
    r.n_dropped <- r.n_dropped + 1
  end

let emit loop ?(cat = "sim") ?(track = "main") ?(args = []) ?start ?dur name =
  match !ring with
  | None -> ()
  | Some r ->
      let ts = match start with Some t -> t | None -> Loop.now loop in
      push r
        { ev_name = name; ev_cat = cat; ev_ts = ts; ev_dur = dur;
          ev_track = track; ev_args = args; ev_flow = None }

let emit_flow loop ?(cat = "sim") ?(track = "main") ~id ~first name =
  match !ring with
  | None -> ()
  | Some r ->
      push r
        { ev_name = name; ev_cat = cat; ev_ts = Loop.now loop; ev_dur = None;
          ev_track = track; ev_args = []; ev_flow = Some (id, first) }

(* -- Chrome trace-event export ------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_string buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

(* Timestamps are microseconds in the trace-event format; printing
   ns/1000 with three decimals is exact and deterministic. *)
let add_us buf ns = Printf.bprintf buf "%d.%03d" (ns / 1000) (abs ns mod 1000)

let to_chrome_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  (* Tracks become integer tids in order of first appearance, each named
     via a thread_name metadata record. *)
  let tids = Hashtbl.create 16 in
  let next = ref 0 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem tids ev.ev_track) then begin
        incr next;
        Hashtbl.add tids ev.ev_track !next;
        order := ev.ev_track :: !order
      end)
    evs;
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun track ->
      sep ();
      Printf.bprintf buf
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":"
        (Hashtbl.find tids track);
      add_string buf track;
      Buffer.add_string buf "}}")
    (List.rev !order);
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_string buf ev.ev_name;
      Buffer.add_string buf ",\"cat\":";
      add_string buf ev.ev_cat;
      Printf.bprintf buf ",\"pid\":1,\"tid\":%d,\"ts\":"
        (Hashtbl.find tids ev.ev_track);
      add_us buf ev.ev_ts;
      (match ev.ev_flow with
      | Some (id, first) ->
          (* Chrome flow events: "s" opens an arrow, "f" with
             "bp":"e" closes it at the enclosing slice's end.  Both
             ends must share name, cat, and id. *)
          if first then Printf.bprintf buf ",\"ph\":\"s\",\"id\":%d" id
          else Printf.bprintf buf ",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d" id
      | None -> (
          match ev.ev_dur with
          | Some d ->
              Buffer.add_string buf ",\"ph\":\"X\",\"dur\":";
              add_us buf d
          | None -> Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\""));
      if ev.ev_args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_string buf k;
            Buffer.add_char buf ':';
            add_string buf v)
          ev.ev_args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    evs;
  Printf.bprintf buf "],\"otherData\":{\"dropped_events\":\"%d\"}}\n"
    (dropped ());
  Buffer.contents buf
