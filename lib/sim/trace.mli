(** Lightweight simulation tracing.

    Components emit trace lines tagged with the virtual clock.  Tracing is
    off by default so benchmark runs pay nothing; tests and the CLI enable
    it per component. *)

type level = Error | Warn | Info | Debug

val set_level : level option -> unit
(** Global threshold; [None] (the default) disables all output. *)

val enable_component : string -> unit
(** Restrict output to the given components (cumulative).  When no
    component was ever enabled, all components pass the level filter. *)

val clear_components : unit -> unit
(** Drop the component restriction: all components pass again. *)

val enabled : level -> bool

(** {1 In-memory capture}

    A bounded ring buffer of the most recent trace lines, for tests that
    assert on emitted events (fault injections, retransmissions) without
    scraping stderr.  While capture is active, lines passing the
    level/component filters are stored in the ring instead of printed. *)

val set_capture : int option -> unit
(** [set_capture (Some n)] starts capturing the last [n] lines;
    [set_capture None] stops capturing (subsequent lines print to stderr
    again).  Capture is global, like the level filter. *)

val captured : unit -> string list
(** Captured lines, oldest first.  Empty when capture is off. *)

val clear_capture : unit -> unit
(** Drop the captured lines, keeping capture active. *)

val emit :
  Loop.t -> level -> component:string -> ('a, Format.formatter, unit) format -> 'a
(** [emit loop lvl ~component fmt ...] prints one line to stderr as
    ["\[ 12.5us\] component: ..."] when the level and component filters
    pass. *)
