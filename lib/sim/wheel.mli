(** Hierarchical timing wheel, ticked from the {!Loop}.

    Arming and cancelling timers are O(1) regardless of how many are
    outstanding — the datapath's alternative to scheduling every
    per-connection deadline straight onto the loop's global heap.

    The wheel is tickless: it keeps at most one pending loop event (at
    the earliest tick that could fire or cascade a timer) and none when
    idle, so an armed-but-quiet wheel never stops the loop from
    draining.  With the default 1 ns tick, timers fire at their exact
    due times, and same-instant timers fire in the same salted
    tie-break order as {!Heap}: FIFO when the loop's [tie_salt] is 0,
    a deterministic shuffle of arm order otherwise. *)

type t
type timer

val create : ?tick:Time.t -> loop:Loop.t -> unit -> t
(** [create ~loop ()] makes an empty wheel driven by [loop], inheriting
    its tie-break salt.  [tick] (default 1 ns) is the firing
    granularity; with coarser ticks timers fire up to one tick late. *)

val arm : t -> at:Time.t -> (unit -> unit) -> timer
(** O(1).  Schedule [fn] at absolute time [at] (clamped to fire no
    earlier than the next wheel tick; past times fire promptly). *)

val cancel : timer -> unit
(** O(1).  Cancelling a fired or already-cancelled timer is a no-op. *)

val is_armed : timer -> bool
val due : timer -> Time.t

val live_timers : t -> int
(** Armed, not-yet-fired timer count. *)

val next_wake : t -> Time.t option
(** Absolute time of the wheel's pending loop event, if any — [None]
    means the wheel holds no live timers and is fully quiescent. *)
