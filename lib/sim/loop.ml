type event = { mutable live : bool; mutable fn : unit -> unit }

type handle = event

type t = {
  mutable clock : Time.t;
  events : event Heap.t;
  root_rng : Rng.t;
  mutable n_pending : int;
}

let create ?(seed = 42) ?(tie_salt = 0) () =
  {
    clock = Time.zero;
    events = Heap.create ~salt:tie_salt ();
    root_rng = Rng.create ~seed;
    n_pending = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let tie_salt t = Heap.salt t.events
let validate_heap t = Heap.validate t.events

let nothing () = ()

let at t when_ fn =
  let when_ = Time.max when_ t.clock in
  let e = { live = true; fn } in
  Heap.add t.events ~key:when_ e;
  t.n_pending <- t.n_pending + 1;
  e

let after t d fn = at t (Time.add t.clock d) fn

let cancel e =
  if e.live then begin
    e.live <- false;
    e.fn <- nothing
  end

let is_pending e = e.live

let every t ?start period fn =
  let control = { live = true; fn = nothing } in
  let first = match start with Some s -> s | None -> Time.add t.clock period in
  let rec arm when_ =
    ignore
      (at t when_ (fun () ->
           if control.live then begin
             fn ();
             arm (Time.add t.clock period)
           end))
  in
  arm first;
  control

let fire t e =
  t.n_pending <- t.n_pending - 1;
  if e.live then begin
    e.live <- false;
    let fn = e.fn in
    e.fn <- nothing;
    fn ()
  end

let step t =
  match Heap.min_key t.events with
  | None -> false
  | Some key ->
      let e = Heap.pop_exn t.events in
      t.clock <- Time.max t.clock key;
      fire t e;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.min_key t.events with
        | Some key when key <= limit -> ignore (step t)
        | _ -> continue := false
      done;
      t.clock <- Time.max t.clock limit

let pending_events t = t.n_pending
