(* Hierarchical timing wheel, ticked from the Loop.

   Six levels of 256 slots each; level [l] buckets timers by bits
   [8l, 8l+8) of their absolute due tick.  A timer lives at the lowest
   level whose next-higher page matches the wheel's current base, so
   arming and cancelling are O(1) and a timer cascades down at most
   [levels - 1] times before firing.

   The wheel is tickless: it keeps exactly one pending Loop event — at
   the earliest tick that could fire or cascade something — and none at
   all when no live timers are armed, so an idle wheel never keeps the
   loop from quiescing.  With the default 1 ns tick, firing times are
   exact (never quantized), and same-instant timers fire in the same
   salted tie-break order as [Heap]: FIFO under salt 0, a SplitMix64
   shuffle of sequence numbers otherwise.  Cancellation is lazy — a
   dead timer stays in its slot until the wheel next visits it, which
   costs at most one spurious wake-up. *)

let levels = 6
let slot_bits = 8
let slot_count = 1 lsl slot_bits
let slot_mask = slot_count - 1

type timer = {
  w_wheel : t;
  w_due : Time.t;
  mutable w_tick : int;
  w_seq : int;
  mutable w_live : bool;
  mutable w_fn : unit -> unit;
}

and t = {
  loop : Loop.t;
  tick_ns : int;
  salt : int;
  slots : timer list array array;
  (* Entries (live or cancelled) per level; lets the reschedule scan
     skip empty levels. *)
  occ : int array;
  mutable base : int;
  mutable next_seq : int;
  mutable n_live : int;
  mutable wake : Loop.handle option;
  mutable wake_tick : int;
}

let nothing () = ()

let create ?(tick = 1) ~loop () =
  if tick <= 0 then invalid_arg "Wheel.create: tick";
  {
    loop;
    tick_ns = tick;
    salt = Loop.tie_salt loop;
    slots = Array.init levels (fun _ -> Array.make slot_count []);
    occ = Array.make levels 0;
    base = 0;
    next_seq = 0;
    n_live = 0;
    wake = None;
    wake_tick = 0;
  }

let live_timers t = t.n_live
let is_armed w = w.w_live
let due w = w.w_due

let next_wake t =
  match t.wake with
  | Some h when Loop.is_pending h -> Some (t.wake_tick * t.tick_ns)
  | _ -> None

(* Same avalanche as [Heap.mix] so wheel ties replay identically under
   a given salt. *)
let mix salt seq =
  let z = (seq lxor (salt * 0x27d4eb2f165667c5)) land max_int in
  let z = (z lxor (z lsr 29)) * 0x2545f4914f6cdd1d land max_int in
  let z = (z lxor (z lsr 32)) * 0x27d4eb2f165667c5 land max_int in
  z lxor (z lsr 29)

let fire_order t a b =
  if a.w_due <> b.w_due then compare a.w_due b.w_due
  else if t.salt = 0 then compare a.w_seq b.w_seq
  else
    let ma = mix t.salt a.w_seq and mb = mix t.salt b.w_seq in
    if ma <> mb then compare ma mb else compare a.w_seq b.w_seq

(* Lowest level whose enclosing page already matches the base; the
   timer cascades down one or more levels each time the base enters its
   page. *)
let level_of t dtick =
  let rec find l =
    if l >= levels - 1 then levels - 1
    else if
      dtick lsr (slot_bits * (l + 1)) = t.base lsr (slot_bits * (l + 1))
    then l
    else find (l + 1)
  in
  find 0

let insert t w =
  let l = level_of t w.w_tick in
  let s = (w.w_tick lsr (slot_bits * l)) land slot_mask in
  t.slots.(l).(s) <- w :: t.slots.(l).(s);
  t.occ.(l) <- t.occ.(l) + 1

(* Earliest tick at which any slot could fire or cascade: for level 0
   that is the slot's own tick, for higher levels the moment the base
   enters the slot's page. *)
let next_interesting t =
  let best = ref max_int in
  if t.occ.(0) > 0 then begin
    let page = (t.base lsr slot_bits) lsl slot_bits in
    let s = ref ((t.base land slot_mask) + 1) in
    let found = ref false in
    while (not !found) && !s < slot_count do
      if t.slots.(0).(!s) <> [] then begin
        best := page lor !s;
        found := true
      end;
      incr s
    done
  end;
  for l = 1 to levels - 1 do
    if t.occ.(l) > 0 then begin
      let shift = slot_bits * l in
      let cur = (t.base lsr shift) land slot_mask in
      let pagebase = t.base lsr (shift + slot_bits) in
      for s = 0 to slot_count - 1 do
        if t.slots.(l).(s) <> [] then begin
          let occurs =
            if s > cur then ((pagebase lsl slot_bits) lor s) lsl shift
            else (((pagebase + 1) lsl slot_bits) lor s) lsl shift
          in
          if occurs < !best then best := occurs
        end
      done
    end
  done;
  if !best = max_int then None else Some !best

let rec set_wake t tk =
  match t.wake with
  | Some h when Loop.is_pending h && t.wake_tick <= tk -> ()
  | prev ->
      (match prev with Some h -> Loop.cancel h | None -> ());
      t.wake_tick <- tk;
      t.wake <- Some (Loop.at t.loop (tk * t.tick_ns) (fun () -> advance t tk))

and advance t tk =
  t.wake <- None;
  t.base <- tk;
  (* Cascade the slot the base just entered at every level, top down;
     re-inserted timers land strictly lower (or fire below). *)
  for l = levels - 1 downto 1 do
    if t.occ.(l) > 0 then begin
      let s = (tk lsr (slot_bits * l)) land slot_mask in
      let entries = t.slots.(l).(s) in
      if entries <> [] then begin
        t.slots.(l).(s) <- [];
        List.iter
          (fun w ->
            t.occ.(l) <- t.occ.(l) - 1;
            if w.w_live then insert t w)
          entries
      end
    end
  done;
  (* Fire the due slot in salted tie-break order. *)
  let s0 = tk land slot_mask in
  let entries = t.slots.(0).(s0) in
  if entries <> [] then begin
    t.slots.(0).(s0) <- [];
    t.occ.(0) <- t.occ.(0) - List.length entries;
    let due = List.filter (fun w -> w.w_live) entries in
    let due = List.sort (fire_order t) due in
    List.iter
      (fun w ->
        (* Re-check: an earlier timer in this batch may have cancelled
           this one. *)
        if w.w_live then begin
          w.w_live <- false;
          t.n_live <- t.n_live - 1;
          let fn = w.w_fn in
          w.w_fn <- nothing;
          fn ()
        end)
      due
  end;
  if t.n_live > 0 then
    match next_interesting t with
    | Some tk' -> set_wake t tk'
    | None -> ()

let arm t ~at fn =
  let due_tick = max ((at + t.tick_ns - 1) / t.tick_ns) (t.base + 1) in
  let w =
    {
      w_wheel = t;
      w_due = at;
      w_tick = due_tick;
      w_seq = t.next_seq;
      w_live = true;
      w_fn = fn;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.n_live <- t.n_live + 1;
  insert t w;
  set_wake t due_tick;
  w

let cancel w =
  if w.w_live then begin
    w.w_live <- false;
    w.w_fn <- nothing;
    w.w_wheel.n_live <- w.w_wheel.n_live - 1
  end
