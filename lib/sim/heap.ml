(* Array-based binary min-heap ordered by (key, seq).  The sequence number
   makes pops deterministic under equal keys: FIFO among ties.

   A non-zero [salt] perturbs only the tie-break: equal-key entries pop
   in an order that is a deterministic function of (salt, seq) instead
   of FIFO.  Every salt still yields a total order, so a salted run is
   exactly as reproducible as an unsalted one — the perturbation sweep
   uses this to flush out code that silently depends on FIFO ties. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable salt : int;
}

let create ?(salt = 0) () = { data = [||]; size = 0; next_seq = 0; salt }
let length h = h.size
let is_empty h = h.size = 0
let salt h = h.salt

(* SplitMix64-style avalanche over (salt, seq): deterministic, well
   mixed, and injective for a fixed salt, so (mix, seq) is a total
   order on ties. *)
let mix salt seq =
  let z = (seq lxor (salt * 0x27d4eb2f165667c5)) land max_int in
  let z = (z lxor (z lsr 29)) * 0x2545f4914f6cdd1d land max_int in
  let z = (z lxor (z lsr 32)) * 0x27d4eb2f165667c5 land max_int in
  z lxor (z lsr 29)

let less h a b =
  a.key < b.key
  || a.key = b.key
     &&
     if h.salt = 0 then a.seq < b.seq
     else
       let ma = mix h.salt a.seq and mb = mix h.salt b.seq in
       ma < mb || (ma = mb && a.seq < b.seq)

let grow h =
  let fresh = Array.make (Array.length h.data * 2) h.data.(0) in
  Array.blit h.data 0 fresh 0 h.size;
  h.data <- fresh

let add h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 16 e else grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less h h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let min_key h = if h.size = 0 then None else Some h.data.(0).key

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && less h h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && less h h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some top.value
  end

let pop_exn h =
  match pop h with Some v -> v | None -> invalid_arg "Heap.pop_exn: empty"

let clear h = h.size <- 0

(* Structural sanity: every parent orders before (or ties with) its
   children under the heap's own comparison, and the bookkeeping fields
   are coherent.  Used by the invariant checker. *)
let validate h =
  if h.size < 0 || h.size > Array.length h.data then
    Some
      (Printf.sprintf "heap size %d outside backing array [0,%d]" h.size
         (Array.length h.data))
  else begin
    let bad = ref None in
    for i = 1 to h.size - 1 do
      let parent = (i - 1) / 2 in
      if !bad = None && less h h.data.(i) h.data.(parent) then
        bad :=
          Some
            (Printf.sprintf
               "heap order violated at index %d: child key %d before parent \
                key %d"
               i h.data.(i).key h.data.(parent).key)
    done;
    !bad
  end
