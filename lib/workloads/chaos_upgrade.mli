(** Availability under upgrade: closed-loop RR traffic while the fleet
    migrates to a new release under injected faults.

    Clients on host 0 ping-pong fixed-size messages against an echo
    server on host 1.  Mid-run, each host's engines are migrated into a
    new-release group by the transactional {!Upgrade} machinery while
    the {!Fault.Injector} replays a plan crafted to hit the windows that
    matter: a link blackout across the server's brownout, an engine
    crash landing mid-blackout (forcing a rollback and retry), and a
    post-commit engine wedge that only the {!Control.Watchdog} can
    detect and repair.

    The claims under test (§4.3): no operation is ever lost — faults and
    rollbacks cost latency, never correctness; the per-engine blackout
    stays bounded by the state-size model; a contested upgrade leaves
    every engine in exactly one group; and the whole run is
    deterministic — same config, byte-identical {!fingerprint}. *)

type config = {
  clients : int;  (** Concurrent closed-loop clients on host 0. *)
  ops_per_client : int;
  op_bytes : int;  (** Request and reply size. *)
  think : Sim.Time.t;
      (** Per-op think time, so traffic spans the upgrade window. *)
  seed : int;  (** Sim-loop seed (the plan carries its own). *)
  tie_salt : int;  (** Event-loop tie-break perturbation; 0 keeps FIFO. *)
  mode : Engine.mode;  (** Scheduling mode for old and new groups. *)
  state_bytes : int;
      (** Synthetic serialized state per engine (sets the blackout). *)
  upgrade_at : (int * Sim.Time.t) list;
      (** Staggered fleet rollout: (host addr, upgrade start). *)
  upgrade_config : Upgrade.config;
  watchdog_period : Sim.Time.t;
  plan : Fault.Plan.t;
  run_cap : Sim.Time.t;
      (** Virtual-time budget; generous so retries can finish. *)
  poll_period : Sim.Time.t option;
      (** Telemetry sampling period for each host's {!Control.Poller}
          (rx-ring depths, per-account CPU); [None] disables polling. *)
}

val default_plan : ?seed:int -> unit -> Fault.Plan.t
(** The acceptance scenario: a 2 ms link blackout over the server's
    brownout, an engine crash at 15 ms that lands mid-blackout of the
    server's migration (aborting the transaction), and an engine wedge
    at 60 ms on the already-upgraded client host. *)

val default_config : config
(** 2 clients x 1200 ops of 1 KiB with 50 us think time (traffic spans
    ~70 ms); server upgrades at 10 ms, clients' host at 40 ms, 4 MB of
    synthetic state per engine (12 ms modeled blackout); default
    transactional-upgrade config and a 100 us watchdog heartbeat. *)

type result = {
  ops_expected : int;
  ops_completed : int;
  lost_ops : int;  (** Must be 0. *)
  latencies : Stats.Histogram.t;  (** Per-op completion latency, ns. *)
  completion_time : Sim.Time.t;
  reports : (int * Upgrade.report list) list;  (** Per host addr. *)
  committed : int;  (** Engine migrations that committed. *)
  rollbacks : int;  (** Transaction aborts, summed over engines. *)
  give_ups : int;  (** Engines left on the old release. *)
  max_blackout : Sim.Time.t;
      (** Largest measured per-engine blackout (the bounded tail). *)
  transition_log : Fault.Log.t;
      (** Every upgrade state-machine transition, virtual-time order. *)
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
  watchdog_counters : (string * int) list;  (** Summed over hosts. *)
  watchdog_restarts : int;
  flow_resyncs : int;
      (** Epoch-triggered flow resynchronizations (restart recovery). *)
  groups_consistent : bool;
      (** Every engine attached and in exactly one group at the end. *)
}

val run : config -> result

val fingerprint : result -> string
(** Deterministic rendering of fault log + transition log + reports:
    two same-config runs must produce byte-identical fingerprints. *)
