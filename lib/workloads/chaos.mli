(** Availability under faults: a closed-loop RR workload run beneath a
    fault plan.

    Clients on host 0 ping-pong fixed-size messages against an echo
    server on host 1 while the {!Fault.Injector} replays the configured
    plan.  The claim under test is Snap's (§4.3): the transport absorbs
    loss, corruption, reordering, stalls, and an engine crash/restart
    without losing a single operation — faults cost latency and goodput,
    never correctness.  Runs are deterministic: the same config produces
    an identical fault log and latency histogram. *)

type config = {
  clients : int;  (** Concurrent closed-loop clients on host 0. *)
  ops_per_client : int;
  op_bytes : int;  (** Request and reply size. *)
  seed : int;  (** Sim-loop seed (the plan carries its own). *)
  tie_salt : int;
      (** Event-loop tie-break perturbation (see {!Sim.Loop.create});
          0 keeps FIFO order.  Used by the determinism sweep. *)
  mode : Engine.mode;  (** Engine scheduling mode for both hosts. *)
  plan : Fault.Plan.t;
  run_cap : Sim.Time.t;
      (** Virtual-time budget; generous so recovery can finish. *)
  poll_period : Sim.Time.t option;
      (** Telemetry sampling period for each host's {!Control.Poller}
          (rx-ring depths, per-account CPU); [None] disables polling. *)
}

val default_plan : ?seed:int -> unit -> Fault.Plan.t
(** The acceptance scenario: 2% bursty loss for 30 ms, a 5% corruption
    window, a reordering window, one 10 ms link blackout, one engine
    crash + restart, an rx stall and a straggler window — staged across
    the first ~30 ms so every fault overlaps live traffic. *)

val default_config : config
(** 2 clients x 1500 ops of 1 KiB under {!default_plan}, dedicated
    engine cores. *)

type result = {
  ops_expected : int;
  ops_completed : int;
  lost_ops : int;  (** Must be 0: faults may slow ops, never eat them. *)
  latencies : Stats.Histogram.t;  (** Per-op completion latency, ns. *)
  goodput_gbps : float;  (** Application bytes moved per virtual time. *)
  completion_time : Sim.Time.t;  (** Virtual time of the last completion. *)
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
  retransmits : int;  (** Summed over every flow on both hosts. *)
  corrupt_dropped : int;  (** Poisoned packets caught end-to-end. *)
  rx_stalled : int;  (** NIC receives deferred by injected stalls. *)
  port_report : (int * int * int) list;
      (** Per egress port: (addr, drops, max queue depth in bytes). *)
}

val run : config -> result

val fingerprint : result -> string
(** Deterministic digest of the run's correctness counters, fault log
    and port report; the perturbation sweep asserts it is a function of
    the seed alone. *)

val goodput_degradation_pct : baseline:result -> faulted:result -> float
(** How much goodput the faults cost, as a percentage of the baseline
    (run the same config with [Fault.Plan.empty] for the baseline). *)
