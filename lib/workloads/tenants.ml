module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express
module Ring = Guest.Ring
module Tenant = Guest.Tenant
module Mux = Guest.Mux

(* Hundreds of guest tenants share one host's guest backend: every
   even-indexed tenant is a well-behaved closed-loop victim echoing
   against an isolated server, every odd-indexed one an open-loop
   aggressor flooding a shared sink faster than its token-bucket quota
   allows.  Containment is per-tenant admission at the mux: aggressor
   descriptors complete [Rejected] on their own rings while victim
   goodput rides through.  Mid-run the guest engine group upgrades
   (rings and in-flight state survive the blackout) and a cohort of
   aggressors is force-detached (generation-tagged bulk reclaim).  At
   quiesce every tenant must be detached with zero op-pool bytes and
   zero in-flight ops — the per-tenant isolation invariants enforce it
   when checking is on, and [pool_leak_bytes] reports it always. *)

type config = {
  tenants : int;
  aggressor_every : int;  (** Every k-th tenant is an aggressor. *)
  victim_ops : int;  (** Closed-loop echoes per victim. *)
  victim_bytes : int;
  aggressor_ops : int;  (** Open-loop posts per aggressor. *)
  aggressor_bytes : int;
  aggressor_interval : Time.t;
  aggressor_rate_ops_per_sec : float option;
      (** The containment quota: posts above this rate are [Rejected]
          on the aggressor's own ring. *)
  aggressor_burst_ops : int;
  ring_slots : int;
  buf_bytes : int;
  mux_engines : int;
  mux_mode : Engine.mode;
  mode : Engine.mode;  (** Scheduling mode of the Pony groups. *)
  upgrade_at : Time.t option;
      (** Transparent upgrade of the guest engine group. *)
  upgrade_state_bytes : int;
  force_detach_at : Time.t option;
  force_detach_every : int;  (** Every j-th aggressor is force-detached. *)
  seed : int;
  tie_salt : int;
  stop_at : Time.t;
  run_cap : Time.t;
  op_pool_bytes : int;
}

let default_config =
  {
    tenants = 256;
    aggressor_every = 2;
    victim_ops = 20;
    victim_bytes = 1024;
    aggressor_ops = 60;
    aggressor_bytes = 4096;
    aggressor_interval = Time.us 40;
    (* Half the offered rate: steady-state, every other aggressor post
       bounces off the token bucket. *)
    aggressor_rate_ops_per_sec = Some 12_500.;
    aggressor_burst_ops = 4;
    ring_slots = 32;
    buf_bytes = 4096;
    mux_engines = 2;
    mux_mode = Engine.Spreading { runtime_pct = 0.9 };
    mode = Engine.Dedicating { cores = 2 };
    upgrade_at = Some (Time.ms 3);
    upgrade_state_bytes = 200_000;
    force_detach_at = Some (Time.ms 4);
    force_detach_every = 4;
    seed = 21;
    tie_salt = 0;
    stop_at = Time.ms 12;
    run_cap = Time.ms 30;
    (* Generous: containment must come from per-tenant quotas, not from
       the shared pool running dry. *)
    op_pool_bytes = 256 lsl 20;
  }

type result = {
  n_tenants : int;
  n_victims : int;
  n_aggressors : int;
  victim_ok : int;
  victim_failed : int;
  victim_retries : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  agg_completed : int;
  agg_rejected : int;  (** Aggressor descs refused by tenant quotas. *)
  agg_failed : int;
  agg_cancelled : int;
  rx_delivered : int;
  rx_drops : int;
  tx_post_failures : int;  (** Guest-side posts bounced off full rings. *)
  detached : int;  (** Tenants fully detached at quiesce. *)
  force_detached : int;
  reclaimed_bytes : int;  (** Bytes returned by bulk owner reclaim. *)
  mux_resyncs : int;  (** Engine-epoch changes the mux rode through. *)
  upgrade_committed : int;
  upgrade_rollbacks : int;
  max_blackout : Time.t;
  pool_leak_bytes : int;
}

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ~op_pool_bytes:cfg.op_pool_bytes ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore (Snap.Host.enable_guests ~engines:cfg.mux_engines ~mode:cfg.mux_mode h_guest);
  let is_aggressor i = i mod cfg.aggressor_every = cfg.aggressor_every - 1 in
  let n_aggressors =
    let n = ref 0 in
    for i = 0 to cfg.tenants - 1 do
      if is_aggressor i then incr n
    done;
    !n
  in
  let n_victims = cfg.tenants - n_aggressors in
  let victim_ok = ref 0 in
  let victim_failed = ref 0 in
  let victim_retries = ref 0 in
  let victim_last_done = ref Time.zero in
  let victim_hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "tenants") ]
      "workload_victim_latency_ns"
  in
  let force_detached = ref 0 in
  let tenant_of = Array.make cfg.tenants None in
  (* Victims' echo server, on an exclusive engine so server-side
     scheduling is not part of the contention story. *)
  ignore
    (Snap.Host.spawn_app h_srv ~name:"backend-v" ~spin:true (fun ctx ->
         let c =
           PE.create_client ctx h_srv.Snap.Host.pony ~name:"backend-v"
             ~exclusive_engine:true ()
         in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:m.PE.msg_bytes ())
         done));
  (* Aggressors' sink: consumes and never replies. *)
  ignore
    (Snap.Host.spawn_app h_srv ~name:"backend-a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"backend-a" () in
         while true do
           let _m = PE.await_message ctx c in
           Cpu.Thread.compute ctx (Time.us 1)
         done));
  (* Sleep-poll with a deadline: a blocked wait would need its own
     wakeup plumbing; polling at a fixed cadence keeps the drivers
     deterministic and immune to lost wakeups. *)
  let poll_step = Time.us 2 in
  let poll ctx ~deadline f =
    let rec go () =
      match f () with
      | Some _ as r -> r
      | None ->
          if Cpu.Thread.now ctx >= deadline then None
          else begin
            Cpu.Thread.sleep ctx poll_step;
            go ()
          end
    in
    go ()
  in
  let prime_rx tn =
    for s = 0 to Ring.capacity tn.Tenant.rx - 1 do
      ignore
        (Ring.post tn.Tenant.rx ~now:Time.zero ~id:s
           ~off:(Tenant.rx_buf_off tn s) ~len:tn.Tenant.buf_bytes)
    done
  in
  (* Victim driver: guest-side closed loop over the rings.  One
     outstanding descriptor; its completion status comes back on the tx
     used ring, the echo on the rx used ring. *)
  let victim_driver i ctx =
    (* Distinct start instants make attach order (tenant ids, engine
       assignment) a function of the config, not of same-time
       scheduling ties. *)
    Cpu.Thread.sleep ctx (Time.add (Time.us 600) (i * 500));
    let tn =
      Snap.Host.attach_tenant ctx h_guest
        ~name:(Printf.sprintf "v%d" i)
        ~dst_host:1 ~dst_name:"backend-v" ~ring_slots:cfg.ring_slots
        ~buf_bytes:cfg.buf_bytes ()
    in
    tenant_of.(i) <- Some tn;
    prime_rx tn;
    let n = ref 0 in
    let next_id = ref 0 in
    while !n < cfg.victim_ops && Cpu.Thread.now ctx < cfg.stop_at do
      incr n;
      let t0 = Cpu.Thread.now ctx in
      let rec attempt k =
        if k > 3 then incr victim_failed
        else begin
          if k > 1 then incr victim_retries;
          let slot = !n mod cfg.ring_slots in
          (* Fresh id per attempt: a timed-out attempt's descriptor may
             still be in flight, and reusing its id would be scored as
             id aliasing by the hardened mux.  The id is a label; the
             buffer slot stays op-indexed. *)
          incr next_id;
          let id = !next_id in
          if
            not
              (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id
                 ~off:(Tenant.tx_buf_off tn slot) ~len:cfg.victim_bytes)
          then begin
            (* Single outstanding op: a full tx ring means cancelled
               completions from a detach are pending; nothing to do. *)
            Cpu.Thread.sleep ctx (Time.us 50);
            attempt (k + 1)
          end
          else
            let deadline = Time.add (Cpu.Thread.now ctx) (Time.ms 4) in
            (* Drop stale used entries (from attempts that timed out
               here but completed later): match on descriptor id. *)
            match
              poll ctx ~deadline (fun () ->
                  match Ring.pop_used tn.Tenant.tx with
                  | Some u when u.Ring.u_id = id -> Some u
                  | Some _ | None -> None)
            with
            | Some u when u.Ring.u_status = Ring.Complete -> (
                (* The echo window must ride out a full engine blackout
                   on its own: the transport has taken responsibility,
                   so the echo is coming — late, not lost. *)
                let deadline = Time.add (Cpu.Thread.now ctx) (Time.ms 10) in
                match
                  poll ctx ~deadline (fun () -> Ring.pop_used tn.Tenant.rx)
                with
                | Some ru ->
                    (* Return the buffer to the rx ring. *)
                    ignore
                      (Ring.post tn.Tenant.rx ~now:(Cpu.Thread.now ctx)
                         ~id:ru.Ring.u_id
                         ~off:(Tenant.rx_buf_off tn ru.Ring.u_id)
                         ~len:tn.Tenant.buf_bytes);
                    let lat = Time.sub (Cpu.Thread.now ctx) t0 in
                    Stats.Histogram.record victim_hist lat;
                    Stats.Histogram.record reg_hist lat;
                    incr victim_ok;
                    victim_last_done := Loop.now loop
                | None -> incr victim_failed)
            | Some _ ->
                (* Rejected / timed out / busy: back off and retry. *)
                Cpu.Thread.sleep ctx (Time.us 50);
                attempt (k + 1)
            | None ->
                (* No completion within the window — typically the mux
                   engine is mid-blackout.  Retry: the stale descriptor
                   completes later and is dropped by the id match. *)
                attempt (k + 1)
        end
      in
      attempt 1
    done;
    Snap.Host.detach_tenant h_guest tn
  in
  (* Aggressor driver: open-loop posts at a fixed interval, reaping
     used entries just enough to keep the ring usable.  Rejections land
     as used entries too — the guest sees its own overload. *)
  let aggressor_driver i ctx =
    Cpu.Thread.sleep ctx (Time.add (Time.us 600) (i * 500));
    let tn =
      Snap.Host.attach_tenant ctx h_guest
        ~name:(Printf.sprintf "a%d" i)
        ~dst_host:1 ~dst_name:"backend-a" ~ring_slots:cfg.ring_slots
        ~buf_bytes:cfg.buf_bytes
        ?rate_ops_per_sec:cfg.aggressor_rate_ops_per_sec
        ~burst_ops:cfg.aggressor_burst_ops ()
    in
    tenant_of.(i) <- Some tn;
    let posted = ref 0 in
    while
      !posted < cfg.aggressor_ops
      && Tenant.state tn = Tenant.Attached
      && Cpu.Thread.now ctx < cfg.stop_at
    do
      let rec reap () =
        match Ring.pop_used tn.Tenant.tx with Some _ -> reap () | None -> ()
      in
      reap ();
      (* Monotonic ids for the same reason as the victims: a slow
         (Busy-retried) op can outlive a full ring wrap, and reusing
         its id while live reads as aliasing. *)
      if
        Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:!posted
          ~off:(Tenant.tx_buf_off tn !posted) ~len:cfg.aggressor_bytes
      then incr posted;
      Cpu.Thread.sleep ctx cfg.aggressor_interval
    done;
    (* Drain: keep reaping so the mux can finish, then detach.  A
       force-detached tenant skips this — its reclaim already ran. *)
    let drain_deadline = Time.add (Cpu.Thread.now ctx) (Time.ms 4) in
    while
      Tenant.state tn = Tenant.Attached
      && (Ring.in_flight tn.Tenant.tx > 0 || Ring.backlog tn.Tenant.tx > 0)
      && Cpu.Thread.now ctx < drain_deadline
    do
      (match Ring.pop_used tn.Tenant.tx with Some _ -> () | None -> ());
      Cpu.Thread.sleep ctx (Time.us 10)
    done;
    if Tenant.state tn = Tenant.Attached then
      Snap.Host.detach_tenant h_guest tn
  in
  for i = 0 to cfg.tenants - 1 do
    let driver = if is_aggressor i then aggressor_driver else victim_driver in
    ignore
      (Snap.Host.spawn_app h_guest
         ~name:(Printf.sprintf "guest%d" i)
         (fun ctx -> driver i ctx))
  done;
  (* Transparent upgrade of the guest engine group, mid-traffic. *)
  let upgrade_reports = ref [] in
  (match cfg.upgrade_at with
  | None -> ()
  | Some at ->
      ignore
        (Loop.at loop at (fun () ->
             match Snap.Host.guest_mux h_guest with
             | None -> ()
             | Some mux ->
                 let machine = h_guest.Snap.Host.machine in
                 let ng =
                   Engine.create_group ~machine ~name:"guest-v2"
                     ~mode:cfg.mux_mode
                 in
                 Upgrade.upgrade ~loop ~costs:(Cpu.Sched.costs machine)
                   ~old_group:(Mux.group mux) ~new_group:ng
                   ~extra_state_bytes:(fun _ -> cfg.upgrade_state_bytes)
                   ~on_done:(fun rs -> upgrade_reports := rs)
                   ())));
  (* Forced detach of part of the aggressor cohort: abandoned in-flight
     ops, bulk reclaim, stragglers hit the generation check. *)
  (match cfg.force_detach_at with
  | None -> ()
  | Some at ->
      ignore
        (Loop.at loop at (fun () ->
             let k = ref 0 in
             Array.iteri
               (fun i tno ->
                 match tno with
                 | Some tn when is_aggressor i ->
                     incr k;
                     if
                       !k mod cfg.force_detach_every = 0
                       && Tenant.state tn = Tenant.Attached
                     then begin
                       Snap.Host.detach_tenant ~force:true h_guest tn;
                       incr force_detached
                     end
                 | _ -> ())
               tenant_of)));
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  let all_tenants =
    Array.to_list tenant_of |> List.filter_map (fun x -> x)
  in
  let sum f = List.fold_left (fun acc tn -> acc + f tn) 0 all_tenants in
  let agg_sum f =
    List.fold_left
      (fun acc tn ->
        if String.length tn.Tenant.tname > 0 && tn.Tenant.tname.[0] = 'a' then
          acc + f tn
        else acc)
      0 all_tenants
  in
  let pool_leak_bytes =
    Memory.Pool.in_use (PE.op_pool h_guest.Snap.Host.pony)
    + Memory.Pool.in_use (PE.op_pool h_srv.Snap.Host.pony)
  in
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (PE.op_pool h.Snap.Host.pony))
    [ h_guest; h_srv ];
  let committed =
    List.length
      (List.filter
         (fun r -> r.Upgrade.outcome = Upgrade.Committed)
         !upgrade_reports)
  in
  let rollbacks =
    List.fold_left (fun acc r -> acc + r.Upgrade.rollbacks) 0 !upgrade_reports
  in
  let max_blackout =
    List.fold_left
      (fun acc r -> Time.max acc r.Upgrade.blackout)
      Time.zero !upgrade_reports
  in
  let victim_goodput_gbps =
    if !victim_last_done = 0 then 0.0
    else
      float_of_int (!victim_ok * cfg.victim_bytes * 2 * 8)
      /. float_of_int !victim_last_done
  in
  {
    n_tenants = cfg.tenants;
    n_victims;
    n_aggressors;
    victim_ok = !victim_ok;
    victim_failed = !victim_failed;
    victim_retries = !victim_retries;
    victim_goodput_gbps;
    victim_latencies = victim_hist;
    agg_completed = agg_sum Tenant.tx_completed;
    agg_rejected = agg_sum Tenant.tx_rejected;
    agg_failed = agg_sum Tenant.tx_failed;
    agg_cancelled = agg_sum Tenant.tx_cancelled;
    rx_delivered = sum Tenant.rx_delivered;
    rx_drops = sum Tenant.rx_drops;
    tx_post_failures =
      sum (fun tn ->
          Ring.post_failures tn.Tenant.tx + Ring.post_failures tn.Tenant.rx);
    detached =
      sum (fun tn -> if Tenant.state tn = Tenant.Detached then 1 else 0);
    force_detached = !force_detached;
    reclaimed_bytes = sum Tenant.reclaimed_bytes;
    mux_resyncs =
      (match Snap.Host.guest_mux h_guest with
      | Some m -> Mux.resyncs m
      | None -> 0);
    upgrade_committed = committed;
    upgrade_rollbacks = rollbacks;
    max_blackout;
    pool_leak_bytes;
  }

(* Same discipline as the other workloads: semantic counters only.
   Latencies, goodput and blackout durations legitimately move by
   nanoseconds under the sweep's tie-break perturbation; everything a
   tenant or the backend {e decided} must not. *)
let fingerprint (r : result) : string =
  let buf = Buffer.create 512 in
  let add name v = Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v) in
  add "tenants" r.n_tenants;
  add "victims" r.n_victims;
  add "aggressors" r.n_aggressors;
  add "victim_ok" r.victim_ok;
  add "victim_failed" r.victim_failed;
  add "victim_retries" r.victim_retries;
  add "agg_completed" r.agg_completed;
  add "agg_rejected" r.agg_rejected;
  add "agg_failed" r.agg_failed;
  add "agg_cancelled" r.agg_cancelled;
  add "rx_delivered" r.rx_delivered;
  add "rx_drops" r.rx_drops;
  add "tx_post_failures" r.tx_post_failures;
  add "detached" r.detached;
  add "force_detached" r.force_detached;
  add "reclaimed_bytes" r.reclaimed_bytes;
  add "upgrade_committed" r.upgrade_committed;
  add "upgrade_rollbacks" r.upgrade_rollbacks;
  add "pool_leak" r.pool_leak_bytes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
