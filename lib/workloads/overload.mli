(** Overload acceptance workload: open-loop aggressors at a multiple of
    link capacity against a slow server, plus a well-behaved closed-loop
    victim on an isolated path (§3.3, robustness).

    The run drives every layer of the overload-protection stack:

    - {e admission control}: aggressor op/byte quotas and the
      host op pool refuse work with [Rejected] completions;
    - {e receiver back-pressure}: the flooded server's rx occupancy
      shrinks its advertised windows, and the slow server's full
      incoming queue produces [Busy] NACKs;
    - {e deadlines and shedding}: every aggressor op carries a deadline
      and expired or over-quota work is dropped at dequeue;
    - {e pressure state machine}: host 0's pool saturates, driving
      Nominal -> Pressured -> Saturated transitions.

    Acceptance invariants (checked by the tests and the CI smoke job):
    no [Memory.Pool.Exhausted] escapes into applications, zero op-pool
    bytes remain at quiesce (enforced with [Pool.assert_quiesced] —
    the run raises otherwise), the victim keeps most of its uncontended
    goodput, and same-seed runs produce byte-identical fingerprints. *)

type config = {
  aggressors : int;
  load_factor : float;  (** Offered load as a multiple of link capacity. *)
  aggressor_bytes : int;
  aggressor_quota_ops : int;
  aggressor_quota_bytes : int;
  aggressor_rate_ops_per_sec : float option;
  aggressor_deadline : Sim.Time.t;
      (** Relative deadline attached to every aggressor op. *)
  victim_ops : int;
  victim_bytes : int;
  server_service_time : Sim.Time.t;
      (** Slow server's per-message think time (the choke point). *)
  seed : int;
  tie_salt : int;  (** Event-loop tie-break perturbation; 0 keeps FIFO. *)
  mode : Engine.mode;
  stop_at : Sim.Time.t;  (** Load stops here. *)
  run_cap : Sim.Time.t;  (** Hard stop; the tail is the drain window. *)
  aggressor_pool_bytes : int;
      (** Host 0's op pool — deliberately smaller than the sum of
          aggressor byte quotas so sustained overload saturates it. *)
  server_pool_bytes : int;
}

val default_config : config
(** 4 aggressors at 4x capacity with 2 ms deadlines, a 20 us/message
    slow server, and a 300-op victim on an exclusive engine. *)

type result = {
  offered : int;
  agg_ok : int;
  agg_rejected : int;
  agg_timed_out : int;
  agg_busy : int;
  quota_rejected : int;
  ops_shed : int;
  ops_expired : int;
  busy_nacks : int;
  rx_pool_drops : int;
  zero_window_probes : int;
  pressure_transitions : int;
  victim_ok : int;
  victim_failed : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  pool_leak_bytes : int;
  exhausted_escapes : int;
}

val run : config -> result
(** Raises [Failure] at quiesce if any op-pool byte leaked. *)

val fingerprint : result -> string
(** Digest of every counter the run produced; byte-identical across
    same-seed runs. *)
