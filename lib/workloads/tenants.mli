(** Multi-tenant guest networking acceptance workload.

    Hundreds of tenants share one host's guest backend through
    virtio-style rings ({!Guest}): a victim cohort runs closed-loop
    echoes against an isolated server while a noisy-neighbor aggressor
    cohort floods a shared sink far above its per-tenant token-bucket
    quota.  The run exercises the full tenant lifecycle under stress:

    - {e containment}: aggressor descriptors above quota complete
      [Rejected] on the aggressor's own ring; victims keep their
      goodput;
    - {e transparent upgrade}: the guest engine group upgrades
      mid-traffic — ring contents and in-flight state survive the
      engine epoch change, tenants observe only a bounded blackout;
    - {e detach reclaim}: victims and aggressors detach gracefully at
      end of run, and a cohort of aggressors is force-detached
      mid-stream, exercising generation-tagged bulk reclaim.

    Acceptance invariants (checked by the tests, the CI smoke job, and
    the per-tenant isolation invariants when [--check] is on): every
    tenant ends detached with zero op-pool bytes and zero in-flight
    ops, no cross-tenant credit or pool-byte leakage, and same-seed
    runs produce byte-identical fingerprints under schedule
    perturbation. *)

type config = {
  tenants : int;
  aggressor_every : int;  (** Every k-th tenant is an aggressor. *)
  victim_ops : int;  (** Closed-loop echoes per victim. *)
  victim_bytes : int;
  aggressor_ops : int;  (** Open-loop posts per aggressor. *)
  aggressor_bytes : int;
  aggressor_interval : Sim.Time.t;
  aggressor_rate_ops_per_sec : float option;
      (** The containment quota: posts above this rate are [Rejected]
          on the aggressor's own ring. *)
  aggressor_burst_ops : int;
  ring_slots : int;
  buf_bytes : int;
  mux_engines : int;
  mux_mode : Engine.mode;
  mode : Engine.mode;  (** Scheduling mode of the Pony groups. *)
  upgrade_at : Sim.Time.t option;
      (** Transparent upgrade of the guest engine group. *)
  upgrade_state_bytes : int;
  force_detach_at : Sim.Time.t option;
  force_detach_every : int;  (** Every j-th aggressor is force-detached. *)
  seed : int;
  tie_salt : int;
  stop_at : Sim.Time.t;
  run_cap : Sim.Time.t;
  op_pool_bytes : int;
}

val default_config : config
(** 256 tenants, alternating victim/aggressor; aggressors post at
    twice their token-bucket rate; guest-group upgrade at 3 ms; every
    4th aggressor force-detached at 4 ms. *)

type result = {
  n_tenants : int;
  n_victims : int;
  n_aggressors : int;
  victim_ok : int;
  victim_failed : int;
  victim_retries : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  agg_completed : int;
  agg_rejected : int;  (** Aggressor descs refused by tenant quotas. *)
  agg_failed : int;
  agg_cancelled : int;
  rx_delivered : int;
  rx_drops : int;
  tx_post_failures : int;  (** Guest-side posts bounced off full rings. *)
  detached : int;  (** Tenants fully detached at quiesce. *)
  force_detached : int;
  reclaimed_bytes : int;  (** Bytes returned by bulk owner reclaim. *)
  mux_resyncs : int;  (** Engine-epoch changes the mux rode through. *)
  upgrade_committed : int;
  upgrade_rollbacks : int;
  max_blackout : Sim.Time.t;
  pool_leak_bytes : int;
}

val run : config -> result
(** Raises [Failure] at quiesce if any op-pool byte leaked. *)

val fingerprint : result -> string
(** Digest of the run's semantic counters only (latencies, goodput and
    blackout durations excluded); byte-identical across same-seed
    runs. *)
