(** C10M-style connection-scaling workload (datapath scaling).

    A full bipartite client mesh between two hosts puts
    [clients_per_side]^2 live Pony Express connections on host 0
    (102,400 at the default 320), drives heavy-tailed RPCs over all of
    them in a closed loop, then runs connect/disconnect storms that
    close and re-dial a slice of the mesh and prove each replacement
    conn carries traffic.

    The steady-state window is measured in-workload — minor-GC words
    and modeled engine ns per op between two fixed completed-op counts
    — so connection ramp and teardown cannot launder the per-op
    figures.  [tools/bench_gate.py] holds the churn section's
    [gc_minor_words_per_op] and [cpu_ns_per_op] to absolute ceilings:
    an O(conns) rescan or a per-packet allocation regression shows up
    here first. *)

type config = {
  clients_per_side : int;
      (** Drivers on host 0 and sinks on host 1; live connections on
          host 0 = clients_per_side^2. *)
  ops_per_driver : int;  (** Closed-loop steady-state ops per driver. *)
  storm_rounds : int;  (** Connect/disconnect storms after the window. *)
  storm_close_every : int;  (** Every k-th conn per driver per storm. *)
  op_timeout : Sim.Time.t;  (** Bounded wait for each op's completion. *)
  seed : int;
  tie_salt : int;  (** Event-loop tie-break perturbation; 0 keeps FIFO. *)
  mode : Engine.mode;
  stop_at : Sim.Time.t;  (** Drivers stop submitting here. *)
  run_cap : Sim.Time.t;
  op_pool_bytes : int;
}

val default_config : config
(** 320 clients per side (102,400 live conns on host 0), 40 steady ops
    per driver, two storms closing and re-dialing every 8th conn. *)

type result = {
  n_drivers : int;
  conns_target : int;
  ramp_failures : int;  (** Connects that raised during ramp. *)
  live_at_steady : int;
      (** Established conns on host 0 when the measured window opens. *)
  ops_ok : int;
  ops_failed : int;
  stray_completions : int;
      (** Completions not matching the op awaited (late timeouts, Busy
          follow-ups); consumed and counted, never desync the loop. *)
  steady_ops : int;  (** Ops inside the measured window. *)
  steady_gc_words_per_op : float;
  steady_cpu_ns_per_op : float;  (** Modeled engine batch ns per op. *)
  bytes_completed : int;  (** Payload bytes of [Ok] steady+burst ops. *)
  last_done : Sim.Time.t;  (** Virtual completion time of the last Ok op. *)
  closes : int;
  reconnects : int;
  burst_ok : int;  (** Post-reconnect proof ops that completed [Ok]. *)
  burst_failed : int;
  conns_established : int;  (** Halves installed, both hosts. *)
  conns_closed : int;
  conn_resets : int;
  peer_deaths : int;
  pool_leak_bytes : int;
  latencies : Stats.Histogram.t;
}

val run : config -> result

val goodput_gbps : result -> float
(** Completed payload bytes over the virtual time of the last [Ok]
    completion (one-directional: bytes are not doubled for an echo
    leg, because there is none). *)

val fingerprint : result -> string
(** Digest of the driver-decision counters only — per-op ns/GC
    measurements, and transport reactions whose counts hinge on
    packet-vs-close races (resets sent, close-vs-death splits, stray
    completions), legitimately move under the sweep's schedule
    perturbation; what the drivers {e decided} must not. *)
