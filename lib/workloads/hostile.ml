module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express
module Ring = Guest.Ring
module Tenant = Guest.Tenant
module Mux = Guest.Mux

(* Byzantine aggressors against well-behaved victims on one shared
   guest backend: every odd-indexed tenant turns hostile for the
   [Fault.Plan.Guest_byzantine] window, abusing its rings through the
   unchecked raw surface (garbage descriptors, index rollback/runahead,
   reap withholding, kick storms, id aliasing).  The host's take-side
   validation must turn every abuse into counted verdicts — never an
   exception in a mux engine — and the escalation ladder must quarantine
   every attacker within the detection bound while the victim cohort
   keeps its goodput.  Containment is checkable: quarantined tenants'
   host ring indices freeze, their pool bytes return through the
   generation-tagged owner release, and the victims score zero
   violations of their own. *)

type config = {
  tenants : int;
  attacker_every : int;  (** Every k-th tenant is a byzantine attacker. *)
  victim_ops : int;  (** Closed-loop echoes per victim. *)
  victim_bytes : int;
  victim_gap : Time.t;
      (** Pause between victim ops, stretching the cohort's activity
          across the attack window. *)
  ring_slots : int;
  buf_bytes : int;
  mux_engines : int;
  mux_mode : Engine.mode;
  mode : Engine.mode;  (** Scheduling mode of the Pony groups. *)
  suspect_after : int;
  quarantine_after : int;
  byzantine : bool;
      (** [false] runs the clean same-seed baseline: identical cohorts
          and schedule, empty fault plan. *)
  attack_start : Time.t;
  attack_duration : Time.t;
  detect_bound : Time.t;
      (** Max allowed quarantine latency from attack start. *)
  kick_hz : float;
  seed : int;
  tie_salt : int;
  stop_at : Time.t;
  run_cap : Time.t;
  op_pool_bytes : int;
}

let default_config =
  {
    tenants = 40;
    attacker_every = 2;
    victim_ops = 12;
    victim_bytes = 1024;
    victim_gap = Time.us 300;
    ring_slots = 16;
    buf_bytes = 4096;
    mux_engines = 2;
    mux_mode = Engine.Spreading { runtime_pct = 0.9 };
    mode = Engine.Dedicating { cores = 2 };
    suspect_after = 3;
    quarantine_after = 12;
    byzantine = true;
    attack_start = Time.ms 2;
    attack_duration = Time.ms 3;
    detect_bound = Time.ms 2;
    kick_hz = 200_000.;
    seed = 33;
    tie_salt = 0;
    stop_at = Time.ms 10;
    run_cap = Time.ms 25;
    op_pool_bytes = 256 lsl 20;
  }

type result = {
  n_tenants : int;
  n_victims : int;
  n_attackers : int;
  victim_ok : int;
  victim_failed : int;
  victim_retries : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  victim_violations : int;
      (** Violations scored against victims — must be zero: the
          escalation ladder must not produce false positives. *)
  attackers_quarantined : int;
  suspects : int;  (** Suspect escalations at the mux. *)
  max_detection : Time.t;
      (** Worst quarantine latency from attack start (0 when no
          attacker was quarantined). *)
  detection_ok : bool;
      (** All attackers quarantined within [detect_bound]. *)
  violations : (string * int) list;
      (** Attacker violations by reason (schedule-sensitive counts). *)
  post_bad_range : int;
      (** Checked posts refused guest-side: each attacker fires one
          buggy-but-honest out-of-range {!Ring.post} probe, proving the
          non-fatal rejection path end to end. *)
  unmatched_completions : int;
  atk_completed : int;  (** Attacker ops that completed normally. *)
  atk_failed : int;  (** Malformed/aliased descriptors, completed Failed. *)
  atk_cancelled : int;
  rx_drops : int;
  detached : int;  (** Tenants fully detached at quiesce. *)
  guest_attacks : int;  (** Byzantine windows the injector launched. *)
  pool_leak_bytes : int;
}

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ~op_pool_bytes:cfg.op_pool_bytes ()
  in
  let h_guest = mk 0 in
  let h_srv = mk 1 in
  ignore
    (Snap.Host.enable_guests ~engines:cfg.mux_engines ~mode:cfg.mux_mode
       ~suspect_after:cfg.suspect_after ~quarantine_after:cfg.quarantine_after
       h_guest);
  let is_attacker i = i mod cfg.attacker_every = cfg.attacker_every - 1 in
  let attacker_rank i =
    let r = ref 0 in
    for j = 0 to i - 1 do
      if is_attacker j then incr r
    done;
    !r
  in
  let n_attackers =
    let n = ref 0 in
    for i = 0 to cfg.tenants - 1 do
      if is_attacker i then incr n
    done;
    !n
  in
  let n_victims = cfg.tenants - n_attackers in
  let behaviors_of rank : Fault.Plan.byzantine list =
    match rank mod 6 with
    | 0 -> [ Fault.Plan.Bad_desc_range ]
    | 1 -> [ Fault.Plan.Avail_rollback; Fault.Plan.Bad_desc_range ]
    | 2 -> [ Fault.Plan.Avail_runahead ]
    | 3 -> [ Fault.Plan.Reap_withhold ]
    | 4 -> [ Fault.Plan.Kick_storm { hz = cfg.kick_hz } ]
    | _ -> [ Fault.Plan.Desc_id_alias ]
  in
  let victim_ok = ref 0 in
  let victim_failed = ref 0 in
  let victim_retries = ref 0 in
  let victim_last_done = ref Time.zero in
  let victim_hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "hostile") ]
      "workload_victim_latency_ns"
  in
  let tenant_of = Array.make cfg.tenants None in
  ignore
    (Snap.Host.spawn_app h_srv ~name:"backend-v" ~spin:true (fun ctx ->
         let c =
           PE.create_client ctx h_srv.Snap.Host.pony ~name:"backend-v"
             ~exclusive_engine:true ()
         in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:m.PE.msg_bytes ())
         done));
  ignore
    (Snap.Host.spawn_app h_srv ~name:"backend-a" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_srv.Snap.Host.pony ~name:"backend-a" () in
         while true do
           let _m = PE.await_message ctx c in
           Cpu.Thread.compute ctx (Time.us 1)
         done));
  let poll_step = Time.us 2 in
  let poll ctx ~deadline f =
    let rec go () =
      match f () with
      | Some _ as r -> r
      | None ->
          if Cpu.Thread.now ctx >= deadline then None
          else begin
            Cpu.Thread.sleep ctx poll_step;
            go ()
          end
    in
    go ()
  in
  let prime_rx tn =
    for s = 0 to Ring.capacity tn.Tenant.rx - 1 do
      ignore
        (Ring.post tn.Tenant.rx ~now:Time.zero ~id:s
           ~off:(Tenant.rx_buf_off tn s) ~len:tn.Tenant.buf_bytes)
    done
  in
  (* Victim driver: the same closed-loop guest-side echo as the tenants
     workload, with attempt-unique descriptor ids (reusing a live id
     reads as aliasing) and a gap between ops so the cohort is active
     throughout the attack window. *)
  let victim_driver i ctx =
    Cpu.Thread.sleep ctx (Time.add (Time.us 600) (i * 500));
    let tn =
      Snap.Host.attach_tenant ctx h_guest
        ~name:(Printf.sprintf "v%d" i)
        ~dst_host:1 ~dst_name:"backend-v" ~ring_slots:cfg.ring_slots
        ~buf_bytes:cfg.buf_bytes ()
    in
    tenant_of.(i) <- Some tn;
    prime_rx tn;
    let n = ref 0 in
    let next_id = ref 0 in
    while !n < cfg.victim_ops && Cpu.Thread.now ctx < cfg.stop_at do
      incr n;
      let t0 = Cpu.Thread.now ctx in
      let rec attempt k =
        if k > 3 then incr victim_failed
        else begin
          if k > 1 then incr victim_retries;
          let slot = !n mod cfg.ring_slots in
          incr next_id;
          let id = !next_id in
          if
            not
              (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id
                 ~off:(Tenant.tx_buf_off tn slot) ~len:cfg.victim_bytes)
          then begin
            Cpu.Thread.sleep ctx (Time.us 50);
            attempt (k + 1)
          end
          else
            let deadline = Time.add (Cpu.Thread.now ctx) (Time.ms 4) in
            match
              poll ctx ~deadline (fun () ->
                  match Ring.pop_used tn.Tenant.tx with
                  | Some u when u.Ring.u_id = id -> Some u
                  | Some _ | None -> None)
            with
            | Some u when u.Ring.u_status = Ring.Complete -> (
                let deadline = Time.add (Cpu.Thread.now ctx) (Time.ms 10) in
                match
                  poll ctx ~deadline (fun () -> Ring.pop_used tn.Tenant.rx)
                with
                | Some ru ->
                    ignore
                      (Ring.post tn.Tenant.rx ~now:(Cpu.Thread.now ctx)
                         ~id:ru.Ring.u_id
                         ~off:(Tenant.rx_buf_off tn ru.Ring.u_id)
                         ~len:tn.Tenant.buf_bytes);
                    let lat = Time.sub (Cpu.Thread.now ctx) t0 in
                    Stats.Histogram.record victim_hist lat;
                    Stats.Histogram.record reg_hist lat;
                    incr victim_ok;
                    victim_last_done := Loop.now loop
                | None -> incr victim_failed)
            | Some _ ->
                Cpu.Thread.sleep ctx (Time.us 50);
                attempt (k + 1)
            | None -> attempt (k + 1)
        end
      in
      attempt 1;
      Cpu.Thread.sleep ctx cfg.victim_gap
    done;
    Snap.Host.detach_tenant h_guest tn
  in
  (* Attacker driver: attaches like any guest and behaves until the
     byzantine window (the injector flips its driver hostile).  Right
     after attach it fires one buggy-but-honest probe — a {e checked}
     post with an out-of-range buffer — which must come back as a
     counted refusal, not a crash.  Light legitimate traffic keeps the
     binding warm so the attack hits a live datapath. *)
  let attacker_driver i ctx =
    Cpu.Thread.sleep ctx (Time.add (Time.us 600) (i * 500));
    let tn =
      Snap.Host.attach_tenant ctx h_guest
        ~name:(Printf.sprintf "x%d" i)
        ~dst_host:1 ~dst_name:"backend-a" ~ring_slots:cfg.ring_slots
        ~buf_bytes:cfg.buf_bytes ()
    in
    tenant_of.(i) <- Some tn;
    let accepted =
      Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx) ~id:999
        ~off:(Memory.Region.size tn.Tenant.region)
        ~len:64
    in
    assert (not accepted);
    let posted = ref 0 in
    while Tenant.state tn = Tenant.Attached && Cpu.Thread.now ctx < cfg.stop_at
    do
      (* The cooperative guest driver owns the rings only until the
         byzantine window opens; after that the attack driver does
         (reaping here would defeat Reap_withhold). *)
      if (not cfg.byzantine) || Cpu.Thread.now ctx < cfg.attack_start then begin
        let rec reap () =
          match Ring.pop_used tn.Tenant.tx with Some _ -> reap () | None -> ()
        in
        reap ();
        if Cpu.Thread.now ctx < cfg.attack_start then begin
          incr posted;
          ignore
            (Ring.post tn.Tenant.tx ~now:(Cpu.Thread.now ctx)
               ~id:(1000 + !posted)
               ~off:(Tenant.tx_buf_off tn !posted)
               ~len:256)
        end
      end;
      Cpu.Thread.sleep ctx (Time.us 200)
    done;
    if Tenant.state tn = Tenant.Attached then
      Snap.Host.detach_tenant h_guest tn
  in
  for i = 0 to cfg.tenants - 1 do
    let driver = if is_attacker i then attacker_driver else victim_driver in
    ignore
      (Snap.Host.spawn_app h_guest
         ~name:(Printf.sprintf "hg%d" i)
         (fun ctx -> driver i ctx))
  done;
  (* The fault plan: one byzantine window per attacker, all opening at
     [attack_start].  The clean baseline runs the identical schedule
     with no events. *)
  let plan =
    if not cfg.byzantine then Fault.Plan.empty
    else
      Fault.Plan.make ~seed:cfg.seed
        (List.filter_map
           (fun i ->
             if is_attacker i then
               Some
                 (Fault.Plan.Guest_byzantine
                    {
                      host = 0;
                      tenant = Printf.sprintf "x%d" i;
                      start = cfg.attack_start;
                      duration = cfg.attack_duration;
                      behaviors = behaviors_of (attacker_rank i);
                    })
             else None)
           (List.init cfg.tenants (fun i -> i)))
  in
  let inj =
    Fault.Injector.install ~loop ~plan ~fabric:fab
      ~hosts:[ Snap.Host.fault_host h_guest; Snap.Host.fault_host h_srv ]
  in
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  let all_tenants = Array.to_list tenant_of |> List.filter_map (fun x -> x) in
  let split p = List.filter p all_tenants in
  let victims =
    split (fun tn -> String.length tn.Tenant.tname > 0 && tn.Tenant.tname.[0] = 'v')
  in
  let attackers =
    split (fun tn -> String.length tn.Tenant.tname > 0 && tn.Tenant.tname.[0] = 'x')
  in
  let sum l f = List.fold_left (fun acc tn -> acc + f tn) 0 l in
  let attackers_quarantined =
    sum attackers (fun tn ->
        if Tenant.health tn = Tenant.Quarantined then 1 else 0)
  in
  let max_detection =
    List.fold_left
      (fun acc tn ->
        match Tenant.quarantined_at tn with
        | Some at -> Time.max acc (Time.sub at cfg.attack_start)
        | None -> acc)
      Time.zero attackers
  in
  let detection_ok =
    (not cfg.byzantine)
    || (attackers_quarantined = n_attackers && max_detection <= cfg.detect_bound)
  in
  let pool_leak_bytes =
    Memory.Pool.in_use (PE.op_pool h_guest.Snap.Host.pony)
    + Memory.Pool.in_use (PE.op_pool h_srv.Snap.Host.pony)
  in
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (PE.op_pool h.Snap.Host.pony))
    [ h_guest; h_srv ];
  let victim_goodput_gbps =
    if !victim_last_done = 0 then 0.0
    else
      float_of_int (!victim_ok * cfg.victim_bytes * 2 * 8)
      /. float_of_int !victim_last_done
  in
  let mux = Snap.Host.guest_mux h_guest in
  let mux_stat f = match mux with Some m -> f m | None -> 0 in
  {
    n_tenants = cfg.tenants;
    n_victims;
    n_attackers;
    victim_ok = !victim_ok;
    victim_failed = !victim_failed;
    victim_retries = !victim_retries;
    victim_goodput_gbps;
    victim_latencies = victim_hist;
    victim_violations = sum victims Tenant.violations;
    attackers_quarantined;
    suspects = mux_stat Mux.suspects;
    max_detection;
    detection_ok;
    violations =
      List.map
        (fun v ->
          ( Tenant.violation_to_string v,
            sum attackers (fun tn -> Tenant.violations_by tn v) ))
        Tenant.all_violations;
    post_bad_range =
      sum all_tenants (fun tn ->
          Ring.post_bad_range tn.Tenant.tx + Ring.post_bad_range tn.Tenant.rx);
    unmatched_completions = mux_stat Mux.unmatched_completions;
    atk_completed = sum attackers Tenant.tx_completed;
    atk_failed = sum attackers Tenant.tx_failed;
    atk_cancelled = sum attackers Tenant.tx_cancelled;
    rx_drops = sum all_tenants Tenant.rx_drops;
    detached =
      sum all_tenants (fun tn ->
          if Tenant.state tn = Tenant.Detached then 1 else 0);
    guest_attacks =
      (match List.assoc_opt "guest_attacks" (Fault.Injector.counters inj) with
      | Some n -> n
      | None -> 0);
    pool_leak_bytes;
  }

(* Decision-level counters only.  Violation totals accrue per engine
   pass and are schedule-sensitive under the sweep's tie-break
   perturbation, as are retry counts near their deadlines; everything
   the backend {e decided} — who was quarantined, what completed, what
   leaked — must be byte-identical. *)
let fingerprint (r : result) : string =
  let buf = Buffer.create 512 in
  let add name v = Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v) in
  add "tenants" r.n_tenants;
  add "victims" r.n_victims;
  add "attackers" r.n_attackers;
  add "victim_ok" r.victim_ok;
  add "victim_failed" r.victim_failed;
  add "victim_violations" r.victim_violations;
  add "attackers_quarantined" r.attackers_quarantined;
  add "detection_ok" (if r.detection_ok then 1 else 0);
  add "post_bad_range" r.post_bad_range;
  add "guest_attacks" r.guest_attacks;
  add "detached" r.detached;
  add "pool_leak" r.pool_leak_bytes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
