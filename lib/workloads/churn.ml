module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

(* C10M-style connection-scaling workload: one host holds >= 100k live
   Pony Express connections (a full bipartite client mesh between two
   hosts), drives heavy-tailed RPC traffic over all of them in a
   closed loop, then runs connect/disconnect storms that close and
   re-dial a slice of the mesh.

   This is the datapath-scaling acceptance test: per-connection state
   lives in flat generation-tagged arenas, deadline/keepalive timers on
   per-engine timing wheels, and the per-packet send/ack path allocates
   O(1) — none of which can be observed at 2 conns and all of which
   dominate at 100k.  The steady-state window is measured in-workload
   (minor-GC words and modeled engine ns per op between two fixed op
   counts) so ramp-up and teardown do not launder the per-op figures.

   Topology: [clients_per_side] driver clients on host 0 each connect
   to every one of [clients_per_side] sink clients on host 1, so host 0
   carries clients_per_side^2 connection halves (and host 1 the mirror
   halves).  Drivers are staggered at distinct start instants and
   rendezvous on a counter before traffic starts, so the measured
   window sees every connection live and every driver mid-loop. *)

type config = {
  clients_per_side : int;
      (** Drivers on host 0 and sinks on host 1; live connections on
          host 0 = clients_per_side^2. *)
  ops_per_driver : int;  (** Closed-loop steady-state ops per driver. *)
  storm_rounds : int;  (** Connect/disconnect storms after the window. *)
  storm_close_every : int;  (** Every k-th conn per driver per storm. *)
  op_timeout : Time.t;  (** Bounded wait for each op's completion. *)
  seed : int;
  tie_salt : int;
  mode : Engine.mode;
  stop_at : Time.t;  (** Drivers stop submitting here. *)
  run_cap : Time.t;
  op_pool_bytes : int;
}

let default_config =
  {
    (* 320 x 320 = 102_400 live connection halves on host 0. *)
    clients_per_side = 320;
    ops_per_driver = 40;
    storm_rounds = 2;
    storm_close_every = 8;
    op_timeout = Time.ms 5;
    seed = 17;
    tie_salt = 0;
    mode = Engine.Dedicating { cores = 2 };
    stop_at = Time.ms 60;
    run_cap = Time.ms 120;
    op_pool_bytes = 1 lsl 30;
  }

type result = {
  n_drivers : int;
  conns_target : int;
  ramp_failures : int;  (** Connects that raised during ramp. *)
  live_at_steady : int;
      (** Established conns on host 0 when the measured window opens. *)
  ops_ok : int;
  ops_failed : int;
  stray_completions : int;
      (** Completions not matching the op awaited (late timeouts, Busy
          follow-ups); consumed and counted, never desync the loop. *)
  steady_ops : int;  (** Ops inside the measured window. *)
  steady_gc_words_per_op : float;
  steady_cpu_ns_per_op : float;  (** Modeled engine batch ns per op. *)
  bytes_completed : int;  (** Payload bytes of [Ok] steady+burst ops. *)
  last_done : Time.t;  (** Virtual completion time of the last Ok op. *)
  closes : int;
  reconnects : int;
  burst_ok : int;  (** Post-reconnect proof ops that completed [Ok]. *)
  burst_failed : int;
  conns_established : int;  (** Halves installed, both hosts. *)
  conns_closed : int;
  conn_resets : int;
  peer_deaths : int;
  pool_leak_bytes : int;
  latencies : Stats.Histogram.t;
}

(* Modeled CPU burned inside engine batches (same accounting the bench
   harness uses for its cpu_ns_per_op rows), so the steady-state window
   can be measured in-workload. *)
let engine_cost_sum () =
  List.fold_left
    (fun acc m ->
      match m.Stats.Registry.m_kind with
      | Stats.Registry.Histogram h
        when String.equal m.Stats.Registry.m_name "engine_batch_cost_ns" ->
          acc + Stats.Histogram.sum h
      | _ -> acc)
    0
    (Stats.Registry.snapshot ())

(* Deterministic per-driver size stream: 48-bit LCG, heavy-tailed
   90/9/1 over 64 B / 4 KiB / 64 KiB RPCs. *)
let rpc_bytes rnd =
  rnd := ((!rnd * 25214903917) + 11) land 0xFFFF_FFFF_FFFF;
  let r = !rnd lsr 17 in
  match r mod 100 with
  | n when n < 90 -> 64
  | n when n < 99 -> 4096
  | _ -> 65536

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ~op_pool_bytes:cfg.op_pool_bytes ()
  in
  let h_cli = mk 0 in
  let h_srv = mk 1 in
  let n = cfg.clients_per_side in
  let conns_target = n * n in
  let ramp_failures = ref 0 in
  let ramp_done = ref 0 in
  let ops_ok = ref 0 in
  let ops_failed = ref 0 in
  let strays = ref 0 in
  let steady_total = ref 0 in
  let bytes_completed = ref 0 in
  let last_done = ref Time.zero in
  let closes = ref 0 in
  let reconnects = ref 0 in
  let burst_ok = ref 0 in
  let burst_failed = ref 0 in
  let live_at_steady = ref 0 in
  let snap0 = ref None in
  let snap1 = ref None in
  let lat_hist = Stats.Histogram.create () in
  (* Window bounds in completed-op counts: the op that crosses each
     threshold takes the snapshot, so the window is exact and
     schedule-independent. *)
  let total_steady = n * cfg.ops_per_driver in
  let t0_ops = total_steady / 4 in
  let t1_ops = 3 * total_steady / 4 in
  let conn_tab : PE.conn array array = Array.make n [||] in
  let count_established () =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc c ->
            if PE.conn_state c = PE.Established then acc + 1 else acc)
          acc row)
      0 conn_tab
  in
  let note_steady () =
    incr steady_total;
    if !steady_total = t0_ops then begin
      live_at_steady := count_established ();
      snap0 := Some (Gc.minor_words (), engine_cost_sum ())
    end
    else if !steady_total = t1_ops then
      snap1 := Some (Gc.minor_words (), engine_cost_sum ())
  in
  (* Sinks: one client per remote endpoint, parked on await_message so
     delivered payload bytes are consumed (and their pool charges
     released) promptly. *)
  for i = 0 to n - 1 do
    ignore
      (Snap.Host.spawn_app h_srv
         ~name:(Printf.sprintf "sink%d" i)
         (fun ctx ->
           Cpu.Thread.sleep ctx (i * 200);
           let c =
             PE.create_client ctx h_srv.Snap.Host.pony
               ~name:(Printf.sprintf "s%d" i)
               ()
           in
           while true do
             ignore (PE.await_message ctx c)
           done))
  done;
  (* One closed-loop op: send, then consume completions until ours
     arrives (strays are late-timeout or Busy follow-ups for earlier
     ids).  Timeouts leave the op to resolve as a future stray. *)
  let do_op ctx client conn ~bytes =
    let id = PE.send_message ctx conn ~bytes () in
    let deadline = Time.add (Cpu.Thread.now ctx) cfg.op_timeout in
    let rec wait () =
      match PE.await_completion_until ctx client ~deadline with
      | None -> false
      | Some c when c.PE.comp_op = id ->
          if c.PE.status = Pony.Wire.Ok then begin
            Stats.Histogram.record lat_hist
              (Time.sub c.PE.completed_at c.PE.issued_at);
            bytes_completed := !bytes_completed + bytes;
            last_done := Loop.now loop;
            true
          end
          else false
      | Some _ ->
          incr strays;
          wait ()
    in
    wait ()
  in
  let driver i ctx =
    (* Distinct start instants: attach order, client ids and engine
       assignment are functions of the config, not of same-time ties. *)
    Cpu.Thread.sleep ctx (Time.add (Time.ms 1) (i * 500));
    let client =
      PE.create_client ctx h_cli.Snap.Host.pony
        ~name:(Printf.sprintf "d%d" i)
        ()
    in
    let rnd = ref ((cfg.seed * 1_000_003) + (i * 7919) + 12345) in
    (* Ramp: dial every sink, target order rotated per driver so the
       connect storm spreads across remote clients. *)
    let conns =
      Array.init n (fun j ->
          let dst = (i + j) mod n in
          PE.connect ctx client ~dst_host:1 ~dst_client:dst)
    in
    conn_tab.(i) <- conns;
    incr ramp_done;
    while !ramp_done < n && Cpu.Thread.now ctx < cfg.stop_at do
      Cpu.Thread.sleep ctx (Time.us 20)
    done;
    (* Steady state: closed-loop heavy-tailed RPCs round-robin over
       this driver's slice of the mesh. *)
    for k = 0 to cfg.ops_per_driver - 1 do
      if Cpu.Thread.now ctx < cfg.stop_at then begin
        let conn = conns.(k mod n) in
        if do_op ctx client conn ~bytes:(rpc_bytes rnd) then incr ops_ok
        else incr ops_failed;
        note_steady ()
      end
      else begin
        incr ops_failed;
        note_steady ()
      end
    done;
    (* Connect/disconnect storms: close every k-th conn (offset walks
       per round), re-dial it, and prove the replacement carries
       traffic with one small op. *)
    for r = 0 to cfg.storm_rounds - 1 do
      let sel j = j mod cfg.storm_close_every = (r + i) mod cfg.storm_close_every in
      for j = 0 to n - 1 do
        if sel j && Cpu.Thread.now ctx < cfg.stop_at then begin
          PE.close ctx conns.(j);
          incr closes
        end
      done;
      Cpu.Thread.sleep ctx (Time.us 50);
      for j = 0 to n - 1 do
        if sel j && Cpu.Thread.now ctx < cfg.stop_at then begin
          conns.(j) <- PE.connect ctx client ~dst_host:1 ~dst_client:((i + j) mod n);
          incr reconnects;
          if do_op ctx client conns.(j) ~bytes:64 then begin
            incr burst_ok;
            bytes_completed := !bytes_completed + 64
          end
          else incr burst_failed
        end
      done
    done
  in
  for i = 0 to n - 1 do
    ignore
      (Snap.Host.spawn_app h_cli
         ~name:(Printf.sprintf "drv%d" i)
         (fun ctx ->
           match driver i ctx with
           | () -> ()
           | exception _ -> incr ramp_failures))
  done;
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  let pool_leak_bytes =
    Memory.Pool.in_use (PE.op_pool h_cli.Snap.Host.pony)
    + Memory.Pool.in_use (PE.op_pool h_srv.Snap.Host.pony)
  in
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (PE.op_pool h.Snap.Host.pony))
    [ h_cli; h_srv ];
  let steady_ops = max 1 (t1_ops - t0_ops) in
  let steady_gc, steady_cpu =
    match (!snap0, !snap1) with
    | Some (gc0, c0), Some (gc1, c1) ->
        ( (gc1 -. gc0) /. float_of_int steady_ops,
          float_of_int (c1 - c0) /. float_of_int steady_ops )
    | _ -> (0.0, 0.0)
  in
  {
    n_drivers = n;
    conns_target;
    ramp_failures = !ramp_failures;
    live_at_steady = !live_at_steady;
    ops_ok = !ops_ok;
    ops_failed = !ops_failed;
    stray_completions = !strays;
    steady_ops;
    steady_gc_words_per_op = steady_gc;
    steady_cpu_ns_per_op = steady_cpu;
    bytes_completed = !bytes_completed;
    last_done = !last_done;
    closes = !closes;
    reconnects = !reconnects;
    burst_ok = !burst_ok;
    burst_failed = !burst_failed;
    conns_established =
      PE.conns_established h_cli.Snap.Host.pony
      + PE.conns_established h_srv.Snap.Host.pony;
    conns_closed =
      PE.conns_closed h_cli.Snap.Host.pony
      + PE.conns_closed h_srv.Snap.Host.pony;
    conn_resets =
      PE.conn_resets_sent h_cli.Snap.Host.pony
      + PE.conn_resets_sent h_srv.Snap.Host.pony;
    peer_deaths =
      PE.peer_deaths h_cli.Snap.Host.pony + PE.peer_deaths h_srv.Snap.Host.pony;
    pool_leak_bytes;
    latencies = lat_hist;
  }

let goodput_gbps (r : result) =
  if r.last_done = 0 then 0.0
  else float_of_int (r.bytes_completed * 8) /. float_of_int r.last_done

(* Driver decisions only: per-op ns and GC words are measurements, and
   the transport-reaction counters (resets sent, close-vs-death splits,
   stray completions) depend on whether an in-flight packet lands
   before or after a close's tombstone — a race the sweep's tie-break
   salt legitimately flips.  What the drivers decided, and whether
   every decided op resolved cleanly, must not move. *)
let fingerprint (r : result) : string =
  let buf = Buffer.create 256 in
  let add name v = Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v) in
  add "drivers" r.n_drivers;
  add "conns_target" r.conns_target;
  add "ramp_failures" r.ramp_failures;
  add "live_at_steady" r.live_at_steady;
  add "ops_ok" r.ops_ok;
  add "ops_failed" r.ops_failed;
  add "closes" r.closes;
  add "reconnects" r.reconnects;
  add "burst_ok" r.burst_ok;
  add "burst_failed" r.burst_failed;
  add "pool_leak" r.pool_leak_bytes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
