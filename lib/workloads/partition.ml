module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

(* Peer-failure acceptance: two closed-loop victims (hosts 0 and 1)
   echo against a server on host 2 while the fault plan partitions the
   network and then kills the server host outright.  Host 0 rides out
   rolling symmetric link blackouts; host 1 gets the nastier half-open
   case (its packets toward the server are dropped while the reverse
   direction flows).  Mid-run the server host crashes and restarts with
   a fresh incarnation.

   The claims checked:

   - {e no op hangs}: every submitted op resolves — echo received,
     retries exhausted, or [Peer_dead] — because keepalives bound
     silent peer death and every await carries a deadline;
   - {e bounded detection}: the slowest failed op resolves within the
     window implied by the keepalive config and retry policy;
   - {e reclamation}: after quiesce no op-pool byte on any host is
     still charged to a dead peer's connections
     ([Pool.assert_quiesced] plus the registered peer-reclaim
     invariants);
   - {e reconnect}: victims dial back through [connect_with_retry] and
     finish their op budget against the restarted server (which
     re-registers under the same name with a new incarnation). *)

let server_addr = 2
let server_name = "server"

type config = {
  ops_per_victim : int;
  op_interval : Time.t;
      (** Closed-loop pacing, so the victims stay active across the
          whole fault timeline instead of finishing before it starts. *)
  bytes : int;
  ka_interval : Time.t;
  ka_miss_budget : int;
  echo_timeout : Time.t;  (** Bounded wait for the echo after an [Ok] send. *)
  blackouts : (Time.t * Time.t) list;
      (** Symmetric host 0 <-> server windows (start, duration). *)
  oneway : (Time.t * Time.t) option;
      (** Half-open window: host 1 -> server packets dropped. *)
  crash_at : Time.t option;  (** Server host crash instant. *)
  restart_after : Time.t;
  seed : int;
  tie_salt : int;
  mode : Engine.mode;
  stop_at : Time.t;  (** Victims stop submitting here. *)
  run_cap : Time.t;
}

let default_config =
  {
    ops_per_victim = 250;
    op_interval = Time.us 100;
    bytes = 2048;
    (* Detection window: 200us * (3 + 1) = 800us of silence. *)
    ka_interval = Time.us 200;
    ka_miss_budget = 3;
    echo_timeout = Time.us 800;
    blackouts = [ (Time.ms 2, Time.ms 2); (Time.ms 8, Time.us 1500) ];
    oneway = Some (Time.ms 5, Time.ms 2);
    crash_at = Some (Time.ms 12);
    restart_after = Time.ms 4;
    seed = 11;
    tie_salt = 0;
    mode = Engine.Dedicating { cores = 2 };
    stop_at = Time.ms 30;
    run_cap = Time.ms 60;
  }

type result = {
  ops_attempted : int;
  ops_resolved : int;  (** Send episodes that returned — must equal attempted. *)
  echo_ok : int;
  echo_timeouts : int;
  peer_dead_failures : int;  (** Episodes ending [Error Peer_dead]. *)
  retry_exhausted : int;  (** Episodes out of attempts (blackout, no death). *)
  other_failures : int;
  reconnects : int;  (** Re-dials after the first successful connect. *)
  server_registrations : int;  (** 1 + re-registrations after restart. *)
  victims_finished : int;
  conns_established : int;
  conns_closed : int;
  conn_resets : int;
  peer_deaths : int;
  peer_dead_ops : int;
  stale_drops : int;
  peer_restarts : int;
  keepalive_probes : int;
  server_incarnation : int;
  max_failed_resolution : Time.t;
      (** Slowest failed send episode, submission to [Error]. *)
  resolution_bound : Time.t;  (** What the config promises (see below). *)
  max_outage : Time.t;
      (** Longest gap between a victim's successive successful echoes —
          the end-to-end blast radius of a fault: ride out the window,
          declare the peer dead, re-dial, succeed again. *)
  outage_bound : Time.t;
  detection_ok : bool;
      (** Failed ops within [resolution_bound] and outages within
          [outage_bound]. *)
  pool_leak_bytes : int;
  last_echo_done : Time.t;  (** Virtual time of the last successful echo. *)
  latencies : Stats.Histogram.t;  (** Successful request+echo round trips. *)
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
}

(* An op submitted just before its peer dies resolves no later than:
   the keepalive declaration (silence window), plus every retry attempt
   spending its full per-op timeout, plus the backoff between attempts,
   plus loose scheduling slack. *)
let resolution_bound ~(cfg : config) ~(policy : PE.Retry.policy) =
  let detect = cfg.ka_interval * (cfg.ka_miss_budget + 1) in
  let backoffs = ref 0 in
  for n = 2 to policy.PE.Retry.max_attempts do
    backoffs := !backoffs + PE.Retry.delay_before policy ~attempt:n
  done;
  let timeouts =
    match policy.PE.Retry.op_timeout with
    | Some t -> policy.PE.Retry.max_attempts * t
    | None -> 0
  in
  detect + !backoffs + timeouts + Time.ms 1

(* A victim goes quiet for at most: the longest fault window (no echo
   can cross it), plus declaring the peer dead, plus one echo wait that
   straddled the window's start, plus re-dial backoff and setup. *)
let outage_bound ~(cfg : config) =
  let worst_window =
    List.fold_left
      (fun acc (_, d) -> Time.max acc d)
      (match cfg.crash_at with Some _ -> cfg.restart_after | None -> Time.zero)
      (cfg.blackouts @ Option.to_list cfg.oneway)
  in
  let detect = cfg.ka_interval * (cfg.ka_miss_budget + 1) in
  worst_window + detect + cfg.echo_timeout + Time.ms 2

let send_policy =
  {
    PE.Retry.max_attempts = 3;
    base_delay = Time.us 50;
    multiplier = 2.0;
    max_delay = Time.us 200;
    op_timeout = Some (Time.us 500);
  }

(* Patient dialer: keeps knocking through the restart window.  Each
   attempt already pays the out-of-band setup latency, so the backoff
   stays modest. *)
let reconnect_policy =
  {
    PE.Retry.max_attempts = 400;
    base_delay = Time.us 50;
    multiplier = 1.5;
    max_delay = Time.us 500;
    op_timeout = None;
  }

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:3 in
  let dir = PE.Directory.create () in
  let keepalive =
    { PE.ka_interval = cfg.ka_interval; ka_miss_budget = cfg.ka_miss_budget }
  in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ~keepalive ()
  in
  let h0 = mk 0 and h1 = mk 1 and h_srv = mk server_addr in
  let hosts = [ h0; h1; h_srv ] in
  let plan =
    Fault.Plan.make ~seed:cfg.seed
      (List.map
         (fun (start, duration) ->
           Fault.Plan.Link_blackout { a = 0; b = server_addr; start; duration })
         cfg.blackouts
      @ (match cfg.oneway with
        | Some (start, duration) ->
            [
              Fault.Plan.Link_blackout_oneway
                { src = 1; dst = server_addr; start; duration };
            ]
        | None -> [])
      @
      match cfg.crash_at with
      | Some start ->
          [
            Fault.Plan.Host_crash
              { host = server_addr; start; restart_after = cfg.restart_after };
          ]
      | None -> [])
  in
  let inj =
    Fault.Injector.install ~loop ~plan ~fabric:fab
      ~hosts:(List.map Snap.Host.fault_host hosts)
  in
  let attempted = ref 0 in
  let resolved = ref 0 in
  let echo_ok = ref 0 in
  let last_echo_done = ref Time.zero in
  let echo_timeouts = ref 0 in
  let peer_dead_failures = ref 0 in
  let retry_exhausted = ref 0 in
  let other_failures = ref 0 in
  let reconnects = ref 0 in
  let server_registrations = ref 0 in
  let victims_finished = ref 0 in
  let max_failed = ref Time.zero in
  let max_outage = ref Time.zero in
  let hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "partition") ]
      "workload_op_latency_ns"
  in
  (* Echo server: bounded awaits so host death is noticed promptly;
     after the crash it parks until the host is back, then re-registers
     under the same name (the directory resolves names against live
     clients only, so the pre-crash registration cannot shadow it). *)
  ignore
    (Snap.Host.spawn_app h_srv ~name:"server" ~spin:true (fun ctx ->
         let fresh () =
           incr server_registrations;
           PE.create_client ctx h_srv.Snap.Host.pony ~name:server_name ()
         in
         let rec serve c =
           let rec drain () =
             match PE.poll_completion ctx c with
             | Some _ -> drain ()
             | None -> ()
           in
           drain ();
           if not (PE.client_alive c) then begin
             while not (PE.host_alive h_srv.Snap.Host.pony) do
               Cpu.Thread.sleep ctx (Time.us 100)
             done;
             serve (fresh ())
           end
           else begin
             (match
                PE.await_message_until ctx c
                  ~deadline:(Time.add (Cpu.Thread.now ctx) (Time.us 200))
              with
             | Some m ->
                 (* The reply can refuse (conn died while the request was
                    in flight); the refusal completion is drained above. *)
                 ignore (PE.send_message ctx m.PE.msg_conn ~bytes:cfg.bytes ())
             | None -> ());
             serve c
           end
         in
         serve (fresh ())));
  (* Closed-loop victims: one per client host.  Every send goes through
     the bounded-retry helper; a [Peer_dead] (or any conn no longer
     Established) drops the conn and the next iteration re-dials. *)
  let victim host vname =
    ignore
      (Snap.Host.spawn_app host ~name:vname ~spin:true (fun ctx ->
           let c = PE.create_client ctx host.Snap.Host.pony ~name:vname () in
           Cpu.Thread.sleep ctx (Time.us 500);
           let conn = ref None in
           let ever_connected = ref false in
           (* Only a [None] triggers a re-dial: the victim keeps using
              its conn until the transport tells it the peer is gone
              ([Peer_dead]), exactly like an application that has no
              side channel to the peer's health. *)
           let ensure_conn () =
             match !conn with
             | Some cn -> Some cn
             | None -> (
                 match
                   PE.connect_with_retry ctx c ~dst_host:server_addr
                     ~dst_name:server_name ~policy:reconnect_policy ()
                 with
                 | Some cn ->
                     if !ever_connected then incr reconnects;
                     ever_connected := true;
                     conn := Some cn;
                     Some cn
                 | None ->
                     conn := None;
                     None)
           in
           let n = ref 0 in
           let last_ok = ref None in
           while !n < cfg.ops_per_victim && Cpu.Thread.now ctx < cfg.stop_at do
             match ensure_conn () with
             | None -> Cpu.Thread.sleep ctx (Time.us 200)
             | Some cn ->
                 incr n;
                 incr attempted;
                 let t0 = Cpu.Thread.now ctx in
                 (match
                    PE.send_with_retry ctx cn ~policy:send_policy
                      ~bytes:cfg.bytes ()
                  with
                 | Ok _ -> (
                     match
                       PE.await_message_until ctx c
                         ~deadline:
                           (Time.add (Cpu.Thread.now ctx) cfg.echo_timeout)
                     with
                     | Some _echo ->
                         let now = Cpu.Thread.now ctx in
                         let lat = Time.sub now t0 in
                         Stats.Histogram.record hist lat;
                         Stats.Histogram.record reg_hist lat;
                         (match !last_ok with
                         | Some prev ->
                             let gap = Time.sub now prev in
                             if gap > !max_outage then max_outage := gap
                         | None -> ());
                         last_ok := Some now;
                         last_echo_done := now;
                         incr echo_ok
                     | None -> incr echo_timeouts)
                 | Error comp ->
                     let el = Time.sub (Cpu.Thread.now ctx) t0 in
                     if el > !max_failed then max_failed := el;
                     (match comp.PE.status with
                     | Pony.Wire.Peer_dead ->
                         incr peer_dead_failures;
                         conn := None
                     | Pony.Wire.Timed_out | Pony.Wire.Rejected
                     | Pony.Wire.Busy ->
                         incr retry_exhausted;
                         if PE.conn_state cn <> PE.Established then conn := None
                     | _ ->
                         incr other_failures;
                         conn := None));
                 incr resolved;
                 Cpu.Thread.sleep ctx cfg.op_interval
           done;
           (* Graceful teardown of whatever survived. *)
           (match !conn with
           | Some cn when PE.conn_state cn = PE.Established -> PE.close ctx cn
           | _ -> ());
           incr victims_finished))
  in
  victim h0 "victim0";
  victim h1 "victim1";
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  let sum f = List.fold_left (fun acc h -> acc + f h.Snap.Host.pony) 0 hosts in
  let pool_leak_bytes = sum (fun p -> Memory.Pool.in_use (PE.op_pool p)) in
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (PE.op_pool h.Snap.Host.pony))
    hosts;
  let bound = resolution_bound ~cfg ~policy:send_policy in
  let o_bound = outage_bound ~cfg in
  {
    ops_attempted = !attempted;
    ops_resolved = !resolved;
    echo_ok = !echo_ok;
    echo_timeouts = !echo_timeouts;
    peer_dead_failures = !peer_dead_failures;
    retry_exhausted = !retry_exhausted;
    other_failures = !other_failures;
    reconnects = !reconnects;
    server_registrations = !server_registrations;
    victims_finished = !victims_finished;
    conns_established = sum PE.conns_established;
    conns_closed = sum PE.conns_closed;
    conn_resets = sum PE.conn_resets_sent;
    peer_deaths = sum PE.peer_deaths;
    peer_dead_ops = sum PE.peer_dead_ops;
    stale_drops = sum PE.stale_drops;
    peer_restarts = sum PE.peer_restarts_detected;
    keepalive_probes = sum PE.keepalive_probes;
    server_incarnation = PE.incarnation h_srv.Snap.Host.pony;
    max_failed_resolution = !max_failed;
    resolution_bound = bound;
    max_outage = !max_outage;
    outage_bound = o_bound;
    detection_ok = !max_failed <= bound && !max_outage <= o_bound;
    last_echo_done = !last_echo_done;
    pool_leak_bytes;
    latencies = hist;
    fault_log = Fault.Injector.log inj;
    fault_counters = Fault.Injector.counters inj;
  }

(* Semantic counters only: the sweep perturbs same-timestamp event
   ordering, which legitimately shifts ns-scale timings — and with them
   edge-triggered counts like individual keepalive probes, resets
   answered to late retransmits, or stale-stamp drops — while every
   application-visible outcome stays fixed.  The fingerprint sticks to
   the outcomes the workload promises. *)
let fingerprint (r : result) : string =
  let buf = Buffer.create 512 in
  let add name v = Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v) in
  add "ops_attempted" r.ops_attempted;
  add "ops_resolved" r.ops_resolved;
  add "echo_ok" r.echo_ok;
  add "echo_timeouts" r.echo_timeouts;
  add "peer_dead_failures" r.peer_dead_failures;
  add "retry_exhausted" r.retry_exhausted;
  add "other_failures" r.other_failures;
  add "reconnects" r.reconnects;
  add "server_registrations" r.server_registrations;
  add "victims_finished" r.victims_finished;
  add "server_incarnation" r.server_incarnation;
  add "detection_ok" (if r.detection_ok then 1 else 0);
  add "pool_leak" r.pool_leak_bytes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
