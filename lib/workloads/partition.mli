(** Partition / peer-failure acceptance workload (§4.3, robustness).

    Two closed-loop victims (hosts 0 and 1) echo against a server on
    host 2 while the fault plan injects rolling symmetric link
    blackouts (host 0), a half-open one-way blackout (host 1's packets
    toward the server are dropped while the reverse direction flows),
    and a mid-run whole-host crash of the server with an
    incarnation-bumping restart.

    Acceptance invariants (checked by the tests and the CI smoke job):

    - every submitted op resolves — echo received, retries exhausted,
      or [Peer_dead] — and both victims finish before the run cap
      (keepalives bound silent peer death; every await has a deadline);
    - the slowest failed op resolves within [resolution_bound]
      (keepalive declaration window plus the retry policy's worst
      case);
    - zero op-pool bytes remain charged on any host after quiesce
      ([Pool.assert_quiesced] — the run raises otherwise), with the
      peer-reclaim invariants registered throughout;
    - victims reconnect via [connect_with_retry] and the restarted
      server re-registers under the same name with a fresh incarnation;
    - same-seed runs produce byte-identical fingerprints. *)

type config = {
  ops_per_victim : int;
  op_interval : Sim.Time.t;
      (** Closed-loop pacing, so the victims stay active across the
          whole fault timeline instead of finishing before it starts. *)
  bytes : int;
  ka_interval : Sim.Time.t;
  ka_miss_budget : int;
  echo_timeout : Sim.Time.t;
      (** Bounded wait for the echo after an [Ok] send. *)
  blackouts : (Sim.Time.t * Sim.Time.t) list;
      (** Symmetric host 0 <-> server windows (start, duration). *)
  oneway : (Sim.Time.t * Sim.Time.t) option;
      (** Half-open window: host 1 -> server packets dropped. *)
  crash_at : Sim.Time.t option;  (** Server host crash instant. *)
  restart_after : Sim.Time.t;
  seed : int;
  tie_salt : int;  (** Event-loop tie-break perturbation; 0 keeps FIFO. *)
  mode : Engine.mode;
  stop_at : Sim.Time.t;  (** Victims stop submitting here. *)
  run_cap : Sim.Time.t;
}

val default_config : config
(** 250 ops per victim, 200 us keepalives with a miss budget of 3
    (800 us detection), two rolling blackouts, one half-open window,
    and a 4 ms server-host outage at 12 ms. *)

type result = {
  ops_attempted : int;
  ops_resolved : int;
      (** Send episodes that returned — must equal [ops_attempted]. *)
  echo_ok : int;
  echo_timeouts : int;
  peer_dead_failures : int;  (** Episodes ending [Error Peer_dead]. *)
  retry_exhausted : int;
      (** Episodes out of attempts (blackout without a declared death). *)
  other_failures : int;
  reconnects : int;  (** Re-dials after the first successful connect. *)
  server_registrations : int;
      (** 1 + re-registrations after the restart. *)
  victims_finished : int;
  conns_established : int;
  conns_closed : int;
  conn_resets : int;
  peer_deaths : int;
  peer_dead_ops : int;
  stale_drops : int;
  peer_restarts : int;
  keepalive_probes : int;
  server_incarnation : int;
  max_failed_resolution : Sim.Time.t;
      (** Slowest failed send episode, submission to [Error]. *)
  resolution_bound : Sim.Time.t;
  max_outage : Sim.Time.t;
      (** Longest gap between a victim's successive successful echoes —
          the end-to-end blast radius of a fault window. *)
  outage_bound : Sim.Time.t;
  detection_ok : bool;
      (** Failed ops within [resolution_bound] and outages within
          [outage_bound]. *)
  pool_leak_bytes : int;
  last_echo_done : Sim.Time.t;
      (** Virtual time of the last successful echo; the bench harness
          derives goodput from [echo_ok], the op size and this. *)
  latencies : Stats.Histogram.t;
      (** Successful request+echo round trips. *)
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
}

val resolution_bound :
  cfg:config -> policy:Pony.Express.Retry.policy -> Sim.Time.t
(** [ka_interval * (ka_miss_budget + 1)] of silence to declare the peer
    dead, plus the policy's worst case (every attempt spending its full
    op timeout plus inter-attempt backoff), plus scheduling slack. *)

val outage_bound : cfg:config -> Sim.Time.t
(** Longest fault window, plus the keepalive declaration window, plus
    one straddling echo wait, plus re-dial slack. *)

val run : config -> result
(** Raises [Failure] at quiesce if any op-pool byte leaked. *)

val fingerprint : result -> string
(** Digest of the semantic outcome counters; byte-identical across
    same-seed runs and stable under schedule perturbation (edge-timed
    counts like individual probes are deliberately excluded). *)
