module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

type config = {
  clients : int;
  ops_per_client : int;
  op_bytes : int;
  think : Time.t;
  seed : int;
  tie_salt : int;
  mode : Engine.mode;
  state_bytes : int;
  upgrade_at : (int * Time.t) list;
  upgrade_config : Upgrade.config;
  watchdog_period : Time.t;
  plan : Fault.Plan.t;
  run_cap : Time.t;
  poll_period : Time.t option;
}

let default_plan ?(seed = 13) () =
  Fault.Plan.make ~seed
    [
      (* A link flap exactly across the server upgrade's brownout. *)
      Fault.Plan.Link_blackout
        { a = 0; b = 1; start = Time.ms 10; duration = Time.ms 2 };
      (* The server engine "crashes" mid-blackout: it is detached, so
         the crash lands on the in-flight instance and must abort the
         transaction at commit. *)
      Fault.Plan.Engine_crash
        { host = 1; engine = 0; start = Time.ms 15; restart_after = Time.ms 3 };
      (* Long after the client host committed onto the new release, its
         engine wedges; the watchdog must restart it into the engine's
         new home group. *)
      Fault.Plan.Engine_wedge { host = 0; engine = 0; start = Time.ms 60 };
    ]

let default_config =
  {
    clients = 2;
    ops_per_client = 1200;
    op_bytes = 1024;
    think = Time.us 50;
    seed = 7;
    tie_salt = 0;
    mode = Engine.Dedicating { cores = 1 };
    state_bytes = 4_000_000;
    upgrade_at = [ (1, Time.ms 10); (0, Time.ms 40) ];
    upgrade_config = Upgrade.default_config;
    watchdog_period = Time.us 100;
    plan = default_plan ();
    run_cap = Time.ms 500;
    poll_period = Some (Time.us 100);
  }

type result = {
  ops_expected : int;
  ops_completed : int;
  lost_ops : int;
  latencies : Stats.Histogram.t;
  completion_time : Time.t;
  reports : (int * Upgrade.report list) list;
  committed : int;
  rollbacks : int;
  give_ups : int;
  max_blackout : Time.t;
  transition_log : Fault.Log.t;
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
  watchdog_counters : (string * int) list;
  watchdog_restarts : int;
  flow_resyncs : int;
  groups_consistent : bool;
}

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = PE.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ?poll_period:cfg.poll_period ()
  in
  let ha = mk 0 and hb = mk 1 in
  let host_of = function 0 -> ha | 1 -> hb | a ->
    invalid_arg (Printf.sprintf "Chaos_upgrade: no host %d" a)
  in
  let inj =
    Fault.Injector.install ~loop ~plan:cfg.plan ~fabric:fab
      ~hosts:[ Snap.Host.fault_host ha; Snap.Host.fault_host hb ]
  in
  (* Watchdogs: one per host, monitoring the Pony engines.  They must
     coexist with the upgrade (migrating engines are excused) and catch
     the injected wedge. *)
  let watchdogs =
    List.map
      (fun h ->
        let wd =
          Control.Watchdog.create ~control:h.Snap.Host.control
            ~period:cfg.watchdog_period ()
        in
        Control.Watchdog.watch_group wd h.Snap.Host.group;
        Control.Watchdog.start wd;
        wd)
      [ ha; hb ]
  in
  (* Staggered fleet upgrade: each host's engines migrate into a fresh
     new-release group, as transactions that roll back under faults. *)
  let transition_log = Fault.Log.create () in
  let reports = ref [] in
  let new_groups = ref [] in
  List.iter
    (fun (addr, at) ->
      let h = host_of addr in
      ignore
        (Loop.at loop at (fun () ->
             let machine = h.Snap.Host.machine in
             let ng =
               Engine.create_group ~machine
                 ~name:(Printf.sprintf "snap-v2-h%d" addr)
                 ~mode:cfg.mode
             in
             new_groups := ng :: !new_groups;
             Upgrade.upgrade ~loop ~costs:(Cpu.Sched.costs machine)
               ~old_group:h.Snap.Host.group ~new_group:ng
               ~extra_state_bytes:(fun _ -> cfg.state_bytes)
               ~config:cfg.upgrade_config
               ~on_transition:(fun ~engine ph ->
                 Fault.Log.record transition_log ~at:(Loop.now loop)
                   ~kind:"upgrade"
                   ~detail:
                     (Printf.sprintf "host %d %s %s" addr engine
                        (Upgrade.phase_to_string ph)))
               ~on_done:(fun rs -> reports := (addr, rs) :: !reports)
               ())))
    cfg.upgrade_at;
  (* Closed-loop RR traffic underneath it all. *)
  let hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "chaos_upgrade") ]
      "workload_op_latency_ns"
  in
  let completed = ref 0 in
  let last_done = ref Time.zero in
  ignore
    (Snap.Host.spawn_app hb ~name:"server" ~spin:true (fun ctx ->
         let c = PE.create_client ctx hb.Snap.Host.pony ~name:"server" () in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:cfg.op_bytes ())
         done));
  for i = 0 to cfg.clients - 1 do
    ignore
      (Snap.Host.spawn_app ha
         ~name:(Printf.sprintf "client%d" i)
         ~spin:true
         (fun ctx ->
           let c =
             PE.create_client ctx ha.Snap.Host.pony
               ~name:(Printf.sprintf "client%d" i)
               ()
           in
           Cpu.Thread.sleep ctx (Time.us 500);
           let conn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"server" in
           for _ = 1 to cfg.ops_per_client do
             let t0 = Cpu.Thread.now ctx in
             ignore (PE.send_message ctx conn ~bytes:cfg.op_bytes ());
             let _m = PE.await_message ctx c in
             let lat = Cpu.Thread.now ctx - t0 in
             Stats.Histogram.record hist lat;
             Stats.Histogram.record reg_hist lat;
             incr completed;
             last_done := Loop.now loop;
             (* Think time keeps the closed loop issuing across the
                whole upgrade window instead of draining early. *)
             if cfg.think > 0 then Cpu.Thread.sleep ctx cfg.think
           done))
  done;
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  (* Upgrades restart engines mid-flight; restarted incarnations must
     reconcile the old ones' op-pool charges or this raises. *)
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (Pony.Express.op_pool h.Snap.Host.pony))
    [ ha; hb ];
  let expected = cfg.clients * cfg.ops_per_client in
  let all_reports = List.concat_map snd !reports in
  let committed =
    List.length
      (List.filter (fun r -> r.Upgrade.outcome = Upgrade.Committed) all_reports)
  in
  let give_ups = List.length all_reports - committed in
  let rollbacks =
    List.fold_left (fun acc r -> acc + r.Upgrade.rollbacks) 0 all_reports
  in
  let max_blackout =
    List.fold_left (fun acc r -> Time.max acc r.Upgrade.blackout) 0 all_reports
  in
  let sum_counters lists =
    match lists with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (List.map2 (fun (n, a) (n', b) ->
               assert (n = n');
               (n, a + b)))
          first rest
  in
  let watchdog_counters =
    sum_counters (List.map Control.Watchdog.counters watchdogs)
  in
  let watchdog_restarts =
    try List.assoc "wd_restarts" watchdog_counters with Not_found -> 0
  in
  (* Invariant: after a partial or contested fleet upgrade, every engine
     is attached and belongs to exactly one group. *)
  let engines =
    List.concat_map
      (fun h ->
        List.init
          (PE.num_engines h.Snap.Host.pony)
          (PE.engine_handle h.Snap.Host.pony))
      [ ha; hb ]
  in
  let groups = [ ha.Snap.Host.group; hb.Snap.Host.group ] @ !new_groups in
  let groups_consistent =
    List.for_all
      (fun e ->
        let memberships =
          List.length
            (List.filter (fun g -> List.memq e (Engine.engines g)) groups)
        in
        memberships = 1 && Engine.is_attached e)
      engines
  in
  {
    ops_expected = expected;
    ops_completed = !completed;
    lost_ops = expected - !completed;
    latencies = hist;
    completion_time = !last_done;
    reports = List.rev !reports;
    committed;
    rollbacks;
    give_ups;
    max_blackout;
    transition_log;
    fault_log = Fault.Injector.log inj;
    fault_counters = Fault.Injector.counters inj;
    watchdog_counters;
    watchdog_restarts;
    flow_resyncs =
      PE.flow_resyncs ha.Snap.Host.pony + PE.flow_resyncs hb.Snap.Host.pony;
    groups_consistent;
  }

(* Byte-identical across same-seed runs: the determinism check folds the
   fault log, the upgrade transition log, and every report into one
   string.  Packet-id labels are stripped from log details: which of two
   same-timestamp packets gets the lower id is schedule-dependent
   labeling (the perturbation sweep deliberately reorders such ties),
   while the drop times and counts are not. *)
let strip_pkt_ids detail =
  String.split_on_char ' ' detail
  |> List.filter (fun tok -> not (String.length tok > 4 && String.sub tok 0 4 = "pkt#"))
  |> String.concat " "

let fingerprint (r : result) : string =
  let buf = Buffer.create 4096 in
  let add_log name l =
    Buffer.add_string buf name;
    Buffer.add_char buf '\n';
    List.iter
      (fun (e : Fault.Log.entry) ->
        Buffer.add_string buf
          (Printf.sprintf "%d %s %s\n" e.Fault.Log.at e.Fault.Log.kind
             (strip_pkt_ids e.Fault.Log.detail)))
      (Fault.Log.entries l)
  in
  add_log "faults" r.fault_log;
  add_log "transitions" r.transition_log;
  Buffer.add_string buf "reports\n";
  List.iter
    (fun (addr, rs) ->
      List.iter
        (fun (u : Upgrade.report) ->
          Buffer.add_string buf
            (Printf.sprintf "host %d %s bytes %d bs %d b %d bl %d s %d f %d a %d rb %d %s\n"
               addr u.Upgrade.engine_name u.Upgrade.state_bytes
               u.Upgrade.brownout_scheduled u.Upgrade.brownout
               u.Upgrade.blackout u.Upgrade.started_at u.Upgrade.finished_at
               u.Upgrade.attempts u.Upgrade.rollbacks
               (match u.Upgrade.outcome with
               | Upgrade.Committed -> "committed"
               | Upgrade.Gave_up reason -> "gave-up:" ^ reason)))
        rs)
    r.reports;
  Buffer.add_string buf
    (Printf.sprintf "ops %d/%d resyncs %d\n" r.ops_completed r.ops_expected
       r.flow_resyncs);
  Buffer.contents buf
