module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

(* Three hosts so the blast radius is observable: host 0 runs open-loop
   aggressors against a deliberately slow server on host 1, while a
   well-behaved closed-loop victim on host 2 talks to its own echo
   server on host 1 (on an exclusive engine).  The aggressors overrun
   every protection layer in turn — byte/op quotas at admission, the
   op pool, the slow server's incoming queue (Busy NACKs), and the
   pressure state machine (shedding at dequeue) — while the victim's
   goodput and tail latency measure how well the overload is
   contained. *)

type config = {
  aggressors : int;
  load_factor : float;  (** Offered load as a multiple of link capacity. *)
  aggressor_bytes : int;
  aggressor_quota_ops : int;
  aggressor_quota_bytes : int;
  aggressor_rate_ops_per_sec : float option;
  aggressor_deadline : Time.t;  (** Relative deadline on every aggressor op. *)
  victim_ops : int;
  victim_bytes : int;
  server_service_time : Time.t;  (** Slow server's per-message think time. *)
  seed : int;
  tie_salt : int;
  mode : Engine.mode;
  stop_at : Time.t;  (** Aggressors and victim stop offering load here. *)
  run_cap : Time.t;  (** Hard stop; [run_cap - stop_at] is the drain window. *)
  aggressor_pool_bytes : int;  (** Host 0's op pool (small, to pressure it). *)
  server_pool_bytes : int;
}

let default_config =
  {
    aggressors = 4;
    load_factor = 4.0;
    aggressor_bytes = 8192;
    aggressor_quota_ops = 64;
    aggressor_quota_bytes = 256 * 1024;
    aggressor_rate_ops_per_sec = None;
    aggressor_deadline = Time.ms 2;
    victim_ops = 300;
    victim_bytes = 4096;
    server_service_time = Time.us 20;
    seed = 13;
    tie_salt = 0;
    mode = Engine.Dedicating { cores = 2 };
    stop_at = Time.ms 30;
    run_cap = Time.ms 90;
    (* Smaller than the sum of aggressor byte quotas, so sustained
       overload saturates the pool and the pressure state machine. *)
    aggressor_pool_bytes = 1 lsl 20;
    server_pool_bytes = 32 lsl 20;
  }

type result = {
  offered : int;  (** Ops the aggressors submitted. *)
  agg_ok : int;
  agg_rejected : int;  (** Refused by admission or shed at dequeue. *)
  agg_timed_out : int;
  agg_busy : int;  (** NACKed by the slow server's full queue. *)
  quota_rejected : int;
  ops_shed : int;
  ops_expired : int;
  busy_nacks : int;
  rx_pool_drops : int;
  zero_window_probes : int;
  pressure_transitions : int;
  victim_ok : int;
  victim_failed : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  pool_leak_bytes : int;  (** Op-pool bytes still charged after quiesce. *)
  exhausted_escapes : int;  (** Pool [Exhausted] exceptions that escaped. *)
}

let run (cfg : config) : result =
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:3 in
  let dir = PE.Directory.create () in
  let mk addr ~pool =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ~op_pool_bytes:pool ()
  in
  let h_agg = mk 0 ~pool:cfg.aggressor_pool_bytes in
  let h_srv = mk 1 ~pool:cfg.server_pool_bytes in
  let h_vic = mk 2 ~pool:(1 lsl 30) in
  let offered = ref 0 in
  let agg_ok = ref 0 in
  let agg_rejected = ref 0 in
  let agg_timed_out = ref 0 in
  let agg_busy = ref 0 in
  let exhausted_escapes = ref 0 in
  let victim_ok = ref 0 in
  let victim_failed = ref 0 in
  let victim_last_done = ref Time.zero in
  let victim_hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "overload") ]
      "workload_victim_latency_ns"
  in
  let count_completion (c : PE.completion) =
    match c.PE.status with
    | Pony.Wire.Ok -> incr agg_ok
    | Pony.Wire.Rejected -> incr agg_rejected
    | Pony.Wire.Timed_out -> incr agg_timed_out
    | Pony.Wire.Busy -> incr agg_busy
    | _ -> ()
  in
  (* Slow server (host 1, shared engine 0): consumes each message with
     a fixed think time and never replies, so its incoming queue is the
     choke point. *)
  ignore
    (Snap.Host.spawn_app h_srv ~name:"slow-server" ~spin:true (fun ctx ->
         let c =
           PE.create_client ctx h_srv.Snap.Host.pony ~name:"slow-server" ()
         in
         while true do
           let _m = PE.await_message ctx c in
           (* Service time is compute, not sleep: a sleeping spin task is
              woken early by the next delivery, so a sleep-based server
              drains as fast as messages arrive and never backs up. *)
           Cpu.Thread.compute ctx cfg.server_service_time
         done));
  (* Victim's echo server (host 1, exclusive engine 1): prompt echoes. *)
  ignore
    (Snap.Host.spawn_app h_srv ~name:"victim-server" ~spin:true (fun ctx ->
         let c =
           PE.create_client ctx h_srv.Snap.Host.pony ~name:"victim-server"
             ~exclusive_engine:true ()
         in
         while true do
           let m = PE.await_message ctx c in
           ignore
             (PE.send_message ctx m.PE.msg_conn ~bytes:cfg.victim_bytes ())
         done));
  (* Open-loop aggressors: submit at a fixed interval implied by
     [load_factor] regardless of completions, with quotas, a rate
     limit, and a deadline on every op; completions are polled
     opportunistically and tallied by status. *)
  let link_gbps = Nic.link_gbps h_agg.Snap.Host.nic in
  let interval =
    max 1
      (int_of_float
         (float_of_int (cfg.aggressor_bytes * 8 * cfg.aggressors)
         /. (link_gbps *. cfg.load_factor)))
  in
  for i = 0 to cfg.aggressors - 1 do
    ignore
      (Snap.Host.spawn_app h_agg
         ~name:(Printf.sprintf "aggressor%d" i)
         ~spin:true
         (fun ctx ->
           let c =
             PE.create_client ctx h_agg.Snap.Host.pony
               ~name:(Printf.sprintf "aggressor%d" i)
               ~max_ops:cfg.aggressor_quota_ops
               ~max_bytes:cfg.aggressor_quota_bytes
               ?rate_ops_per_sec:cfg.aggressor_rate_ops_per_sec ()
           in
           Cpu.Thread.sleep ctx (Time.us 500);
           (* By name: both server apps register at the same instant, so
              which one draws client id 0 is a schedule tie the sweep
              deliberately perturbs. *)
           let conn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"slow-server" in
           (try
              while Cpu.Thread.now ctx < cfg.stop_at do
                let deadline = Time.add (Cpu.Thread.now ctx) cfg.aggressor_deadline in
                ignore
                  (PE.send_message ctx conn ~deadline ~bytes:cfg.aggressor_bytes ());
                incr offered;
                let rec drain () =
                  match PE.poll_completion ctx c with
                  | Some comp ->
                      count_completion comp;
                      drain ()
                  | None -> ()
                in
                drain ();
                Cpu.Thread.sleep ctx interval
              done
            with Memory.Pool.Exhausted _ -> incr exhausted_escapes);
           (* Keep draining completions through the quiesce window so
              every op's outcome is tallied. *)
           while Cpu.Thread.now ctx < cfg.run_cap - Time.ms 1 do
             (match PE.poll_completion ctx c with
             | Some comp -> count_completion comp
             | None -> ());
             Cpu.Thread.sleep ctx (Time.us 10)
           done))
  done;
  (* Well-behaved victim (host 2): closed-loop request/echo against the
     isolated server, through the bounded-retry helper. *)
  ignore
    (Snap.Host.spawn_app h_vic ~name:"victim" ~spin:true (fun ctx ->
         let c = PE.create_client ctx h_vic.Snap.Host.pony ~name:"victim" () in
         Cpu.Thread.sleep ctx (Time.us 500);
         let conn = PE.connect_by_name ctx c ~dst_host:1 ~dst_name:"victim-server" in
         let n = ref 0 in
         while !n < cfg.victim_ops && Cpu.Thread.now ctx < cfg.stop_at do
           incr n;
           let t0 = Cpu.Thread.now ctx in
           match PE.send_with_retry ctx conn ~bytes:cfg.victim_bytes () with
           | Error _ -> incr victim_failed
           | Ok _ ->
               let _echo = PE.await_message ctx c in
               let lat = Time.sub (Cpu.Thread.now ctx) t0 in
               Stats.Histogram.record victim_hist lat;
               Stats.Histogram.record reg_hist lat;
               incr victim_ok;
               victim_last_done := Loop.now loop
         done));
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  let sum f = f h_agg.Snap.Host.pony + f h_srv.Snap.Host.pony + f h_vic.Snap.Host.pony in
  let pool_leak_bytes =
    sum (fun p -> Memory.Pool.in_use (PE.op_pool p))
  in
  (* Every op completed or was shed with its charge released; a live
     byte now is a leak and [assert_quiesced] names the owner. *)
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (PE.op_pool h.Snap.Host.pony))
    [ h_agg; h_srv; h_vic ];
  let victim_goodput_gbps =
    if !victim_last_done = 0 then 0.0
    else
      (* Request and echo both carry [victim_bytes] of goodput. *)
      float_of_int (!victim_ok * cfg.victim_bytes * 2 * 8)
      /. float_of_int !victim_last_done
  in
  {
    offered = !offered;
    agg_ok = !agg_ok;
    agg_rejected = !agg_rejected;
    agg_timed_out = !agg_timed_out;
    agg_busy = !agg_busy;
    quota_rejected = sum PE.quota_rejected;
    ops_shed = sum PE.ops_shed;
    ops_expired = sum PE.ops_expired;
    busy_nacks = sum PE.busy_nacks;
    rx_pool_drops = sum PE.rx_pool_drops;
    zero_window_probes = sum PE.zero_window_probes;
    pressure_transitions = sum PE.pressure_transitions;
    victim_ok = !victim_ok;
    victim_failed = !victim_failed;
    victim_goodput_gbps;
    victim_latencies = victim_hist;
    pool_leak_bytes;
    exhausted_escapes = !exhausted_escapes;
  }

(* Byte-identical across same-seed runs: every counter the run produced,
   folded into one string.  Latency percentiles are deliberately
   excluded: perturbing same-timestamp event ordering (the sweep's
   [tie_salt]) legitimately moves completion times by a few ns while
   every semantic counter stays fixed, and the fingerprint must be a
   function of the seed alone. *)
let fingerprint (r : result) : string =
  let buf = Buffer.create 512 in
  let add name v = Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v) in
  add "offered" r.offered;
  add "agg_ok" r.agg_ok;
  add "agg_rejected" r.agg_rejected;
  add "agg_timed_out" r.agg_timed_out;
  add "agg_busy" r.agg_busy;
  add "quota_rejected" r.quota_rejected;
  add "ops_shed" r.ops_shed;
  add "ops_expired" r.ops_expired;
  add "busy_nacks" r.busy_nacks;
  add "rx_pool_drops" r.rx_pool_drops;
  add "zero_window_probes" r.zero_window_probes;
  add "pressure_transitions" r.pressure_transitions;
  add "victim_ok" r.victim_ok;
  add "victim_failed" r.victim_failed;
  add "pool_leak" r.pool_leak_bytes;
  add "exhausted_escapes" r.exhausted_escapes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
