(** Hostile-guest acceptance workload: byzantine tenants against the
    hardened trust boundary.

    A victim cohort runs closed-loop echoes through the guest backend
    while every k-th tenant turns byzantine for a
    {!Fault.Plan.Guest_byzantine} window, abusing its rings through the
    unchecked raw surface: garbage descriptor geometry, avail-index
    rollback and runahead, descriptor-id aliasing, reap withholding,
    and kick storms (behavior mixes cycle per attacker).  The run is
    the end-to-end proof of the trust boundary:

    - {e no crash}: every abuse becomes a counted take-side verdict —
      malformed descriptors complete [Failed] on the attacker's own
      ring, index corruption is dropped or stopped — and no exception
      ever reaches a mux engine (the run completing at all asserts
      this);
    - {e containment}: every attacker escalates Suspect and is
      quarantined within [detect_bound] of the attack opening; its
      host-side ring indices freeze and its pool bytes return through
      generation-tagged bulk reclaim (the [guest.quarantine] invariant
      checks both);
    - {e no false positives}: victims score zero violations and keep
      [>= 80%] of the goodput of the clean same-seed baseline
      ([byzantine = false]);
    - {e determinism}: same-seed runs produce byte-identical
      fingerprints under schedule perturbation. *)

type config = {
  tenants : int;
  attacker_every : int;  (** Every k-th tenant is a byzantine attacker. *)
  victim_ops : int;  (** Closed-loop echoes per victim. *)
  victim_bytes : int;
  victim_gap : Sim.Time.t;
      (** Pause between victim ops, stretching the cohort's activity
          across the attack window. *)
  ring_slots : int;
  buf_bytes : int;
  mux_engines : int;
  mux_mode : Engine.mode;
  mode : Engine.mode;  (** Scheduling mode of the Pony groups. *)
  suspect_after : int;
  quarantine_after : int;
  byzantine : bool;
      (** [false] runs the clean same-seed baseline: identical cohorts
          and schedule, empty fault plan. *)
  attack_start : Sim.Time.t;
  attack_duration : Sim.Time.t;
  detect_bound : Sim.Time.t;
      (** Max allowed quarantine latency from attack start. *)
  kick_hz : float;  (** Rate of the [Kick_storm] behavior. *)
  seed : int;
  tie_salt : int;
  stop_at : Sim.Time.t;
  run_cap : Sim.Time.t;
  op_pool_bytes : int;
}

val default_config : config
(** 40 tenants, alternating victim/attacker; attack window
    [2 ms, 5 ms); quarantine after 12 violations (suspect after 3);
    detection bound 2 ms. *)

type result = {
  n_tenants : int;
  n_victims : int;
  n_attackers : int;
  victim_ok : int;
  victim_failed : int;
  victim_retries : int;
  victim_goodput_gbps : float;
  victim_latencies : Stats.Histogram.t;
  victim_violations : int;
      (** Violations scored against victims — must be zero: the
          escalation ladder must not produce false positives. *)
  attackers_quarantined : int;
  suspects : int;  (** Suspect escalations at the mux. *)
  max_detection : Sim.Time.t;
      (** Worst quarantine latency from attack start. *)
  detection_ok : bool;
      (** All attackers quarantined within [detect_bound] (vacuously
          true on the clean baseline). *)
  violations : (string * int) list;
      (** Attacker violations by reason (schedule-sensitive counts). *)
  post_bad_range : int;
      (** Checked posts refused guest-side: each attacker fires one
          buggy-but-honest out-of-range {!Guest.Ring.post} probe,
          proving the non-fatal rejection path end to end. *)
  unmatched_completions : int;
      (** Straggler completions for descriptors the quarantine had
          already abandoned. *)
  atk_completed : int;  (** Attacker ops that completed normally. *)
  atk_failed : int;  (** Malformed/aliased descs, completed [Failed]. *)
  atk_cancelled : int;
  rx_drops : int;
  detached : int;  (** Tenants fully detached at quiesce. *)
  guest_attacks : int;  (** Byzantine windows the injector launched. *)
  pool_leak_bytes : int;
}

val run : config -> result
(** Raises [Failure] at quiesce if any op-pool byte leaked. *)

val fingerprint : result -> string
(** Digest of decision-level counters only (violation totals and retry
    counts are schedule-sensitive and excluded); byte-identical across
    same-seed runs. *)
