module Time = Sim.Time
module Loop = Sim.Loop

type config = {
  clients : int;
  ops_per_client : int;
  op_bytes : int;
  seed : int;
  tie_salt : int;
  mode : Engine.mode;
  plan : Fault.Plan.t;
  run_cap : Time.t;
  poll_period : Time.t option;
}

let default_plan ?(seed = 11) () =
  Fault.Plan.make ~seed
    [
      (* Bursty loss toward the server across most of the steady state. *)
      Fault.Plan.Burst_loss
        { port = 1; start = Time.ms 1; duration = Time.ms 30; loss_pct = 2.0 };
      (* Corrupted deliveries toward the clients early on. *)
      Fault.Plan.Corrupt
        { port = 0; start = Time.ms 2; duration = Time.ms 10; corrupt_pct = 5.0 };
      (* A reordering window toward the server. *)
      Fault.Plan.Reorder
        {
          port = 1;
          start = Time.ms 3;
          duration = Time.ms 6;
          reorder_pct = 10.0;
          max_delay = Time.us 50;
        };
      (* A 10 ms link flap: nothing gets through in either direction. *)
      Fault.Plan.Link_blackout
        { a = 0; b = 1; start = Time.ms 6; duration = Time.ms 10 };
      (* The server's Pony engine crashes and the control plane reloads
         it. *)
      Fault.Plan.Engine_crash
        { host = 1; engine = 0; start = Time.ms 18; restart_after = Time.ms 3 };
      (* The clients' NIC stops posting receives briefly. *)
      Fault.Plan.Rx_stall
        { host = 0; queue = 0; start = Time.ms 22; duration = Time.ms 2 };
      (* The server machine runs 3x slow for a window. *)
      Fault.Plan.Straggler
        { host = 1; start = Time.ms 24; duration = Time.ms 5; slowdown = 3.0 };
    ]

let default_config =
  {
    clients = 2;
    ops_per_client = 1500;
    op_bytes = 1024;
    seed = 7;
    tie_salt = 0;
    mode = Engine.Dedicating { cores = 1 };
    plan = default_plan ();
    run_cap = Time.ms 500;
    poll_period = Some (Time.us 100);
  }

type result = {
  ops_expected : int;
  ops_completed : int;
  lost_ops : int;
  latencies : Stats.Histogram.t;
  goodput_gbps : float;
  completion_time : Time.t;
  fault_log : Fault.Log.t;
  fault_counters : (string * int) list;
  retransmits : int;
  corrupt_dropped : int;
  rx_stalled : int;
  port_report : (int * int * int) list;
}

let run (cfg : config) : result =
  (* Fresh invariant scope before any layer registers predicates; both
     calls are no-ops unless checking was enabled (bench --check). *)
  Check.Invariant.begin_run ();
  let loop = Loop.create ~seed:cfg.seed ~tie_salt:cfg.tie_salt () in
  Check.Invariant.install ~loop ();
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = Pony.Express.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode:cfg.mode
      ?poll_period:cfg.poll_period ()
  in
  let ha = mk 0 and hb = mk 1 in
  let inj =
    Fault.Injector.install ~loop ~plan:cfg.plan ~fabric:fab
      ~hosts:[ Snap.Host.fault_host ha; Snap.Host.fault_host hb ]
  in
  let hist = Stats.Histogram.create () in
  let reg_hist =
    Stats.Registry.histogram
      ~labels:[ ("workload", "chaos") ]
      "workload_op_latency_ns"
  in
  let completed = ref 0 in
  let last_done = ref Time.zero in
  ignore
    (Snap.Host.spawn_app hb ~name:"server" ~spin:true (fun ctx ->
         let c =
           Pony.Express.create_client ctx hb.Snap.Host.pony ~name:"server" ()
         in
         while true do
           let m = Pony.Express.await_message ctx c in
           ignore
             (Pony.Express.send_message ctx m.Pony.Express.msg_conn
                ~bytes:cfg.op_bytes ())
         done));
  for i = 0 to cfg.clients - 1 do
    ignore
      (Snap.Host.spawn_app ha
         ~name:(Printf.sprintf "client%d" i)
         ~spin:true
         (fun ctx ->
           let c =
             Pony.Express.create_client ctx ha.Snap.Host.pony
               ~name:(Printf.sprintf "client%d" i)
               ()
           in
           Cpu.Thread.sleep ctx (Time.us 500);
           let conn =
             Pony.Express.connect_by_name ctx c ~dst_host:1 ~dst_name:"server"
           in
           for _ = 1 to cfg.ops_per_client do
             let t0 = Cpu.Thread.now ctx in
             ignore (Pony.Express.send_message ctx conn ~bytes:cfg.op_bytes ());
             let _m = Pony.Express.await_message ctx c in
             let lat = Cpu.Thread.now ctx - t0 in
             Stats.Histogram.record hist lat;
             Stats.Histogram.record reg_hist lat;
             incr completed;
             last_done := Loop.now loop
           done))
  done;
  Loop.run ~until:cfg.run_cap loop;
  Check.Invariant.quiesce ();
  (* Every op completed (or was recovered after the engine crash): any
     op-pool byte still charged — including by the crashed engine's old
     incarnation — is a leak. *)
  List.iter
    (fun h -> Memory.Pool.assert_quiesced (Pony.Express.op_pool h.Snap.Host.pony))
    [ ha; hb ];
  let expected = cfg.clients * cfg.ops_per_client in
  let sum_hosts f = f ha.Snap.Host.pony + f hb.Snap.Host.pony in
  let retransmits =
    sum_hosts (fun p ->
        List.fold_left (fun acc (_, _, r) -> acc + r) 0 (Pony.Express.flow_stats p))
  in
  let goodput_gbps =
    if !last_done = 0 then 0.0
    else
      (* Request + echoed reply both carry [op_bytes] of goodput. *)
      float_of_int (!completed * cfg.op_bytes * 2 * 8)
      /. float_of_int !last_done
  in
  {
    ops_expected = expected;
    ops_completed = !completed;
    lost_ops = expected - !completed;
    latencies = hist;
    goodput_gbps;
    completion_time = !last_done;
    fault_log = Fault.Injector.log inj;
    fault_counters = Fault.Injector.counters inj;
    retransmits;
    corrupt_dropped = sum_hosts Pony.Express.corrupt_dropped;
    rx_stalled = Nic.rx_stalled ha.Snap.Host.nic + Nic.rx_stalled hb.Snap.Host.nic;
    port_report =
      List.map
        (fun addr ->
          (addr, Fabric.port_drops fab ~addr, Fabric.port_max_queue_bytes fab ~addr))
        [ 0; 1 ];
  }

(* Byte-identical across same-seed runs: correctness counters plus the
   injected-fault log, folded into one string for the determinism
   sweep.  Packet-id labels are stripped from log details — which of
   two same-timestamp packets draws the lower id is schedule-dependent
   labeling the perturbation sweep deliberately reorders, while drop
   times and counts are not. *)
let strip_pkt_ids detail =
  String.split_on_char ' ' detail
  |> List.filter (fun tok -> not (String.length tok > 4 && String.sub tok 0 4 = "pkt#"))
  |> String.concat " "

let fingerprint (r : result) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "ops %d/%d lost %d retx %d corrupt %d rx_stalled %d\n"
       r.ops_completed r.ops_expected r.lost_ops r.retransmits
       r.corrupt_dropped r.rx_stalled);
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v))
    r.fault_counters;
  List.iter
    (fun (e : Fault.Log.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %s\n" e.Fault.Log.at e.Fault.Log.kind
           (strip_pkt_ids e.Fault.Log.detail)))
    (Fault.Log.entries r.fault_log);
  List.iter
    (fun (addr, drops, maxq) ->
      Buffer.add_string buf (Printf.sprintf "port %d %d %d\n" addr drops maxq))
    r.port_report;
  Buffer.contents buf

let goodput_degradation_pct ~baseline ~faulted =
  if baseline.goodput_gbps <= 0.0 then 0.0
  else
    (baseline.goodput_gbps -. faulted.goodput_gbps)
    /. baseline.goodput_gbps *. 100.0
