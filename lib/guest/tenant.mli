(** A guest tenant: identity, shared-memory rings, and its own
    accounting handle.

    Tenants are the isolation unit of multi-tenant guest networking:
    each carries a {!Memory.Region} holding its buffers, a tx/rx
    {!Ring} pair over that region, and an {!Overload.Admission} handle
    whose owner string doubles as the tenant's pool-accounting name —
    every op byte the backend admits on the tenant's behalf is charged
    to the host op pool under that owner, so cross-tenant leakage is
    checkable and detach can reclaim in bulk with
    {!Memory.Pool.release_owner} (generation-tagged: frees of stale
    charges become no-ops). *)

type state = Attached | Detaching | Detached

val state_to_string : state -> string

type health = Healthy | Suspect | Quarantined
(** Misbehavior escalation ladder, modeled on the watchdog's engine
    quarantine: trust-boundary violations accumulate per tenant; past
    one threshold the mux throttles the tenant (Suspect), past a second
    it force-detaches and stops serving it (Quarantined). *)

val health_to_string : health -> string

(** One scored trust-boundary violation.  The first four mirror
    {!Ring.fault_reason}; the last two are mux-level observations. *)
type violation =
  | Bad_range
  | Empty_slot
  | Rollback
  | Overcommit
  | Dup_id  (** A descriptor id aliasing one still in flight. *)
  | Spurious_kick  (** A kick with an empty (or rolled-back) backlog. *)

val violation_to_string : violation -> string
val all_violations : violation list
val of_ring_fault : Ring.fault_reason -> violation

type t = {
  tname : string;
  tid : int;
  owner : string;  (** Pool/admission accounting name, ["tenant:<name>@<host>"]. *)
  region : Memory.Region.t;
  tx : Ring.t;
  rx : Ring.t;
  adm : Overload.Admission.t;
  pool : Memory.Pool.t;
  buf_bytes : int;
  mutable state : state;
  mutable health : health;
  mutable quarantined_at : Sim.Time.t option;
  viols : int array;
  (* Registry counters are cumulative across runs sharing a tenant
     name; the [_base] snapshots keep per-instance accessors exact. *)
  c_tx_done : Stats.Counter.t;
  tx_done_base : int;
  c_tx_rejected : Stats.Counter.t;
  tx_rejected_base : int;
  c_tx_failed : Stats.Counter.t;
  tx_failed_base : int;
  c_tx_cancelled : Stats.Counter.t;
  tx_cancelled_base : int;
  c_rx_delivered : Stats.Counter.t;
  rx_delivered_base : int;
  c_rx_drops : Stats.Counter.t;
  rx_drops_base : int;
  c_reclaimed : Stats.Counter.t;
  reclaimed_base : int;
}

val create :
  pool:Memory.Pool.t ->
  host_addr:int ->
  name:string ->
  id:int ->
  ?ring_slots:int ->
  ?buf_bytes:int ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  t
(** Build a tenant with [ring_slots] (default 64) descriptors per ring
    over a fresh region of [2 * ring_slots * buf_bytes] (default 4096)
    bytes: the first half holds tx buffers, the second rx buffers.
    Quota parameters configure the tenant's admission handle (see
    {!Overload.Admission.create}). *)

val tx_buf_off : t -> int -> int
(** Region offset of the i-th tx buffer (i taken modulo the ring size). *)

val rx_buf_off : t -> int -> int

val state : t -> state
val outstanding_ops : t -> int
val outstanding_bytes : t -> int
val pool_usage : t -> int
(** Bytes currently charged to this tenant's owner in the host pool. *)

(** {1 Per-instance counters} (maintained by the mux) *)

val tx_completed : t -> int
val tx_rejected : t -> int
val tx_failed : t -> int
(** Timed out, Busy-failed, or errored. *)

val tx_cancelled : t -> int
val rx_delivered : t -> int
val rx_drops : t -> int
val reclaimed_bytes : t -> int

val note_tx : t -> Ring.status -> unit
val note_rx : t -> int -> unit
val note_rx_drop : t -> unit
val note_reclaimed : t -> int -> unit

(** {1 Misbehavior scoring} (maintained by the mux) *)

val health : t -> health
val quarantined_at : t -> Sim.Time.t option
val violations : t -> int
(** Total violations scored against this tenant instance. *)

val violations_by : t -> violation -> int

val note_violation : t -> violation -> int
(** Score one violation (also bumping the [guest_violations] registry
    counter, labeled by tenant and reason) and return the new total —
    the mux compares it against its escalation thresholds. *)
