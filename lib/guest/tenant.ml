type state = Attached | Detaching | Detached

let state_to_string = function
  | Attached -> "attached"
  | Detaching -> "detaching"
  | Detached -> "detached"

type health = Healthy | Suspect | Quarantined

let health_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"

type violation =
  | Bad_range
  | Empty_slot
  | Rollback
  | Overcommit
  | Dup_id
  | Spurious_kick

let violation_to_string = function
  | Bad_range -> "bad-range"
  | Empty_slot -> "empty-slot"
  | Rollback -> "rollback"
  | Overcommit -> "overcommit"
  | Dup_id -> "dup-id"
  | Spurious_kick -> "spurious-kick"

let violation_index = function
  | Bad_range -> 0
  | Empty_slot -> 1
  | Rollback -> 2
  | Overcommit -> 3
  | Dup_id -> 4
  | Spurious_kick -> 5

let all_violations =
  [ Bad_range; Empty_slot; Rollback; Overcommit; Dup_id; Spurious_kick ]

let of_ring_fault : Ring.fault_reason -> violation = function
  | Ring.Bad_range -> Bad_range
  | Ring.Empty_slot -> Empty_slot
  | Ring.Rollback -> Rollback
  | Ring.Overcommit -> Overcommit

type t = {
  tname : string;
  tid : int;
  owner : string;
  region : Memory.Region.t;
  tx : Ring.t;
  rx : Ring.t;
  adm : Overload.Admission.t;
  pool : Memory.Pool.t;
  buf_bytes : int;
  mutable state : state;
  mutable health : health;
  mutable quarantined_at : Sim.Time.t option;
  (* Misbehavior score: per-reason counts feed the mux's
     Suspect/Quarantined escalation.  Per-instance (fresh at create),
     unlike the registry counters below. *)
  viols : int array;
  c_tx_done : Stats.Counter.t;
  tx_done_base : int;
  c_tx_rejected : Stats.Counter.t;
  tx_rejected_base : int;
  c_tx_failed : Stats.Counter.t;
  tx_failed_base : int;
  c_tx_cancelled : Stats.Counter.t;
  tx_cancelled_base : int;
  c_rx_delivered : Stats.Counter.t;
  rx_delivered_base : int;
  c_rx_drops : Stats.Counter.t;
  rx_drops_base : int;
  c_reclaimed : Stats.Counter.t;
  reclaimed_base : int;
}

(* Guest regions live in their own id space, above the range functional
   tests use for one-sided-op regions. *)
let region_id_base = 1_000_000

let create ~pool ~host_addr ~name ~id ?(ring_slots = 64) ?(buf_bytes = 4096)
    ?max_ops ?max_bytes ?rate_ops_per_sec ?burst_ops () =
  if ring_slots <= 0 then invalid_arg "Guest.Tenant.create: ring_slots";
  if buf_bytes <= 0 then invalid_arg "Guest.Tenant.create: buf_bytes";
  let owner = Printf.sprintf "tenant:%s@%d" name host_addr in
  let region =
    Memory.Region.create
      ~id:(region_id_base + id)
      ~size:(2 * ring_slots * buf_bytes)
      ~owner ()
  in
  let tx = Ring.create ~name:(owner ^ ".tx") ~region ~slots:ring_slots () in
  let rx = Ring.create ~name:(owner ^ ".rx") ~region ~slots:ring_slots () in
  let adm =
    Overload.Admission.create ~pool ~owner ?max_ops ?max_bytes
      ?rate_ops_per_sec ?burst_ops ()
  in
  let labels = [ ("tenant", owner) ] in
  let c name = Stats.Registry.counter ~labels name in
  let c_tx_done = c "tenant_tx_completed" in
  let c_tx_rejected = c "tenant_tx_rejected" in
  let c_tx_failed = c "tenant_tx_failed" in
  let c_tx_cancelled = c "tenant_tx_cancelled" in
  let c_rx_delivered = c "tenant_rx_delivered" in
  let c_rx_drops = c "tenant_rx_drops" in
  let c_reclaimed = c "tenant_reclaimed_bytes" in
  let t =
    {
      tname = name;
      tid = id;
      owner;
      region;
      tx;
      rx;
      adm;
      pool;
      buf_bytes;
      state = Attached;
      health = Healthy;
      quarantined_at = None;
      viols = Array.make 6 0;
      c_tx_done;
      tx_done_base = Stats.Counter.value c_tx_done;
      c_tx_rejected;
      tx_rejected_base = Stats.Counter.value c_tx_rejected;
      c_tx_failed;
      tx_failed_base = Stats.Counter.value c_tx_failed;
      c_tx_cancelled;
      tx_cancelled_base = Stats.Counter.value c_tx_cancelled;
      c_rx_delivered;
      rx_delivered_base = Stats.Counter.value c_rx_delivered;
      c_rx_drops;
      rx_drops_base = Stats.Counter.value c_rx_drops;
      c_reclaimed;
      reclaimed_base = Stats.Counter.value c_reclaimed;
    }
  in
  ignore
    (Stats.Registry.gauge_fn ~labels "tenant_ring_backlog" (fun () ->
         float_of_int (Ring.backlog t.tx)));
  t

let tx_buf_off t i = i mod Ring.capacity t.tx * t.buf_bytes
let rx_buf_off t i = (Ring.capacity t.rx + (i mod Ring.capacity t.rx)) * t.buf_bytes
let state t = t.state
let outstanding_ops t = Overload.Admission.outstanding_ops t.adm
let outstanding_bytes t = Overload.Admission.outstanding_bytes t.adm
let pool_usage t = Memory.Pool.owner_usage t.pool t.owner
let tx_completed t = Stats.Counter.value t.c_tx_done - t.tx_done_base
let tx_rejected t = Stats.Counter.value t.c_tx_rejected - t.tx_rejected_base
let tx_failed t = Stats.Counter.value t.c_tx_failed - t.tx_failed_base
let tx_cancelled t = Stats.Counter.value t.c_tx_cancelled - t.tx_cancelled_base
let rx_delivered t = Stats.Counter.value t.c_rx_delivered - t.rx_delivered_base
let rx_drops t = Stats.Counter.value t.c_rx_drops - t.rx_drops_base
let reclaimed_bytes t = Stats.Counter.value t.c_reclaimed - t.reclaimed_base

let note_tx t (status : Ring.status) =
  match status with
  | Ring.Complete -> Stats.Counter.incr t.c_tx_done
  | Ring.Rejected -> Stats.Counter.incr t.c_tx_rejected
  | Ring.Cancelled -> Stats.Counter.incr t.c_tx_cancelled
  | Ring.Timed_out | Ring.Busy | Ring.Failed -> Stats.Counter.incr t.c_tx_failed

let note_rx t bytes =
  ignore bytes;
  Stats.Counter.incr t.c_rx_delivered

let note_rx_drop t = Stats.Counter.incr t.c_rx_drops
let note_reclaimed t bytes = Stats.Counter.incr ~by:bytes t.c_reclaimed

let health t = t.health
let quarantined_at t = t.quarantined_at
let violations t = Array.fold_left ( + ) 0 t.viols
let violations_by t v = t.viols.(violation_index v)

let note_violation t v =
  t.viols.(violation_index v) <- t.viols.(violation_index v) + 1;
  Stats.Counter.incr
    (Stats.Registry.counter
       ~labels:[ ("tenant", t.owner); ("reason", violation_to_string v) ]
       "guest_violations");
  violations t
