(** Virtio-net-style descriptor ring over a shared {!Memory.Region}.

    A guest and the vhost backend ({!Mux}) communicate through a pair
    of these rings (tx and rx).  Following virtio, the ring keeps three
    free-running monotonic indices — [avail] (descriptors the guest has
    posted), [taken] (descriptors the backend has consumed) and [used]
    (completions the backend has published) — plus a fourth, [reaped],
    for the used entries the guest has collected.  Indices only grow;
    slot positions are the index modulo the ring size, and the single
    fullness condition [avail - reaped <= capacity] bounds both
    descriptor-slot and used-slot reuse.

    {b Trust boundary.}  Everything the guest writes is
    attacker-controlled: [avail], [reaped], and every descriptor field
    may hold garbage.  The cooperative {!post}/{!pop_used} API models a
    well-behaved driver; the [_raw] surface models a byzantine one.
    The backend therefore never trusts the guest side — it consumes
    through {!take_checked}, which validates at the host boundary and
    returns a typed verdict instead of raising.  Host-owned indices
    ([taken], [used]) are the only state the backend's safety rests on.

    Completions may be published out of order (they carry the
    descriptor id, like virtio's used ring), but never outnumber the
    descriptors taken.  Notifications follow virtio's eventfd shape:
    posting signals the {e kick} notifier (guest -> backend), publishing
    a used entry signals the {e irq} notifier (backend -> guest); both
    coalesce while unarmed. *)

type status =
  | Complete
  | Rejected  (** Refused by the tenant's admission quota. *)
  | Timed_out
  | Busy
  | Cancelled  (** Unprocessed at detach. *)
  | Failed

val status_to_string : status -> string

type desc = {
  d_id : int;  (** Guest-chosen label, echoed in the used entry. *)
  d_off : int;  (** Buffer offset inside the shared region. *)
  d_len : int;
  posted_at : Sim.Time.t;
}

type used = { u_id : int; u_len : int; u_status : status }

type fault_reason =
  | Bad_range  (** Descriptor buffer outside the shared region. *)
  | Empty_slot  (** avail covers a slot no descriptor was written to. *)
  | Rollback  (** The guest's avail index regressed. *)
  | Overcommit  (** Posted past capacity without reaping. *)

val fault_reason_to_string : fault_reason -> string

type take_verdict =
  | Take_empty  (** Nothing posted; not a fault. *)
  | Take_ok of desc
  | Take_bad of fault_reason * desc
      (** Consumed; the host should publish a counted [Failed]
          completion so a buggy guest still sees its op resolve. *)
  | Take_drop of fault_reason
      (** Consumed, but there is no descriptor to complete. *)
  | Take_stop of fault_reason
      (** The ring itself is corrupt; no progress was made and the
          drain pass should stop. *)

type t

val create :
  ?name:string -> region:Memory.Region.t -> slots:int -> unit -> t
(** A ring of [slots] descriptors whose buffers must lie inside
    [region].  Raises [Invalid_argument] if [slots <= 0]. *)

val name : t -> string
val capacity : t -> int
val region : t -> Memory.Region.t

(** {1 Guest side} *)

val post :
  t -> now:Sim.Time.t -> id:int -> off:int -> len:int -> bool
(** Publish a descriptor and signal the kick notifier; [false] (and a
    counted failure) when the ring is full or the buffer falls outside
    the region (counted separately in {!post_bad_range} and the
    [ring_post_bad_range] registry counter) — a guest-driver bug is
    non-fatal to the guest's own thread. *)

val pop_used : t -> used option
(** Reap the oldest unreaped used entry. *)

(** {1 Byzantine guest surface}

    What a hostile driver does to shared memory: no bounds check, no
    fullness check, arbitrary index stores, kicks with nothing behind
    them.  None of these raise and none are validated — the host's
    {!take_checked} is where every consequence is caught. *)

val post_raw : t -> now:Sim.Time.t -> id:int -> off:int -> len:int -> unit
(** Overwrite the slot at [avail mod capacity] with an arbitrary
    descriptor, advance [avail], kick.  Ignores fullness and bounds. *)

val set_avail_raw : t -> int -> unit
(** Store an arbitrary value (rollback or runahead) into [avail] and
    kick. *)

val kick_raw : t -> unit
(** Signal the kick notifier without posting anything. *)

(** {1 Backend side} *)

val take : t -> desc option
(** Consume the oldest posted-but-untaken descriptor, trusting the
    guest's indices.  Legacy cooperative path — the mux uses
    {!take_checked}. *)

val take_checked : t -> take_verdict
(** Consume one descriptor, validating at the trust boundary: detects
    avail rollback (edge-triggered against the largest avail ever
    observed), overcommit ([taken - reaped >= capacity], which would
    overwrite unreaped used entries), never-written slots, and
    out-of-region buffers.  Each fault is counted per reason (see
    {!take_faults}).  Never raises. *)

val complete : t -> id:int -> len:int -> status:status -> unit
(** Publish a used entry (any order w.r.t. [take]s) and signal the irq
    notifier.  Raises [Invalid_argument] if it would outnumber the
    taken descriptors — host-side API misuse, not guest input. *)

(** {1 Occupancy and indices} *)

val occupancy : t -> int
(** Live descriptors: posted and not yet reaped ([avail - reaped]).
    May be negative or beyond capacity under a hostile guest. *)

val backlog : t -> int
(** Posted and not yet taken ([avail - taken]) — the backend's queue
    depth, which engine scheduling reads as load. *)

val in_flight : t -> int
(** Taken and not yet completed ([taken - used]). *)

val completions_ready : t -> int
(** Published and not yet reaped ([used - reaped]). *)

val is_full : t -> bool
val avail_idx : t -> int
val taken_idx : t -> int
val used_idx : t -> int
val reaped_idx : t -> int

val post_failures : t -> int
(** Checked posts refused because the ring was full. *)

val post_bad_range : t -> int
(** Checked posts refused because the buffer was out of range. *)

val take_faults : t -> fault_reason -> int
(** Take-side faults recorded by {!take_checked}, by reason. *)

val oldest_pending_age : t -> now:Sim.Time.t -> Sim.Time.t
(** Age of the oldest descriptor the backend has not taken (0 when the
    backlog is empty); the mux engine's queueing-delay signal. *)

(** {1 Notifications} *)

val arm_kick : t -> (unit -> unit) -> unit
val arm_irq : t -> (unit -> unit) -> unit
val kicks : t -> int
val irqs : t -> int

(** {1 Checking} *)

val check : t -> string option
(** Full-ring index legality for a {e well-behaved} guest: ordering
    ([reaped <= used <= taken <= avail]) and occupancy within capacity.
    [None] when healthy.  Under a byzantine guest this legitimately
    reports trouble — use {!check_host} for what the host guarantees. *)

val check_host : t -> string option
(** Host-safety only: [0 <= used <= taken], and [taken] never beyond
    any avail value the guest ever published.  These hold regardless of
    guest behavior; a [Some] here is a backend bug. *)

val monitor : t -> unit -> string option
(** A stateful predicate for {!Check.Invariant}: runs {!check_host} and
    additionally requires the host-owned indices to have grown
    monotonically since the previous evaluation.  Deliberately silent
    about guest-owned indices, which a hostile driver may move
    arbitrarily. *)
