(** Virtio-net-style descriptor ring over a shared {!Memory.Region}.

    A guest and the vhost backend ({!Mux}) communicate through a pair
    of these rings (tx and rx).  Following virtio, the ring keeps three
    free-running monotonic indices — [avail] (descriptors the guest has
    posted), [taken] (descriptors the backend has consumed) and [used]
    (completions the backend has published) — plus a fourth, [reaped],
    for the used entries the guest has collected.  Indices only grow;
    slot positions are the index modulo the ring size, and the single
    fullness condition [avail - reaped <= capacity] bounds both
    descriptor-slot and used-slot reuse.

    Completions may be published out of order (they carry the
    descriptor id, like virtio's used ring), but never outnumber the
    descriptors taken.  Notifications follow virtio's eventfd shape:
    posting signals the {e kick} notifier (guest -> backend), publishing
    a used entry signals the {e irq} notifier (backend -> guest); both
    coalesce while unarmed. *)

type status =
  | Complete
  | Rejected  (** Refused by the tenant's admission quota. *)
  | Timed_out
  | Busy
  | Cancelled  (** Unprocessed at detach. *)
  | Failed

val status_to_string : status -> string

type desc = {
  d_id : int;  (** Guest-chosen label, echoed in the used entry. *)
  d_off : int;  (** Buffer offset inside the shared region. *)
  d_len : int;
  posted_at : Sim.Time.t;
}

type used = { u_id : int; u_len : int; u_status : status }

type t

val create :
  ?name:string -> region:Memory.Region.t -> slots:int -> unit -> t
(** A ring of [slots] descriptors whose buffers must lie inside
    [region].  Raises [Invalid_argument] if [slots <= 0]. *)

val name : t -> string
val capacity : t -> int
val region : t -> Memory.Region.t

(** {1 Guest side} *)

val post :
  t -> now:Sim.Time.t -> id:int -> off:int -> len:int -> bool
(** Publish a descriptor and signal the kick notifier; [false] (and a
    counted failure) when the ring is full.  Raises [Invalid_argument]
    if the buffer falls outside the region — a guest-driver bug, not a
    runtime condition. *)

val pop_used : t -> used option
(** Reap the oldest unreaped used entry. *)

(** {1 Backend side} *)

val take : t -> desc option
(** Consume the oldest posted-but-untaken descriptor. *)

val complete : t -> id:int -> len:int -> status:status -> unit
(** Publish a used entry (any order w.r.t. [take]s) and signal the irq
    notifier.  Raises [Invalid_argument] if it would outnumber the
    taken descriptors. *)

(** {1 Occupancy and indices} *)

val occupancy : t -> int
(** Live descriptors: posted and not yet reaped ([avail - reaped]). *)

val backlog : t -> int
(** Posted and not yet taken ([avail - taken]) — the backend's queue
    depth, which engine scheduling reads as load. *)

val in_flight : t -> int
(** Taken and not yet completed ([taken - used]). *)

val completions_ready : t -> int
(** Published and not yet reaped ([used - reaped]). *)

val is_full : t -> bool
val avail_idx : t -> int
val taken_idx : t -> int
val used_idx : t -> int
val reaped_idx : t -> int
val post_failures : t -> int

val oldest_pending_age : t -> now:Sim.Time.t -> Sim.Time.t
(** Age of the oldest descriptor the backend has not taken (0 when the
    backlog is empty); the mux engine's queueing-delay signal. *)

(** {1 Notifications} *)

val arm_kick : t -> (unit -> unit) -> unit
val arm_irq : t -> (unit -> unit) -> unit
val kicks : t -> int
val irqs : t -> int

(** {1 Checking} *)

val check : t -> string option
(** Index legality: ordering ([reaped <= used <= taken <= avail]),
    occupancy within capacity, per-slot id sanity.  [None] when
    healthy. *)

val monitor : t -> unit -> string option
(** A stateful predicate for {!Check.Invariant}: runs {!check} and
    additionally requires every index to have grown monotonically since
    the previous evaluation. *)
