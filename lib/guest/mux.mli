(** The vhost-style guest backend: engines that drain many tenants'
    tx rings into Pony Express and deliver completions and received
    messages back through the rx rings.

    The mux owns its own engine group (so upgrades can target guest
    engines independently of the Pony engines) and assigns tenants to
    its engines round-robin.  Per engine pass, each owned tenant gets a
    bounded batch of: Pony completions (release the tenant's admission
    charge, publish the tx used entry), incoming messages (fill a
    posted rx buffer, or count an rx-ring drop), and tx descriptors
    (admit against the {e tenant's} quota — [Rejected] completes
    immediately on the ring; admitted descriptors become engine-side
    Pony sends).  Ring backpressure is structural: descriptors stay in
    the ring while the Pony command queue is full.

    {b Trust boundary.}  Every drain consumes through
    {!Ring.take_checked}: malformed descriptors complete [Failed],
    corrupt-ring verdicts stop the pass, and no guest input can raise
    into the engine loop.  Each verdict scores a violation against the
    tenant ({!Tenant.note_violation}), driving a watchdog-style
    escalation — past [suspect_after] total violations the tenant's tx
    drain is throttled to one descriptor per pass, past
    [quarantine_after] it is {e quarantined}: in-flight ops abandoned,
    pool charges bulk-reclaimed through the generation-tagged
    {!Memory.Pool.release_owner}, rings cancelled and never served
    again, kick notifier left unarmed so kick storms stop waking the
    engine.  The [guest.quarantine] invariant asserts both directions:
    over-threshold tenants are quarantined (the
    ["skip_tenant_quarantine"] sabotage breaks exactly this), and
    quarantined tenants make no further ring progress and hold no pool
    bytes.

    Ring contents and in-flight state live in the bindings, outside any
    engine incarnation, so a transparent upgrade of the mux group
    preserves them and tenants observe only the blackout window.

    Detach: a graceful detach cancels queued descriptors and lets
    in-flight ops drain, then reclaims; a forced detach abandons
    in-flight ops and reclaims immediately.  Both funnel through
    {!Memory.Pool.release_owner}, whose generation bump turns any
    straggler release into a no-op. *)

type t

val create :
  loop:Sim.Loop.t ->
  pony:Pony.Express.t ->
  ?engines:int ->
  mode:Engine.mode ->
  ?suspect_after:int ->
  ?quarantine_after:int ->
  unit ->
  t
(** Build the backend over [pony]'s host, with [engines] (default 1)
    mux engines in a fresh group named ["guest<addr>"] scheduled per
    [mode].  [suspect_after] (default 3) and [quarantine_after]
    (default 12) are the violation-count escalation thresholds; when
    checking is enabled the [guest.quarantine] containment invariant is
    registered here. *)

val attach :
  Cpu.Thread.ctx ->
  t ->
  name:string ->
  dst_host:int ->
  dst_name:string ->
  ?ring_slots:int ->
  ?buf_bytes:int ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  Tenant.t
(** Attach a tenant: builds its rings and admission handle
    ({!Tenant.create}), opens the backend's Pony client and connection
    to [dst_name] on [dst_host], binds the tenant to a mux engine, and
    registers the tenant-isolation invariants (host-side ring-index
    safety and monotonicity; pool-charge/admission agreement, which a
    cross-tenant byte leak breaks on both tenants; full reclaim at
    detach-quiesce) when checking is enabled. *)

val detach : ?force:bool -> t -> Tenant.t -> unit
(** Begin detach.  Graceful (default): queued descriptors complete
    [Cancelled], in-flight ops drain normally, and the binding
    finalizes on its engine once empty.  [force]: in-flight ops are
    abandoned and the tenant's pool charges are bulk-reclaimed
    immediately. *)

val group : t -> Engine.group
val engines : t -> Engine.t list

val resyncs : t -> int
(** Engine-epoch changes the mux observed (upgrades, restarts). *)

val tenants : t -> Tenant.t list
(** In attach order. *)

val attached : t -> int

val inflight_ops : t -> int
(** Ops handed to Pony and not yet completed, across all tenants. *)

(** {1 Misbehavior escalation} (per-instance counts) *)

val suspects : t -> int
(** Tenants escalated to Suspect ([tenant_quarantine_suspects]). *)

val quarantines : t -> int
(** Quarantine decisions taken ([tenant_quarantines]). *)

val quarantined : t -> int
(** Tenants currently in the Quarantined state. *)

val unmatched_completions : t -> int
(** Pony completions with no in-flight entry (Busy-NACK seconds, or
    stragglers of abandoned ops) — [guest_unmatched_completions]. *)
