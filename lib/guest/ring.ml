module Time = Sim.Time

type status = Complete | Rejected | Timed_out | Busy | Cancelled | Failed

let status_to_string = function
  | Complete -> "complete"
  | Rejected -> "rejected"
  | Timed_out -> "timed-out"
  | Busy -> "busy"
  | Cancelled -> "cancelled"
  | Failed -> "failed"

type desc = { d_id : int; d_off : int; d_len : int; posted_at : Time.t }
type used = { u_id : int; u_len : int; u_status : status }

type fault_reason = Bad_range | Empty_slot | Rollback | Overcommit

let fault_reason_to_string = function
  | Bad_range -> "bad-range"
  | Empty_slot -> "empty-slot"
  | Rollback -> "rollback"
  | Overcommit -> "overcommit"

let fault_index = function
  | Bad_range -> 0
  | Empty_slot -> 1
  | Rollback -> 2
  | Overcommit -> 3

type take_verdict =
  | Take_empty
  | Take_ok of desc
  | Take_bad of fault_reason * desc
  | Take_drop of fault_reason
  | Take_stop of fault_reason

type t = {
  rname : string;
  reg : Memory.Region.t;
  cap : int;
  descs : desc option array;
  useds : used option array;
  (* Free-running indices: slot = index mod cap.  [avail - reaped <=
     cap] is the single fullness condition; it bounds reuse of both
     arrays because taken and used are sandwiched between them.
     Ownership matters for trust: [avail] and [reaped] belong to the
     guest and may hold anything a hostile driver writes; [taken] and
     [used] belong to the host and are the only indices the backend's
     safety rests on. *)
  mutable avail : int;
  mutable taken : int;
  mutable used : int;
  mutable reaped : int;
  (* Host-side shadow of the largest avail value ever observed, the
     rollback detector: a guest may only grow its index. *)
  mutable max_avail : int;
  mutable post_fail : int;
  mutable post_bad : int;
  faults : int array;  (* take-side fault counts, by fault_index *)
  c_post_bad : Stats.Counter.t;
  kick : Squeue.Notifier.t;
  irq : Squeue.Notifier.t;
}

let create ?(name = "ring") ~region ~slots () =
  if slots <= 0 then invalid_arg "Guest.Ring.create: slots";
  {
    rname = name;
    reg = region;
    cap = slots;
    descs = Array.make slots None;
    useds = Array.make slots None;
    avail = 0;
    taken = 0;
    used = 0;
    reaped = 0;
    max_avail = 0;
    post_fail = 0;
    post_bad = 0;
    faults = Array.make 4 0;
    c_post_bad =
      Stats.Registry.counter ~labels:[ ("ring", name) ] "ring_post_bad_range";
    kick = Squeue.Notifier.create ();
    irq = Squeue.Notifier.create ();
  }

let name t = t.rname
let capacity t = t.cap
let region t = t.reg
let occupancy t = t.avail - t.reaped
let backlog t = t.avail - t.taken
let in_flight t = t.taken - t.used
let completions_ready t = t.used - t.reaped
let is_full t = occupancy t >= t.cap
let avail_idx t = t.avail
let taken_idx t = t.taken
let used_idx t = t.used
let reaped_idx t = t.reaped
let post_failures t = t.post_fail
let post_bad_range t = t.post_bad
let take_faults t reason = t.faults.(fault_index reason)

(* Raw indices may be negative after hostile writes; slots must not be. *)
let slot t i = ((i mod t.cap) + t.cap) mod t.cap

let in_region t ~off ~len =
  off >= 0 && len >= 0 && off + len <= Memory.Region.size t.reg

let post t ~now ~id ~off ~len =
  if not (in_region t ~off ~len) then begin
    (* A buggy (non-hostile) guest driver: counted, non-fatal.  The
       descriptor never reaches the ring, so the host side needs no
       defense against it here. *)
    t.post_bad <- t.post_bad + 1;
    Stats.Counter.incr t.c_post_bad;
    false
  end
  else if is_full t then begin
    t.post_fail <- t.post_fail + 1;
    false
  end
  else begin
    t.descs.(slot t t.avail) <-
      Some { d_id = id; d_off = off; d_len = len; posted_at = now };
    t.avail <- t.avail + 1;
    Squeue.Notifier.signal t.kick;
    true
  end

(* {1 Byzantine guest surface}

   What a hostile driver actually does to shared memory: no bounds
   check, no fullness check, arbitrary index writes, kicks with nothing
   behind them.  Safety lives entirely on the host's take side. *)

let post_raw t ~now ~id ~off ~len =
  t.descs.(slot t t.avail) <-
    Some { d_id = id; d_off = off; d_len = len; posted_at = now };
  t.avail <- t.avail + 1;
  Squeue.Notifier.signal t.kick

let set_avail_raw t v =
  t.avail <- v;
  Squeue.Notifier.signal t.kick

let kick_raw t = Squeue.Notifier.signal t.kick

let take t =
  (* Even the trusting path observes avail, so the rollback shadow
     stays ahead of taken and [check_host] holds for hosts that mix
     [take] with [take_checked]. *)
  if t.avail > t.max_avail then t.max_avail <- t.avail;
  if t.taken >= t.avail then None
  else begin
    let d = t.descs.(slot t t.taken) in
    t.taken <- t.taken + 1;
    d
  end

let fault t reason =
  t.faults.(fault_index reason) <- t.faults.(fault_index reason) + 1

let take_checked t =
  if t.avail > t.max_avail then t.max_avail <- t.avail;
  if t.avail < t.max_avail then begin
    (* The guest's index regressed.  Re-sync the shadow so one verdict
       covers the whole regression — but never below [taken]: the host
       really consumed that many entries, and the shadow is the host's
       record of it ([check_host] asserts taken <= max_avail). *)
    t.max_avail <- max t.avail t.taken;
    fault t Rollback;
    Take_stop Rollback
  end
  else if t.taken >= t.avail then Take_empty
  else if t.taken - t.reaped >= t.cap then begin
    (* The guest posted past capacity without reaping.  Taking further
       would eventually publish a used entry on top of one the guest has
       not collected; refuse until the guest reaps (it never does — the
       mux scores the violation and escalates). *)
    fault t Overcommit;
    Take_stop Overcommit
  end
  else begin
    let s = slot t t.taken in
    t.taken <- t.taken + 1;
    match t.descs.(s) with
    | None ->
        (* avail covers a slot no descriptor was ever written to (index
           runahead): consumed as a counted drop, nothing to complete. *)
        fault t Empty_slot;
        Take_drop Empty_slot
    | Some d ->
        if not (in_region t ~off:d.d_off ~len:d.d_len) then begin
          fault t Bad_range;
          Take_bad (Bad_range, d)
        end
        else Take_ok d
  end

let complete t ~id ~len ~status =
  if t.used >= t.taken then
    invalid_arg
      (Printf.sprintf "Guest.Ring.complete(%s): more completions than takes"
         t.rname);
  t.useds.(slot t t.used) <- Some { u_id = id; u_len = len; u_status = status };
  t.used <- t.used + 1;
  Squeue.Notifier.signal t.irq

let pop_used t =
  if t.reaped >= t.used then None
  else begin
    let u = t.useds.(slot t t.reaped) in
    t.reaped <- t.reaped + 1;
    u
  end

let oldest_pending_age t ~now =
  if t.taken >= t.avail then 0
  else
    match t.descs.(slot t t.taken) with
    | Some d -> Time.sub now d.posted_at
    | None -> 0

let arm_kick t cb = Squeue.Notifier.arm t.kick cb
let arm_irq t cb = Squeue.Notifier.arm t.irq cb
let kicks t = Squeue.Notifier.signals t.kick
let irqs t = Squeue.Notifier.signals t.irq

let check t =
  let fail fmt = Printf.ksprintf (fun s -> Some (t.rname ^ ": " ^ s)) fmt in
  if t.reaped < 0 then fail "reaped index %d negative" t.reaped
  else if t.used < t.reaped then
    fail "used %d behind reaped %d" t.used t.reaped
  else if t.taken < t.used then
    fail "taken %d behind used %d" t.taken t.used
  else if t.avail < t.taken then
    fail "avail %d behind taken %d" t.avail t.taken
  else if t.avail - t.reaped > t.cap then
    fail "occupancy %d exceeds capacity %d" (t.avail - t.reaped) t.cap
  else None

let check_host t =
  let fail fmt = Printf.ksprintf (fun s -> Some (t.rname ^ ": " ^ s)) fmt in
  if t.taken < 0 || t.used < 0 then
    fail "host index negative (taken %d, used %d)" t.taken t.used
  else if t.used > t.taken then
    fail "used %d ahead of taken %d" t.used t.taken
  else if t.taken > t.max_avail then
    fail "taken %d beyond any observed avail %d" t.taken t.max_avail
  else None

let monitor t =
  (* Only host-owned indices are asserted: [avail] and [reaped] belong
     to the guest and may legitimately do anything under a byzantine
     driver — their abuse is scored by the mux, not treated as a host
     invariant violation. *)
  let last = ref (0, 0) in
  fun () ->
    match check_host t with
    | Some _ as e -> e
    | None ->
        let lt, lu = !last in
        let r =
          if t.taken < lt || t.used < lu then
            Some
              (Printf.sprintf
                 "%s: host index regressed (taken %d<%d or used %d<%d)" t.rname
                 t.taken lt t.used lu)
          else None
        in
        last := (t.taken, t.used);
        r
