module Time = Sim.Time

type status = Complete | Rejected | Timed_out | Busy | Cancelled | Failed

let status_to_string = function
  | Complete -> "complete"
  | Rejected -> "rejected"
  | Timed_out -> "timed-out"
  | Busy -> "busy"
  | Cancelled -> "cancelled"
  | Failed -> "failed"

type desc = { d_id : int; d_off : int; d_len : int; posted_at : Time.t }
type used = { u_id : int; u_len : int; u_status : status }

type t = {
  rname : string;
  reg : Memory.Region.t;
  cap : int;
  descs : desc option array;
  useds : used option array;
  (* Free-running indices: slot = index mod cap.  [avail - reaped <=
     cap] is the single fullness condition; it bounds reuse of both
     arrays because taken and used are sandwiched between them. *)
  mutable avail : int;
  mutable taken : int;
  mutable used : int;
  mutable reaped : int;
  mutable post_fail : int;
  kick : Squeue.Notifier.t;
  irq : Squeue.Notifier.t;
}

let create ?(name = "ring") ~region ~slots () =
  if slots <= 0 then invalid_arg "Guest.Ring.create: slots";
  {
    rname = name;
    reg = region;
    cap = slots;
    descs = Array.make slots None;
    useds = Array.make slots None;
    avail = 0;
    taken = 0;
    used = 0;
    reaped = 0;
    post_fail = 0;
    kick = Squeue.Notifier.create ();
    irq = Squeue.Notifier.create ();
  }

let name t = t.rname
let capacity t = t.cap
let region t = t.reg
let occupancy t = t.avail - t.reaped
let backlog t = t.avail - t.taken
let in_flight t = t.taken - t.used
let completions_ready t = t.used - t.reaped
let is_full t = occupancy t >= t.cap
let avail_idx t = t.avail
let taken_idx t = t.taken
let used_idx t = t.used
let reaped_idx t = t.reaped
let post_failures t = t.post_fail

let post t ~now ~id ~off ~len =
  if off < 0 || len < 0 || off + len > Memory.Region.size t.reg then
    invalid_arg
      (Printf.sprintf "Guest.Ring.post(%s): [%d,%d) outside region of %d B"
         t.rname off (off + len)
         (Memory.Region.size t.reg));
  if is_full t then begin
    t.post_fail <- t.post_fail + 1;
    false
  end
  else begin
    t.descs.(t.avail mod t.cap) <-
      Some { d_id = id; d_off = off; d_len = len; posted_at = now };
    t.avail <- t.avail + 1;
    Squeue.Notifier.signal t.kick;
    true
  end

let take t =
  if t.taken >= t.avail then None
  else begin
    let d = t.descs.(t.taken mod t.cap) in
    t.taken <- t.taken + 1;
    d
  end

let complete t ~id ~len ~status =
  if t.used >= t.taken then
    invalid_arg
      (Printf.sprintf "Guest.Ring.complete(%s): more completions than takes"
         t.rname);
  t.useds.(t.used mod t.cap) <- Some { u_id = id; u_len = len; u_status = status };
  t.used <- t.used + 1;
  Squeue.Notifier.signal t.irq

let pop_used t =
  if t.reaped >= t.used then None
  else begin
    let u = t.useds.(t.reaped mod t.cap) in
    t.reaped <- t.reaped + 1;
    u
  end

let oldest_pending_age t ~now =
  if t.taken >= t.avail then 0
  else
    match t.descs.(t.taken mod t.cap) with
    | Some d -> Time.sub now d.posted_at
    | None -> 0

let arm_kick t cb = Squeue.Notifier.arm t.kick cb
let arm_irq t cb = Squeue.Notifier.arm t.irq cb
let kicks t = Squeue.Notifier.signals t.kick
let irqs t = Squeue.Notifier.signals t.irq

let check t =
  let fail fmt = Printf.ksprintf (fun s -> Some (t.rname ^ ": " ^ s)) fmt in
  if t.reaped < 0 then fail "reaped index %d negative" t.reaped
  else if t.used < t.reaped then
    fail "used %d behind reaped %d" t.used t.reaped
  else if t.taken < t.used then
    fail "taken %d behind used %d" t.taken t.used
  else if t.avail < t.taken then
    fail "avail %d behind taken %d" t.avail t.taken
  else if t.avail - t.reaped > t.cap then
    fail "occupancy %d exceeds capacity %d" (t.avail - t.reaped) t.cap
  else None

let monitor t =
  let last = ref (0, 0, 0, 0) in
  fun () ->
    match check t with
    | Some _ as e -> e
    | None ->
        let la, lt, lu, lr = !last in
        let r =
          if t.avail < la || t.taken < lt || t.used < lu || t.reaped < lr then
            Some
              (Printf.sprintf
                 "%s: index regressed (avail %d<%d or taken %d<%d or used \
                  %d<%d or reaped %d<%d)"
                 t.rname t.avail la t.taken lt t.used lu t.reaped lr)
          else None
        in
        last := (t.avail, t.taken, t.used, t.reaped);
        r
