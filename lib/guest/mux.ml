module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

let batch = 16
let per_desc_cost = Time.ns 180
let per_comp_cost = Time.ns 120

type binding = {
  tenant : Tenant.t;
  client : PE.client;
  conn : PE.conn;
  (* Pony op id -> (descriptor id, bytes, admission charge).  Held
     until the op's first completion; survives engine epochs. *)
  inflight : (int, int * int * Memory.Pool.alloc option) Hashtbl.t;
  b_meng : meng;
}

and meng = {
  m_idx : int;
  core : Engine.t;
  mutable owned : binding list;  (* attach order *)
  mutable last_epoch : int;
}

type t = {
  lp : Loop.t;
  pony : PE.t;
  pool : Memory.Pool.t;
  addr : int;
  copy_ns_per_byte : float;
  group : Engine.group;
  mutable engs : meng list;
  mutable rr : int;
  mutable bindings : binding list;
  by_name : (string, binding) Hashtbl.t;
  mutable next_tid : int;
  mutable n_resyncs : int;
}

let status_of : Pony.Wire.status -> Ring.status = function
  | Pony.Wire.Ok -> Ring.Complete
  | Pony.Wire.Rejected -> Ring.Rejected
  | Pony.Wire.Timed_out -> Ring.Timed_out
  | Pony.Wire.Busy -> Ring.Busy
  | Pony.Wire.Bad_region | Pony.Wire.Bad_range | Pony.Wire.No_match
  | Pony.Wire.Not_permitted | Pony.Wire.Peer_dead ->
      Ring.Failed

let rec drain_completions b cost work n =
  if n < batch then
    match PE.engine_poll_completion b.client with
    | Some c ->
        incr work;
        cost := Time.add !cost per_comp_cost;
        (match Hashtbl.find_opt b.inflight c.PE.comp_op with
        | Some (did, bytes, charge) ->
            (* Sabotage point: with "guest_skip_release" armed the
               backend forgets the op's bookkeeping — the in-flight
               entry and the tenant's admission charge both leak — so
               the sweep can prove the detach-quiesce reclaim
               invariant fires (never armed outside the checker's own
               non-vacuity test). *)
            if not (Check.Invariant.sabotage "guest_skip_release") then begin
              Hashtbl.remove b.inflight c.PE.comp_op;
              Overload.Admission.release b.tenant.Tenant.adm charge
            end;
            let st = status_of c.PE.status in
            Tenant.note_tx b.tenant st;
            Ring.complete b.tenant.Tenant.tx ~id:did ~len:bytes ~status:st
        | None ->
            (* Second completion of the same op (a Busy NACK following
               the Ok): the used entry was already published. *)
            ());
        drain_completions b cost work (n + 1)
    | None -> ()

let rec drain_messages t b cost work n =
  if n < batch then
    match PE.engine_poll_message b.client with
    | Some m ->
        incr work;
        (match Ring.take b.tenant.Tenant.rx with
        | Some d ->
            let len = min m.PE.msg_bytes d.Ring.d_len in
            cost :=
              Time.add !cost
                (Time.ns
                   (int_of_float (t.copy_ns_per_byte *. float_of_int len)));
            (* Stamp the buffer head: backed regions carry evidence of
               the delivery for functional checks. *)
            if
              Memory.Region.is_backed b.tenant.Tenant.region
              && d.Ring.d_len >= 8
            then
              Memory.Region.write_int64 b.tenant.Tenant.region d.Ring.d_off
                (Int64.of_int m.PE.msg_op);
            Tenant.note_rx b.tenant len;
            Ring.complete b.tenant.Tenant.rx ~id:d.Ring.d_id ~len
              ~status:Ring.Complete
        | None ->
            (* No posted rx buffer: the message is shed, like a virtio
               rx-ring overflow. *)
            Tenant.note_rx_drop b.tenant);
        drain_messages t b cost work (n + 1)
    | None -> ()

let rec drain_tx t b cost work n =
  let tn = b.tenant in
  if n < batch && PE.conn_cmd_free b.conn > 0 then
    match Ring.take tn.Tenant.tx with
    | Some d ->
        incr work;
        cost := Time.add !cost per_desc_cost;
        (match
           Overload.Admission.admit tn.Tenant.adm ~now:(Loop.now t.lp)
             ~bytes:d.Ring.d_len
         with
        | Overload.Admission.Rejected _ ->
            Tenant.note_tx tn Ring.Rejected;
            Ring.complete tn.Tenant.tx ~id:d.Ring.d_id ~len:0
              ~status:Ring.Rejected
        | Overload.Admission.Admitted charge ->
            let op =
              PE.engine_post_send b.conn ~now:(Loop.now t.lp)
                ~bytes:d.Ring.d_len ()
            in
            Hashtbl.replace b.inflight op (d.Ring.d_id, d.Ring.d_len, charge));
        drain_tx t b cost work (n + 1)
    | None -> ()

let cancel_ring tn ring ~count_ops =
  let rec go n =
    match Ring.take ring with
    | Some d ->
        if count_ops then Tenant.note_tx tn Ring.Cancelled;
        Ring.complete ring ~id:d.Ring.d_id ~len:0 ~status:Ring.Cancelled;
        go (n + 1)
    | None -> n
  in
  go 0

let finalize t b =
  let tn = b.tenant in
  ignore (cancel_ring tn tn.Tenant.tx ~count_ops:true);
  (* Posted rx buffers are returned, not counted as ops. *)
  ignore (cancel_ring tn tn.Tenant.rx ~count_ops:false);
  let freed = Memory.Pool.release_owner t.pool ~owner:tn.Tenant.owner in
  if freed > 0 then Tenant.note_reclaimed tn freed;
  tn.Tenant.state <- Tenant.Detached

let service t b cost work =
  let tn = b.tenant in
  match tn.Tenant.state with
  | Tenant.Detached -> ()
  | Tenant.Attached ->
      drain_completions b cost work 0;
      drain_messages t b cost work 0;
      drain_tx t b cost work 0
  | Tenant.Detaching ->
      drain_completions b cost work 0;
      drain_messages t b cost work 0;
      let cancelled = cancel_ring tn tn.Tenant.tx ~count_ops:true in
      if cancelled > 0 then work := !work + cancelled;
      if Hashtbl.length b.inflight = 0 then begin
        incr work;
        finalize t b
      end

let run_meng t m =
  let ep = Engine.epoch m.core in
  if ep <> m.last_epoch then begin
    (* Ring contents and in-flight state live in the bindings, outside
       the engine incarnation: the new instance resumes where the old
       one stopped, so a tenant observes only the blackout window. *)
    m.last_epoch <- ep;
    t.n_resyncs <- t.n_resyncs + 1
  end;
  let cost = ref Time.zero in
  let work = ref 0 in
  List.iter (fun b -> service t b cost work) m.owned;
  if !work = 0 then Engine.No_work else Engine.Worked !cost

let meng_queue_delay m now =
  List.fold_left
    (fun acc b ->
      if b.tenant.Tenant.state = Tenant.Detached then acc
      else Time.max acc (Ring.oldest_pending_age b.tenant.Tenant.tx ~now))
    0 m.owned

let meng_state_bytes m =
  List.fold_left
    (fun acc b ->
      acc + 512
      + 64
        * (Ring.occupancy b.tenant.Tenant.tx + Ring.occupancy b.tenant.Tenant.rx)
      + 48 * Hashtbl.length b.inflight)
    0 m.owned

let create ~loop ~pony ?(engines = 1) ~mode () =
  if engines <= 0 then invalid_arg "Guest.Mux.create: engines";
  let machine = PE.machine pony in
  let addr = PE.addr pony in
  let group =
    Engine.create_group ~machine ~name:(Printf.sprintf "guest%d" addr) ~mode
  in
  let t =
    {
      lp = loop;
      pony;
      pool = PE.op_pool pony;
      addr;
      copy_ns_per_byte =
        (Cpu.Sched.costs machine).Sim.Costs.snap_copy_per_byte_ns;
      group;
      engs = [];
      rr = 0;
      bindings = [];
      by_name = Hashtbl.create 64;
      next_tid = 0;
      n_resyncs = 0;
    }
  in
  for i = 0 to engines - 1 do
    let m_ref = ref None in
    let core =
      Engine.create
        ~name:(Printf.sprintf "mux%d" i)
        ~run:(fun () ->
          match !m_ref with Some m -> run_meng t m | None -> Engine.No_work)
        ~queue_delay:(fun now ->
          match !m_ref with Some m -> meng_queue_delay m now | None -> 0)
        ~state_bytes:(fun () ->
          match !m_ref with Some m -> meng_state_bytes m | None -> 0)
        ()
    in
    let m = { m_idx = i; core; owned = []; last_epoch = 0 } in
    m_ref := Some m;
    Engine.add group core;
    m.last_epoch <- Engine.epoch core;
    t.engs <- t.engs @ [ m ]
  done;
  t

let register_invariants b =
  let tn = b.tenant in
  let owner = tn.Tenant.owner in
  let mon_tx = Ring.monitor tn.Tenant.tx in
  let mon_rx = Ring.monitor tn.Tenant.rx in
  Check.Invariant.register
    ~name:(Printf.sprintf "guest.%s.rings" owner)
    (fun () ->
      match mon_tx () with Some _ as e -> e | None -> mon_rx ());
  (* The cross-tenant leak detector: all pool charges under this owner
     come from this tenant's admission handle, so the two totals must
     agree at every instant.  A byte charged to the wrong tenant breaks
     the equality on both tenants at once. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "guest.%s.accounting" owner)
    (fun () ->
      let usage = Tenant.pool_usage tn in
      if tn.Tenant.state = Tenant.Detached then
        if usage <> 0 then
          Some (Printf.sprintf "detached tenant holds %d pool bytes" usage)
        else None
      else
        let out_bytes = Tenant.outstanding_bytes tn in
        let out_ops = Tenant.outstanding_ops tn in
        if usage <> out_bytes then
          Some
            (Printf.sprintf
               "pool charge %d B disagrees with admission outstanding %d B \
                (cross-tenant leak)"
               usage out_bytes)
        else if Hashtbl.length b.inflight > out_ops then
          Some
            (Printf.sprintf "%d in-flight ops exceed %d outstanding admissions"
               (Hashtbl.length b.inflight) out_ops)
        else None);
  Check.Invariant.register ~kind:Check.Invariant.Quiesce_only
    ~name:(Printf.sprintf "guest.%s.drained" owner)
    (fun () ->
      if Hashtbl.length b.inflight <> 0 then
        Some
          (Printf.sprintf "%d ops still in flight" (Hashtbl.length b.inflight))
      else
        let usage = Tenant.pool_usage tn in
        if usage <> 0 then
          Some (Printf.sprintf "%d op-pool bytes never released" usage)
        else None)

let attach ctx t ~name ~dst_host ~dst_name ?ring_slots ?buf_bytes ?max_ops
    ?max_bytes ?rate_ops_per_sec ?burst_ops () =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Guest.Mux.attach: tenant %s exists" name);
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let tenant =
    Tenant.create ~pool:t.pool ~host_addr:t.addr ~name ~id:tid ?ring_slots
      ?buf_bytes ?max_ops ?max_bytes ?rate_ops_per_sec ?burst_ops ()
  in
  (* The backend's Pony handle for this tenant.  Its client-side
     admission stays permissive on purpose: the tenant's handle is the
     accounting authority, and the engine-side submit path bypasses
     client admission entirely. *)
  let client = PE.create_client ctx t.pony ~name:("mux:" ^ name) () in
  let conn = PE.connect_by_name ctx client ~dst_host ~dst_name in
  let n = List.length t.engs in
  let m = List.nth t.engs (t.rr mod n) in
  t.rr <- t.rr + 1;
  let b = { tenant; client; conn; inflight = Hashtbl.create 32; b_meng = m } in
  m.owned <- m.owned @ [ b ];
  t.bindings <- t.bindings @ [ b ];
  Hashtbl.replace t.by_name name b;
  (* Wakeups: completions/messages landing at the pony client, and
     guest kicks on either ring, all nudge the owning mux engine. *)
  PE.set_delivery_hook client (fun () -> Engine.notify m.core);
  let rec rearm ring =
    Ring.arm_kick ring (fun () ->
        Engine.notify m.core;
        rearm ring)
  in
  rearm tenant.Tenant.tx;
  rearm tenant.Tenant.rx;
  if Check.Invariant.enabled () then register_invariants b;
  tenant

let detach ?(force = false) t tenant =
  match Hashtbl.find_opt t.by_name tenant.Tenant.tname with
  | None ->
      invalid_arg
        (Printf.sprintf "Guest.Mux.detach: unknown tenant %s"
           tenant.Tenant.tname)
  | Some b ->
      if tenant.Tenant.state <> Tenant.Detached then begin
        tenant.Tenant.state <- Tenant.Detaching;
        if force then begin
          (* Abandon in-flight ops.  Their straggler completions find
             no in-flight entry and are dropped; their pool charges are
             reclaimed in bulk right here, and the generation bump in
             [release_owner] turns any late per-alloc free into a
             no-op. *)
          Hashtbl.reset b.inflight;
          finalize t b
        end
        else Engine.notify b.b_meng.core
      end

let group t = t.group
let engines t = List.map (fun m -> m.core) t.engs
let resyncs t = t.n_resyncs
let tenants t = List.map (fun b -> b.tenant) t.bindings

let attached t =
  List.length
    (List.filter (fun b -> b.tenant.Tenant.state = Tenant.Attached) t.bindings)

let inflight_ops t =
  List.fold_left (fun acc b -> acc + Hashtbl.length b.inflight) 0 t.bindings
