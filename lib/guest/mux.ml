module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

let batch = 16
let per_desc_cost = Time.ns 180
let per_comp_cost = Time.ns 120

type binding = {
  tenant : Tenant.t;
  client : PE.client;
  conn : PE.conn;
  (* Pony op id -> (descriptor id, bytes, admission charge).  Held
     until the op's first completion; survives engine epochs. *)
  inflight : (int, int * int * Memory.Pool.alloc option) Hashtbl.t;
  (* Descriptor ids currently in flight: a second take of a live id is
     the Dup_id violation (virtio drivers never alias a live id). *)
  live_ids : (int, unit) Hashtbl.t;
  (* Host indices (tx taken/used, rx taken/used) captured at
     quarantine; the guest.quarantine invariant asserts they never move
     again. *)
  mutable frozen : (int * int * int * int) option;
  b_meng : meng;
}

and meng = {
  m_idx : int;
  core : Engine.t;
  mutable owned : binding list;  (* attach order *)
  mutable last_epoch : int;
}

type t = {
  lp : Loop.t;
  pony : PE.t;
  pool : Memory.Pool.t;
  addr : int;
  copy_ns_per_byte : float;
  group : Engine.group;
  suspect_after : int;
  quarantine_after : int;
  mutable engs : meng list;
  mutable rr : int;
  mutable bindings : binding list;
  by_name : (string, binding) Hashtbl.t;
  mutable next_tid : int;
  mutable n_resyncs : int;
  c_suspects : Stats.Counter.t;
  suspects_base : int;
  c_quarantines : Stats.Counter.t;
  quarantines_base : int;
  c_unmatched : Stats.Counter.t;
  unmatched_base : int;
}

let status_of : Pony.Wire.status -> Ring.status = function
  | Pony.Wire.Ok -> Ring.Complete
  | Pony.Wire.Rejected -> Ring.Rejected
  | Pony.Wire.Timed_out -> Ring.Timed_out
  | Pony.Wire.Busy -> Ring.Busy
  | Pony.Wire.Bad_region | Pony.Wire.Bad_range | Pony.Wire.No_match
  | Pony.Wire.Not_permitted | Pony.Wire.Peer_dead ->
      Ring.Failed

(* {1 Misbehavior escalation}

   Trust-boundary violations accumulate on the tenant; past
   [suspect_after] the mux throttles its tx drain to one descriptor per
   pass, past [quarantine_after] the tenant is quarantined: in-flight
   ops abandoned, pool charges bulk-reclaimed through the
   generation-tagged owner release, rings cancelled and never served
   again.  Modeled on the watchdog's engine quarantine — the offender
   is ejected, the victims keep their engines. *)

let cancel_ring tn ring ~count_ops =
  let rec go n =
    match Ring.take_checked ring with
    | Ring.Take_ok d | Ring.Take_bad (_, d) ->
        if count_ops then Tenant.note_tx tn Ring.Cancelled;
        Ring.complete ring ~id:d.Ring.d_id ~len:0 ~status:Ring.Cancelled;
        go (n + 1)
    | Ring.Take_drop _ -> go n  (* consumed, nothing to publish *)
    | Ring.Take_empty | Ring.Take_stop _ -> n
  in
  go 0

let quarantine t b =
  let tn = b.tenant in
  tn.Tenant.health <- Tenant.Quarantined;
  tn.Tenant.quarantined_at <- Some (Loop.now t.lp);
  Stats.Counter.incr t.c_quarantines;
  Sim.Span.emit t.lp ~cat:"guest" ~track:"quarantine"
    ~args:
      [
        ("tenant", tn.Tenant.owner);
        ("violations", string_of_int (Tenant.violations tn));
      ]
    "tenant-quarantine";
  (* Abandon in-flight ops: their straggler completions surface in the
     unmatched counter, their pool charges are reclaimed in bulk below
     and the generation bump turns any late per-alloc free into a
     no-op. *)
  Hashtbl.reset b.inflight;
  Hashtbl.reset b.live_ids;
  if tn.Tenant.state <> Tenant.Detached then begin
    tn.Tenant.state <- Tenant.Detaching;
    ignore (cancel_ring tn tn.Tenant.tx ~count_ops:true);
    ignore (cancel_ring tn tn.Tenant.rx ~count_ops:false);
    let freed = Memory.Pool.release_owner t.pool ~owner:tn.Tenant.owner in
    if freed > 0 then Tenant.note_reclaimed tn freed;
    tn.Tenant.state <- Tenant.Detached
  end;
  b.frozen <-
    Some
      ( Ring.taken_idx tn.Tenant.tx,
        Ring.used_idx tn.Tenant.tx,
        Ring.taken_idx tn.Tenant.rx,
        Ring.used_idx tn.Tenant.rx )

let violate t b reason =
  let tn = b.tenant in
  let total = Tenant.note_violation tn reason in
  if tn.Tenant.health <> Tenant.Quarantined then begin
    if tn.Tenant.health = Tenant.Healthy && total >= t.suspect_after then begin
      tn.Tenant.health <- Tenant.Suspect;
      Stats.Counter.incr t.c_suspects;
      Sim.Span.emit t.lp ~cat:"guest" ~track:"quarantine"
        ~args:
          [
            ("tenant", tn.Tenant.owner);
            ("reason", Tenant.violation_to_string reason);
          ]
        "tenant-suspect"
    end;
    (* Sabotage point: with "skip_tenant_quarantine" armed the score
       crosses the threshold but the ejection never happens, so the
       sweep can prove the guest.quarantine invariant is not vacuous
       (never armed outside the checker's own non-vacuity test). *)
    if
      total >= t.quarantine_after
      && not (Check.Invariant.sabotage "skip_tenant_quarantine")
    then quarantine t b
  end

let rec drain_completions t b cost work n =
  if n < batch then
    match PE.engine_poll_completion b.client with
    | Some c ->
        incr work;
        cost := Time.add !cost per_comp_cost;
        (match Hashtbl.find_opt b.inflight c.PE.comp_op with
        | Some (did, bytes, charge) ->
            Hashtbl.remove b.live_ids did;
            (* Sabotage point: with "guest_skip_release" armed the
               backend forgets the op's bookkeeping — the in-flight
               entry and the tenant's admission charge both leak — so
               the sweep can prove the detach-quiesce reclaim
               invariant fires (never armed outside the checker's own
               non-vacuity test). *)
            if not (Check.Invariant.sabotage "guest_skip_release") then begin
              Hashtbl.remove b.inflight c.PE.comp_op;
              Overload.Admission.release b.tenant.Tenant.adm charge
            end;
            let st = status_of c.PE.status in
            Tenant.note_tx b.tenant st;
            Ring.complete b.tenant.Tenant.tx ~id:did ~len:bytes ~status:st
        | None ->
            (* No in-flight entry: the second completion of the same op
               (a Busy NACK following the Ok), or a straggler of an op
               abandoned by force-detach/quarantine.  Counted so
               genuinely-orphaned completions are visible. *)
            Stats.Counter.incr t.c_unmatched);
        drain_completions t b cost work (n + 1)
    | None -> ()

let rec drain_messages t b cost work n =
  if n < batch then
    match PE.engine_poll_message b.client with
    | Some m ->
        incr work;
        let tn = b.tenant in
        (match Ring.take_checked tn.Tenant.rx with
        | Ring.Take_ok d ->
            let len = min m.PE.msg_bytes d.Ring.d_len in
            cost :=
              Time.add !cost
                (Time.ns
                   (int_of_float (t.copy_ns_per_byte *. float_of_int len)));
            (* Stamp the buffer head: backed regions carry evidence of
               the delivery for functional checks.  The validated
               verdict is what makes this write safe against hostile
               offsets. *)
            if Memory.Region.is_backed tn.Tenant.region && d.Ring.d_len >= 8
            then
              Memory.Region.write_int64 tn.Tenant.region d.Ring.d_off
                (Int64.of_int m.PE.msg_op);
            Tenant.note_rx tn len;
            Ring.complete tn.Tenant.rx ~id:d.Ring.d_id ~len
              ~status:Ring.Complete
        | Ring.Take_bad (r, d) ->
            (* Complete before scoring: scoring may quarantine, and the
               frozen-index snapshot must postdate every publication. *)
            Tenant.note_rx_drop tn;
            Ring.complete tn.Tenant.rx ~id:d.Ring.d_id ~len:0
              ~status:Ring.Failed;
            violate t b (Tenant.of_ring_fault r)
        | Ring.Take_drop r ->
            Tenant.note_rx_drop tn;
            violate t b (Tenant.of_ring_fault r)
        | Ring.Take_stop r ->
            (* rx ring corrupt: the message is shed. *)
            Tenant.note_rx_drop tn;
            violate t b (Tenant.of_ring_fault r)
        | Ring.Take_empty ->
            (* No posted rx buffer: the message is shed, like a virtio
               rx-ring overflow. *)
            Tenant.note_rx_drop tn);
        drain_messages t b cost work (n + 1)
    | None -> ()

let rec drain_tx t b cost work ~limit n =
  let tn = b.tenant in
  if
    n < limit
    && tn.Tenant.health <> Tenant.Quarantined
    && PE.conn_cmd_free b.conn > 0
  then
    match Ring.take_checked tn.Tenant.tx with
    | Ring.Take_empty -> ()
    | Ring.Take_stop r ->
        (* No progress possible (avail rollback or overcommit): score
           once and stop the pass. *)
        incr work;
        violate t b (Tenant.of_ring_fault r)
    | Ring.Take_drop r ->
        incr work;
        cost := Time.add !cost per_desc_cost;
        violate t b (Tenant.of_ring_fault r);
        drain_tx t b cost work ~limit (n + 1)
    | Ring.Take_bad (r, d) ->
        incr work;
        cost := Time.add !cost per_desc_cost;
        Tenant.note_tx tn Ring.Failed;
        Ring.complete tn.Tenant.tx ~id:d.Ring.d_id ~len:0 ~status:Ring.Failed;
        violate t b (Tenant.of_ring_fault r);
        drain_tx t b cost work ~limit (n + 1)
    | Ring.Take_ok d ->
        incr work;
        cost := Time.add !cost per_desc_cost;
        if Hashtbl.mem b.live_ids d.Ring.d_id then begin
          Tenant.note_tx tn Ring.Failed;
          Ring.complete tn.Tenant.tx ~id:d.Ring.d_id ~len:0
            ~status:Ring.Failed;
          violate t b Tenant.Dup_id
        end
        else
          (match
             Overload.Admission.admit tn.Tenant.adm ~now:(Loop.now t.lp)
               ~bytes:d.Ring.d_len
           with
          | Overload.Admission.Rejected _ ->
              Tenant.note_tx tn Ring.Rejected;
              Ring.complete tn.Tenant.tx ~id:d.Ring.d_id ~len:0
                ~status:Ring.Rejected
          | Overload.Admission.Admitted charge ->
              let op =
                PE.engine_post_send b.conn ~now:(Loop.now t.lp)
                  ~bytes:d.Ring.d_len ()
              in
              Hashtbl.replace b.inflight op (d.Ring.d_id, d.Ring.d_len, charge);
              Hashtbl.replace b.live_ids d.Ring.d_id ());
        drain_tx t b cost work ~limit (n + 1)

let finalize t b =
  let tn = b.tenant in
  ignore (cancel_ring tn tn.Tenant.tx ~count_ops:true);
  (* Posted rx buffers are returned, not counted as ops. *)
  ignore (cancel_ring tn tn.Tenant.rx ~count_ops:false);
  let freed = Memory.Pool.release_owner t.pool ~owner:tn.Tenant.owner in
  if freed > 0 then Tenant.note_reclaimed tn freed;
  tn.Tenant.state <- Tenant.Detached

let service t b cost work =
  let tn = b.tenant in
  match tn.Tenant.state with
  | Tenant.Detached ->
      (* Stragglers for a finalized binding (graceful detach, forced
         detach, or quarantine): completions find no in-flight entry
         and are counted unmatched; the rings are never touched
         again. *)
      drain_completions t b cost work 0
  | Tenant.Attached ->
      drain_completions t b cost work 0;
      drain_messages t b cost work 0;
      (* A Suspect tenant is throttled to a quarter batch per pass —
         damage control while the score settles.  Not all the way to
         one: passes can be hundreds of microseconds apart, and a
         single take per pass would stretch the evidence-gathering
         window (and quarantine latency) by that same factor. *)
      let limit =
        if tn.Tenant.health = Tenant.Suspect then max 1 (batch / 4) else batch
      in
      drain_tx t b cost work ~limit 0
  | Tenant.Detaching ->
      drain_completions t b cost work 0;
      drain_messages t b cost work 0;
      let cancelled = cancel_ring tn tn.Tenant.tx ~count_ops:true in
      if cancelled > 0 then work := !work + cancelled;
      if Hashtbl.length b.inflight = 0 then begin
        incr work;
        finalize t b
      end

let run_meng t m =
  let ep = Engine.epoch m.core in
  if ep <> m.last_epoch then begin
    (* Ring contents and in-flight state live in the bindings, outside
       the engine incarnation: the new instance resumes where the old
       one stopped, so a tenant observes only the blackout window. *)
    m.last_epoch <- ep;
    t.n_resyncs <- t.n_resyncs + 1
  end;
  let cost = ref Time.zero in
  let work = ref 0 in
  List.iter (fun b -> service t b cost work) m.owned;
  if !work = 0 then Engine.No_work else Engine.Worked !cost

let meng_queue_delay m now =
  List.fold_left
    (fun acc b ->
      if b.tenant.Tenant.state = Tenant.Detached then acc
      else Time.max acc (Ring.oldest_pending_age b.tenant.Tenant.tx ~now))
    0 m.owned

(* Guest-owned indices can make occupancy negative (rollback) or
   absurd (runahead); clamp to what the ring can physically hold. *)
let clamped_occ ring =
  min (Ring.capacity ring) (max 0 (Ring.occupancy ring))

let meng_state_bytes m =
  List.fold_left
    (fun acc b ->
      acc + 512
      + 64 * (clamped_occ b.tenant.Tenant.tx + clamped_occ b.tenant.Tenant.rx)
      + 48 * Hashtbl.length b.inflight)
    0 m.owned

let create ~loop ~pony ?(engines = 1) ~mode ?(suspect_after = 3)
    ?(quarantine_after = 12) () =
  if engines <= 0 then invalid_arg "Guest.Mux.create: engines";
  if suspect_after <= 0 then invalid_arg "Guest.Mux.create: suspect_after";
  if quarantine_after < suspect_after then
    invalid_arg "Guest.Mux.create: quarantine_after < suspect_after";
  let machine = PE.machine pony in
  let addr = PE.addr pony in
  let group =
    Engine.create_group ~machine ~name:(Printf.sprintf "guest%d" addr) ~mode
  in
  let c_suspects = Stats.Registry.counter "tenant_quarantine_suspects" in
  let c_quarantines = Stats.Registry.counter "tenant_quarantines" in
  let c_unmatched = Stats.Registry.counter "guest_unmatched_completions" in
  let t =
    {
      lp = loop;
      pony;
      pool = PE.op_pool pony;
      addr;
      copy_ns_per_byte =
        (Cpu.Sched.costs machine).Sim.Costs.snap_copy_per_byte_ns;
      group;
      suspect_after;
      quarantine_after;
      engs = [];
      rr = 0;
      bindings = [];
      by_name = Hashtbl.create 64;
      next_tid = 0;
      n_resyncs = 0;
      c_suspects;
      suspects_base = Stats.Counter.value c_suspects;
      c_quarantines;
      quarantines_base = Stats.Counter.value c_quarantines;
      c_unmatched;
      unmatched_base = Stats.Counter.value c_unmatched;
    }
  in
  for i = 0 to engines - 1 do
    let m_ref = ref None in
    let core =
      Engine.create
        ~name:(Printf.sprintf "mux%d" i)
        ~run:(fun () ->
          match !m_ref with Some m -> run_meng t m | None -> Engine.No_work)
        ~queue_delay:(fun now ->
          match !m_ref with Some m -> meng_queue_delay m now | None -> 0)
        ~state_bytes:(fun () ->
          match !m_ref with Some m -> meng_state_bytes m | None -> 0)
        ()
    in
    let m = { m_idx = i; core; owned = []; last_epoch = 0 } in
    m_ref := Some m;
    Engine.add group core;
    m.last_epoch <- Engine.epoch core;
    t.engs <- t.engs @ [ m ]
  done;
  if Check.Invariant.enabled () then
    (* The containment invariant: a tenant over the quarantine
       threshold must actually be quarantined (this is what the
       skip_tenant_quarantine sabotage breaks), and a quarantined
       tenant must make no further ring progress and hold no pool
       bytes — its damage is fully contained. *)
    Check.Invariant.register ~name:"guest.quarantine" (fun () ->
        let rec scan = function
          | [] -> None
          | b :: rest -> (
              let tn = b.tenant in
              if
                tn.Tenant.health <> Tenant.Quarantined
                && Tenant.violations tn >= t.quarantine_after
              then
                Some
                  (Printf.sprintf
                     "tenant %s has %d violations (threshold %d) but is %s"
                     tn.Tenant.owner (Tenant.violations tn) t.quarantine_after
                     (Tenant.health_to_string tn.Tenant.health))
              else
                match (tn.Tenant.health, b.frozen) with
                | Tenant.Quarantined, Some (ttx, utx, trx, urx) ->
                    if
                      Ring.taken_idx tn.Tenant.tx <> ttx
                      || Ring.used_idx tn.Tenant.tx <> utx
                      || Ring.taken_idx tn.Tenant.rx <> trx
                      || Ring.used_idx tn.Tenant.rx <> urx
                    then
                      Some
                        (Printf.sprintf
                           "quarantined tenant %s made ring progress"
                           tn.Tenant.owner)
                    else if Tenant.pool_usage tn <> 0 then
                      Some
                        (Printf.sprintf
                           "quarantined tenant %s holds %d pool bytes"
                           tn.Tenant.owner (Tenant.pool_usage tn))
                    else scan rest
                | Tenant.Quarantined, None ->
                    Some
                      (Printf.sprintf
                         "quarantined tenant %s has no frozen snapshot"
                         tn.Tenant.owner)
                | (Tenant.Healthy | Tenant.Suspect), _ -> scan rest)
        in
        scan t.bindings);
  t

let register_invariants b =
  let tn = b.tenant in
  let owner = tn.Tenant.owner in
  let mon_tx = Ring.monitor tn.Tenant.tx in
  let mon_rx = Ring.monitor tn.Tenant.rx in
  (* Host-safety only: guest-owned indices are attacker-controlled and
     deliberately unchecked here — their abuse is scored and escalated
     by the mux, not treated as a host invariant violation. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "guest.%s.rings" owner)
    (fun () ->
      match mon_tx () with Some _ as e -> e | None -> mon_rx ());
  (* The cross-tenant leak detector: all pool charges under this owner
     come from this tenant's admission handle, so the two totals must
     agree at every instant.  A byte charged to the wrong tenant breaks
     the equality on both tenants at once. *)
  Check.Invariant.register
    ~name:(Printf.sprintf "guest.%s.accounting" owner)
    (fun () ->
      let usage = Tenant.pool_usage tn in
      if tn.Tenant.state = Tenant.Detached then
        if usage <> 0 then
          Some (Printf.sprintf "detached tenant holds %d pool bytes" usage)
        else None
      else
        let out_bytes = Tenant.outstanding_bytes tn in
        let out_ops = Tenant.outstanding_ops tn in
        if usage <> out_bytes then
          Some
            (Printf.sprintf
               "pool charge %d B disagrees with admission outstanding %d B \
                (cross-tenant leak)"
               usage out_bytes)
        else if Hashtbl.length b.inflight > out_ops then
          Some
            (Printf.sprintf "%d in-flight ops exceed %d outstanding admissions"
               (Hashtbl.length b.inflight) out_ops)
        else None);
  Check.Invariant.register ~kind:Check.Invariant.Quiesce_only
    ~name:(Printf.sprintf "guest.%s.drained" owner)
    (fun () ->
      if Hashtbl.length b.inflight <> 0 then
        Some
          (Printf.sprintf "%d ops still in flight" (Hashtbl.length b.inflight))
      else
        let usage = Tenant.pool_usage tn in
        if usage <> 0 then
          Some (Printf.sprintf "%d op-pool bytes never released" usage)
        else None)

let attach ctx t ~name ~dst_host ~dst_name ?ring_slots ?buf_bytes ?max_ops
    ?max_bytes ?rate_ops_per_sec ?burst_ops () =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Guest.Mux.attach: tenant %s exists" name);
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let tenant =
    Tenant.create ~pool:t.pool ~host_addr:t.addr ~name ~id:tid ?ring_slots
      ?buf_bytes ?max_ops ?max_bytes ?rate_ops_per_sec ?burst_ops ()
  in
  (* The backend's Pony handle for this tenant.  Its client-side
     admission stays permissive on purpose: the tenant's handle is the
     accounting authority, and the engine-side submit path bypasses
     client admission entirely. *)
  let client = PE.create_client ctx t.pony ~name:("mux:" ^ name) () in
  let conn = PE.connect_by_name ctx client ~dst_host ~dst_name in
  let n = List.length t.engs in
  let m = List.nth t.engs (t.rr mod n) in
  t.rr <- t.rr + 1;
  let b =
    {
      tenant;
      client;
      conn;
      inflight = Hashtbl.create 32;
      live_ids = Hashtbl.create 32;
      frozen = None;
      b_meng = m;
    }
  in
  m.owned <- m.owned @ [ b ];
  t.bindings <- t.bindings @ [ b ];
  Hashtbl.replace t.by_name name b;
  (* Wakeups: completions/messages landing at the pony client, and
     guest kicks on either ring, all nudge the owning mux engine.  A
     kick with nothing behind it (empty or rolled-back backlog) is
     scored as a spurious kick, and a quarantined tenant's notifier is
     never rearmed — kick storms stop waking the engine. *)
  PE.set_delivery_hook client (fun () -> Engine.notify m.core);
  let rec rearm ring =
    Ring.arm_kick ring (fun () ->
        if tenant.Tenant.health <> Tenant.Quarantined then begin
          if Ring.backlog ring <= 0 then violate t b Tenant.Spurious_kick;
          if tenant.Tenant.health <> Tenant.Quarantined then begin
            Engine.notify m.core;
            rearm ring
          end
        end)
  in
  rearm tenant.Tenant.tx;
  rearm tenant.Tenant.rx;
  if Check.Invariant.enabled () then register_invariants b;
  tenant

let detach ?(force = false) t tenant =
  match Hashtbl.find_opt t.by_name tenant.Tenant.tname with
  | None ->
      invalid_arg
        (Printf.sprintf "Guest.Mux.detach: unknown tenant %s"
           tenant.Tenant.tname)
  | Some b ->
      if tenant.Tenant.state <> Tenant.Detached then begin
        tenant.Tenant.state <- Tenant.Detaching;
        if force then begin
          (* Abandon in-flight ops.  Their straggler completions find
             no in-flight entry and are counted unmatched; their pool
             charges are reclaimed in bulk right here, and the
             generation bump in [release_owner] turns any late
             per-alloc free into a no-op. *)
          Hashtbl.reset b.inflight;
          Hashtbl.reset b.live_ids;
          finalize t b
        end
        else Engine.notify b.b_meng.core
      end

let group t = t.group
let engines t = List.map (fun m -> m.core) t.engs
let resyncs t = t.n_resyncs
let tenants t = List.map (fun b -> b.tenant) t.bindings

let attached t =
  List.length
    (List.filter (fun b -> b.tenant.Tenant.state = Tenant.Attached) t.bindings)

let inflight_ops t =
  List.fold_left (fun acc b -> acc + Hashtbl.length b.inflight) 0 t.bindings

let suspects t = Stats.Counter.value t.c_suspects - t.suspects_base
let quarantines t = Stats.Counter.value t.c_quarantines - t.quarantines_base

let unmatched_completions t =
  Stats.Counter.value t.c_unmatched - t.unmatched_base

let quarantined t =
  List.length
    (List.filter
       (fun b -> b.tenant.Tenant.health = Tenant.Quarantined)
       t.bindings)
