module Time = Sim.Time

type entry = { at : Time.t; kind : string; detail : string }

type t = { mutable entries_rev : entry list; mutable n : int }

let create () = { entries_rev = []; n = 0 }

let record t ~at ~kind ~detail =
  t.entries_rev <- { at; kind; detail } :: t.entries_rev;
  t.n <- t.n + 1

let entries t = List.rev t.entries_rev
let length t = t.n

let count_kind t kind =
  List.fold_left
    (fun acc e -> if String.equal e.kind kind then acc + 1 else acc)
    0 t.entries_rev

let equal a b =
  a.n = b.n
  && List.for_all2
       (fun x y ->
         x.at = y.at && String.equal x.kind y.kind
         && String.equal x.detail y.detail)
       a.entries_rev b.entries_rev

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %s: %s" Time.pp e.at e.kind e.detail
