(** Replays a {!Plan} deterministically on the sim loop.

    Window open/close transitions are scheduled as loop events at install
    time; packet-level decisions draw from the injector's private RNG
    (seeded from the plan) in deterministic simulation order, so two runs
    of the same seeded plan inject byte-identical fault sequences.  Every
    transition and packet effect is appended to a {!Log} and emitted on
    [Sim.Trace] under component ["fault"] (Info for windows, Debug for
    per-packet effects). *)

type host = {
  h_addr : int;
  h_nic : Nic.t;
  h_machine : Cpu.Sched.machine;
  h_control : Control.t;
  h_group : Engine.group;
  h_engines : Engine.t list;
      (** Indexed by [Plan.Engine_crash.engine] /
          [Plan.Engine_wedge.engine]. *)
  h_crash : (unit -> unit) option;
      (** Kill the whole host: detach engines, destroy transport and
          client state, release pool charges.  Required (with
          [h_restart]) for [Plan.Host_crash] to target this host; the
          fault layer cannot depend on the transport, so the host
          supplies the closure ({!Snap.Host.fault_host} wires both). *)
  h_restart : (unit -> unit) option;
      (** Bring the host back with a fresh incarnation number. *)
  h_byzantine :
    (tenant:string ->
    rng:Sim.Rng.t ->
    behaviors:Plan.byzantine list ->
    until:Sim.Time.t ->
    bool)
    option;
      (** Launch a hostile guest driver against the named tenant's
          rings until [until], drawing randomness from [rng] (a stream
          split off the injector's, one per attack).  [false] means the
          tenant is unknown and the attack is skipped.  Required for
          [Plan.Guest_byzantine] to target this host;
          {!Snap.Host.fault_host} wires it to [Snap.Byzantine]. *)
}

type t

val install :
  loop:Sim.Loop.t -> plan:Plan.t -> fabric:Fabric.t -> hosts:host list -> t
(** Schedules every plan event and claims the fabric's fault hook.  Call
    before running the loop.  Hosts only need to cover the addresses the
    plan targets with host-level faults. *)

val log : t -> Log.t

val counters : t -> (string * int) list
(** Per-fault-kind injection counts, e.g. [("loss_drops", 17)]. *)
