(** Declarative fault plans.

    A plan is a seed plus a list of timed events; the {!Injector} replays
    it on the sim loop.  All times are absolute virtual time.  Hosts and
    egress ports are fabric addresses; [port n] faults affect traffic
    *toward* host [n] at the switch's egress, where drop-tail loss also
    lives. *)

type event =
  | Link_blackout of {
      a : int;
      b : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
    }
      (** All packets between hosts [a] and [b] (both directions) are
          dropped during the window: a link flap. *)
  | Link_blackout_oneway of {
      src : int;
      dst : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
    }
      (** Asymmetric (half-open) partition: packets from [src] to [dst]
          are dropped during the window, while the reverse direction
          still flows — so [src] hears [dst] but [dst] never hears
          [src].  The nastier real-world case: one side sees a healthy
          peer while the other declares it dead. *)
  | Burst_loss of {
      port : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
      loss_pct : float;
    }  (** Random loss at the given rate on one egress port. *)
  | Reorder of {
      port : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
      reorder_pct : float;
      max_delay : Sim.Time.t;
    }
      (** A fraction of packets is held for a random extra delay up to
          [max_delay] before egress queueing, jumping the queue order. *)
  | Corrupt of {
      port : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
      corrupt_pct : float;
    }
      (** A fraction of packets is delivered with a poisoned payload; the
          transport's end-to-end check must drop and retransmit. *)
  | Rx_stall of {
      host : int;
      queue : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
    }
      (** The host NIC's rx queue stops posting packets for the window
          (PCIe hiccup, host memory pressure); arrivals are deferred, not
          lost. *)
  | Engine_crash of {
      host : int;
      engine : int;
      start : Sim.Time.t;
      restart_after : Sim.Time.t;
    }
      (** The engine detaches from its group at [start]; the control
          plane reloads it [restart_after] later (plus one RPC round
          trip).  Queued inputs survive.  If the engine is already
          detached at [start] (mid-blackout of an upgrade transaction),
          the in-flight instance is marked failed instead — the owner
          observes this at commit and rolls back. *)
  | Straggler of {
      host : int;
      start : Sim.Time.t;
      duration : Sim.Time.t;
      slowdown : float;
    }
      (** Every per-core cost on the host is inflated by [slowdown]
          (>= 1.0) during the window. *)
  | Engine_wedge of { host : int; engine : int; start : Sim.Time.t }
      (** The engine's thread starts spinning at [start] without
          servicing its mailbox or run function — a silent failure the
          control plane can only detect by missed heartbeats
          ({!Control.Watchdog}).  Cleared when the engine is reloaded. *)
  | Host_crash of { host : int; start : Sim.Time.t; restart_after : Sim.Time.t }
      (** The whole host dies at [start]: every engine detaches, all
          transport and client state (connections, flows, in-flight
          ops, pool charges) is destroyed, and in-flight packets to and
          from the host are lost.  [restart_after] later the host comes
          back with a {e fresh incarnation number}; peers reject
          packets stamped with the old incarnation, so pre-crash flows
          cannot be resurrected.  Requires crash/restart hooks on the
          registered host (see {!Injector.host}). *)
  | Guest_byzantine of {
      host : int;
      tenant : string;  (** The tenant name used at attach. *)
      start : Sim.Time.t;
      duration : Sim.Time.t;
      behaviors : byzantine list;
    }
      (** The named guest tenant's driver turns hostile for the window,
          abusing its shared-memory rings through the unchecked
          [Guest.Ring] raw surface.  The host must validate at its own
          boundary: malformed descriptors complete [Failed], corrupt
          rings stop draining, violations accumulate until the tenant
          is quarantined.  Requires the byzantine hook on the
          registered host (see {!Injector.host}). *)

(** One hostile behavior; a byzantine guest runs any mix. *)
and byzantine =
  | Bad_desc_range
      (** Descriptors with garbage id/off/len outside the region. *)
  | Desc_id_alias
      (** Pairs of descriptors sharing an id, aliasing one in flight. *)
  | Avail_rollback  (** The avail index moves backwards. *)
  | Avail_runahead
      (** The avail index jumps past capacity over unwritten slots. *)
  | Reap_withhold
      (** Valid descriptors posted forever, used entries never reaped:
          overcommits the ring until the host refuses to take. *)
  | Kick_storm of { hz : float }
      (** Doorbell interrupts at [hz] with nothing posted. *)

val byzantine_to_string : byzantine -> string

type t

val validate : event -> unit
(** Reject nonsense events: negative start times or targets,
    non-positive durations, rates outside [\[0, 100\]], slowdowns below
    1.  Raises [Invalid_argument] with a message naming the offending
    field.  {!make} calls this on every event. *)

val make : ?seed:int -> event list -> t
(** Validates every event ([Invalid_argument] on nonsense windows or
    rates).  [seed] (default 42) drives all per-packet randomness. *)

val empty : t
val seed : t -> int
val events : t -> event list
val is_empty : t -> bool
val pp_event : Format.formatter -> event -> unit
