module Time = Sim.Time

type event =
  | Link_blackout of {
      a : int;
      b : int;
      start : Time.t;
      duration : Time.t;
    }
  | Link_blackout_oneway of {
      src : int;
      dst : int;
      start : Time.t;
      duration : Time.t;
    }
  | Burst_loss of {
      port : int;
      start : Time.t;
      duration : Time.t;
      loss_pct : float;
    }
  | Reorder of {
      port : int;
      start : Time.t;
      duration : Time.t;
      reorder_pct : float;
      max_delay : Time.t;
    }
  | Corrupt of {
      port : int;
      start : Time.t;
      duration : Time.t;
      corrupt_pct : float;
    }
  | Rx_stall of {
      host : int;
      queue : int;
      start : Time.t;
      duration : Time.t;
    }
  | Engine_crash of {
      host : int;
      engine : int;
      start : Time.t;
      restart_after : Time.t;
    }
  | Straggler of {
      host : int;
      start : Time.t;
      duration : Time.t;
      slowdown : float;
    }
  | Engine_wedge of { host : int; engine : int; start : Time.t }
  | Host_crash of { host : int; start : Time.t; restart_after : Time.t }
  | Guest_byzantine of {
      host : int;
      tenant : string;
      start : Time.t;
      duration : Time.t;
      behaviors : byzantine list;
    }

and byzantine =
  | Bad_desc_range
  | Desc_id_alias
  | Avail_rollback
  | Avail_runahead
  | Reap_withhold
  | Kick_storm of { hz : float }

let byzantine_to_string = function
  | Bad_desc_range -> "bad-desc-range"
  | Desc_id_alias -> "desc-id-alias"
  | Avail_rollback -> "avail-rollback"
  | Avail_runahead -> "avail-runahead"
  | Reap_withhold -> "reap-withhold"
  | Kick_storm { hz } -> Printf.sprintf "kick-storm@%.0fHz" hz

type t = { seed : int; evs : event list }

let pct_ok p = p >= 0.0 && p <= 100.0

let validate = function
  | Link_blackout { a; b; start; duration } ->
      if a < 0 || b < 0 || a = b then invalid_arg "Fault.Plan: blackout hosts";
      if start < 0 || duration <= 0 then invalid_arg "Fault.Plan: blackout window"
  | Link_blackout_oneway { src; dst; start; duration } ->
      if src < 0 || dst < 0 || src = dst then
        invalid_arg "Fault.Plan: oneway blackout hosts";
      if start < 0 || duration <= 0 then
        invalid_arg "Fault.Plan: oneway blackout window"
  | Burst_loss { port; start; duration; loss_pct } ->
      if port < 0 then invalid_arg "Fault.Plan: loss port";
      if start < 0 || duration <= 0 then invalid_arg "Fault.Plan: loss window";
      if not (pct_ok loss_pct) then invalid_arg "Fault.Plan: loss_pct"
  | Reorder { port; start; duration; reorder_pct; max_delay } ->
      if port < 0 then invalid_arg "Fault.Plan: reorder port";
      if start < 0 || duration <= 0 then invalid_arg "Fault.Plan: reorder window";
      if not (pct_ok reorder_pct) then invalid_arg "Fault.Plan: reorder_pct";
      if max_delay <= 0 then invalid_arg "Fault.Plan: reorder max_delay"
  | Corrupt { port; start; duration; corrupt_pct } ->
      if port < 0 then invalid_arg "Fault.Plan: corrupt port";
      if start < 0 || duration <= 0 then invalid_arg "Fault.Plan: corrupt window";
      if not (pct_ok corrupt_pct) then invalid_arg "Fault.Plan: corrupt_pct"
  | Rx_stall { host; queue; start; duration } ->
      if host < 0 || queue < 0 then invalid_arg "Fault.Plan: rx_stall target";
      if start < 0 || duration <= 0 then invalid_arg "Fault.Plan: rx_stall window"
  | Engine_crash { host; engine; start; restart_after } ->
      if host < 0 || engine < 0 then invalid_arg "Fault.Plan: crash target";
      if start < 0 || restart_after <= 0 then invalid_arg "Fault.Plan: crash times"
  | Straggler { host; start; duration; slowdown } ->
      if host < 0 then invalid_arg "Fault.Plan: straggler host";
      if start < 0 || duration <= 0 then
        invalid_arg "Fault.Plan: straggler window";
      if slowdown < 1.0 then invalid_arg "Fault.Plan: straggler slowdown"
  | Engine_wedge { host; engine; start } ->
      if host < 0 || engine < 0 then invalid_arg "Fault.Plan: wedge target";
      if start < 0 then invalid_arg "Fault.Plan: wedge start"
  | Host_crash { host; start; restart_after } ->
      if host < 0 then invalid_arg "Fault.Plan: host crash target";
      if start < 0 || restart_after <= 0 then
        invalid_arg "Fault.Plan: host crash times"
  | Guest_byzantine { host; tenant; start; duration; behaviors } ->
      if host < 0 then invalid_arg "Fault.Plan: byzantine host";
      if tenant = "" then invalid_arg "Fault.Plan: byzantine tenant";
      if start < 0 || duration <= 0 then
        invalid_arg "Fault.Plan: byzantine window";
      if behaviors = [] then invalid_arg "Fault.Plan: byzantine behaviors";
      List.iter
        (function
          | Kick_storm { hz } ->
              if hz <= 0.0 then invalid_arg "Fault.Plan: kick_storm hz"
          | Bad_desc_range | Desc_id_alias | Avail_rollback | Avail_runahead
          | Reap_withhold ->
              ())
        behaviors

let make ?(seed = 42) events =
  List.iter validate events;
  { seed; evs = events }

let empty = { seed = 42; evs = [] }
let seed t = t.seed
let events t = t.evs
let is_empty t = t.evs = []

let pp_event fmt = function
  | Link_blackout { a; b; start; duration } ->
      Format.fprintf fmt "blackout %d<->%d @%a for %a" a b Time.pp start Time.pp
        duration
  | Link_blackout_oneway { src; dst; start; duration } ->
      Format.fprintf fmt "blackout %d->%d (one-way) @%a for %a" src dst Time.pp
        start Time.pp duration
  | Burst_loss { port; start; duration; loss_pct } ->
      Format.fprintf fmt "loss %.1f%% port %d @%a for %a" loss_pct port Time.pp
        start Time.pp duration
  | Reorder { port; start; duration; reorder_pct; max_delay } ->
      Format.fprintf fmt "reorder %.1f%% (<=%a) port %d @%a for %a" reorder_pct
        Time.pp max_delay port Time.pp start Time.pp duration
  | Corrupt { port; start; duration; corrupt_pct } ->
      Format.fprintf fmt "corrupt %.1f%% port %d @%a for %a" corrupt_pct port
        Time.pp start Time.pp duration
  | Rx_stall { host; queue; start; duration } ->
      Format.fprintf fmt "rx-stall host %d q%d @%a for %a" host queue Time.pp
        start Time.pp duration
  | Engine_crash { host; engine; start; restart_after } ->
      Format.fprintf fmt "crash host %d engine %d @%a restart after %a" host
        engine Time.pp start Time.pp restart_after
  | Straggler { host; start; duration; slowdown } ->
      Format.fprintf fmt "straggler host %d x%.1f @%a for %a" host slowdown
        Time.pp start Time.pp duration
  | Engine_wedge { host; engine; start } ->
      Format.fprintf fmt "wedge host %d engine %d @%a" host engine Time.pp
        start
  | Host_crash { host; start; restart_after } ->
      Format.fprintf fmt "host-crash %d @%a restart after %a" host Time.pp
        start Time.pp restart_after
  | Guest_byzantine { host; tenant; start; duration; behaviors } ->
      Format.fprintf fmt "byzantine guest %s@%d [%s] @%a for %a" tenant host
        (String.concat "," (List.map byzantine_to_string behaviors))
        Time.pp start Time.pp duration
