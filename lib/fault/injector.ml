module Time = Sim.Time
module Loop = Sim.Loop
module Rng = Sim.Rng
module Trace = Sim.Trace
module Packet = Memory.Packet
module Sched = Cpu.Sched

type host = {
  h_addr : int;
  h_nic : Nic.t;
  h_machine : Sched.machine;
  h_control : Control.t;
  h_group : Engine.group;
  h_engines : Engine.t list;
  (* Whole-host crash/restart hooks for [Plan.Host_crash].  The fault
     layer cannot depend on the transport, so the host supplies
     closures (Snap.Host.fault_host wires them); [None] means the host
     does not support crash injection and a Host_crash targeting it is
     a plan error. *)
  h_crash : (unit -> unit) option;
  h_restart : (unit -> unit) option;
  (* Byzantine-guest hook for [Plan.Guest_byzantine]: launch a hostile
     driver against the named tenant's rings until [until].  Returns
     false when the tenant is unknown (the attack is skipped, not an
     error — the tenant may have detached before the window).  Same
     layering as the crash hooks: the fault layer cannot depend on the
     guest edge, so the host supplies the closure. *)
  h_byzantine :
    (tenant:string ->
    rng:Rng.t ->
    behaviors:Plan.byzantine list ->
    until:Time.t ->
    bool)
    option;
}

(* Fabric-level fault windows active right now.  Toggled by loop events
   scheduled at install time, so at any instant membership is a pure
   function of the plan — the hook below only consults this list and the
   injector's private RNG stream. *)
type window =
  | W_blackout of int * int
  | W_blackout_oneway of int * int  (* drops src -> dst only *)
  | W_loss of int * float
  | W_reorder of int * float * Time.t
  | W_corrupt of int * float

type t = {
  lp : Loop.t;
  fabric : Fabric.t;
  hosts : host list;
  rng : Rng.t;
  log : Log.t;
  mutable active : (int * window) list;
  mutable next_wid : int;
  (* Registry-backed counters, in registration order.  The registry
     entries ("fault_<name>") are cumulative across injector instances;
     the baseline snapshot taken at install time keeps [counters]
     per-instance. *)
  cnt : (string * (Stats.Counter.t * int)) list;
}

let counter_names =
  [
    "blackout_drops";
    "loss_drops";
    "reorder_delays";
    "corruptions";
    "rx_stalls";
    "engine_crashes";
    "engine_restarts";
    "straggler_windows";
    "engine_wedges";
    "host_crashes";
    "host_restarts";
    "guest_attacks";
  ]

let bump t key =
  match List.assoc_opt key t.cnt with
  | Some (c, _) -> Stats.Counter.incr c
  | None -> invalid_arg ("Fault.Injector.bump: " ^ key)

let component = "fault"

let record t ~kind detail =
  Log.record t.log ~at:(Loop.now t.lp) ~kind ~detail;
  Trace.emit t.lp Trace.Debug ~component "%s %s" kind detail

let announce t ~kind detail =
  Log.record t.log ~at:(Loop.now t.lp) ~kind ~detail;
  if Sim.Span.enabled () then
    Sim.Span.emit t.lp ~cat:"fault" ~track:"fault"
      ~args:[ ("detail", detail) ]
      kind;
  Trace.emit t.lp Trace.Info ~component "%s %s" kind detail

let find_host t addr =
  match List.find_opt (fun h -> h.h_addr = addr) t.hosts with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Fault.Injector: no host %d" addr)

let nth_engine h ~host ~engine =
  match List.nth_opt h.h_engines engine with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Fault.Injector: host %d has no engine %d" host engine)

let pkt_detail (pkt : Packet.t) =
  Printf.sprintf "pkt#%d %d->%d" pkt.Packet.id pkt.Packet.src pkt.Packet.dst

(* The single fabric hook: consulted once per packet at egress enqueue,
   in deterministic simulation order.  Window kinds are checked in a
   fixed severity order (blackout, loss, corruption, reordering) and RNG
   draws happen only for windows that match the packet, so the random
   stream is identical across runs of the same plan. *)
let hook t (pkt : Packet.t) =
  if t.active = [] then Fabric.Fault_pass
  else begin
    let src = pkt.Packet.src and dst = pkt.Packet.dst in
    let matching f = List.find_opt (fun (_, w) -> f w) t.active in
    let blackout =
      matching (function
        | W_blackout (a, b) -> (src = a && dst = b) || (src = b && dst = a)
        | W_blackout_oneway (s, d) -> src = s && dst = d
        | _ -> false)
    in
    match blackout with
    | Some _ ->
        bump t "blackout_drops";
        record t ~kind:"blackout-drop" (pkt_detail pkt);
        Fabric.Fault_drop
    | None -> (
        let lossy =
          matching (function W_loss (p, _) -> p = dst | _ -> false)
        in
        match lossy with
        | Some (_, W_loss (_, pct)) when Rng.float t.rng 100.0 < pct ->
            bump t "loss_drops";
            record t ~kind:"loss-drop" (pkt_detail pkt);
            Fabric.Fault_drop
        | _ -> (
            let corrupting =
              matching (function W_corrupt (p, _) -> p = dst | _ -> false)
            in
            match corrupting with
            | Some (_, W_corrupt (_, pct)) when Rng.float t.rng 100.0 < pct ->
                bump t "corruptions";
                record t ~kind:"corrupt" (pkt_detail pkt);
                Fabric.Fault_corrupt
            | _ -> (
                let reordering =
                  matching (function W_reorder (p, _, _) -> p = dst | _ -> false)
                in
                match reordering with
                | Some (_, W_reorder (_, pct, max_delay))
                  when Rng.float t.rng 100.0 < pct ->
                    let d = 1 + Rng.int t.rng max_delay in
                    bump t "reorder_delays";
                    record t ~kind:"reorder-delay"
                      (Printf.sprintf "%s +%dns" (pkt_detail pkt) d);
                    Fabric.Fault_delay d
                | _ -> Fabric.Fault_pass)))
  end

let open_window t w =
  let wid = t.next_wid in
  t.next_wid <- wid + 1;
  t.active <- t.active @ [ (wid, w) ];
  wid

let close_window t wid =
  t.active <- List.filter (fun (id, _) -> id <> wid) t.active

let schedule_fabric_window t ~start ~duration ~kind ~detail w =
  ignore
    (Loop.at t.lp start (fun () ->
         let wid = open_window t w in
         announce t ~kind:(kind ^ "-start") detail;
         ignore
           (Loop.at t.lp (Time.add start duration) (fun () ->
                close_window t wid;
                announce t ~kind:(kind ^ "-end") detail))))

let schedule t (ev : Plan.event) =
  match ev with
  | Plan.Link_blackout { a; b; start; duration } ->
      schedule_fabric_window t ~start ~duration ~kind:"blackout"
        ~detail:(Printf.sprintf "link %d<->%d" a b)
        (W_blackout (a, b))
  | Plan.Link_blackout_oneway { src; dst; start; duration } ->
      schedule_fabric_window t ~start ~duration ~kind:"blackout-oneway"
        ~detail:(Printf.sprintf "link %d->%d" src dst)
        (W_blackout_oneway (src, dst))
  | Plan.Burst_loss { port; start; duration; loss_pct } ->
      schedule_fabric_window t ~start ~duration ~kind:"loss"
        ~detail:(Printf.sprintf "port %d %.1f%%" port loss_pct)
        (W_loss (port, loss_pct))
  | Plan.Reorder { port; start; duration; reorder_pct; max_delay } ->
      schedule_fabric_window t ~start ~duration ~kind:"reorder"
        ~detail:(Printf.sprintf "port %d %.1f%%" port reorder_pct)
        (W_reorder (port, reorder_pct, max_delay))
  | Plan.Corrupt { port; start; duration; corrupt_pct } ->
      schedule_fabric_window t ~start ~duration ~kind:"corrupt"
        ~detail:(Printf.sprintf "port %d %.1f%%" port corrupt_pct)
        (W_corrupt (port, corrupt_pct))
  | Plan.Rx_stall { host; queue; start; duration } ->
      let h = find_host t host in
      ignore
        (Loop.at t.lp start (fun () ->
             Nic.stall_rx h.h_nic ~queue ~until:(Time.add start duration);
             bump t "rx_stalls";
             announce t ~kind:"rx-stall"
               (Format.asprintf "host %d q%d for %a" host queue Time.pp
                  duration)))
  | Plan.Engine_crash { host; engine; start; restart_after } ->
      let h = find_host t host in
      let eng = nth_engine h ~host ~engine in
      ignore
        (Loop.at t.lp start (fun () ->
             if Engine.is_attached eng then begin
               Engine.remove h.h_group eng;
               bump t "engine_crashes";
               announce t ~kind:"engine-crash"
                 (Printf.sprintf "host %d engine %d" host engine);
               Control.recover_engine h.h_control ~group:h.h_group eng
                 ~after:restart_after ~on_recovered:(fun () ->
                   bump t "engine_restarts";
                   announce t ~kind:"engine-restart"
                     (Printf.sprintf "host %d engine %d" host engine))
             end
             else begin
               (* The engine is detached — mid-blackout of an upgrade
                  transaction (or already crashed).  Mark the in-flight
                  instance failed so the owning transaction aborts at
                  commit time; do not schedule a recovery of our own,
                  the owner handles the restart. *)
               Engine.mark_failed eng;
               bump t "engine_crashes";
               announce t ~kind:"engine-crash-inflight"
                 (Printf.sprintf "host %d engine %d" host engine)
             end))
  | Plan.Engine_wedge { host; engine; start } ->
      let h = find_host t host in
      let eng = nth_engine h ~host ~engine in
      ignore
        (Loop.at t.lp start (fun () ->
             if Engine.is_attached eng && not (Engine.is_wedged eng) then begin
               Engine.set_wedged eng true;
               Engine.notify eng;
               bump t "engine_wedges";
               announce t ~kind:"engine-wedge"
                 (Printf.sprintf "host %d engine %d" host engine)
             end))
  | Plan.Host_crash { host; start; restart_after } ->
      let h = find_host t host in
      let crash, restart =
        match (h.h_crash, h.h_restart) with
        | Some c, Some r -> (c, r)
        | _ ->
            invalid_arg
              (Printf.sprintf
                 "Fault.Injector: host %d has no crash/restart hooks" host)
      in
      ignore
        (Loop.at t.lp start (fun () ->
             crash ();
             bump t "host_crashes";
             announce t ~kind:"host-crash" (Printf.sprintf "host %d" host);
             ignore
               (Loop.at t.lp (Time.add start restart_after) (fun () ->
                    restart ();
                    bump t "host_restarts";
                    announce t ~kind:"host-restart"
                      (Printf.sprintf "host %d" host)))))
  | Plan.Guest_byzantine { host; tenant; start; duration; behaviors } ->
      let h = find_host t host in
      let launch =
        match h.h_byzantine with
        | Some f -> f
        | None ->
            invalid_arg
              (Printf.sprintf "Fault.Injector: host %d has no byzantine hook"
                 host)
      in
      (* A split stream per attack: the hostile driver's draws never
         perturb the packet hook's stream (or another attack's), so
         fault sequences stay byte-identical per plan. *)
      let rng = Rng.split t.rng in
      let until = Time.add start duration in
      let detail =
        Printf.sprintf "tenant %s host %d [%s]" tenant host
          (String.concat "," (List.map Plan.byzantine_to_string behaviors))
      in
      ignore
        (Loop.at t.lp start (fun () ->
             if launch ~tenant ~rng ~behaviors ~until then begin
               bump t "guest_attacks";
               announce t ~kind:"byzantine-start" detail;
               ignore
                 (Loop.at t.lp until (fun () ->
                      announce t ~kind:"byzantine-end" detail))
             end
             else announce t ~kind:"byzantine-skip" detail))
  | Plan.Straggler { host; start; duration; slowdown } ->
      let h = find_host t host in
      ignore
        (Loop.at t.lp start (fun () ->
             Sched.set_cost_scale h.h_machine slowdown;
             bump t "straggler_windows";
             announce t ~kind:"straggler-start"
               (Printf.sprintf "host %d x%.1f" host slowdown);
             ignore
               (Loop.at t.lp (Time.add start duration) (fun () ->
                    Sched.set_cost_scale h.h_machine 1.0;
                    announce t ~kind:"straggler-end"
                      (Printf.sprintf "host %d" host)))))

let install ~loop ~plan ~fabric ~hosts =
  let t =
    {
      lp = loop;
      fabric;
      hosts;
      rng = Rng.create ~seed:(Plan.seed plan);
      log = Log.create ();
      active = [];
      next_wid = 0;
      cnt =
        List.map
          (fun n ->
            let c = Stats.Registry.counter ("fault_" ^ n) in
            (n, (c, Stats.Counter.value c)))
          counter_names;
    }
  in
  List.iter (schedule t) (Plan.events plan);
  Fabric.set_fault_hook fabric (hook t);
  t

let log t = t.log

let counters t =
  List.map
    (fun (n, (c, base)) -> (n, Stats.Counter.value c - base))
    t.cnt
