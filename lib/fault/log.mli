(** Queryable record of every injected fault.

    The injector appends one entry per plan-event transition and per
    packet-level effect, in virtual-time order.  Because entries are
    plain data, two runs of the same seeded plan can be compared for
    byte-identical fault sequences — the determinism check the chaos
    workload relies on. *)

type entry = { at : Sim.Time.t; kind : string; detail : string }

type t

val create : unit -> t
val record : t -> at:Sim.Time.t -> kind:string -> detail:string -> unit
val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val count_kind : t -> string -> int
val equal : t -> t -> bool
(** Structural equality of the full entry sequences. *)

val pp_entry : Format.formatter -> entry -> unit
