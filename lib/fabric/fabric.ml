module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

type config = {
  link_gbps : float;
  propagation : Time.t;
  switch_latency : Time.t;
  egress_buffer_bytes : int;
  qos_classes : int;
}

let default_config =
  {
    link_gbps = 100.0;
    propagation = Time.ns 500;
    switch_latency = Time.ns 300;
    egress_buffer_bytes = 1024 * 1024;
    qos_classes = 4;
  }

type fault_action =
  | Fault_pass
  | Fault_drop
  | Fault_corrupt
  | Fault_delay of Time.t

type port = {
  class_queues : Packet.t Queue.t array;
  class_bytes : int array;
  mutable draining : bool;
  mutable p_drops : int;
  mutable p_max_bytes : int;
}

type t = {
  lp : Loop.t;
  cfg : config;
  ports : port array;
  rx_handlers : (Packet.t -> unit) option array;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable bytes_delivered : int;
  mutable fault_hook : Packet.t -> fault_action;
  mutable n_fault_dropped : int;
  mutable n_fault_corrupted : int;
  mutable n_fault_delayed : int;
}

let create ~loop ~config ~hosts =
  if hosts <= 0 then invalid_arg "Fabric.create: hosts";
  if config.qos_classes <= 0 then invalid_arg "Fabric.create: qos_classes";
  {
    lp = loop;
    cfg = config;
    ports =
      Array.init hosts (fun _ ->
          {
            class_queues = Array.init config.qos_classes (fun _ -> Queue.create ());
            class_bytes = Array.make config.qos_classes 0;
            draining = false;
            p_drops = 0;
            p_max_bytes = 0;
          });
    rx_handlers = Array.make hosts None;
    n_delivered = 0;
    n_dropped = 0;
    bytes_delivered = 0;
    fault_hook = (fun _ -> Fault_pass);
    n_fault_dropped = 0;
    n_fault_corrupted = 0;
    n_fault_delayed = 0;
  }

let config t = t.cfg
let num_hosts t = Array.length t.ports

let attach t ~addr ~rx =
  if addr < 0 || addr >= Array.length t.rx_handlers then
    invalid_arg "Fabric.attach: bad addr";
  match t.rx_handlers.(addr) with
  | Some _ -> invalid_arg "Fabric.attach: already attached"
  | None -> t.rx_handlers.(addr) <- Some rx

let set_fault_hook t hook = t.fault_hook <- hook
let clear_fault_hook t = t.fault_hook <- (fun _ -> Fault_pass)

let wire_time cfg bytes =
  int_of_float (Float.round (float_of_int bytes *. 8.0 /. cfg.link_gbps))

let deliver t (pkt : Packet.t) =
  match t.rx_handlers.(pkt.Packet.dst) with
  | Some rx ->
      t.n_delivered <- t.n_delivered + 1;
      t.bytes_delivered <- t.bytes_delivered + pkt.Packet.wire_bytes;
      rx pkt
  | None ->
      t.n_dropped <- t.n_dropped + 1;
      let port = t.ports.(pkt.Packet.dst) in
      port.p_drops <- port.p_drops + 1

(* Strict-priority drain of one egress port: serialize the head packet of
   the highest non-empty class, then propagate it to the host. *)
let rec drain_port t port =
  let rec pick cls =
    if cls >= t.cfg.qos_classes then None
    else if Queue.is_empty port.class_queues.(cls) then pick (cls + 1)
    else Some cls
  in
  match pick 0 with
  | None -> port.draining <- false
  | Some cls ->
      port.draining <- true;
      let pkt = Queue.take port.class_queues.(cls) in
      port.class_bytes.(cls) <- port.class_bytes.(cls) - pkt.Packet.wire_bytes;
      let ser = wire_time t.cfg pkt.Packet.wire_bytes in
      ignore
        (Loop.after t.lp ser (fun () ->
             ignore
               (Loop.after t.lp t.cfg.propagation (fun () -> deliver t pkt));
             drain_port t port))

let rec enqueue_egress t (pkt : Packet.t) =
  let port = t.ports.(pkt.Packet.dst) in
  match t.fault_hook pkt with
  | Fault_drop ->
      t.n_fault_dropped <- t.n_fault_dropped + 1;
      port.p_drops <- port.p_drops + 1
  | Fault_delay d ->
      t.n_fault_delayed <- t.n_fault_delayed + 1;
      ignore (Loop.after t.lp d (fun () -> enqueue_port t port pkt))
  | Fault_corrupt ->
      t.n_fault_corrupted <- t.n_fault_corrupted + 1;
      pkt.Packet.corrupted <- true;
      enqueue_port t port pkt
  | Fault_pass -> enqueue_port t port pkt

and enqueue_port t port (pkt : Packet.t) =
  let cls =
    let c = pkt.Packet.qos in
    if c < 0 then 0 else if c >= t.cfg.qos_classes then t.cfg.qos_classes - 1 else c
  in
  if port.class_bytes.(cls) + pkt.Packet.wire_bytes > t.cfg.egress_buffer_bytes
  then begin
    t.n_dropped <- t.n_dropped + 1;
    port.p_drops <- port.p_drops + 1
  end
  else begin
    Queue.add pkt port.class_queues.(cls);
    port.class_bytes.(cls) <- port.class_bytes.(cls) + pkt.Packet.wire_bytes;
    let depth = Array.fold_left ( + ) 0 port.class_bytes in
    if depth > port.p_max_bytes then port.p_max_bytes <- depth;
    if not port.draining then drain_port t port
  end

let send t (pkt : Packet.t) =
  if pkt.Packet.dst < 0 || pkt.Packet.dst >= Array.length t.ports then
    invalid_arg "Fabric.send: bad dst";
  let transit = Time.add t.cfg.propagation t.cfg.switch_latency in
  ignore (Loop.after t.lp transit (fun () -> enqueue_egress t pkt))

let delivered t = t.n_delivered
let dropped t = t.n_dropped
let delivered_bytes t = t.bytes_delivered
let fault_dropped t = t.n_fault_dropped
let fault_corrupted t = t.n_fault_corrupted
let fault_delayed t = t.n_fault_delayed

let port_queue_bytes t ~addr =
  Array.fold_left ( + ) 0 t.ports.(addr).class_bytes

let port_drops t ~addr = t.ports.(addr).p_drops
let port_max_queue_bytes t ~addr = t.ports.(addr).p_max_bytes
