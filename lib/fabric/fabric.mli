(** Datacenter fabric: hosts attached to a top-of-rack switch.

    The evaluation's topologies are racks of machines under a single ToR
    (§5.1, §5.2), which is what this models: every host has a full-duplex
    link to the switch; the switch is store-and-forward with a fixed
    forwarding latency and per-egress-port drop-tail queues, one per QoS
    class with strict priority (Pony Express runs on its own class,
    §3.1).  Uplink serialization is modeled by the sender's NIC; this
    module models propagation, forwarding, egress queueing, egress
    serialization, and loss. *)

type t

type config = {
  link_gbps : float;  (** Host link rate, both directions. *)
  propagation : Sim.Time.t;  (** One-way host-to-switch propagation. *)
  switch_latency : Sim.Time.t;  (** Forwarding latency per packet. *)
  egress_buffer_bytes : int;  (** Drop-tail capacity per port per class. *)
  qos_classes : int;  (** Number of strict-priority classes (0 = highest). *)
}

val default_config : config
(** 100 Gbps links, 500 ns propagation, 300 ns forwarding, 1 MiB buffers,
    4 QoS classes. *)

val create : loop:Sim.Loop.t -> config:config -> hosts:int -> t

val config : t -> config
val num_hosts : t -> int

val attach : t -> addr:Memory.Packet.addr -> rx:(Memory.Packet.t -> unit) -> unit
(** Register the receive callback for a host (its NIC).  Must be called
    exactly once per host before traffic flows to it. *)

(** {1 Fault injection}

    A single hook consulted at egress enqueue, the point where the switch
    commits a packet to a destination port.  Fault injection (lib/fault)
    uses it to model link blackouts, bursty loss, reordering and
    corruption without the fabric knowing about plans or windows. *)

type fault_action =
  | Fault_pass  (** Forward normally (the default hook's only answer). *)
  | Fault_drop  (** Silently discard, as a lossy link would. *)
  | Fault_corrupt
      (** Deliver with [corrupted] set; the transport's end-to-end check
          must catch it. *)
  | Fault_delay of Sim.Time.t
      (** Hold the packet before egress queueing, reordering it past
          later traffic. *)

val set_fault_hook : t -> (Memory.Packet.t -> fault_action) -> unit
val clear_fault_hook : t -> unit

val send : t -> Memory.Packet.t -> unit
(** Hand a packet to the fabric at the sender's uplink (the sender NIC
    has already paid tx serialization).  The packet is delivered to the
    destination's [rx] callback after propagation, switching, egress
    queueing and serialization — or dropped if the egress queue
    overflows. *)

(** {1 Telemetry} *)

val delivered : t -> int
val dropped : t -> int
val delivered_bytes : t -> int
val port_queue_bytes : t -> addr:Memory.Packet.addr -> int
(** Bytes currently queued toward the given host, all classes. *)

val port_drops : t -> addr:Memory.Packet.addr -> int
(** Packets lost on the egress toward the given host: drop-tail overflow,
    injected drops, and arrivals with no rx handler attached. *)

val port_max_queue_bytes : t -> addr:Memory.Packet.addr -> int
(** High-water mark of the egress queue toward the given host, all
    classes. *)

val fault_dropped : t -> int
val fault_corrupted : t -> int
val fault_delayed : t -> int
(** Totals of injected drop / corrupt / delay actions. *)
