type t = {
  loop : Sim.Loop.t;
  machine : Cpu.Sched.machine;
  nic : Nic.t;
  control : Control.t;
  group : Engine.group;
  pony : Pony.Express.t;
  poller : Control.Poller.t option;
  mutable mux : Guest.Mux.t option;
}

let create ~loop ~fabric ~directory ~addr ?(cores = 16) ?nic_config
    ?(mode = Engine.Dedicating { cores = 2 }) ?(engines = 1)
    ?(use_copy_engine = false) ?(costs = Sim.Costs.default) ?wire_versions
    ?op_pool_bytes ?keepalive ?poll_period () =
  let machine =
    Cpu.Sched.create_machine ~loop ~costs
      ~name:(Printf.sprintf "host%d" addr)
      ~cores
  in
  let nic_config = Option.value ~default:Nic.default_config nic_config in
  let nic = Nic.create ~loop ~machine ~fabric ~addr nic_config in
  let control =
    Control.create ~loop ~machine ~name:(Printf.sprintf "snap%d" addr)
  in
  let group = Engine.create_group ~machine ~name:"snap" ~mode in
  let pony =
    Pony.Express.create ~directory ~control ~machine ~nic ~group ~engines
      ~use_copy_engine ?wire_versions ?op_pool_bytes ?keepalive ()
  in
  (* Telemetry polling is opt-in: the periodic timer re-arms forever, so
     hosts sampled by default would keep an un-bounded [Sim.Loop.run]
     from ever going idle. *)
  let poller =
    match poll_period with
    | None -> None
    | Some period ->
        let p = Control.Poller.create ~control ~period () in
        for q = 0 to nic_config.Nic.num_rx_queues - 1 do
          let ring = Nic.rx_ring nic ~queue:q in
          Control.Poller.watch_queue p
            ~name:(Printf.sprintf "host%d/rxq%d" addr q)
            (fun () -> Squeue.Spsc.length ring)
        done;
        Control.Poller.start p;
        Some p
  in
  { loop; machine; nic; control; group; pony; poller; mux = None }

let poller t = t.poller

(* Fault-layer registration record for this host.  The fault library
   cannot depend on the transport, so the whole-host crash/restart
   hooks are closures over Pony's teardown (which detaches the engines
   itself). *)
let fault_host t =
  {
    Fault.Injector.h_addr = Nic.addr t.nic;
    h_nic = t.nic;
    h_machine = t.machine;
    h_control = t.control;
    h_group = t.group;
    h_engines =
      List.init (Pony.Express.num_engines t.pony)
        (Pony.Express.engine_handle t.pony);
    h_crash = Some (fun () -> Pony.Express.crash_host t.pony);
    h_restart = Some (fun () -> Pony.Express.restart_host t.pony);
    h_byzantine =
      Some
        (fun ~tenant ~rng ~behaviors ~until ->
          match t.mux with
          | None -> false
          | Some m -> (
              match
                List.find_opt
                  (fun tn -> tn.Guest.Tenant.tname = tenant)
                  (Guest.Mux.tenants m)
              with
              | None -> false
              | Some tn ->
                  Byzantine.launch ~loop:t.loop ~rng ~tenant:tn ~behaviors
                    ~until;
                  true));
  }

let spawn_app t ~name ?(klass = Cpu.Sched.Cfs { nice = 0 }) ?(spin = false)
    body =
  Cpu.Thread.spawn t.machine ~name ~account:"app" ~klass
    ~idle:(if spin then Cpu.Sched.Spin else Cpu.Sched.Block)
    body

(* -- Guest networking --------------------------------------------------- *)

let enable_guests ?(engines = 1) ?(mode = Engine.Spreading { runtime_pct = 0.9 })
    ?suspect_after ?quarantine_after t =
  match t.mux with
  | Some m -> m
  | None ->
      let m =
        Guest.Mux.create ~loop:t.loop ~pony:t.pony ~engines ~mode
          ?suspect_after ?quarantine_after ()
      in
      t.mux <- Some m;
      m

let guest_mux t = t.mux

let attach_tenant ctx t ~name ~dst_host ~dst_name ?ring_slots ?buf_bytes
    ?max_ops ?max_bytes ?rate_ops_per_sec ?burst_ops () =
  let m = enable_guests t in
  Guest.Mux.attach ctx m ~name ~dst_host ~dst_name ?ring_slots ?buf_bytes
    ?max_ops ?max_bytes ?rate_ops_per_sec ?burst_ops ()

let detach_tenant ?force t tenant =
  match t.mux with
  | None -> invalid_arg "Snap.Host.detach_tenant: guests never enabled"
  | Some m -> Guest.Mux.detach ?force m tenant

let snap_cpu_ns t = Cpu.Sched.account_busy_ns t.machine "snap"
let app_cpu_ns t = Cpu.Sched.account_busy_ns t.machine "app"
let softirq_cpu_ns t = Cpu.Sched.account_busy_ns t.machine "softirq"
let total_cpu_ns t = Cpu.Sched.busy_ns t.machine
