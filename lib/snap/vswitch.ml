module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

let batch = 16
let per_packet_cost = Time.ns 150

type Packet.payload += Vnet of { src_vip : int; dst_vip : int }

type guest = {
  vip : int;
  tx : Packet.t Squeue.Spsc.t;
  rx : Packet.t Squeue.Spsc.t;
  c_drops : Stats.Counter.t;  (* full-ring losses, either direction *)
  drops_base : int;
}

type t = {
  lp : Loop.t;
  nic : Nic.t;
  rxq : int;
  eng : Engine.t;
  routes : (int, Packet.addr) Hashtbl.t;
  guests : (int, guest) Hashtbl.t;
  mutable guest_list : guest list;
  gen : Packet.Id_gen.t;
  (* Registry counters are cumulative across vswitch instances sharing
     a host address; the [_base] snapshots keep accessors per-instance. *)
  c_forwarded : Stats.Counter.t;
  forwarded_base : int;
  c_unroutable : Stats.Counter.t;
  unroutable_base : int;
  c_to_guests : Stats.Counter.t;
  to_guests_base : int;
}

let host_labels t = [ ("host", string_of_int (Nic.addr t.nic)) ]

let run t () =
  let cost = ref Time.zero in
  let work = ref 0 in
  (* Guest -> NIC: rewrite virtual destination to physical host. *)
  List.iter
    (fun g ->
      let n = ref 0 in
      let go = ref true in
      while !go && !n < batch do
        match Squeue.Spsc.pop g.tx with
        | Some pkt -> (
            incr n;
            incr work;
            cost := Time.add !cost per_packet_cost;
            match pkt.Packet.payload with
            | Vnet { dst_vip; _ } -> (
                match Hashtbl.find_opt t.routes dst_vip with
                | Some host ->
                    let phys = { pkt with Packet.dst = host } in
                    if Nic.try_transmit t.nic phys then
                      Stats.Counter.incr t.c_forwarded
                    else Stats.Counter.incr t.c_unroutable
                | None -> Stats.Counter.incr t.c_unroutable)
            | _ -> Stats.Counter.incr t.c_unroutable)
        | None -> go := false
      done)
    t.guest_list;
  (* NIC -> guest: demultiplex on destination VIP. *)
  let ring = Nic.rx_ring t.nic ~queue:t.rxq in
  let n = ref 0 in
  let go = ref true in
  while !go && !n < batch do
    match Squeue.Spsc.pop ring with
    | Some pkt -> (
        incr n;
        incr work;
        cost := Time.add !cost per_packet_cost;
        match pkt.Packet.payload with
        | Vnet { dst_vip; _ } -> (
            match Hashtbl.find_opt t.guests dst_vip with
            | Some g ->
                if Squeue.Spsc.push g.rx ~now:(Loop.now t.lp) pkt then
                  Stats.Counter.incr t.c_to_guests
                else
                  (* Guest's receive ring is full: the packet is lost at
                     the port, exactly the drop the per-port counter is
                     for. *)
                  Stats.Counter.incr g.c_drops
            | None -> Stats.Counter.incr t.c_unroutable)
        | _ -> ())
    | None -> go := false
  done;
  if !work = 0 then Engine.No_work else Engine.Worked !cost

let create ~loop ~nic ~group ~rx_queue () =
  let t_ref = ref None in
  let eng =
    Engine.create ~name:"vswitch"
      ~run:(fun () ->
        match !t_ref with Some t -> run t () | None -> Engine.No_work)
      ~queue_delay:(fun now ->
        match !t_ref with
        | Some t ->
            let ring_age =
              Squeue.Spsc.oldest_age (Nic.rx_ring t.nic ~queue:t.rxq) ~now
            in
            List.fold_left
              (fun acc g -> Time.max acc (Squeue.Spsc.oldest_age g.tx ~now))
              ring_age t.guest_list
        | None -> 0)
      ()
  in
  let labels = [ ("host", string_of_int (Nic.addr nic)) ] in
  let c_forwarded = Stats.Registry.counter ~labels "vswitch_forwarded" in
  let c_unroutable = Stats.Registry.counter ~labels "vswitch_unroutable" in
  let c_to_guests = Stats.Registry.counter ~labels "vswitch_to_guests" in
  let t =
    {
      lp = loop;
      nic;
      rxq = rx_queue;
      eng;
      routes = Hashtbl.create 16;
      guests = Hashtbl.create 16;
      guest_list = [];
      gen = Packet.Id_gen.create ();
      c_forwarded;
      forwarded_base = Stats.Counter.value c_forwarded;
      c_unroutable;
      unroutable_base = Stats.Counter.value c_unroutable;
      c_to_guests;
      to_guests_base = Stats.Counter.value c_to_guests;
    }
  in
  t_ref := Some t;
  Engine.add group eng;
  (* Wake the engine when guest-bound traffic lands on its ring. *)
  Nic.set_rx_notify nic ~queue:rx_queue (Nic.Soft (fun () -> Engine.notify eng));
  t

let engine t = t.eng

let add_guest t ~vip =
  let labels = host_labels t @ [ ("port", string_of_int vip) ] in
  let c_drops = Stats.Registry.counter ~labels "vswitch_port_drops" in
  let g =
    {
      vip;
      tx = Squeue.Spsc.create ~name:(Printf.sprintf "guest%d.tx" vip) ~capacity:1024 ();
      rx = Squeue.Spsc.create ~name:(Printf.sprintf "guest%d.rx" vip) ~capacity:1024 ();
      c_drops;
      drops_base = Stats.Counter.value c_drops;
    }
  in
  ignore
    (Stats.Registry.gauge_fn ~labels "vswitch_port_depth" (fun () ->
         float_of_int (Squeue.Spsc.length g.tx + Squeue.Spsc.length g.rx)));
  Hashtbl.replace t.guests vip g;
  t.guest_list <- t.guest_list @ [ g ];
  g

let add_route t ~vip ~host = Hashtbl.replace t.routes vip host

let guest_transmit t g ~dst_vip ~bytes =
  let pkt =
    Packet.make
      ~id:(Packet.Id_gen.next t.gen)
      ~src:(Nic.addr t.nic) ~dst:0 ~flow_hash:(g.vip * 1021)
      ~qos:3
      ~wire_bytes:(min (Nic.mtu t.nic) (bytes + 60))
      ~payload_bytes:bytes
      (Vnet { src_vip = g.vip; dst_vip })
      ()
  in
  let ok = Squeue.Spsc.push g.tx ~now:(Loop.now t.lp) pkt in
  if ok then Engine.notify t.eng else Stats.Counter.incr g.c_drops;
  ok

let guest_rx_ring g = g.rx
let forwarded t = Stats.Counter.value t.c_forwarded - t.forwarded_base
let unroutable t = Stats.Counter.value t.c_unroutable - t.unroutable_base

let delivered_to_guests t =
  Stats.Counter.value t.c_to_guests - t.to_guests_base

let port_drops g = Stats.Counter.value g.c_drops - g.drops_base
