(** Virtualization packet-switch engine (§2, Figure 2).

    Models the Andromeda-style cloud-VM datapath Snap hosts: guest VMs
    see virtual addresses; the engine rewrites virtual destinations to
    physical hosts via a per-host routing table, forwards guest transmit
    traffic to the NIC, and demultiplexes received traffic back to the
    right guest's receive ring. *)

type t
type guest

val create :
  loop:Sim.Loop.t ->
  nic:Nic.t ->
  group:Engine.group ->
  rx_queue:int ->
  unit ->
  t
(** The engine claims NIC receive ring [rx_queue] for guest-bound
    traffic (steering must be configured by the caller). *)

val engine : t -> Engine.t

val add_guest : t -> vip:int -> guest
(** Attach a guest with a virtual IP. *)

val add_route : t -> vip:int -> host:Memory.Packet.addr -> unit
(** Program the virtual-to-physical routing table. *)

type Memory.Packet.payload +=
  | Vnet of { src_vip : int; dst_vip : int }
        (** Encapsulated guest traffic. *)

val guest_transmit : t -> guest -> dst_vip:int -> bytes:int -> bool
(** Guest posts a packet to its transmit ring; [false] if full. *)

val guest_rx_ring : guest -> Memory.Packet.t Squeue.Spsc.t

val forwarded : t -> int
val unroutable : t -> int
val delivered_to_guests : t -> int

val port_drops : guest -> int
(** Packets lost at this port's rings (full guest rx ring on delivery,
    full tx ring on [guest_transmit]).

    All switch counters are also registered in {!Stats.Registry}:
    [vswitch_forwarded]/[vswitch_unroutable]/[vswitch_to_guests]
    labelled by host, and per-port [vswitch_port_drops] plus a
    [vswitch_port_depth] gauge (tx + rx occupancy) labelled by host and
    port. *)
