(** A hostile guest driver, the implementation behind
    {!Fault.Plan.Guest_byzantine}.

    Abuses the tenant's tx ring through {!Guest.Ring}'s unchecked raw
    surface ([post_raw] / [set_avail_raw] / [kick_raw]) on a fixed tick
    (20 us) until the attack window closes, plus a dedicated timer per
    [Kick_storm] behavior.  Randomness comes from the injector-supplied
    split stream, so attacks are deterministic per plan.  The driver
    does not stop when the tenant is quarantined — the containment
    invariant asserts the host makes no further ring progress
    regardless. *)

val launch :
  loop:Sim.Loop.t ->
  rng:Sim.Rng.t ->
  tenant:Guest.Tenant.t ->
  behaviors:Fault.Plan.byzantine list ->
  until:Sim.Time.t ->
  unit
