module Time = Sim.Time
module Loop = Sim.Loop
module Rng = Sim.Rng
module Ring = Guest.Ring
module Tenant = Guest.Tenant

(* A hostile guest driver: abuses a tenant's tx ring through the
   unchecked raw surface on a fixed tick until the attack window
   closes.  Lives in Snap (not Fault) for the same layering reason as
   the host crash hooks: the fault library cannot depend on the guest
   edge, so [Host.fault_host] wires [launch] into the injector's
   byzantine hook.

   The driver deliberately keeps attacking a quarantined tenant — that
   is the point of the containment invariant: host-owned ring indices
   must stay frozen no matter what the guest writes afterwards. *)

let tick = Time.us 20

let buf_len tn = min 64 (Memory.Region.size tn.Tenant.region)

let strike ~loop ~rng tn behavior =
  let tx = tn.Tenant.tx in
  let now = Loop.now loop in
  let region_size = Memory.Region.size tn.Tenant.region in
  match (behavior : Fault.Plan.byzantine) with
  | Fault.Plan.Bad_desc_range ->
      (* Garbage geometry: negative offsets, runs past the end of the
         region, negative lengths. *)
      let off, len =
        match Rng.int rng 3 with
        | 0 -> (-64 - Rng.int rng 4096, 64)
        | 1 -> (region_size - 8, 64 + Rng.int rng 4096)
        | _ -> (Rng.int rng (max 1 region_size), -(1 + Rng.int rng 512))
      in
      Ring.post_raw tx ~now ~id:(Rng.int rng 1024) ~off ~len
  | Fault.Plan.Desc_id_alias ->
      (* Well-formed descriptor pairs sharing an id drawn from a tiny
         space: the first take of each id goes in flight, every other
         take aliases a live op.  Two pairs per tick, so a single
         batched drain meets a dense run of aliases. *)
      let len = buf_len tn in
      for _ = 1 to 2 do
        let id = Rng.int rng 2 in
        Ring.post_raw tx ~now ~id ~off:(Tenant.tx_buf_off tn 0) ~len;
        Ring.post_raw tx ~now ~id ~off:(Tenant.tx_buf_off tn 0) ~len
      done
  | Fault.Plan.Avail_rollback ->
      Ring.set_avail_raw tx (Ring.avail_idx tx - (1 + Rng.int rng 4))
  | Fault.Plan.Avail_runahead ->
      Ring.set_avail_raw tx
        (Ring.avail_idx tx + Ring.capacity tx + 1 + Rng.int rng 8)
  | Fault.Plan.Reap_withhold ->
      (* Well-formed descriptors, used entries never reaped: the ring
         overcommits until the host refuses to take. *)
      Ring.post_raw tx ~now ~id:(Ring.avail_idx tx)
        ~off:(Tenant.tx_buf_off tn 0) ~len:(buf_len tn)
  | Fault.Plan.Kick_storm _ ->
      (* Driven by its own timer; nothing per tick. *)
      ()

let launch ~loop ~rng ~tenant:tn ~behaviors ~until =
  let rec step () =
    if Loop.now loop < until then begin
      List.iter (fun b -> strike ~loop ~rng tn b) behaviors;
      ignore (Loop.after loop tick step)
    end
  in
  step ();
  List.iter
    (fun b ->
      match (b : Fault.Plan.byzantine) with
      | Fault.Plan.Kick_storm { hz } ->
          let period = Time.ns (max 1 (int_of_float (1e9 /. hz))) in
          let rec storm () =
            if Loop.now loop < until then begin
              Ring.kick_raw tn.Tenant.tx;
              ignore (Loop.after loop period storm)
            end
          in
          storm ()
      | Fault.Plan.Bad_desc_range | Fault.Plan.Desc_id_alias
      | Fault.Plan.Avail_rollback | Fault.Plan.Avail_runahead
      | Fault.Plan.Reap_withhold ->
          ())
    behaviors
