(** Per-host Snap assembly.

    Bundles everything a Snap host runs — the simulated machine, NIC,
    control plane, an engine group with a chosen scheduling mode, and
    the Pony Express module — so examples and benchmarks build clusters
    in a few lines.  Additional engines (shapers, virtual switches) can
    be loaded into the same group. *)

type t = {
  loop : Sim.Loop.t;
  machine : Cpu.Sched.machine;
  nic : Nic.t;
  control : Control.t;
  group : Engine.group;
  pony : Pony.Express.t;
  poller : Control.Poller.t option;
  mutable mux : Guest.Mux.t option;  (** Guest backend, once enabled. *)
}

val create :
  loop:Sim.Loop.t ->
  fabric:Fabric.t ->
  directory:Pony.Express.Directory.dir ->
  addr:Memory.Packet.addr ->
  ?cores:int ->
  ?nic_config:Nic.config ->
  ?mode:Engine.mode ->
  ?engines:int ->
  ?use_copy_engine:bool ->
  ?costs:Sim.Costs.t ->
  ?wire_versions:int list ->
  ?op_pool_bytes:int ->
  ?keepalive:Pony.Express.keepalive ->
  ?poll_period:Sim.Time.t ->
  unit ->
  t
(** Defaults: 16 cores, default NIC, dedicating 2 cores, 1 Pony
    engine.  [op_pool_bytes] sizes Pony's op-memory pool (see
    {!Pony.Express.create}); overload workloads shrink it to force
    admission pressure.  [keepalive] arms Pony's per-connection
    dead-peer detection (off by default).  [poll_period] arms a
    {!Control.Poller} sampling every NIC rx-ring depth and the
    machine's per-account CPU into the metric registry; it is off by
    default because the periodic timer keeps an un-bounded
    [Sim.Loop.run] from going idle. *)

val poller : t -> Control.Poller.t option

val fault_host : t -> Fault.Injector.host
(** Registration record for {!Fault.Injector.install}, with whole-host
    crash/restart hooks wired to {!Pony.Express.crash_host} /
    {!Pony.Express.restart_host} so plans may include
    [Fault.Plan.Host_crash] events targeting this host, and the
    byzantine-guest hook wired to {!Byzantine.launch} (resolving the
    plan's tenant name against the mux) so plans may include
    [Fault.Plan.Guest_byzantine] events. *)

val spawn_app :
  t ->
  name:string ->
  ?klass:Cpu.Sched.klass ->
  ?spin:bool ->
  (Cpu.Thread.ctx -> unit) ->
  Cpu.Sched.task
(** Launch an application thread on this host (CFS nice 0 by default;
    [spin] selects spin-polling waits for the lowest latency). *)

(** {1 Guest networking} *)

val enable_guests :
  ?engines:int ->
  ?mode:Engine.mode ->
  ?suspect_after:int ->
  ?quarantine_after:int ->
  t ->
  Guest.Mux.t
(** Instantiate the guest backend (idempotent: later calls return the
    existing mux and ignore the parameters).  Defaults to one mux
    engine scheduled [Spreading {runtime_pct = 90}], in its own group so
    guest engines upgrade independently of the Pony group.
    [suspect_after]/[quarantine_after] set the misbehavior-escalation
    thresholds (see {!Guest.Mux.create}). *)

val guest_mux : t -> Guest.Mux.t option

val attach_tenant :
  Cpu.Thread.ctx ->
  t ->
  name:string ->
  dst_host:Memory.Packet.addr ->
  dst_name:string ->
  ?ring_slots:int ->
  ?buf_bytes:int ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  Guest.Tenant.t
(** Attach a guest tenant whose tx traffic the mux forwards to client
    [dst_name] on [dst_host] (see {!Guest.Mux.attach}).  Enables the
    guest backend with defaults if it is not up yet. *)

val detach_tenant : ?force:bool -> t -> Guest.Tenant.t -> unit
(** See {!Guest.Mux.detach}.  Generation-tagged reclaim guarantees the
    tenant's pool bytes return even if completions are abandoned. *)

val snap_cpu_ns : t -> int
(** CPU consumed by Snap (engine threads) on this host so far. *)

val app_cpu_ns : t -> int
val softirq_cpu_ns : t -> int
val total_cpu_ns : t -> int
