(** Per-client admission control at op submission (§3.3).

    "Pony Express bounds the memory consumed on behalf of each client":
    every submitted op charges its payload bytes against a shared
    {!Memory.Pool} under the client's name and holds the charge until
    the op's completion is delivered, so one misbehaving client cannot
    consume the host's op memory.  Three gates run in order, all on the
    submitting thread (the shared-memory command queue is the fourth,
    structural, gate):

    + outstanding-op quota (count),
    + outstanding-byte quota charged against the pool ([try_alloc],
      never the raising [alloc] — overload must answer [Rejected], not
      throw into the hot path),
    + a token-bucket submission rate limiter.

    A rejected op never reaches the engine: the client library converts
    the verdict into a completion with status [Rejected].  Admissions
    and rejections are counted per client in {!Stats.Registry}. *)

type t

type reject_reason = Over_op_quota | Over_byte_quota | Pool_exhausted | Rate_limited

val reject_reason_to_string : reject_reason -> string

type verdict = Admitted of Memory.Pool.alloc option | Rejected of reject_reason
(** [Admitted] carries the pool charge (None for zero-byte ops); pass
    it back via {!release} when the op completes. *)

val create :
  pool:Memory.Pool.t ->
  owner:string ->
  ?max_ops:int ->
  ?max_bytes:int ->
  ?rate_ops_per_sec:float ->
  ?burst_ops:int ->
  unit ->
  t
(** Defaults: 256 outstanding ops, 4 MiB outstanding bytes, no rate
    limit.  [rate_ops_per_sec] arms the token bucket with [burst_ops]
    (default 32) of burst capacity. *)

val admit : t -> now:Sim.Time.t -> bytes:int -> verdict
(** Gate one op of [bytes] payload.  On admission the op counts against
    the quotas until {!release}. *)

val release : t -> Memory.Pool.alloc option -> unit
(** Op completed (any status): return its charge and op slot. *)

val op_quota : t -> int
val byte_quota : t -> int
val outstanding_ops : t -> int
val outstanding_bytes : t -> int
val admitted : t -> int
val rejected : t -> int
val rejected_by : t -> reject_reason -> int
