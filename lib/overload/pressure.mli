(** Per-engine pressure state machine.

    Snap keeps Pony Express stable under saturation by degrading
    gracefully instead of collapsing (§3.3, §5): the mechanisms that do
    the degrading — admission control, receiver back-pressure, load
    shedding — need a shared, cheap notion of {e how loaded this engine
    is right now}.  [Pressure.t] folds the engine's queue occupancy and
    its pool occupancy into one of three levels with hysteresis, so the
    gates downstream do not flap on every batch:

    - [Nominal]: everything admitted, full advertised windows.
    - [Pressured]: advertised windows shrink; expired-deadline ops are
      dropped at dequeue.
    - [Saturated]: advertised windows go to zero, over-quota clients'
      ops are shed at dequeue (cheapest-first: before any segmentation
      or transmission work is invested in them).

    Transitions are counted in {!Stats.Registry} and emitted as
    {!Sim.Span} instants, so a trace shows exactly when an engine
    entered and left each regime. *)

type level = Nominal | Pressured | Saturated

val level_to_string : level -> string
val level_to_int : level -> int
(** 0 / 1 / 2, for gauges. *)

type thresholds = {
  pressured_enter : float;  (** Occupancy fraction entering Pressured. *)
  pressured_exit : float;   (** Must fall below this to leave it. *)
  saturated_enter : float;
  saturated_exit : float;
}

val default_thresholds : thresholds
(** Enter Pressured at 50% / leave at 35%; enter Saturated at 80% /
    leave at 60%. *)

type t

val create :
  loop:Sim.Loop.t -> name:string -> ?thresholds:thresholds -> unit -> t
(** [name] labels the registry metrics ([overload_pressure_level],
    [overload_pressure_transitions]) and the span track. *)

val update : t -> occupancy:float -> level
(** Feed the current load signal (the max of the engine's queue
    fractions and the pool fraction, in [0,1]) and return the resulting
    level, applying hysteresis against the previous level. *)

val level : t -> level
val transitions : t -> int
(** Level changes since creation. *)
