type level = Nominal | Pressured | Saturated

let level_to_string = function
  | Nominal -> "nominal"
  | Pressured -> "pressured"
  | Saturated -> "saturated"

let level_to_int = function Nominal -> 0 | Pressured -> 1 | Saturated -> 2

type thresholds = {
  pressured_enter : float;
  pressured_exit : float;
  saturated_enter : float;
  saturated_exit : float;
}

let default_thresholds =
  {
    pressured_enter = 0.50;
    pressured_exit = 0.35;
    saturated_enter = 0.80;
    saturated_exit = 0.60;
  }

type t = {
  lp : Sim.Loop.t;
  p_name : string;
  th : thresholds;
  mutable lvl : level;
  c_transitions : Stats.Counter.t;
  transitions_base : int;
}

let validate th =
  if
    not
      (0.0 < th.pressured_exit
      && th.pressured_exit <= th.pressured_enter
      && th.pressured_enter <= th.saturated_exit
      && th.saturated_exit <= th.saturated_enter
      && th.saturated_enter <= 1.0)
  then invalid_arg "Pressure.create: thresholds must be ordered in (0,1]"

let create ~loop ~name ?(thresholds = default_thresholds) () =
  validate thresholds;
  let labels = [ ("engine", name) ] in
  let c_transitions =
    Stats.Registry.counter ~labels "overload_pressure_transitions"
  in
  let t =
    {
      lp = loop;
      p_name = name;
      th = thresholds;
      lvl = Nominal;
      c_transitions;
      transitions_base = Stats.Counter.value c_transitions;
    }
  in
  ignore
    (Stats.Registry.gauge_fn ~labels "overload_pressure_level" (fun () ->
         float_of_int (level_to_int t.lvl)));
  t

(* Hysteresis: climbing uses the enter thresholds, descending the exit
   thresholds, and a level can only move one step per update so a load
   spike walks Nominal -> Pressured -> Saturated across batches rather
   than teleporting (each step is observable in the span stream). *)
let next_level th lvl occupancy =
  match lvl with
  | Nominal -> if occupancy >= th.pressured_enter then Pressured else Nominal
  | Pressured ->
      if occupancy >= th.saturated_enter then Saturated
      else if occupancy < th.pressured_exit then Nominal
      else Pressured
  | Saturated -> if occupancy < th.saturated_exit then Pressured else Saturated

let update t ~occupancy =
  let occupancy = Float.min 1.0 (Float.max 0.0 occupancy) in
  let next = next_level t.th t.lvl occupancy in
  if next <> t.lvl then begin
    let prev = t.lvl in
    t.lvl <- next;
    Stats.Counter.incr t.c_transitions;
    if Sim.Span.enabled () then
      Sim.Span.emit t.lp ~cat:"overload"
        ~track:("pressure " ^ t.p_name)
        ~args:
          [
            ("from", level_to_string prev);
            ("occupancy", Printf.sprintf "%.2f" occupancy);
          ]
        (level_to_string next)
  end;
  t.lvl

let level t = t.lvl

let transitions t = Stats.Counter.value t.c_transitions - t.transitions_base
