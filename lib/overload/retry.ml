type policy = {
  max_attempts : int;
  base_delay : Sim.Time.t;
  multiplier : float;
  max_delay : Sim.Time.t;
  op_timeout : Sim.Time.t option;
}

let default_policy =
  {
    max_attempts = 4;
    base_delay = Sim.Time.us 50;
    multiplier = 2.0;
    max_delay = Sim.Time.ms 1;
    op_timeout = Some (Sim.Time.ms 5);
  }

let delay_before p ~attempt =
  if attempt <= 1 then 0
  else begin
    (* Clamp in float space: for large attempt counts the exponential
       exceeds [max_int] and [int_of_float] on such a float is
       unspecified (observed going negative).  The exponent itself is
       capped so pathological attempt values cannot even overflow the
       float range into [infinity *. 0.0 = nan] territory. *)
    let exponent = float_of_int (min (attempt - 2) 1024) in
    let scaled = float_of_int p.base_delay *. (p.multiplier ** exponent) in
    if Float.is_nan scaled then p.max_delay
    else if scaled >= float_of_int p.max_delay then p.max_delay
    else Sim.Time.max 0 (int_of_float scaled)
  end

let attempts_exhausted p ~attempt = attempt > p.max_attempts
