type policy = {
  max_attempts : int;
  base_delay : Sim.Time.t;
  multiplier : float;
  max_delay : Sim.Time.t;
  op_timeout : Sim.Time.t option;
}

let default_policy =
  {
    max_attempts = 4;
    base_delay = Sim.Time.us 50;
    multiplier = 2.0;
    max_delay = Sim.Time.ms 1;
    op_timeout = Some (Sim.Time.ms 5);
  }

let delay_before p ~attempt =
  if attempt <= 1 then 0
  else begin
    let scaled =
      float_of_int p.base_delay *. (p.multiplier ** float_of_int (attempt - 2))
    in
    Sim.Time.min p.max_delay (int_of_float scaled)
  end

let attempts_exhausted p ~attempt = attempt > p.max_attempts
