(** Bounded-retry backoff policy for rejected / timed-out / NACKed ops.

    Pure arithmetic over attempt numbers so applications (and tests)
    share one backoff schedule: exponential with a multiplier, capped,
    and bounded in attempts.  The Pony client library's
    [send_with_retry] drives it; applications can also consult it
    directly for custom loops. *)

type policy = {
  max_attempts : int;  (** Total tries, including the first. *)
  base_delay : Sim.Time.t;  (** Backoff before attempt 2. *)
  multiplier : float;
  max_delay : Sim.Time.t;  (** Per-retry backoff cap. *)
  op_timeout : Sim.Time.t option;
      (** Deadline attached to each attempt ([submit ~deadline]);
          [None] submits without one. *)
}

val default_policy : policy
(** 4 attempts, 50 us base, x2, capped at 1 ms, 5 ms op timeout. *)

val delay_before : policy -> attempt:int -> Sim.Time.t
(** Backoff to sleep before [attempt] (2-based; attempt 1 has no
    delay).  [base * multiplier^(attempt-2)], capped at [max_delay]. *)

val attempts_exhausted : policy -> attempt:int -> bool
(** True once [attempt] exceeds [max_attempts]. *)
