type reject_reason = Over_op_quota | Over_byte_quota | Pool_exhausted | Rate_limited

let reject_reason_to_string = function
  | Over_op_quota -> "over_op_quota"
  | Over_byte_quota -> "over_byte_quota"
  | Pool_exhausted -> "pool_exhausted"
  | Rate_limited -> "rate_limited"

type verdict = Admitted of Memory.Pool.alloc option | Rejected of reject_reason

type t = {
  pool : Memory.Pool.t;
  owner : string;
  max_ops : int;
  max_bytes : int;
  (* Token bucket over op submissions; [None] disables rate limiting. *)
  rate : float option;  (* tokens (ops) per ns *)
  burst : float;
  mutable tokens : float;
  mutable last_refill : Sim.Time.t;
  mutable out_ops : int;
  mutable out_bytes : int;
  c_admitted : Stats.Counter.t;
  admitted_base : int;
  c_rejected : Stats.Counter.t;
  rejected_base : int;
  mutable by_reason : (reject_reason * int) list;
}

let create ~pool ~owner ?(max_ops = 256) ?(max_bytes = 4 lsl 20)
    ?rate_ops_per_sec ?(burst_ops = 32) () =
  if max_ops <= 0 then invalid_arg "Admission.create: max_ops";
  if max_bytes <= 0 then invalid_arg "Admission.create: max_bytes";
  (match rate_ops_per_sec with
  | Some r when r <= 0.0 -> invalid_arg "Admission.create: rate_ops_per_sec"
  | _ -> ());
  if burst_ops <= 0 then invalid_arg "Admission.create: burst_ops";
  let labels = [ ("client", owner) ] in
  let c_admitted = Stats.Registry.counter ~labels "overload_ops_admitted" in
  let c_rejected = Stats.Registry.counter ~labels "overload_ops_rejected" in
  {
    pool;
    owner;
    max_ops;
    max_bytes;
    rate = Option.map (fun r -> r /. 1e9) rate_ops_per_sec;
    burst = float_of_int burst_ops;
    tokens = float_of_int burst_ops;
    last_refill = 0;
    out_ops = 0;
    out_bytes = 0;
    c_admitted;
    admitted_base = Stats.Counter.value c_admitted;
    c_rejected;
    rejected_base = Stats.Counter.value c_rejected;
    by_reason = [];
  }

let refill t ~now =
  match t.rate with
  | None -> ()
  | Some per_ns ->
      let dt = Sim.Time.sub now t.last_refill in
      if dt > 0 then begin
        t.last_refill <- now;
        t.tokens <- Float.min t.burst (t.tokens +. (float_of_int dt *. per_ns))
      end

let reject t reason =
  Stats.Counter.incr t.c_rejected;
  t.by_reason <-
    (match List.assoc_opt reason t.by_reason with
    | Some n -> (reason, n + 1) :: List.remove_assoc reason t.by_reason
    | None -> (reason, 1) :: t.by_reason);
  Rejected reason

let admit t ~now ~bytes =
  if bytes < 0 then invalid_arg "Admission.admit: bytes";
  refill t ~now;
  if t.out_ops >= t.max_ops then reject t Over_op_quota
  else if t.out_bytes + bytes > t.max_bytes then reject t Over_byte_quota
  else if t.rate <> None && t.tokens < 1.0 then reject t Rate_limited
  else begin
    let charge =
      if bytes = 0 then Some None
      else
        match Memory.Pool.try_alloc t.pool ~owner:t.owner ~bytes with
        | Some a -> Some (Some a)
        | None -> None
    in
    match charge with
    | None -> reject t Pool_exhausted
    | Some c ->
        if t.rate <> None then t.tokens <- t.tokens -. 1.0;
        t.out_ops <- t.out_ops + 1;
        t.out_bytes <- t.out_bytes + bytes;
        Stats.Counter.incr t.c_admitted;
        Admitted c
  end

let release t charge =
  if t.out_ops <= 0 then invalid_arg "Admission.release: nothing outstanding";
  t.out_ops <- t.out_ops - 1;
  (match charge with
  | Some (a : Memory.Pool.alloc) ->
      t.out_bytes <- t.out_bytes - a.Memory.Pool.bytes;
      if a.Memory.Pool.live then Memory.Pool.free a
  | None -> ());
  if t.out_ops = 0 && t.out_bytes <> 0 then
    (* Charges and slots must drain together; a mismatch here is an
       accounting bug, catch it at the source. *)
    invalid_arg
      (Printf.sprintf "Admission.release: %s byte accounting skew (%d)"
         t.owner t.out_bytes)

let op_quota t = t.max_ops
let byte_quota t = t.max_bytes
let outstanding_ops t = t.out_ops
let outstanding_bytes t = t.out_bytes
let admitted t = Stats.Counter.value t.c_admitted - t.admitted_base
let rejected t = Stats.Counter.value t.c_rejected - t.rejected_base

let rejected_by t reason =
  Option.value ~default:0 (List.assoc_opt reason t.by_reason)
