module Time = Sim.Time
module Loop = Sim.Loop
module Sched = Cpu.Sched

type outcome = Worked of Time.t | No_work

(* Cost of servicing one posted mailbox item on the engine thread. *)
let mailbox_service_cost = Time.ns 250

(* Rebalancer period for the compacting scheduler: "the speed of
   rebalancing is constrained by the latency in polling for queueing
   delays" (§2.4). *)
let rebalance_period = Time.us 25

(* CPU a wedged engine burns per quantum: stuck in a loop, making no
   progress and never servicing its mailbox. *)
let wedge_spin_cost = Time.us 1

type t = {
  e_name : string;
  e_account : string;
  mutable run_fn : unit -> outcome;
  mutable qdelay : Time.t -> Time.t;
  state_size : unit -> int;
  mb : Squeue.Mailbox.t;
  mutable n_steps : int;
  mutable work_ns : int;
  mutable owner : cthread option;
  mutable e_epoch : int;  (* bumped on every (re)attach *)
  mutable wedged : bool;
  mutable fail_flag : bool;  (* fault landed on a detached instance *)
  mutable migrating : bool;  (* under an upgrade transaction's blackout *)
  mutable home : group option;  (* group the engine last belonged to *)
  h_delay : Stats.Histogram.t;  (* queueing delay observed at batch start *)
  h_cost : Stats.Histogram.t;  (* per-batch execution cost *)
}

and cthread = {
  tid : int;
  task : Sched.task;
  grp : group;
  mutable owned : t list;
}

and mode =
  | Dedicating of { cores : int }
  | Spreading of { runtime_pct : float }
  | Spreading_class of Sched.klass
  | Compacting of { slo : Time.t; max_threads : int }

and group = {
  g_name : string;
  g_mode : mode;
  m : Sched.machine;
  lp : Loop.t;
  mutable threads : cthread list;  (* ascending tid *)
  mutable all : t list;
  mutable next_tid : int;
  mutable rr : int;
}

let create ~name ?(account = "snap") ~run ?(queue_delay = fun _ -> 0)
    ?(state_bytes = fun () -> 0) () =
  {
    e_name = name;
    e_account = account;
    run_fn = run;
    qdelay = queue_delay;
    state_size = state_bytes;
    mb = Squeue.Mailbox.create ();
    n_steps = 0;
    work_ns = 0;
    owner = None;
    e_epoch = 0;
    wedged = false;
    fail_flag = false;
    migrating = false;
    home = None;
    h_delay =
      Stats.Registry.histogram
        ~labels:[ ("engine", name) ]
        "engine_sched_delay_ns";
    h_cost =
      Stats.Registry.histogram
        ~labels:[ ("engine", name) ]
        "engine_batch_cost_ns";
  }

let name e = e.e_name
let account e = e.e_account
let mailbox e = e.mb
let set_run e run = e.run_fn <- run
let set_queue_delay e f = e.qdelay <- f
let state_bytes e = e.state_size ()
let steps e = e.n_steps
let busy_ns e = e.work_ns
let is_attached e = Option.is_some e.owner
let epoch e = e.e_epoch
let is_wedged e = e.wedged
let set_wedged e b = e.wedged <- b
let is_failed e = e.fail_flag
let mark_failed e = e.fail_flag <- true
let clear_failed e = e.fail_flag <- false
let is_migrating e = e.migrating
let set_migrating e b = e.migrating <- b
let home e = e.home

let notify e =
  match e.owner with Some ct -> Sched.kick ct.task | None -> ()

let owner_task e = Option.map (fun ct -> ct.task) e.owner

(* One scheduling quantum of a thread: service mailboxes, then give each
   owned engine one bounded batch. *)
let thread_step ct () =
  let lp = ct.grp.lp in
  let now = Loop.now lp in
  (* Built only when span capture is on; the track identifies the lane
     (group/thread) the batch ran on. *)
  let batch_span e ~outcome ~dur =
    Sim.Span.emit lp ~cat:"engine"
      ~track:(Printf.sprintf "%s/t%d" ct.grp.g_name ct.tid)
      ~args:
        (("account", e.e_account) :: ("outcome", outcome)
        ::
        (match Sched.task_core ct.task with
        | Some cid -> [ ("core", string_of_int cid) ]
        | None -> []))
      ~start:now ~dur e.e_name
  in
  let cost = ref 0 in
  List.iter
    (fun e ->
      if e.wedged then begin
        (* A wedged engine spins without servicing its mailbox or making
           progress: the silent failure mode the watchdog's heartbeats
           exist to detect. *)
        cost := !cost + wedge_spin_cost;
        if Sim.Span.enabled () then
          batch_span e ~outcome:"wedged" ~dur:wedge_spin_cost
      end
      else begin
        if Check.Invariant.enabled () && e.migrating && e.owner = None then
          (* An upgrade transaction owns a migrating engine (blackout)
             and detached it; a scheduler thread still stepping it means
             a stale owned-list reference survived the detach.  (A
             migrating engine that crash recovery re-attached is legal —
             the upgrade aborts that race at commit.) *)
          raise
            (Check.Invariant.Violation
               (Printf.sprintf "engine %s stepped while migrating detached"
                  e.e_name));
        if Squeue.Mailbox.service e.mb then
          cost := !cost + mailbox_service_cost;
        match e.run_fn () with
        | Worked c ->
            e.n_steps <- e.n_steps + 1;
            e.work_ns <- e.work_ns + c;
            Stats.Histogram.record e.h_delay (e.qdelay now);
            Stats.Histogram.record e.h_cost c;
            if Sim.Span.enabled () then batch_span e ~outcome:"worked" ~dur:c;
            cost := !cost + c
        | No_work -> ()
      end)
    ct.owned;
  if !cost > 0 then Sched.Ran !cost else Sched.Idle

let spawn_thread g ~klass ~idle =
  let tid = g.next_tid in
  g.next_tid <- tid + 1;
  (* The task's step closure needs the thread record; tie the knot with
     a forward reference. *)
  let ct_ref = ref None in
  let step () =
    match !ct_ref with Some ct -> thread_step ct () | None -> Sched.Idle
  in
  let task =
    Sched.spawn g.m
      ~name:(Printf.sprintf "%s/t%d" g.g_name tid)
      ~account:"snap" ~klass ~idle ~step
  in
  let ct = { tid; task; grp = g; owned = [] } in
  ct_ref := Some ct;
  g.threads <- g.threads @ [ ct ];
  ct

let group_name g = g.g_name
let group_mode g = g.g_mode
let engines g = g.all

let active_threads g =
  List.length (List.filter (fun ct -> ct.owned <> []) g.threads)

(* -- Compacting rebalancer --------------------------------------------- *)

let thread_delay now ct =
  List.fold_left (fun acc e -> Time.max acc (e.qdelay now)) 0 ct.owned

let move_engine e ~src ~dst =
  src.owned <- List.filter (fun x -> not (x == e)) src.owned;
  dst.owned <- dst.owned @ [ e ];
  e.owner <- Some dst

let activate ct =
  Sched.set_idle_policy ct.task Sched.Spin;
  Sched.kick ct.task

let deactivate ct =
  (* Thread 0 always keeps one spinning core in its most compacted state
     (§5.3: the compacting scheduler's least-loaded state spin-polls on
     a single core). *)
  if ct.tid <> 0 then begin
    Sched.set_idle_policy ct.task Sched.Block;
    Sched.retire_spin ct.task
  end

let rebalance g () =
  let now = Loop.now g.lp in
  match g.g_mode with
  | Dedicating _ | Spreading _ | Spreading_class _ -> ()
  | Compacting { slo; max_threads = _ } -> (
      let active = List.filter (fun ct -> ct.owned <> []) g.threads in
      let inactive = List.filter (fun ct -> ct.owned = []) g.threads in
      (* Scale out: worst thread above the SLO sheds its most delayed
         engine to an idle thread. *)
      let worst =
        List.fold_left
          (fun best ct ->
            match best with
            | None -> Some (ct, thread_delay now ct)
            | Some (_, d) ->
                let d' = thread_delay now ct in
                if d' > d then Some (ct, d') else best)
          None active
      in
      match worst with
      | Some (ct, d) when d > slo && List.length ct.owned > 1 -> (
          match inactive with
          | it :: _ -> (
              let victim =
                List.fold_left
                  (fun best e ->
                    match best with
                    | None -> Some e
                    | Some b -> if e.qdelay now > b.qdelay now then Some e else best)
                  None ct.owned
              in
              match victim with
              | Some e ->
                  move_engine e ~src:ct ~dst:it;
                  activate it
              | None -> ())
          | [] -> ())
      | Some _ | None -> (
          (* Compact: when everything is comfortably below the SLO and
             more than one thread is active, merge the least loaded
             thread into the busiest remaining one. *)
          match active with
          | _ :: _ :: _
            when List.for_all
                   (fun ct -> thread_delay now ct < Time.scale slo 0.125)
                   active -> (
              let sorted =
                List.sort
                  (fun a b -> compare (thread_delay now a) (thread_delay now b))
                  active
              in
              match sorted with
              | donor :: rest -> (
                  match List.rev rest with
                  | receiver :: _ ->
                      List.iter
                        (fun e -> move_engine e ~src:donor ~dst:receiver)
                        donor.owned;
                      deactivate donor;
                      Sched.kick receiver.task
                  | [] -> ())
              | [] -> ())
          | _ -> ()))

let create_group ~machine ~name ~mode =
  let g =
    {
      g_name = name;
      g_mode = mode;
      m = machine;
      lp = Sched.loop machine;
      threads = [];
      all = [];
      next_tid = 0;
      rr = 0;
    }
  in
  (match mode with
  | Dedicating { cores } ->
      if cores <= 0 then invalid_arg "Engine.create_group: cores";
      for _ = 1 to cores do
        let core = Sched.reserve_core machine in
        let ct = spawn_thread g ~klass:(Sched.Pinned core) ~idle:Sched.Spin in
        Sched.start ct.task
      done
  | Spreading { runtime_pct } ->
      if runtime_pct <= 0.0 || runtime_pct > 1.0 then
        invalid_arg "Engine.create_group: runtime_pct"
  | Spreading_class _ -> ()
  | Compacting { slo; max_threads } ->
      if max_threads <= 0 then invalid_arg "Engine.create_group: max_threads";
      if slo <= 0 then invalid_arg "Engine.create_group: slo";
      for i = 0 to max_threads - 1 do
        let ct =
          spawn_thread g
            ~klass:(Sched.Micro_quanta { runtime_pct = 1.0 })
            ~idle:(if i = 0 then Sched.Spin else Sched.Block)
        in
        Sched.start ct.task
      done;
      ignore (Loop.every g.lp rebalance_period (rebalance g)));
  g

let add g e =
  if Option.is_some e.owner then invalid_arg "Engine.add: already attached";
  (* (Re)loading an engine instantiates it afresh: the epoch bump lets
     transports detect the restart and resynchronize, and any stuck
     computation of the previous instance is discarded.  Queued ring and
     mailbox inputs survive (§4.3). *)
  e.e_epoch <- e.e_epoch + 1;
  e.wedged <- false;
  e.home <- Some g;
  g.all <- g.all @ [ e ];
  match g.g_mode with
  | Dedicating { cores } ->
      let ct = List.nth g.threads (g.rr mod cores) in
      g.rr <- g.rr + 1;
      ct.owned <- ct.owned @ [ e ];
      e.owner <- Some ct;
      Sched.kick ct.task
  | Spreading { runtime_pct } ->
      let ct =
        spawn_thread g ~klass:(Sched.Micro_quanta { runtime_pct })
          ~idle:Sched.Block
      in
      ct.owned <- [ e ];
      e.owner <- Some ct;
      Sched.start ct.task
  | Spreading_class klass ->
      let ct = spawn_thread g ~klass ~idle:Sched.Block in
      ct.owned <- [ e ];
      e.owner <- Some ct;
      Sched.start ct.task
  | Compacting _ -> (
      (* Join the busiest active thread; the rebalancer spreads from
         there if needed. *)
      let active = List.filter (fun ct -> ct.owned <> []) g.threads in
      match active with
      | ct :: _ ->
          ct.owned <- ct.owned @ [ e ];
          e.owner <- Some ct;
          Sched.kick ct.task
      | [] -> (
          match g.threads with
          | ct :: _ ->
              ct.owned <- [ e ];
              e.owner <- Some ct;
              activate ct
          | [] -> assert false))

let remove g e =
  (match e.owner with
  | Some ct ->
      ct.owned <- List.filter (fun x -> not (x == e)) ct.owned;
      e.owner <- None;
      if ct.owned = [] then begin
        match g.g_mode with
        | Compacting _ -> deactivate ct
        | Dedicating _ | Spreading _ | Spreading_class _ -> ()
      end
  | None -> ());
  g.all <- List.filter (fun x -> not (x == e)) g.all

module Element = struct
  module Packet = Memory.Packet

  type action = Pass of Packet.t | Drop | Consume

  type t = {
    el_name : string;
    cost : Time.t;
    process : Packet.t -> action;
    mutable n_in : int;
    mutable n_drop : int;
  }

  let make ~name ~cost process =
    { el_name = name; cost; process; n_in = 0; n_drop = 0 }

  let name t = t.el_name
  let packets_in t = t.n_in
  let drops t = t.n_drop

  let counter ~name = make ~name ~cost:(Time.ns 15) (fun p -> Pass p)

  let acl ~name ~allow =
    make ~name ~cost:(Time.ns 40) (fun p -> if allow p then Pass p else Drop)

  let token_bucket ~name ~loop ~rate_gbps ~burst_bytes =
    if rate_gbps <= 0.0 || burst_bytes <= 0 then
      invalid_arg "Element.token_bucket";
    (* Tokens are bytes; refill lazily from the virtual clock. *)
    let tokens = ref (float_of_int burst_bytes) in
    let last = ref (Sim.Loop.now loop) in
    let refill () =
      let now = Sim.Loop.now loop in
      let dt = float_of_int (Time.sub now !last) in
      last := now;
      tokens :=
        Float.min
          (float_of_int burst_bytes)
          (!tokens +. (dt *. rate_gbps /. 8.0))
    in
    make ~name ~cost:(Time.ns 50) (fun p ->
        refill ();
        let need = float_of_int p.Packet.wire_bytes in
        if !tokens >= need then begin
          tokens := !tokens -. need;
          Pass p
        end
        else Drop)

  let rewrite_dst ~name ~table =
    make ~name ~cost:(Time.ns 60) (fun p ->
        match table p.Packet.dst with
        | Some dst -> Pass { p with Packet.dst }
        | None -> Drop)

  module Pipeline = struct
    type element = t
    type nonrec t = { stages : element list }

    let of_list stages = { stages }

    let push t pkt =
      let rec go stages pkt cost =
        match stages with
        | [] -> (Some pkt, cost)
        | el :: rest -> (
            el.n_in <- el.n_in + 1;
            let cost = Time.add cost el.cost in
            match el.process pkt with
            | Pass pkt -> go rest pkt cost
            | Drop ->
                el.n_drop <- el.n_drop + 1;
                (None, cost)
            | Consume -> (None, cost))
      in
      go t.stages pkt Time.zero

    let elements t = t.stages
  end
end
