(** Snap engines and engine-group scheduling (§2.2, §2.4).

    An engine is a stateful, single-threaded task encapsulating a packet
    processing pipeline.  Engines communicate with applications, NIC
    rings, the kernel and each other exclusively over memory-mapped
    queues; the control plane reaches them through a depth-1 mailbox
    serviced on the engine's own thread.

    Engines are bundled into {e groups} with one of three scheduling
    modes:

    - {b Dedicating cores}: engines pinned to reserved hyperthreads that
      spin-poll; multiple engines on a core are round-robined (the mode
      fair-shares when CPU constrained).
    - {b Spreading engines}: one kernel-visible thread per engine,
      blocking on notification when idle and woken through the
      MicroQuanta class for low tail latency.
    - {b Compacting engines}: engines collapse onto as few threads as
      possible; a rebalancer polls queueing delays and scales out onto
      more threads when the delay SLO is violated, and compacts back
      when load subsides (the Shenango-style algorithm of §2.4). *)

type t
(** An engine. *)

type outcome =
  | Worked of Sim.Time.t
      (** The engine processed a bounded batch costing this much CPU. *)
  | No_work  (** Nothing to do right now. *)

val create :
  name:string ->
  ?account:string ->
  run:(unit -> outcome) ->
  ?queue_delay:(Sim.Time.t -> Sim.Time.t) ->
  ?state_bytes:(unit -> int) ->
  unit ->
  t
(** [run] performs one bounded batch of work.  [queue_delay now] reports
    the age of the oldest unserviced input (the compacting scheduler's
    load signal); default reports zero.  [state_bytes ()] sizes the
    engine's serializable state for transparent upgrades (§4); default
    0.  [account] (default "snap") is the CPU accounting container. *)

val name : t -> string
val account : t -> string

val mailbox : t -> Squeue.Mailbox.t
(** The control-plane mailbox; work posted here executes on the engine's
    thread before its next batch (§2.3). *)

val notify : t -> unit
(** Tell the engine's current thread that new input exists.  Producers
    (applications posting commands, NICs, peer engines) call this after
    enqueueing.  Cheap for spinning threads; a scheduler wakeup for
    blocked ones; no-op when the engine is detached. *)

val set_run : t -> (unit -> outcome) -> unit
val set_queue_delay : t -> (Sim.Time.t -> Sim.Time.t) -> unit
val state_bytes : t -> int
val steps : t -> int
(** Number of [run] calls that made progress. *)

val busy_ns : t -> int
(** Total CPU cost this engine's batches have reported. *)

val is_attached : t -> bool

(** {1 Restart epochs and failure flags}

    The availability machinery (watchdog, transactional upgrades, crash
    recovery) coordinates through a small amount of per-engine state:
    an {e epoch} that counts instantiations, and flags marking wedged,
    faulted, or migrating instances. *)

val epoch : t -> int
(** Incremented every time the engine is (re)loaded into a group.
    Transports compare epochs to detect a restart and resynchronize
    in-flight state (see [Pony.Flow.resync]). *)

val is_wedged : t -> bool

val set_wedged : t -> bool -> unit
(** A wedged engine spins on its thread without servicing its mailbox or
    making progress — a silent failure only heartbeat monitoring can
    see.  Reloading the engine ({!add}) clears the wedge: a fresh
    instance discards the stuck computation while its queues survive. *)

val is_failed : t -> bool

val mark_failed : t -> unit
(** Record that a fault (e.g. an injected crash) landed on this engine
    while it was detached — mid-migration or awaiting recovery.  The
    upgrade transaction checks this at commit and rolls back. *)

val clear_failed : t -> unit

val is_migrating : t -> bool

val set_migrating : t -> bool -> unit
(** Set while an upgrade transaction owns the engine (blackout).  The
    watchdog excuses migrating engines from heartbeat deadlines so
    recovery cannot race a planned migration. *)

(** {1 Groups} *)

type mode =
  | Dedicating of { cores : int }
  | Spreading of { runtime_pct : float }
      (** One MicroQuanta thread per engine (the production setup). *)
  | Spreading_class of Cpu.Sched.klass
      (** Spreading, but with an explicit scheduling class — Figure 6(d)
          compares MicroQuanta against CFS nice -20 for the same
          spreading engines. *)
  | Compacting of { slo : Sim.Time.t; max_threads : int }

type group

val create_group :
  machine:Cpu.Sched.machine -> name:string -> mode:mode -> group

val group_name : group -> string
val group_mode : group -> mode

val add : group -> t -> unit
(** Load an engine into the group and start scheduling it.  An engine
    lives in at most one group. *)

val remove : group -> t -> unit
(** Detach an engine (it stops being scheduled); used during transparent
    upgrades.  Pending inputs stay in its queues. *)

val engines : group -> t list

val active_threads : group -> int
(** Threads currently running engines (interesting for compacting). *)

val home : t -> group option
(** The group the engine last belonged to, surviving detach — where
    crash recovery reloads it. *)

val owner_task : t -> Cpu.Sched.task option
(** The scheduler task currently responsible for running this engine,
    if attached.  NIC receive notifications for dedicated-core engines
    use this for direct kicks. *)

(** Click-style packet processing elements (§2.2): see {!Element}. *)
module Element : sig
  type action =
    | Pass of Memory.Packet.t  (** Continue down the pipeline. *)
    | Drop  (** Discard (counted as a drop). *)
    | Consume  (** The element took ownership (e.g. queued it). *)

  type t

  val make :
    name:string -> cost:Sim.Time.t -> (Memory.Packet.t -> action) -> t
  (** An element with a fixed per-packet CPU cost. *)

  val name : t -> string
  val packets_in : t -> int
  val drops : t -> int

  (** {1 Stock elements} *)

  val counter : name:string -> t
  (** Passes everything; useful for telemetry taps. *)

  val acl :
    name:string -> allow:(Memory.Packet.t -> bool) -> t
  (** Drops packets failing the predicate. *)

  val token_bucket :
    name:string ->
    loop:Sim.Loop.t ->
    rate_gbps:float ->
    burst_bytes:int ->
    t
  (** Traffic shaping: passes packets while tokens last, drops beyond the
      rate (§2: "pacing and rate limiting for bandwidth enforcement").
      Tokens refill continuously at [rate_gbps]. *)

  val rewrite_dst :
    name:string -> table:(Memory.Packet.addr -> Memory.Packet.addr option) -> t
  (** Virtualization-style address translation: rewrites the destination
      via the lookup table, dropping unroutable packets. *)

  (** {1 Pipelines} *)

  module Pipeline : sig
    type element = t
    type t

    val of_list : element list -> t

    val push : t -> Memory.Packet.t -> Memory.Packet.t option * Sim.Time.t
    (** Run a packet through every element.  Returns the surviving packet
        (None if dropped/consumed) and the total CPU cost incurred. *)

    val elements : t -> element list
  end
end
