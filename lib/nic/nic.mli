(** NIC model: descriptor rings, receive-side steering, interrupts.

    One NIC per host.  Receive: the fabric delivers a packet; after the
    DMA/PCIe latency it is steered by flow hash to one of the receive
    rings and the ring's notification policy fires (kick for polling
    consumers, a NAPI-style armed interrupt for blocking consumers).
    Transmit: producers post packets into the transmit ring when slots
    are free — Snap engines generate packets just-in-time against slot
    availability (§3.1) — and the NIC serializes them onto the wire at
    link rate. *)

type t

type config = {
  mtu : int;  (** Maximum wire bytes per packet. *)
  num_rx_queues : int;
  rx_ring_slots : int;
  tx_ring_slots : int;
  rx_latency : Sim.Time.t;  (** Wire to rx-ring visibility (DMA, PCIe). *)
  tx_latency : Sim.Time.t;  (** Descriptor post to wire start. *)
}

val default_config : config
(** 5000 B MTU, 8 rx queues of 4096 slots, 1024 tx slots, 1 us DMA
    latencies. *)

(** How to tell the consumer of an rx ring that packets arrived. *)
type rx_notify =
  | No_notify  (** Consumer polls on its own schedule. *)
  | Kick of Cpu.Sched.task
      (** Resume a spin-polling consumer (cheap, no interrupt). *)
  | Interrupt of (unit -> unit)
      (** NAPI-style: fire an interrupt on the host and run the callback
          in interrupt context, then stay disarmed until
          {!rearm_rx_interrupt}. *)
  | Soft of (unit -> unit)
      (** Invoke the callback directly with no interrupt cost; the
          consumer is responsible for charging any work it does (used by
          busy-polling consumers that poll from their own context). *)

val create :
  loop:Sim.Loop.t ->
  machine:Cpu.Sched.machine ->
  fabric:Fabric.t ->
  addr:Memory.Packet.addr ->
  config ->
  t
(** Creates the NIC and attaches it to the fabric at [addr]. *)

val addr : t -> Memory.Packet.addr
val mtu : t -> int
val config : t -> config

(** {1 Receive} *)

val set_rx_notify : t -> queue:int -> rx_notify -> unit

val rearm_rx_interrupt : t -> queue:int -> unit
(** Re-enable interrupts on the ring after the consumer drained it.  If
    packets arrived while disarmed, the interrupt fires again
    immediately. *)

val rx_ring : t -> queue:int -> Memory.Packet.t Squeue.Spsc.t
(** Direct access to a receive ring for polling consumers. *)

val rx_occupancy : t -> queue:int -> float
(** Occupancy fraction of an rx ring in [0,1]: the receive-side load
    signal engines fold into their pressure level and advertised
    windows (receiver back-pressure). *)

val install_steering : t -> (Memory.Packet.t -> int) -> unit
(** Replace the default steering function (flow hash modulo queue
    count).  Used by Snap to direct flow groups at specific engines
    (§2.2 "utilizing NIC steering functionality as needed"). *)

val stall_rx : t -> queue:int -> until:Sim.Time.t -> unit
(** Fault injection: packets steered to [queue] are held (DMA write
    deferred, arrival order preserved) until the virtual clock reaches
    [until].  Overlapping stalls keep the later deadline. *)

(** {1 Transmit} *)

val tx_slots_free : t -> int

val try_transmit : t -> Memory.Packet.t -> bool
(** Post a packet for transmission.  [false] when the transmit ring is
    full.  Packets larger than the MTU are rejected with
    [Invalid_argument]: segmentation is the sender's job. *)

val set_tx_drain_hook : t -> (unit -> unit) -> unit
(** Invoked each time a transmit slot frees up (a packet hit the wire),
    so just-in-time producers can top the ring up. *)

(** {1 Telemetry} *)

val rx_count : t -> int
val tx_count : t -> int
val rx_dropped : t -> int
(** Packets dropped because an rx ring was full. *)

val rx_stalled : t -> int
(** Packets deferred by an injected rx-queue stall. *)

(** I/OAT-style asynchronous copy offload (§3.4).

    Pony Express uses the Intel I/OAT DMA device to take receive-side
    memory copies off the CPU.  The model: submitting a copy costs the
    CPU only the descriptor-programming time (charged by the caller via
    the cost table); the bytes then move at the device's bandwidth and a
    completion callback fires.  Copies on one engine's channel are
    serialized, as on the real device. *)
module Copy_engine : sig
  type ce

  val create : loop:Sim.Loop.t -> ?bandwidth_gbps:float -> unit -> ce
  (** [bandwidth_gbps] defaults to 240 (30 GB/s). *)

  val submit : ce -> bytes:int -> on_complete:(unit -> unit) -> unit
  (** Queue a copy of [bytes]; [on_complete] fires when it lands. *)

  val in_flight : ce -> int
  val completed : ce -> int
end

val link_gbps : t -> float
(** The attached link's rate (from the fabric config). *)
