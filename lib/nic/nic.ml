module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

type config = {
  mtu : int;
  num_rx_queues : int;
  rx_ring_slots : int;
  tx_ring_slots : int;
  rx_latency : Time.t;
  tx_latency : Time.t;
}

let default_config =
  {
    mtu = 5000;
    num_rx_queues = 8;
    rx_ring_slots = 4096;
    tx_ring_slots = 1024;
    rx_latency = Time.us 1;
    tx_latency = Time.us 1;
  }

type rx_notify =
  | No_notify
  | Kick of Cpu.Sched.task
  | Interrupt of (unit -> unit)
  | Soft of (unit -> unit)

type rx_queue = {
  ring : Packet.t Squeue.Spsc.t;
  mutable notify : rx_notify;
  mutable irq_armed : bool;
  mutable pending_while_disarmed : bool;
  mutable stalled_until : Time.t;
}

type t = {
  lp : Loop.t;
  machine : Cpu.Sched.machine;
  fabric : Fabric.t;
  nic_addr : Packet.addr;
  cfg : config;
  rx_queues : rx_queue array;
  mutable steer : Packet.t -> int;
  (* Transmit ring: packets waiting for the wire. *)
  tx_ring : Packet.t Queue.t;
  mutable tx_in_flight : int;  (* posted but not yet on the wire *)
  mutable tx_busy : bool;
  mutable tx_drain_hook : unit -> unit;
  mutable n_rx : int;
  mutable n_tx : int;
  mutable n_rx_dropped : int;
  mutable n_rx_stalled : int;
}

let gbps t = (Fabric.config t.fabric).Fabric.link_gbps

let wire_time t bytes =
  int_of_float (Float.round (float_of_int bytes *. 8.0 /. gbps t))

let notify_rx t q =
  match q.notify with
  | No_notify -> ()
  | Kick task -> Cpu.Sched.kick task
  | Interrupt handler ->
      if q.irq_armed then begin
        q.irq_armed <- false;
        Cpu.Sched.interrupt t.machine
          ~cost:(Cpu.Sched.costs t.machine).Sim.Costs.interrupt_cpu handler
      end
      else q.pending_while_disarmed <- true
  | Soft f -> f ()

let rx_post t q (pkt : Packet.t) =
  if Squeue.Spsc.push q.ring ~now:(Loop.now t.lp) pkt then begin
    t.n_rx <- t.n_rx + 1;
    notify_rx t q
  end
  else t.n_rx_dropped <- t.n_rx_dropped + 1

let receive t (pkt : Packet.t) =
  ignore
    (Loop.after t.lp t.cfg.rx_latency (fun () ->
         let qi = t.steer pkt in
         let qi = if qi < 0 || qi >= t.cfg.num_rx_queues then 0 else qi in
         let q = t.rx_queues.(qi) in
         if Loop.now t.lp < q.stalled_until then begin
           (* Queue stalled (fault injection): the DMA write is held back
              until the stall lifts; arrival order within the queue is
              preserved by the loop's FIFO tie-break. *)
           t.n_rx_stalled <- t.n_rx_stalled + 1;
           ignore (Loop.at t.lp q.stalled_until (fun () -> rx_post t q pkt))
         end
         else rx_post t q pkt))

let create ~loop ~machine ~fabric ~addr (config : config) =
  if config.num_rx_queues <= 0 then invalid_arg "Nic.create: num_rx_queues";
  let t =
    {
      lp = loop;
      machine;
      fabric;
      nic_addr = addr;
      cfg = config;
      rx_queues =
        Array.init config.num_rx_queues (fun i ->
            {
              ring =
                Squeue.Spsc.create
                  ~name:(Printf.sprintf "rx%d@%d" i addr)
                  ~capacity:config.rx_ring_slots ();
              notify = No_notify;
              irq_armed = true;
              pending_while_disarmed = false;
              stalled_until = 0;
            });
      steer = (fun pkt -> pkt.Packet.flow_hash mod config.num_rx_queues);
      tx_ring = Queue.create ();
      tx_in_flight = 0;
      tx_busy = false;
      tx_drain_hook = (fun () -> ());
      n_rx = 0;
      n_tx = 0;
      n_rx_dropped = 0;
      n_rx_stalled = 0;
    }
  in
  Fabric.attach fabric ~addr ~rx:(receive t);
  t

let addr t = t.nic_addr
let mtu t = t.cfg.mtu
let config t = t.cfg

let set_rx_notify t ~queue notify =
  let q = t.rx_queues.(queue) in
  q.notify <- notify

let rearm_rx_interrupt t ~queue =
  let q = t.rx_queues.(queue) in
  q.irq_armed <- true;
  if q.pending_while_disarmed && not (Squeue.Spsc.is_empty q.ring) then begin
    q.pending_while_disarmed <- false;
    notify_rx t q
  end
  else q.pending_while_disarmed <- false

let rx_ring t ~queue = t.rx_queues.(queue).ring

let rx_occupancy t ~queue =
  let ring = t.rx_queues.(queue).ring in
  float_of_int (Squeue.Spsc.length ring)
  /. float_of_int (Squeue.Spsc.capacity ring)

let install_steering t steer = t.steer <- steer

let stall_rx t ~queue ~until =
  if queue < 0 || queue >= t.cfg.num_rx_queues then
    invalid_arg "Nic.stall_rx: bad queue";
  let q = t.rx_queues.(queue) in
  q.stalled_until <- Time.max q.stalled_until until

let tx_slots_free t = t.cfg.tx_ring_slots - t.tx_in_flight

(* Serialize queued packets onto the wire one at a time at link rate. *)
let rec tx_drain t =
  match Queue.take_opt t.tx_ring with
  | None -> t.tx_busy <- false
  | Some pkt ->
      t.tx_busy <- true;
      let ser = wire_time t pkt.Packet.wire_bytes in
      ignore
        (Loop.after t.lp ser (fun () ->
             pkt.Packet.sent_at <- Loop.now t.lp;
             t.tx_in_flight <- t.tx_in_flight - 1;
             t.n_tx <- t.n_tx + 1;
             Fabric.send t.fabric pkt;
             t.tx_drain_hook ();
             tx_drain t))

let try_transmit t pkt =
  if pkt.Packet.wire_bytes > t.cfg.mtu then
    invalid_arg "Nic.try_transmit: packet exceeds MTU";
  if t.tx_in_flight >= t.cfg.tx_ring_slots then false
  else begin
    t.tx_in_flight <- t.tx_in_flight + 1;
    ignore
      (Loop.after t.lp t.cfg.tx_latency (fun () ->
           Queue.add pkt t.tx_ring;
           if not t.tx_busy then tx_drain t));
    true
  end

let set_tx_drain_hook t hook = t.tx_drain_hook <- hook
let link_gbps t = gbps t
let rx_count t = t.n_rx
let tx_count t = t.n_tx
let rx_dropped t = t.n_rx_dropped
let rx_stalled t = t.n_rx_stalled

module Copy_engine = struct
  type job = { bytes : int; on_complete : unit -> unit }

  type ce = {
    ce_lp : Loop.t;
    bandwidth_gbps : float;
    jobs : job Queue.t;
    mutable busy : bool;
    mutable n_in_flight : int;
    mutable n_completed : int;
  }

  let create ~loop ?(bandwidth_gbps = 240.0) () =
    if bandwidth_gbps <= 0.0 then invalid_arg "Copy_engine.create";
    {
      ce_lp = loop;
      bandwidth_gbps;
      jobs = Queue.create ();
      busy = false;
      n_in_flight = 0;
      n_completed = 0;
    }

  let rec drain t =
    match Queue.take_opt t.jobs with
    | None -> t.busy <- false
    | Some job ->
        t.busy <- true;
        let dur =
          int_of_float
            (Float.round (float_of_int job.bytes *. 8.0 /. t.bandwidth_gbps))
        in
        ignore
          (Loop.after t.ce_lp dur (fun () ->
               t.n_in_flight <- t.n_in_flight - 1;
               t.n_completed <- t.n_completed + 1;
               job.on_complete ();
               drain t))

  let submit t ~bytes ~on_complete =
    if bytes < 0 then invalid_arg "Copy_engine.submit";
    t.n_in_flight <- t.n_in_flight + 1;
    Queue.add { bytes; on_complete } t.jobs;
    if not t.busy then drain t

  let in_flight t = t.n_in_flight
  let completed t = t.n_completed
end
