(** Simulated multi-core machine and CPU scheduler.

    This models what the paper gets from real hosts: hyperthread contexts
    ("cores"), the Linux CFS scheduling class, Google's MicroQuanta
    real-time class (§2.4.1), dedicated/pinned cores, C-states, and
    non-preemptible kernel sections.  Time costs come from the
    {!Sim.Costs} table.

    Execution model: a {!task} owns a [step] function.  The scheduler
    dispatches the task on a core and calls [step] repeatedly; each call
    performs a bounded chunk of simulated work and reports its CPU cost.
    Between chunks the scheduler may preempt, throttle, or migrate the
    task.  When a task reports it is idle it either blocks (releasing the
    core) or spins (holding the core busy without events until new work
    is {!kick}ed in) according to its idle policy. *)

type machine
type task

(** What one [step] call did. *)
type step_result =
  | Ran of Sim.Time.t  (** Performed work costing this much CPU time. *)
  | Ran_nonpreemptible of Sim.Time.t
      (** As [Ran], but the core cannot be preempted for the duration
          (kernel section, cf. Figure 7(b)). *)
  | Idle  (** No work available right now. *)
  | Finished  (** The task is done and will never run again. *)

(** Behaviour when [step] reports [Idle]. *)
type idle_policy =
  | Spin  (** Busy-poll: hold the core (its time counts as busy). *)
  | Block  (** Release the core and wait for {!wake}. *)

(** Scheduling class. *)
type klass =
  | Pinned of int
      (** Dedicated hyperthread (§2.4 "dedicating cores"); the argument
          is a core id obtained from {!reserve_core}. *)
  | Micro_quanta of { runtime_pct : float }
      (** Google's real-time class: priority over CFS with a bandwidth
          bound of [runtime_pct] of each period. *)
  | Cfs of { nice : int }  (** Default Linux class; nice in [-20, 19]. *)

(** {1 Machines} *)

val create_machine :
  loop:Sim.Loop.t -> costs:Sim.Costs.t -> name:string -> cores:int -> machine

val machine_name : machine -> string
val num_cores : machine -> int
val loop : machine -> Sim.Loop.t
val costs : machine -> Sim.Costs.t

val set_cost_scale : machine -> float -> unit
(** Inflate every subsequent task-step cost on this machine by the given
    factor (>= 1.0).  Fault injection uses this to model straggler hosts
    (thermal throttling, noisy neighbours); 1.0 restores normal speed. *)

val cost_scale : machine -> float

val reserve_core : machine -> int
(** Take a core out of the floating pool for a [Pinned] task.  Raises
    [Failure] if none remain. *)

val busy_ns : machine -> int
(** Total CPU time consumed on the machine so far (all cores, including
    spin-polling time), in nanoseconds. *)

val account_busy_ns : machine -> string -> int
(** CPU time charged to the given accounting container (§2.5). *)

val accounts : machine -> (string * int) list
(** All accounts with their busy nanoseconds, sorted by name. *)

val interrupt : machine -> ?core:int -> cost:Sim.Time.t -> (unit -> unit) -> unit
(** [interrupt m ~core ~cost f] delivers an interrupt: after the delivery
    latency (plus C-state exit if the target core sleeps), [f] runs in
    interrupt context and [cost] is charged to the core (stealing time
    from whatever task occupies it), under the "softirq" account.  When
    [core] is omitted a core is chosen round-robin, as with RSS interrupt
    spreading. *)

(** {1 Tasks} *)

val spawn :
  machine ->
  name:string ->
  account:string ->
  klass:klass ->
  idle:idle_policy ->
  step:(unit -> step_result) ->
  task
(** Create a task.  It does not run until {!start}. *)

val start : task -> unit
(** Make the task runnable for the first time. *)

val wake : task -> unit
(** Move a blocked task to a core (or the run queue).  Dispatch latency
    depends on the class, machine load, and target-core C-state.  Waking
    a task that is not blocked is a no-op. *)

val kick : task -> unit
(** Cheap notification that new work exists: resumes a spinning task
    after the poll-discovery delay; equivalent to {!wake} for a blocked
    task; no-op otherwise.  This is what queue producers call. *)

val task_name : task -> string
val task_machine : task -> machine

val task_core : task -> int option
(** Core the task currently occupies (running or spinning), if any. *)

val task_busy_ns : task -> int
val is_blocked : task -> bool
val is_spinning : task -> bool

val set_step : task -> (unit -> step_result) -> unit
(** Replace the task's step function (used by the engine runtime when the
    set of engines multiplexed on a thread changes). *)

(** {1 Scheduler parameters} *)

val cfs_slice : Sim.Time.t
(** Timeslice granularity for CFS re-evaluation. *)

val mq_period : Sim.Time.t
(** MicroQuanta bandwidth-control period. *)

val softirq_charge : machine -> Sim.Time.t -> unit
(** Charge CPU time to the "softirq" account, stealing the time from a
    busy core if one is running (the accounting pathology of kernel
    networking that §2.5 describes).  Used by the kernel-stack model for
    receive-path protocol processing. *)

val set_idle_policy : task -> idle_policy -> unit
(** Change what happens the next time the task reports [Idle].  Used by
    the compacting engine scheduler to let drained threads block instead
    of spinning. *)

val retire_spin : task -> unit
(** Transition a currently spinning task to blocked, folding its
    spin time into its busy accounting and releasing the core.  No-op
    for tasks that are not spinning. *)
