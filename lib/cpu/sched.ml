module Time = Sim.Time
module Loop = Sim.Loop

type step_result =
  | Ran of Time.t
  | Ran_nonpreemptible of Time.t
  | Idle
  | Finished

type idle_policy = Spin | Block

type klass =
  | Pinned of int
  | Micro_quanta of { runtime_pct : float }
  | Cfs of { nice : int }

(* Scheduler parameters.  CFS re-evaluates at millisecond granularity (the
   kernel's scheduling granularity); MicroQuanta slices at tens of
   microseconds (section 2.4.1: "scalable time slicing at microsecond
   granularity"). *)
let cfs_slice = Time.ms 1
let mq_quantum = Time.us 50
let mq_period = Time.ms 1
let spin_discovery = Time.ns 60
let wake_vruntime_bonus = 3.0e6 (* ns: CFS wakeup placement credit *)

(* CFS wakeup preemption honors the scheduler's minimum granularity: a
   running fair task keeps the CPU for at least this long even when a
   higher-weight fair task wakes.  Real-time (MicroQuanta) wakeups are
   not subject to it — that asymmetry is Figure 6(d). *)
let cfs_min_granularity = Time.us 750

type task_state =
  | Created
  | Ready
  | Running of int  (* core id *)
  | Spinning of int  (* core id *)
  | Blocked
  | Throttled
  | Done

type task = {
  t_name : string;
  account : string;
  klass : klass;
  mutable idle : idle_policy;
  mutable step : unit -> step_result;
  m : machine;
  mutable state : task_state;
  mutable gen : int;  (* invalidates stale step events *)
  mutable busy : int;
  mutable spin_start : Time.t;
  mutable vruntime : float;
  mutable slice_used : int;
  mutable mq_consumed : int;
  mutable mq_period_start : Time.t;
  mutable preempt_rt : bool;  (* an RT task wants this core *)
  mutable preempt_fair : bool;  (* a fair task wants this core *)
  mutable wake_pending : bool;
}

and core = {
  cid : int;
  mutable current : task option;
  mutable reserved : bool;
  mutable idle_since : Time.t;
  mutable steal : int;  (* interrupt time to inject before the next step *)
  mutable nonpreempt_until : Time.t;
  mutable core_busy : int;  (* task + softirq ns attributed to this core *)
  mutable switches : int;  (* dispatches onto this core *)
  (* A fair task woken onto this busy core (wake affinity): it runs when
     this core yields, rather than migrating instantly to whichever core
     frees first — load balancing is much slower than wakeups. *)
  mutable waiter : task option;
}

and machine = {
  lp : Loop.t;
  cost : Sim.Costs.t;
  m_name : string;
  cores_arr : core array;
  mq_ready : task Queue.t;
  cfs_ready : task Sim.Heap.t;
  account_tbl : (string, int ref) Hashtbl.t;
  mutable vr_clock : float;
  mutable rr_interrupt : int;
  mutable total_busy : int;
  mutable m_cost_scale : float;
}

(* Per-core utilization and context-switch gauges.  Pull-model: the
   registry samples live core state at snapshot time, and re-creating a
   machine under the same name re-points the gauges at the new cores
   (last registration wins). *)
let register_core_gauges m =
  Array.iter
    (fun core ->
      let labels =
        [ ("machine", m.m_name); ("core", string_of_int core.cid) ]
      in
      ignore
        (Stats.Registry.gauge_fn ~labels "cpu_core_utilization" (fun () ->
             let now = Loop.now m.lp in
             if now <= 0 then 0.0
             else float_of_int core.core_busy /. float_of_int now));
      ignore
        (Stats.Registry.gauge_fn ~labels "cpu_core_context_switches"
           (fun () -> float_of_int core.switches)))
    m.cores_arr

let create_machine ~loop ~costs ~name ~cores =
  if cores <= 0 then invalid_arg "Sched.create_machine";
  let m =
  {
    lp = loop;
    cost = costs;
    m_name = name;
    cores_arr =
      Array.init cores (fun cid ->
          {
            cid;
            current = None;
            reserved = false;
            idle_since = Time.zero;
            steal = 0;
            nonpreempt_until = Time.zero;
            core_busy = 0;
            switches = 0;
            waiter = None;
          });
    mq_ready = Queue.create ();
    cfs_ready = Sim.Heap.create ();
    account_tbl = Hashtbl.create 16;
    vr_clock = 0.0;
    rr_interrupt = 0;
    total_busy = 0;
    m_cost_scale = 1.0;
  }
  in
  register_core_gauges m;
  m

let machine_name m = m.m_name
let num_cores m = Array.length m.cores_arr

let set_cost_scale m scale =
  if scale < 1.0 then invalid_arg "Sched.set_cost_scale";
  m.m_cost_scale <- scale

let cost_scale m = m.m_cost_scale

let scale_cost m c =
  if m.m_cost_scale = 1.0 then c
  else int_of_float (Float.round (float_of_int c *. m.m_cost_scale))
let loop m = m.lp
let costs m = m.cost

let reserve_core m =
  let rec find i =
    if i >= Array.length m.cores_arr then failwith "Sched.reserve_core: none left"
    else if m.cores_arr.(i).reserved then find (i + 1)
    else begin
      m.cores_arr.(i).reserved <- true;
      i
    end
  in
  (* Reserve from the top so core 0 stays available for floating work. *)
  let rec find_top i =
    if i < 0 then find 0
    else if m.cores_arr.(i).reserved then find_top (i - 1)
    else begin
      m.cores_arr.(i).reserved <- true;
      i
    end
  in
  find_top (Array.length m.cores_arr - 1)

(* -- Accounting ------------------------------------------------------- *)

let account_add m account cost =
  m.total_busy <- m.total_busy + cost;
  match Hashtbl.find_opt m.account_tbl account with
  | Some r -> r := !r + cost
  | None -> Hashtbl.add m.account_tbl account (ref cost)

let charge task cost =
  task.busy <- task.busy + cost;
  (match task.state with
  | Running cid | Spinning cid ->
      let core = task.m.cores_arr.(cid) in
      core.core_busy <- core.core_busy + cost
  | Created | Ready | Blocked | Throttled | Done -> ());
  account_add task.m task.account cost

(* Spin time is CPU time: a spinning task holds its core busy.  The
   interval is folded in when the spin ends; live queries add the
   in-progress interval. *)
let live_spin_ns task =
  match task.state with
  | Spinning _ -> Time.sub (Loop.now task.m.lp) task.spin_start
  | Created | Ready | Running _ | Blocked | Throttled | Done -> 0

let task_busy_ns task = task.busy + live_spin_ns task

let machine_live_spin m =
  Array.fold_left
    (fun acc core ->
      match core.current with Some t -> acc + live_spin_ns t | None -> acc)
    0 m.cores_arr

let busy_ns m = m.total_busy + machine_live_spin m

let account_busy_ns m account =
  let base =
    match Hashtbl.find_opt m.account_tbl account with Some r -> !r | None -> 0
  in
  let spin =
    Array.fold_left
      (fun acc core ->
        match core.current with
        | Some t when String.equal t.account account -> acc + live_spin_ns t
        | Some _ | None -> acc)
      0 m.cores_arr
  in
  base + spin

let accounts m =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) m.account_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* -- CFS weights ------------------------------------------------------ *)

let cfs_weight nice = 1024.0 /. (1.25 ** float_of_int nice)

let vruntime_delta task cost =
  match task.klass with
  | Cfs { nice } -> float_of_int cost *. (1024.0 /. cfs_weight nice)
  | Pinned _ | Micro_quanta _ -> 0.0

(* -- Core / dispatch machinery ---------------------------------------- *)

let core_asleep m core =
  core.current = None
  && Time.sub (Loop.now m.lp) core.idle_since >= m.cost.cstate_idle_threshold

let is_mq task =
  match task.klass with
  | Micro_quanta _ -> true
  | Pinned _ | Cfs _ -> false

let bump_gen task = task.gen <- task.gen + 1

let rec schedule_step m core task ~delay =
  bump_gen task;
  let gen = task.gen in
  ignore (Loop.after m.lp delay (fun () -> step_event m core task gen))

and dispatch m core task ~delay =
  core.current <- Some task;
  core.switches <- core.switches + 1;
  task.state <- Running core.cid;
  task.slice_used <- 0;
  task.preempt_rt <- false;
  task.preempt_fair <- false;
  task.wake_pending <- false;
  m.vr_clock <- Float.max m.vr_clock task.vruntime;
  schedule_step m core task ~delay

(* Pick the next task for a newly free core: its affine waiter first,
   then the real-time queue, then fair tasks by vruntime. *)
and pick_next m core =
  core.current <- None;
  core.idle_since <- Loop.now m.lp;
  if not core.reserved then begin
    let waiter =
      match core.waiter with
      | Some t when t.state = Ready ->
          core.waiter <- None;
          Some t
      | Some _ ->
          core.waiter <- None;
          None
      | None -> None
    in
    match waiter with
    | Some task -> dispatch m core task ~delay:m.cost.context_switch
    | None -> (
        match next_ready m with
        | Some task -> dispatch m core task ~delay:m.cost.context_switch
        | None -> ())
  end

and next_ready m =
  (* MicroQuanta has strict priority over CFS. *)
  let rec from_mq () =
    match Queue.take_opt m.mq_ready with
    | Some t when t.state = Ready -> Some t
    | Some _ -> from_mq ()
    | None -> from_cfs ()
  and from_cfs () =
    match Sim.Heap.pop m.cfs_ready with
    | Some t when t.state = Ready -> Some t
    | Some _ -> from_cfs ()
    | None -> None
  in
  from_mq ()

and enqueue_ready m task =
  task.state <- Ready;
  bump_gen task;
  (match task.klass with
  | Micro_quanta _ | Pinned _ -> Queue.add task m.mq_ready
  | Cfs _ -> Sim.Heap.add m.cfs_ready ~key:(int_of_float task.vruntime) task);
  (* If a core is idle, take it immediately. *)
  let rec find_idle i =
    if i >= Array.length m.cores_arr then None
    else
      let c = m.cores_arr.(i) in
      if (not c.reserved) && c.current = None then Some c else find_idle (i + 1)
  in
  match find_idle 0 with
  | Some c -> (
      match next_ready m with
      | Some t ->
          let delay =
            Time.add m.cost.context_switch
              (if core_asleep m c then m.cost.cstate_exit else Time.zero)
          in
          dispatch m c t ~delay
      | None -> ())
  | None -> ()

and should_resched m task =
  if task.preempt_rt then true
  else if task.preempt_fair && task.slice_used >= cfs_min_granularity then true
  else
    match task.klass with
    | Pinned _ -> false
    | Micro_quanta _ ->
        task.slice_used >= mq_quantum && not (Queue.is_empty m.mq_ready)
    | Cfs _ ->
        (not (Queue.is_empty m.mq_ready))
        || (task.slice_used >= cfs_slice && not (Sim.Heap.is_empty m.cfs_ready))

and mq_budget _m task =
  match task.klass with
  | Micro_quanta { runtime_pct } ->
      int_of_float (runtime_pct *. float_of_int mq_period)
  | Pinned _ | Cfs _ -> max_int

and core_runs core task =
  match core.current with Some t -> t == task | None -> false

and step_event m core task gen =
  if task.gen = gen && core_runs core task then
    if core.steal > 0 then begin
      (* Interrupt context stole time from this core; the task's step is
         pushed back by the stolen amount. *)
      let stolen = core.steal in
      core.steal <- 0;
      schedule_step m core task ~delay:stolen
    end
    else if should_resched m task then begin
      charge task m.cost.context_switch;
      enqueue_ready m task;
      pick_next m core
    end
    else begin
      match task.step () with
      | Ran cost -> after_run m core task (scale_cost m cost) ~nonpreempt:false
      | Ran_nonpreemptible cost ->
          after_run m core task (scale_cost m cost) ~nonpreempt:true
      | Idle ->
          if task.wake_pending then begin
            (* A wake raced with this step; poll once more rather than
               losing it. *)
            task.wake_pending <- false;
            schedule_step m core task ~delay:spin_discovery
          end
          else (
            match task.idle with
            | Spin ->
                task.state <- Spinning core.cid;
                bump_gen task;
                task.spin_start <- Loop.now m.lp
            | Block ->
                task.state <- Blocked;
                bump_gen task;
                pick_next m core)
      | Finished ->
          task.state <- Done;
          bump_gen task;
          pick_next m core
    end

and after_run m core task cost ~nonpreempt =
  charge task cost;
  task.slice_used <- task.slice_used + cost;
  task.vruntime <- task.vruntime +. vruntime_delta task cost;
  if nonpreempt then core.nonpreempt_until <- Time.add (Loop.now m.lp) cost;
  (* MicroQuanta bandwidth control. *)
  let now = Loop.now m.lp in
  if is_mq task then begin
    if Time.sub now task.mq_period_start >= mq_period then begin
      task.mq_period_start <- now;
      task.mq_consumed <- 0
    end;
    task.mq_consumed <- task.mq_consumed + cost
  end;
  if is_mq task && task.mq_consumed > mq_budget m task then begin
    (* Throttled until the period boundary. *)
    task.state <- Throttled;
    bump_gen task;
    let resume_at = Time.add task.mq_period_start mq_period in
    ignore
      (Loop.at m.lp resume_at (fun () ->
           if task.state = Throttled then begin
             task.mq_period_start <- Loop.now m.lp;
             task.mq_consumed <- 0;
             enqueue_ready m task
           end));
    pick_next m core
  end
  else schedule_step m core task ~delay:cost

(* -- Task lifecycle ---------------------------------------------------- *)

let spawn m ~name ~account ~klass ~idle ~step =
  (match klass with
  | Pinned c ->
      if c < 0 || c >= Array.length m.cores_arr then
        invalid_arg "Sched.spawn: bad pinned core"
      else if not m.cores_arr.(c).reserved then
        invalid_arg "Sched.spawn: pinned core not reserved"
  | Micro_quanta { runtime_pct } ->
      if runtime_pct <= 0.0 || runtime_pct > 1.0 then
        invalid_arg "Sched.spawn: runtime_pct"
  | Cfs { nice } ->
      if nice < -20 || nice > 19 then invalid_arg "Sched.spawn: nice");
  {
    t_name = name;
    account;
    klass;
    idle;
    step;
    m;
    state = Created;
    gen = 0;
    busy = 0;
    spin_start = Time.zero;
    vruntime = 0.0;
    slice_used = 0;
    mq_consumed = 0;
    mq_period_start = Time.zero;
    preempt_rt = false;
    preempt_fair = false;
    wake_pending = false;
  }

let class_wake_latency m task =
  match task.klass with
  | Pinned _ | Micro_quanta _ -> m.cost.wakeup_microquanta
  | Cfs _ -> m.cost.wakeup_cfs

(* Choose a preemption victim for a woken task that found no idle core.
   Like the kernel's wake placement, the target core is picked without
   regard to whether it is currently in a non-preemptible section — that
   blindness is exactly the pathology Figure 7(b) demonstrates.  The
   choice is uniform over eligible cores, from the machine's own RNG
   stream. *)
let find_victim m woken =
  let candidate core =
    match core.current with
    | None -> None
    | Some cur -> (
        match (woken.klass, cur.klass) with
        | (Micro_quanta _ | Pinned _), Cfs _ -> Some core
        | Cfs { nice = wn }, Cfs { nice = cn } when wn < cn -> Some core
        | (Pinned _ | Micro_quanta _ | Cfs _), _ -> None)
  in
  let candidates =
    Array.to_list m.cores_arr
    |> List.filter_map (fun core ->
           if core.reserved then None else candidate core)
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int (Loop.rng m.lp) (List.length l)))

let is_spinning_state t =
  match t.state with
  | Spinning _ -> true
  | Created | Ready | Running _ | Blocked | Throttled | Done -> false

let wake task =
  let m = task.m in
  match task.state with
  | Blocked | Created ->
      (* CFS wakeup placement credit keeps long sleepers competitive. *)
      (match task.klass with
      | Cfs _ ->
          task.vruntime <-
            Float.max task.vruntime (m.vr_clock -. wake_vruntime_bonus)
      | Pinned _ | Micro_quanta _ -> ());
      (match task.klass with
      | Pinned cid ->
          let core = m.cores_arr.(cid) in
          (match core.current with
          | Some other ->
              invalid_arg
                (Printf.sprintf "Sched.wake: pinned core %d busy with %s" cid
                   other.t_name)
          | None ->
              let delay =
                Time.add (class_wake_latency m task)
                  (if core_asleep m core then m.cost.cstate_exit else Time.zero)
              in
              dispatch m core task ~delay)
      | Micro_quanta _ | Cfs _ -> (
          (* Prefer an awake idle core, then a sleeping idle core, then
             preempt, then queue. *)
          let idle_cores =
            Array.to_list m.cores_arr
            |> List.filter (fun c -> (not c.reserved) && c.current = None)
          in
          let awake, asleep =
            List.partition (fun c -> not (core_asleep m c)) idle_cores
          in
          match (awake, asleep) with
          | core :: _, _ ->
              dispatch m core task ~delay:(class_wake_latency m task)
          | [], core :: _ ->
              let delay =
                Time.add (class_wake_latency m task) m.cost.cstate_exit
              in
              dispatch m core task ~delay
          | [], [] -> (
              match find_victim m task with
              | Some core -> (
                  match core.current with
                  | Some victim when is_spinning_state victim ->
                      (* A spinning victim has no pending step event, so
                         preempt it synchronously. *)
                      let spin = Time.sub (Loop.now m.lp) victim.spin_start in
                      charge victim spin;
                      charge victim m.cost.context_switch;
                      enqueue_ready m victim;
                      core.current <- None;
                      dispatch m core task
                        ~delay:
                          (Time.add (class_wake_latency m task)
                             m.cost.context_switch)
                  | Some victim -> (
                      match task.klass with
                      | Micro_quanta _ | Pinned _ ->
                          victim.preempt_rt <- true;
                          enqueue_ready m task
                      | Cfs _ ->
                          victim.preempt_fair <- true;
                          if core.waiter = None then begin
                            (* Wake affinity: wait on this core. *)
                            task.state <- Ready;
                            bump_gen task;
                            core.waiter <- Some task
                          end
                          else enqueue_ready m task)
                  | None -> enqueue_ready m task)
              | None -> enqueue_ready m task)))
  | Spinning cid ->
      (* Treat like a kick: work has arrived for a spin-polling task. *)
      let spin = Time.sub (Loop.now m.lp) task.spin_start in
      charge task spin;
      let core = m.cores_arr.(cid) in
      task.state <- Running cid;
      schedule_step m core task ~delay:spin_discovery
  | Ready | Running _ | Throttled -> task.wake_pending <- true
  | Done -> ()

let start task = wake task

let kick task = wake task

let task_name t = t.t_name
let task_machine t = t.m

let task_core t =
  match t.state with
  | Running cid | Spinning cid -> Some cid
  | Created | Ready | Blocked | Throttled | Done -> None

let is_blocked t =
  match t.state with
  | Blocked -> true
  | Created | Ready | Running _ | Spinning _ | Throttled | Done -> false

let is_spinning t =
  match t.state with
  | Spinning _ -> true
  | Created | Ready | Running _ | Blocked | Throttled | Done -> false

let set_step t step = t.step <- step

(* -- Interrupts -------------------------------------------------------- *)

let interrupt m ?core ~cost f =
  let cid =
    match core with
    | Some c -> c
    | None ->
        (* Round-robin over non-reserved cores, like RSS spreading. *)
        let n = Array.length m.cores_arr in
        let rec pick tries c =
          if tries >= n then c
          else if m.cores_arr.(c).reserved then pick (tries + 1) ((c + 1) mod n)
          else c
        in
        let c = pick 0 (m.rr_interrupt mod n) in
        m.rr_interrupt <- m.rr_interrupt + 1;
        c
  in
  let core = m.cores_arr.(cid) in
  let delay =
    Time.add m.cost.interrupt_delivery
      (if core_asleep m core then m.cost.cstate_exit else Time.zero)
  in
  ignore
    (Loop.after m.lp delay (fun () ->
         account_add m "softirq" cost;
         core.core_busy <- core.core_busy + cost;
         (match core.current with
         | Some _ -> core.steal <- core.steal + cost
         | None -> core.idle_since <- Loop.now m.lp);
         f ()))

let softirq_charge m cost =
  if cost > 0 then begin
    account_add m "softirq" cost;
    let n = Array.length m.cores_arr in
    let rec pick tries c =
      if tries >= n then c
      else if m.cores_arr.(c).reserved then pick (tries + 1) ((c + 1) mod n)
      else c
    in
    let cid = pick 0 (m.rr_interrupt mod n) in
    m.rr_interrupt <- m.rr_interrupt + 1;
    let core = m.cores_arr.(cid) in
    core.core_busy <- core.core_busy + cost;
    match core.current with
    | Some _ -> core.steal <- core.steal + cost
    | None -> core.idle_since <- Loop.now m.lp
  end

let set_idle_policy task policy = task.idle <- policy

let retire_spin task =
  match task.state with
  | Spinning cid ->
      let m = task.m in
      let spin = Time.sub (Loop.now m.lp) task.spin_start in
      charge task spin;
      task.state <- Blocked;
      bump_gen task;
      let core = m.cores_arr.(cid) in
      core.current <- None;
      core.idle_since <- Loop.now m.lp;
      if not core.reserved then begin
        match next_ready m with
        | Some t -> dispatch m core t ~delay:m.cost.context_switch
        | None -> ()
      end
  | Created | Ready | Running _ | Blocked | Throttled | Done -> ()
