(** Snap control plane (§2.3).

    The control plane is "centered around RPC serving": applications
    reach Snap over a Unix domain socket (the slow path) to authenticate,
    set up shared memory, and ask modules to create engines.  Control
    components synchronize with running engines only through their
    depth-1 mailboxes.

    Control traffic is not performance critical; calls model the
    syscall + domain-socket round trip with a fixed latency and run the
    registered handler inline. *)

type t

type message = ..
(** Extensible RPC payload; each module defines its own cases. *)

type message += Error_no_service of string

val create :
  loop:Sim.Loop.t -> machine:Cpu.Sched.machine -> name:string -> t

val name : t -> string
val machine : t -> Cpu.Sched.machine

val register_service : t -> service:string -> (message -> message) -> unit
(** Modules (e.g. the Pony module of Figure 2) expose their setup RPCs
    here. *)

val call : Cpu.Thread.ctx -> t -> service:string -> message -> message
(** Application-side RPC over the domain socket: blocks the calling
    thread for the round trip, then returns the handler's response.
    Unknown services answer {!Error_no_service}. *)

(** {1 Client and memory-region registry} *)

val authenticate : Cpu.Thread.ctx -> t -> client:string -> unit
(** Models the identity check applications perform when establishing
    interactions with Snap (§2.6). *)

val is_authenticated : t -> client:string -> bool

val register_region : t -> client:string -> Memory.Region.t -> unit
(** Record a shared-memory region passed over the domain socket
    (fd-passing); charges its bytes to the client's container (§2.5). *)

val regions_of : t -> client:string -> Memory.Region.t list
val memory_charged : t -> client:string -> int

(** {1 Engine synchronization} *)

val recover_engine :
  t ->
  group:Engine.group ->
  Engine.t ->
  after:Sim.Time.t ->
  on_recovered:(unit -> unit) ->
  unit
(** Restart a crashed (detached) engine: [after] the detection delay plus
    one control RPC round trip, reload it into [group] and notify it.
    Pending ring/mailbox inputs survive the crash, mirroring how
    transparent upgrades preserve engine state.  No-op if the engine was
    already reattached. *)

val post_to_engine :
  Cpu.Thread.ctx -> Engine.t -> (unit -> unit) -> unit
(** Post work to an engine mailbox, retrying (with backoff sleeps) while
    the depth-1 mailbox is occupied, and return once the engine has
    executed it.  Runs on the engine's thread, lock-free for the engine
    (§2.3). *)
