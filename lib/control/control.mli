(** Snap control plane (§2.3).

    The control plane is "centered around RPC serving": applications
    reach Snap over a Unix domain socket (the slow path) to authenticate,
    set up shared memory, and ask modules to create engines.  Control
    components synchronize with running engines only through their
    depth-1 mailboxes.

    Control traffic is not performance critical; calls model the
    syscall + domain-socket round trip with a fixed latency and run the
    registered handler inline. *)

type t

type message = ..
(** Extensible RPC payload; each module defines its own cases. *)

type message += Error_no_service of string

val create :
  loop:Sim.Loop.t -> machine:Cpu.Sched.machine -> name:string -> t

val name : t -> string
val machine : t -> Cpu.Sched.machine

val register_service : t -> service:string -> (message -> message) -> unit
(** Modules (e.g. the Pony module of Figure 2) expose their setup RPCs
    here. *)

val call : Cpu.Thread.ctx -> t -> service:string -> message -> message
(** Application-side RPC over the domain socket: blocks the calling
    thread for the round trip, then returns the handler's response.
    Unknown services answer {!Error_no_service}. *)

(** {1 Client and memory-region registry} *)

val authenticate : Cpu.Thread.ctx -> t -> client:string -> unit
(** Models the identity check applications perform when establishing
    interactions with Snap (§2.6). *)

val is_authenticated : t -> client:string -> bool

val register_region : t -> client:string -> Memory.Region.t -> unit
(** Record a shared-memory region passed over the domain socket
    (fd-passing); charges its bytes to the client's container (§2.5). *)

val regions_of : t -> client:string -> Memory.Region.t list
val memory_charged : t -> client:string -> int

(** {1 Engine synchronization} *)

val recover_engine :
  t ->
  group:Engine.group ->
  Engine.t ->
  after:Sim.Time.t ->
  on_recovered:(unit -> unit) ->
  unit
(** Restart a crashed (detached) engine: [after] the detection delay plus
    one control RPC round trip, reload it into [group] and notify it.
    Pending ring/mailbox inputs survive the crash, mirroring how
    transparent upgrades preserve engine state.  No-op if the engine was
    already reattached. *)

val post_to_engine :
  Cpu.Thread.ctx -> Engine.t -> (unit -> unit) -> unit
(** Post work to an engine mailbox, retrying (with backoff sleeps) while
    the depth-1 mailbox is occupied, and return once the engine has
    executed it.  Runs on the engine's thread, lock-free for the engine
    (§2.3). *)

(** {1 Watchdog}

    Health checking for engines (§4.3): the control plane posts
    heartbeat probes through each watched engine's mailbox and expects
    them to execute within a deadline.  A wedged engine (spinning
    without servicing its mailbox) or a crashed (detached) engine misses
    heartbeats; after [miss_threshold] consecutive misses the watchdog
    declares it unhealthy, restarts it through {!recover_engine} with
    exponential backoff, and — if restarts keep failing — escalates to a
    quarantined, degraded state instead of flapping forever.  Engines
    owned by an in-flight upgrade transaction are excused from heartbeat
    deadlines. *)

module Watchdog : sig
  type control := t
  type t

  type state =
    | Healthy  (** Responding to heartbeats. *)
    | Suspect  (** Missed at least one heartbeat. *)
    | Restarting  (** Declared dead; a restart is scheduled or running. *)
    | Quarantined
        (** Exceeded the restart budget; removed from its group and left
            for operator intervention. *)

  val state_to_string : state -> string

  val create :
    control:control ->
    ?period:Sim.Time.t ->
    ?miss_threshold:int ->
    ?restart_backoff:Sim.Time.t ->
    ?max_restart_attempts:int ->
    unit ->
    t
  (** [period] (default 100us) is the heartbeat interval;
      [miss_threshold] (default 3) consecutive unanswered probes declare
      an engine dead, so detection latency is bounded by about
      [period * (miss_threshold + 1)].  [restart_backoff] (default
      200us) is the base delay before a restart, doubled per consecutive
      failure; after [max_restart_attempts] (default 3) failed restarts
      the engine is quarantined.  The consecutive-failure count resets
      only after the engine stays responsive for a stability window
      ([2 * period * miss_threshold]), so flapping engines escalate even
      if each restart briefly sticks.  Raises [Invalid_argument] on
      non-positive parameters. *)

  val watch : t -> group:Engine.group -> Engine.t -> unit
  (** Start monitoring an engine ([group] is the restart target when the
      engine has never been attached).  Idempotent. *)

  val watch_group : t -> Engine.group -> unit
  (** {!watch} every engine currently in the group. *)

  val start : t -> unit
  (** Arm the periodic heartbeat timer (no-op if already armed). *)

  val stop : t -> unit

  val state : t -> Engine.t -> state option
  (** Health state of a watched engine; [None] if not watched. *)

  val restarts_of : t -> Engine.t -> int

  val detection_latency : t -> Stats.Histogram.t
  (** Time from last successful heartbeat to failure declaration, per
      detection. *)

  val counters : t -> (string * int) list
  (** [wd_heartbeats], [wd_detections], [wd_restarts],
      [wd_quarantines]. *)
end

(** {1 Poller}

    Periodic telemetry sampling (§5 of the paper: engine groups export
    queue depths and CPU attribution to fleet monitoring).  Each tick
    samples every registered queue probe plus the machine's per-account
    CPU totals into {!Stats.Series} entries in the metric registry
    ([queue_depth] and [cpu_account_busy_ns], labeled by machine).

    Sampling is strictly read-only against simulation state, so it
    cannot perturb same-seed determinism.  Note the timer re-arms
    forever: drive the loop with [~until] (or {!stop} the poller) or
    [Sim.Loop.run] will never go idle. *)

module Poller : sig
  type control := t
  type t

  val create : control:control -> ?period:Sim.Time.t -> unit -> t
  (** [period] defaults to 50us.  Raises [Invalid_argument] when
      non-positive. *)

  val watch_queue : t -> name:string -> (unit -> int) -> unit
  (** Sample [f ()] each tick into a [queue_depth] series labeled with
      the machine and [name]. *)

  val start : t -> unit
  (** Arm the periodic timer (no-op if already armed). *)

  val stop : t -> unit

  val ticks : t -> int
  (** Sampling passes completed so far. *)
end
