module Time = Sim.Time
module Loop = Sim.Loop

type message = ..
type message += Error_no_service of string

(* One domain-socket RPC round trip: two ring switches plus wakeups on
   both sides; tens of microseconds, well off the fast path. *)
let rpc_round_trip = Time.us 25
let mailbox_retry = Time.us 5

type t = {
  lp : Loop.t;
  mach : Cpu.Sched.machine;
  ctl_name : string;
  services : (string, message -> message) Hashtbl.t;
  clients : (string, unit) Hashtbl.t;
  regions : (string, Memory.Region.t list ref) Hashtbl.t;
}

let create ~loop ~machine ~name =
  {
    lp = loop;
    mach = machine;
    ctl_name = name;
    services = Hashtbl.create 8;
    clients = Hashtbl.create 16;
    regions = Hashtbl.create 16;
  }

let name t = t.ctl_name
let machine t = t.mach

let register_service t ~service handler =
  Hashtbl.replace t.services service handler

let call ctx t ~service msg =
  let costs = Cpu.Sched.costs t.mach in
  Cpu.Thread.syscall ctx costs.Sim.Costs.syscall;
  Cpu.Thread.sleep ctx rpc_round_trip;
  match Hashtbl.find_opt t.services service with
  | Some handler -> handler msg
  | None -> Error_no_service service

let authenticate ctx t ~client =
  let costs = Cpu.Sched.costs t.mach in
  Cpu.Thread.syscall ctx costs.Sim.Costs.syscall;
  Cpu.Thread.sleep ctx rpc_round_trip;
  Hashtbl.replace t.clients client ()

let is_authenticated t ~client = Hashtbl.mem t.clients client

let register_region t ~client region =
  let lst =
    match Hashtbl.find_opt t.regions client with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.regions client r;
        r
  in
  lst := region :: !lst

let regions_of t ~client =
  match Hashtbl.find_opt t.regions client with Some r -> !r | None -> []

let memory_charged t ~client =
  List.fold_left (fun acc r -> acc + Memory.Region.size r) 0 (regions_of t ~client)

let recover_engine t ~group engine ~after ~on_recovered =
  (* Crash recovery is a control-plane action: detection plus a restart
     RPC round trip, then the engine is reloaded into its group with its
     queues intact (same mechanism as a transparent upgrade, §4.3). *)
  let delay = Time.add after rpc_round_trip in
  ignore
    (Loop.after t.lp delay (fun () ->
         if not (Engine.is_attached engine) then begin
           Engine.add group engine;
           Engine.notify engine;
           on_recovered ()
         end))

let post_to_engine ctx engine work =
  let done_flag = ref false in
  let self = Cpu.Thread.task ctx in
  let wrapped () =
    work ();
    done_flag := true;
    Cpu.Sched.wake self
  in
  let rec try_post () =
    if Squeue.Mailbox.post (Engine.mailbox engine) wrapped then begin
      Engine.notify engine;
      while not !done_flag do
        Cpu.Thread.wait ctx
      done
    end
    else begin
      Cpu.Thread.sleep ctx mailbox_retry;
      try_post ()
    end
  in
  try_post ()

(* -- Watchdog: engine health monitoring (§4.3) -------------------------- *)

module Watchdog = struct
  type control = t

  type state = Healthy | Suspect | Restarting | Quarantined

  let state_to_string = function
    | Healthy -> "healthy"
    | Suspect -> "suspect"
    | Restarting -> "restarting"
    | Quarantined -> "quarantined"

  type entry = {
    w_eng : Engine.t;
    w_group : Engine.group;  (* fallback when the engine has no home *)
    mutable st : state;
    mutable last_beat : Time.t;
    mutable probe_outstanding : bool;
    mutable probe_seq : int;
    mutable missed : int;
    mutable restarts : int;
    mutable consec_failures : int;
    mutable healthy_since : Time.t;
        (* Start of the current healthy stretch; [max_int] while the
           engine is declared dead.  The consecutive-failure count only
           resets after a full stability window of health, so an engine
           that answers one heartbeat between flaps still escalates. *)
  }

  type t = {
    wd_ctl : control;
    wd_lp : Loop.t;
    period : Time.t;
    miss_threshold : int;
    restart_backoff : Time.t;
    max_restart_attempts : int;
    stable_window : Time.t;
    mutable entries : entry list;
    mutable timer : Loop.handle option;
    (* Registry counters ("wd_*", labeled by control name) are
       cumulative across watchdog instances; the baselines snapshotted
       at create time keep [counters] per-instance. *)
    wcnt : (string * (Stats.Counter.t * int)) list;
    detect_hist : Stats.Histogram.t;  (* per-instance, for exact tests *)
    reg_detect_hist : Stats.Histogram.t;  (* registry twin *)
  }

  let component = "watchdog"

  let counter_names =
    [ "wd_heartbeats"; "wd_detections"; "wd_restarts"; "wd_quarantines" ]

  let wbump t key =
    match List.assoc_opt key t.wcnt with
    | Some (c, _) -> Stats.Counter.incr c
    | None -> invalid_arg ("Watchdog: unknown counter " ^ key)

  let trace t fmt = Sim.Trace.emit t.wd_lp Sim.Trace.Info ~component fmt

  let create ~control ?(period = Time.us 100) ?(miss_threshold = 3)
      ?(restart_backoff = Time.us 200) ?(max_restart_attempts = 3) () =
    if period <= 0 then invalid_arg "Watchdog.create: period";
    if miss_threshold <= 0 then invalid_arg "Watchdog.create: miss_threshold";
    if restart_backoff <= 0 then invalid_arg "Watchdog.create: restart_backoff";
    if max_restart_attempts <= 0 then
      invalid_arg "Watchdog.create: max_restart_attempts";
    {
      wd_ctl = control;
      wd_lp = control.lp;
      period;
      miss_threshold;
      restart_backoff;
      max_restart_attempts;
      stable_window = Time.scale period (float_of_int (2 * miss_threshold));
      entries = [];
      timer = None;
      wcnt =
        (let labels = [ ("control", control.ctl_name) ] in
         List.map
           (fun n ->
             let c = Stats.Registry.counter ~labels n in
             (n, (c, Stats.Counter.value c)))
           counter_names);
      detect_hist = Stats.Histogram.create ();
      reg_detect_hist =
        Stats.Registry.histogram
          ~labels:[ ("control", control.ctl_name) ]
          "wd_detection_latency_ns";
    }

  let find_entry t e = List.find_opt (fun en -> en.w_eng == e) t.entries

  let watch t ~group e =
    match find_entry t e with
    | Some _ -> ()
    | None ->
        t.entries <-
          t.entries
          @ [
              {
                w_eng = e;
                w_group = group;
                st = Healthy;
                last_beat = Loop.now t.wd_lp;
                probe_outstanding = false;
                probe_seq = 0;
                missed = 0;
                restarts = 0;
                consec_failures = 0;
                healthy_since = Loop.now t.wd_lp;
              };
            ]

  let watch_group t g =
    List.iter (fun e -> watch t ~group:g e) (Engine.engines g)

  let restore_group en =
    match Engine.home en.w_eng with Some g -> g | None -> en.w_group

  let heal en ~now =
    en.st <- Healthy;
    en.probe_outstanding <- false;
    en.missed <- 0;
    en.last_beat <- now;
    if en.healthy_since = max_int then en.healthy_since <- now

  let detect t en ~now =
    en.healthy_since <- max_int;
    wbump t "wd_detections";
    let latency = Time.max 0 (Time.sub now en.last_beat) in
    Stats.Histogram.record t.detect_hist latency;
    Stats.Histogram.record t.reg_detect_hist latency;
    en.consec_failures <- en.consec_failures + 1;
    trace t "detected unresponsive engine %s (miss %d, failure %d)"
      (Engine.name en.w_eng) en.missed en.consec_failures;
    if en.consec_failures > t.max_restart_attempts then begin
      (* Escalate: repeated restarts did not stick.  Quarantine the
         engine (degraded state, operator intervention required) instead
         of flapping forever. *)
      en.st <- Quarantined;
      wbump t "wd_quarantines";
      if Engine.is_attached en.w_eng then
        Engine.remove (restore_group en) en.w_eng;
      trace t "quarantined engine %s after %d failed restarts"
        (Engine.name en.w_eng)
        (en.consec_failures - 1)
    end
    else begin
      en.st <- Restarting;
      let group = restore_group en in
      (* A wedged instance is still attached: kill it first so the
         reload instantiates fresh run state (mailbox and rings
         survive). *)
      if Engine.is_attached en.w_eng then Engine.remove group en.w_eng;
      (* Exponential backoff between restart attempts. *)
      let backoff =
        Time.scale t.restart_backoff
          (2.0 ** float_of_int (en.consec_failures - 1))
      in
      recover_engine t.wd_ctl ~group en.w_eng ~after:backoff
        ~on_recovered:(fun () ->
          en.restarts <- en.restarts + 1;
          wbump t "wd_restarts";
          heal en ~now:(Loop.now t.wd_lp);
          trace t "restarted engine %s (attempt %d)" (Engine.name en.w_eng)
            en.consec_failures)
    end

  let miss t en ~now =
    en.missed <- en.missed + 1;
    if en.st = Healthy then en.st <- Suspect;
    if en.missed >= t.miss_threshold then detect t en ~now

  let probe t en ~now =
    en.probe_seq <- en.probe_seq + 1;
    let seq = en.probe_seq in
    let posted =
      Squeue.Mailbox.post (Engine.mailbox en.w_eng) (fun () ->
          (* Runs on the engine's own thread: proof of liveness.  The
             sequence check discards stale probes left in the surviving
             mailbox across a restart: only the current outstanding
             probe counts, so "the restart stuck" is proven by answering
             a fresh heartbeat, not by draining the backlog. *)
          if seq = en.probe_seq && en.st <> Quarantined then begin
            heal en ~now:(Loop.now t.wd_lp);
            wbump t "wd_heartbeats"
          end)
    in
    if posted then begin
      en.probe_outstanding <- true;
      Engine.notify en.w_eng
    end
    else
      (* The depth-1 mailbox has been occupied for a full period: the
         engine is not draining it, which is itself a missed
         heartbeat. *)
      miss t en ~now

  let tick t () =
    let now = Loop.now t.wd_lp in
    List.iter
      (fun en ->
        match en.st with
        | Quarantined -> ()
        | Restarting ->
            (* Recovery in flight.  If someone else (e.g. crash
               recovery) reattached the engine meanwhile, our pending
               reload is a no-op and the engine is healthy again. *)
            if Engine.is_attached en.w_eng && not (Engine.is_wedged en.w_eng)
            then heal en ~now
        | Healthy | Suspect ->
            (* A full stability window of health forgives past failures;
               until then, a flapping engine keeps escalating toward
               quarantine even though each restart briefly sticks. *)
            if
              en.consec_failures > 0
              && en.missed = 0
              && en.healthy_since <> max_int
              && Time.sub now en.healthy_since >= t.stable_window
            then en.consec_failures <- 0;
            if Engine.is_migrating en.w_eng then begin
              (* An upgrade transaction owns the engine: excused from
                 heartbeat deadlines until it commits or rolls back. *)
              en.probe_outstanding <- false;
              en.missed <- 0;
              en.last_beat <- now
            end
            else if en.probe_outstanding then miss t en ~now
            else probe t en ~now)
      t.entries

  let start t =
    match t.timer with
    | Some _ -> ()
    | None -> t.timer <- Some (Loop.every t.wd_lp t.period (tick t))

  let stop t =
    match t.timer with
    | Some h ->
        Loop.cancel h;
        t.timer <- None
    | None -> ()

  let state t e = Option.map (fun en -> en.st) (find_entry t e)

  let restarts_of t e =
    match find_entry t e with Some en -> en.restarts | None -> 0

  let detection_latency t = t.detect_hist

  let counters t =
    List.map (fun (n, (c, base)) -> (n, Stats.Counter.value c - base)) t.wcnt
end

(* -- Poller: periodic telemetry sampling -------------------------------- *)

module Poller = struct
  type control = t

  type probe = { sample : unit -> int; ser : Stats.Series.t }

  type t = {
    po_ctl : control;
    po_lp : Loop.t;
    po_period : Time.t;
    mutable probes : probe list;
    mutable timer : Loop.handle option;
    mutable n_ticks : int;
  }

  let create ~control ?(period = Time.us 50) () =
    if period <= 0 then invalid_arg "Poller.create: period";
    {
      po_ctl = control;
      po_lp = control.lp;
      po_period = period;
      probes = [];
      timer = None;
      n_ticks = 0;
    }

  let machine_label t =
    ("machine", Cpu.Sched.machine_name t.po_ctl.mach)

  let watch_queue t ~name sample =
    let ser =
      Stats.Registry.series
        ~labels:[ machine_label t; ("queue", name) ]
        "queue_depth"
    in
    t.probes <- t.probes @ [ { sample; ser } ]

  (* One sampling pass.  Strictly read-only against simulation state:
     the poller observes queue depths and CPU accounts but never mutates
     them, draws no randomness, and so cannot perturb same-seed runs. *)
  let tick t () =
    let now = Loop.now t.po_lp in
    t.n_ticks <- t.n_ticks + 1;
    List.iter
      (fun p -> Stats.Series.add p.ser now (float_of_int (p.sample ())))
      t.probes;
    List.iter
      (fun (account, busy) ->
        let ser =
          Stats.Registry.series
            ~labels:[ machine_label t; ("account", account) ]
            "cpu_account_busy_ns"
        in
        Stats.Series.add ser now (float_of_int busy))
      (Cpu.Sched.accounts t.po_ctl.mach)

  let start t =
    match t.timer with
    | Some _ -> ()
    | None -> t.timer <- Some (Loop.every t.po_lp t.po_period (tick t))

  let stop t =
    match t.timer with
    | Some h ->
        Loop.cancel h;
        t.timer <- None
    | None -> ()

  let ticks t = t.n_ticks
end
