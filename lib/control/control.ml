module Time = Sim.Time
module Loop = Sim.Loop

type message = ..
type message += Error_no_service of string

(* One domain-socket RPC round trip: two ring switches plus wakeups on
   both sides; tens of microseconds, well off the fast path. *)
let rpc_round_trip = Time.us 25
let mailbox_retry = Time.us 5

type t = {
  lp : Loop.t;
  mach : Cpu.Sched.machine;
  ctl_name : string;
  services : (string, message -> message) Hashtbl.t;
  clients : (string, unit) Hashtbl.t;
  regions : (string, Memory.Region.t list ref) Hashtbl.t;
}

let create ~loop ~machine ~name =
  {
    lp = loop;
    mach = machine;
    ctl_name = name;
    services = Hashtbl.create 8;
    clients = Hashtbl.create 16;
    regions = Hashtbl.create 16;
  }

let name t = t.ctl_name
let machine t = t.mach

let register_service t ~service handler =
  Hashtbl.replace t.services service handler

let call ctx t ~service msg =
  let costs = Cpu.Sched.costs t.mach in
  Cpu.Thread.syscall ctx costs.Sim.Costs.syscall;
  Cpu.Thread.sleep ctx rpc_round_trip;
  match Hashtbl.find_opt t.services service with
  | Some handler -> handler msg
  | None -> Error_no_service service

let authenticate ctx t ~client =
  let costs = Cpu.Sched.costs t.mach in
  Cpu.Thread.syscall ctx costs.Sim.Costs.syscall;
  Cpu.Thread.sleep ctx rpc_round_trip;
  Hashtbl.replace t.clients client ()

let is_authenticated t ~client = Hashtbl.mem t.clients client

let register_region t ~client region =
  let lst =
    match Hashtbl.find_opt t.regions client with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.regions client r;
        r
  in
  lst := region :: !lst

let regions_of t ~client =
  match Hashtbl.find_opt t.regions client with Some r -> !r | None -> []

let memory_charged t ~client =
  List.fold_left (fun acc r -> acc + Memory.Region.size r) 0 (regions_of t ~client)

let recover_engine t ~group engine ~after ~on_recovered =
  (* Crash recovery is a control-plane action: detection plus a restart
     RPC round trip, then the engine is reloaded into its group with its
     queues intact (same mechanism as a transparent upgrade, §4.3). *)
  let delay = Time.add after rpc_round_trip in
  ignore
    (Loop.after t.lp delay (fun () ->
         if not (Engine.is_attached engine) then begin
           Engine.add group engine;
           Engine.notify engine;
           on_recovered ()
         end))

let post_to_engine ctx engine work =
  let done_flag = ref false in
  let self = Cpu.Thread.task ctx in
  let wrapped () =
    work ();
    done_flag := true;
    Cpu.Sched.wake self
  in
  let rec try_post () =
    if Squeue.Mailbox.post (Engine.mailbox engine) wrapped then begin
      Engine.notify engine;
      while not !done_flag do
        Cpu.Thread.wait ctx
      done
    end
    else begin
      Cpu.Thread.sleep ctx mailbox_retry;
      try_post ()
    end
  in
  try_post ()
