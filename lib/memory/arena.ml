(* Int-indexed flat arena with generation-tagged handles.

   Mirrors the [Pool.release_owner] generation idiom at object
   granularity: every slot carries a generation counter, bumped on
   free, and a handle minted under an older generation simply misses —
   [get] returns [None], [free] returns [false].  Stale access is a
   checked no-op, never a use-after-free.

   Iteration walks slots in ascending index order, which depends only
   on the allocation/free history — never on hash seeds — so scans
   stay deterministic under [OCAMLRUNPARAM=R]. *)

type handle = { a_idx : int; a_gen : int }

type 'a t = {
  mutable data : 'a option array;
  mutable gens : int array;
  (* LIFO free list of slot indices; [free_top] entries are valid. *)
  mutable free_slots : int array;
  mutable free_top : int;
  mutable high : int;  (* slots [0, high) have been minted at least once *)
  mutable live : int;
}

let create ?(initial = 64) () =
  let initial = max 8 initial in
  {
    data = Array.make initial None;
    gens = Array.make initial 0;
    free_slots = Array.make initial 0;
    free_top = 0;
    high = 0;
    live = 0;
  }

let capacity t = Array.length t.data
let live t = t.live
let high_water t = t.high

let grow t =
  let cap = Array.length t.data in
  let cap' = cap * 2 in
  let data' = Array.make cap' None in
  Array.blit t.data 0 data' 0 cap;
  t.data <- data';
  let gens' = Array.make cap' 0 in
  Array.blit t.gens 0 gens' 0 cap;
  t.gens <- gens';
  let free' = Array.make cap' 0 in
  Array.blit t.free_slots 0 free' 0 t.free_top;
  t.free_slots <- free'

let alloc t v =
  let idx =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free_slots.(t.free_top)
    end
    else begin
      if t.high = Array.length t.data then grow t;
      let i = t.high in
      t.high <- t.high + 1;
      i
    end
  in
  t.data.(idx) <- Some v;
  t.live <- t.live + 1;
  { a_idx = idx; a_gen = t.gens.(idx) }

let is_live t h =
  h.a_idx >= 0 && h.a_idx < t.high
  && t.gens.(h.a_idx) = h.a_gen
  && t.data.(h.a_idx) <> None

let get t h = if is_live t h then t.data.(h.a_idx) else None

let get_exn t h =
  match get t h with
  | Some v -> v
  | None -> invalid_arg "Arena.get_exn: stale handle"

let free t h =
  if not (is_live t h) then false
  else begin
    t.data.(h.a_idx) <- None;
    (* Bump the generation so handles minted for this slot's previous
       occupant miss forever. *)
    t.gens.(h.a_idx) <- t.gens.(h.a_idx) + 1;
    t.free_slots.(t.free_top) <- h.a_idx;
    t.free_top <- t.free_top + 1;
    t.live <- t.live - 1;
    true
  end

let iter t f =
  for i = 0 to t.high - 1 do
    match t.data.(i) with
    | Some v -> f { a_idx = i; a_gen = t.gens.(i) } v
    | None -> ()
  done

let fold t f acc =
  let acc = ref acc in
  iter t (fun h v -> acc := f !acc h v);
  !acc

let clear t =
  for i = 0 to t.high - 1 do
    if t.data.(i) <> None then begin
      t.data.(i) <- None;
      t.gens.(i) <- t.gens.(i) + 1
    end
  done;
  t.free_top <- 0;
  t.high <- 0;
  t.live <- 0
