(** Int-indexed flat arena with generation-tagged handles.

    The object-granularity cousin of [Pool]'s owner generations: every
    slot carries a generation counter bumped on free, and a handle
    minted under an older generation is simply stale — [get] returns
    [None] and [free] returns [false].  Stale access is a checked
    no-op, never a use-after-free.

    Iteration order is ascending slot index, a pure function of the
    allocation/free history — deterministic under [OCAMLRUNPARAM=R],
    unlike [Hashtbl] folds. *)

type handle
(** A generation-tagged reference to an arena slot. *)

type 'a t

val create : ?initial:int -> unit -> 'a t
(** [create ()] makes an empty arena.  [initial] (default 64) sizes the
    backing arrays; they double as needed. *)

val alloc : 'a t -> 'a -> handle
(** O(1) amortized.  Reuses the most recently freed slot first. *)

val free : 'a t -> handle -> bool
(** O(1).  Returns [false] (and does nothing) if the handle is stale —
    the slot was already freed, possibly reused by a newer occupant. *)

val get : 'a t -> handle -> 'a option
(** O(1).  [None] if the handle is stale. *)

val get_exn : 'a t -> handle -> 'a
(** @raise Invalid_argument on a stale handle. *)

val is_live : 'a t -> handle -> bool

val live : 'a t -> int
(** Number of occupied slots. *)

val capacity : 'a t -> int

val high_water : 'a t -> int
(** Highest slot count ever minted (iteration scans this range). *)

val iter : 'a t -> (handle -> 'a -> unit) -> unit
(** Ascending slot-index order; skips free slots. *)

val fold : 'a t -> ('b -> handle -> 'a -> 'b) -> 'b -> 'b

val clear : 'a t -> unit
(** Free every slot (bumping generations) and reset the high-water
    mark. *)
