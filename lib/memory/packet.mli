(** Simulated network packets.

    A packet carries addressing metadata and a [payload], an extensible
    variant so that each protocol layer (kernel TCP, Pony Express, raw
    workloads) attaches its own typed header without this module knowing
    about any of them.  Packet payload *bytes* are represented only by
    their length: the simulation charges copy costs and wire time from
    sizes, and correctness-sensitive data (op arguments, one-sided
    results) travels inside the typed payloads. *)

type addr = int
(** Host address: index of the machine in the fabric. *)

type payload = ..
(** Extensible protocol payload. *)

type payload += Empty

type t = {
  id : int;  (** Unique per simulation, for tracing. *)
  src : addr;
  dst : addr;
  flow_hash : int;  (** Used for NIC receive-side steering. *)
  qos : int;  (** Fabric QoS class (Pony runs on its own class, §3.1). *)
  wire_bytes : int;  (** Total size on the wire, headers included. *)
  payload_bytes : int;  (** Application bytes carried. *)
  payload : payload;
  mutable sent_at : Sim.Time.t;  (** Stamped by the NIC on transmit. *)
  mutable corrupted : bool;
      (** Payload poisoned in flight (fault injection).  The wire CRC
          still passes — corruption is detected only by the transport's
          end-to-end check, which must discard the packet and recover by
          retransmission. *)
}

val make :
  id:int ->
  src:addr ->
  dst:addr ->
  ?flow_hash:int ->
  ?qos:int ->
  wire_bytes:int ->
  ?payload_bytes:int ->
  payload ->
  unit ->
  t

val pp : Format.formatter -> t -> unit

module Id_gen : sig
  type packet = t

  type t
  (** Per-simulation packet id generator. *)

  val create : unit -> t
  val next : t -> int
end
