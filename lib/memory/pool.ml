type t = {
  pool_name : string;
  capacity_bytes : int;
  mutable used : int;
  mutable watermark : int;
  per_owner : (string, int) Hashtbl.t;
  (* Bumped by [release_owner]: allocations minted under an older
     generation were already reclaimed in bulk, so their individual
     [free]s must not subtract again. *)
  owner_gen : (string, int) Hashtbl.t;
  mutable n_released : int;
}

type alloc = {
  pool : t;
  owner : string;
  bytes : int;
  mutable live : bool;
  gen : int;
}

exception Exhausted of string

let create ~name ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Pool.create";
  {
    pool_name = name;
    capacity_bytes;
    used = 0;
    watermark = 0;
    per_owner = Hashtbl.create 16;
    owner_gen = Hashtbl.create 16;
    n_released = 0;
  }

let name t = t.pool_name
let capacity t = t.capacity_bytes
let in_use t = t.used
let available t = t.capacity_bytes - t.used

let gen_of t owner =
  Option.value ~default:0 (Hashtbl.find_opt t.owner_gen owner)

let try_alloc t ~owner ~bytes =
  if bytes <= 0 then invalid_arg "Pool.alloc: bytes"
  else if t.used + bytes > t.capacity_bytes then None
  else begin
    t.used <- t.used + bytes;
    if t.used > t.watermark then t.watermark <- t.used;
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.per_owner owner) in
    Hashtbl.replace t.per_owner owner (prev + bytes);
    Some { pool = t; owner; bytes; live = true; gen = gen_of t owner }
  end

let alloc t ~owner ~bytes =
  match try_alloc t ~owner ~bytes with
  | Some a -> a
  | None -> raise (Exhausted t.pool_name)

let free a =
  if not a.live then invalid_arg "Pool.free: double free";
  a.live <- false;
  let t = a.pool in
  (* A stale-generation allocation was already reclaimed in bulk by
     [release_owner]; subtracting again would corrupt the accounting. *)
  if a.gen = gen_of t a.owner then begin
    t.used <- t.used - a.bytes;
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.per_owner a.owner) in
    let next = prev - a.bytes in
    if next <= 0 then Hashtbl.remove t.per_owner a.owner
    else Hashtbl.replace t.per_owner a.owner next
  end

let release_owner t ~owner =
  match Hashtbl.find_opt t.per_owner owner with
  | None ->
      (* Nothing charged; still bump the generation so allocations
         handed out earlier (and already freed to zero) stay invalid. *)
      Hashtbl.replace t.owner_gen owner (gen_of t owner + 1);
      0
  | Some bytes ->
      Hashtbl.remove t.per_owner owner;
      Hashtbl.replace t.owner_gen owner (gen_of t owner + 1);
      t.used <- t.used - bytes;
      t.n_released <- t.n_released + bytes;
      bytes

let released_bytes t = t.n_released

let owner_usage t owner =
  Option.value ~default:0 (Hashtbl.find_opt t.per_owner owner)

let owners t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_owner []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let high_watermark t = t.watermark

let check_consistency t =
  let owner_sum = Hashtbl.fold (fun _ b acc -> acc + b) t.per_owner 0 in
  if t.used < 0 then Some (Printf.sprintf "pool %s used %d < 0" t.pool_name t.used)
  else if t.used > t.capacity_bytes then
    Some
      (Printf.sprintf "pool %s used %d exceeds capacity %d" t.pool_name t.used
         t.capacity_bytes)
  else if owner_sum <> t.used then
    Some
      (Printf.sprintf
         "pool %s per-owner charges sum to %d but used is %d (%s)" t.pool_name
         owner_sum t.used
         (String.concat ", "
            (List.map (fun (o, b) -> Printf.sprintf "%s=%d" o b) (owners t))))
  else if t.watermark < t.used then
    Some
      (Printf.sprintf "pool %s watermark %d below used %d" t.pool_name
         t.watermark t.used)
  else if Hashtbl.fold (fun _ b acc -> acc || b <= 0) t.per_owner false then
    Some (Printf.sprintf "pool %s holds a non-positive owner charge" t.pool_name)
  else None

let check_quiesced t =
  if t.used = 0 then None
  else
    Some
      (Printf.sprintf "pool %s not quiesced: %d bytes live (%s)" t.pool_name
         t.used
         (String.concat ", "
            (List.map (fun (o, b) -> Printf.sprintf "%s=%d" o b) (owners t))))

let assert_quiesced t =
  match check_quiesced t with None -> () | Some msg -> failwith msg
