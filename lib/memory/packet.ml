type addr = int
type payload = ..
type payload += Empty

type t = {
  id : int;
  src : addr;
  dst : addr;
  flow_hash : int;
  qos : int;
  wire_bytes : int;
  payload_bytes : int;
  payload : payload;
  mutable sent_at : Sim.Time.t;
  mutable corrupted : bool;
}

let make ~id ~src ~dst ?(flow_hash = 0) ?(qos = 0) ~wire_bytes ?(payload_bytes = 0)
    payload () =
  if wire_bytes <= 0 then invalid_arg "Packet.make: wire_bytes";
  {
    id;
    src;
    dst;
    flow_hash;
    qos;
    wire_bytes;
    payload_bytes;
    payload;
    sent_at = 0;
    corrupted = false;
  }

let pp fmt p =
  Format.fprintf fmt "pkt#%d %d->%d %dB(qos %d)" p.id p.src p.dst p.wire_bytes
    p.qos

module Id_gen = struct
  type packet = t
  type t = { mutable next_id : int }

  let create () = { next_id = 0 }

  let next t =
    let id = t.next_id in
    t.next_id <- id + 1;
    id
end
