(** Buffer pools with per-owner accounting.

    Section 2.5: Snap attributes memory consumed on behalf of applications
    back to those applications.  A [Pool.t] hands out fixed-size buffers
    up to a byte capacity and tracks consumption per owner so the
    accounting tests and the control plane can observe it.  Buffer
    contents are not materialised; only sizes are tracked. *)

type t

type alloc = private {
  pool : t;
  owner : string;
  bytes : int;
  mutable live : bool;
  gen : int;
      (** Owner generation at mint time; {!release_owner} invalidates
          older generations so their late [free]s are no-ops. *)
}
(** A live allocation; return it with {!free}. *)

exception Exhausted of string
(** Raised when an allocation would exceed pool capacity. *)

val create : name:string -> capacity_bytes:int -> t

val name : t -> string
val capacity : t -> int
val in_use : t -> int
val available : t -> int

val alloc : t -> owner:string -> bytes:int -> alloc
(** Allocate [bytes] charged to [owner].  Raises {!Exhausted} if the pool
    cannot satisfy the request. *)

val try_alloc : t -> owner:string -> bytes:int -> alloc option

val free : alloc -> unit
(** Return an allocation.  Double-free raises [Invalid_argument].
    Freeing an allocation whose owner was since bulk-reclaimed with
    {!release_owner} is a safe no-op: the bytes were already returned. *)

val release_owner : t -> owner:string -> int
(** Reclaim every byte currently charged to [owner] in one step and
    invalidate that owner's outstanding allocations (their later
    {!free}s become no-ops).  Used by crash recovery: an engine that
    dies with in-flight allocations must not strand pool bytes forever.
    Returns the number of bytes reclaimed. *)

val released_bytes : t -> int
(** Total bytes ever bulk-reclaimed via {!release_owner}. *)

val owner_usage : t -> string -> int
(** Bytes currently charged to the given owner. *)

val owners : t -> (string * int) list
(** All owners with non-zero usage, with their byte counts. *)

val high_watermark : t -> int
(** Maximum [in_use] ever observed. *)

val check_consistency : t -> string option
(** Internal-accounting invariant: [in_use] within [0, capacity],
    per-owner charges positive and summing exactly to [in_use],
    watermark no lower than the live total.  [None] = healthy; used by
    the invariant checker at cadence. *)

val check_quiesced : t -> string option
(** Non-raising form of {!assert_quiesced}: [None] when drained, else
    the leak description naming the owners still charged. *)

val assert_quiesced : t -> unit
(** Raise [Failure] (naming the owners still charged) unless the pool
    is completely drained.  Chaos and overload workloads call this at
    quiesce: any live byte after every operation has completed is a
    leak. *)
