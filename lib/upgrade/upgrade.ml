module Time = Sim.Time
module Loop = Sim.Loop

type phase =
  | Prepare
  | Brownout
  | Blackout
  | Commit
  | Rollback of string
  | Retry of int
  | Give_up of string

let phase_to_string = function
  | Prepare -> "prepare"
  | Brownout -> "brownout"
  | Blackout -> "blackout"
  | Commit -> "commit"
  | Rollback r -> "rollback:" ^ r
  | Retry n -> Printf.sprintf "retry:%d" n
  | Give_up r -> "give-up:" ^ r

type outcome = Committed | Gave_up of string

type report = {
  engine_name : string;
  state_bytes : int;
  brownout_scheduled : Time.t;
  brownout : Time.t;  (* measured: blackout start - attempt start *)
  blackout : Time.t;  (* measured on the final attempt *)
  started_at : Time.t;
  finished_at : Time.t;
  attempts : int;
  rollbacks : int;
  outcome : outcome;
}

type config = {
  gap : Time.t;
  blackout_slo : Time.t option;
  max_attempts : int;
  retry_backoff : Time.t;
}

let default_config =
  {
    gap = Time.ms 1;
    blackout_slo = None;
    max_attempts = 3;
    retry_backoff = Time.ms 5;
  }

let component = "upgrade"

let serialize_time ~(costs : Sim.Costs.t) bytes =
  int_of_float
    (Float.round (float_of_int bytes /. costs.Sim.Costs.serialize_bytes_per_ns))

let blackout_of ~costs ~state_bytes =
  (* Detach filters + serialize + attach filters + deserialize. *)
  (2 * costs.Sim.Costs.nic_filter_update) + (2 * serialize_time ~costs state_bytes)

(* The brownout transfers control-plane connections and pre-builds the
   new engine's structures in the background; its duration scales with
   the same state but at a fraction of the cost because it does not
   quiesce anything. *)
let brownout_of ~costs ~state_bytes =
  Time.max (Time.ms 1) (serialize_time ~costs (state_bytes / 4))

let upgrade ~loop ~costs ~old_group ~new_group
    ?(extra_state_bytes = fun _ -> 0) ?(config = default_config)
    ?(on_transition = fun ~engine:_ _ -> ()) ~on_done () =
  if config.max_attempts <= 0 then invalid_arg "Upgrade.upgrade: max_attempts";
  let queue = Queue.create () in
  List.iter (fun e -> Queue.add e queue) (Engine.engines old_group);
  let reports = ref [] in
  let rec next () =
    match Queue.take_opt queue with
    | None -> on_done (List.rev !reports)
    | Some e -> migrate e
  and migrate e =
    let name = Engine.name e in
    let started_at = Loop.now loop in
    let rollbacks = ref 0 in
    let track = "upgrade/" ^ name in
    let transition ph =
      Sim.Trace.emit loop Sim.Trace.Info ~component "engine %s: %s" name
        (phase_to_string ph);
      if Sim.Span.enabled () then
        Sim.Span.emit loop ~cat:"upgrade" ~track (phase_to_string ph);
      on_transition ~engine:name ph
    in
    (* Retroactive window spans: measured only once the phase ends, so
       they are emitted with an explicit start timestamp. *)
    let window_span ~start ~dur what =
      if Sim.Span.enabled () && dur > 0 then
        Sim.Span.emit loop ~cat:"upgrade" ~track ~start ~dur what
    in
    let finish ~state_bytes ~brownout_scheduled ~brownout ~blackout ~attempts
        ~outcome =
      reports :=
        {
          engine_name = name;
          state_bytes;
          brownout_scheduled;
          brownout;
          blackout;
          started_at;
          finished_at = Loop.now loop;
          attempts;
          rollbacks = !rollbacks;
          outcome;
        }
        :: !reports;
      ignore (Loop.after loop config.gap next)
    in
    let rec attempt n =
      let attempt_start = Loop.now loop in
      let state_bytes = Engine.state_bytes e + extra_state_bytes e in
      let brownout_scheduled = brownout_of ~costs ~state_bytes in
      (* Abort the transaction: restore the old instance (state intact)
         and either retry after a backed-off delay or give up, leaving
         the engine in the old group.  [readd] is false when the
         transaction never took ownership (crash recovery may hold a
         pending reload we must not race). *)
      let abort ?(readd = true) ~brownout ~blackout reason =
        transition (Rollback reason);
        incr rollbacks;
        Engine.set_migrating e false;
        Engine.clear_failed e;
        if readd && not (Engine.is_attached e) then begin
          Engine.add old_group e;
          Engine.notify e
        end;
        if n >= config.max_attempts then begin
          transition (Give_up reason);
          finish ~state_bytes ~brownout_scheduled ~brownout ~blackout
            ~attempts:n ~outcome:(Gave_up reason)
        end
        else begin
          transition (Retry (n + 1));
          let backoff =
            Time.scale config.retry_backoff (2.0 ** float_of_int (n - 1))
          in
          ignore (Loop.after loop backoff (fun () -> attempt (n + 1)))
        end
      in
      transition Prepare;
      if not (Engine.is_attached e) then
        (* Engine is down (crashed, or crash recovery in flight): we
           cannot brown it out.  Leave it to its recovery and retry. *)
        abort ~readd:false ~brownout:0 ~blackout:0 "not-attached"
      else begin
        (* Brownout: background transfer; the engine keeps running. *)
        transition Brownout;
        ignore
          (Loop.after loop brownout_scheduled (fun () ->
               let black_start = Loop.now loop in
               let brownout = Time.sub black_start attempt_start in
               window_span ~start:attempt_start ~dur:brownout
                 "brownout_window";
               if not (Engine.is_attached e) then
                 (* Lost the engine during brownout (crash): nothing was
                    quiesced yet, so simply retry once it is back. *)
                 abort ~readd:false ~brownout ~blackout:0
                   "engine-lost-in-brownout"
               else begin
                 (* Blackout: the transaction takes ownership.  Cease
                    processing, detach filters, serialize. *)
                 Engine.set_migrating e true;
                 Engine.remove old_group e;
                 transition Blackout;
                 let blackout = blackout_of ~costs ~state_bytes in
                 let over_slo =
                   match config.blackout_slo with
                   | Some slo -> blackout > slo
                   | None -> false
                 in
                 if over_slo then
                   (* The serialize/deserialize would exceed the
                      per-engine blackout SLO: abort at the deadline and
                      resume the old instance rather than finish late. *)
                   let slo = Option.get config.blackout_slo in
                   ignore
                     (Loop.after loop slo (fun () ->
                          window_span ~start:black_start ~dur:slo
                            "blackout_window";
                          abort ~brownout ~blackout:slo
                            "blackout-slo-exceeded"))
                 else
                   ignore
                     (Loop.after loop blackout (fun () ->
                          Engine.set_migrating e false;
                          let measured =
                            Time.sub (Loop.now loop) black_start
                          in
                          window_span ~start:black_start ~dur:measured
                            "blackout_window";
                          if Engine.is_failed e then
                            (* A fault landed on the detached instance
                               mid-blackout: its serialized state is
                               suspect, so restore the old instance. *)
                            abort ~brownout ~blackout:measured
                              "fault-during-blackout"
                          else if Engine.is_attached e then
                            (* Someone (crash recovery racing us)
                               reattached the engine mid-blackout; it is
                               already serving, so do not move it. *)
                            abort ~brownout ~blackout:measured
                              "concurrent-recovery"
                          else begin
                            Engine.add new_group e;
                            Engine.notify e;
                            transition Commit;
                            finish ~state_bytes ~brownout_scheduled
                              ~brownout ~blackout:measured ~attempts:n
                              ~outcome:Committed
                          end))
               end))
      end
    in
    attempt 1
  in
  next ()
