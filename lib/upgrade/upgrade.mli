(** Transparent Snap upgrades (§4), run as per-engine transactions.

    A release upgrade runs a second Snap instance beside the old one and
    migrates engines one at a time, each in its entirety:

    - {e prepare}: sanity-check the engine is running and compute the
      migration plan;
    - {e brownout}: control-plane connections and shared-memory file
      descriptors transfer in the background, and the new instance
      pre-builds queues and allocators, while the old engine keeps
      processing (minimal performance impact);
    - {e blackout}: the old engine ceases packet processing, detaches
      its NIC receive filters, and serializes remaining state into a
      shared-memory volume; the new engine attaches identical filters,
      deserializes, and resumes;
    - {e commit}: the new instance is attached and notified.

    Each per-engine migration is transactional: if the engine is lost
    before the blackout, a fault corrupts it mid-blackout, a concurrent
    recovery reattaches the old instance, or the blackout would exceed a
    configured SLO, the transaction {e rolls back} — the old instance
    resumes with its state intact — and is retried after an
    exponentially backed-off delay, up to a bounded number of attempts
    before giving up.  An aborted or abandoned migration always leaves
    the engine attached to exactly one group.

    Packets arriving during the blackout are dropped (ring overflow once
    the detached ring fills) and recovered by the transport as if lost
    to congestion; application connections remain established.

    The migration reuses the same engine objects across "instances" —
    the state hand-off is modeled by its serialization time, which is
    what determines the blackout the paper measures (Figure 9: median
    250 ms, heavy-tailed, correlated with state size). *)

type phase =
  | Prepare
  | Brownout
  | Blackout
  | Commit
  | Rollback of string  (** Aborting; the argument is the reason. *)
  | Retry of int  (** Backoff elapsed; starting the given attempt. *)
  | Give_up of string
      (** Attempt budget exhausted; the engine stays on the old
          release. *)

val phase_to_string : phase -> string

type outcome = Committed | Gave_up of string

type report = {
  engine_name : string;
  state_bytes : int;
  brownout_scheduled : Sim.Time.t;
      (** The planned brownout duration (model output). *)
  brownout : Sim.Time.t;
      (** Measured: blackout start minus attempt start, as observed on
          the final attempt. *)
  blackout : Sim.Time.t;
      (** Measured on the final attempt (0 if the engine never reached
          blackout). *)
  started_at : Sim.Time.t;  (** First attempt's start. *)
  finished_at : Sim.Time.t;
  attempts : int;
  rollbacks : int;
  outcome : outcome;
}

type config = {
  gap : Sim.Time.t;  (** Spacing between consecutive engine migrations. *)
  blackout_slo : Sim.Time.t option;
      (** Abort (at the deadline) any blackout that would run longer
          than this; [None] disables the check. *)
  max_attempts : int;  (** Per-engine attempt budget. *)
  retry_backoff : Sim.Time.t;
      (** Base delay before a retry, doubled per failed attempt. *)
}

val default_config : config
(** gap 1 ms, no blackout SLO, 3 attempts, 5 ms base backoff. *)

val upgrade :
  loop:Sim.Loop.t ->
  costs:Sim.Costs.t ->
  old_group:Engine.group ->
  new_group:Engine.group ->
  ?extra_state_bytes:(Engine.t -> int) ->
  ?config:config ->
  ?on_transition:(engine:string -> phase -> unit) ->
  on_done:(report list -> unit) ->
  unit ->
  unit
(** Start an upgrade of every engine currently in [old_group], moving
    them into [new_group] (the new release's scheduling setup).
    [extra_state_bytes] adds synthetic serialized state per engine on
    top of what the engine itself reports — production engines carry
    far more state (flow tables, buffer pools) than a fresh simulation
    accumulates, and Figure 9's distribution is reproduced by drawing
    from a calibrated distribution here.  [on_transition] observes every
    state-machine transition (for logging and tests).  [on_done]
    receives one report per engine, committed or given up. *)

val blackout_of : costs:Sim.Costs.t -> state_bytes:int -> Sim.Time.t
(** The blackout duration the model assigns to a given amount of
    serialized state: filter detach + serialize + filter attach +
    deserialize. *)
