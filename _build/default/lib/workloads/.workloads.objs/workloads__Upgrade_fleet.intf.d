lib/workloads/upgrade_fleet.mli: Sim Stats
