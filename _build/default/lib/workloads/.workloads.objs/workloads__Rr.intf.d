lib/workloads/rr.mli: Engine Sim Stats
