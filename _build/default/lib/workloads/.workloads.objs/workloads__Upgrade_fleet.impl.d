lib/workloads/upgrade_fleet.ml: Cpu Engine Fabric List Nic Pony Sim Snap Stats Upgrade
