lib/workloads/streaming.mli: Sim
