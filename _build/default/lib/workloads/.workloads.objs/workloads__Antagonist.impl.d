lib/workloads/antagonist.ml: Cpu List Printf Sim
