lib/workloads/all_to_all.mli: Engine Sim Stats
