lib/workloads/analytics.ml: Cpu Engine Fabric Int64 List Memory Pony Printf Sim Snap Stats
