lib/workloads/rr.ml: Antagonist Cpu Engine Fabric Kstack List Memory Nic Pony Printf Sim Snap Stats
