lib/workloads/streaming.ml: Array Cpu Engine Fabric Kstack List Nic Pony Printf Sim Snap
