lib/workloads/antagonist.mli: Cpu Sim
