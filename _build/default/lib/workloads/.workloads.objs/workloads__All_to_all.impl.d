lib/workloads/all_to_all.ml: Antagonist Array Cpu Engine Fabric Hashtbl Kstack List Nic Pony Printf Queue Sim Snap Stats String Sys
