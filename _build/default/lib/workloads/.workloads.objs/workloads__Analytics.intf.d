lib/workloads/analytics.mli: Sim Stats
