(** The rack-scale all-to-all RPC workload of §5.2 (Figures 6(b)-(d)).

    A rack of machines under one ToR, each running [jobs_per_host]
    background jobs plus one latency prober.  Every job issues RPCs at a
    Poisson rate to uniformly random jobs on other machines, requesting
    a 1 MB (cache-resident) response.  The prober issues tiny RPCs and
    its 99th-percentile latency is reported alongside per-machine CPU
    consumption as offered load sweeps.

    Substitution note: the paper uses 42 machines with 50 Gbps NICs; the
    default here is a smaller rack (the shape is preserved — per-machine
    offered load, not rack size, is the x-axis). *)

type transport =
  | Tcp
  | Pony of Engine.mode
      (** Each job requests its own exclusive engine (§5.2), scheduled
          in the given mode. *)

type antagonist = No_antagonist | Md5 of int

type config = {
  hosts : int;
  jobs_per_host : int;
  rpc_bytes : int;  (** Response size (1 MB in the paper). *)
  request_bytes : int;
  offered_gbps_per_host : float;
      (** Target per-machine load, both directions combined (the
          x-axis of Figure 6(b)-(d)). *)
  prober_qps : int;
  warmup : Sim.Time.t;
  window : Sim.Time.t;
  antagonist : antagonist;
  cores : int;
  link_gbps : float;
  seed : int;
}

val default_config : config
(** 8 hosts x 4 jobs, 1 MB RPCs, 50 Gbps links, 16 cores, 10 ms warmup,
    30 ms window. *)

type result = {
  cpu_cores : float;  (** Mean busy cores per machine over the window. *)
  achieved_gbps : float;  (** Mean per-machine bidirectional goodput. *)
  prober : Stats.Histogram.t;  (** Pooled prober RTTs. *)
  rpcs : int;  (** RPCs completed rack-wide in the window. *)
}

val run : transport -> config -> result
