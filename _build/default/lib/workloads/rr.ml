module Time = Sim.Time
module Loop = Sim.Loop

type system =
  | Tcp_rr of { busy_poll : bool }
  | Pony_rr of { app_spin : bool }
  | Pony_one_sided

type prober_system = Prober_tcp | Prober_pony of Engine.mode
type interference = Idle | Mmap_antagonist of int

let op_bytes = 64

(* -- Figure 6(a): closed-loop ping-pong -------------------------------- *)

let tcp_rtt ~iters ~seed ~busy_poll =
  let loop = Sim.Loop.create ~seed () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:8
    in
    let nic = Nic.create ~loop ~machine:m ~fabric:fab ~addr Nic.default_config in
    (m, Kstack.create ~loop ~machine:m ~nic ~busy_poll ())
  in
  let ma, sa = mk 0 and mb, sb = mk 1 in
  let sum = ref 0 and n = ref 0 in
  Kstack.listen sb ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn mb ~name:"server" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 })
           ~idle:(if busy_poll then Cpu.Sched.Spin else Cpu.Sched.Block)
           (fun ctx ->
             for _ = 1 to iters do
               let got = Kstack.recv ctx sock ~max:4096 in
               Kstack.send ctx sock ~bytes:got
             done)));
  ignore
    (Cpu.Thread.spawn ma ~name:"client" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 })
       ~idle:(if busy_poll then Cpu.Sched.Spin else Cpu.Sched.Block)
       (fun ctx ->
         let sock = Kstack.connect ctx sa ~dst:1 ~port:80 in
         for _ = 1 to iters do
           let t0 = Cpu.Thread.now ctx in
           Kstack.send ctx sock ~bytes:op_bytes;
           let rec drain got =
             if got < op_bytes then drain (got + Kstack.recv ctx sock ~max:4096)
           in
           drain 0;
           sum := !sum + (Cpu.Thread.now ctx - t0);
           incr n
         done));
  Loop.run ~until:(Time.sec 2) loop;
  if !n = 0 then 0 else !sum / !n

let mk_pony_pair ?(cores = 16) ~loop ~mode ~use_copy_engine () =
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = Pony.Express.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~cores ~mode
      ~use_copy_engine ()
  in
  (mk 0, mk 1)

let pony_two_sided_rtt ~iters ~seed ~app_spin =
  let loop = Sim.Loop.create ~seed () in
  let ha, hb = mk_pony_pair ~loop ~mode:(Engine.Dedicating { cores = 1 }) ~use_copy_engine:false () in
  let sum = ref 0 and n = ref 0 in
  ignore
    (Snap.Host.spawn_app hb ~name:"server" ~spin:app_spin (fun ctx ->
         let c = Pony.Express.create_client ctx hb.Snap.Host.pony ~name:"server" () in
         for _ = 1 to iters do
           let m = Pony.Express.await_message ctx c in
           ignore (Pony.Express.send_message ctx m.Pony.Express.msg_conn ~bytes:op_bytes ())
         done));
  ignore
    (Snap.Host.spawn_app ha ~name:"client" ~spin:app_spin (fun ctx ->
         let c = Pony.Express.create_client ctx ha.Snap.Host.pony ~name:"client" () in
         Cpu.Thread.sleep ctx (Time.us 500);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         for _ = 1 to iters do
           let t0 = Cpu.Thread.now ctx in
           ignore (Pony.Express.send_message ctx conn ~bytes:op_bytes ());
           let _m = Pony.Express.await_message ctx c in
           sum := !sum + (Cpu.Thread.now ctx - t0);
           incr n
         done));
  Loop.run ~until:(Time.sec 2) loop;
  if !n = 0 then 0 else !sum / !n

let pony_one_sided_rtt ~iters ~seed =
  let loop = Sim.Loop.create ~seed () in
  let ha, hb = mk_pony_pair ~loop ~mode:(Engine.Dedicating { cores = 1 }) ~use_copy_engine:false () in
  let region = Memory.Region.create ~id:1 ~size:65536 ~owner:"server" () in
  let sum = ref 0 and n = ref 0 in
  ignore
    (Snap.Host.spawn_app hb ~name:"server" (fun ctx ->
         let c = Pony.Express.create_client ctx hb.Snap.Host.pony ~name:"server" () in
         Pony.Express.register_region ctx c region;
         (* One-sided: no further application involvement (§3.2). *)
         Cpu.Thread.sleep ctx (Time.sec 3)));
  ignore
    (Snap.Host.spawn_app ha ~name:"client" ~spin:true (fun ctx ->
         let c = Pony.Express.create_client ctx ha.Snap.Host.pony ~name:"client" () in
         Cpu.Thread.sleep ctx (Time.us 500);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         for _ = 1 to iters do
           let t0 = Cpu.Thread.now ctx in
           ignore (Pony.Express.one_sided_read ctx conn ~region:1 ~off:0 ~len:op_bytes);
           let _comp = Pony.Express.await_completion ctx c in
           sum := !sum + (Cpu.Thread.now ctx - t0);
           incr n
         done));
  Loop.run ~until:(Time.sec 2) loop;
  if !n = 0 then 0 else !sum / !n

let mean_rtt ?(iters = 200) ?(seed = 7) system =
  match system with
  | Tcp_rr { busy_poll } -> tcp_rtt ~iters ~seed ~busy_poll
  | Pony_rr { app_spin } -> pony_two_sided_rtt ~iters ~seed ~app_spin
  | Pony_one_sided -> pony_one_sided_rtt ~iters ~seed

(* -- Figures 7(a)/(b): open-loop low-QPS prober -------------------------- *)

(* Antagonists start after the benchmark clients are set up, so control
   RPCs and connection setup are not starved. *)
let add_interference ~loop machines interference =
  match interference with
  | Idle -> ()
  | Mmap_antagonist threads ->
      ignore
        (Loop.at loop (Time.ms 5) (fun () ->
             List.iter
               (fun m -> ignore (Antagonist.spawn_mmap m ~threads ()))
               machines))

let prober_tcp ~qps ~duration ~seed ~interference =
  let loop = Sim.Loop.create ~seed () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:8
    in
    let nic = Nic.create ~loop ~machine:m ~fabric:fab ~addr Nic.default_config in
    (m, Kstack.create ~loop ~machine:m ~nic ())
  in
  let ma, sa = mk 0 and mb, sb = mk 1 in
  add_interference ~loop [ ma; mb ] interference;
  let hist = Stats.Histogram.create () in
  let period = Time.sec 1 / qps in
  Kstack.listen sb ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn mb ~name:"server" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 }) ~idle:Cpu.Sched.Spin (fun ctx ->
             while true do
               let got = Kstack.recv ctx sock ~max:4096 in
               Kstack.send ctx sock ~bytes:got
             done)));
  ignore
    (Cpu.Thread.spawn ma ~name:"prober" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) ~idle:Cpu.Sched.Spin (fun ctx ->
         let sock = Kstack.connect ctx sa ~dst:1 ~port:80 in
         while Cpu.Thread.now ctx < duration do
           let t0 = Cpu.Thread.now ctx in
           Kstack.send ctx sock ~bytes:op_bytes;
           let rec drain got =
             if got < op_bytes then drain (got + Kstack.recv ctx sock ~max:4096)
           in
           drain 0;
           Stats.Histogram.record hist (Cpu.Thread.now ctx - t0);
           let elapsed = Cpu.Thread.now ctx - t0 in
           if elapsed < period then Cpu.Thread.sleep ctx (period - elapsed)
         done));
  Loop.run ~until:(Time.add duration (Time.ms 50)) loop;
  hist

let prober_pony ~qps ~duration ~seed ~interference ~mode =
  let loop = Sim.Loop.create ~seed () in
  let ha, hb = mk_pony_pair ~cores:8 ~loop ~mode ~use_copy_engine:false () in
  add_interference ~loop [ ha.Snap.Host.machine; hb.Snap.Host.machine ] interference;
  let hist = Stats.Histogram.create () in
  let period = Time.sec 1 / qps in
  ignore
    (Snap.Host.spawn_app hb ~name:"server" ~spin:true (fun ctx ->
         let c = Pony.Express.create_client ctx hb.Snap.Host.pony ~name:"server" () in
         while true do
           let m = Pony.Express.await_message ctx c in
           ignore
             (Pony.Express.send_message ctx m.Pony.Express.msg_conn ~bytes:op_bytes ())
         done));
  ignore
    (Snap.Host.spawn_app ha ~name:"prober" ~spin:true (fun ctx ->
         let c = Pony.Express.create_client ctx ha.Snap.Host.pony ~name:"prober" () in
         Cpu.Thread.sleep ctx (Time.ms 2);
         let conn = Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0 in
         while Cpu.Thread.now ctx < duration do
           let t0 = Cpu.Thread.now ctx in
           ignore (Pony.Express.send_message ctx conn ~bytes:op_bytes ());
           let rec await () =
             match Pony.Express.poll_message ctx c with
             | Some _ -> ()
             | None ->
                 Cpu.Thread.wait ctx;
                 await ()
           in
           await ();
           Stats.Histogram.record hist (Cpu.Thread.now ctx - t0);
           let elapsed = Cpu.Thread.now ctx - t0 in
           if elapsed < period then Cpu.Thread.sleep ctx (period - elapsed)
         done));
  Loop.run ~until:(Time.add duration (Time.ms 50)) loop;
  hist

let prober ?(qps = 1000) ?(duration = Time.sec 2) ?(seed = 7) ~interference
    system =
  match system with
  | Prober_tcp -> prober_tcp ~qps ~duration ~seed ~interference
  | Prober_pony mode -> prober_pony ~qps ~duration ~seed ~interference ~mode
