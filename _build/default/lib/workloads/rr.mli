(** Request-response latency workloads.

    Figure 6(a): closed-loop ping-pong of small messages between two
    machines under the same ToR, comparing kernel TCP (blocking and
    busy-polling), Snap/Pony two-sided (application blocking or
    spin-polling the completion queue), and Snap/Pony one-sided reads.

    Figures 7(a) and 7(b): an open-loop prober issuing one small RPC per
    millisecond, exposing system-level wakeup effects — C-state exit
    latency on idle machines, and non-preemptible kernel sections under
    an mmap antagonist — across TCP and the Snap engine scheduling
    modes. *)

(** The systems Figure 6(a) compares. *)
type system =
  | Tcp_rr of { busy_poll : bool }
  | Pony_rr of { app_spin : bool }
  | Pony_one_sided  (** Client always spins (§5.1's one-sided line). *)

val mean_rtt : ?iters:int -> ?seed:int -> system -> Sim.Time.t
(** Closed-loop mean round-trip time of a 64-byte operation. *)

(** The systems Figures 7(a)/(b) compare. *)
type prober_system =
  | Prober_tcp
  | Prober_pony of Engine.mode

type interference = Idle | Mmap_antagonist of int

val prober :
  ?qps:int ->
  ?duration:Sim.Time.t ->
  ?seed:int ->
  interference:interference ->
  prober_system ->
  Stats.Histogram.t
(** Open-loop prober at [qps] (default 1000) with a spin-polling
    application thread, so the distribution isolates transport wakeup
    behaviour.  [interference] selects an otherwise idle machine
    (C-states bite, Figure 7(a)) or mmap antagonist threads on every
    host (non-preemptible sections bite, Figure 7(b)). *)
