module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

type transport = Tcp | Pony of Engine.mode
type antagonist = No_antagonist | Md5 of int

type config = {
  hosts : int;
  jobs_per_host : int;
  rpc_bytes : int;
  request_bytes : int;
  offered_gbps_per_host : float;
  prober_qps : int;
  warmup : Time.t;
  window : Time.t;
  antagonist : antagonist;
  cores : int;
  link_gbps : float;
  seed : int;
}

let default_config =
  {
    hosts = 8;
    jobs_per_host = 4;
    rpc_bytes = 1 lsl 20;
    request_bytes = 1000;
    offered_gbps_per_host = 8.0;
    prober_qps = 2000;
    warmup = Time.ms 10;
    window = Time.ms 30;
    antagonist = No_antagonist;
    cores = 16;
    link_gbps = 50.0;
    seed = 11;
  }

type result = {
  cpu_cores : float;
  achieved_gbps : float;
  prober : Stats.Histogram.t;
  rpcs : int;
}

let probe_bytes = 1000
let connect_at = Time.ms 3
let traffic_at = Time.ms 6
let antagonist_at = Time.ms 5

(* Per-job Poisson arrival rate for the target per-host load.  Counting
   both directions of each RPC against its two hosts, an RPC moves
   ~rpc_bytes of payload on the requester (rx) and responder (tx), so
   the per-host bidirectional load equals 2 * jobs * lambda * rpc_bytes
   / hosts... each host runs [jobs] requesters; each RPC touches two
   hosts.  lambda chosen so per-host rx+tx = offered. *)
let job_interarrival cfg =
  if cfg.offered_gbps_per_host <= 0.0 then None
  else begin
    let bits_per_rpc = float_of_int (8 * (cfg.rpc_bytes + cfg.request_bytes)) in
    let per_host_rpc_rate =
      cfg.offered_gbps_per_host /. (2.0 *. bits_per_rpc) *. 1e9
      (* RPCs per second per host, counting rx+tx. *)
    in
    let per_job = per_host_rpc_rate /. float_of_int cfg.jobs_per_host in
    Some (1e9 /. per_job) (* ns mean inter-arrival *)
  end

let spawn_antagonists ~loop machines = function
  | No_antagonist -> ()
  | Md5 threads ->
      ignore
        (Loop.at loop antagonist_at (fun () ->
             List.iter
               (fun m -> ignore (Antagonist.spawn_md5 m ~threads ()))
               machines))

(* Measurement shared by both transports. *)
type meter = {
  hist : Stats.Histogram.t;
  mutable bytes : int;  (* response payload completed in window *)
  mutable n_rpcs : int;
  mutable in_window : bool;
}

let mk_meter () =
  { hist = Stats.Histogram.create (); bytes = 0; n_rpcs = 0; in_window = false }

let finish_measure ~loop ~cfg ~machines ~meter =
  let base = Array.make (List.length machines) 0 in
  ignore
    (Loop.at loop cfg.warmup (fun () ->
         meter.in_window <- true;
         List.iteri (fun i m -> base.(i) <- Cpu.Sched.busy_ns m) machines));
  let finish = Time.add cfg.warmup cfg.window in
  ignore (Loop.at loop finish (fun () -> meter.in_window <- false));
  Loop.run ~until:(Time.add finish (Time.ms 1)) loop;
  let cores =
    List.mapi
      (fun i m ->
        float_of_int (Cpu.Sched.busy_ns m - base.(i)) /. float_of_int cfg.window)
      machines
  in
  let cpu = List.fold_left ( +. ) 0.0 cores /. float_of_int (List.length cores) in
  if Sys.getenv_opt "A2A_DEBUG" <> None then
    List.iteri
      (fun i m ->
        Printf.eprintf "[a2a] host%d accounts: %s\n" i
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%s=%.2f" k (float_of_int v /. float_of_int cfg.window))
                (Cpu.Sched.accounts m))))
      machines;
  {
    cpu_cores = cpu;
    achieved_gbps =
      2.0 *. float_of_int meter.bytes *. 8.0
      /. float_of_int cfg.hosts
      /. float_of_int cfg.window;
    prober = meter.hist;
    rpcs = meter.n_rpcs;
  }

(* -- Pony Express -------------------------------------------------------- *)

(* Stream-id tagging: bit 0 marks responses; bit 1 marks prober
   traffic.  Requesters allocate ids in steps of 4. *)
let is_response stream = stream land 1 = 1
let is_probe stream = stream land 2 = 2

let run_pony mode cfg =
  let loop = Sim.Loop.create ~seed:cfg.seed () in
  let fab =
    Fabric.create ~loop
      ~config:{ Fabric.default_config with Fabric.link_gbps = cfg.link_gbps }
      ~hosts:cfg.hosts
  in
  let dir = PE.Directory.create () in
  let nic_config =
    { Nic.default_config with Nic.num_rx_queues = cfg.jobs_per_host + 3 }
  in
  let hosts =
    List.init cfg.hosts (fun addr ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~cores:cfg.cores
          ~nic_config ~mode ~engines:1 ())
  in
  let machines = List.map (fun h -> h.Snap.Host.machine) hosts in
  spawn_antagonists ~loop machines cfg.antagonist;
  let meter = mk_meter () in
  let stop_at = Time.add cfg.warmup cfg.window in
  let rng = Sim.Loop.rng loop in
  (* One thread per job: creates its exclusive-engine client, connects
     to every job on every other host, then serves and issues RPCs. *)
  let spawn_job host_idx job_idx ~probe =
    let host = List.nth hosts host_idx in
    let name =
      if probe then Printf.sprintf "prober@%d" host_idx
      else Printf.sprintf "job%d@%d" job_idx host_idx
    in
    let job_rng = Sim.Rng.split rng in
    ignore
      (Snap.Host.spawn_app host ~name (fun ctx ->
           let client =
             PE.create_client ctx host.Snap.Host.pony ~name
               ~exclusive_engine:true ()
           in
           (* Wait for every host to finish client creation. *)
           let now = Cpu.Thread.now ctx in
           if now < connect_at then Cpu.Thread.sleep ctx (Time.sub connect_at now);
           let conns =
             List.concat
               (List.init cfg.hosts (fun h ->
                    if h = host_idx then []
                    else
                      List.init cfg.jobs_per_host (fun j ->
                          PE.connect ctx client ~dst_host:h ~dst_client:j)))
             |> Array.of_list
           in
           let now = Cpu.Thread.now ctx in
           if now < traffic_at then Cpu.Thread.sleep ctx (Time.sub traffic_at now);
           let mean_gap =
             if probe then Some (1e9 /. float_of_int cfg.prober_qps)
             else job_interarrival cfg
           in
           let next_arrival = ref (Cpu.Thread.now ctx) in
           let next_stream = ref (if probe then 2 else 0) in
           let outstanding : (int, Time.t) Hashtbl.t = Hashtbl.create 64 in
           let advance_arrival () =
             match mean_gap with
             | None -> next_arrival := max_int
             | Some mean ->
                 next_arrival :=
                   Time.add !next_arrival
                     (Time.ns
                        (int_of_float (Sim.Rng.exponential job_rng ~mean)))
           in
           advance_arrival ();
           while Cpu.Thread.now ctx < stop_at do
             let progressed = ref false in
             (* Incoming messages: requests to serve, responses to
                complete. *)
             (match PE.poll_message ctx client with
             | Some m ->
                 progressed := true;
                 if is_response m.PE.stream then begin
                   match Hashtbl.find_opt outstanding (m.PE.stream - 1) with
                   | Some t0 ->
                       Hashtbl.remove outstanding (m.PE.stream - 1);
                       if meter.in_window then begin
                         meter.bytes <- meter.bytes + m.PE.msg_bytes;
                         meter.n_rpcs <- meter.n_rpcs + 1;
                         if probe then
                           Stats.Histogram.record meter.hist
                             (Cpu.Thread.now ctx - t0)
                       end
                   | None -> ()
                 end
                 else begin
                   let resp =
                     if is_probe m.PE.stream then probe_bytes else cfg.rpc_bytes
                   in
                   ignore
                     (PE.send_message ctx m.PE.msg_conn
                        ~stream:(m.PE.stream + 1) ~bytes:resp ())
                 end
             | None -> ());
             (* Reap send completions. *)
             (match PE.poll_completion ctx client with
             | Some _ -> progressed := true
             | None -> ());
             (* Issue due requests. *)
             if Cpu.Thread.now ctx >= !next_arrival && Array.length conns > 0
             then begin
               progressed := true;
               let conn = conns.(Sim.Rng.int job_rng (Array.length conns)) in
               let stream = !next_stream in
               next_stream := stream + 4;
               Hashtbl.replace outstanding stream (Cpu.Thread.now ctx);
               ignore
                 (PE.send_message ctx conn ~stream ~bytes:cfg.request_bytes ());
               advance_arrival ()
             end;
             if not !progressed then begin
               let delay =
                 Time.min (Time.us 500)
                   (Time.max (Time.us 1)
                      (Time.sub !next_arrival (Cpu.Thread.now ctx)))
               in
               Cpu.Thread.sleep ctx delay
             end
           done))
  in
  for h = 0 to cfg.hosts - 1 do
    for j = 0 to cfg.jobs_per_host - 1 do
      spawn_job h j ~probe:false
    done;
    spawn_job h cfg.jobs_per_host ~probe:true
  done;
  finish_measure ~loop ~cfg ~machines ~meter

(* -- Kernel TCP ----------------------------------------------------------- *)

type tcp_sock_state = {
  sock : Kstack.socket;
  mutable acc : int;  (* bytes accumulated toward the next frame *)
  mutable pending_out : int;  (* responses owed but not yet sendable *)
  pending_times : Time.t Queue.t;  (* issue times FIFO (client side) *)
}

let run_tcp cfg =
  let loop = Sim.Loop.create ~seed:cfg.seed () in
  let fab =
    Fabric.create ~loop
      ~config:{ Fabric.default_config with Fabric.link_gbps = cfg.link_gbps }
      ~hosts:cfg.hosts
  in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:cfg.cores
    in
    let nic =
      Nic.create ~loop ~machine:m ~fabric:fab ~addr
        { Nic.default_config with Nic.mtu = 4096 }
    in
    let stack =
      Kstack.create ~loop ~machine:m ~nic
        ~softirq_workers:(cfg.jobs_per_host + 1) ()
    in
    (m, stack)
  in
  let pairs = List.init cfg.hosts mk in
  let machines = List.map fst pairs in
  let stacks = Array.of_list (List.map snd pairs) in
  spawn_antagonists ~loop machines cfg.antagonist;
  let meter = mk_meter () in
  let stop_at = Time.add cfg.warmup cfg.window in
  let rng = Sim.Loop.rng loop in
  let bulk_port j = 100 + j in
  let probe_port j = 500 + j in
  let spawn_job host_idx job_idx ~probe =
    let m = List.nth machines host_idx in
    let stack = stacks.(host_idx) in
    let job_rng = Sim.Rng.split rng in
    (* Server sockets land here from the listeners. *)
    let bulk_served : tcp_sock_state list ref = ref [] in
    let probe_served : tcp_sock_state list ref = ref [] in
    let mk_state sock =
      { sock; acc = 0; pending_out = 0; pending_times = Queue.create () }
    in
    if not probe then begin
      Kstack.listen stack ~port:(bulk_port job_idx) ~on_accept:(fun sock ->
          bulk_served := mk_state sock :: !bulk_served);
      Kstack.listen stack ~port:(probe_port job_idx) ~on_accept:(fun sock ->
          probe_served := mk_state sock :: !probe_served)
    end;
    let name =
      if probe then Printf.sprintf "prober@%d" host_idx
      else Printf.sprintf "job%d@%d" job_idx host_idx
    in
    ignore
      (Cpu.Thread.spawn m ~name ~account:"app" ~klass:(Cpu.Sched.Cfs { nice = 0 })
         (fun ctx ->
           let now = Cpu.Thread.now ctx in
           if now < connect_at then Cpu.Thread.sleep ctx (Time.sub connect_at now);
           (* Client connections to every job on every other host. *)
           let conns =
             List.concat
               (List.init cfg.hosts (fun h ->
                    if h = host_idx then []
                    else
                      List.init cfg.jobs_per_host (fun j ->
                          let port =
                            if probe then probe_port j else bulk_port j
                          in
                          mk_state (Kstack.connect ctx stack ~dst:h ~port))))
             |> Array.of_list
           in
           let now = Cpu.Thread.now ctx in
           if now < traffic_at then Cpu.Thread.sleep ctx (Time.sub traffic_at now);
           let mean_gap =
             if probe then Some (1e9 /. float_of_int cfg.prober_qps)
             else job_interarrival cfg
           in
           let next_arrival = ref (Cpu.Thread.now ctx) in
           let advance_arrival () =
             match mean_gap with
             | None -> next_arrival := max_int
             | Some mean ->
                 next_arrival :=
                   Time.add !next_arrival
                     (Time.ns (int_of_float (Sim.Rng.exponential job_rng ~mean)))
           in
           advance_arrival ();
           let resp_bytes = if probe then probe_bytes else cfg.rpc_bytes in
           while Cpu.Thread.now ctx < stop_at do
             let progressed = ref false in
             (* Serve requests on accepted sockets. *)
             let serve out_bytes st =
               let got =
                 if Kstack.readable st.sock then
                   Kstack.try_recv ctx st.sock ~max:(1 lsl 20)
                 else 0
               in
               if got > 0 then progressed := true;
               st.acc <- st.acc + got;
               while st.acc >= cfg.request_bytes do
                 st.acc <- st.acc - cfg.request_bytes;
                 st.pending_out <- st.pending_out + 1
               done;
               while
                 st.pending_out > 0
                 && Kstack.writable st.sock
                 && Kstack.try_send ctx st.sock ~bytes:out_bytes
               do
                 progressed := true;
                 st.pending_out <- st.pending_out - 1
               done
             in
             List.iter (serve cfg.rpc_bytes) !bulk_served;
             List.iter (serve probe_bytes) !probe_served;
             (* Reap responses on client connections. *)
             Array.iter
               (fun st ->
                 let got =
                   if Kstack.readable st.sock then
                     Kstack.try_recv ctx st.sock ~max:(1 lsl 20)
                   else 0
                 in
                 if got > 0 then progressed := true;
                 st.acc <- st.acc + got;
                 while st.acc >= resp_bytes do
                   st.acc <- st.acc - resp_bytes;
                   match Queue.take_opt st.pending_times with
                   | Some t0 ->
                       if meter.in_window then begin
                         meter.bytes <- meter.bytes + resp_bytes;
                         meter.n_rpcs <- meter.n_rpcs + 1;
                         if probe then
                           Stats.Histogram.record meter.hist
                             (Cpu.Thread.now ctx - t0)
                       end
                   | None -> ()
                 done)
               conns;
             (* Issue due requests. *)
             if Cpu.Thread.now ctx >= !next_arrival && Array.length conns > 0
             then begin
               let st = conns.(Sim.Rng.int job_rng (Array.length conns)) in
               if Kstack.try_send ctx st.sock ~bytes:cfg.request_bytes then begin
                 progressed := true;
                 Queue.add (Cpu.Thread.now ctx) st.pending_times;
                 advance_arrival ()
               end
             end;
             if not !progressed then begin
               Kstack.arm_activity_wake stack (Cpu.Thread.task ctx);
               let delay =
                 Time.min (Time.us 500)
                   (Time.max (Time.us 1)
                      (Time.sub !next_arrival (Cpu.Thread.now ctx)))
               in
               Cpu.Thread.sleep ctx delay
             end
           done))
  in
  for h = 0 to cfg.hosts - 1 do
    for j = 0 to cfg.jobs_per_host - 1 do
      spawn_job h j ~probe:false
    done;
    spawn_job h cfg.jobs_per_host ~probe:true
  done;
  finish_measure ~loop ~cfg ~machines ~meter

let run transport cfg =
  match transport with
  | Tcp -> run_tcp cfg
  | Pony mode -> run_pony mode cfg
