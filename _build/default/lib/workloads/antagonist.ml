module Time = Sim.Time

(* Compute chunk granularity: an MD5 block batch between scheduler
   boundaries. *)
let md5_chunk = Time.us 200
let md5_pause = Time.us 20

let spawn_md5 machine ?(threads = 4) ?(nice = 5) () =
  List.init threads (fun i ->
      Cpu.Thread.spawn machine
        ~name:(Printf.sprintf "md5-antagonist%d" i)
        ~account:"antagonist"
        ~klass:(Cpu.Sched.Cfs { nice })
        (fun ctx ->
          while true do
            (* Continually wake: burst of hashing, short doze, again. *)
            for _ = 1 to 10 do
              Cpu.Thread.compute ctx md5_chunk
            done;
            Cpu.Thread.sleep ctx md5_pause
          done))

let spawn_mmap machine ?(threads = 2) ?(section = Time.ms 2) ?(gap = Time.us 50)
    () =
  List.init threads (fun i ->
      Cpu.Thread.spawn machine
        ~name:(Printf.sprintf "mmap-antagonist%d" i)
        ~account:"antagonist"
        ~klass:(Cpu.Sched.Cfs { nice = 0 })
        (fun ctx ->
          while true do
            Cpu.Thread.compute_nonpreemptible ctx section;
            Cpu.Thread.sleep ctx gap
          done))
