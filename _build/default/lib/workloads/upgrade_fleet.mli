(** Figure 9 workload: transparent upgrade across a production cell.

    Each machine migrates its engines to a new release, one engine at a
    time (§4); the figure reports the distribution of per-engine
    blackout durations.  A fresh simulation accumulates far less engine
    state than three years of production, so serialized state sizes are
    drawn from a calibrated heavy-tailed (log-normal) distribution on
    top of the live state; live traffic runs during the upgrade to
    demonstrate that connections survive. *)

type result = {
  blackouts : Stats.Histogram.t;  (** Per-engine blackout durations. *)
  median : Sim.Time.t;
  engines_migrated : int;
  messages_delivered_during : int;
      (** Application messages that completed while upgrades ran,
          demonstrating the stack stayed up. *)
}

val run :
  ?machines:int ->
  ?engines_per_machine:int ->
  ?state_median_mb:float ->
  ?state_sigma:float ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 10 machines x 4 engines, median 270 MB of serialized
    state with sigma 0.6 (pins the paper's 250 ms median and heavy
    tail). *)
