(** Background antagonists used by the evaluation (§5.2, §5.3).

    - MD5 antagonists "continually wake threads to perform MD5
      computations", pressuring caches and the scheduler (Figure 6(d)).
    - The mmap antagonist "spawns threads to repeatedly mmap() and
      munmap() 50 MB buffers", exercising a Linux pathology where
      certain kernel regions cannot be preempted by any userspace
      process (Figure 7(b)). *)

val spawn_md5 :
  Cpu.Sched.machine -> ?threads:int -> ?nice:int -> unit -> Cpu.Sched.task list
(** CPU-bound compute threads under CFS at the given niceness (default
    4 threads at nice 5 — "reduced priority relative to the
    load-generating network application jobs"). *)

val spawn_mmap :
  Cpu.Sched.machine ->
  ?threads:int ->
  ?section:Sim.Time.t ->
  ?gap:Sim.Time.t ->
  unit ->
  Cpu.Sched.task list
(** Threads that alternate non-preemptible kernel sections of [section]
    (default 2 ms — roughly the cost of mapping and unmapping a 50 MB
    buffer) with short preemptible gaps. *)
