module Time = Sim.Time
module Loop = Sim.Loop

type result = {
  gbps : float;
  sender_cpu : float;
  receiver_cpu : float;
  cpu : float;
  streams : int;
}

let write_chunk = 65536
let outstanding_limit = 32

let measure ~loop ~warmup ~window ~machines ~delivered =
  let base_busy = Array.make (List.length machines) 0 in
  let base_bytes = ref 0 in
  ignore
    (Loop.at loop warmup (fun () ->
         List.iteri (fun i m -> base_busy.(i) <- Cpu.Sched.busy_ns m) machines;
         base_bytes := delivered ()));
  let finish = Time.add warmup window in
  Loop.run ~until:finish loop;
  let bytes = delivered () - !base_bytes in
  let cores =
    List.mapi
      (fun i m ->
        float_of_int (Cpu.Sched.busy_ns m - base_busy.(i))
        /. float_of_int window)
      machines
  in
  (float_of_int bytes *. 8.0 /. float_of_int window, cores)

let run_tcp ?(streams = 1) ?(mtu = 4096) ?(warmup = Time.ms 10)
    ?(window = Time.ms 40) ?(seed = 1) () =
  let loop = Sim.Loop.create ~seed () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:16
    in
    let nic =
      Nic.create ~loop ~machine:m ~fabric:fab ~addr
        { Nic.default_config with Nic.mtu }
    in
    let stack = Kstack.create ~loop ~machine:m ~nic () in
    (m, stack)
  in
  let ms, sa = mk 0 and mr, sb = mk 1 in
  let delivered = ref 0 in
  Kstack.listen sb ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn mr ~name:"rx" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
             while true do
               delivered := !delivered + Kstack.recv ctx sock ~max:(1 lsl 20)
             done)));
  for i = 0 to streams - 1 do
    ignore
      (Cpu.Thread.spawn ms
         ~name:(Printf.sprintf "tx%d" i)
         ~account:"app"
         ~klass:(Cpu.Sched.Cfs { nice = 0 })
         (fun ctx ->
           let sock = Kstack.connect ctx sa ~dst:1 ~port:80 in
           while true do
             Kstack.send ctx sock ~bytes:write_chunk
           done))
  done;
  let gbps, cores =
    measure ~loop ~warmup ~window ~machines:[ ms; mr ] ~delivered:(fun () ->
        !delivered)
  in
  match cores with
  | [ s; r ] ->
      { gbps; sender_cpu = s; receiver_cpu = r; cpu = (s +. r) /. 2.0; streams }
  | _ -> assert false

let run_pony ?(streams = 1) ?(mtu = 4096) ?(use_copy_engine = false)
    ?(warmup = Time.ms 10) ?(window = Time.ms 40) ?(seed = 1) () =
  let loop = Sim.Loop.create ~seed () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let dir = Pony.Express.Directory.create () in
  let mk addr =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
      ~nic_config:{ Nic.default_config with Nic.mtu }
      ~mode:(Engine.Dedicating { cores = 1 })
      ~use_copy_engine ()
  in
  let ha = mk 0 and hb = mk 1 in
  let delivered = ref 0 in
  ignore
    (Snap.Host.spawn_app hb ~name:"rx" (fun ctx ->
         let c = Pony.Express.create_client ctx hb.Snap.Host.pony ~name:"rx" () in
         while true do
           let m = Pony.Express.await_message ctx c in
           delivered := !delivered + m.Pony.Express.msg_bytes
         done));
  ignore
    (Snap.Host.spawn_app ha ~name:"tx" (fun ctx ->
         let c = Pony.Express.create_client ctx ha.Snap.Host.pony ~name:"tx" () in
         Cpu.Thread.sleep ctx (Time.us 500);
         let conns =
           Array.init streams (fun _ ->
               Pony.Express.connect ctx c ~dst_host:1 ~dst_client:0)
         in
         let outstanding = ref 0 in
         let i = ref 0 in
         while true do
           ignore
             (Pony.Express.send_message ctx conns.(!i mod streams)
                ~bytes:write_chunk ());
           incr i;
           incr outstanding;
           while
             !outstanding > outstanding_limit
             &&
             match Pony.Express.poll_completion ctx c with
             | Some _ ->
                 decr outstanding;
                 true
             | None -> false
           do
             ()
           done;
           if !outstanding > outstanding_limit then begin
             match Pony.Express.poll_completion ctx c with
             | Some _ -> decr outstanding
             | None -> Cpu.Thread.wait ctx
           end
         done));
  let machines = [ ha.Snap.Host.machine; hb.Snap.Host.machine ] in
  let gbps, cores =
    measure ~loop ~warmup ~window ~machines ~delivered:(fun () -> !delivered)
  in
  match cores with
  | [ s; r ] ->
      { gbps; sender_cpu = s; receiver_cpu = r; cpu = (s +. r) /. 2.0; streams }
  | _ -> assert false
