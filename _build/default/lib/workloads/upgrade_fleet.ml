module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

type result = {
  blackouts : Stats.Histogram.t;
  median : Time.t;
  engines_migrated : int;
  messages_delivered_during : int;
}

let run ?(machines = 10) ?(engines_per_machine = 4) ?(state_median_mb = 270.0)
    ?(state_sigma = 0.6) ?(seed = 23) () =
  if machines < 2 || machines mod 2 <> 0 then
    invalid_arg "Upgrade_fleet.run: machines must be even and >= 2";
  let loop = Sim.Loop.create ~seed () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:machines in
  let dir = PE.Directory.create () in
  let hosts =
    List.init machines (fun addr ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
          ~nic_config:
            { Nic.default_config with Nic.num_rx_queues = engines_per_machine + 1 }
          ~mode:(Engine.Dedicating { cores = 2 })
          ~engines:engines_per_machine ())
  in
  let delivered_during = ref 0 in
  let upgrading = ref 0 in
  (* Light ping-pong traffic between machine pairs throughout. *)
  List.iteri
    (fun i h ->
      if i mod 2 = 0 then begin
        let peer = i + 1 in
        ignore
          (Snap.Host.spawn_app (List.nth hosts peer) ~name:"echo" (fun ctx ->
               let c =
                 PE.create_client ctx (List.nth hosts peer).Snap.Host.pony
                   ~name:"echo" ()
               in
               while true do
                 let m = PE.await_message ctx c in
                 ignore (PE.send_message ctx m.PE.msg_conn ~bytes:256 ())
               done));
        ignore
          (Snap.Host.spawn_app h ~name:"pinger" (fun ctx ->
               let c = PE.create_client ctx h.Snap.Host.pony ~name:"pinger" () in
               Cpu.Thread.sleep ctx (Time.ms 2);
               let conn = PE.connect ctx c ~dst_host:peer ~dst_client:0 in
               while true do
                 ignore (PE.send_message ctx conn ~bytes:256 ());
                 let rec await () =
                   match PE.poll_message ctx c with
                   | Some _ -> if !upgrading > 0 then incr delivered_during
                   | None ->
                       Cpu.Thread.wait ctx;
                       await ()
                 in
                 await ();
                 Cpu.Thread.sleep ctx (Time.ms 1)
               done))
      end)
    hosts;
  let hist = Stats.Histogram.create () in
  let migrated = ref 0 in
  let rng = Sim.Loop.rng loop in
  let mu = log (state_median_mb *. 1e6) in
  (* Per-machine upgrade: a new release instance gets its own engine
     group; engines migrate one at a time. *)
  let launch_upgrade h =
    let machine = h.Snap.Host.machine in
    let new_group =
      Engine.create_group ~machine ~name:"snap-v2"
        ~mode:(Engine.Dedicating { cores = 2 })
    in
    incr upgrading;
    Upgrade.upgrade ~loop ~costs:(Cpu.Sched.costs machine)
      ~old_group:h.Snap.Host.group ~new_group
      ~extra_state_bytes:(fun _ ->
        int_of_float (Sim.Rng.lognormal rng ~mu ~sigma:state_sigma))
      ~on_done:(fun reports ->
        decr upgrading;
        List.iter
          (fun (r : Upgrade.report) ->
            incr migrated;
            Stats.Histogram.record hist r.Upgrade.blackout)
          reports)
      ()
  in
  (* Stagger machine upgrades across the cell. *)
  List.iteri
    (fun i h ->
      ignore (Loop.at loop (Time.ms (10 + (i * 5))) (fun () -> launch_upgrade h)))
    hosts;
  Loop.run ~until:(Time.sec 10) loop;
  {
    blackouts = hist;
    median = Stats.Histogram.percentile hist 50.;
    engines_migrated = !migrated;
    messages_delivered_during = !delivered_during;
  }
