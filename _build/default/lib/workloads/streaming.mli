(** Table 1 workload: single-application-thread bulk streaming between
    two machines on the same ToR switch.

    The TCP variant mirrors Neper: one sending and one receiving
    application, [streams] simultaneous connections, 64 kB writes.  The
    Snap/Pony variant uses the asynchronous message API with a bounded
    number of outstanding sends, a dedicated spinning engine, and
    optionally the I/OAT copy engine for receive-side copies. *)

type result = {
  gbps : float;  (** Application payload goodput. *)
  sender_cpu : float;  (** Busy cores on the sending machine. *)
  receiver_cpu : float;
  cpu : float;  (** Mean of the two (the "CPU/sec" Table 1 reports). *)
  streams : int;
}

val run_tcp :
  ?streams:int ->
  ?mtu:int ->
  ?warmup:Sim.Time.t ->
  ?window:Sim.Time.t ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 1 stream, 4096 B MTU (the kernel's "large MTU" setting in
    §5.2), 10 ms warmup, 40 ms measurement. *)

val run_pony :
  ?streams:int ->
  ?mtu:int ->
  ?use_copy_engine:bool ->
  ?warmup:Sim.Time.t ->
  ?window:Sim.Time.t ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 1 stream, 4096 B MTU, no copy engine.  Table 1's third
    and fourth rows set [mtu] to 5000 and [use_copy_engine]. *)
