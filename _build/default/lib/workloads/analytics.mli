(** Figure 8 workload: the distributed data-analytics service.

    A server shares a large in-memory table through Snap/Pony one-sided
    operations; remote clients hammer it with the custom {e batched
    indirect read} (eight indirections resolved server-side per network
    operation, §3.2/§5.4).  The service runs on a single dedicated
    engine core; the paper's dashboard shows it serving up to 5 M remote
    memory accesses per second. *)

type result = {
  iops_series : Stats.Series.t;
      (** Remote memory accesses per second, sampled per interval. *)
  peak_iops : float;
  mean_iops : float;
  server_engine_cores : float;
}

val run :
  ?clients:int ->
  ?batch:int ->
  ?outstanding:int ->
  ?read_bytes:int ->
  ?duration:Sim.Time.t ->
  ?interval:Sim.Time.t ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 4 client hosts, batch 8, 32 outstanding requests per
    client, 64-byte reads, 100 ms duration sampled every 10 ms. *)
