module Time = Sim.Time
module Loop = Sim.Loop
module PE = Pony.Express

type result = {
  iops_series : Stats.Series.t;
  peak_iops : float;
  mean_iops : float;
  server_engine_cores : float;
}

let run ?(clients = 4) ?(batch = 8) ?(outstanding = 32) ?(read_bytes = 64)
    ?(duration = Time.ms 100) ?(interval = Time.ms 10) ?(seed = 5) () =
  let loop = Sim.Loop.create ~seed () in
  let hosts_n = clients + 1 in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:hosts_n in
  let dir = PE.Directory.create () in
  let server_host =
    Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr:0
      ~mode:(Engine.Dedicating { cores = 1 })
      ()
  in
  let client_hosts =
    List.init clients (fun i ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr:(i + 1)
          ~mode:(Engine.Dedicating { cores = 1 })
          ())
  in
  (* The analytics table: an indirection table plus a large data region
     (unbacked: contents are synthetic). *)
  let table =
    Memory.Region.create ~id:1 ~size:(1 lsl 20) ~owner:"analytics" ()
  in
  let data =
    Memory.Region.create ~backed:false ~id:2 ~size:(1 lsl 30) ~owner:"analytics" ()
  in
  (* Fill the table with valid offsets. *)
  let entries = Memory.Region.size table / 8 in
  for i = 0 to entries - 1 do
    Memory.Region.write_int64 table (8 * i)
      (Int64.of_int (i * 977 mod (Memory.Region.size data - read_bytes)))
  done;
  ignore
    (Snap.Host.spawn_app server_host ~name:"analytics-server" (fun ctx ->
         let c =
           PE.create_client ctx server_host.Snap.Host.pony ~name:"analytics" ()
         in
         PE.register_region ctx c table;
         PE.register_region ctx c data;
         Cpu.Thread.sleep ctx (Time.add duration (Time.ms 10))));
  let rng = Sim.Loop.rng loop in
  List.iteri
    (fun i h ->
      let crng = Sim.Rng.split rng in
      ignore
        (Snap.Host.spawn_app h
           ~name:(Printf.sprintf "client%d" i)
           ~spin:true
           (fun ctx ->
             let c =
               PE.create_client ctx h.Snap.Host.pony
                 ~name:(Printf.sprintf "client%d" i)
                 ()
             in
             Cpu.Thread.sleep ctx (Time.ms 1);
             let conn = PE.connect ctx c ~dst_host:0 ~dst_client:0 in
             let issue () =
               let indices =
                 List.init batch (fun _ -> Sim.Rng.int crng entries)
               in
               ignore
                 (PE.indirect_read ctx conn ~table_region:1 ~data_region:2
                    ~indices ~len:read_bytes)
             in
             for _ = 1 to outstanding do
               issue ()
             done;
             while Cpu.Thread.now ctx < duration do
               let _comp = PE.await_completion ctx c in
               issue ()
             done)))
    client_hosts;
  (* Sample served accesses per interval (the production dashboard of
     Figure 8 samples per minute; the shape is rate-vs-time). *)
  let series = Stats.Series.create ~name:"IOPS" () in
  let last = ref 0 in
  let engine = PE.engine_handle server_host.Snap.Host.pony 0 in
  let base_busy = ref 0 in
  ignore (Loop.at loop (Time.ms 2) (fun () -> base_busy := Engine.busy_ns engine));
  ignore
    (Loop.every loop interval (fun () ->
         let served = PE.one_sided_served server_host.Snap.Host.pony * batch in
         let rate =
           float_of_int (served - !last)
           /. Time.to_float_sec interval
         in
         last := served;
         Stats.Series.add series (Loop.now loop) rate));
  Loop.run ~until:(Time.add duration (Time.ms 5)) loop;
  let busy = Engine.busy_ns engine - !base_busy in
  let mean =
    let total = PE.one_sided_served server_host.Snap.Host.pony * batch in
    float_of_int total /. Time.to_float_sec duration
  in
  {
    iops_series = series;
    peak_iops = Stats.Series.max_value series;
    mean_iops = mean;
    server_engine_cores =
      float_of_int busy /. float_of_int (Time.sub duration (Time.ms 2));
  }
