type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_float_us x = int_of_float (Float.round (x *. 1_000.))
let of_float_sec x = int_of_float (Float.round (x *. 1e9))
let to_float_us t = float_of_int t /. 1_000.
let to_float_ms t = float_of_int t /. 1_000_000.
let to_float_sec t = float_of_int t /. 1e9
let add = ( + )
let sub = ( - )
let max = Stdlib.max
let min = Stdlib.min
let scale t f = int_of_float (Float.round (float_of_int t *. f))

let pp fmt t =
  let abs = Stdlib.abs t in
  if abs < 1_000 then Format.fprintf fmt "%dns" t
  else if abs < 1_000_000 then Format.fprintf fmt "%.1fus" (to_float_us t)
  else if abs < 1_000_000_000 then Format.fprintf fmt "%.1fms" (to_float_ms t)
  else Format.fprintf fmt "%.2fs" (to_float_sec t)
