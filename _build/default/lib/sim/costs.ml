type t = {
  context_switch : Time.t;
  syscall : Time.t;
  interrupt_delivery : Time.t;
  interrupt_cpu : Time.t;
  wakeup_cfs : Time.t;
  wakeup_microquanta : Time.t;
  cstate_exit : Time.t;
  cstate_idle_threshold : Time.t;
  thread_notify : Time.t;
  tcp_tx_per_packet : Time.t;
  tcp_rx_per_packet : Time.t;
  tcp_per_syscall : Time.t;
  tcp_copy_per_byte_ns : float;
  tcp_locality_factor : float;
  engine_poll_empty : Time.t;
  pony_tx_per_packet : Time.t;
  pony_rx_per_packet : Time.t;
  pony_per_op : Time.t;
  pony_one_sided_exec : Time.t;
  pony_indirection_lookup : Time.t;
  snap_copy_per_byte_ns : float;
  copy_engine_per_packet : Time.t;
  batch_amortization : float;
  batch_max_saving : float;
  client_command_post : Time.t;
  client_completion_poll : Time.t;
  serialize_bytes_per_ns : float;
  nic_filter_update : Time.t;
}

let default =
  {
    context_switch = Time.ns 1_500;
    syscall = Time.ns 400;
    interrupt_delivery = Time.ns 2_000;
    interrupt_cpu = Time.ns 400;
    wakeup_cfs = Time.ns 3_500;
    wakeup_microquanta = Time.ns 1_200;
    cstate_exit = Time.us 30;
    cstate_idle_threshold = Time.us 200;
    thread_notify = Time.ns 300;
    tcp_tx_per_packet = Time.ns 650;
    tcp_rx_per_packet = Time.ns 1_150;
    tcp_per_syscall = Time.ns 450;
    tcp_copy_per_byte_ns = 0.030;
    tcp_locality_factor = 0.13;
    engine_poll_empty = Time.ns 120;
    pony_tx_per_packet = Time.ns 260;
    pony_rx_per_packet = Time.ns 340;
    pony_per_op = Time.ns 150;
    pony_one_sided_exec = Time.ns 160;
    pony_indirection_lookup = Time.ns 110;
    snap_copy_per_byte_ns = 0.040;
    copy_engine_per_packet = Time.ns 50;
    batch_amortization = 0.035;
    batch_max_saving = 0.15;
    client_command_post = Time.ns 90;
    client_completion_poll = Time.ns 70;
    serialize_bytes_per_ns = 2.0;
    nic_filter_update = Time.ms 4;
  }
