(** Mutable binary min-heap.

    Used by the event queue and by schedulers.  Elements are ordered by an
    integer key supplied at insertion; ties are broken by insertion order so
    that iteration is deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val min_key : 'a t -> int option
(** Key of the minimum element, if any. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a

val clear : 'a t -> unit
