(** Lightweight simulation tracing.

    Components emit trace lines tagged with the virtual clock.  Tracing is
    off by default so benchmark runs pay nothing; tests and the CLI enable
    it per component. *)

type level = Error | Warn | Info | Debug

val set_level : level option -> unit
(** Global threshold; [None] (the default) disables all output. *)

val enable_component : string -> unit
(** Restrict output to the given components (cumulative).  When no
    component was ever enabled, all components pass the level filter. *)

val enabled : level -> bool

val emit :
  Loop.t -> level -> component:string -> ('a, Format.formatter, unit) format -> 'a
(** [emit loop lvl ~component fmt ...] prints one line to stderr as
    ["\[ 12.5us\] component: ..."] when the level and component filters
    pass. *)
