type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the result fits OCaml's 62-bit positive range;
     modulo bias is negligible against simulation-sized bounds. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled to [0, 1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~scale ~shape =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))

let gaussian t ~mean ~std =
  (* Box-Muller. *)
  let u1 = Stdlib.max (float t 1.0) 1e-12 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~std:sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
