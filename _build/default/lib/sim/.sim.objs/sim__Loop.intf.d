lib/sim/loop.mli: Rng Time
