lib/sim/costs.ml: Time
