lib/sim/trace.mli: Format Loop
