lib/sim/rng.mli:
