lib/sim/trace.ml: Format Hashtbl Loop Time
