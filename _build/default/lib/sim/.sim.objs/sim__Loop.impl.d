lib/sim/loop.ml: Heap Rng Time
