lib/sim/heap.mli:
