(** Deterministic pseudo-random number generation.

    Every stochastic element of the simulation draws from an explicit
    stream so that runs are reproducible bit-for-bit from a single seed.
    The generator is splitmix64, which is fast and supports cheap stream
    splitting. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Sample from an exponential distribution with the given mean. *)

val pareto : t -> scale:float -> shape:float -> float
(** Sample from a Pareto distribution: minimum value [scale], tail index
    [shape] (smaller shape = heavier tail). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Sample from a log-normal distribution with the given parameters of the
    underlying normal. *)

val gaussian : t -> mean:float -> std:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
