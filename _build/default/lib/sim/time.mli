(** Simulated time.

    All simulation time is kept as an integer number of nanoseconds since
    the start of the simulation.  OCaml's native 63-bit integers give a
    range of roughly 146 years at nanosecond granularity, which is far more
    than any experiment needs. *)

type t = int
(** A point in time, or a duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is a duration of [n] microseconds. *)

val ms : int -> t
(** [ms n] is a duration of [n] milliseconds. *)

val sec : int -> t
(** [sec n] is a duration of [n] seconds. *)

val of_float_us : float -> t
(** [of_float_us x] is a duration of [x] microseconds, rounded to the
    nearest nanosecond. *)

val of_float_sec : float -> t
(** [of_float_sec x] is a duration of [x] seconds. *)

val to_float_us : t -> float
(** [to_float_us t] is [t] expressed in microseconds. *)

val to_float_ms : t -> float
(** [to_float_ms t] is [t] expressed in milliseconds. *)

val to_float_sec : t -> float
(** [to_float_sec t] is [t] expressed in seconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t

val scale : t -> float -> t
(** [scale t f] is the duration [t] multiplied by [f], rounded. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["18.3us"],
    ["250ms"]. *)
