type level = Error | Warn | Info | Debug

let threshold : level option ref = ref None
let components : (string, unit) Hashtbl.t = Hashtbl.create 8
let filter_components = ref false

let set_level l = threshold := l

let enable_component c =
  filter_components := true;
  Hashtbl.replace components c ()

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let enabled lvl =
  match !threshold with None -> false | Some t -> severity lvl <= severity t

let component_enabled c = (not !filter_components) || Hashtbl.mem components c

let label = function
  | Error -> "ERROR"
  | Warn -> "WARN "
  | Info -> "INFO "
  | Debug -> "DEBUG"

let emit loop lvl ~component fmt =
  if enabled lvl && component_enabled component then
    Format.eprintf
      ("[%a] %s %s: " ^^ fmt ^^ "@.")
      Time.pp (Loop.now loop) (label lvl) component
  else Format.ifprintf Format.err_formatter fmt
