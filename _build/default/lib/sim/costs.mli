(** Calibrated CPU cost table.

    Every simulated software action charges virtual CPU time according to
    this table.  The constants are calibrated so that the end-to-end
    benchmarks land near the absolute numbers reported in the paper
    (Table 1 and Figures 6-9); each field's documentation names the paper
    observation that pins it down.  Experiments may override individual
    fields (e.g. the ablation benches). *)

type t = {
  (* -- Scheduling / kernel interaction ------------------------------- *)
  context_switch : Time.t;
      (** Direct cost of a thread context switch, charged to the core.
          Pins the TCP stream-scaling degradation in Table 1. *)
  syscall : Time.t;
      (** Ring-switch plus entry bookkeeping for one system call
          (post-Meltdown KPTI world, cf. section 2). *)
  interrupt_delivery : Time.t;
      (** NIC interrupt to handler-start latency on an awake core.
          Component of the TCP 23us RTT in Figure 6(a). *)
  interrupt_cpu : Time.t;
      (** CPU consumed per interrupt (entry, IPI, exit) — far less than
          the delivery latency.  Drives the "time spent in interrupt
          and system contexts" that makes the spreading scheduler less
          CPU-efficient (§5.2). *)
  wakeup_cfs : Time.t;
      (** Dispatch latency for a thread woken under CFS on an idle,
          awake core.  Load-dependent extra delay is added by the
          scheduler model itself. *)
  wakeup_microquanta : Time.t;
      (** Dispatch latency under the MicroQuanta class (section 2.4.1):
          priority preemption, per-CPU high-resolution timers. *)
  cstate_exit : Time.t;
      (** Deep C-state exit latency.  Drives Figure 7(a). *)
  cstate_idle_threshold : Time.t;
      (** Idle duration after which a core drops into a deep C-state. *)
  thread_notify : Time.t;
      (** Writing an eventfd-like notification (engine -> app or
          app -> engine), charged to the notifier. *)

  (* -- Kernel TCP stack (the baseline comparator) --------------------- *)
  tcp_tx_per_packet : Time.t;
      (** Kernel transmit-path work per segment (qdisc, IP, driver). *)
  tcp_rx_per_packet : Time.t;
      (** Softirq receive-path work per segment (driver, IP, TCP). *)
  tcp_per_syscall : Time.t;
      (** Socket send/recv call body on top of the generic [syscall]. *)
  tcp_copy_per_byte_ns : float;
      (** Copy-in on tx plus copy-out on rx, ns per byte per copy.
          Together with the per-packet costs this pins Table 1's
          22 Gbps at 1.17 cores. *)
  tcp_locality_factor : float;
      (** Per-packet cost multiplier slope with the natural log of the
          number of simultaneously active streams; pins the 22 -> 12.4
          Gbps collapse at 200 streams in Table 1. *)

  (* -- Snap / Pony Express ------------------------------------------- *)
  engine_poll_empty : Time.t;
      (** One empty engine poll iteration (checking NIC rings, command
          queues, timers with nothing to do). *)
  pony_tx_per_packet : Time.t;
      (** Engine transmit work per packet: op state machine advance,
          flow bookkeeping, descriptor post.  Pins Table 1's 67.5 Gbps
          single-core at 5000B MTU. *)
  pony_rx_per_packet : Time.t;
      (** Engine receive work per packet: reliability layer, reorder,
          op demux. *)
  pony_per_op : Time.t;
      (** Command-queue parse plus completion-queue write per
          application-level operation. *)
  pony_one_sided_exec : Time.t;
      (** Executing a one-sided read/write against registered memory. *)
  pony_indirection_lookup : Time.t;
      (** One indirection-table lookup of the custom indirect-read op
          (section 3.2). *)
  snap_copy_per_byte_ns : float;
      (** CPU copy between bounce buffers and app memory when the copy
          engine is not used (section 6.2); rx path only, tx is
          zero-copy.  Difference against [copy_engine_per_packet] pins
          Table 1's 67.5 -> 82.2 Gbps I/OAT row. *)
  copy_engine_per_packet : Time.t;
      (** CPU cost to program one I/OAT copy descriptor; the bytes then
          move without consuming CPU. *)
  batch_amortization : float;
      (** Fraction of per-packet cost saved per additional packet in a
          processing batch, saturating at [batch_max_saving]. *)
  batch_max_saving : float;
      (** Cap on the batching discount (fraction of per-packet cost). *)

  (* -- Client library -------------------------------------------------- *)
  client_command_post : Time.t;
      (** Application cost to write one command into the shared-memory
          command queue. *)
  client_completion_poll : Time.t;
      (** Application cost to reap one completion. *)

  (* -- Upgrade (section 4) --------------------------------------------- *)
  serialize_bytes_per_ns : float;
      (** Engine state serialization/deserialization throughput,
          bytes per nanosecond.  Pins the Figure 9 median of 250 ms. *)
  nic_filter_update : Time.t;
      (** Detaching or attaching a NIC receive filter during engine
          migration. *)
}

val default : t
(** The calibrated table.  See field docs for what each value pins. *)
