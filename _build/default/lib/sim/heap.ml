(* Array-based binary min-heap ordered by (key, seq).  The sequence number
   makes pops deterministic under equal keys: FIFO among ties. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let fresh = Array.make (Array.length h.data * 2) h.data.(0) in
  Array.blit h.data 0 fresh 0 h.size;
  h.data <- fresh

let add h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 16 e else grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let min_key h = if h.size = 0 then None else Some h.data.(0).key

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some top.value
  end

let pop_exn h =
  match pop h with Some v -> v | None -> invalid_arg "Heap.pop_exn: empty"

let clear h = h.size <- 0
