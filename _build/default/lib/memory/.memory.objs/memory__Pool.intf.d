lib/memory/pool.mli:
