lib/memory/region.ml: Bytes Char Option
