lib/memory/packet.ml: Format Sim
