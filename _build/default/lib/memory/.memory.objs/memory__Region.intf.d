lib/memory/region.mli: Bytes
