lib/memory/packet.mli: Format Sim
