lib/memory/pool.ml: Hashtbl List Option String
