type id = int

type t = {
  region_id : id;
  region_size : int;
  region_owner : string;
  backing : Bytes.t option;
  mutable registered : bool;
}

let backed_limit = 16 * 1024 * 1024

let create ?backed ~id ~size ~owner () =
  if size <= 0 then invalid_arg "Region.create: size";
  let backed = match backed with Some b -> b | None -> size <= backed_limit in
  let backing = if backed then Some (Bytes.make size '\000') else None in
  { region_id = id; region_size = size; region_owner = owner; backing; registered = false }

let id t = t.region_id
let size t = t.region_size
let owner t = t.region_owner
let is_backed t = Option.is_some t.backing
let register_for_nic t = t.registered <- true
let nic_registered t = t.registered

let check_range t off len =
  if off < 0 || len < 0 || off + len > t.region_size then
    invalid_arg "Region: out of range access"

(* Synthetic contents of unbacked regions: a cheap deterministic function
   of the offset, so benchmark reads are still checkable. *)
let synthetic_byte off = Char.chr ((off * 131) land 0xff)

let read_byte t off =
  check_range t off 1;
  match t.backing with
  | Some b -> Bytes.get b off
  | None -> synthetic_byte off

let read t ~off ~len =
  check_range t off len;
  match t.backing with
  | Some b -> Bytes.sub b off len
  | None -> Bytes.init len (fun i -> synthetic_byte (off + i))

let write t ~off data =
  check_range t off (Bytes.length data);
  match t.backing with
  | Some b -> Bytes.blit data 0 b off (Bytes.length data)
  | None -> ()

let read_int64 t off =
  check_range t off 8;
  match t.backing with
  | Some b -> Bytes.get_int64_le b off
  | None ->
      let bytes = read t ~off ~len:8 in
      Bytes.get_int64_le bytes 0

let write_int64 t off v =
  check_range t off 8;
  match t.backing with
  | Some b -> Bytes.set_int64_le b off v
  | None -> ()
