(** Buffer pools with per-owner accounting.

    Section 2.5: Snap attributes memory consumed on behalf of applications
    back to those applications.  A [Pool.t] hands out fixed-size buffers
    up to a byte capacity and tracks consumption per owner so the
    accounting tests and the control plane can observe it.  Buffer
    contents are not materialised; only sizes are tracked. *)

type t

type alloc = private {
  pool : t;
  owner : string;
  bytes : int;
  mutable live : bool;
}
(** A live allocation; return it with {!free}. *)

exception Exhausted of string
(** Raised when an allocation would exceed pool capacity. *)

val create : name:string -> capacity_bytes:int -> t

val name : t -> string
val capacity : t -> int
val in_use : t -> int
val available : t -> int

val alloc : t -> owner:string -> bytes:int -> alloc
(** Allocate [bytes] charged to [owner].  Raises {!Exhausted} if the pool
    cannot satisfy the request. *)

val try_alloc : t -> owner:string -> bytes:int -> alloc option

val free : alloc -> unit
(** Return an allocation.  Double-free raises [Invalid_argument]. *)

val owner_usage : t -> string -> int
(** Bytes currently charged to the given owner. *)

val owners : t -> (string * int) list
(** All owners with non-zero usage, with their byte counts. *)

val high_watermark : t -> int
(** Maximum [in_use] ever observed. *)
