(** Shared memory regions.

    Applications share memory with Snap by passing tmpfs-backed file
    descriptors over a Unix domain socket (§3.1); here a region is an
    object handed across the simulated control channel.  Small regions
    used by functional tests carry real backing bytes so one-sided
    operations are checked for value correctness; large benchmark regions
    are unbacked and reads return deterministic synthetic bytes derived
    from the offset. *)

type t

type id = int

val create :
  ?backed:bool -> id:id -> size:int -> owner:string -> unit -> t
(** [create ~backed ~id ~size ~owner ()] makes a region.  [backed]
    defaults to [size <= 16 MiB]. *)

val id : t -> id
val size : t -> int
val owner : t -> string
val is_backed : t -> bool

val register_for_nic : t -> unit
(** Mark the region as registered with the NIC for zero-copy transmit
    (§6.2).  Idempotent. *)

val nic_registered : t -> bool

val read_byte : t -> int -> char
(** [read_byte t off] reads one byte.  Out-of-range offsets raise
    [Invalid_argument]. *)

val read : t -> off:int -> len:int -> Bytes.t

val write : t -> off:int -> Bytes.t -> unit
(** Writes are ignored on unbacked regions (the bytes are synthetic). *)

val read_int64 : t -> int -> int64
(** Read 8 bytes little-endian at the given offset. *)

val write_int64 : t -> int -> int64 -> unit
