lib/queue/spsc.ml: Array Sim
