lib/queue/mailbox.ml: Option
