lib/queue/notifier.mli:
