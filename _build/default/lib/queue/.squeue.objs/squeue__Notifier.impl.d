lib/queue/notifier.ml: Option
