lib/queue/spsc.mli: Sim
