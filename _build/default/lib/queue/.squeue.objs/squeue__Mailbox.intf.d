lib/queue/mailbox.mli:
