(** Bounded single-producer single-consumer ring.

    This is the simulated analogue of Snap's lock-free shared-memory
    queues (Figure 2): command queues, completion queues, packet rings,
    and engine-to-engine links all use it.  Each element is timestamped
    on enqueue so consumers (in particular the compacting engine
    scheduler, §2.4) can estimate queueing delay. *)

type 'a t

val create : ?name:string -> capacity:int -> unit -> 'a t
(** [capacity] must be positive. *)

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> now:Sim.Time.t -> 'a -> bool
(** [push t ~now v] enqueues [v]; returns [false] (and counts a drop)
    when full. *)

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val oldest_age : 'a t -> now:Sim.Time.t -> Sim.Time.t
(** Age of the element at the head, i.e. the current queueing delay;
    zero when empty. *)

val pushed : 'a t -> int
(** Total successful enqueues. *)

val dropped : 'a t -> int
(** Total enqueues rejected because the ring was full. *)

val drain : 'a t -> ('a -> unit) -> int
(** Pop everything, applying the function; returns how many. *)
