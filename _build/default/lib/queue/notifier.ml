type t = {
  mutable callback : (unit -> unit) option;
  mutable latched : bool;
  mutable n_signals : int;
}

let create () = { callback = None; latched = false; n_signals = 0 }

let arm t cb =
  if t.latched then begin
    t.latched <- false;
    cb ()
  end
  else t.callback <- Some cb

let signal t =
  t.n_signals <- t.n_signals + 1;
  match t.callback with
  | Some cb ->
      t.callback <- None;
      cb ()
  | None -> t.latched <- true

let signals t = t.n_signals
let is_armed t = Option.is_some t.callback
