(** Eventfd-like edge-triggered notification.

    Engines occasionally communicate with outputs via interrupt delivery
    by writing to an eventfd-like construct (§2.2).  A notifier carries a
    callback armed by the consumer; [signal] fires it once and disarms,
    so redundant signals while the consumer is already awake are
    coalesced, as with a real eventfd. *)

type t

val create : unit -> t

val arm : t -> (unit -> unit) -> unit
(** Install the wake callback.  If a signal was latched while unarmed,
    the callback fires immediately. *)

val signal : t -> unit
(** Fire the armed callback (disarming it), or latch the signal if no
    callback is armed. *)

val signals : t -> int
(** Total signals delivered or latched. *)

val is_armed : t -> bool
