type 'a slot = { value : 'a; enqueued_at : Sim.Time.t }

type 'a t = {
  ring_name : string;
  cap : int;
  mutable slots : 'a slot option array;
  mutable head : int;  (* next pop position *)
  mutable size : int;
  mutable n_pushed : int;
  mutable n_dropped : int;
}

let create ?(name = "") ~capacity () =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity";
  {
    ring_name = name;
    cap = capacity;
    slots = Array.make capacity None;
    head = 0;
    size = 0;
    n_pushed = 0;
    n_dropped = 0;
  }

let name t = t.ring_name
let capacity t = t.cap
let length t = t.size
let is_empty t = t.size = 0
let is_full t = t.size = t.cap

let push t ~now v =
  if t.size = t.cap then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    let tail = (t.head + t.size) mod t.cap in
    t.slots.(tail) <- Some { value = v; enqueued_at = now };
    t.size <- t.size + 1;
    t.n_pushed <- t.n_pushed + 1;
    true
  end

let pop t =
  if t.size = 0 then None
  else begin
    let slot = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod t.cap;
    t.size <- t.size - 1;
    match slot with
    | Some s -> Some s.value
    | None -> assert false
  end

let peek t =
  if t.size = 0 then None
  else match t.slots.(t.head) with Some s -> Some s.value | None -> assert false

let oldest_age t ~now =
  if t.size = 0 then 0
  else
    match t.slots.(t.head) with
    | Some s -> Sim.Time.sub now s.enqueued_at
    | None -> assert false

let pushed t = t.n_pushed
let dropped t = t.n_dropped

let drain t f =
  let n = ref 0 in
  let rec go () =
    match pop t with
    | Some v ->
        f v;
        incr n;
        go ()
    | None -> ()
  in
  go ();
  !n
