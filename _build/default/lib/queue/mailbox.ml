type t = {
  mutable pending : (unit -> unit) option;
  mutable n_posted : int;
  mutable n_serviced : int;
}

let create () = { pending = None; n_posted = 0; n_serviced = 0 }

let post t work =
  match t.pending with
  | Some _ -> false
  | None ->
      t.pending <- Some work;
      t.n_posted <- t.n_posted + 1;
      true

let service t =
  match t.pending with
  | None -> false
  | Some work ->
      t.pending <- None;
      t.n_serviced <- t.n_serviced + 1;
      work ();
      true

let is_occupied t = Option.is_some t.pending
let posted t = t.n_posted
let serviced t = t.n_serviced
