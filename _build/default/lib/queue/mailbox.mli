(** Engine mailbox: the depth-1 control-to-engine channel of §2.3.

    Control-plane components post short sections of work that the engine
    executes synchronously on its own thread, lock-free and non-blocking
    for the engine.  The queue has depth one: a second post while an item
    is pending fails, and callers retry (the control plane is not
    latency-sensitive). *)

type t

val create : unit -> t

val post : t -> (unit -> unit) -> bool
(** [post t work] succeeds iff the mailbox is empty. *)

val service : t -> bool
(** Called by the engine on its thread each iteration: runs the pending
    work item if any.  Returns whether work was executed. *)

val is_occupied : t -> bool

val posted : t -> int
(** Total successfully posted items. *)

val serviced : t -> int
