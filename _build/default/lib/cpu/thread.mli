(** Direct-style simulated threads.

    Application code (benchmark clients, antagonists, control-plane
    agents) is easier to write as straight-line code than as an explicit
    step state machine.  [Thread] wraps a {!Sched.task} around an OCaml
    effects-based coroutine: the body performs {!compute}, {!wait} and
    {!sleep} operations and the scheduler interleaves it with everything
    else on the machine. *)

type ctx
(** Handle passed to the thread body. *)

val spawn :
  Sched.machine ->
  name:string ->
  account:string ->
  klass:Sched.klass ->
  ?idle:Sched.idle_policy ->
  (ctx -> unit) ->
  Sched.task
(** Create and start a thread running the body.  [idle] (default
    [Block]) governs {!wait}: blocking wait versus spin-polling wait. *)

val task : ctx -> Sched.task
val machine : ctx -> Sched.machine
val now : ctx -> Sim.Time.t

val compute : ctx -> Sim.Time.t -> unit
(** Consume CPU time. *)

val compute_nonpreemptible : ctx -> Sim.Time.t -> unit
(** Consume CPU time during which the core cannot be preempted (models
    time inside a non-preemptible kernel region). *)

val syscall : ctx -> Sim.Time.t -> unit
(** Consume ring-switch cost plus the given in-kernel work. *)

val wait : ctx -> unit
(** Park until another component wakes or kicks this thread's task.  With
    idle policy [Spin] the core is held (spin-polling) while parked. *)

val sleep : ctx -> Sim.Time.t -> unit
(** Park for a fixed duration. *)

val yield : ctx -> unit
(** Give the scheduler a chance to run somebody else. *)
