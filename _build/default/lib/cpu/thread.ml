module Time = Sim.Time

type _ Effect.t +=
  | Compute : Time.t -> unit Effect.t
  | Compute_np : Time.t -> unit Effect.t
  | Wait : unit Effect.t
  | Sleep : Time.t -> unit Effect.t
  | Yield : unit Effect.t

type ctx = {
  mutable tsk : Sched.task option;
  m : Sched.machine;
  (* Continuation to run on the next [step] call, set each time the body
     performs an effect. *)
  mutable resume : (unit -> unit) option;
  (* Step result produced by the last segment of the body. *)
  mutable outcome : Sched.step_result;
}

let task ctx = match ctx.tsk with Some t -> t | None -> assert false
let machine ctx = ctx.m
let now ctx = Sim.Loop.now (Sched.loop ctx.m)

let compute _ctx cost = Effect.perform (Compute cost)
let compute_nonpreemptible _ctx cost = Effect.perform (Compute_np cost)
let wait _ctx = Effect.perform Wait
let sleep _ctx d = Effect.perform (Sleep d)
let yield _ctx = Effect.perform Yield

let syscall ctx cost =
  let costs = Sched.costs ctx.m in
  compute ctx (Time.add costs.Sim.Costs.syscall cost)

let step ctx () =
  match ctx.resume with
  | None -> Sched.Finished
  | Some f ->
      ctx.resume <- None;
      ctx.outcome <- Sched.Finished;
      f ();
      ctx.outcome

let spawn m ~name ~account ~klass ?(idle = Sched.Block) body =
  let ctx = { tsk = None; m; resume = None; outcome = Sched.Finished } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ctx.outcome <- Sched.Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Compute cost ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  ctx.outcome <- Sched.Ran cost;
                  ctx.resume <- Some (fun () -> Effect.Deep.continue k ()))
          | Compute_np cost ->
              Some
                (fun k ->
                  ctx.outcome <- Sched.Ran_nonpreemptible cost;
                  ctx.resume <- Some (fun () -> Effect.Deep.continue k ()))
          | Wait ->
              Some
                (fun k ->
                  ctx.outcome <- Sched.Idle;
                  ctx.resume <- Some (fun () -> Effect.Deep.continue k ()))
          | Sleep d ->
              Some
                (fun k ->
                  ctx.outcome <- Sched.Idle;
                  ctx.resume <- Some (fun () -> Effect.Deep.continue k ());
                  ignore
                    (Sim.Loop.after (Sched.loop m) d (fun () ->
                         Sched.wake (task ctx))))
          | Yield ->
              Some
                (fun k ->
                  (* A zero-cost run gives the scheduler a boundary at
                     which to reschedule. *)
                  ctx.outcome <- Sched.Ran Time.zero;
                  ctx.resume <- Some (fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  ctx.resume <- Some (fun () -> Effect.Deep.match_with body ctx handler);
  let t = Sched.spawn m ~name ~account ~klass ~idle ~step:(step ctx) in
  ctx.tsk <- Some t;
  Sched.start t;
  t
