lib/cpu/sched.mli: Sim
