lib/cpu/thread.ml: Effect Sched Sim
