lib/cpu/sched.ml: Array Float Hashtbl List Printf Queue Sim String
