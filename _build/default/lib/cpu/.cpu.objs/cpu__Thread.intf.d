lib/cpu/thread.mli: Sched Sim
