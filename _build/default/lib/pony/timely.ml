module Time = Sim.Time

type params = {
  t_low : Time.t;
  t_high : Time.t;
  min_rate_gbps : float;
  max_rate_gbps : float;
  additive_gbps : float;
  beta : float;
  hai_threshold : int;
}

let default_params ~max_rate_gbps =
  {
    t_low = Time.us 15;
    t_high = Time.us 50;
    min_rate_gbps = 0.05;
    max_rate_gbps;
    additive_gbps = 0.5;
    beta = 0.8;
    hai_threshold = 5;
  }

type t = {
  p : params;
  mutable rate : float;  (* Gbps *)
  mutable prev_rtt : float;  (* ns *)
  mutable rtt_diff : float;  (* EWMA of RTT differences, ns *)
  mutable neg_gradient_count : int;
  mutable min_rtt_seen : Time.t;
  mutable n_samples : int;
}

(* EWMA weight for the RTT-difference filter (Timely's alpha). *)
let alpha = 0.46

let create ?params ~max_rate_gbps () =
  let p =
    match params with Some p -> p | None -> default_params ~max_rate_gbps
  in
  {
    p;
    (* Start at half line rate: new flows probe upward quickly. *)
    rate = p.max_rate_gbps /. 2.0;
    prev_rtt = 0.0;
    rtt_diff = 0.0;
    neg_gradient_count = 0;
    min_rtt_seen = 0;
    n_samples = 0;
  }

let clamp t r = Float.min t.p.max_rate_gbps (Float.max t.p.min_rate_gbps r)

let on_rtt_sample t rtt =
  t.n_samples <- t.n_samples + 1;
  if t.min_rtt_seen = 0 || rtt < t.min_rtt_seen then t.min_rtt_seen <- rtt;
  let rtt_f = float_of_int rtt in
  if t.prev_rtt = 0.0 then t.prev_rtt <- rtt_f
  else begin
    let new_diff = rtt_f -. t.prev_rtt in
    t.prev_rtt <- rtt_f;
    t.rtt_diff <- ((1.0 -. alpha) *. t.rtt_diff) +. (alpha *. new_diff);
    let min_rtt = Float.max 1.0 (float_of_int t.min_rtt_seen) in
    let gradient = t.rtt_diff /. min_rtt in
    if rtt < t.p.t_low then begin
      t.neg_gradient_count <- 0;
      t.rate <- clamp t (t.rate +. t.p.additive_gbps)
    end
    else if rtt > t.p.t_high then begin
      t.neg_gradient_count <- 0;
      let over = float_of_int t.p.t_high /. rtt_f in
      t.rate <- clamp t (t.rate *. (1.0 -. (t.p.beta *. (1.0 -. over))))
    end
    else if gradient <= 0.0 then begin
      t.neg_gradient_count <- t.neg_gradient_count + 1;
      let n = if t.neg_gradient_count >= t.p.hai_threshold then 5.0 else 1.0 in
      t.rate <- clamp t (t.rate +. (n *. t.p.additive_gbps))
    end
    else begin
      t.neg_gradient_count <- 0;
      t.rate <- clamp t (t.rate *. (1.0 -. (t.p.beta *. Float.min 1.0 gradient)))
    end
  end

let on_loss t =
  t.neg_gradient_count <- 0;
  t.rate <- clamp t (t.rate *. 0.5)

let rate_gbps t = t.rate
let rate_bytes_per_ns t = t.rate /. 8.0
let min_rtt t = t.min_rtt_seen
let samples t = t.n_samples
