(** Timely-variant congestion control (§3.1).

    "The congestion control algorithm we deploy with Pony Express is a
    variant of Timely and runs on dedicated fabric QoS classes."  Timely
    is rate-based: each acknowledged packet carries an RTT sample, and
    the sending rate adjusts on the RTT's absolute value and gradient:

    - RTT below [t_low]: additive increase (the fabric is underused).
    - RTT above [t_high]: multiplicative decrease proportional to the
      overshoot.
    - In between: gradient-based — decrease when RTT is rising, increase
      when falling, with hyperactive additive increase after several
      consecutive negative gradients.

    The module is pure state-machine logic so the algorithm is testable
    without the simulator. *)

type t

type params = {
  t_low : Sim.Time.t;
  t_high : Sim.Time.t;
  min_rate_gbps : float;
  max_rate_gbps : float;
  additive_gbps : float;  (** Additive increment per update. *)
  beta : float;  (** Multiplicative decrease factor. *)
  hai_threshold : int;
      (** Consecutive negative gradients before hyperactive increase. *)
}

val default_params : max_rate_gbps:float -> params
(** [t_low] 15 us, [t_high] 50 us (datacenter-scale), additive
    0.5 Gbps, beta 0.8, HAI after 5. *)

val create : ?params:params -> max_rate_gbps:float -> unit -> t

val on_rtt_sample : t -> Sim.Time.t -> unit
(** Feed one RTT measurement (ack arrival). *)

val on_loss : t -> unit
(** Retransmission-detected loss: treat as a severe congestion signal. *)

val rate_gbps : t -> float
val rate_bytes_per_ns : t -> float

val min_rtt : t -> Sim.Time.t
(** Smallest RTT observed so far (0 when none). *)

val samples : t -> int
