lib/pony/express.mli: Control Cpu Engine Memory Nic Sim Wire
