lib/pony/flow.mli: Memory Sim Timely Wire
