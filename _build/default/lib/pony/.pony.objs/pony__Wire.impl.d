lib/pony/wire.ml: List Memory Sim
