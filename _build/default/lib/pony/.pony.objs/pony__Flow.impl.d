lib/pony/flow.ml: Float Hashtbl List Memory Queue Sim Timely Wire
