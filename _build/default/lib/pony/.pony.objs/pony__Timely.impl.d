lib/pony/timely.ml: Float Sim
