lib/pony/timely.mli: Sim
