lib/pony/wire.mli: Memory Sim
