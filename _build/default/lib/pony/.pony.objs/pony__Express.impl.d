lib/pony/express.ml: Array Control Cpu Engine Float Flow Hashtbl Int64 List Memory Nic Printf Queue Sim Squeue String Timely Wire
