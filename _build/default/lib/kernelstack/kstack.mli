(** Baseline kernel TCP/IP stack model.

    The paper's comparator is the Linux kernel TCP stack (§5: "kernel
    TCP/IP implementations remain the only widely-deployed and
    production-hardened alternative").  This module implements a
    simplified but real TCP: three-way handshake, cumulative ACKs,
    slow-start and AIMD congestion control, fast retransmit on duplicate
    ACKs, retransmission timeouts, receiver flow control, and in-order
    delivery with out-of-order buffering.

    The *cost* model reproduces where kernel networking spends CPU:
    socket system calls and copy-in in the sender's thread, softirq
    protocol processing in interrupt context (stealing time from whatever
    runs, §2.5), copy-out in the receiver's thread, interrupt-driven
    wakeups through CFS, and cache-locality degradation as the number of
    simultaneously active streams grows (Table 1's 22 -> 12.4 Gbps
    collapse at 200 streams).  A busy-polling mode models Linux's
    SO_BUSY_POLL (Figure 6(a)'s "TCP busy-poll" line). *)

type t
type socket

val create :
  loop:Sim.Loop.t ->
  machine:Cpu.Sched.machine ->
  nic:Nic.t ->
  ?busy_poll:bool ->
  ?softirq_workers:int ->
  unit ->
  t
(** One stack per host; it takes ownership of all the NIC's receive
    queues and its transmit-drain hook.  [busy_poll] (default false)
    makes receiving threads poll the NIC from their own context instead
    of sleeping on interrupts.  [softirq_workers] (default 1) is the
    number of cores receive processing may spread over: kernel RFS keeps
    transport processing local to the application's core (§3), so this
    should be the number of independent application jobs. *)

val machine : t -> Cpu.Sched.machine
val addr : t -> Memory.Packet.addr

val listen : t -> port:int -> on_accept:(socket -> unit) -> unit
(** Register a passive listener.  [on_accept] runs when a connection
    completes; it typically spawns a handler thread. *)

val connect :
  Cpu.Thread.ctx -> t -> dst:Memory.Packet.addr -> port:int -> socket
(** Active open; blocks the calling thread for the handshake RTT. *)

val send : Cpu.Thread.ctx -> socket -> bytes:int -> unit
(** Stream [bytes] out.  Charges syscall and copy-in costs; blocks while
    the socket send buffer is full (the transport drains it under
    congestion control). *)

val recv : Cpu.Thread.ctx -> socket -> max:int -> int
(** Take up to [max] in-order bytes; blocks until at least one byte is
    available.  Charges syscall and copy-out costs. *)

val try_send : Cpu.Thread.ctx -> socket -> bytes:int -> bool
(** Non-blocking send: [false] (after the syscall cost) when the send
    buffer cannot take the write. *)

val try_recv : Cpu.Thread.ctx -> socket -> max:int -> int
(** Non-blocking receive: 0 when no in-order data is buffered. *)

val epoll_wait : Cpu.Thread.ctx -> t -> int -> int
(** [epoll_wait ctx t last_seen] parks the thread until the stack's
    activity counter passes [last_seen] (any socket became readable or
    writable), then returns the new counter.  This is how a single
    Neper-style thread multiplexes many sockets. *)

val activity : t -> int
(** Current activity counter, for seeding {!epoll_wait}. *)

val peer : socket -> Memory.Packet.addr
val bytes_sent : socket -> int
(** Application bytes handed to [send] so far. *)

val bytes_acked : socket -> int
(** Bytes known delivered (cumulatively acknowledged). *)

val bytes_received : socket -> int
(** In-order bytes made available to the receiver so far. *)

val cwnd_segments : socket -> float
val retransmits : socket -> int

val active_streams : t -> int
(** Number of established connections on this stack, which drives the
    locality-degradation multiplier. *)

val arm_activity_wake : t -> Cpu.Sched.task -> unit
(** One-shot: wake the given task on the next activity edge (any socket
    becoming readable/writable).  Lets an application thread sleep with
    a timeout yet react promptly to network progress. *)

val readable : socket -> bool
(** In-order data is buffered (what an epoll readiness event reports);
    free of charge, unlike a speculative {!try_recv}. *)

val writable : socket -> bool
(** The send buffer has room. *)
