module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

type seg_kind = Syn | Syn_ack | Data | Pure_ack

type Packet.payload +=
  | Tcp of {
      src_port : int;
      dst_port : int;
      kind : seg_kind;
      seq : int;  (** First byte sequence number for [Data]. *)
      len : int;  (** Payload bytes for [Data]; 0 otherwise. *)
      ack : int;  (** Cumulative acknowledgement (piggybacked on data). *)
      wnd : int;  (** Advertised receive window, bytes. *)
    }

(* Ethernet + IPv4 + TCP with timestamps. *)
let header_bytes = 66
let snd_buf_cap = 4 * 1024 * 1024
let rcv_buf_cap = 6 * 1024 * 1024
let initial_cwnd = 10.0
let min_rto = Time.ms 5
let max_rto = Time.ms 200
let softirq_budget = 16

type sock_state = Syn_sent | Established

type in_flight = { seq : int; len : int; mutable sent_at : Time.t }

type socket = {
  stack : t;
  local_port : int;
  peer_addr : Packet.addr;
  mutable peer_port : int;
  mutable state : sock_state;
  (* Send side. *)
  mutable snd_queued : int;
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable flight : in_flight list;  (* ascending seq *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable recover : int;  (* NewReno: highest seq outstanding when loss was detected *)
  mutable peer_wnd : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : Time.t;
  mutable rto_handle : Loop.handle option;
  mutable writer : Cpu.Sched.task option;
  mutable connecter : Cpu.Sched.task option;
  (* Receive side. *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list;  (* disjoint, ascending *)
  mutable rx_avail : int;
  mutable rx_delivered : int;
  mutable reader : Cpu.Sched.task option;
  (* Stats. *)
  mutable n_retx : int;
  mutable app_sent : int;
}

and t = {
  lp : Loop.t;
  mach : Cpu.Sched.machine;
  nic : Nic.t;
  busy_poll : bool;
  conns : (int * Packet.addr * int, socket) Hashtbl.t;
  listeners : (int, socket -> unit) Hashtbl.t;
  mutable next_port : int;
  mutable n_established : int;
  gen : Packet.Id_gen.t;
  (* Sockets with queued data that could not transmit (NIC ring full). *)
  pending_push : socket Queue.t;
  (* Busy-poll mode: tasks parked waiting for network progress. *)
  mutable pollers : Cpu.Sched.task list;
  (* Edge counter for epoll-style multiplexing: bumped on any socket
     becoming readable or writable. *)
  mutable activity_seq : int;
  mutable epoll_waiters : Cpu.Sched.task list;
}

(* How one unit of protocol work is paid for: in the calling thread
   (syscall or busy-poll context) or accumulated for a softirq charge. *)
type charge = App of Cpu.Thread.ctx | Softirq of int ref

let pay chg ns =
  match chg with
  | App ctx -> Cpu.Thread.compute ctx ns
  | Softirq acc -> acc := !acc + ns

let machine t = t.mach
let addr t = Nic.addr t.nic
let active_streams t = t.n_established
let costs t = Cpu.Sched.costs t.mach
let mss t = Nic.mtu t.nic - header_bytes

(* Per-packet cost multiplier from cache/locality degradation with many
   simultaneously active connections (Table 1). *)
let locality_mult t =
  1.0
  +. (costs t).Sim.Costs.tcp_locality_factor
     *. Float.max 0.0 (log (float_of_int (max 1 t.n_established)))

let scaled t base = Time.scale base (locality_mult t)

let tx_cost t = scaled t (costs t).Sim.Costs.tcp_tx_per_packet
let rx_cost t = scaled t (costs t).Sim.Costs.tcp_rx_per_packet

(* Control segments (pure ACK, SYN) are cheaper than full data-path
   processing. *)
let rx_ctl_cost t = Time.scale (rx_cost t) 0.4

let copy_cost t bytes =
  Time.ns
    (int_of_float
       (Float.round ((costs t).Sim.Costs.tcp_copy_per_byte_ns *. float_of_int bytes)))

let in_flight_bytes sock =
  List.fold_left (fun acc f -> acc + f.len) 0 sock.flight

let rcv_window sock = max 0 (rcv_buf_cap - sock.rx_avail)

let send_segment sock ~kind ~seq ~len =
  let t = sock.stack in
  let wire = header_bytes + len in
  let pkt =
    Packet.make
      ~id:(Packet.Id_gen.next t.gen)
      ~src:(addr t) ~dst:sock.peer_addr
      ~flow_hash:(Hashtbl.hash (sock.local_port, sock.peer_addr, sock.peer_port))
      ~qos:2 ~wire_bytes:wire ~payload_bytes:len
      (Tcp
         {
           src_port = sock.local_port;
           dst_port = sock.peer_port;
           kind;
           seq;
           len;
           ack = sock.rcv_nxt;
           wnd = rcv_window sock;
         })
      ()
  in
  Nic.try_transmit t.nic pkt

(* -- Retransmission ---------------------------------------------------- *)

let cancel_rto sock =
  match sock.rto_handle with
  | Some h ->
      Loop.cancel h;
      sock.rto_handle <- None
  | None -> ()

let rec arm_rto sock =
  cancel_rto sock;
  if sock.flight <> [] then
    sock.rto_handle <-
      Some
        (Loop.after sock.stack.lp sock.rto (fun () ->
             sock.rto_handle <- None;
             on_rto sock))

and on_rto sock =
  match sock.flight with
  | [] -> ()
  | flight ->
      sock.ssthresh <- Float.max 2.0 (sock.cwnd /. 2.0);
      sock.cwnd <- 1.0;
      sock.dupacks <- 0;
      sock.recover <- sock.snd_nxt;
      sock.rto <- Time.min max_rto (2 * sock.rto);
      (* Go-back-N: without SACK, a timeout retransmits the outstanding
         window (bounded), not just the head, so burst losses recover in
         one round trip instead of one RTO each. *)
      let now = Loop.now sock.stack.lp in
      List.iteri
        (fun i f ->
          if i < 16 then begin
            sock.n_retx <- sock.n_retx + 1;
            f.sent_at <- now;
            ignore (send_segment sock ~kind:Data ~seq:f.seq ~len:f.len)
          end)
        flight;
      arm_rto sock

let retransmit_head sock =
  match sock.flight with
  | [] -> ()
  | head :: _ ->
      sock.n_retx <- sock.n_retx + 1;
      head.sent_at <- Loop.now sock.stack.lp;
      ignore (send_segment sock ~kind:Data ~seq:head.seq ~len:head.len)

(* NewReno entry on the third duplicate ACK. *)
let fast_retransmit sock =
  if sock.snd_una >= sock.recover then begin
    sock.ssthresh <- Float.max 2.0 (sock.cwnd /. 2.0);
    sock.cwnd <- sock.ssthresh;
    sock.recover <- sock.snd_nxt;
    retransmit_head sock
  end

(* -- Transmit path ----------------------------------------------------- *)

let bump_activity t =
  t.activity_seq <- t.activity_seq + 1;
  match t.epoll_waiters with
  | [] -> ()
  | waiters ->
      t.epoll_waiters <- [];
      List.iter Cpu.Sched.wake waiters


(* Segment as much queued data as congestion and flow control allow,
   paying per-packet cost in the given context. *)
let rec push_out sock chg =
  let t = sock.stack in
  let m = mss t in
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    let fl_bytes = in_flight_bytes sock in
    let fl_segs = List.length sock.flight in
    if
      sock.snd_queued > 0
      && float_of_int fl_segs < sock.cwnd
      && fl_bytes + m <= max m sock.peer_wnd
      && Nic.tx_slots_free t.nic > 0
    then begin
      pay chg (tx_cost t);
      (* Paying in app context suspends the thread, and a softirq may
         have transmitted for this socket meanwhile: re-read the state
         before committing to a segment. *)
      let len = min m sock.snd_queued in
      if
        len > 0
        && float_of_int (List.length sock.flight) < sock.cwnd
        && Nic.tx_slots_free t.nic > 0
        && send_segment sock ~kind:Data ~seq:sock.snd_nxt ~len
      then begin
        sock.flight <-
          sock.flight @ [ { seq = sock.snd_nxt; len; sent_at = Loop.now t.lp } ];
        sock.snd_nxt <- sock.snd_nxt + len;
        sock.snd_queued <- sock.snd_queued - len;
        progressed := true
      end
      else continue := false
    end
    else continue := false
  done;
  if !progressed then arm_rto sock;
  (* If data remains purely because the NIC ring was full, retry when a
     slot frees. *)
  if
    sock.snd_queued > 0
    && float_of_int (List.length sock.flight) < sock.cwnd
    && Nic.tx_slots_free t.nic = 0
  then Queue.add sock t.pending_push;
  (* Writers blocked on a full send buffer can make progress once the
     queue drains below capacity. *)
  if sock.snd_queued < snd_buf_cap then begin
    bump_activity t;
    match sock.writer with
    | Some task ->
        sock.writer <- None;
        Cpu.Sched.wake task
    | None -> ()
  end

and service_pending_charged t acc =
  let n = Queue.length t.pending_push in
  for _ = 1 to n do
    match Queue.take_opt t.pending_push with
    | Some sock -> push_out sock (Softirq acc)
    | None -> ()
  done

and service_pending t =
  let acc = ref 0 in
  service_pending_charged t acc;
  Cpu.Sched.softirq_charge t.mach !acc

(* -- Receive path ------------------------------------------------------ *)

let sock_key sock = (sock.local_port, sock.peer_addr, sock.peer_port)

let wake_reader sock =
  bump_activity sock.stack;
  match sock.reader with
  | Some task ->
      sock.reader <- None;
      Cpu.Sched.wake task
  | None -> ()

(* Insert an out-of-order segment, keeping the list disjoint and sorted;
   overlapping duplicates are ignored wholesale (a simplification: real
   TCP trims, but our senders retransmit whole segments). *)
let insert_ooo sock seq len =
  let overlaps (s, l) = not (seq + len <= s || s + l <= seq) in
  if not (List.exists overlaps sock.ooo) then
    sock.ooo <-
      List.sort (fun (a, _) (b, _) -> compare a b) ((seq, len) :: sock.ooo)

(* Advance rcv_nxt over any now-contiguous out-of-order data. *)
let absorb_ooo sock =
  let rec go () =
    match sock.ooo with
    | (s, l) :: rest when s <= sock.rcv_nxt ->
        let advance = max 0 (s + l - sock.rcv_nxt) in
        sock.rcv_nxt <- sock.rcv_nxt + advance;
        sock.rx_avail <- sock.rx_avail + advance;
        sock.ooo <- rest;
        go ()
    | _ -> ()
  in
  go ()

let sample_rtt sock sent_at =
  let rtt = float_of_int (Time.sub (Loop.now sock.stack.lp) sent_at) in
  if sock.srtt = 0.0 then begin
    sock.srtt <- rtt;
    sock.rttvar <- rtt /. 2.0
  end
  else begin
    sock.rttvar <-
      (0.75 *. sock.rttvar) +. (0.25 *. Float.abs (sock.srtt -. rtt));
    sock.srtt <- (0.875 *. sock.srtt) +. (0.125 *. rtt)
  end;
  let rto = int_of_float (sock.srtt +. (4.0 *. sock.rttvar)) in
  sock.rto <- Time.min max_rto (Time.max min_rto rto)

let process_ack sock ~ack ~wnd chg =
  sock.peer_wnd <- wnd;
  if ack > sock.snd_una then begin
    let acked_bytes = ack - sock.snd_una in
    let acked_segs = ref 0 in
    let rec strip = function
      | f :: rest when f.seq + f.len <= ack ->
          incr acked_segs;
          sample_rtt sock f.sent_at;
          strip rest
      | rest -> rest
    in
    sock.flight <- strip sock.flight;
    sock.snd_una <- ack;
    sock.dupacks <- 0;
    ignore acked_bytes;
    if ack < sock.recover then
      (* NewReno partial ack: another segment from the same loss window
         is missing; retransmit it immediately. *)
      retransmit_head sock
    else begin
      (* Congestion window growth: slow start then AIMD. *)
      let segs = float_of_int !acked_segs in
      if sock.cwnd < sock.ssthresh then sock.cwnd <- sock.cwnd +. segs
      else sock.cwnd <- sock.cwnd +. (segs /. sock.cwnd)
    end;
    arm_rto sock;
    push_out sock chg
  end
  else if sock.flight <> [] && ack = sock.snd_una then begin
    sock.dupacks <- sock.dupacks + 1;
    if sock.dupacks = 3 then fast_retransmit sock
  end

let rec handle_segment t pkt chg =
  match pkt.Packet.payload with
  | Tcp seg -> (
      let key = (seg.dst_port, pkt.Packet.src, seg.src_port) in
      match seg.kind with
      | Syn -> (
          match Hashtbl.find_opt t.listeners seg.dst_port with
          | None -> pay chg (rx_ctl_cost t)
          | Some on_accept ->
              pay chg (rx_ctl_cost t);
              if not (Hashtbl.mem t.conns key) then begin
                let sock = make_socket t ~local_port:seg.dst_port
                    ~peer_addr:pkt.Packet.src ~peer_port:seg.src_port in
                sock.state <- Established;
                Hashtbl.replace t.conns key sock;
                t.n_established <- t.n_established + 1;
                ignore (send_segment sock ~kind:Syn_ack ~seq:0 ~len:0);
                on_accept sock
              end)
      | Syn_ack -> (
          match Hashtbl.find_opt t.conns key with
          | None -> pay chg (rx_ctl_cost t)
          | Some sock ->
              pay chg (rx_ctl_cost t);
              if sock.state = Syn_sent then begin
                sock.state <- Established;
                sock.peer_wnd <- seg.wnd;
                t.n_established <- t.n_established + 1;
                ignore (send_segment sock ~kind:Pure_ack ~seq:0 ~len:0);
                match sock.connecter with
                | Some task ->
                    sock.connecter <- None;
                    Cpu.Sched.wake task
                | None -> ()
              end)
      | Pure_ack -> (
          match Hashtbl.find_opt t.conns key with
          | None -> pay chg (rx_ctl_cost t)
          | Some sock ->
              pay chg (rx_ctl_cost t);
              process_ack sock ~ack:seg.ack ~wnd:seg.wnd chg)
      | Data -> (
          match Hashtbl.find_opt t.conns key with
          | None -> pay chg (rx_ctl_cost t)
          | Some sock ->
              pay chg (rx_cost t);
              process_ack sock ~ack:seg.ack ~wnd:seg.wnd chg;
              let advanced = ref false in
              if seg.seq = sock.rcv_nxt then begin
                if sock.rx_avail + seg.len <= rcv_buf_cap then begin
                  sock.rcv_nxt <- sock.rcv_nxt + seg.len;
                  sock.rx_avail <- sock.rx_avail + seg.len;
                  absorb_ooo sock;
                  advanced := true
                end
              end
              else if seg.seq > sock.rcv_nxt then insert_ooo sock seg.seq seg.len;
              (* Immediate ACK per segment. *)
              pay chg (Time.scale (tx_cost t) 0.4);
              ignore (send_segment sock ~kind:Pure_ack ~seq:0 ~len:0);
              if !advanced then wake_reader sock))
  | _ -> ()

and make_socket t ~local_port ~peer_addr ~peer_port =
  {
    stack = t;
    local_port;
    peer_addr;
    peer_port;
    state = Syn_sent;
    snd_queued = 0;
    snd_nxt = 0;
    snd_una = 0;
    flight = [];
    cwnd = initial_cwnd;
    ssthresh = 1e9;
    dupacks = 0;
    recover = 0;
    peer_wnd = rcv_buf_cap;
    srtt = 0.0;
    rttvar = 0.0;
    rto = Time.ms 10;
    rto_handle = None;
    writer = None;
    connecter = None;
    rcv_nxt = 0;
    ooo = [];
    rx_avail = 0;
    rx_delivered = 0;
    reader = None;
    n_retx = 0;
    app_sent = 0;
  }

(* -- Softirq / busy-poll ring processing -------------------------------- *)

let process_ring t qi chg =
  let ring = Nic.rx_ring t.nic ~queue:qi in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < softirq_budget do
    match Squeue.Spsc.pop ring with
    | Some pkt ->
        incr n;
        handle_segment t pkt chg
    | None -> continue := false
  done;
  !n

(* NAPI-style kernel receive processing: a real scheduled task so that
   protocol work is rate-limited by CPU, not just accounted.  A worker
   services every rx ring congruent to its index; the NIC interrupt
   wakes it; it polls until all its rings are empty, then re-arms their
   interrupts and sleeps. *)
let spawn_softirq_worker t ~worker ~stride ~queues =
  let step () =
    let acc = ref 0 in
    let n = ref 0 in
    let qi = ref worker in
    while !qi < queues do
      n := !n + process_ring t !qi (Softirq acc);
      qi := !qi + stride
    done;
    service_pending_charged t acc;
    if !n = 0 then begin
      let qi = ref worker in
      while !qi < queues do
        Nic.rearm_rx_interrupt t.nic ~queue:!qi;
        qi := !qi + stride
      done;
      Cpu.Sched.Idle
    end
    else Cpu.Sched.Ran !acc
  in
  Cpu.Sched.spawn t.mach
    ~name:(Printf.sprintf "ksoftirqd/%d" worker)
    ~account:"softirq"
    ~klass:(Cpu.Sched.Micro_quanta { runtime_pct = 1.0 })
    ~idle:Cpu.Sched.Block ~step

let poll_all_rings_app t ctx =
  let total = ref 0 in
  for qi = 0 to (Nic.config t.nic).Nic.num_rx_queues - 1 do
    total := !total + process_ring t qi (App ctx)
  done;
  service_pending t;
  !total

let kick_pollers t = List.iter Cpu.Sched.kick t.pollers

let park_poller t ctx =
  let task = Cpu.Thread.task ctx in
  if not (List.memq task t.pollers) then t.pollers <- task :: t.pollers;
  Cpu.Thread.wait ctx;
  (* Deregister on resume: while this thread runs (or after it exits),
     notifications must fall back to the softirq path. *)
  t.pollers <- List.filter (fun x -> not (x == task)) t.pollers

(* -- Construction ------------------------------------------------------ *)

let create ~loop ~machine ~nic ?(busy_poll = false) ?(softirq_workers = 1) () =
  if softirq_workers <= 0 then invalid_arg "Kstack.create: softirq_workers";
  let t =
    {
      lp = loop;
      mach = machine;
      nic;
      busy_poll;
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 8;
      next_port = 10_000;
      n_established = 0;
      gen = Packet.Id_gen.create ();
      pending_push = Queue.create ();
      pollers = [];
      activity_seq = 0;
      epoll_waiters = [];
    }
  in
  let nq = (Nic.config nic).Nic.num_rx_queues in
  (* RFS-style affinity: transport processing for an application's flows
     stays local to that application's core (see section 3 of the
     paper), so softirq work serializes per worker rather than scaling
     with the number of rx queues.  One worker per application job. *)
  let workers =
    Array.init (min softirq_workers nq) (fun w ->
        spawn_softirq_worker t ~worker:w ~stride:(min softirq_workers nq) ~queues:nq)
  in
  for qi = 0 to nq - 1 do
    let task = workers.(qi mod Array.length workers) in
    if busy_poll then
      (* SO_BUSY_POLL: a parked application thread polls from its own
         context; the softirq task is the fallback when no one polls
         (e.g. before the first accept). *)
      Nic.set_rx_notify nic ~queue:qi
        (Nic.Soft
           (fun () ->
             if t.pollers <> [] then kick_pollers t else Cpu.Sched.wake task))
    else
      Nic.set_rx_notify nic ~queue:qi
        (Nic.Interrupt (fun () -> Cpu.Sched.wake task))
  done;
  Nic.set_tx_drain_hook nic (fun () -> service_pending t);
  t

let listen t ~port ~on_accept = Hashtbl.replace t.listeners port on_accept

let connect ctx t ~dst ~port =
  let local_port = t.next_port in
  t.next_port <- t.next_port + 1;
  let sock = make_socket t ~local_port ~peer_addr:dst ~peer_port:port in
  Hashtbl.replace t.conns (local_port, dst, port) sock;
  Cpu.Thread.syscall ctx (costs t).Sim.Costs.tcp_per_syscall;
  ignore (send_segment sock ~kind:Syn ~seq:0 ~len:0);
  while sock.state <> Established do
    if t.busy_poll then begin
      ignore (poll_all_rings_app t ctx);
      if sock.state <> Established then park_poller t ctx
    end
    else begin
      sock.connecter <- Some (Cpu.Thread.task ctx);
      Cpu.Thread.wait ctx
    end
  done;
  sock

let send ctx sock ~bytes =
  if bytes <= 0 then invalid_arg "Kstack.send: bytes";
  let t = sock.stack in
  Cpu.Thread.syscall ctx (costs t).Sim.Costs.tcp_per_syscall;
  (* Block while the send buffer cannot take this write. *)
  while sock.snd_queued + bytes > snd_buf_cap do
    if t.busy_poll then begin
      ignore (poll_all_rings_app t ctx);
      if sock.snd_queued + bytes > snd_buf_cap then park_poller t ctx
    end
    else begin
      sock.writer <- Some (Cpu.Thread.task ctx);
      Cpu.Thread.wait ctx
    end
  done;
  Cpu.Thread.compute ctx (copy_cost t bytes);
  sock.snd_queued <- sock.snd_queued + bytes;
  sock.app_sent <- sock.app_sent + bytes;
  push_out sock (App ctx)

let recv ctx sock ~max =
  if max <= 0 then invalid_arg "Kstack.recv: max";
  let t = sock.stack in
  Cpu.Thread.syscall ctx (costs t).Sim.Costs.tcp_per_syscall;
  while sock.rx_avail = 0 do
    if t.busy_poll then begin
      ignore (poll_all_rings_app t ctx);
      if sock.rx_avail = 0 then park_poller t ctx
    end
    else begin
      sock.reader <- Some (Cpu.Thread.task ctx);
      Cpu.Thread.wait ctx
    end
  done;
  let n = min max sock.rx_avail in
  sock.rx_avail <- sock.rx_avail - n;
  sock.rx_delivered <- sock.rx_delivered + n;
  Cpu.Thread.compute ctx (copy_cost t n);
  n

let try_send ctx sock ~bytes =
  if bytes <= 0 then invalid_arg "Kstack.try_send: bytes";
  let t = sock.stack in
  Cpu.Thread.syscall ctx (scaled t (costs t).Sim.Costs.tcp_per_syscall);
  if sock.snd_queued + bytes > snd_buf_cap then false
  else begin
    Cpu.Thread.compute ctx (copy_cost t bytes);
    sock.snd_queued <- sock.snd_queued + bytes;
    sock.app_sent <- sock.app_sent + bytes;
    push_out sock (App ctx);
    true
  end

let try_recv ctx sock ~max =
  if max <= 0 then invalid_arg "Kstack.try_recv: max";
  let t = sock.stack in
  Cpu.Thread.syscall ctx (scaled t (costs t).Sim.Costs.tcp_per_syscall);
  if sock.rx_avail = 0 then 0
  else begin
    let n = min max sock.rx_avail in
    sock.rx_avail <- sock.rx_avail - n;
    sock.rx_delivered <- sock.rx_delivered + n;
    Cpu.Thread.compute ctx (copy_cost t n);
    n
  end

let epoll_wait ctx t last_seen =
  Cpu.Thread.syscall ctx (costs t).Sim.Costs.tcp_per_syscall;
  while t.activity_seq <= last_seen do
    if t.busy_poll then begin
      ignore (poll_all_rings_app t ctx);
      if t.activity_seq <= last_seen then park_poller t ctx
    end
    else begin
      let task = Cpu.Thread.task ctx in
      if not (List.memq task t.epoll_waiters) then
        t.epoll_waiters <- task :: t.epoll_waiters;
      Cpu.Thread.wait ctx
    end
  done;
  t.activity_seq

let activity t = t.activity_seq

let peer sock = sock.peer_addr
let bytes_sent sock = sock.app_sent
let bytes_acked sock = sock.snd_una
let bytes_received sock = sock.rx_delivered
let cwnd_segments sock = sock.cwnd
let retransmits sock = sock.n_retx
let _ = sock_key

let arm_activity_wake t task =
  if not (List.memq task t.epoll_waiters) then
    t.epoll_waiters <- task :: t.epoll_waiters

let readable sock = sock.rx_avail > 0
let writable sock = sock.snd_queued < snd_buf_cap
