module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

let batch = 16

type t = {
  lp : Loop.t;
  nic : Nic.t;
  input : Packet.t Squeue.Spsc.t;
  pipeline : Engine.Element.Pipeline.t;
  eng : Engine.t;
  mutable n_forwarded : int;
  mutable n_policy_drops : int;
}

let run t () =
  let cost = ref Time.zero in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < batch do
    match Squeue.Spsc.pop t.input with
    | Some pkt -> (
        incr n;
        let survivor, c = Engine.Element.Pipeline.push t.pipeline pkt in
        cost := Time.add !cost c;
        match survivor with
        | Some pkt ->
            if Nic.try_transmit t.nic pkt then t.n_forwarded <- t.n_forwarded + 1
            else t.n_policy_drops <- t.n_policy_drops + 1
        | None -> t.n_policy_drops <- t.n_policy_drops + 1)
    | None -> continue := false
  done;
  if !n = 0 then Engine.No_work else Engine.Worked !cost

let create ~loop ~nic ~group ?(rate_gbps = 10.0) ?(burst_bytes = 1 lsl 20)
    ?(allow = fun _ -> true) () =
  let input = Squeue.Spsc.create ~name:"shaper.in" ~capacity:4096 () in
  let pipeline =
    Engine.Element.Pipeline.of_list
      [
        Engine.Element.counter ~name:"ingress";
        Engine.Element.acl ~name:"policy" ~allow;
        Engine.Element.token_bucket ~name:"shape" ~loop ~rate_gbps ~burst_bytes;
      ]
  in
  let t_ref = ref None in
  let eng =
    Engine.create ~name:"shaper"
      ~run:(fun () ->
        match !t_ref with Some t -> run t () | None -> Engine.No_work)
      ~queue_delay:(fun now ->
        match !t_ref with
        | Some t -> Squeue.Spsc.oldest_age t.input ~now
        | None -> 0)
      ()
  in
  let t =
    {
      lp = loop;
      nic;
      input;
      pipeline;
      eng;
      n_forwarded = 0;
      n_policy_drops = 0;
    }
  in
  t_ref := Some t;
  Engine.add group eng;
  t

let engine t = t.eng

let submit t pkt =
  let ok = Squeue.Spsc.push t.input ~now:(Loop.now t.lp) pkt in
  if ok then Engine.notify t.eng;
  ok

let forwarded t = t.n_forwarded
let shaped_drops t = t.n_policy_drops
