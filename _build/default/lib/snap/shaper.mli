(** Traffic-shaping engine (§2, Figure 2).

    One of Snap's original production engine types: "pacing and rate
    limiting ('shaping') for bandwidth enforcement" applied to host
    traffic.  The engine pulls packets from an input queue, runs them
    through a Click-style pipeline (ACL, per-class token buckets,
    counters), and forwards survivors to the NIC. *)

type t

val create :
  loop:Sim.Loop.t ->
  nic:Nic.t ->
  group:Engine.group ->
  ?rate_gbps:float ->
  ?burst_bytes:int ->
  ?allow:(Memory.Packet.t -> bool) ->
  unit ->
  t
(** Build the engine and add it to [group].  Default 10 Gbps rate,
    1 MiB burst, allow-all ACL. *)

val engine : t -> Engine.t

val submit : t -> Memory.Packet.t -> bool
(** Hand a packet to the shaper (e.g. from the kernel-injection path);
    [false] if its input ring is full. *)

val forwarded : t -> int
val shaped_drops : t -> int
(** Packets dropped by policy (rate/ACL), as opposed to queue overflow. *)
