module Time = Sim.Time
module Loop = Sim.Loop
module Packet = Memory.Packet

let batch = 16
let per_packet_cost = Time.ns 150

type Packet.payload += Vnet of { src_vip : int; dst_vip : int }

type guest = {
  vip : int;
  tx : Packet.t Squeue.Spsc.t;
  rx : Packet.t Squeue.Spsc.t;
}

type t = {
  lp : Loop.t;
  nic : Nic.t;
  rxq : int;
  eng : Engine.t;
  routes : (int, Packet.addr) Hashtbl.t;
  guests : (int, guest) Hashtbl.t;
  mutable guest_list : guest list;
  gen : Packet.Id_gen.t;
  mutable n_forwarded : int;
  mutable n_unroutable : int;
  mutable n_to_guests : int;
}

let run t () =
  let cost = ref Time.zero in
  let work = ref 0 in
  (* Guest -> NIC: rewrite virtual destination to physical host. *)
  List.iter
    (fun g ->
      let n = ref 0 in
      let go = ref true in
      while !go && !n < batch do
        match Squeue.Spsc.pop g.tx with
        | Some pkt -> (
            incr n;
            incr work;
            cost := Time.add !cost per_packet_cost;
            match pkt.Packet.payload with
            | Vnet { dst_vip; _ } -> (
                match Hashtbl.find_opt t.routes dst_vip with
                | Some host ->
                    let phys = { pkt with Packet.dst = host } in
                    if Nic.try_transmit t.nic phys then
                      t.n_forwarded <- t.n_forwarded + 1
                    else t.n_unroutable <- t.n_unroutable + 1
                | None -> t.n_unroutable <- t.n_unroutable + 1)
            | _ -> t.n_unroutable <- t.n_unroutable + 1)
        | None -> go := false
      done)
    t.guest_list;
  (* NIC -> guest: demultiplex on destination VIP. *)
  let ring = Nic.rx_ring t.nic ~queue:t.rxq in
  let n = ref 0 in
  let go = ref true in
  while !go && !n < batch do
    match Squeue.Spsc.pop ring with
    | Some pkt -> (
        incr n;
        incr work;
        cost := Time.add !cost per_packet_cost;
        match pkt.Packet.payload with
        | Vnet { dst_vip; _ } -> (
            match Hashtbl.find_opt t.guests dst_vip with
            | Some g ->
                if Squeue.Spsc.push g.rx ~now:(Loop.now t.lp) pkt then
                  t.n_to_guests <- t.n_to_guests + 1
            | None -> t.n_unroutable <- t.n_unroutable + 1)
        | _ -> ())
    | None -> go := false
  done;
  if !work = 0 then Engine.No_work else Engine.Worked !cost

let create ~loop ~nic ~group ~rx_queue () =
  let t_ref = ref None in
  let eng =
    Engine.create ~name:"vswitch"
      ~run:(fun () ->
        match !t_ref with Some t -> run t () | None -> Engine.No_work)
      ~queue_delay:(fun now ->
        match !t_ref with
        | Some t ->
            let ring_age =
              Squeue.Spsc.oldest_age (Nic.rx_ring t.nic ~queue:t.rxq) ~now
            in
            List.fold_left
              (fun acc g -> Time.max acc (Squeue.Spsc.oldest_age g.tx ~now))
              ring_age t.guest_list
        | None -> 0)
      ()
  in
  let t =
    {
      lp = loop;
      nic;
      rxq = rx_queue;
      eng;
      routes = Hashtbl.create 16;
      guests = Hashtbl.create 16;
      guest_list = [];
      gen = Packet.Id_gen.create ();
      n_forwarded = 0;
      n_unroutable = 0;
      n_to_guests = 0;
    }
  in
  t_ref := Some t;
  Engine.add group eng;
  (* Wake the engine when guest-bound traffic lands on its ring. *)
  Nic.set_rx_notify nic ~queue:rx_queue (Nic.Soft (fun () -> Engine.notify eng));
  t

let engine t = t.eng

let add_guest t ~vip =
  let g =
    {
      vip;
      tx = Squeue.Spsc.create ~name:(Printf.sprintf "guest%d.tx" vip) ~capacity:1024 ();
      rx = Squeue.Spsc.create ~name:(Printf.sprintf "guest%d.rx" vip) ~capacity:1024 ();
    }
  in
  Hashtbl.replace t.guests vip g;
  t.guest_list <- t.guest_list @ [ g ];
  g

let add_route t ~vip ~host = Hashtbl.replace t.routes vip host

let guest_transmit t g ~dst_vip ~bytes =
  let pkt =
    Packet.make
      ~id:(Packet.Id_gen.next t.gen)
      ~src:(Nic.addr t.nic) ~dst:0 ~flow_hash:(g.vip * 1021)
      ~qos:3
      ~wire_bytes:(min (Nic.mtu t.nic) (bytes + 60))
      ~payload_bytes:bytes
      (Vnet { src_vip = g.vip; dst_vip })
      ()
  in
  let ok = Squeue.Spsc.push g.tx ~now:(Loop.now t.lp) pkt in
  if ok then Engine.notify t.eng;
  ok

let guest_rx_ring g = g.rx
let forwarded t = t.n_forwarded
let unroutable t = t.n_unroutable
let delivered_to_guests t = t.n_to_guests
