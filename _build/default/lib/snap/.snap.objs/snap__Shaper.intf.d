lib/snap/shaper.mli: Engine Memory Nic Sim
