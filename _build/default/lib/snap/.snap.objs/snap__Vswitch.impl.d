lib/snap/vswitch.ml: Engine Hashtbl List Memory Nic Printf Sim Squeue
