lib/snap/host.ml: Control Cpu Engine Nic Option Pony Printf Sim
