lib/snap/shaper.ml: Engine Memory Nic Sim Squeue
