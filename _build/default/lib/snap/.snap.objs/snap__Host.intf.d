lib/snap/host.mli: Control Cpu Engine Fabric Memory Nic Pony Sim
