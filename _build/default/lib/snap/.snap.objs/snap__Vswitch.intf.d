lib/snap/vswitch.mli: Engine Memory Nic Sim Squeue
