(** Per-host Snap assembly.

    Bundles everything a Snap host runs — the simulated machine, NIC,
    control plane, an engine group with a chosen scheduling mode, and
    the Pony Express module — so examples and benchmarks build clusters
    in a few lines.  Additional engines (shapers, virtual switches) can
    be loaded into the same group. *)

type t = {
  machine : Cpu.Sched.machine;
  nic : Nic.t;
  control : Control.t;
  group : Engine.group;
  pony : Pony.Express.t;
}

val create :
  loop:Sim.Loop.t ->
  fabric:Fabric.t ->
  directory:Pony.Express.Directory.dir ->
  addr:Memory.Packet.addr ->
  ?cores:int ->
  ?nic_config:Nic.config ->
  ?mode:Engine.mode ->
  ?engines:int ->
  ?use_copy_engine:bool ->
  ?costs:Sim.Costs.t ->
  ?wire_versions:int list ->
  unit ->
  t
(** Defaults: 16 cores, default NIC, dedicating 2 cores, 1 Pony
    engine. *)

val spawn_app :
  t ->
  name:string ->
  ?klass:Cpu.Sched.klass ->
  ?spin:bool ->
  (Cpu.Thread.ctx -> unit) ->
  Cpu.Sched.task
(** Launch an application thread on this host (CFS nice 0 by default;
    [spin] selects spin-polling waits for the lowest latency). *)

val snap_cpu_ns : t -> int
(** CPU consumed by Snap (engine threads) on this host so far. *)

val app_cpu_ns : t -> int
val softirq_cpu_ns : t -> int
val total_cpu_ns : t -> int
