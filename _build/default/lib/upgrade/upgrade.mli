(** Transparent Snap upgrades (§4).

    A release upgrade runs a second Snap instance beside the old one and
    migrates engines one at a time, each in its entirety:

    - {e brownout}: control-plane connections and shared-memory file
      descriptors transfer in the background, and the new instance
      pre-builds queues and allocators, while the old engine keeps
      processing (minimal performance impact);
    - {e blackout}: the old engine ceases packet processing, detaches
      its NIC receive filters, and serializes remaining state into a
      shared-memory volume; the new engine attaches identical filters,
      deserializes, and resumes.

    Packets arriving during the blackout are dropped (ring overflow once
    the detached ring fills) and recovered by the transport as if lost
    to congestion; application connections remain established.

    The migration reuses the same engine objects across "instances" —
    the state hand-off is modeled by its serialization time, which is
    what determines the blackout the paper measures (Figure 9: median
    250 ms, heavy-tailed, correlated with state size). *)

type report = {
  engine_name : string;
  state_bytes : int;
  brownout : Sim.Time.t;
  blackout : Sim.Time.t;
  started_at : Sim.Time.t;
  finished_at : Sim.Time.t;
}

val upgrade :
  loop:Sim.Loop.t ->
  costs:Sim.Costs.t ->
  old_group:Engine.group ->
  new_group:Engine.group ->
  ?extra_state_bytes:(Engine.t -> int) ->
  ?gap:Sim.Time.t ->
  on_done:(report list -> unit) ->
  unit ->
  unit
(** Start an upgrade of every engine currently in [old_group], moving
    them into [new_group] (the new release's scheduling setup).
    [extra_state_bytes] adds synthetic serialized state per engine on
    top of what the engine itself reports — production engines carry
    far more state (flow tables, buffer pools) than a fresh simulation
    accumulates, and Figure 9's distribution is reproduced by drawing
    from a calibrated distribution here.  [gap] (default 1 ms) spaces
    consecutive engine migrations.  [on_done] receives one report per
    migrated engine. *)

val blackout_of : costs:Sim.Costs.t -> state_bytes:int -> Sim.Time.t
(** The blackout duration the model assigns to a given amount of
    serialized state: filter detach + serialize + filter attach +
    deserialize. *)
